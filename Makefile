GO ?= go

.PHONY: build test vet race race-daemon race-core fmt check bench serve-bench stats top lint-metrics crash failover trace replay alerts fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector (slow).
race:
	$(GO) test -race ./...

# The daemon's concurrency surface (shutdown, accept backoff, connection
# tracking) under the race detector — quick enough for every commit.
race-daemon:
	$(GO) test -race ./cmd/jarvisd/

# The batched compute core's concurrency surface: the nn worker pool, the
# parallel experiment harness, and the metrics registry and span tracer
# they report into, plus the WAL, the replay engine built on it, and the
# WAL-shipping replication layer (shipper/follower streams) with its
# fault injectors.
race-core:
	$(GO) test -race ./internal/nn/ ./internal/rl/ ./internal/experiment/ ./internal/telemetry/ ./internal/trace/ ./internal/wal/ ./internal/replay/ ./internal/compiled/ ./internal/wire/ ./internal/health/ ./internal/replica/ ./internal/fault/ ./internal/tsdb/

# The crash-recovery drill: SIGKILL a real daemon mid-online-training,
# boot a successor on its checkpoint + WAL, and require the recovered
# training state to match a never-crashed control byte for byte.
crash:
	$(GO) test -run 'TestCrashRecoverySIGKILL|TestWALReplay|TestWALTornTail' -count=1 -v ./cmd/jarvisd/

# The failover drill: SIGKILL a real primary mid-load while a hot standby
# streams its WAL, require the standby to promote itself within a bounded
# lost tail of a never-crashed control, and verify the promoted daemon's
# decision log replays bit for bit — plus the operator-promotion path and
# the standby's tolerance of torn journal writes.
failover:
	$(GO) test -run 'TestFailoverPromotionSIGKILL|TestOperatorPromote|TestFollowerSurvivesTornJournalWrites' -count=1 -v ./cmd/jarvisd/

# The tracing smoke: a fully sampled daemon produces a span tree covering
# the pipeline, exports it as Chrome trace_event JSON, and stamps the trace
# ID into the decision log.
trace:
	$(GO) test -run 'TestRecommendTraceSpanTree|TestEventTraceCoversDurabilityPath|TestTraceEndpoints|TestDecisionLogCarriesTraceID' -count=1 -v ./cmd/jarvisd/

# The replay-determinism smoke: a recorded daemon day must replay into a
# bit-identical decision log, the engine must verify its own synthetic
# streams, and a perturbed policy must produce a quantified counterfactual
# divergence.
replay:
	$(GO) test -run 'TestReplayVerifyReproducesDecisionLog|TestReplayWhatIfPerturbedPolicyDiverges|TestReplayerIsSelfConsistent|TestForkEmitsAlignedTail' -count=1 -v ./cmd/jarvisd/ ./internal/replay/

# The alerting smoke: a hair-trigger rule must fire under traffic, appear
# in /debug/alerts and /healthz, resolve when traffic stops, and log both
# lifecycle edges; a deliberately corrupted policy must raise the drift
# alert, roll back through the watchdog, and resolve; and a trailing hot
# standby must burn the replication-lag SLO and fire its default rule.
alerts:
	$(GO) test -run 'TestAlertSmokeHairTrigger|TestDriftAlertRollsBackAndResolves|TestReplicationLagAlertSmoke' -count=1 -v ./cmd/jarvisd/

# Short fuzz passes over every decoder that reads untrusted bytes: WAL
# segment frames, checkpoint/nn payloads, policy tables, binary wire
# frames, and replication protocol messages. Go fuzzing allows one -fuzz
# target per invocation, hence one run per decoder.
FUZZTIME ?= 5s

fuzz:
	$(GO) test -run xxx -fuzz FuzzReadSegment -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run xxx -fuzz FuzzLoad -fuzztime $(FUZZTIME) ./internal/nn/
	$(GO) test -run xxx -fuzz FuzzLoadTable -fuzztime $(FUZZTIME) ./internal/policy/
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzParseMessage -fuzztime $(FUZZTIME) ./internal/replica/

# Measure the batched compute core and write BENCH_core.json, plus the
# allocation-asserting micro-benchmarks of the root package.
bench:
	$(GO) run ./cmd/jarvis bench
	$(GO) test -run xxx -bench 'ForwardBatch|TrainBatchParallel|ReplaySampleInto|NNTrainBatch|NNForward$$|Table3ActionQuality' -benchmem .

# Serving-path benchmark: spawn the legacy shape (JSON + DQN, compiled
# tables off) and the fast shape (binary wire + tabular + compiled tables),
# drive both with pipelined recommend load, and write BENCH_serve.json.
# SERVE_N requests per scenario; SERVE_MIN_SPEEDUP > 0 turns the report
# into a gate (CI uses 1.0 on tiny N; the real run clears 10x).
SERVE_N ?= 20000
SERVE_MIN_SPEEDUP ?= 0

serve-bench:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/jarvisd ./cmd/jarvisd; \
	$(GO) run ./cmd/jarvisload -jarvisd $$tmp/jarvisd -n $(SERVE_N) -min-speedup $(SERVE_MIN_SPEEDUP)

# Observability smoke probe: boot a small daemon, then scrape /metrics
# through `jarvisctl stats`, which exits non-zero on any non-200 answer.
STATS_ADDR ?= 127.0.0.1:7973
STATS_DEBUG_ADDR ?= 127.0.0.1:7974

stats:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/jarvisd ./cmd/jarvisd; \
	$(GO) build -o $$tmp/jarvisctl ./cmd/jarvisctl; \
	$$tmp/jarvisd -addr $(STATS_ADDR) -debug-addr $(STATS_DEBUG_ADDR) -learning-days 2 -episodes 2 & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
		if $$tmp/jarvisctl -debug-addr $(STATS_DEBUG_ADDR) -timeout 1s stats >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	$$tmp/jarvisctl -debug-addr $(STATS_DEBUG_ADDR) stats

# Fleet-view smoke probe: boot a primary (with a WAL to ship and an
# on-disk metric history) plus a hot standby streaming it, then render one
# `jarvisctl top` poll over both debug listeners and require the table to
# carry both roles and the follower's replication state.
TOP_ADDR ?= 127.0.0.1:7983
TOP_DEBUG_ADDR ?= 127.0.0.1:7984
TOP_FOLLOW_ADDR ?= 127.0.0.1:7985
TOP_FOLLOW_DEBUG_ADDR ?= 127.0.0.1:7986

top:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$ppid $$fpid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/jarvisd ./cmd/jarvisd; \
	$(GO) build -o $$tmp/jarvisctl ./cmd/jarvisctl; \
	$$tmp/jarvisd -addr $(TOP_ADDR) -debug-addr $(TOP_DEBUG_ADDR) -wal $$tmp/wal -tsdb $$tmp/tsdb -ts-interval 250ms -learning-days 2 -episodes 2 & \
	ppid=$$!; \
	$$tmp/jarvisd -addr $(TOP_FOLLOW_ADDR) -debug-addr $(TOP_FOLLOW_DEBUG_ADDR) -follow $(TOP_ADDR) -promote-after=-1s -learning-days 2 -episodes 2 & \
	fpid=$$!; \
	for i in $$(seq 1 150); do \
		if $$tmp/jarvisctl -debug-addr $(TOP_DEBUG_ADDR),$(TOP_FOLLOW_DEBUG_ADDR) -timeout 1s -once -format json top 2>/dev/null \
			| grep -q '"role": "follower"'; then break; fi; \
		sleep 0.2; \
	done; \
	$$tmp/jarvisctl -debug-addr $(TOP_DEBUG_ADDR),$(TOP_FOLLOW_DEBUG_ADDR) -once top; \
	$$tmp/jarvisctl -debug-addr $(TOP_DEBUG_ADDR),$(TOP_FOLLOW_DEBUG_ADDR) -once -format json top > $$tmp/top.json; \
	grep -q '"role": "primary"' $$tmp/top.json; \
	grep -q '"role": "follower"' $$tmp/top.json; \
	grep -q '"replicaConnected": true' $$tmp/top.json

# Metric-name lint: every name registered on the telemetry registry must
# match ^[a-z][a-z0-9._]*$ — the same contract telemetry.ValidMetricName
# enforces at runtime — so a bad name fails CI before it ever runs. Test
# files are exempt: they register invalid names on purpose.
lint-metrics:
	@bad=$$(grep -rhoE '\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec|GaugeFunc|SetInfo)\("[^"]*"' \
		--include='*.go' --exclude='*_test.go' . \
		| sed -E 's/.*\("([^"]*)"/\1/' \
		| grep -vE '^[a-z][a-z0-9._]*$$' || true); \
	if [ -n "$$bad" ]; then echo "invalid metric name(s):"; echo "$$bad"; exit 1; \
	else echo "metric names clean"; fi

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The pre-commit gate: build, format, vet, full tests, and the daemon's
# race-sensitive tests under -race.
check: build fmt vet test race-daemon
