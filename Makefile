GO ?= go

.PHONY: build test vet race race-daemon race-core fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector (slow).
race:
	$(GO) test -race ./...

# The daemon's concurrency surface (shutdown, accept backoff, connection
# tracking) under the race detector — quick enough for every commit.
race-daemon:
	$(GO) test -race ./cmd/jarvisd/

# The batched compute core's concurrency surface: the nn worker pool and
# the parallel experiment harness.
race-core:
	$(GO) test -race ./internal/nn/ ./internal/rl/ ./internal/experiment/

# Measure the batched compute core and write BENCH_core.json, plus the
# allocation-asserting micro-benchmarks of the root package.
bench:
	$(GO) run ./cmd/jarvis bench
	$(GO) test -run xxx -bench 'ForwardBatch|TrainBatchParallel|ReplaySampleInto|NNTrainBatch|NNForward$$|Table3ActionQuality' -benchmem .

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The pre-commit gate: build, format, vet, full tests, and the daemon's
# race-sensitive tests under -race.
check: build fmt vet test race-daemon
