GO ?= go

.PHONY: build test vet race race-daemon fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector (slow).
race:
	$(GO) test -race ./...

# The daemon's concurrency surface (shutdown, accept backoff, connection
# tracking) under the race detector — quick enough for every commit.
race-daemon:
	$(GO) test -race ./cmd/jarvisd/

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The pre-commit gate: build, format, vet, full tests, and the daemon's
# race-sensitive tests under -race.
check: build fmt vet test race-daemon
