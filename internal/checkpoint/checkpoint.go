// Package checkpoint provides crash-safe persistence primitives for the
// trained Jarvis state: atomic write-to-temp-then-rename saves and loads
// with bounded retry. A daemon that checkpoints through this package never
// leaves a torn file behind — readers see either the previous complete
// checkpoint or the new one.
package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// WriteAtomic streams fn's output to a temporary file in path's directory,
// syncs it to stable storage, and renames it over path. On any error the
// temporary file is removed and path is left untouched.
func WriteAtomic(path string, fn func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadOptions tunes Load's retry behavior.
type LoadOptions struct {
	// Tries is the maximum number of attempts (default 3).
	Tries int
	// Backoff is the initial delay between attempts, doubling each retry
	// (default 50ms).
	Backoff time.Duration
	// Sleep is swapped out by tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Tries <= 0 {
		o.Tries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Load opens path and hands the reader to fn, retrying with exponential
// backoff when opening or fn fails — transient I/O hiccups (NFS, busy
// disks) heal; a genuinely corrupt checkpoint fails every attempt and the
// last error is returned for the caller to fall back on. A missing file is
// returned immediately (no retries) and satisfies errors.Is(err,
// os.ErrNotExist).
func Load(path string, opts LoadOptions, fn func(io.Reader) error) error {
	opts = opts.withDefaults()
	var last error
	delay := opts.Backoff
	for attempt := 0; attempt < opts.Tries; attempt++ {
		if attempt > 0 {
			opts.Sleep(delay)
			delay *= 2
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				return fmt.Errorf("checkpoint: %w", err)
			}
			last = err
			continue
		}
		err = fn(f)
		f.Close()
		if err == nil {
			return nil
		}
		last = err
	}
	return fmt.Errorf("checkpoint: load %s failed after %d attempts: %w", path, opts.Tries, last)
}
