// Package checkpoint provides crash-safe persistence primitives for the
// trained Jarvis state: atomic write-to-temp-then-rename saves (with the
// parent directory fsynced so the rename itself survives power loss),
// loads with bounded retry that fail fast on unrecoverable corruption, and
// a generation store that keeps the last K checksummed checkpoints behind
// a manifest so a corrupt or diverged newest generation falls back to an
// older one instead of to fresh training.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// ErrCorrupt marks a checkpoint whose *contents* are invalid — a decode
// failure, a checksum mismatch, a shape mismatch. Wrap (or return) it from
// a Load callback to tell Load the failure is deterministic: no number of
// retries will fix corrupt bytes, so Load returns immediately instead of
// burning its attempts sleeping. Transient I/O errors (not wrapping
// ErrCorrupt) still retry.
var ErrCorrupt = errors.New("checkpoint payload corrupt")

// syncDir fsyncs a directory so a just-completed rename in it is durable.
// Swapped out by tests; filesystems that cannot sync a directory handle
// (EINVAL/ENOTSUP) are treated as best-effort.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// NamedFile is the temp-file surface WriteAtomic needs. *os.File
// satisfies it; fault-injection tests swap OpenTemp to return wrappers
// whose writes fail or fall short.
type NamedFile interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// OpenTemp creates the temporary file WriteAtomic streams into. A package
// variable so disk-fault tests can make checkpoint writes fail mid-stream;
// the default is os.CreateTemp.
var OpenTemp = func(dir, pattern string) (NamedFile, error) {
	return os.CreateTemp(dir, pattern)
}

// WriteAtomic streams fn's output to a temporary file in path's directory,
// syncs it to stable storage, renames it over path, and fsyncs the parent
// directory — without the directory sync the rename lives only in the
// directory's in-memory metadata and a power cut can roll path back to the
// previous version (or to nothing). On any error the temporary file is
// removed and path is left untouched.
func WriteAtomic(path string, fn func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := OpenTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// LoadOptions tunes Load's retry behavior.
type LoadOptions struct {
	// Tries is the maximum number of attempts (default 3).
	Tries int
	// Backoff is the initial delay between attempts, doubling each retry
	// (default 50ms).
	Backoff time.Duration
	// Sleep is swapped out by tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Tries <= 0 {
		o.Tries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Load opens path and hands the reader to fn, retrying with exponential
// backoff when opening or fn fails — transient I/O hiccups (NFS, busy
// disks) heal; a genuinely corrupt checkpoint fails every attempt and the
// last error is returned for the caller to fall back on. Two failure
// classes skip the retry loop entirely, because retrying cannot change the
// outcome: a missing file (satisfies errors.Is(err, os.ErrNotExist)) and a
// deterministic decode failure signalled by fn wrapping ErrCorrupt.
func Load(path string, opts LoadOptions, fn func(io.Reader) error) error {
	opts = opts.withDefaults()
	var last error
	delay := opts.Backoff
	for attempt := 0; attempt < opts.Tries; attempt++ {
		if attempt > 0 {
			opts.Sleep(delay)
			delay *= 2
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				return fmt.Errorf("checkpoint: %w", err)
			}
			last = err
			continue
		}
		err = fn(f)
		f.Close()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrCorrupt) {
			return fmt.Errorf("checkpoint: load %s: %w", path, err)
		}
		last = err
	}
	return fmt.Errorf("checkpoint: load %s failed after %d attempts: %w", path, opts.Tries, last)
}
