package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var noSleep = LoadOptions{Tries: 2, Sleep: func(time.Duration) {}}

func testStore(t *testing.T, retain int) *Store {
	t.Helper()
	var tick int64
	s, err := OpenStore(t.TempDir(), "q.ckpt", retain, func() int64 { tick++; return tick })
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func saveString(t *testing.T, s *Store, data string) uint64 {
	t.Helper()
	gen, err := s.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, data)
		return err
	})
	if err != nil {
		t.Fatalf("Save(%q): %v", data, err)
	}
	return gen
}

func loadString(t *testing.T, s *Store) (uint64, string) {
	t.Helper()
	var got string
	gen, err := s.Load(noSleep, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		got = string(b)
		return err
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return gen, got
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := testStore(t, 3)
	if gen := saveString(t, s, "v1"); gen != 1 {
		t.Errorf("first gen = %d, want 1", gen)
	}
	if gen := saveString(t, s, "v2"); gen != 2 {
		t.Errorf("second gen = %d, want 2", gen)
	}
	gen, got := loadString(t, s)
	if gen != 2 || got != "v2" {
		t.Errorf("Load = (gen %d, %q), want (2, v2)", gen, got)
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0].Gen != 1 || gens[1].Gen != 2 {
		t.Errorf("Generations = %+v", gens)
	}
	if gens[1].Size != 2 {
		t.Errorf("gen 2 size = %d, want 2", gens[1].Size)
	}
	if gens[0].UnixNs == 0 || gens[1].UnixNs <= gens[0].UnixNs {
		t.Errorf("timestamps not monotone: %d, %d", gens[0].UnixNs, gens[1].UnixNs)
	}
}

func TestStoreEmptyLoadIsNotExist(t *testing.T) {
	s := testStore(t, 3)
	_, err := s.Load(noSleep, func(io.Reader) error { return nil })
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestStoreRetentionPrunesOldGenerations(t *testing.T) {
	s := testStore(t, 2)
	for i := 1; i <= 5; i++ {
		saveString(t, s, fmt.Sprintf("v%d", i))
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0].Gen != 4 || gens[1].Gen != 5 {
		t.Fatalf("Generations = %+v, want gens 4 and 5", gens)
	}
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	// MANIFEST + two generation files; pruned files must be gone.
	if len(ents) != 3 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("dir has %d entries %v, want 3", len(ents), names)
	}
}

func TestStoreReopenSeesSavedGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, "q.ckpt", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	saveString(t, s, "v1")
	saveString(t, s, "v2")

	s2, err := OpenStore(dir, "q.ckpt", 3, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	gen, got := loadString(t, s2)
	if gen != 2 || got != "v2" {
		t.Errorf("Load after reopen = (gen %d, %q), want (2, v2)", gen, got)
	}
	// Numbering continues rather than restarting.
	if gen := saveString(t, s2, "v3"); gen != 3 {
		t.Errorf("gen after reopen = %d, want 3", gen)
	}
}

func TestStoreCorruptNewestFallsBackGeneration(t *testing.T) {
	s := testStore(t, 3)
	saveString(t, s, "good-old")
	saveString(t, s, "bad-new")
	// Flip bytes in the newest generation file behind the store's back.
	gens := s.Generations()
	newest := filepath.Join(s.Dir(), gens[len(gens)-1].File)
	if err := os.WriteFile(newest, []byte("XXXXXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	slept := 0
	var got string
	gen, err := s.Load(LoadOptions{Tries: 5, Sleep: func(time.Duration) { slept++ }}, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		got = string(b)
		return err
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gen != 1 || got != "good-old" {
		t.Errorf("Load = (gen %d, %q), want fallback to (1, good-old)", gen, got)
	}
	if slept != 0 {
		t.Errorf("slept %d times: checksum mismatch must not burn retries", slept)
	}
}

func TestStoreDecodeRejectionFallsBackGeneration(t *testing.T) {
	s := testStore(t, 3)
	saveString(t, s, "decodable")
	saveString(t, s, "undecodable")
	var got string
	gen, err := s.Load(noSleep, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		if string(b) == "undecodable" {
			return fmt.Errorf("schema mismatch: %w", ErrCorrupt)
		}
		got = string(b)
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gen != 1 || got != "decodable" {
		t.Errorf("Load = (gen %d, %q), want (1, decodable)", gen, got)
	}
}

func TestStoreAllGenerationsCorruptReturnsNewestError(t *testing.T) {
	s := testStore(t, 3)
	saveString(t, s, "a")
	saveString(t, s, "b")
	for _, g := range s.Generations() {
		if err := os.WriteFile(filepath.Join(s.Dir(), g.File), []byte("zz"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Load(noSleep, func(io.Reader) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestStoreMissingGenerationFileFallsBack(t *testing.T) {
	s := testStore(t, 3)
	saveString(t, s, "survivor")
	saveString(t, s, "deleted")
	gens := s.Generations()
	if err := os.Remove(filepath.Join(s.Dir(), gens[len(gens)-1].File)); err != nil {
		t.Fatal(err)
	}
	gen, got := loadString(t, s)
	if gen != 1 || got != "survivor" {
		t.Errorf("Load = (gen %d, %q), want (1, survivor)", gen, got)
	}
}

func TestStoreCorruptManifestIsCorruptError(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, "q.ckpt", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	saveString(t, s, "v1")
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, "q.ckpt", 3, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenStore err = %v, want ErrCorrupt", err)
	}
}

func TestStoreSaveCallbackFailureLeavesStoreUsable(t *testing.T) {
	s := testStore(t, 3)
	saveString(t, s, "v1")
	boom := errors.New("encoder boom")
	if _, err := s.Save(func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Save err = %v, want boom", err)
	}
	gens := s.Generations()
	if len(gens) != 1 || gens[0].Gen != 1 {
		t.Errorf("failed save mutated manifest: %+v", gens)
	}
	gen, got := loadString(t, s)
	if gen != 1 || got != "v1" {
		t.Errorf("Load = (gen %d, %q), want (1, v1)", gen, got)
	}
	if gen := saveString(t, s, "v2"); gen != 2 {
		t.Errorf("gen after failed save = %d, want 2", gen)
	}
}

// The MANIFEST is the store's only index. When it is missing, the store
// opens empty even if generation files are still on disk: unindexed files
// carry no recorded checksums, so trusting them would defeat the
// corruption detection. Load reports ErrNotExist and the daemon falls
// back to fresh training.
func TestStoreMissingManifestOpensEmpty(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, "q.ckpt", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	saveString(t, s, "v1")
	saveString(t, s, "v2")
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, "q.ckpt", 3, nil)
	if err != nil {
		t.Fatalf("missing MANIFEST must open as a fresh store, got %v", err)
	}
	if gens := s2.Generations(); len(gens) != 0 {
		t.Errorf("store indexed %d generations with no MANIFEST: %+v", len(gens), gens)
	}
	if _, err := s2.Load(noSleep, func(io.Reader) error { return nil }); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load err = %v, want ErrNotExist", err)
	}
	// The store keeps working: the next save re-creates the MANIFEST.
	saveString(t, s2, "v3")
	if _, got := loadString(t, s2); got != "v3" {
		t.Errorf("post-recreate Load = %q, want v3", got)
	}
}

// A MANIFEST whose every referenced generation file has been deleted must
// fail Load with ErrNotExist — the same signal as an empty store — so the
// caller takes the fresh-training fallback instead of crashing.
func TestStoreAllGenerationFilesDeletedIsNotExist(t *testing.T) {
	s := testStore(t, 3)
	saveString(t, s, "v1")
	saveString(t, s, "v2")
	for _, g := range s.Generations() {
		if err := os.Remove(filepath.Join(s.Dir(), g.File)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Load(noSleep, func(io.Reader) error { return nil }); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load err = %v, want ErrNotExist", err)
	}
}
