package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q, want %q", got, "hello")
	}
}

func TestWriteAtomicFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("WriteAtomic err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Errorf("old checkpoint clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp file leaked: %d entries in dir", len(ents))
	}
}

func TestLoadMissingFileNoRetry(t *testing.T) {
	slept := 0
	err := Load(filepath.Join(t.TempDir(), "nope"), LoadOptions{
		Sleep: func(time.Duration) { slept++ },
	}, func(io.Reader) error { return nil })
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if slept != 0 {
		t.Errorf("retried %d times on a missing file", slept)
	}
}

func TestLoadRetriesThenSucceeds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	var delays []time.Duration
	err := Load(path, LoadOptions{
		Tries:   3,
		Backoff: 10 * time.Millisecond,
		Sleep:   func(d time.Duration) { delays = append(delays, d) },
	}, func(r io.Reader) error {
		attempts++
		if attempts < 3 {
			return errors.New("transient")
		}
		b, _ := io.ReadAll(r)
		if string(b) != "data" {
			t.Errorf("read %q", b)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("backoff delays = %v, want %v", delays, want)
	}
}

func TestLoadExhaustsRetriesOnCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err := Load(path, LoadOptions{Tries: 2, Sleep: func(time.Duration) {}}, func(io.Reader) error {
		attempts++
		return errors.New("corrupt")
	})
	if err == nil {
		t.Fatal("Load succeeded on corrupt file")
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error does not mention attempts: %v", err)
	}
}

func TestLoadCorruptSentinelSkipsRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	attempts, slept := 0, 0
	err := Load(path, LoadOptions{
		Tries: 5,
		Sleep: func(time.Duration) { slept++ },
	}, func(io.Reader) error {
		attempts++
		return fmt.Errorf("bad shape: %w", ErrCorrupt)
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (corruption is deterministic)", attempts)
	}
	if slept != 0 {
		t.Errorf("slept %d times on a corrupt payload", slept)
	}
}

func TestLoadTransientThenCorruptStopsAtCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err := Load(path, LoadOptions{Tries: 5, Sleep: func(time.Duration) {}}, func(io.Reader) error {
		attempts++
		if attempts == 1 {
			return errors.New("transient")
		}
		return ErrCorrupt
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one transient retry, then corrupt fast-fail)", attempts)
	}
}

func TestWriteAtomicSyncsParentDir(t *testing.T) {
	orig := syncDir
	defer func() { syncDir = orig }()
	var synced []string
	syncDir = func(dir string) error {
		synced = append(synced, dir)
		return orig(dir)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Errorf("syncDir calls = %v, want exactly [%s]", synced, dir)
	}
}

func TestWriteAtomicDirSyncFailureSurfaces(t *testing.T) {
	orig := syncDir
	defer func() { syncDir = orig }()
	boom := errors.New("dir sync boom")
	syncDir = func(string) error { return boom }
	path := filepath.Join(t.TempDir(), "ckpt.json")
	err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteAtomic err = %v, want dir-sync failure", err)
	}
}

func TestSyncDirRealDirectory(t *testing.T) {
	// The real implementation must succeed (or tolerate EINVAL/ENOTSUP) on
	// an ordinary directory.
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir: %v", err)
	}
}
