package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// manifestName is the index file a Store maintains next to its generation
// files. It is always written last (atomically, with a directory fsync),
// so a crash between writing a generation file and updating the manifest
// leaves the previous manifest — and therefore a consistent view — intact.
const manifestName = "MANIFEST"

// Generation describes one retained checkpoint generation as recorded in
// the manifest.
type Generation struct {
	// Gen is the monotonically increasing generation number.
	Gen uint64 `json:"gen"`
	// File is the generation's file name, relative to the store directory.
	File string `json:"file"`
	// SHA256 is the hex digest of the file's contents, computed while the
	// bytes were first written; Load refuses any generation whose on-disk
	// bytes no longer match.
	SHA256 string `json:"sha256"`
	// Size is the file's length in bytes.
	Size int64 `json:"size"`
	// UnixNs is the save wall-clock time in nanoseconds since the epoch.
	UnixNs int64 `json:"unix_ns"`
}

type manifest struct {
	Generations []Generation `json:"generations"` // oldest first
}

// Store keeps the last K generations of one logical checkpoint in a
// directory: numbered files (base.000017) plus a MANIFEST recording each
// generation's checksum. Save always creates a new generation; Load walks
// generations newest to oldest, skipping any whose checksum or decode
// fails, so a corrupt latest checkpoint degrades to the previous one
// instead of to nothing. Store is not safe for concurrent use.
type Store struct {
	dir    string
	base   string
	retain int
	now    func() int64 // unix ns; swapped by tests
	m      manifest
}

// OpenStore opens (creating if needed) a generation store in dir whose
// files are named base.NNNNNN, retaining at most retain generations
// (minimum 1). A missing manifest means an empty store; a corrupt manifest
// is an error — the caller decides whether to start fresh.
func OpenStore(dir, base string, retain int, nowNs func() int64) (*Store, error) {
	if retain < 1 {
		retain = 1
	}
	if base == "" {
		return nil, fmt.Errorf("checkpoint: store base name empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, base: base, retain: retain, now: nowNs}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &s.m); err != nil {
		return nil, fmt.Errorf("checkpoint: decode manifest: %w (%w)", err, ErrCorrupt)
	}
	sort.Slice(s.m.Generations, func(i, j int) bool {
		return s.m.Generations[i].Gen < s.m.Generations[j].Gen
	})
	return s, nil
}

// Generations returns the retained generations, oldest first. The slice is
// a copy; mutating it does not affect the store.
func (s *Store) Generations() []Generation {
	out := make([]Generation, len(s.m.Generations))
	copy(out, s.m.Generations)
	return out
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) genPath(g Generation) string { return filepath.Join(s.dir, g.File) }

// Save streams fn's output into a new generation file, records its SHA-256
// in the manifest, and prunes generations beyond the retention limit. The
// new generation becomes visible to Load only once the manifest update has
// been atomically committed, so a crash mid-save is invisible.
func (s *Store) Save(fn func(io.Writer) error) (uint64, error) {
	gen := uint64(1)
	if n := len(s.m.Generations); n > 0 {
		gen = s.m.Generations[n-1].Gen + 1
	}
	g := Generation{
		Gen:  gen,
		File: fmt.Sprintf("%s.%06d", s.base, gen),
	}
	if s.now != nil {
		g.UnixNs = s.now()
	}
	h := sha256.New()
	path := s.genPath(g)
	err := WriteAtomic(path, func(w io.Writer) error {
		cw := &countingWriter{w: io.MultiWriter(w, h)}
		if err := fn(cw); err != nil {
			return err
		}
		g.Size = cw.n
		return nil
	})
	if err != nil {
		return 0, err
	}
	g.SHA256 = hex.EncodeToString(h.Sum(nil))

	next := append(append([]Generation(nil), s.m.Generations...), g)
	var pruned []Generation
	if len(next) > s.retain {
		pruned = next[:len(next)-s.retain]
		next = next[len(next)-s.retain:]
	}
	if err := s.writeManifest(manifest{Generations: next}); err != nil {
		os.Remove(path)
		return 0, err
	}
	s.m.Generations = next
	for _, old := range pruned {
		os.Remove(s.genPath(old)) // already out of the manifest; best-effort
	}
	return gen, nil
}

// Load walks the retained generations newest to oldest, verifying each
// file's checksum against the manifest *before* handing its contents to
// fn — corrupt bytes are therefore always a deterministic ErrCorrupt
// (no retry sleeps, no half-applied decode), even if fn's decoder would
// have accepted the garbage. A generation that fails its checksum or that
// fn rejects is skipped in favor of the next-older one; transient read
// errors go through Load's bounded retry first. Returns the generation
// number that loaded, or os.ErrNotExist when the store is empty, or the
// newest generation's error when every generation fails.
func (s *Store) Load(opts LoadOptions, fn func(io.Reader) error) (uint64, error) {
	if len(s.m.Generations) == 0 {
		return 0, fmt.Errorf("checkpoint: no generations: %w", os.ErrNotExist)
	}
	var firstErr error
	for i := len(s.m.Generations) - 1; i >= 0; i-- {
		g := s.m.Generations[i]
		err := Load(s.genPath(g), opts, func(r io.Reader) error {
			raw, err := io.ReadAll(r)
			if err != nil {
				return err
			}
			sum := sha256.Sum256(raw)
			if got := hex.EncodeToString(sum[:]); got != g.SHA256 {
				return fmt.Errorf("sha256 mismatch: manifest %s, file %s: %w", g.SHA256, got, ErrCorrupt)
			}
			return fn(bytes.NewReader(raw))
		})
		if err == nil {
			return g.Gen, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return 0, firstErr
}

func (s *Store) writeManifest(m manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	return WriteAtomic(filepath.Join(s.dir, manifestName), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
