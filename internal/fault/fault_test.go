package fault

import (
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
)

// testEnv: a lamp and a heater, two states and two actions each.
func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	lamp := device.NewBuilder("lamp", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 60).
		MustBuild()
	heater := device.NewBuilder("heater", device.TypeThermostat).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 2000).
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(lamp, env.Placement{})
	b.AddDevice(heater, env.Placement{})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

func testReward(t *testing.T, e *env.Environment, n int) *reward.Smart {
	t.Helper()
	r, err := reward.New(e, reward.Config{
		Functionalities: []reward.Functionality{{
			Name: "energy", Weight: 1,
			F: func(s env.State, a env.Action, inst int) float64 {
				next, err := e.Transition(s, a)
				if err != nil {
					return 0
				}
				var w float64
				for i := range next {
					w += e.Device(i).PowerW(next[i])
				}
				return 1 - w/2060
			},
		}},
		Instances: n,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	return r
}

func testSim(t *testing.T, e *env.Environment, n int, table *policy.Table) *rl.SimEnv {
	t.Helper()
	sim, err := rl.NewSimEnv(e, rl.SimConfig{
		Initial: env.State{0, 0},
		Reward:  testReward(t, e, n),
		Safe:    table,
	})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	return sim
}

// lampOnlyTable whitelists lamp toggles (and idling) but no heater change.
func lampOnlyTable(e *env.Environment) *policy.Table {
	tab := policy.NewTable(true)
	for _, heater := range []device.StateID{0, 1} {
		off := e.StateKey(env.State{0, heater})
		on := e.StateKey(env.State{1, heater})
		tab.Allow(off, on)
		tab.Allow(on, off)
	}
	return tab
}

func TestZeroRateIsTransparent(t *testing.T) {
	e := testEnv(t)
	f := Wrap(testSim(t, e, 10, nil), Uniform(1, 0))
	plain := testSim(t, e, 10, nil)

	rng := rand.New(rand.NewSource(7))
	s, ps := f.Reset(), plain.Reset()
	for i := 0; i < 10; i++ {
		act := env.NoOp(e.K())
		dev := rng.Intn(e.K())
		valid := e.Device(dev).ValidActions(s[dev])
		act[dev] = valid[rng.Intn(len(valid))]
		fs, fr, _, err := f.Step(act)
		if err != nil {
			t.Fatalf("faulty step %d: %v", i, err)
		}
		pss, pr, _, err := plain.Step(act)
		if err != nil {
			t.Fatalf("plain step %d: %v", i, err)
		}
		if !fs.Equal(pss) || fr != pr {
			t.Fatalf("step %d diverged: %v/%v vs %v/%v", i, fs, fr, pss, pr)
		}
		if !f.State().Equal(f.True()) {
			t.Fatalf("step %d: observation differs from truth at rate 0", i)
		}
		s, ps = fs, pss
	}
	_ = ps
	if got := f.Stats(); got != (Stats{}) {
		t.Errorf("faults fired at rate 0: %+v", got)
	}
}

func TestObservationsGoStaleUnderDropout(t *testing.T) {
	e := testEnv(t)
	f := Wrap(testSim(t, e, 10, nil), Config{Seed: 1, DropoutProb: 1})
	f.Reset()

	act := env.NoOp(e.K())
	act[0] = 1 // lamp power_on
	obs, _, _, err := f.Step(act)
	if err != nil {
		t.Fatal(err)
	}
	if obs[0] != 0 {
		t.Errorf("observed lamp = %d, want stale 0 under full dropout", obs[0])
	}
	if f.True()[0] != 1 {
		t.Errorf("true lamp = %d, want 1", f.True()[0])
	}
	if f.Stats().Dropouts == 0 {
		t.Error("no dropouts recorded")
	}
}

func TestStuckWindowFreezesReading(t *testing.T) {
	e := testEnv(t)
	f := Wrap(testSim(t, e, 20, nil), Config{Seed: 3, StuckProb: 1, StuckMin: 10, StuckMax: 10})
	f.Reset()

	act := env.NoOp(e.K())
	act[0] = 1
	obs, _, _, err := f.Step(act)
	if err != nil {
		t.Fatal(err)
	}
	if obs[0] != 0 {
		t.Errorf("observed lamp = %d, want frozen 0", obs[0])
	}
	if f.Stats().Stuck == 0 {
		t.Error("no stuck readings recorded")
	}
}

func TestObservableMaskLimitsFaults(t *testing.T) {
	e := testEnv(t)
	f := Wrap(testSim(t, e, 10, nil), Config{
		Seed: 1, DropoutProb: 1,
		Observable: func(dev int) bool { return dev == 1 }, // only the heater
	})
	f.Reset()
	act := env.NoOp(e.K())
	act[0] = 1
	obs, _, _, err := f.Step(act)
	if err != nil {
		t.Fatal(err)
	}
	if obs[0] != 1 {
		t.Errorf("lamp is not observable-faulty, observed %d want 1", obs[0])
	}
}

func TestUnavailableDeviceDropsCommands(t *testing.T) {
	e := testEnv(t)
	f := Wrap(testSim(t, e, 20, nil), Config{Seed: 5, UnavailProb: 1, UnavailMin: 10, UnavailMax: 10})
	f.Reset()

	// First step opens the unavailability windows.
	if _, _, _, err := f.Step(env.NoOp(e.K())); err != nil {
		t.Fatal(err)
	}
	act := env.NoOp(e.K())
	act[0] = 1
	if _, _, _, err := f.Step(act); err != nil {
		t.Fatal(err)
	}
	if f.True()[0] != 0 {
		t.Errorf("command executed on unavailable device: true lamp = %d", f.True()[0])
	}
	if f.Stats().Unavailable == 0 {
		t.Error("no unavailable drops recorded")
	}
}

func TestDelayedActuationFiresLater(t *testing.T) {
	e := testEnv(t)
	f := Wrap(testSim(t, e, 20, nil), Config{Seed: 2, DelayProb: 1, DelayMax: 1})
	f.Reset()

	act := env.NoOp(e.K())
	act[0] = 1
	if _, _, _, err := f.Step(act); err != nil {
		t.Fatal(err)
	}
	if f.True()[0] != 0 {
		t.Fatalf("actuation was not delayed: true lamp = %d", f.True()[0])
	}
	if _, _, _, err := f.Step(env.NoOp(e.K())); err != nil {
		t.Fatal(err)
	}
	if f.True()[0] != 1 {
		t.Errorf("delayed actuation never fired: true lamp = %d", f.True()[0])
	}
	if f.Stats().Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", f.Stats().Delayed)
	}
}

func TestHubGatingKeepsConstrainedRunSafe(t *testing.T) {
	e := testEnv(t)
	table := lampOnlyTable(e)
	sim := testSim(t, e, 48, table)
	f := Wrap(sim, Config{Seed: 9, DropoutProb: 0.8, StuckProb: 0.3, DelayProb: 0.3, UnavailProb: 0.2})

	rng := rand.New(rand.NewSource(11))
	q := rl.NewTableQ(e, 48, 4, 0.25)
	agent, err := rl.NewAgent(f, q, rl.AgentConfig{Episodes: 12, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := agent.Train()
	if err != nil {
		t.Fatalf("Train under faults: %v", err)
	}
	if stats.Violations != 0 {
		t.Errorf("constrained agent committed %d violations under faults", stats.Violations)
	}
	if _, _, err := agent.Evaluate(); err != nil {
		t.Fatalf("Evaluate under faults: %v", err)
	}
	if sim.Violations() != 0 {
		t.Errorf("ground-truth audit recorded %d violations", sim.Violations())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() Stats {
		e := testEnv(t)
		f := Wrap(testSim(t, e, 30, nil), Config{Seed: 42, DropoutProb: 0.5, StuckProb: 0.2, DelayProb: 0.4, UnavailProb: 0.1})
		s := f.Reset()
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 30; i++ {
			act := env.NoOp(e.K())
			dev := rng.Intn(e.K())
			valid := e.Device(dev).ValidActions(f.True()[dev])
			if len(valid) > 0 {
				act[dev] = valid[rng.Intn(len(valid))]
			}
			next, _, done, err := f.Step(act)
			if err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			s = next
			if done {
				break
			}
		}
		_ = s
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different fault streams:\n  %+v\n  %+v", a, b)
	}
}

func buildEpisode(t *testing.T, e *env.Environment) env.Episode {
	t.Helper()
	rec := env.NewRecorder(e, env.State{0, 0}, time.Unix(0, 0), 6*time.Minute, time.Minute)
	steps := []env.Action{
		{1, device.NoAction}, // lamp on
		{device.NoAction, 1}, // heater on
		{0, device.NoAction}, // lamp off
		{device.NoAction, device.NoAction},
		{device.NoAction, 0}, // heater off
		{1, device.NoAction}, // lamp on
	}
	for _, a := range steps {
		if err := rec.Step(a); err != nil {
			t.Fatalf("record: %v", err)
		}
	}
	return rec.Episode()
}

func TestPerturbEpisodeLossDropsEvents(t *testing.T) {
	e := testEnv(t)
	ep := buildEpisode(t, e)
	in := NewInjector(Config{Seed: 1, LossProb: 1})
	got, err := in.PerturbEpisode(e, ep)
	if err != nil {
		t.Fatal(err)
	}
	for tt, a := range got.Actions {
		if !a.IsNoOp() {
			t.Errorf("instance %d: event survived full loss: %v", tt, a)
		}
	}
	if err := got.Validate(e); err != nil {
		t.Errorf("perturbed episode invalid: %v", err)
	}
	if in.Stats().Lost == 0 {
		t.Error("no losses recorded")
	}
}

func TestPerturbEpisodeStaysConsistent(t *testing.T) {
	e := testEnv(t)
	ep := buildEpisode(t, e)
	for seed := int64(0); seed < 20; seed++ {
		in := NewInjector(Config{Seed: seed, LossProb: 0.3, DupProb: 0.5, ReorderProb: 0.5})
		got, err := in.PerturbEpisode(e, ep)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := got.Validate(e); err != nil {
			t.Errorf("seed %d: perturbed episode invalid: %v", seed, err)
		}
		if got.Len() != ep.Len() {
			t.Errorf("seed %d: length changed %d -> %d", seed, ep.Len(), got.Len())
		}
	}
}

func TestPerturbEpisodesMapsCorpus(t *testing.T) {
	e := testEnv(t)
	eps := []env.Episode{buildEpisode(t, e), buildEpisode(t, e)}
	in := NewInjector(Config{Seed: 2, DupProb: 1})
	got, err := in.PerturbEpisodes(e, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d episodes, want 2", len(got))
	}
	if in.Stats().Duplicated == 0 {
		t.Error("no duplications recorded")
	}
}

func TestCrashFaultFiresAtExactStep(t *testing.T) {
	origCrash := Crash
	defer func() { Crash = origCrash }()
	var crashedAt []int
	Crash = func(step int) { crashedAt = append(crashedAt, step) }

	e := testEnv(t)
	f := Wrap(testSim(t, e, 10, nil), Config{Seed: 1, CrashAtStep: 4})
	f.Reset()
	for i := 0; i < 7; i++ {
		if _, _, _, err := f.Step(env.NoOp(e.K())); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
	}
	if len(crashedAt) != 1 || crashedAt[0] != 4 {
		t.Errorf("crash fired at %v, want exactly once at step 4", crashedAt)
	}
	if f.Stats().Crashes != 1 {
		t.Errorf("Stats().Crashes = %d, want 1", f.Stats().Crashes)
	}
}

func TestCrashFaultCountsAcrossEpisodes(t *testing.T) {
	origCrash := Crash
	defer func() { Crash = origCrash }()
	var crashedAt []int
	Crash = func(step int) { crashedAt = append(crashedAt, step) }

	e := testEnv(t)
	f := Wrap(testSim(t, e, 3, nil), Config{Seed: 1, CrashAtStep: 5})
	for ep := 0; ep < 3; ep++ {
		f.Reset()
		for i := 0; i < 3; i++ {
			if _, _, _, err := f.Step(env.NoOp(e.K())); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 5th cumulative step is the 2nd step of the 2nd episode.
	if len(crashedAt) != 1 || crashedAt[0] != 5 {
		t.Errorf("crash fired at %v, want once at cumulative step 5", crashedAt)
	}
}

func TestCrashFaultDisabledByDefault(t *testing.T) {
	origCrash := Crash
	defer func() { Crash = origCrash }()
	Crash = func(step int) { t.Fatalf("crash fired at %d with CrashAtStep unset", step) }

	e := testEnv(t)
	f := Wrap(testSim(t, e, 10, nil), Config{Seed: 1})
	f.Reset()
	for i := 0; i < 10; i++ {
		if _, _, _, err := f.Step(env.NoOp(e.K())); err != nil {
			t.Fatal(err)
		}
	}
}
