package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"testing"

	"jarvis/internal/checkpoint"
	"jarvis/internal/wal"
)

// walOpenFile adapts a Disk to the wal.Options.OpenFile seam.
func walOpenFile(d *Disk) func(name string, flag int, perm os.FileMode) (wal.File, error) {
	return func(name string, flag int, perm os.FileMode) (wal.File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return d.Wrap(f), nil
	}
}

// TestDiskShortWriteTearsWALFrame drives a WAL through a short-write
// fault: the failing append leaves a genuinely torn frame on disk, and a
// plain reopen must truncate it and surface exactly the clean records —
// the on-disk state a follower journaling shipped frames crashes into.
func TestDiskShortWriteTearsWALFrame(t *testing.T) {
	dir := t.TempDir()
	rec := func(i int) string { return fmt.Sprintf("record-%02d", i) }
	frame := int64(8 + len(rec(0)))
	// Three clean frames, then a fault partway into the fourth's payload.
	d := NewDisk(DiskShortWrite, 3*frame+11)

	l, err := wal.Open(dir, wal.Options{OpenFile: walOpenFile(d)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var appended []string
	var failed error
	for i := 0; i < 6; i++ {
		if err := l.Append([]byte(rec(i))); err != nil {
			failed = err
			break
		}
		appended = append(appended, rec(i))
	}
	if failed == nil {
		t.Fatal("no append failed despite the injected fault")
	}
	if !errors.Is(failed, io.ErrShortWrite) {
		t.Fatalf("append error = %v, want io.ErrShortWrite", failed)
	}
	if len(appended) != 3 {
		t.Fatalf("%d clean appends before the fault, want 3", len(appended))
	}
	if d.Fired() == 0 {
		t.Fatal("injector never fired")
	}
	l.Close()

	// A crash-restart on this directory: recovery must classify the torn
	// frame as a tail to truncate, not corruption.
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l2.Close()
	if l2.Recovery().TruncatedBytes == 0 {
		t.Fatal("recovery did not truncate the torn frame")
	}
	var got []string
	if err := l2.Replay(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(appended) {
		t.Fatalf("replay saw %d records, want %d", len(got), len(appended))
	}
	for i := range got {
		if got[i] != appended[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], appended[i])
		}
	}
}

// TestDiskHealRestoresAppends proves the injector is a transient fault:
// after Heal, the same handle accepts writes again.
func TestDiskHealRestoresAppends(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(DiskWriteError, 0)
	l, err := wal.Open(dir, wal.Options{OpenFile: walOpenFile(d)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append([]byte("doomed")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("faulted append = %v, want ErrInjectedWrite", err)
	}
	d.Heal()
	if err := l.Append([]byte("healed")); err != nil {
		t.Fatalf("append after Heal: %v", err)
	}
}

// TestDiskNoSpaceFailsCheckpointKeepsOldGeneration swaps the checkpoint
// temp-file seam for an ENOSPC disk: the new generation's save must fail
// cleanly and the previous generation must remain loadable.
func TestDiskNoSpaceFailsCheckpointKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.OpenStore(dir, "base", 3, nil)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if _, err := store.Save(func(w io.Writer) error {
		_, err := w.Write([]byte("generation-one"))
		return err
	}); err != nil {
		t.Fatalf("clean save: %v", err)
	}

	d := NewDisk(DiskNoSpace, 4)
	orig := checkpoint.OpenTemp
	checkpoint.OpenTemp = func(tdir, pattern string) (checkpoint.NamedFile, error) {
		f, err := os.CreateTemp(tdir, pattern)
		if err != nil {
			return nil, err
		}
		return d.Wrap(f), nil
	}
	defer func() { checkpoint.OpenTemp = orig }()

	_, err = store.Save(func(w io.Writer) error {
		_, err := w.Write([]byte("generation-two"))
		return err
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save on full disk = %v, want ENOSPC", err)
	}
	checkpoint.OpenTemp = orig

	var got []byte
	if _, err := store.Load(checkpoint.LoadOptions{Tries: 1}, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		got = b
		return err
	}); err != nil {
		t.Fatalf("load after failed save: %v", err)
	}
	if string(got) != "generation-one" {
		t.Fatalf("loaded %q, want the surviving generation-one", got)
	}
}
