// Package fault is a seeded, composable fault-injection layer for the
// Jarvis pipeline. Real IoT deployments — the setting IoTWarden and
// RESTRAIN model when stress-testing trigger-action defenses — see sensor
// dropout, stuck readings, lost/duplicated/reordered events, delayed
// actuation, and transiently unreachable devices. This package reproduces
// those conditions deterministically so the constrained agent's safety
// claim (Algorithm 2) can be exercised on degraded streams instead of only
// clean simulated traces.
//
// Two injection points are provided:
//
//   - FaultyEnv wraps any rl.SafeEnv and perturbs the agent's view of it:
//     observations go stale (stuck-at / dropout), actuations are delayed or
//     dropped (device unavailability), and every command is re-checked
//     against the hub's ground-truth state before it executes — the hub,
//     not the possibly stale observer, is the enforcement point for P_safe,
//     so a constrained agent stays violation-free under faults.
//
//   - Injector.PerturbEpisode perturbs recorded event streams (loss,
//     duplication, reordering) while keeping them FSM-consistent, for
//     fault-injected learning phases and audits.
package fault

import (
	"fmt"
	"math/rand"
	"os"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/rl"
)

// Config parameterizes the injector. All probabilities are per-opportunity
// (per device per step, or per event) in [0, 1]; zero disables that mode.
type Config struct {
	// Seed drives every fault draw; runs are reproducible.
	Seed int64

	// StuckProb is the per-device per-step probability that a reading
	// freezes at its current value for StuckMin..StuckMax instances
	// (sensor stuck-at).
	StuckProb          float64
	StuckMin, StuckMax int

	// DropoutProb is the per-device per-step probability that one reading
	// is lost, leaving the observer with the previous (stale) value.
	DropoutProb float64

	// DelayProb is the per-mini-action probability that an actuation is
	// deferred by 1..DelayMax steps instead of executing now. A deferred
	// command that is no longer valid when it fires is dropped, as a real
	// hub discards stale commands.
	DelayProb float64
	DelayMax  int

	// UnavailProb is the per-device per-step probability that the device
	// becomes unreachable for UnavailMin..UnavailMax instances; commands
	// sent to an unreachable device are dropped.
	UnavailProb            float64
	UnavailMin, UnavailMax int

	// LossProb, DupProb and ReorderProb are event-stream fault rates used
	// by PerturbEpisode: an event is dropped, re-delivered at the next
	// instance, or swapped with its successor.
	LossProb, DupProb, ReorderProb float64

	// Observable restricts observation faults (stuck-at, dropout) to the
	// devices for which it returns true; nil applies them to every device.
	// Typically this selects the sensors.
	Observable func(dev int) bool

	// CrashAtStep, when positive, kills the process (via Crash) the moment
	// the wrapped environment completes that many Step calls — a
	// deterministic mid-training crash for recovery drills. The count is
	// cumulative across episodes, so the crash point is reproducible from
	// the seed and step budget alone.
	CrashAtStep int
}

func (c Config) withDefaults() Config {
	if c.StuckMin <= 0 {
		c.StuckMin = 5
	}
	if c.StuckMax < c.StuckMin {
		c.StuckMax = c.StuckMin
	}
	if c.DelayMax <= 0 {
		c.DelayMax = 3
	}
	if c.UnavailMin <= 0 {
		c.UnavailMin = 5
	}
	if c.UnavailMax < c.UnavailMin {
		c.UnavailMax = c.UnavailMin
	}
	return c
}

// Crash terminates the process when a CrashFault fires. It is a variable
// so tests (and the crash-recovery harness's in-process control run) can
// observe the crash point without dying; the default exits with status
// 137, mimicking a SIGKILL so supervisors treat it as an abrupt death
// rather than a clean shutdown.
var Crash = func(step int) {
	fmt.Fprintf(os.Stderr, "fault: injected crash at step %d\n", step)
	os.Exit(137)
}

// Uniform returns a Config with every fault mode enabled at the given rate
// — the chaos experiment's single sweep knob. rate 0 is a transparent
// wrapper.
func Uniform(seed int64, rate float64) Config {
	return Config{
		Seed:        seed,
		StuckProb:   rate / 4, // stuck windows persist; keep them rarer
		DropoutProb: rate,
		DelayProb:   rate,
		UnavailProb: rate / 4,
		LossProb:    rate,
		DupProb:     rate,
		ReorderProb: rate,
	}
}

// Stats counts the faults actually fired, for reporting.
type Stats struct {
	// Stuck and Dropouts count perturbed observations.
	Stuck, Dropouts int
	// Delayed counts deferred actuations; StaleDropped counts deferred
	// commands that were invalid by the time they fired.
	Delayed, StaleDropped int
	// Unavailable counts commands dropped on unreachable devices.
	Unavailable int
	// Gated counts mini-actions the hub's ground-truth P_safe check
	// rejected (the agent proposed them from a stale observation).
	Gated int
	// Lost, Duplicated and Reordered count event-stream perturbations.
	Lost, Duplicated, Reordered int
	// Crashes counts CrashFault firings (at most one per process, unless
	// tests stub Crash to survive it).
	Crashes int
}

func (s Stats) String() string {
	return fmt.Sprintf("stuck=%d dropout=%d delayed=%d stale=%d unavail=%d gated=%d lost=%d dup=%d reorder=%d crash=%d",
		s.Stuck, s.Dropouts, s.Delayed, s.StaleDropped, s.Unavailable, s.Gated, s.Lost, s.Duplicated, s.Reordered, s.Crashes)
}

// Injector holds the seeded fault state shared by FaultyEnv and the
// event-stream perturbations.
type Injector struct {
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// NewInjector builds a seeded injector.
func NewInjector(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the faults fired so far.
func (in *Injector) Stats() Stats { return in.stats }

// PerturbEpisode applies event-stream faults — loss, duplication,
// reordering — to a recorded episode and replays the perturbed action
// stream through the FSM so the result is always a consistent episode
// (commands invalid in the state actually reached are discarded, as a real
// hub would).
func (in *Injector) PerturbEpisode(e *env.Environment, ep env.Episode) (env.Episode, error) {
	acts := make([]env.Action, len(ep.Actions))
	for i, a := range ep.Actions {
		acts[i] = a.Clone()
	}
	// Reordering: swap adjacent composite events.
	for t := 0; t+1 < len(acts); t++ {
		if in.cfg.ReorderProb > 0 && in.rng.Float64() < in.cfg.ReorderProb {
			acts[t], acts[t+1] = acts[t+1], acts[t]
			in.stats.Reordered++
			mReordered.Inc()
		}
	}
	// Duplication: re-deliver an event at the next instance on top of
	// whatever is already there (only onto untouched devices — constraint 1
	// admits one action per device per interval).
	for t := 0; t+1 < len(acts); t++ {
		if in.cfg.DupProb <= 0 || acts[t].IsNoOp() || in.rng.Float64() >= in.cfg.DupProb {
			continue
		}
		duped := false
		for dev, ac := range acts[t] {
			if ac != device.NoAction && acts[t+1][dev] == device.NoAction {
				acts[t+1][dev] = ac
				duped = true
			}
		}
		if duped {
			in.stats.Duplicated++
			mDuplicated.Inc()
		}
	}
	// Loss: the event never arrives.
	for t := range acts {
		if in.cfg.LossProb > 0 && !acts[t].IsNoOp() && in.rng.Float64() < in.cfg.LossProb {
			acts[t] = env.NoOp(len(acts[t]))
			in.stats.Lost++
			mLost.Inc()
		}
	}
	return env.ReplayActions(e, ep.States[0], ep.Start, ep.I, acts)
}

// PerturbEpisodes maps PerturbEpisode over a learning-phase corpus.
func (in *Injector) PerturbEpisodes(e *env.Environment, eps []env.Episode) ([]env.Episode, error) {
	out := make([]env.Episode, len(eps))
	for i, ep := range eps {
		p, err := in.PerturbEpisode(e, ep)
		if err != nil {
			return nil, fmt.Errorf("fault: episode %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// delayed is one deferred actuation.
type delayed struct {
	due int // absolute instance at which it fires
	dev int
	act device.ActionID
}

// FaultyEnv wraps an rl.SafeEnv with runtime faults. It satisfies
// rl.SafeEnv itself, so agents train and evaluate through it unchanged.
//
// Observations returned by Reset/Step/State are the *observer's* view —
// possibly stale under stuck-at and dropout faults — while transitions,
// rewards, and violation audits run on the wrapped environment's ground
// truth. Safety is enforced hub-side: every composite action is re-checked
// against the true current state before executing, and offending
// mini-actions are stripped, so a P_safe-constrained agent commits zero
// violations even when recommending from stale state.
type FaultyEnv struct {
	*Injector
	inner rl.SafeEnv
	e     *env.Environment

	obs          env.State // observer's (possibly stale) view
	stuckUntil   []int
	unavailUntil []int
	pending      []delayed
	steps        int // cumulative Step calls, for CrashAtStep
}

var _ rl.SafeEnv = (*FaultyEnv)(nil)

// Wrap builds a FaultyEnv around inner.
func Wrap(inner rl.SafeEnv, cfg Config) *FaultyEnv {
	k := inner.Env().K()
	f := &FaultyEnv{
		Injector:     NewInjector(cfg),
		inner:        inner,
		e:            inner.Env(),
		stuckUntil:   make([]int, k),
		unavailUntil: make([]int, k),
	}
	f.obs = inner.State()
	return f
}

// Env implements rl.SafeEnv.
func (f *FaultyEnv) Env() *env.Environment { return f.e }

// Instance implements rl.SafeEnv.
func (f *FaultyEnv) Instance() int { return f.inner.Instance() }

// Instances implements rl.SafeEnv.
func (f *FaultyEnv) Instances() int { return f.inner.Instances() }

// Violations implements rl.SafeEnv, delegating to the wrapped audit (which
// counts against ground truth).
func (f *FaultyEnv) Violations() int { return f.inner.Violations() }

// ResetViolations implements rl.SafeEnv.
func (f *FaultyEnv) ResetViolations() { f.inner.ResetViolations() }

// Safe implements rl.SafeEnv. The predicate is evaluated as given — the
// agent plans against its observation — but Step independently re-checks
// every actuation against ground truth before executing it.
func (f *FaultyEnv) Safe(st env.State, a env.Action) bool { return f.inner.Safe(st, a) }

// State implements rl.SafeEnv, returning the observer's view.
func (f *FaultyEnv) State() env.State { return f.obs.Clone() }

// True returns the wrapped environment's ground-truth state (for tests and
// reporting).
func (f *FaultyEnv) True() env.State { return f.inner.State() }

// Reset implements rl.SafeEnv. Fault windows and pending actuations clear;
// the initial observation is exact.
func (f *FaultyEnv) Reset() env.State {
	s := f.inner.Reset()
	f.obs = s.Clone()
	for i := range f.stuckUntil {
		f.stuckUntil[i] = 0
		f.unavailUntil[i] = 0
	}
	f.pending = f.pending[:0]
	return s
}

// Step implements rl.SafeEnv: the composite action runs the actuation
// fault gauntlet (unavailability, delay, hub-side safety gating), the
// wrapped environment steps on ground truth, and the returned observation
// is perturbed by the observation faults.
func (f *FaultyEnv) Step(a env.Action) (env.State, float64, bool, error) {
	t := f.inner.Instance()
	act := a.Clone()

	// Transient device unavailability: commands to unreachable devices are
	// dropped.
	for dev, ac := range act {
		if ac == device.NoAction {
			continue
		}
		if t < f.unavailUntil[dev] {
			act[dev] = device.NoAction
			f.stats.Unavailable++
			mUnavailable.Inc()
		}
	}

	// Delayed actuation: defer individual mini-actions.
	for dev, ac := range act {
		if ac == device.NoAction || f.cfg.DelayProb <= 0 {
			continue
		}
		if f.rng.Float64() < f.cfg.DelayProb {
			due := t + 1 + f.rng.Intn(f.cfg.DelayMax)
			f.pending = append(f.pending, delayed{due: due, dev: dev, act: ac})
			act[dev] = device.NoAction
			f.stats.Delayed++
			mDelayed.Inc()
		}
	}

	// Deliver deferred commands that are due (or overdue — an episode reset
	// clears them, so overdue here only means the due instance passed while
	// the device slot was contested).
	rest := f.pending[:0]
	truth := f.inner.State()
	for _, d := range f.pending {
		if d.due > t {
			rest = append(rest, d)
			continue
		}
		if act[d.dev] != device.NoAction {
			rest = append(rest, d) // slot taken this interval; retry next step
			continue
		}
		if _, ok := f.e.Device(d.dev).Next(truth[d.dev], d.act); !ok {
			f.stats.StaleDropped++ // no longer valid; hub discards it
			mStaleDropped.Inc()
			continue
		}
		act[d.dev] = d.act
	}
	f.pending = rest

	// Hub-side enforcement: re-check the assembled action against ground
	// truth. The agent may have planned from a stale observation; the hub
	// strips any mini-action whose inclusion makes the true transition
	// unsafe or FSM-invalid, keeping the constrained guarantee intact.
	if !act.IsNoOp() && !f.inner.Safe(truth, act) {
		gated := env.NoOp(len(act))
		for dev, ac := range act {
			if ac == device.NoAction {
				continue
			}
			gated[dev] = ac
			if !f.inner.Safe(truth, gated) {
				gated[dev] = device.NoAction
				f.stats.Gated++
				mGated.Inc()
			}
		}
		act = gated
	}

	next, r, done, err := f.inner.Step(act)
	if err != nil {
		return nil, r, done, err
	}

	// CrashFault: die abruptly after the configured number of completed
	// steps. Firing after the inner Step makes the crash land between a
	// committed transition and whatever bookkeeping the caller would have
	// done next — the worst spot for naive persistence, which is the point.
	f.steps++
	if f.cfg.CrashAtStep > 0 && f.steps == f.cfg.CrashAtStep {
		f.stats.Crashes++
		mCrashes.Inc()
		Crash(f.steps)
	}

	// Observation faults: open/extend stuck windows, then build the
	// observer's view.
	nt := f.inner.Instance()
	for dev := range next {
		if f.cfg.Observable != nil && !f.cfg.Observable(dev) {
			f.obs[dev] = next[dev]
			continue
		}
		if f.cfg.StuckProb > 0 && nt >= f.stuckUntil[dev] && f.rng.Float64() < f.cfg.StuckProb {
			span := f.cfg.StuckMin + f.rng.Intn(f.cfg.StuckMax-f.cfg.StuckMin+1)
			f.stuckUntil[dev] = nt + span
		}
		switch {
		case nt < f.stuckUntil[dev]:
			f.stats.Stuck++ // reading frozen at the last observed value
			mStuck.Inc()
		case f.cfg.DropoutProb > 0 && f.rng.Float64() < f.cfg.DropoutProb:
			f.stats.Dropouts++ // this reading lost; observer keeps the stale one
			mDropouts.Inc()
		default:
			f.obs[dev] = next[dev]
		}
	}

	// Open unavailability windows for the next interval.
	if f.cfg.UnavailProb > 0 {
		for dev := range next {
			if nt >= f.unavailUntil[dev] && f.rng.Float64() < f.cfg.UnavailProb {
				span := f.cfg.UnavailMin + f.rng.Intn(f.cfg.UnavailMax-f.cfg.UnavailMin+1)
				f.unavailUntil[dev] = nt + span
			}
		}
	}

	return f.obs.Clone(), r, done, nil
}
