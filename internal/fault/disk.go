package fault

import (
	"errors"
	"io"
	"os"
	"sync"
	"syscall"
)

// The third injection point: disk faults behind the durability layer. The
// WAL (wal.Options.OpenFile) and the checkpoint writer (checkpoint.OpenTemp)
// both accept substitute file handles, and Disk produces handles whose
// writes start failing after a configurable number of clean bytes — the
// moment a replication test needs a torn shipped frame, a half-written
// checkpoint temp, or a full disk, on demand and deterministically.

// DiskMode selects how a Disk handle fails once its clean-byte budget is
// spent.
type DiskMode int

const (
	// DiskWriteError rejects the whole write with a generic I/O error;
	// nothing of the failing write reaches the file.
	DiskWriteError DiskMode = iota
	// DiskShortWrite persists only the bytes left in the budget and returns
	// io.ErrShortWrite — the torn-frame case: a length prefix whose payload
	// never fully lands.
	DiskShortWrite
	// DiskNoSpace behaves like DiskShortWrite but reports syscall.ENOSPC,
	// the full-disk signature callers special-case.
	DiskNoSpace
)

// ErrInjectedWrite is the error a DiskWriteError handle returns.
var ErrInjectedWrite = errors.New("fault: injected write error")

// Disk is a deterministic disk-fault injector shared by every handle
// wrapped through it: writes pass through untouched until CleanBytes total
// bytes have landed, then fail per the configured mode until Heal. Sync
// and Close always pass through — the fault modeled is a failing write,
// not a hung device.
type Disk struct {
	mu     sync.Mutex
	mode   DiskMode
	budget int64 // clean bytes remaining; < 0 means healed (unlimited)
	fired  int
}

// NewDisk builds an injector that lets cleanBytes through before faulting.
// cleanBytes 0 faults on the first write.
func NewDisk(mode DiskMode, cleanBytes int64) *Disk {
	return &Disk{mode: mode, budget: cleanBytes}
}

// Heal stops injecting: subsequent writes on every wrapped handle succeed.
func (d *Disk) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.budget = -1
}

// Fired reports how many writes have failed so far.
func (d *Disk) Fired() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// admit decides one write of n bytes: how many bytes may land and which
// error (if any) to report.
func (d *Disk) admit(n int) (allow int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.budget < 0 || int64(n) <= d.budget {
		if d.budget >= 0 {
			d.budget -= int64(n)
		}
		return n, nil
	}
	d.fired++
	allow = int(d.budget)
	d.budget = 0
	switch d.mode {
	case DiskShortWrite:
		return allow, io.ErrShortWrite
	case DiskNoSpace:
		return allow, syscall.ENOSPC
	default:
		return 0, ErrInjectedWrite
	}
}

// DiskFile is one wrapped *os.File. It satisfies both wal.File and
// checkpoint.NamedFile structurally (Write, Sync, Close, Stat, Name), so
// one wrapper serves both seams.
type DiskFile struct {
	f *os.File
	d *Disk
}

// Wrap returns a handle whose writes are subject to the injector. The
// underlying file is owned by the wrapper (Close closes it).
func (d *Disk) Wrap(f *os.File) *DiskFile {
	return &DiskFile{f: f, d: d}
}

func (df *DiskFile) Write(p []byte) (int, error) {
	allow, ferr := df.d.admit(len(p))
	var n int
	var werr error
	if allow > 0 {
		n, werr = df.f.Write(p[:allow])
	}
	if werr != nil {
		return n, werr
	}
	return n, ferr
}

func (df *DiskFile) Sync() error                { return df.f.Sync() }
func (df *DiskFile) Close() error               { return df.f.Close() }
func (df *DiskFile) Stat() (os.FileInfo, error) { return df.f.Stat() }
func (df *DiskFile) Name() string               { return df.f.Name() }
func (df *DiskFile) Seek(offset int64, whence int) (int64, error) {
	return df.f.Seek(offset, whence)
}
