package fault

import "jarvis/internal/telemetry"

// Metric handles, resolved once at init: one counter per injected fault
// kind, mirroring Stats but visible through the process-wide registry (the
// chaos experiment and a fault-wrapped daemon report through the same
// names).
var (
	mStuck        = telemetry.Default.Counter("fault.injected.stuck")
	mDropouts     = telemetry.Default.Counter("fault.injected.dropout")
	mDelayed      = telemetry.Default.Counter("fault.injected.delayed")
	mStaleDropped = telemetry.Default.Counter("fault.injected.stale_dropped")
	mUnavailable  = telemetry.Default.Counter("fault.injected.unavailable")
	mGated        = telemetry.Default.Counter("fault.injected.gated")
	mLost         = telemetry.Default.Counter("fault.injected.lost")
	mDuplicated   = telemetry.Default.Counter("fault.injected.duplicated")
	mReordered    = telemetry.Default.Counter("fault.injected.reordered")
	mCrashes      = telemetry.Default.Counter("fault.injected.crashes")
)
