package smarthome

import (
	"fmt"
	"strconv"

	"jarvis/internal/device"
	"jarvis/internal/parse"
)

// tempSensorNormalizer quantizes the temperature sensor's raw numeric
// readings (°C) into the Table I vocabulary using the comfort band, while
// resolving enum values (fire_alarm, off) and commands by name — the
// manually developed, device-specific normalization function of §V-A2.
type tempSensorNormalizer struct {
	d      *device.Device
	target float64
	band   float64
}

var _ parse.Normalizer = tempSensorNormalizer{}

func (n tempSensorNormalizer) State(attribute, value string) (device.StateID, bool) {
	if attribute == "temperature" {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, false
		}
		switch {
		case v > n.target+n.band:
			return TempAbove, true
		case v < n.target-n.band:
			return TempBelow, true
		default:
			return TempOptimal, true
		}
	}
	return n.d.StateID(value)
}

func (n tempSensorNormalizer) Action(command string) (device.ActionID, bool) {
	return n.d.ActionID(command)
}

// switchNormalizer maps the common raw switch vocabulary ("on"/"off",
// "true"/"false", "1"/"0") onto two-state devices and resolves other values
// by name.
type switchNormalizer struct {
	d *device.Device
}

var _ parse.Normalizer = switchNormalizer{}

func (n switchNormalizer) State(_, value string) (device.StateID, bool) {
	switch value {
	case "on", "true", "1", "active":
		if id, ok := n.d.StateID(StateOn); ok {
			return id, true
		}
	case "off", "false", "0", "inactive":
		if id, ok := n.d.StateID(StateOff); ok {
			return id, true
		}
	}
	return n.d.StateID(value)
}

func (n switchNormalizer) Action(command string) (device.ActionID, bool) {
	switch command {
	case "on":
		return n.d.ActionID(ActOn)
	case "off":
		return n.d.ActionID(ActOff)
	}
	return n.d.ActionID(command)
}

// ConfigureParser installs the home's device-specific normalization
// functions on a parser (Section V-A2): the temperature sensor gets the
// numeric quantizer, two-state devices get the raw switch vocabulary, and
// everything else resolves by name.
func (h *FullHome) ConfigureParser(p *parse.Parser, thermal ThermalConfig) error {
	e := h.Env
	if err := p.SetNormalizer(e.Device(h.TempSensor).Name(), tempSensorNormalizer{
		d:      e.Device(h.TempSensor),
		target: thermal.Target,
		band:   thermal.Band,
	}); err != nil {
		return fmt.Errorf("smarthome: %w", err)
	}
	for _, dev := range []int{h.LivingLight, h.BedLight, h.Oven, h.TV} {
		d := e.Device(dev)
		if err := p.SetNormalizer(d.Name(), switchNormalizer{d: d}); err != nil {
			return fmt.Errorf("smarthome: %w", err)
		}
	}
	return nil
}
