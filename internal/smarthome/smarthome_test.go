package smarthome

import (
	"testing"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

func TestTableIHomeMatchesPaper(t *testing.T) {
	h := NewTableIHome()
	e := h.Env
	if e.K() != 5 {
		t.Fatalf("K = %d, want 5 (Table I)", e.K())
	}
	// D_0 lock: 4 states per Table I.
	if got := e.Device(h.Lock).NumStates(); got != 4 {
		t.Errorf("lock states = %d, want 4", got)
	}
	// D_1 door sensor: sensing / auth / unauth (+ off).
	ds := e.Device(h.DoorSensor)
	for _, name := range []string{"sensing", "auth_user", "unauth_user"} {
		if _, ok := ds.StateID(name); !ok {
			t.Errorf("door sensor missing state %q", name)
		}
	}
	// D_3 thermostat: heat/cool/off with the 4 Table I actions.
	th := e.Device(h.Thermostat)
	if got := th.NumActions(); got != 4 {
		t.Errorf("thermostat actions = %d, want 4", got)
	}
	// D_4 temperature sensor includes fire alarm.
	if _, ok := e.Device(h.TempSensor).StateID("fire_alarm"); !ok {
		t.Error("temp sensor missing fire_alarm state")
	}
	if !e.ValidState(h.InitialState()) {
		t.Error("InitialState invalid")
	}
}

func TestFullHomeHasElevenDevices(t *testing.T) {
	h := NewFullHome()
	if h.K() != 11 {
		t.Fatalf("K = %d, want 11 (Section VI-D)", h.K())
	}
	if !h.Env.ValidState(h.InitialState()) {
		t.Error("InitialState invalid")
	}
	// Every device reachable through the manual app.
	manual, ok := h.Env.App(h.ManualApp)
	if !ok || len(manual.Devices) != 11 {
		t.Errorf("manual app subscribed to %d devices", len(manual.Devices))
	}
	// The resident may use every app.
	res, ok := h.Env.User(h.Resident)
	if !ok || len(res.Apps) != 6 {
		t.Errorf("resident authorized for %d apps, want 6", len(res.Apps))
	}
}

func TestLockFSM(t *testing.T) {
	lock := NewLock("l")
	unlocked := LockUnlocked
	next, ok := lock.Next(unlocked, 0) // lock
	if !ok || next != LockLockedOutside {
		t.Errorf("lock from unlocked = %d,%v", next, ok)
	}
	if _, ok := lock.ActionID(ActLockInside); !ok {
		t.Error("lock should expose lock_inside")
	}
	li, _ := lock.ActionID(ActLockInside)
	next, ok = lock.Next(unlocked, li)
	if !ok || next != LockLockedInside {
		t.Errorf("lock_inside from unlocked = %d,%v", next, ok)
	}
	// Unlock works from both locked states.
	for _, s := range []device.StateID{LockLockedOutside, LockLockedInside} {
		next, ok = lock.Next(s, 1)
		if !ok || next != LockUnlocked {
			t.Errorf("unlock from %d = %d,%v", s, next, ok)
		}
	}
}

func TestThermostatFSM(t *testing.T) {
	th := NewThermostat("t", 2500)
	for _, from := range []device.StateID{ThermostatHeat, ThermostatCool, ThermostatOff} {
		if next, ok := th.Next(from, ThermostatActHeat); !ok || next != ThermostatHeat {
			t.Errorf("increase_temp from %d = %d,%v", from, next, ok)
		}
		if next, ok := th.Next(from, ThermostatActCool); !ok || next != ThermostatCool {
			t.Errorf("decrease_temp from %d = %d,%v", from, next, ok)
		}
		if next, ok := th.Next(from, ThermostatActOff); !ok || next != ThermostatOff {
			t.Errorf("power_off from %d = %d,%v", from, next, ok)
		}
	}
	if th.PowerW(ThermostatHeat) != 2500 || th.PowerW(ThermostatOff) != 0 {
		t.Error("thermostat power draws wrong")
	}
}

func TestDisUtilityClasses(t *testing.T) {
	if NewLight("l", 60).MaxDisUtility() != OmegaHigh {
		t.Error("lights should be high dis-utility")
	}
	if NewThermostat("t", 2500).MaxDisUtility() != OmegaLow {
		t.Error("HVAC should be low dis-utility")
	}
	if NewWasher("w", 800).MaxDisUtility() != OmegaLow {
		t.Error("washer should be low dis-utility")
	}
	if NewTV("tv", 120).MaxDisUtility() != OmegaMedium {
		t.Error("TV should be medium dis-utility")
	}
}

func TestTableIIAppsTriggers(t *testing.T) {
	h := NewTableIHome()
	apps := TableIIApps(h.Core())
	if len(apps) != 6 { // app 2 expands to two rules
		t.Fatalf("rules = %d, want 6", len(apps))
	}

	arrival := h.InitialState()
	arrival[h.Lock] = LockLockedOutside
	arrival[h.DoorSensor] = DoorAuthUser

	var app1 TARule
	for _, r := range apps {
		if r.Number == 1 {
			app1 = r
		}
	}
	if !app1.Matches(arrival) {
		t.Error("app 1 should trigger on authorized arrival")
	}
	if app1.Matches(h.InitialState()) {
		t.Error("app 1 must not trigger at rest")
	}
	act := app1.Action(h.Env.K())
	if act[h.Lock] != 1 {
		t.Errorf("app 1 action = %v, want unlock on lock", act)
	}
	// The action must be valid and produce an unlocked door.
	next, err := h.Env.Transition(arrival, act)
	if err != nil {
		t.Fatalf("Transition: %v", err)
	}
	if next[h.Lock] != LockUnlocked {
		t.Errorf("door should be unlocked, state %d", next[h.Lock])
	}
}

func TestTableIIAppRequests(t *testing.T) {
	h := NewTableIHome()
	apps := TableIIApps(h.Core())
	app5 := apps[len(apps)-1]
	if app5.Number != 5 {
		t.Fatalf("expected app 5 last, got %d", app5.Number)
	}
	reqs := app5.Requests(h.Resident, h.AppIDs[5])
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2 (light + thermostat)", len(reqs))
	}
	// Departure state: locked outside, sensing, light on, heat on.
	s := h.InitialState()
	s[h.Lock] = LockLockedOutside
	s[h.Light] = 1
	s[h.Thermostat] = ThermostatHeat
	_, next, denials := h.Env.Apply(s, reqs)
	if len(denials) != 0 {
		t.Fatalf("denials: %v", denials)
	}
	if next[h.Light] != 0 || next[h.Thermostat] != ThermostatOff {
		t.Errorf("departure shutdown failed: %v", h.Env.FormatState(next))
	}
}

func TestAllAppActionsValidWhenTriggered(t *testing.T) {
	// Property: for every Table II rule, if the trigger matches a state
	// constructed to satisfy it, the rule's action is FSM-valid there.
	h := NewTableIHome()
	for _, r := range TableIIApps(h.Core()) {
		s := h.InitialState()
		act := r.Action(h.Env.K())
		// Put each action's target device into a state that admits the
		// action (a real hub simply drops stale commands), unless the
		// trigger pins the device to a specific state.
		for dev, a := range act {
			if a == device.NoAction {
				continue
			}
			if _, pinned := r.Trigger[dev]; pinned {
				continue
			}
			d := h.Env.Device(dev)
			for st := 0; st < d.NumStates(); st++ {
				if _, ok := d.Next(device.StateID(st), a); ok {
					s[dev] = device.StateID(st)
					break
				}
			}
		}
		for dev, st := range r.Trigger {
			s[dev] = st
		}
		for dev, a := range act {
			if a == device.NoAction {
				continue
			}
			if _, ok := h.Env.Device(dev).Next(s[dev], a); !ok {
				t.Errorf("app %d (%s): action %s invalid in state %s",
					r.Number, r.Name,
					h.Env.Device(dev).ActionName(a),
					h.Env.Device(dev).StateName(s[dev]))
			}
		}
	}
}

func TestThermalModel(t *testing.T) {
	cfg := DefaultThermalConfig()
	th := NewThermal(cfg)
	if th.Inside() != 21 || th.Target() != 21 {
		t.Fatalf("initial = %g target %g", th.Inside(), th.Target())
	}
	if th.SensorState() != TempOptimal {
		t.Error("start should be optimal")
	}
	// Cold outside, HVAC off: house cools below band eventually.
	for i := 0; i < 2000; i++ {
		th.Step(-5, ThermostatOff)
	}
	if th.SensorState() != TempBelow {
		t.Errorf("house should be below optimal, inside %g", th.Inside())
	}
	// Heating brings it back.
	for i := 0; i < 2000 && th.SensorState() != TempOptimal; i++ {
		th.Step(-5, ThermostatHeat)
	}
	if th.SensorState() != TempOptimal {
		t.Errorf("heating failed, inside %g", th.Inside())
	}
	if th.ComfortError() < 0 {
		t.Error("ComfortError must be non-negative")
	}
	// Hot day, cooling.
	th.Reset()
	for i := 0; i < 3000; i++ {
		th.Step(35, ThermostatOff)
	}
	if th.SensorState() != TempAbove {
		t.Errorf("house should be above optimal, inside %g", th.Inside())
	}
	before := th.Inside()
	th.Step(35, ThermostatCool)
	if th.Inside() >= before {
		t.Error("cooling should lower the temperature")
	}
	th.Reset()
	if th.Inside() != 21 {
		t.Error("Reset failed")
	}
}

func TestPowerDraw(t *testing.T) {
	h := NewFullHome()
	s := h.InitialState()
	base := PowerDraw(h.Env, s)
	s[h.Oven] = 1 // on: 2200 W
	if got := PowerDraw(h.Env, s); got != base+2200 {
		t.Errorf("PowerDraw with oven = %g, want %g", got, base+2200)
	}
	maxW := MaxPowerDraw(h.Env)
	if maxW <= base+2200 {
		t.Errorf("MaxPowerDraw %g should exceed any partial state", maxW)
	}
}

func TestRewards(t *testing.T) {
	h := NewFullHome()
	e := h.Env
	s := h.InitialState()

	energy := EnergyReward(e)
	// Turning the oven on must score worse than idling.
	ovenOn := env.NoOp(e.K())
	ovenOn[h.Oven] = 1
	if energy(s, ovenOn, 0) >= energy(s, env.NoOp(e.K()), 0) {
		t.Error("energy reward should penalize turning the oven on")
	}
	// Invalid action scores 0.
	bad := env.NoOp(e.K())
	bad[h.Oven] = 0 // oven already off
	if energy(s, bad, 0) != 0 {
		t.Error("invalid action should score 0")
	}

	prices := make([]float64, InstancesPerDay)
	for i := range prices {
		prices[i] = 0.05
	}
	prices[600] = 0.50 // peak at 10:00
	cost := CostReward(e, prices)
	cheap := cost(s, ovenOn, 100)
	expensive := cost(s, ovenOn, 600)
	if expensive >= cheap {
		t.Errorf("cost reward should penalize peak-hour use: %g vs %g", expensive, cheap)
	}

	comfort := ComfortReward(e, h.TempSensor, h.Thermostat)
	if comfort(s, env.NoOp(e.K()), 0) != 1 {
		t.Error("optimal temperature should score 1")
	}
	s[h.TempSensor] = TempBelow
	if got := comfort(s, env.NoOp(e.K()), 0); got >= 1 || got <= 0 {
		t.Errorf("off-band comfort = %g, want in (0,1)", got)
	}
	// Corrective heating while below scores higher than idling.
	heatOn := env.NoOp(e.K())
	heatOn[h.Thermostat] = ThermostatActHeat
	if comfort(s, heatOn, 0) <= comfort(s, env.NoOp(e.K()), 0) {
		t.Error("corrective heating should score above idling when cold")
	}
	s[h.TempSensor] = TempOff
	if comfort(s, env.NoOp(e.K()), 0) != 0 {
		t.Error("disabled sensor should score 0")
	}

	fs := Functionalities(e, h.TempSensor, h.Thermostat, prices, 0.5, 0.3, 0.2)
	if len(fs) != 3 || fs[0].Weight != 0.5 || fs[2].Name != "comfort" {
		t.Errorf("Functionalities = %+v", fs)
	}
}

func TestInstancesPerDay(t *testing.T) {
	if InstancesPerDay != 1440 {
		t.Errorf("InstancesPerDay = %d, want 1440 (T=1d, I=1min)", InstancesPerDay)
	}
}
