package smarthome

import (
	"jarvis/internal/device"
	"jarvis/internal/env"
)

// TARule is a trigger-action app rule in the paper's Table II form: a
// partial state pattern (trigger; unmentioned devices are the 'X'
// wildcard) and a set of device actions (unmentioned devices are 'O').
type TARule struct {
	// Number is the Table II app number (1..5); 0 for custom rules.
	Number int
	Name   string
	// Description is the natural-language behavior from Table II.
	Description string
	// Trigger maps device index → required state.
	Trigger map[int]device.StateID
	// Actions maps device index → action to execute when triggered.
	Actions map[int]device.ActionID
}

// Matches reports whether the trigger pattern matches a composite state.
func (r TARule) Matches(s env.State) bool {
	for dev, want := range r.Trigger {
		if dev >= len(s) || s[dev] != want {
			return false
		}
	}
	return true
}

// Action expands the rule's actions into a composite action for an
// environment with k devices.
func (r TARule) Action(k int) env.Action {
	a := env.NoOp(k)
	for dev, act := range r.Actions {
		if dev < k {
			a[dev] = act
		}
	}
	return a
}

// Requests converts the rule into per-device environment requests on
// behalf of a user through an app.
func (r TARule) Requests(user, app int) []env.Request {
	out := make([]env.Request, 0, len(r.Actions))
	for dev, act := range r.Actions {
		out = append(out, env.Request{User: user, App: app, Device: dev, Action: act})
	}
	return out
}

// CoreIndices locates the five Table I devices inside any home layout.
type CoreIndices struct {
	Lock, DoorSensor, Light, Thermostat, TempSensor int
}

// Core returns the Table I device indices of the 5-device home.
func (h *TableIHome) Core() CoreIndices {
	return CoreIndices{
		Lock: h.Lock, DoorSensor: h.DoorSensor, Light: h.Light,
		Thermostat: h.Thermostat, TempSensor: h.TempSensor,
	}
}

// Core returns the Table I device indices of the 11-device home (the
// living-room light plays D_2).
func (h *FullHome) Core() CoreIndices {
	return CoreIndices{
		Lock: h.Lock, DoorSensor: h.DoorSensor, Light: h.LivingLight,
		Thermostat: h.Thermostat, TempSensor: h.TempSensor,
	}
}

// TableIIApps returns the five common IFTTT apps of Table II expressed
// over the given device layout.
func TableIIApps(c CoreIndices) []TARule {
	return []TARule{
		{
			Number:      1,
			Name:        "door-unlock-on-arrival",
			Description: "Door unlocks when authenticated user arrives at the door",
			Trigger: map[int]device.StateID{
				c.Lock:       LockLockedOutside,
				c.DoorSensor: DoorAuthUser,
			},
			Actions: map[int]device.ActionID{
				c.Lock: 1, // unlock (a_{0_1})
			},
		},
		{
			Number:      2,
			Name:        "maintain-optimal-temperature-heat",
			Description: "Maintain optimal temperature in the house (heat when below optimum)",
			Trigger: map[int]device.StateID{
				c.TempSensor: TempBelow,
			},
			Actions: map[int]device.ActionID{
				c.Thermostat: ThermostatActHeat,
			},
		},
		{
			Number:      2,
			Name:        "maintain-optimal-temperature-cool",
			Description: "Maintain optimal temperature in the house (cool when above optimum)",
			Trigger: map[int]device.StateID{
				c.TempSensor: TempAbove,
			},
			Actions: map[int]device.ActionID{
				c.Thermostat: ThermostatActCool,
			},
		},
		{
			Number:      3,
			Name:        "lights-on-arrival",
			Description: "Lights turn on when user arrives home",
			Trigger: map[int]device.StateID{
				c.Lock:       LockLockedOutside,
				c.DoorSensor: DoorAuthUser,
			},
			Actions: map[int]device.ActionID{
				c.Light: 1, // power_on
			},
		},
		{
			Number:      4,
			Name:        "fire-alarm-response",
			Description: "Door is opened / lights turned on when fire alarm is raised",
			Trigger: map[int]device.StateID{
				c.TempSensor: TempFireAlarm,
			},
			Actions: map[int]device.ActionID{
				c.Lock:  1, // unlock
				c.Light: 1, // power_on
			},
		},
		{
			Number:      5,
			Name:        "departure-shutdown",
			Description: "Thermostat/lights turned off when user leaves the house",
			Trigger: map[int]device.StateID{
				c.Lock:       LockLockedOutside,
				c.DoorSensor: DoorSensing,
			},
			Actions: map[int]device.ActionID{
				c.Light:      0, // power_off
				c.Thermostat: ThermostatActOff,
			},
		},
	}
}
