// Package smarthome instantiates Jarvis for a smart home (Section V of the
// paper): the exact 5-device FSM of Table I, the k=11 device home used in
// the functionality evaluation of Section VI-D, the five IFTTT-style apps
// of Table II, device-specific dis-utility values, the house thermal model,
// and the three normalized functionality reward functions (energy use,
// energy cost under day-ahead-market prices, and temperature comfort).
package smarthome

import "jarvis/internal/device"

// Canonical state/action names shared by the catalog. Matching the paper's
// Table I vocabulary keeps the experiment output comparable.
const (
	StateOff = "off"
	StateOn  = "on"

	ActOff        = "power_off"
	ActOn         = "power_on"
	ActLock       = "lock"
	ActUnlock     = "unlock"
	ActLockInside = "lock_inside"
	ActIncTemp    = "increase_temp"
	ActDecTemp    = "decrease_temp"
	ActStart      = "start"
	ActStop       = "stop"
	ActOpenDoor   = "open_door"
	ActCloseDoor  = "close_door"

	// Sensor reading "actions": in the event architecture every attribute
	// change is published as a command-carrying event (Figure 2), so
	// sensor readings are modelled as device actions taken by the
	// environment itself. This lets the SPL learn sensor transitions as
	// ordinary trigger→action behavior.
	ActDetectAuth   = "detect_auth"
	ActDetectUnauth = "detect_unauth"
	ActClear        = "clear"
	ActReadAbove    = "read_above"
	ActReadBelow    = "read_below"
	ActReadOptimal  = "read_optimal"
	ActRaiseAlarm   = "raise_alarm"
	ActClearAlarm   = "clear_alarm"
)

// Per-device dis-utility values ω_i (Section V-A4): devices requiring
// immediate action and drawing little power (lights, locks, doorbells) have
// high ω; power-hungry deferrable appliances (HVAC, washers, dishwashers)
// have low ω.
const (
	OmegaHigh   = 0.9 // locks, lights, doorbells, sensors
	OmegaMedium = 0.5 // TV, oven, fridge door, coffee maker
	OmegaLow    = 0.1 // HVAC/thermostat, washer, dishwasher
)

// Lock state/action indices (Table I, D_0).
const (
	LockLockedOutside device.StateID = iota
	LockUnlocked
	LockOff
	LockLockedInside
)

// NewLock builds the Table I smart lock D_0: states
// locked(outside)/unlocked/off/locked(inside). Table I lists a single
// "Lock" action; a deterministic FSM needs distinct targets, so the lock
// exposes lock (→ locked_outside) and lock_inside (→ locked_inside) while
// keeping the paper's action indices for lock/unlock/power_off/power_on.
func NewLock(name string) *device.Device {
	return device.NewBuilder(name, device.TypeLock).
		States("locked_outside", "unlocked", StateOff, "locked_inside").
		Actions(ActLock, ActUnlock, ActOff, ActOn, ActLockInside).
		Transition("unlocked", ActLock, "locked_outside").
		Transition("unlocked", ActLockInside, "locked_inside").
		Transition("locked_outside", ActUnlock, "unlocked").
		Transition("locked_inside", ActUnlock, "unlocked").
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "locked_outside").
		PowerW("locked_outside", 2).
		PowerW("unlocked", 2).
		PowerW("locked_inside", 2).
		UniformDisUtility(OmegaHigh).
		MustBuild()
}

// Door-sensor states (Table I, D_1).
const (
	DoorSensing device.StateID = iota
	DoorAuthUser
	DoorUnauthUser
	DoorOff
)

// NewDoorSensor builds the Table I door touch sensor D_1: states
// sensing / auth-user / unauth-user (+ off), actions power_off / power_on.
// User detections are exogenous events: the sensor returns to "sensing" by
// itself, so detection states appear via the environment's Exo dynamics,
// not agent actions.
func NewDoorSensor(name string) *device.Device {
	return device.NewBuilder(name, device.TypeDoorSensor).
		States("sensing", "auth_user", "unauth_user", StateOff).
		Actions(ActOff, ActOn, ActDetectAuth, ActDetectUnauth, ActClear).
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "sensing").
		Transition("sensing", ActDetectAuth, "auth_user").
		Transition("sensing", ActDetectUnauth, "unauth_user").
		Transition("auth_user", ActClear, "sensing").
		Transition("unauth_user", ActClear, "sensing").
		PowerW("sensing", 1).
		PowerW("auth_user", 1).
		PowerW("unauth_user", 1).
		UniformDisUtility(OmegaHigh).
		MustBuild()
}

// NewLight builds a smart light: off/on, power_off/power_on.
func NewLight(name string, watts float64) *device.Device {
	return device.NewBuilder(name, device.TypeLight).
		States(StateOff, StateOn).
		Actions(ActOff, ActOn).
		Transition(StateOn, ActOff, StateOff).
		Transition(StateOff, ActOn, StateOn).
		PowerW(StateOn, watts).
		UniformDisUtility(OmegaHigh).
		MustBuild()
}

// Thermostat states (Table I, D_3).
const (
	ThermostatHeat device.StateID = iota
	ThermostatCool
	ThermostatOff
)

// Thermostat action indices (Table I, D_3): increase_temp drives the HVAC
// into heating, decrease_temp into cooling.
const (
	ThermostatActHeat device.ActionID = iota // increase_temp
	ThermostatActCool                        // decrease_temp
	ThermostatActOff
	ThermostatActOn
)

// NewThermostat builds the Table I thermostat D_3: states heat/cool/off,
// actions increase_temp/decrease_temp/power_off/power_on.
func NewThermostat(name string, watts float64) *device.Device {
	return device.NewBuilder(name, device.TypeThermostat).
		States("heat", "cool", StateOff).
		Actions(ActIncTemp, ActDecTemp, ActOff, ActOn).
		TransitionAll(ActIncTemp, "heat").
		TransitionAll(ActDecTemp, "cool").
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "heat").
		PowerW("heat", watts).
		PowerW("cool", watts).
		UniformDisUtility(OmegaLow).
		MustBuild()
}

// Temperature-sensor states (Table I, D_4). Note Table I's p_{4_0} is
// "Above Opt. Temp" and p_{4_1} "Below Opt. Temp".
const (
	TempAbove device.StateID = iota
	TempBelow
	TempOptimal
	TempFireAlarm
	TempOff
)

// NewTempSensor builds the Table I temperature sensor D_4: states
// above/below/optimal/fire-alarm (+ off), actions power_off/power_on.
// Temperature readings move exogenously with the thermal model.
func NewTempSensor(name string) *device.Device {
	b := device.NewBuilder(name, device.TypeTempSensor).
		States("above_optimal", "below_optimal", "optimal", "fire_alarm", StateOff).
		Actions(ActOff, ActOn, ActReadAbove, ActReadBelow, ActReadOptimal, ActRaiseAlarm, ActClearAlarm).
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "optimal").
		Transition("fire_alarm", ActClearAlarm, "optimal")
	for _, from := range []string{"above_optimal", "below_optimal", "optimal"} {
		b.Transition(from, ActReadAbove, "above_optimal").
			Transition(from, ActReadBelow, "below_optimal").
			Transition(from, ActReadOptimal, "optimal").
			Transition(from, ActRaiseAlarm, "fire_alarm")
	}
	return b.
		PowerW("above_optimal", 1).
		PowerW("below_optimal", 1).
		PowerW("optimal", 1).
		PowerW("fire_alarm", 1).
		UniformDisUtility(OmegaHigh).
		MustBuild()
}

// Fridge states.
const (
	FridgeClosed device.StateID = iota
	FridgeOpen
	FridgeOff
)

// NewFridge builds a fridge: running with the door closed or open, or
// powered off. Leaving the door open is the canonical SIMADL benign
// anomaly.
func NewFridge(name string, watts float64) *device.Device {
	return device.NewBuilder(name, device.TypeFridge).
		States("closed", "open", StateOff).
		Actions(ActOpenDoor, ActCloseDoor, ActOff, ActOn).
		Transition("closed", ActOpenDoor, "open").
		Transition("open", ActCloseDoor, "closed").
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "closed").
		PowerW("closed", 150).
		PowerW("open", watts).
		UniformDisUtility(OmegaMedium).
		MustBuild()
}

// NewOven builds an oven: off/on.
func NewOven(name string, watts float64) *device.Device {
	return device.NewBuilder(name, device.TypeOven).
		States(StateOff, StateOn).
		Actions(ActOff, ActOn).
		Transition(StateOn, ActOff, StateOff).
		Transition(StateOff, ActOn, StateOn).
		PowerW(StateOn, watts).
		UniformDisUtility(OmegaMedium).
		MustBuild()
}

// NewTV builds a television: off/on.
func NewTV(name string, watts float64) *device.Device {
	return device.NewBuilder(name, device.TypeTV).
		States(StateOff, StateOn).
		Actions(ActOff, ActOn).
		Transition(StateOn, ActOff, StateOff).
		Transition(StateOff, ActOn, StateOn).
		PowerW(StateOn, watts).
		UniformDisUtility(OmegaMedium).
		MustBuild()
}

// Appliance (washer/dishwasher) states.
const (
	ApplianceIdle device.StateID = iota
	ApplianceRunning
	ApplianceOff
)

// newCycleAppliance builds a start/stop appliance (washer, dishwasher).
func newCycleAppliance(name, typ string, watts float64) *device.Device {
	return device.NewBuilder(name, typ).
		States("idle", "running", StateOff).
		Actions(ActStart, ActStop, ActOff, ActOn).
		Transition("idle", ActStart, "running").
		Transition("running", ActStop, "idle").
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "idle").
		PowerW("idle", 3).
		PowerW("running", watts).
		UniformDisUtility(OmegaLow).
		MustBuild()
}

// NewWasher builds a washing machine.
func NewWasher(name string, watts float64) *device.Device {
	return newCycleAppliance(name, device.TypeWasher, watts)
}

// NewDishwasher builds a dishwasher.
func NewDishwasher(name string, watts float64) *device.Device {
	return newCycleAppliance(name, device.TypeDishwasher, watts)
}

// NewMotionSensor builds a motion sensor: sensing/motion/off, exogenous
// motion detections.
func NewMotionSensor(name string) *device.Device {
	return device.NewBuilder(name, device.TypeMotion).
		States("sensing", "motion", StateOff).
		Actions(ActOff, ActOn, "detect_motion", ActClear).
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "sensing").
		Transition("sensing", "detect_motion", "motion").
		Transition("motion", ActClear, "sensing").
		PowerW("sensing", 1).
		PowerW("motion", 1).
		UniformDisUtility(OmegaHigh).
		MustBuild()
}

// NewSmokeAlarm builds a smoke alarm: sensing/alarm/off. Its safe
// functioning cannot be learned from natural behavior (alarms are rare),
// matching the manual-policy discussion of Section V-B1.
func NewSmokeAlarm(name string) *device.Device {
	return device.NewBuilder(name, device.TypeSmokeAlarm).
		States("sensing", "alarm", StateOff).
		Actions(ActOff, ActOn, ActRaiseAlarm, ActClearAlarm).
		TransitionAll(ActOff, StateOff).
		Transition(StateOff, ActOn, "sensing").
		Transition("sensing", ActRaiseAlarm, "alarm").
		Transition("alarm", ActClearAlarm, "sensing").
		PowerW("sensing", 1).
		PowerW("alarm", 2).
		UniformDisUtility(OmegaHigh).
		MustBuild()
}

// NewCoffeeMaker builds a coffee maker: off/on ("brew"/"do not brew" in the
// paper's device-handler example).
func NewCoffeeMaker(name string, watts float64) *device.Device {
	return device.NewBuilder(name, device.TypeCoffeeMaker).
		States(StateOff, StateOn).
		Actions(ActOff, ActOn).
		Transition(StateOn, ActOff, StateOff).
		Transition(StateOff, ActOn, StateOn).
		PowerW(StateOn, watts).
		UniformDisUtility(OmegaMedium).
		MustBuild()
}
