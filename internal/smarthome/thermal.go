package smarthome

import "jarvis/internal/device"

// ThermalConfig parameterizes the first-order house thermal model used to
// drive the temperature sensor and the comfort experiments.
type ThermalConfig struct {
	// Initial is the indoor temperature at episode start (°C).
	Initial float64
	// Target is the user's preferred temperature and Band the half-width
	// of the "optimal" range around it.
	Target, Band float64
	// Leak is the per-interval fraction of the indoor/outdoor difference
	// that leaks through the envelope (typ. 0.002 per minute).
	Leak float64
	// HeatRate and CoolRate are the per-interval °C delivered by the HVAC
	// in heat or cool mode (typ. 0.08 °C/min).
	HeatRate, CoolRate float64
}

// DefaultThermalConfig returns the configuration used by the experiments:
// 21 °C target with a ±1 °C comfort band.
func DefaultThermalConfig() ThermalConfig {
	return ThermalConfig{
		Initial:  21,
		Target:   21,
		Band:     1,
		Leak:     0.002,
		HeatRate: 0.08,
		CoolRate: 0.08,
	}
}

// Thermal is the stateful house thermal model:
//
//	T_in ← T_in + Leak·(T_out − T_in) + HeatRate·[heating] − CoolRate·[cooling]
//
// advanced once per episode interval.
type Thermal struct {
	cfg    ThermalConfig
	inside float64
}

// NewThermal builds the model at its initial temperature.
func NewThermal(cfg ThermalConfig) *Thermal {
	return &Thermal{cfg: cfg, inside: cfg.Initial}
}

// Reset restores the initial indoor temperature.
func (th *Thermal) Reset() { th.inside = th.cfg.Initial }

// Inside returns the current indoor temperature (°C).
func (th *Thermal) Inside() float64 { return th.inside }

// Target returns the configured comfort target (°C).
func (th *Thermal) Target() float64 { return th.cfg.Target }

// Step advances one interval given the outdoor temperature and the
// thermostat state, and returns the new indoor temperature.
func (th *Thermal) Step(outdoor float64, thermostat device.StateID) float64 {
	th.inside += th.cfg.Leak * (outdoor - th.inside)
	switch thermostat {
	case ThermostatHeat:
		th.inside += th.cfg.HeatRate
	case ThermostatCool:
		th.inside -= th.cfg.CoolRate
	}
	return th.inside
}

// SensorState discretizes the indoor temperature into the Table I
// temperature-sensor vocabulary.
func (th *Thermal) SensorState() device.StateID {
	switch {
	case th.inside > th.cfg.Target+th.cfg.Band:
		return TempAbove
	case th.inside < th.cfg.Target-th.cfg.Band:
		return TempBelow
	default:
		return TempOptimal
	}
}

// ComfortError returns |T_in − target| in °C.
func (th *Thermal) ComfortError() float64 {
	d := th.inside - th.cfg.Target
	if d < 0 {
		d = -d
	}
	return d
}
