package smarthome

import (
	"testing"
	"time"

	"jarvis/internal/env"
	"jarvis/internal/events"
	"jarvis/internal/parse"
)

func TestTempSensorNormalizer(t *testing.T) {
	h := NewFullHome()
	p := parse.NewParser(h.Env)
	if err := h.ConfigureParser(p, DefaultThermalConfig()); err != nil {
		t.Fatalf("ConfigureParser: %v", err)
	}
	sensor := h.Env.Device(h.TempSensor).Name()
	mk := func(val string, min int) events.Event {
		return events.Event{
			Date:        time.Date(2020, 9, 7, 0, min, 0, 0, time.UTC),
			DeviceLabel: sensor,
			Attribute:   "temperature", AttributeValue: val,
			Command: ActReadBelow, // overwritten below per case where needed
		}
	}
	evs := []events.Event{
		mk("17.5", 1), // below band (target 21 ± 1)
		mk("21.0", 2),
		mk("24.9", 3),
		mk("soup", 4), // unparseable: skipped
	}
	evs[0].Command = ActReadBelow
	evs[1].Command = ActReadOptimal
	evs[2].Command = ActReadAbove
	recs, skipped := p.Parse(evs)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	wantStates := []struct{ got, want int }{
		{int(recs[0].NewState), int(TempBelow)},
		{int(recs[1].NewState), int(TempOptimal)},
		{int(recs[2].NewState), int(TempAbove)},
	}
	for i, w := range wantStates {
		if w.got != w.want {
			t.Errorf("record %d state = %d, want %d", i, w.got, w.want)
		}
	}
	// Enum fallback: fire alarm by name.
	fa := mk("fire_alarm", 5)
	fa.Attribute = "alarm"
	fa.Command = ActRaiseAlarm
	recs, skipped = p.Parse([]events.Event{fa})
	if skipped != 0 || len(recs) != 1 || recs[0].NewState != TempFireAlarm {
		t.Errorf("enum fallback: recs=%v skipped=%d", recs, skipped)
	}
}

func TestSwitchNormalizer(t *testing.T) {
	h := NewFullHome()
	p := parse.NewParser(h.Env)
	if err := h.ConfigureParser(p, DefaultThermalConfig()); err != nil {
		t.Fatalf("ConfigureParser: %v", err)
	}
	tv := h.Env.Device(h.TV).Name()
	evs := []events.Event{
		{Date: time.Unix(60, 0), DeviceLabel: tv, Attribute: "switch", AttributeValue: "true", Command: "on"},
		{Date: time.Unix(120, 0), DeviceLabel: tv, Attribute: "switch", AttributeValue: "0", Command: "off"},
	}
	recs, skipped := p.Parse(evs)
	if skipped != 0 || len(recs) != 2 {
		t.Fatalf("recs=%d skipped=%d", len(recs), skipped)
	}
	if recs[0].NewState != 1 || recs[0].Action != 1 {
		t.Errorf("raw 'true'/'on' did not normalize: %+v", recs[0])
	}
	if recs[1].NewState != 0 || recs[1].Action != 0 {
		t.Errorf("raw '0'/'off' did not normalize: %+v", recs[1])
	}
}

// TestRawLogEpisode: raw-vocabulary events build a consistent episode.
func TestRawLogEpisode(t *testing.T) {
	h := NewFullHome()
	p := parse.NewParser(h.Env)
	if err := h.ConfigureParser(p, DefaultThermalConfig()); err != nil {
		t.Fatalf("ConfigureParser: %v", err)
	}
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	tv := h.Env.Device(h.TV).Name()
	evs := []events.Event{
		{Date: start.Add(2 * time.Minute), DeviceLabel: tv, AttributeValue: "on", Command: "on"},
		{Date: start.Add(5 * time.Minute), DeviceLabel: tv, AttributeValue: "off", Command: "off"},
	}
	recs, skipped := p.Parse(evs)
	if skipped != 0 {
		t.Fatalf("skipped %d", skipped)
	}
	eps, err := parse.BuildEpisodes(h.Env, parse.EpisodeConfig{
		Start: start, T: 10 * time.Minute, I: time.Minute,
		Initial: h.InitialState(),
	}, recs)
	if err != nil || len(eps) != 1 {
		t.Fatalf("episodes: %v %v", eps, err)
	}
	if err := eps[0].Validate(h.Env); err != nil {
		t.Fatalf("episode invalid: %v", err)
	}
	if eps[0].States[3][h.TV] != 1 || eps[0].States[6][h.TV] != 0 {
		t.Errorf("TV trajectory wrong")
	}
}

func TestConfigureParserUnknownDevice(t *testing.T) {
	h := NewFullHome()
	other := NewTableIHome()
	p := parse.NewParser(other.Env) // different env: labels shared for core devices
	// Configuring the FullHome normalizers against the TableIHome parser
	// must fail on the devices the 5-device home lacks.
	if err := h.ConfigureParser(p, DefaultThermalConfig()); err == nil {
		t.Error("mismatched environment should error")
	}
	_ = env.NoOp
}
