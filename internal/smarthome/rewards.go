package smarthome

import (
	"jarvis/internal/env"
	"jarvis/internal/reward"
)

// EnergyReward returns the normalized energy-conservation functionality F_0
// (Section VI-D): the meter reading of the post-action state, inverted so
// low power draw scores high.
func EnergyReward(e *env.Environment) reward.Func {
	maxW := MaxPowerDraw(e)
	return func(s env.State, a env.Action, t int) float64 {
		w, ok := PowerDrawAfter(e, s, a)
		if !ok {
			return 0
		}
		if maxW == 0 {
			return 1
		}
		return 1 - w/maxW
	}
}

// CostReward returns the normalized energy-cost functionality F_1: the
// electricity cost of the post-action state under day-ahead-market prices
// ($/kWh per time instance), inverted so cheap consumption scores high.
func CostReward(e *env.Environment, prices []float64) reward.Func {
	maxW := MaxPowerDraw(e)
	var maxP float64
	for _, p := range prices {
		if p > maxP {
			maxP = p
		}
	}
	return func(s env.State, a env.Action, t int) float64 {
		w, ok := PowerDrawAfter(e, s, a)
		if !ok {
			return 0
		}
		if maxW == 0 || maxP == 0 || len(prices) == 0 {
			return 1
		}
		price := prices[t%len(prices)]
		return 1 - (w/maxW)*(price/maxP)
	}
}

// ComfortReward returns the normalized temperature functionality F_3: full
// score when the temperature sensor reads optimal, partial when off-band.
// Because the house has thermal inertia, an off-band reading with the HVAC
// actively correcting (heating when below, cooling when above) scores
// between the two — without this shaping a one-step reward could never see
// the benefit of turning the HVAC on. The continuous temperature
// difference is tracked by the Thermal model in the experiment harness.
func ComfortReward(e *env.Environment, sensor, thermostat int) reward.Func {
	return func(s env.State, a env.Action, t int) float64 {
		if sensor >= len(s) || thermostat >= len(s) {
			return 0
		}
		// Validate the whole composite action (the per-sample path returned
		// 0 on any invalid device action) without materializing Δ(s, a);
		// only the thermostat's next state matters for the score.
		if len(s) != e.K() || len(a) != e.K() {
			return 0
		}
		for i := range s {
			if _, ok := e.Device(i).Next(s[i], a[i]); !ok {
				return 0
			}
		}
		nextTherm, _ := e.Device(thermostat).Next(s[thermostat], a[thermostat])
		switch s[sensor] {
		case TempOptimal:
			return 1
		case TempBelow:
			if nextTherm == ThermostatHeat {
				return 0.6
			}
			return 0.25
		case TempAbove:
			if nextTherm == ThermostatCool {
				return 0.6
			}
			return 0.25
		default: // off or fire alarm
			return 0
		}
	}
}

// Functionalities assembles the three paper goals with user weights
// f_energy, f_cost, f_comfort over the given home layout.
func Functionalities(e *env.Environment, sensor, thermostat int, prices []float64, fEnergy, fCost, fComfort float64) []reward.Functionality {
	return []reward.Functionality{
		{Name: "energy", Weight: fEnergy, F: EnergyReward(e)},
		{Name: "cost", Weight: fCost, F: CostReward(e, prices)},
		{Name: "comfort", Weight: fComfort, F: ComfortReward(e, sensor, thermostat)},
	}
}
