package smarthome

import (
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// Episode configuration used by the paper's prototype (Section V-A2):
// time period T = 1 day, interval I = 1 min, learning phase L = 1 week.
const (
	PeriodT        = 24 * time.Hour
	IntervalI      = time.Minute
	LearningPhaseL = 7 // days
)

// InstancesPerDay is n = T/I for the prototype configuration.
var InstancesPerDay = env.NumInstances(PeriodT, IntervalI)

// TableIHome is the example smart home of Table I: a smart lock, a door
// touch sensor, a smart light, a smart thermostat controller, and a
// temperature sensor, with a resident and the apps of Table II.
type TableIHome struct {
	Env *env.Environment

	// Device indices, in the paper's D_0..D_4 order.
	Lock, DoorSensor, Light, Thermostat, TempSensor int

	// Resident is the authorized user; ManualApp is ap_0.
	Resident  int
	ManualApp int
	// AppIDs maps Table II app numbers (1..5) to environment app IDs.
	AppIDs map[int]int
}

// NewTableIHome builds the Table I environment.
func NewTableIHome() *TableIHome {
	b := env.NewBuilder()
	h := &TableIHome{AppIDs: make(map[int]int, 5)}
	h.Lock = b.AddDevice(NewLock("front-lock"), env.Placement{Location: "home", Group: "entrance"})
	h.DoorSensor = b.AddDevice(NewDoorSensor("door-sensor"), env.Placement{Location: "home", Group: "entrance"})
	h.Light = b.AddDevice(NewLight("living-light", 60), env.Placement{Location: "home", Group: "living"})
	h.Thermostat = b.AddDevice(NewThermostat("thermostat", 2500), env.Placement{Location: "home", Group: "hvac"})
	h.TempSensor = b.AddDevice(NewTempSensor("temp-sensor"), env.Placement{Location: "home", Group: "hvac"})

	all := []int{h.Lock, h.DoorSensor, h.Light, h.Thermostat, h.TempSensor}
	h.ManualApp = b.AddApp("manual", all...)
	h.AppIDs[1] = b.AddApp("app1-door-unlock", h.Lock, h.DoorSensor)
	h.AppIDs[2] = b.AddApp("app2-thermostat", h.Thermostat, h.TempSensor)
	h.AppIDs[3] = b.AddApp("app3-arrival-lights", h.Lock, h.DoorSensor, h.Light)
	h.AppIDs[4] = b.AddApp("app4-fire-response", h.Lock, h.Light, h.TempSensor)
	h.AppIDs[5] = b.AddApp("app5-departure-off", h.Lock, h.DoorSensor, h.Light, h.Thermostat)

	apps := []int{h.ManualApp}
	for _, id := range h.AppIDs {
		apps = append(apps, id)
	}
	h.Resident = b.AddUser("resident", apps...)
	h.Env = b.MustBuild()
	return h
}

// InitialState returns the canonical S_0: door locked from inside, sensors
// sensing, light off, thermostat off, temperature optimal.
func (h *TableIHome) InitialState() env.State {
	s := make(env.State, h.Env.K())
	s[h.Lock] = LockLockedInside
	s[h.DoorSensor] = DoorSensing
	s[h.Light] = 0 // off
	s[h.Thermostat] = ThermostatOff
	s[h.TempSensor] = TempOptimal
	return s
}

// FullHome is the k=11 device home of the functionality evaluation
// (Section VI-D): the Table I devices plus a bedroom light, fridge, oven,
// TV, washer and dishwasher.
type FullHome struct {
	Env *env.Environment

	Lock, DoorSensor, LivingLight, BedLight int
	Thermostat, TempSensor                  int
	Fridge, Oven, TV, Washer, Dishwasher    int

	Resident  int
	ManualApp int
	// AppIDs maps Table II app numbers (1..5) to environment app IDs.
	AppIDs map[int]int
	// Guest is an unauthorized user and RogueApp an app with no device
	// subscriptions — the raw material of Type 2 access-control
	// violations.
	Guest    int
	RogueApp int
}

// NewFullHome builds the 11-device environment.
func NewFullHome() *FullHome {
	b := env.NewBuilder()
	h := &FullHome{AppIDs: make(map[int]int, 5)}
	h.Lock = b.AddDevice(NewLock("front-lock"), env.Placement{Location: "home", Group: "entrance"})
	h.DoorSensor = b.AddDevice(NewDoorSensor("door-sensor"), env.Placement{Location: "home", Group: "entrance"})
	h.LivingLight = b.AddDevice(NewLight("living-light", 60), env.Placement{Location: "home", Group: "living"})
	h.BedLight = b.AddDevice(NewLight("bed-light", 40), env.Placement{Location: "home", Group: "bedroom"})
	h.Thermostat = b.AddDevice(NewThermostat("thermostat", 2500), env.Placement{Location: "home", Group: "hvac"})
	h.TempSensor = b.AddDevice(NewTempSensor("temp-sensor"), env.Placement{Location: "home", Group: "hvac"})
	h.Fridge = b.AddDevice(NewFridge("fridge", 300), env.Placement{Location: "home", Group: "kitchen"})
	h.Oven = b.AddDevice(NewOven("oven", 2200), env.Placement{Location: "home", Group: "kitchen"})
	h.TV = b.AddDevice(NewTV("tv", 120), env.Placement{Location: "home", Group: "living"})
	h.Washer = b.AddDevice(NewWasher("washer", 800), env.Placement{Location: "home", Group: "utility"})
	h.Dishwasher = b.AddDevice(NewDishwasher("dishwasher", 1300), env.Placement{Location: "home", Group: "kitchen"})

	all := []int{
		h.Lock, h.DoorSensor, h.LivingLight, h.BedLight, h.Thermostat,
		h.TempSensor, h.Fridge, h.Oven, h.TV, h.Washer, h.Dishwasher,
	}
	h.ManualApp = b.AddApp("manual", all...)
	h.AppIDs[1] = b.AddApp("app1-door-unlock", h.Lock, h.DoorSensor)
	h.AppIDs[2] = b.AddApp("app2-thermostat", h.Thermostat, h.TempSensor)
	h.AppIDs[3] = b.AddApp("app3-arrival-lights", h.Lock, h.DoorSensor, h.LivingLight)
	h.AppIDs[4] = b.AddApp("app4-fire-response", h.Lock, h.LivingLight, h.TempSensor)
	h.AppIDs[5] = b.AddApp("app5-departure-off", h.Lock, h.DoorSensor, h.LivingLight, h.Thermostat)

	h.RogueApp = b.AddApp("rogue-app") // subscribed to nothing
	apps := []int{h.ManualApp}
	for _, id := range h.AppIDs {
		apps = append(apps, id)
	}
	h.Resident = b.AddUser("resident", apps...)
	h.Guest = b.AddUser("guest") // authorized for nothing
	h.Env = b.MustBuild()
	return h
}

// InitialState returns the canonical morning S_0: resident home and
// everything quiet.
func (h *FullHome) InitialState() env.State {
	s := make(env.State, h.Env.K())
	s[h.Lock] = LockLockedInside
	s[h.DoorSensor] = DoorSensing
	s[h.Thermostat] = ThermostatOff
	s[h.TempSensor] = TempOptimal
	s[h.Fridge] = FridgeClosed
	// lights, oven, tv default to off (0); washer/dishwasher idle (0)
	return s
}

// K returns the device count (11 in the paper's evaluation).
func (h *FullHome) K() int { return h.Env.K() }

// PowerDraw returns the total wattage of a composite state.
func PowerDraw(e *env.Environment, s env.State) float64 {
	var w float64
	for i := range s {
		w += e.Device(i).PowerW(s[i])
	}
	return w
}

// PowerDrawAfter returns the power draw of the state Δ(s, a) without
// materializing it, and false when the action is invalid in s. Reward
// functions evaluate this once per candidate action, so the fused form
// keeps scoring allocation-free and safe for concurrent evaluators.
func PowerDrawAfter(e *env.Environment, s env.State, a env.Action) (float64, bool) {
	if len(s) != e.K() || len(a) != e.K() {
		return 0, false
	}
	var w float64
	for i := range s {
		ns, ok := e.Device(i).Next(s[i], a[i])
		if !ok {
			return 0, false
		}
		w += e.Device(i).PowerW(ns)
	}
	return w, true
}

// MaxPowerDraw returns the wattage with every device in its hungriest
// state — the normalization constant for the energy reward.
func MaxPowerDraw(e *env.Environment) float64 {
	var total float64
	for i := 0; i < e.K(); i++ {
		d := e.Device(i)
		var maxW float64
		for s := 0; s < d.NumStates(); s++ {
			if w := d.PowerW(device.StateID(s)); w > maxW {
				maxW = w
			}
		}
		total += maxW
	}
	return total
}
