// Package trace is a sampling span tracer for the Jarvis pipeline: the
// causal-chain counterpart of internal/telemetry. Where telemetry answers
// "how many and how fast in aggregate", trace answers "what did THIS
// request's journey through the pipeline look like": one sampled recommend
// request yields a span tree covering the server op, queue wait, the RL
// action selection, the safety-policy audit, the anomaly score, the WAL
// append, and the online learning step, tied together by one trace ID that
// is also stamped into the daemon's decision log.
//
// The contract mirrors the telemetry layer's zero-perturbation promise:
//
//   - Tracer.Start head-samples 1-in-N requests. A disabled tracer (or an
//     unsampled request) returns a nil *Span, and every Span method is
//     nil-safe, so the instrumented hot paths pay one atomic load plus nil
//     checks — no allocations, no locks (asserted by the package tests and
//     by TestDQNUpdateTraceOverhead in internal/rl).
//   - Spans are threaded explicitly (no context.Context): call sites pass
//     the *Span down the pipeline and create children with span.Child.
//   - Timestamps are monotonic offsets from the trace's start (time.Time's
//     monotonic reading), so spans order correctly across clock steps.
//   - Trace IDs derive from a splitmix64 mix of the tracer's seed and a
//     sampled-trace counter — a daemon replaying the same traffic from the
//     same seed reproduces the same IDs, which keeps decision-log joins
//     stable across deterministic replays.
//
// Completed traces land in a bounded in-memory ring and export as JSONL or
// Chrome trace_event JSON (loadable in chrome://tracing or Perfetto); see
// export.go.
package trace

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingCapacity bounds a tracer's completed-trace ring when New is
// given no explicit capacity.
const DefaultRingCapacity = 256

// Tracer owns the sampling decision, the trace-ID sequence, and the ring
// of completed traces. The zero value is not usable; call New.
type Tracer struct {
	// every is the head-sampling rate: 1-in-every requests start a trace.
	// <= 0 disables tracing entirely (Start returns nil).
	every atomic.Int64
	// seq counts Start calls (sampled or not) for the 1-in-N decision.
	seq atomic.Uint64
	// ids counts sampled traces; trace i gets ID splitmix64(seed, i).
	ids  atomic.Uint64
	seed atomic.Uint64
	ring *Ring
}

// New returns a disabled tracer whose completed-trace ring holds up to
// ringCapacity traces (<= 0 uses DefaultRingCapacity). Enable with
// SetSampleEvery.
func New(ringCapacity int) *Tracer {
	if ringCapacity <= 0 {
		ringCapacity = DefaultRingCapacity
	}
	return &Tracer{ring: NewRing(ringCapacity)}
}

// SetSampleEvery sets head-based sampling to 1-in-n requests. n == 1
// traces everything; n <= 0 disables tracing.
func (t *Tracer) SetSampleEvery(n int) { t.every.Store(int64(n)) }

// SampleEvery returns the current sampling rate (<= 0 when disabled).
func (t *Tracer) SampleEvery() int { return int(t.every.Load()) }

// SetSeed seeds the deterministic trace-ID sequence.
func (t *Tracer) SetSeed(seed uint64) { t.seed.Store(seed) }

// Enabled reports whether any request can currently be sampled.
func (t *Tracer) Enabled() bool { return t.every.Load() > 0 }

// Ring exposes the completed-trace ring.
func (t *Tracer) Ring() *Ring { return t.ring }

// Start begins a trace for one request and returns its root span, or nil
// when tracing is disabled or this request lost the 1-in-N draw. The nil
// result is the fast path: it costs one atomic load (disabled) or one
// atomic add (unsampled) and allocates nothing.
func (t *Tracer) Start(name string) *Span {
	every := t.every.Load()
	if every <= 0 {
		return nil
	}
	if n := t.seq.Add(1); (n-1)%uint64(every) != 0 {
		return nil
	}
	tr := &trace{
		tracer: t,
		id:     mix64(t.seed.Load(), t.ids.Add(1)),
		start:  time.Now(),
	}
	root := &Span{tr: tr, parent: -1, name: name}
	tr.spans = append(tr.spans, root)
	mSampled.Inc()
	return root
}

// trace is one in-flight trace: the arena its spans live in.
type trace struct {
	tracer *Tracer
	id     uint64
	start  time.Time // wall + monotonic anchor

	mu    sync.Mutex
	spans []*Span
	done  bool
}

// sinceNs returns the monotonic offset from the trace start.
func (tr *trace) sinceNs() int64 { return time.Since(tr.start).Nanoseconds() }

// Span is one timed region of a trace. A nil *Span is valid and inert:
// every method checks the receiver, so call sites thread spans without
// branching on whether the request was sampled.
type Span struct {
	tr      *trace
	idx     int32 // position in the trace's span arena
	parent  int32 // arena index of the parent; -1 for the root
	name    string
	startNs int64
	endNs   int64
	ended   bool
	annots  []Annotation
}

// Annotation is one key/value pair attached to a span. Values are strings
// so the export formats stay uniform; use AnnotateInt/AnnotateFloat for
// numbers.
type Annotation struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Child starts a sub-span. Safe for concurrent use across goroutines
// sharing one trace; nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	child := &Span{
		tr:      tr,
		idx:     int32(len(tr.spans)),
		parent:  s.idx,
		name:    name,
		startNs: tr.sinceNs(),
	}
	tr.spans = append(tr.spans, child)
	tr.mu.Unlock()
	mSpans.Inc()
	return child
}

// Annotate attaches a key/value pair to the span; nil-safe.
func (s *Span) Annotate(k, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.annots = append(s.annots, Annotation{K: k, V: v})
	s.tr.mu.Unlock()
}

// AnnotateInt attaches an integer annotation; nil-safe (the receiver is
// checked before the value is formatted, so the disabled path allocates
// nothing).
func (s *Span) AnnotateInt(k string, v int64) {
	if s == nil {
		return
	}
	s.Annotate(k, strconv.FormatInt(v, 10))
}

// AnnotateFloat attaches a float annotation; nil-safe.
func (s *Span) AnnotateFloat(k string, v float64) {
	if s == nil {
		return
	}
	s.Annotate(k, strconv.FormatFloat(v, 'g', 6, 64))
}

// TraceID returns the span's trace ID (0 for a nil span, and never 0 for a
// sampled one — the mixer maps a zero output to 1).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.tr.id
}

// End closes the span. Ending the root span completes the trace: it is
// snapshotted into an exportable TraceData and pushed onto the tracer's
// ring. Double-End is a no-op; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.endNs = tr.sinceNs()
	}
	root := s.parent < 0
	tr.mu.Unlock()
	if root {
		tr.complete()
	}
}

// complete snapshots the trace into its exportable form and retires it to
// the ring. Runs once per trace.
func (tr *trace) complete() {
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	data := tr.snapshotLocked()
	tr.mu.Unlock()
	mCompleted.Inc()
	tr.tracer.ring.Push(data)
}

// snapshotLocked converts the live span arena into TraceData. Spans that
// were never ended (a handler returned early) are closed at the trace's
// completion time so durations stay well-formed.
func (tr *trace) snapshotLocked() *TraceData {
	root := tr.spans[0]
	data := &TraceData{
		ID:     IDString(tr.id),
		Name:   root.name,
		UnixNs: tr.start.UnixNano(),
		DurNs:  root.endNs - root.startNs,
		Spans:  make([]SpanData, len(tr.spans)),
	}
	for i, sp := range tr.spans {
		end := sp.endNs
		if !sp.ended {
			end = root.endNs
			if end < sp.startNs {
				end = sp.startNs
			}
		}
		sd := SpanData{
			Name:    sp.name,
			Parent:  int(sp.parent),
			StartNs: sp.startNs,
			DurNs:   end - sp.startNs,
		}
		if len(sp.annots) > 0 {
			sd.Annotations = append([]Annotation(nil), sp.annots...)
		}
		data.Spans[i] = sd
	}
	return data
}

// mix64 is the splitmix64 finalizer over (seed, n) — the same mixer the
// daemon uses for per-step learning seeds, so trace IDs are a pure function
// of the configured seed and the sampled-trace ordinal. A zero output is
// remapped to 1 because 0 is the "no trace" sentinel.
func mix64(seed, n uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15*n
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}
