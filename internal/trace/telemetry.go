package trace

import "jarvis/internal/telemetry"

// Tracer self-accounting on the shared registry: how many requests won the
// sampling draw, how many spans and completed traces that produced, and how
// many finished traces the bounded ring has already evicted (a high evicted
// rate means scrape /debug/traces more often or raise -trace-ring).
var (
	mSampled     = telemetry.Default.Counter("trace.sampled")
	mSpans       = telemetry.Default.Counter("trace.spans")
	mCompleted   = telemetry.Default.Counter("trace.completed")
	mRingEvicted = telemetry.Default.Counter("trace.ring.evicted")
)
