package trace

import (
	"sync"
	"testing"
)

func TestDisabledTracerReturnsNil(t *testing.T) {
	tr := New(8)
	if tr.Enabled() {
		t.Fatal("fresh tracer enabled")
	}
	sp := tr.Start("op")
	if sp != nil {
		t.Fatal("disabled tracer sampled a request")
	}
	// Every method must be inert on the nil span.
	child := sp.Child("stage")
	child.Annotate("k", "v")
	child.AnnotateInt("n", 42)
	child.AnnotateFloat("f", 1.5)
	child.End()
	sp.End()
	if sp.TraceID() != 0 {
		t.Fatal("nil span has a trace ID")
	}
	if tr.Ring().Len() != 0 {
		t.Fatal("disabled tracer completed a trace")
	}
}

func TestHeadSamplingOneInN(t *testing.T) {
	tr := New(64)
	tr.SetSampleEvery(4)
	if !tr.Enabled() {
		t.Fatal("tracer not enabled")
	}
	sampled := 0
	for i := 0; i < 16; i++ {
		sp := tr.Start("op")
		want := i%4 == 0 // head sampling: the 1st, 5th, 9th... requests win
		if (sp != nil) != want {
			t.Fatalf("request %d: sampled=%v, want %v", i, sp != nil, want)
		}
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4", sampled)
	}
	if got := tr.Ring().Len(); got != 4 {
		t.Fatalf("ring holds %d traces, want 4", got)
	}
}

func TestTraceIDsDeterministic(t *testing.T) {
	ids := func(seed uint64) []uint64 {
		tr := New(8)
		tr.SetSeed(seed)
		tr.SetSampleEvery(1)
		var out []uint64
		for i := 0; i < 4; i++ {
			sp := tr.Start("op")
			out = append(out, sp.TraceID())
			sp.End()
		}
		return out
	}
	a, b := ids(42), ids(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at trace %d: %x vs %x", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("trace %d got the zero sentinel as ID", i)
		}
	}
	c := ids(43)
	if a[0] == c[0] {
		t.Error("different seeds produced the same first trace ID")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New(8)
	tr.SetSampleEvery(1)
	tr.SetSeed(7)
	root := tr.Start("jarvisd.recommend")
	root.AnnotateInt("depth", 1)
	sel := root.Child("rl.select")
	sel.AnnotateFloat("q", 1.25)
	sel.End()
	audit := root.Child("policy.audit")
	audit.Annotate("verdict", "safe")
	nested := audit.Child("policy.audit.inner")
	nested.End()
	audit.End()
	root.End()

	got := tr.Ring().Recent(1)
	if len(got) != 1 {
		t.Fatalf("ring has %d traces", len(got))
	}
	td := got[0]
	if td.Name != "jarvisd.recommend" || td.ID == "" || len(td.ID) != 16 {
		t.Fatalf("trace header: %+v", td)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(td.Spans))
	}
	if td.Spans[0].Parent != -1 || td.Spans[0].Name != "jarvisd.recommend" {
		t.Fatalf("root span: %+v", td.Spans[0])
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	if byName["rl.select"].Parent != 0 || byName["policy.audit"].Parent != 0 {
		t.Errorf("direct children not parented to root: %+v", td.Spans)
	}
	if got, want := byName["policy.audit.inner"].Parent, 2; got != want {
		t.Errorf("nested span parent = %d, want %d (policy.audit)", got, want)
	}
	for _, sp := range td.Spans {
		if sp.DurNs < 0 || sp.StartNs < 0 {
			t.Errorf("negative timing in span %+v", sp)
		}
		if sp.Parent >= 0 && td.Spans[sp.Parent].StartNs > sp.StartNs {
			t.Errorf("child %q starts before its parent", sp.Name)
		}
	}
	if a := byName["rl.select"].Annotations; len(a) != 1 || a[0].K != "q" {
		t.Errorf("annotations lost: %+v", a)
	}
}

func TestUnendedChildClosedAtCompletion(t *testing.T) {
	tr := New(8)
	tr.SetSampleEvery(1)
	root := tr.Start("op")
	_ = root.Child("leaked") // never ended: handler returned early
	root.End()
	td := tr.Ring().Recent(1)[0]
	if len(td.Spans) != 2 {
		t.Fatalf("spans = %d", len(td.Spans))
	}
	if td.Spans[1].DurNs < 0 {
		t.Fatalf("leaked span has negative duration: %+v", td.Spans[1])
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := New(8)
	tr.SetSampleEvery(1)
	root := tr.Start("op")
	root.End()
	root.End()
	if got := tr.Ring().Len(); got != 1 {
		t.Fatalf("double End pushed %d traces", got)
	}
}

func TestRingBoundAndOrdering(t *testing.T) {
	tr := New(3)
	tr.SetSampleEvery(1)
	for i := 0; i < 5; i++ {
		sp := tr.Start("op")
		sp.AnnotateInt("i", int64(i))
		sp.End()
	}
	if got := tr.Ring().Len(); got != 3 {
		t.Fatalf("ring len = %d, want 3", got)
	}
	recent := tr.Ring().Recent(2)
	if len(recent) != 2 {
		t.Fatalf("Recent(2) = %d traces", len(recent))
	}
	// Newest first: the last pushed trace annotated i=4.
	if a := recent[0].Spans[0].Annotations; len(a) != 1 || a[0].V != "4" {
		t.Fatalf("Recent not newest-first: %+v", recent[0].Spans[0])
	}
	if a := recent[1].Spans[0].Annotations; a[0].V != "3" {
		t.Fatalf("second-most-recent wrong: %+v", recent[1].Spans[0])
	}
}

func TestRingSlowest(t *testing.T) {
	r := NewRing(8)
	for _, d := range []int64{50, 200, 10, 120} {
		r.Push(&TraceData{ID: IDString(uint64(d)), DurNs: d})
	}
	top := r.Slowest(2)
	if len(top) != 2 || top[0].DurNs != 200 || top[1].DurNs != 120 {
		t.Fatalf("Slowest(2) = %+v", top)
	}
	all := r.Slowest(0)
	if len(all) != 4 || all[3].DurNs != 10 {
		t.Fatalf("Slowest(0) = %+v", all)
	}
}

func TestConcurrentChildrenOneTrace(t *testing.T) {
	tr := New(8)
	tr.SetSampleEvery(1)
	root := tr.Start("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := root.Child("worker")
			c.AnnotateInt("n", int64(n))
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	td := tr.Ring().Recent(1)[0]
	if len(td.Spans) != 9 {
		t.Fatalf("spans = %d, want 9", len(td.Spans))
	}
	for _, sp := range td.Spans[1:] {
		if sp.Parent != 0 {
			t.Fatalf("worker span parent = %d", sp.Parent)
		}
	}
}

// TestDisabledTracingAllocationFree is the disabled-path contract: Start on
// a disabled tracer, and the full span-method surface on the resulting nil
// span, allocate nothing. This is what keeps always-on call sites free when
// -trace-sample is 0.
func TestDisabledTracingAllocationFree(t *testing.T) {
	tr := New(8)
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("op")
		child := sp.Child("stage")
		child.AnnotateInt("i", 1)
		child.AnnotateFloat("f", 2.5)
		child.Annotate("k", "v")
		child.End()
		sp.End()
		_ = sp.TraceID()
	}); n != 0 {
		t.Fatalf("disabled tracing path: %v allocs/op, want 0", n)
	}
	// Unsampled requests on an enabled tracer must also stay free.
	tr.SetSampleEvery(1 << 30)
	tr.Start("burn") // consume the one winning draw
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("op")
		sp.Child("stage").End()
		sp.End()
	}); n != 0 {
		t.Fatalf("unsampled path: %v allocs/op, want 0", n)
	}
}

func TestMix64ZeroRemap(t *testing.T) {
	if mix64(0, 0) == 0 {
		t.Error("mix64(0,0) returned the nil sentinel")
	}
	if mix64(1, 1) == mix64(1, 2) {
		t.Error("consecutive ordinals collided")
	}
}
