package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceData is the immutable, exportable form of a completed trace. Spans
// are stored flat in creation order; Parent indexes into Spans (-1 marks
// the root, which is always Spans[0]).
type TraceData struct {
	// ID is the 16-hex-digit trace ID — the join key stamped into the
	// daemon's decision log.
	ID string `json:"id"`
	// Name is the root span's name (e.g. "jarvisd.recommend").
	Name string `json:"name"`
	// UnixNs is the wall-clock start of the trace; span offsets inside the
	// trace are monotonic.
	UnixNs int64 `json:"unixNs"`
	// DurNs is the root span's duration.
	DurNs int64      `json:"durNs"`
	Spans []SpanData `json:"spans"`
}

// SpanData is one completed span.
type SpanData struct {
	Name string `json:"name"`
	// Parent is the index of the parent span in TraceData.Spans; -1 for
	// the root.
	Parent int `json:"parent"`
	// StartNs is the monotonic offset from the trace start.
	StartNs     int64        `json:"startNs"`
	DurNs       int64        `json:"durNs"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

// IDString renders a trace ID in its canonical 16-hex-digit form.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// WriteJSONL writes one compact JSON object per trace, oldest-to-newest in
// the order given — the format consumed by `jarvisctl trace` and tailable
// alongside the daemon's decision log.
func WriteJSONL(w io.Writer, traces []*TraceData) error {
	enc := json.NewEncoder(w)
	for _, td := range traces {
		if err := enc.Encode(td); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format's JSON Array
// variant. Ph "X" is a complete (begin+duration) event; "M" is metadata.
// Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the trace_event JSON Object wrapper.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders traces in the Chrome trace_event format, loadable in
// chrome://tracing or Perfetto. Each trace becomes its own "thread" (tid)
// under one process, named by a metadata event, so concurrent requests
// render as parallel swimlanes. Timestamps are rebased to the earliest
// trace start so float64 microseconds keep sub-microsecond precision.
func WriteChrome(w io.Writer, traces []*TraceData) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	var base int64
	for i, td := range traces {
		if i == 0 || td.UnixNs < base {
			base = td.UnixNs
		}
	}
	for i, td := range traces {
		tid := i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]string{"name": fmt.Sprintf("%s %s", td.Name, td.ID)},
		})
		for _, sp := range td.Spans {
			ev := chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Pid:  1,
				Tid:  tid,
				Ts:   float64(td.UnixNs-base+sp.StartNs) / 1e3,
				Dur:  float64(sp.DurNs) / 1e3,
			}
			if len(sp.Annotations) > 0 || sp.Parent < 0 {
				ev.Args = make(map[string]string, len(sp.Annotations)+1)
				if sp.Parent < 0 {
					ev.Args["traceId"] = td.ID
				}
				for _, a := range sp.Annotations {
					ev.Args[a.K] = a.V
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	return json.NewEncoder(w).Encode(out)
}
