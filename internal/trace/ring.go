package trace

import (
	"sort"
	"sync"
)

// Ring is a bounded buffer of completed traces. When full, pushing a new
// trace evicts the oldest (the eviction is counted on the
// trace.ring.evicted telemetry counter, mirroring the telemetry event
// ring's dropped accounting). All methods are safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []*TraceData
	next int
	full bool
}

// NewRing returns a ring holding up to capacity completed traces
// (capacity < 1 is clamped to 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]*TraceData, capacity)}
}

// Push retires a completed trace into the ring, evicting the oldest entry
// when full.
func (r *Ring) Push(td *TraceData) {
	r.mu.Lock()
	if r.full {
		mRingEvicted.Inc()
	}
	r.buf[r.next] = td
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of traces currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// snapshot returns the held traces oldest-first.
func (r *Ring) snapshot() []*TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*TraceData, 0, n)
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Recent returns up to n traces, newest first. n <= 0 returns everything.
func (r *Ring) Recent(n int) []*TraceData {
	all := r.snapshot()
	// Reverse oldest-first into newest-first.
	for i, j := 0, len(all)-1; i < j; i, j = i+1, j-1 {
		all[i], all[j] = all[j], all[i]
	}
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Slowest returns up to n traces ordered by descending root duration, ties
// broken newest-first. n <= 0 returns everything.
func (r *Ring) Slowest(n int) []*TraceData {
	all := r.Recent(0) // newest first, so the sort's tie-break is stable
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurNs > all[j].DurNs })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
