package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

// sample builds a two-trace ring via the public API.
func sampleTraces(t *testing.T) []*TraceData {
	t.Helper()
	tr := New(8)
	tr.SetSampleEvery(1)
	tr.SetSeed(99)
	for i := 0; i < 2; i++ {
		root := tr.Start("jarvisd.recommend")
		c := root.Child("rl.select")
		c.AnnotateFloat("q", 0.5)
		c.End()
		root.End()
	}
	return tr.Ring().Recent(0)
}

func TestWriteJSONL(t *testing.T) {
	traces := sampleTraces(t)
	var b strings.Builder
	if err := WriteJSONL(&b, traces); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		var td TraceData
		if err := json.Unmarshal(sc.Bytes(), &td); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if td.ID == "" || len(td.Spans) != 2 {
			t.Fatalf("line %d malformed: %+v", lines, td)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d JSONL lines, want 2", lines)
	}
}

func TestWriteChromeWellFormed(t *testing.T) {
	traces := sampleTraces(t)
	var b strings.Builder
	if err := WriteChrome(&b, traces); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	// 2 traces x (1 metadata + 2 spans).
	if len(out.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(out.TraceEvents))
	}
	var meta, complete, withID int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("negative timing: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Args["traceId"] != "" {
			withID++
		}
		if ev.Tid < 1 || ev.Pid != 1 {
			t.Errorf("bad pid/tid: %+v", ev)
		}
	}
	if meta != 2 || complete != 4 {
		t.Fatalf("meta=%d complete=%d, want 2/4", meta, complete)
	}
	if withID != 2 {
		t.Fatalf("traceId stamped on %d root events, want 2", withID)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Fatalf("empty export should still carry an empty traceEvents array: %s", b.String())
	}
}
