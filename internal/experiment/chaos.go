package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"jarvis/internal/dataset"
	"jarvis/internal/fault"
	"jarvis/internal/metrics"
	"jarvis/internal/rl"
)

// ChaosConfig sizes the fault-injection robustness experiment: the
// constrained Jarvis agent is trained and evaluated on the same day
// context while the environment pipeline degrades — sensors drop out and
// stick, events get lost, actuations lag, devices disappear.
type ChaosConfig struct {
	Seed         int64
	LearningDays int
	// Rates is the uniform fault-rate sweep (default 0, 0.05, 0.1, 0.2;
	// rate 0 is the fault-free baseline every other point is compared to).
	Rates []float64
	// Episodes per training run (default 40).
	Episodes int
	// ReplayEvery throttles replay updates (default 4).
	ReplayEvery int
	// Buckets is the tabular Q time resolution (default 24).
	Buckets int
	// DecideEvery is the agent's decision interval in minutes (default 15).
	DecideEvery int
}

// ChaosPoint is one fault rate's outcome.
type ChaosPoint struct {
	// Rate is the uniform fault rate injected into the pipeline.
	Rate float64
	// Return is the greedy policy's R_smart return evaluated under faults.
	Return float64
	// TrainViolations counts ground-truth unsafe transitions during
	// training; the hub-gated constrained agent must keep this at 0.
	TrainViolations int
	// EvalViolations counts ground-truth unsafe transitions during the
	// greedy evaluation episode.
	EvalViolations int
	// Faults summarizes what the injector actually did.
	Faults fault.Stats
}

// ChaosResult is the sweep: safety-violation and reward-degradation
// curves across fault rates.
type ChaosResult struct {
	Points []ChaosPoint
}

// Baseline returns the fault-free (lowest-rate) return.
func (r *ChaosResult) Baseline() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[0].Return
}

// MaxViolations returns the worst ground-truth violation count across the
// sweep (training + evaluation) — 0 means the safety guarantee held at
// every fault rate.
func (r *ChaosResult) MaxViolations() int {
	max := 0
	for _, p := range r.Points {
		if v := p.TrainViolations + p.EvalViolations; v > max {
			max = v
		}
	}
	return max
}

// Chaos runs the robustness sweep: for each fault rate, the constrained
// agent trains and greedily evaluates inside a fault-injected wrapper
// around the simulated home. Faulty observations and dropped commands may
// cost reward, but the hub re-checks every action against ground truth,
// so the P_safe guarantee must survive every rate.
func Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0, 0.05, 0.1, 0.2}
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 40
	}
	if cfg.ReplayEvery <= 0 {
		cfg.ReplayEvery = 4
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 24
	}
	if cfg.DecideEvery <= 0 {
		cfg.DecideEvery = 15
	}
	lab, err := NewLab(LabConfig{
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Profile:      dataset.HomeAConfig(),
	})
	if err != nil {
		return nil, err
	}
	// One shared evaluation-day context keeps the sweep comparable: only
	// the fault rate changes between points.
	date := LearningStart.AddDate(0, 0, 30)
	ctx := dataset.NewDayContext(date, dataset.DefaultContext(), lab.Rng)

	// Every rate point trains its own agent from a seed derived only from
	// (cfg.Seed, ri), against the shared read-only lab and day context —
	// the sweep fans across cores with results identical to a serial run.
	points, err := Parallel(Seeds(cfg.Seed, len(cfg.Rates)), func(ri int, _ *rand.Rand) (ChaosPoint, error) {
		rate := cfg.Rates[ri]
		var faulty *fault.FaultyEnv
		agent, sim, _, err := buildJarvisAgent(lab, jarvisRunConfig{
			Ctx:         ctx,
			FEnergy:     0.4,
			FCost:       0.3,
			FComfort:    0.3,
			Episodes:    cfg.Episodes,
			ReplayEvery: cfg.ReplayEvery,
			Buckets:     cfg.Buckets,
			DecideEvery: cfg.DecideEvery,
			Seed:        cfg.Seed*1_000_003 + int64(ri)*131,
			Constrained: true,
			Wrap: func(inner rl.SafeEnv) rl.SafeEnv {
				faulty = fault.Wrap(inner, fault.Uniform(cfg.Seed+int64(ri), rate))
				return faulty
			},
		})
		if err != nil {
			return ChaosPoint{}, fmt.Errorf("experiment: chaos rate %.2f: %w", rate, err)
		}
		if _, err := agent.Train(); err != nil {
			return ChaosPoint{}, fmt.Errorf("experiment: chaos training at rate %.2f: %w", rate, err)
		}
		trainViolations := sim.Violations()
		sim.ResetViolations()
		ret, _, err := agent.Evaluate()
		if err != nil {
			return ChaosPoint{}, fmt.Errorf("experiment: chaos evaluation at rate %.2f: %w", rate, err)
		}
		return ChaosPoint{
			Rate:            rate,
			Return:          ret,
			TrainViolations: trainViolations,
			EvalViolations:  sim.Violations(),
			Faults:          faulty.Stats(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ChaosResult{Points: points}, nil
}

// String renders the safety and reward-degradation curves.
func (r *ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: constrained Jarvis under injected faults (baseline return %.3f)\n", r.Baseline())
	fmt.Fprintf(&b, "  %-6s %10s %12s %11s %11s  %s\n",
		"rate", "return", "degradation", "train-viol", "eval-viol", "injected faults")
	base := r.Baseline()
	returns := make([]float64, 0, len(r.Points))
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-6.2f %10.3f %12.3f %11d %11d  %s\n",
			p.Rate, p.Return, base-p.Return, p.TrainViolations, p.EvalViolations, p.Faults)
		returns = append(returns, p.Return)
	}
	fmt.Fprintf(&b, "  return trend: %s\n", metrics.Sparkline(returns))
	if r.MaxViolations() == 0 {
		fmt.Fprintf(&b, "  safety: P_safe held at every fault rate (0 ground-truth violations)\n")
	} else {
		fmt.Fprintf(&b, "  safety: VIOLATED — %d ground-truth unsafe transitions\n", r.MaxViolations())
	}
	return b.String()
}
