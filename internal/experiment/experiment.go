// Package experiment regenerates every evaluation table and figure of the
// Jarvis paper. Each experiment is a configurable runner whose result
// renders the same rows or series the paper reports:
//
//	Table I    — the smart-home FSM                              (Table1)
//	Table II   — normal vs learned safe T/A behavior             (Table2)
//	Table III  — action quality, unconstrained vs constrained    (Table3)
//	§VI-B      — detection of the 214-violation corpus           (Security)
//	Figure 5   — ROC of the SPL's ANN filter                     (ROCExperiment)
//	Figures 6–8 — functionality benefit vs f_j                   (Functionality)
//	Figure 9   — constrained vs unconstrained benefit space      (BenefitSpace)
//
// Experiments at "paper scale" take minutes; every runner accepts reduced
// sizes so tests and benchmarks exercise the identical code path quickly.
package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"jarvis/internal/anomaly"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/smarthome"
)

// LearningStart is the canonical first day of the learning phase (a
// Monday in early September: the shoulder season exposes both heating and
// cooling behavior within one week).
var LearningStart = time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)

// LabConfig sizes the shared learning-phase setup.
type LabConfig struct {
	// Seed drives every random choice.
	Seed int64
	// LearningDays is the length L of the learning phase (the paper uses
	// 7; experiments stressing state coverage may use more).
	LearningDays int
	// Profile selects the home-A (simulated) or home-B (trace-calibrated)
	// generator profile.
	Profile dataset.GeneratorConfig
	// TrainFilter trains the ANN benign-anomaly filter and wires it into
	// the SPL (Algorithm 1's Filter_ANN). Training data sizes:
	FilterAnomalies, FilterNormals int
	// FilterEpochs controls ANN training (default 20).
	FilterEpochs int
}

// DefaultLab returns the prototype configuration: home A, a one-week
// learning phase, and an ANN filter trained on synthesized SIMADL-style
// anomalies.
func DefaultLab(seed int64) LabConfig {
	return LabConfig{
		Seed:            seed,
		LearningDays:    smarthome.LearningPhaseL,
		Profile:         dataset.HomeAConfig(),
		FilterAnomalies: 2000,
		FilterNormals:   2000,
		FilterEpochs:    20,
	}
}

// Lab is the shared experimental setup: the 11-device home, its learning
// phase, the trained filter, the learned P_safe and the preferred-time
// index.
type Lab struct {
	Home         *smarthome.FullHome
	Gen          *dataset.Generator
	LearningDays []*dataset.Day
	Filter       *anomaly.Filter
	SPL          *policy.Learner
	Table        *policy.Table
	Pref         *reward.PreferredTimes
	Rng          *rand.Rand

	behaviorsOnce    sync.Once
	behaviorsByState map[uint64][]env.Action
}

// NewLab runs the learning phase end to end: simulate L days of natural
// behavior, train the ANN filter on labelled benign anomalies, feed the
// filtered episodes through Algorithm 1, and index preferred action times.
func NewLab(cfg LabConfig) (*Lab, error) {
	if cfg.LearningDays <= 0 {
		cfg.LearningDays = smarthome.LearningPhaseL
	}
	if cfg.FilterEpochs <= 0 {
		cfg.FilterEpochs = 20
	}
	if cfg.Profile.Thermal.Band == 0 {
		cfg.Profile = dataset.HomeAConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	home := smarthome.NewFullHome()
	gen := dataset.NewGenerator(home, cfg.Profile)

	days, err := gen.Days(LearningStart, cfg.LearningDays, rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: learning phase: %w", err)
	}

	lab := &Lab{Home: home, Gen: gen, LearningDays: days, Rng: rng}

	var filter policy.Filter
	if cfg.FilterAnomalies > 0 {
		f, err := anomaly.NewFilter(home.Env, anomaly.Config{}, rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: filter: %w", err)
		}
		anoms, err := dataset.SynthesizeAnomalies(home, days, cfg.FilterAnomalies, rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: anomalies: %w", err)
		}
		normals, err := dataset.NormalSamples(days, cfg.FilterNormals, rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: normals: %w", err)
		}
		td := append(anoms, normals...)
		if _, err := f.Train(td, anomaly.Config{Epochs: cfg.FilterEpochs}, rng); err != nil {
			return nil, fmt.Errorf("experiment: filter training: %w", err)
		}
		lab.Filter = f
		filter = f
	}

	spl := policy.NewLearner(home.Env, policy.Config{
		ThreshEnv: 0, // safety-critical: the paper's smart-home choice
		Filter:    filter,
		AllowIdle: true,
	})
	spl.ObserveAll(dataset.Episodes(days))
	lab.SPL = spl
	lab.Table = spl.Table()
	// Manual safety policy (Section V-B1): powering the HVAC off is the
	// fail-safe escape from thermal states natural behavior never
	// reaches; it cannot be learned from natural progression.
	lab.Table.AllowManual(home.Thermostat, smarthome.ThermostatActOff)
	lab.Pref = reward.LearnPreferredTimes(home.Env, dataset.Episodes(days))
	return lab, nil
}

// Actionable returns the device mask Jarvis may operate: everything except
// the sensors and the lock, which are driven by the environment and the
// resident.
func (l *Lab) Actionable() func(int) bool {
	h := l.Home
	excluded := map[int]bool{h.Lock: true, h.DoorSensor: true, h.TempSensor: true}
	return func(dev int) bool { return !excluded[dev] }
}

// RoutineDevices returns the devices whose user routine carries pending
// dis-utility (the appliances and lights the resident habitually uses).
func (l *Lab) RoutineDevices() map[int]bool {
	h := l.Home
	return map[int]bool{
		h.LivingLight: true, h.BedLight: true, h.Thermostat: true,
		h.Fridge: true, h.Oven: true, h.TV: true,
		h.Washer: true, h.Dishwasher: true,
	}
}

// BehaviorsFrom returns the composite actions observed naturally from the
// given state during learning — the candidate set for "safe action" picks
// (a multi-device safe action is whitelisted only as the bundle it
// occurred as). The lazy index is built under a sync.Once so concurrent
// experiment shards may share one Lab.
func (l *Lab) BehaviorsFrom(stateKey uint64) []env.Action {
	l.behaviorsOnce.Do(func() {
		l.behaviorsByState = make(map[uint64][]env.Action)
		for _, b := range l.SPL.Behaviors() {
			l.behaviorsByState[b.State] = append(l.behaviorsByState[b.State], l.Home.Env.DecodeAction(b.Action))
		}
	})
	return l.behaviorsByState[stateKey]
}
