package experiment

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jarvis/internal/telemetry"
)

// Harness metrics: items fanned out, per-item wall time, per-sweep wall
// time, the worker count of the last sweep, and its utilization (summed
// busy time over workers × wall time — 1.0 means every worker computed the
// whole sweep). Handles resolve once at init; the per-item writes are a
// histogram observation and two atomic adds, negligible next to experiment
// bodies that run for milliseconds to minutes.
var (
	mItems       = telemetry.Default.Counter("experiment.items")
	mItemLatency = telemetry.Default.Histogram("experiment.item.latency")
	mSweepWall   = telemetry.Default.Histogram("experiment.sweep.wall")
	mWorkers     = telemetry.Default.Gauge("experiment.workers")
	mUtilization = telemetry.Default.Gauge("experiment.utilization")
)

// Workers caps the fan-out of Parallel. 0 (the default) uses GOMAXPROCS;
// 1 forces serial execution. The setting never changes results: every work
// item draws randomness only from its own seed and results are collected in
// input order, so a sweep is reproducible on a laptop and on a 64-core box
// alike.
var Workers = 0

func workerCount(n int) int {
	w := Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// splitmix64 decorrelates neighboring seed streams (base, base+1, ...)
// into well-separated rand sources.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seeds derives n per-item seeds from a base seed. Items seeded this way
// get independent random streams regardless of how the fan-out schedules
// them.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(splitmix64(uint64(base) + uint64(i)))
	}
	return out
}

// Parallel runs fn(i, rng) for every i in [0, len(seeds)) across a bounded
// worker pool and returns the results in input order. Each invocation gets
// a private rand.Rand seeded from seeds[i] alone — never a shared or
// worker-scoped source — which makes the output bit-identical whether the
// items run serially or on any number of workers. Every item runs even if
// another fails; the returned error is the failing item with the lowest
// index (deterministic, unlike "whichever goroutine lost the race").
//
// fn must not touch shared mutable state: the Lab surfaces experiments
// share (Env, Table, Pref, Smart rewards, BehaviorsFrom) are read-only or
// internally synchronized, but per-run objects (agents, sims, filters)
// must be built inside fn.
func Parallel[R any](seeds []int64, fn func(i int, rng *rand.Rand) (R, error)) ([]R, error) {
	n := len(seeds)
	results := make([]R, n)
	errs := make([]error, n)
	var busy atomic.Int64
	run := func(i int) {
		t0 := time.Now()
		results[i], errs[i] = fn(i, rand.New(rand.NewSource(seeds[i])))
		d := time.Since(t0)
		mItemLatency.Observe(d)
		mItems.Inc()
		busy.Add(int64(d))
	}
	start := time.Now()
	w := workerCount(n)
	if w <= 1 {
		for i := range seeds {
			run(i)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range work {
					run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	if wall := time.Since(start); wall > 0 && n > 0 {
		mSweepWall.Observe(wall)
		mWorkers.SetInt(int64(w))
		mUtilization.Set(float64(busy.Load()) / (float64(wall.Nanoseconds()) * float64(w)))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
