package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/metrics"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

// Metric selects which figure a Functionality run regenerates.
type Metric int

// Metrics.
const (
	MetricEnergy  Metric = iota + 1 // Figure 6: kWh per day
	MetricCost                      // Figure 7: $ per day
	MetricComfort                   // Figure 8: mean |T_in − target| (°C)
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricEnergy:
		return "energy (kWh/day)"
	case MetricCost:
		return "cost ($/day)"
	case MetricComfort:
		return "temperature difference (°C)"
	default:
		return "unknown"
	}
}

// FunctionalityConfig sizes a Figures 6–8 run.
type FunctionalityConfig struct {
	Seed         int64
	LearningDays int
	// Metric picks the figure.
	Metric Metric
	// Weights are the f_j values swept (default 0.1..0.9 step 0.1, the
	// paper's range).
	Weights []float64
	// Days is the number of random evaluation days (paper: 30).
	Days int
	// Episodes is EP per (weight, day) training run (default 200).
	Episodes int
	// ReplayEvery throttles learning on the 1440-step episodes
	// (default 4).
	ReplayEvery int
	// Buckets is the tabular Q time resolution (default 24 = hourly
	// rows).
	Buckets int
	// DecideEvery is the agent's decision interval in minutes (default
	// 15; the paper notes demand response below a minute is never
	// needed).
	DecideEvery int
	// Restarts is the number of independently seeded training runs per
	// (weight, day) cell; the policy with the highest greedy R_smart
	// return is kept (default 3).
	Restarts int
	// HomeB evaluates on the Smart*-calibrated home-B profile instead of
	// the simulated home-A profile (Figure 4's two-home testbed).
	HomeB bool
}

// DefaultFunctionalityConfig returns the paper-scale sweep for a metric.
func DefaultFunctionalityConfig(seed int64, m Metric) FunctionalityConfig {
	return FunctionalityConfig{
		Seed:    seed,
		Metric:  m,
		Weights: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Days:    30,
	}
}

// FunctionalityResult holds one figure's series.
type FunctionalityResult struct {
	Metric  Metric
	Weights []float64
	// Normal[i] and Jarvis[i] are the metric means over the evaluation
	// days at Weights[i]; lower is better for every metric.
	Normal, Jarvis []float64
	// PerDayNormal/PerDayJarvis carry the full distributions
	// (PerDayJarvis[i][d] is weight i, day d).
	PerDayNormal []float64
	PerDayJarvis [][]float64
}

// Benefit returns Normal[i] − Jarvis[i] (positive = Jarvis wins).
func (r *FunctionalityResult) Benefit() []float64 {
	out := make([]float64, len(r.Weights))
	for i := range out {
		out[i] = r.Normal[i] - r.Jarvis[i]
	}
	return out
}

// Functionality reproduces Figures 6–8: for every weight f_j, Jarvis
// (constrained RL over R_smart with that weight emphasized) is trained and
// evaluated on random days, and its daily metric is compared with the
// normal-behavior baseline on the very same day contexts.
func Functionality(cfg FunctionalityConfig) (*FunctionalityResult, error) {
	if cfg.Metric == 0 {
		return nil, fmt.Errorf("experiment: FunctionalityConfig.Metric required")
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 200
	}
	if cfg.ReplayEvery <= 0 {
		cfg.ReplayEvery = 4
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 24
	}
	if cfg.DecideEvery <= 0 {
		cfg.DecideEvery = 15
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 3
	}
	profile := dataset.HomeAConfig()
	if cfg.HomeB {
		profile = dataset.HomeBConfig()
	}
	lab, err := NewLab(LabConfig{
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Profile:      profile,
	})
	if err != nil {
		return nil, err
	}
	h := lab.Home

	res := &FunctionalityResult{
		Metric:       cfg.Metric,
		Weights:      append([]float64(nil), cfg.Weights...),
		Normal:       make([]float64, len(cfg.Weights)),
		Jarvis:       make([]float64, len(cfg.Weights)),
		PerDayJarvis: make([][]float64, len(cfg.Weights)),
	}

	// Evaluation days: fresh contexts after the learning phase.
	type evalDay struct {
		ctx    *dataset.DayContext
		normal float64
	}
	days := make([]evalDay, 0, cfg.Days)
	s0 := h.InitialState()
	for d := 0; d < cfg.Days; d++ {
		date := LearningStart.AddDate(0, 0, 30+d)
		ctx := dataset.NewDayContext(date, dataset.DefaultContext(), lab.Rng)
		normalDay, _, err := lab.Gen.SimulateDay(ctx, s0, lab.Rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: normal day %d: %w", d, err)
		}
		m := dayMetric(cfg.Metric, h, normalDay.Episode.States[1:], normalDay.Indoor, ctx)
		days = append(days, evalDay{ctx: ctx, normal: m})
		res.PerDayNormal = append(res.PerDayNormal, m)
	}

	// Every (weight, day) cell trains from a seed derived only from its
	// grid position, so the whole sweep flattens into one fan-out. Cell
	// seeds match the historical serial formula exactly.
	nd := len(days)
	cells, err := Parallel(Seeds(cfg.Seed, len(cfg.Weights)*nd), func(i int, _ *rand.Rand) (float64, error) {
		wi, di := i/nd, i%nd
		seed := cfg.Seed*1_000_003 + int64(wi)*131 + int64(di)
		fE, fC, fT := weightsFor(cfg.Metric, cfg.Weights[wi])
		m, err := runJarvisDay(lab, cfg, days[di].ctx, fE, fC, fT, seed)
		if err != nil {
			return 0, fmt.Errorf("experiment: jarvis day %d weight %.1f: %w", di, cfg.Weights[wi], err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	for wi := range cfg.Weights {
		var jarvisSum, normalSum float64
		res.PerDayJarvis[wi] = cells[wi*nd : (wi+1)*nd : (wi+1)*nd]
		for di, m := range res.PerDayJarvis[wi] {
			jarvisSum += m
			normalSum += days[di].normal
		}
		res.Jarvis[wi] = jarvisSum / float64(cfg.Days)
		res.Normal[wi] = normalSum / float64(cfg.Days)
	}
	return res, nil
}

// newRng builds a deterministic rand source for one run cell.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// weightsFor distributes the emphasized weight w to the target
// functionality and splits the remainder between the other two, as the
// paper's sweep does.
func weightsFor(m Metric, w float64) (fEnergy, fCost, fComfort float64) {
	rest := (1 - w) / 2
	switch m {
	case MetricEnergy:
		return w, rest, rest
	case MetricCost:
		return rest, w, rest
	default:
		return rest, rest, w
	}
}

// dayExo drives the exogenous dynamics of one simulated day: house
// physics move the temperature sensor, and the resident's comings and
// goings move the lock and door sensor. The agent cannot touch these.
type dayExo struct {
	h       *smarthome.FullHome
	ctx     *dataset.DayContext
	thermal *smarthome.Thermal
	indoor  []float64
}

func newDayExo(h *smarthome.FullHome, ctx *dataset.DayContext) *dayExo {
	return &dayExo{h: h, ctx: ctx, thermal: smarthome.NewThermal(smarthome.DefaultThermalConfig())}
}

// Reset re-initializes the thermal state for a new episode.
func (x *dayExo) Reset() {
	x.thermal.Reset()
	x.indoor = x.indoor[:0]
}

// Apply implements rl.ExoFunc: it receives the post-action state and the
// upcoming instance t (1..n) and returns the exogenously adjusted state.
func (x *dayExo) Apply(s env.State, t int) env.State {
	h := x.h
	s = s.Clone()
	minute := t - 1
	x.thermal.Step(x.ctx.Outdoor[minute], s[h.Thermostat])
	x.indoor = append(x.indoor, x.thermal.Inside())
	if s[h.TempSensor] != smarthome.TempOff && s[h.TempSensor] != smarthome.TempFireAlarm {
		s[h.TempSensor] = x.thermal.SensorState()
	}
	// Resident movements (manual actions outside the agent's control).
	if x.ctx.LeaveAt >= 0 {
		switch minute {
		case x.ctx.LeaveAt:
			if s[h.Lock] != smarthome.LockOff {
				s[h.Lock] = smarthome.LockLockedOutside
			}
		case x.ctx.ReturnAt:
			if s[h.DoorSensor] == smarthome.DoorSensing {
				s[h.DoorSensor] = smarthome.DoorAuthUser
			}
		case x.ctx.ReturnAt + 1:
			if s[h.Lock] != smarthome.LockOff {
				s[h.Lock] = smarthome.LockUnlocked
			}
		case x.ctx.ReturnAt + 2:
			if s[h.DoorSensor] == smarthome.DoorAuthUser {
				s[h.DoorSensor] = smarthome.DoorSensing
			}
			if s[h.Lock] == smarthome.LockUnlocked {
				s[h.Lock] = smarthome.LockLockedInside
			}
		}
	}
	return s
}

// runJarvisDay trains constrained agents for one (day, weights) cell —
// several independently seeded restarts, keeping the policy with the
// highest greedy R_smart return — and returns that policy's metric.
func runJarvisDay(lab *Lab, cfg FunctionalityConfig, ctx *dataset.DayContext, fEnergy, fCost, fComfort float64, seed int64) (float64, error) {
	bestReturn := math.Inf(-1)
	var bestMetric float64
	for r := 0; r < cfg.Restarts; r++ {
		agent, sim, exo, err := buildJarvisAgent(lab, jarvisRunConfig{
			Ctx:         ctx,
			FEnergy:     fEnergy,
			FCost:       fCost,
			FComfort:    fComfort,
			Episodes:    cfg.Episodes,
			ReplayEvery: cfg.ReplayEvery,
			Buckets:     cfg.Buckets,
			DecideEvery: cfg.DecideEvery,
			Seed:        seed + int64(r)*7919,
			Constrained: true,
		})
		if err != nil {
			return 0, err
		}
		if _, err := agent.Train(); err != nil {
			return 0, err
		}
		ret, _, err := agent.Evaluate()
		if err != nil {
			return 0, err
		}
		states, indoor, err := evaluateGreedyDay(agent, sim, exo)
		if err != nil {
			return 0, err
		}
		if ret > bestReturn {
			bestReturn = ret
			bestMetric = dayMetric(cfg.Metric, lab.Home, states, indoor, ctx)
		}
	}
	return bestMetric, nil
}

// jarvisRunConfig parameterizes one agent run (shared by Figures 6–9 and
// the chaos experiment).
type jarvisRunConfig struct {
	Ctx                      *dataset.DayContext
	FEnergy, FCost, FComfort float64
	Episodes, ReplayEvery    int
	Buckets, DecideEvery     int
	Seed                     int64
	Constrained              bool
	// Wrap, when non-nil, decorates the simulated environment before the
	// agent sees it — the chaos experiment injects faults here.
	Wrap func(rl.SafeEnv) rl.SafeEnv
}

// buildJarvisAgent wires a SimEnv + tabular agent for one day context.
func buildJarvisAgent(lab *Lab, rc jarvisRunConfig) (*rl.Agent, *rl.SimEnv, *dayExo, error) {
	h := lab.Home
	n := smarthome.InstancesPerDay
	rs, err := reward.New(h.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			h.Env, h.TempSensor, h.Thermostat, rc.Ctx.Prices,
			rc.FEnergy, rc.FCost, rc.FComfort),
		Preferred: lab.Pref,
		Instances: n,
		Routine:   lab.RoutineDevices(),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	exo := newDayExo(h, rc.Ctx)
	var table *policy.Table
	if rc.Constrained {
		table = lab.Table
	}
	sim, err := rl.NewSimEnv(h.Env, rl.SimConfig{
		Initial:   h.InitialState(),
		Reward:    rs,
		Safe:      table,
		Exo:       exo.Apply,
		ResetHook: exo.Reset,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if !rc.Constrained {
		sim.SetAudit(lab.Table) // count violations without constraining
	}
	q := rl.NewTableQ(h.Env, n, rc.Buckets, 0.25)
	var trainEnv rl.SafeEnv = sim
	if rc.Wrap != nil {
		trainEnv = rc.Wrap(sim)
	}
	agent, err := rl.NewAgent(trainEnv, q, rl.AgentConfig{
		Episodes:     rc.Episodes,
		Gamma:        0.97,
		BatchSize:    24,
		ReplayEvery:  rc.ReplayEvery,
		DecideEvery:  rc.DecideEvery,
		Epsilon:      1,
		EpsilonMin:   0.05,
		EpsilonDecay: 0.97,
		Actionable:   lab.Actionable(),
		Rng:          newRng(rc.Seed),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return agent, sim, exo, nil
}

// evaluateGreedyDay runs one greedy episode and returns the post-action
// states plus the indoor-temperature trace.
func evaluateGreedyDay(agent *rl.Agent, sim *rl.SimEnv, exo *dayExo) ([]env.State, []float64, error) {
	s := sim.Reset()
	states := make([]env.State, 0, sim.Instances())
	for t := 0; t < sim.Instances(); t++ {
		act := env.NoOp(len(s))
		if t%agent.DecideEvery() == 0 {
			act = agent.Greedy(s, t)
		}
		next, _, _, err := sim.Step(act)
		if err != nil {
			return nil, nil, err
		}
		states = append(states, next)
		s = next
	}
	return states, append([]float64(nil), exo.indoor...), nil
}

// dayMetric computes the figure's daily metric from a day's post-action
// states, indoor-temperature trace, and context.
func dayMetric(m Metric, h *smarthome.FullHome, states []env.State, indoor []float64, ctx *dataset.DayContext) float64 {
	switch m {
	case MetricEnergy:
		var kwh float64
		for _, s := range states {
			kwh += smarthome.PowerDraw(h.Env, s) / 1000 / 60
		}
		return kwh
	case MetricCost:
		var usd float64
		for t, s := range states {
			usd += smarthome.PowerDraw(h.Env, s) / 1000 / 60 * ctx.Prices[t%len(ctx.Prices)]
		}
		return usd
	default: // comfort
		target := smarthome.DefaultThermalConfig().Target
		var sum float64
		var cnt int
		for t, temp := range indoor {
			if t < len(ctx.Occupancy) && ctx.Occupancy[t] == dataset.Away {
				continue
			}
			d := temp - target
			if d < 0 {
				d = -d
			}
			sum += d
			cnt++
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
}

// String renders the figure's series.
func (r *FunctionalityResult) String() string {
	var b strings.Builder
	fig := map[Metric]string{MetricEnergy: "Figure 6", MetricCost: "Figure 7", MetricComfort: "Figure 8"}[r.Metric]
	fmt.Fprintf(&b, "%s: %s — normal vs Jarvis across f_j (lower is better)\n", fig, r.Metric)
	fmt.Fprintf(&b, "  %-6s %10s %10s %10s\n", "f_j", "normal", "jarvis", "benefit")
	for i, w := range r.Weights {
		fmt.Fprintf(&b, "  %-6.1f %10.3f %10.3f %10.3f\n", w, r.Normal[i], r.Jarvis[i], r.Normal[i]-r.Jarvis[i])
	}
	fmt.Fprintf(&b, "  jarvis trend: %s\n", metrics.Sparkline(r.Jarvis))
	return b.String()
}
