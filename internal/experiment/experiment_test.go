package experiment

import (
	"strings"
	"testing"

	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

func TestNewLabDefaults(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1, LearningDays: 2})
	if err != nil {
		t.Fatalf("NewLab: %v", err)
	}
	if len(lab.LearningDays) != 2 {
		t.Fatalf("learning days = %d", len(lab.LearningDays))
	}
	if lab.Table == nil || lab.Table.Len() == 0 {
		t.Fatal("empty P_safe")
	}
	if lab.Filter != nil {
		t.Error("filter should be nil when FilterAnomalies is 0")
	}
	if lab.Pref == nil {
		t.Error("preferred times missing")
	}
	// The manual fail-safe policy must be present.
	if !lab.Table.ManualAllowed(manualOffAction(lab)) {
		t.Error("thermostat power_off should be manually sanctioned")
	}
	// Actionable mask: lock and sensors excluded.
	actionable := lab.Actionable()
	if actionable(lab.Home.Lock) || actionable(lab.Home.TempSensor) || actionable(lab.Home.DoorSensor) {
		t.Error("lock/sensors must not be actionable")
	}
	if !actionable(lab.Home.Oven) {
		t.Error("oven should be actionable")
	}
	if len(lab.RoutineDevices()) == 0 {
		t.Error("routine devices missing")
	}
}

func TestNewLabWithFilter(t *testing.T) {
	lab, err := NewLab(LabConfig{
		Seed: 2, LearningDays: 2,
		FilterAnomalies: 120, FilterNormals: 120, FilterEpochs: 3,
	})
	if err != nil {
		t.Fatalf("NewLab: %v", err)
	}
	if lab.Filter == nil {
		t.Fatal("filter should be trained")
	}
}

func TestTable1(t *testing.T) {
	res := Table1()
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	out := res.String()
	for _, want := range []string{"lock", "thermostat", "temp", "door"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestTable2LearnsSafeBehavior(t *testing.T) {
	res, err := Table2(Table2Config{Seed: 1, LearningDays: 5})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	byApp := map[int]int{}
	for _, row := range res.Rows {
		byApp[row.App] += row.SafeCount
	}
	// Apps 1, 2, 3 and 5 occur naturally and must learn safe behavior.
	for _, app := range []int{1, 2, 3, 5} {
		if byApp[app] == 0 {
			t.Errorf("app %d learned no safe T/A pairs", app)
		}
	}
	// App 4 (fire alarm) never occurs naturally: the paper's manual-policy
	// observation.
	if byApp[4] != 0 {
		t.Errorf("app 4 should learn nothing, got %d", byApp[4])
	}
	if !strings.Contains(res.String(), "manual policy required") {
		t.Error("output should call out the manual-policy case")
	}
}

func TestTable3ConstrainedIsSafe(t *testing.T) {
	res, err := Table3(Table3Config{Seed: 1, LearningDays: 7})
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	// The unconstrained optimizer must violate P_safe somewhere (it powers
	// sensors off for the energy goal).
	if res.UnsafeUnconstrained == 0 {
		t.Error("unconstrained optimization should produce unsafe picks")
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestSecurityDetectsEverything(t *testing.T) {
	res, err := Security(SecurityConfig{Seed: 1, LearningDays: 4, EpisodesPerViolation: 2, BaseDays: 2})
	if err != nil {
		t.Fatalf("Security: %v", err)
	}
	if res.Episodes != 214*2 {
		t.Fatalf("episodes = %d, want 428", res.Episodes)
	}
	if res.Rate() < 0.99 {
		t.Errorf("detection rate %.3f, want ≥0.99 (paper: 100%%); missed: %v", res.Rate(), res.Missed)
	}
	for typ, td := range res.PerType {
		if td.Episodes == 0 {
			t.Errorf("type %v has no episodes", typ)
		}
	}
	if !strings.Contains(res.String(), "detected") {
		t.Error("render missing detection summary")
	}
}

func TestROCFilterAccuracy(t *testing.T) {
	res, err := ROC(ROCConfig{
		Seed: 1, LearningDays: 3,
		TrainAnomalies: 800, TrainNormals: 800,
		EvalEpisodes: 150, FilterEpochs: 8,
	})
	if err != nil {
		t.Fatalf("ROC: %v", err)
	}
	if res.Evaluated < 100 {
		t.Fatalf("evaluated = %d", res.Evaluated)
	}
	// Paper band: 99.2% correct. Allow slack at reduced scale.
	if res.Accuracy() < 0.9 {
		t.Errorf("benign classification accuracy %.3f, want ≥0.9", res.Accuracy())
	}
	if res.FalsePositiveRate > 0.1 {
		t.Errorf("FP rate %.3f, want ≤0.1", res.FalsePositiveRate)
	}
	if res.AUC <= 0.5 {
		t.Errorf("AUC %.3f, want > 0.5", res.AUC)
	}
	if len(res.Curve) < 3 {
		t.Errorf("curve too short: %d points", len(res.Curve))
	}
	if !strings.Contains(res.String(), "ROC") {
		t.Error("render missing ROC label")
	}
}

func TestFunctionalityEnergyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("RL sweep")
	}
	res, err := Functionality(FunctionalityConfig{
		Seed: 1, LearningDays: 4, Metric: MetricEnergy,
		Weights: []float64{0.2, 0.8}, Days: 1,
		Episodes: 120, Restarts: 2,
	})
	if err != nil {
		t.Fatalf("Functionality: %v", err)
	}
	if len(res.Jarvis) != 2 || len(res.Normal) != 2 {
		t.Fatalf("series lengths wrong")
	}
	// Jarvis must beat normal at the high energy weight.
	if res.Jarvis[1] >= res.Normal[1] {
		t.Errorf("jarvis %.2f kWh should beat normal %.2f at f=0.8", res.Jarvis[1], res.Normal[1])
	}
	// And use no more energy at f=0.8 than at f=0.2.
	if res.Jarvis[1] > res.Jarvis[0]+1e-9 {
		t.Errorf("energy should not increase with f_energy: %.2f -> %.2f", res.Jarvis[0], res.Jarvis[1])
	}
	if len(res.Benefit()) != 2 {
		t.Error("Benefit length wrong")
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Error("render missing figure label")
	}
}

func TestBenefitSpaceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("RL sweep")
	}
	res, err := BenefitSpace(BenefitSpaceConfig{Seed: 1, LearningDays: 4, Episodes: 40})
	if err != nil {
		t.Fatalf("BenefitSpace: %v", err)
	}
	if len(res.ConstrainedRewards) != 40 || len(res.UnconstrainedRewards) != 40 {
		t.Fatalf("series lengths wrong")
	}
	total := 0
	for _, v := range res.ConstrainedViolations {
		total += v
	}
	if total != 0 {
		t.Errorf("constrained agent committed %d violations", total)
	}
	if res.AvgViolations < 1 {
		t.Errorf("unconstrained avg violations %.1f, want ≥1 (paper: 32)", res.AvgViolations)
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Error("render missing figure label")
	}
}

func TestMetricString(t *testing.T) {
	for _, m := range []Metric{MetricEnergy, MetricCost, MetricComfort} {
		if m.String() == "unknown" {
			t.Errorf("metric %d unnamed", m)
		}
	}
	if Metric(0).String() != "unknown" {
		t.Error("zero metric should be unknown")
	}
	if _, err := Functionality(FunctionalityConfig{}); err == nil {
		t.Error("missing metric should error")
	}
}

// manualOffAction builds the thermostat power_off composite for the lab.
func manualOffAction(lab *Lab) env.Action {
	a := env.NoOp(lab.Home.Env.K())
	a[lab.Home.Thermostat] = smarthome.ThermostatActOff
	return a
}

func TestAblation(t *testing.T) {
	res, err := Ablation(AblationConfig{Seed: 1, LearningDays: 3, Anomalies: 150, Episodes: 6})
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	// The ANN filter must keep almost all contaminating anomalies out of
	// the whitelist, while the unfiltered learner swallows them.
	if res.FilterOffWhitelisted < res.AnomaliesInjected/2 {
		t.Errorf("unfiltered learner whitelisted only %d/%d anomalies",
			res.FilterOffWhitelisted, res.AnomaliesInjected)
	}
	if res.FilterOnWhitelisted > res.AnomaliesInjected/10 {
		t.Errorf("filtered learner whitelisted %d/%d anomalies",
			res.FilterOnWhitelisted, res.AnomaliesInjected)
	}
	// Raising Thresh_env shrinks the whitelist monotonically.
	if len(res.ThreshRows) != 3 {
		t.Fatalf("thresh rows = %d", len(res.ThreshRows))
	}
	for i := 1; i < len(res.ThreshRows); i++ {
		if res.ThreshRows[i].TableSize > res.ThreshRows[i-1].TableSize {
			t.Error("table size should shrink with Thresh_env")
		}
	}
	if len(res.Backends) != 2 {
		t.Fatalf("backends = %d", len(res.Backends))
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}
