package experiment

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(42, 16)
	b := Seeds(42, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds is not deterministic")
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if reflect.DeepEqual(Seeds(42, 4), Seeds(43, 4)) {
		t.Error("different bases produced identical seeds")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The contract: worker count never changes results. Each item draws
	// from its own seeded rng, so serial (Workers=1) and parallel
	// (Workers=4) runs must be bit-identical and in input order.
	run := func(workers int) []float64 {
		t.Helper()
		defer func(w int) { Workers = w }(Workers)
		Workers = workers
		out, err := Parallel(Seeds(7, 32), func(i int, rng *rand.Rand) (float64, error) {
			sum := float64(i)
			for j := 0; j < 100; j++ {
				sum += rng.NormFloat64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel results differ:\n  serial   %v\n  parallel %v", serial, parallel)
	}
}

func TestParallelErrorSemantics(t *testing.T) {
	errBoom := errors.New("boom-3")
	for _, workers := range []int{1, 4} {
		defer func(w int) { Workers = w }(Workers)
		Workers = workers
		ran := make([]bool, 8)
		_, err := Parallel(Seeds(1, 8), func(i int, _ *rand.Rand) (int, error) {
			ran[i] = true
			if i == 5 {
				return 0, errors.New("boom-5")
			}
			if i == 3 {
				return 0, errBoom
			}
			return i, nil
		})
		// First error by input order, regardless of completion order.
		if !errors.Is(err, errBoom) {
			t.Errorf("workers=%d: got error %v, want boom-3", workers, err)
		}
		// Every item still ran (errors don't cancel siblings).
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: item %d never ran", workers, i)
			}
		}
	}
}

// TestExperimentsSerialParallelIdentity runs the parallelized experiments
// once serially and once with multiple workers on identical seeds and
// demands identical table rows — the fan-out must be a pure wall-clock
// optimization.
func TestExperimentsSerialParallelIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several agents")
	}
	withWorkers := func(w int, fn func()) {
		defer func(old int) { Workers = old }(Workers)
		Workers = w
		fn()
	}

	t.Run("table2", func(t *testing.T) {
		var serial, parallel *Table2Result
		withWorkers(1, func() {
			r, err := Table2(Table2Config{Seed: 11, LearningDays: 3})
			if err != nil {
				t.Fatal(err)
			}
			serial = r
		})
		withWorkers(4, func() {
			r, err := Table2(Table2Config{Seed: 11, LearningDays: 3})
			if err != nil {
				t.Fatal(err)
			}
			parallel = r
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Table2 rows differ between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
		}
	})

	t.Run("table3", func(t *testing.T) {
		var serial, parallel *Table3Result
		withWorkers(1, func() {
			r, err := Table3(Table3Config{Seed: 11, LearningDays: 3})
			if err != nil {
				t.Fatal(err)
			}
			serial = r
		})
		withWorkers(4, func() {
			r, err := Table3(Table3Config{Seed: 11, LearningDays: 3})
			if err != nil {
				t.Fatal(err)
			}
			parallel = r
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Table3 rows differ between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		cfg := ChaosConfig{Seed: 11, LearningDays: 2, Rates: []float64{0, 0.2}, Episodes: 3, Buckets: 6, DecideEvery: 120}
		var serial, parallel *ChaosResult
		withWorkers(1, func() {
			r, err := Chaos(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial = r
		})
		withWorkers(4, func() {
			r, err := Chaos(cfg)
			if err != nil {
				t.Fatal(err)
			}
			parallel = r
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Chaos points differ between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
		}
	})

	t.Run("benefit-space", func(t *testing.T) {
		cfg := BenefitSpaceConfig{Seed: 11, LearningDays: 2, Episodes: 4, Buckets: 6, DecideEvery: 120}
		var serial, parallel *BenefitSpaceResult
		withWorkers(1, func() {
			r, err := BenefitSpace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial = r
		})
		withWorkers(4, func() {
			r, err := BenefitSpace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			parallel = r
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("BenefitSpace differs between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
		}
	})

	t.Run("functionality", func(t *testing.T) {
		cfg := FunctionalityConfig{
			Seed: 11, LearningDays: 2, Metric: MetricEnergy,
			Weights: []float64{0.2, 0.8}, Days: 2, Episodes: 3,
			Buckets: 6, DecideEvery: 120, Restarts: 1,
		}
		var serial, parallel *FunctionalityResult
		withWorkers(1, func() {
			r, err := Functionality(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial = r
		})
		withWorkers(4, func() {
			r, err := Functionality(cfg)
			if err != nil {
				t.Fatal(err)
			}
			parallel = r
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Functionality differs between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
		}
	})

	t.Run("ablation", func(t *testing.T) {
		cfg := AblationConfig{Seed: 11, LearningDays: 2, Anomalies: 60, Episodes: 3}
		var serial, parallel *AblationResult
		withWorkers(1, func() {
			r, err := Ablation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial = r
		})
		withWorkers(4, func() {
			r, err := Ablation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			parallel = r
		})
		// TrainMillis is wall time and legitimately differs; everything
		// else must match exactly.
		for i := range serial.Backends {
			serial.Backends[i].TrainMillis = 0
			parallel.Backends[i].TrainMillis = 0
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Ablation differs between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
		}
	})
}
