package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"jarvis/internal/anomaly"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

// AblationConfig sizes the design-choice ablation study.
type AblationConfig struct {
	Seed         int64
	LearningDays int
	// Anomalies is the count of benign anomalies mixed into the learning
	// phase for the filter ablation (default 300).
	Anomalies int
	// Episodes sizes the Q-backend ablation training runs (default 30).
	Episodes int
}

// AblationResult tabulates the design-choice comparisons DESIGN.md §4
// calls out.
type AblationResult struct {
	// FilterOff/FilterOn: how many of the benign anomalies injected into
	// the learning phase ended up whitelisted as "natural" behavior.
	FilterOffWhitelisted, FilterOnWhitelisted int
	AnomaliesInjected                         int

	// ThreshRows: P_safe size and benign-replay flag count per Thresh_env.
	ThreshRows []ThreshRow

	// Backends: greedy return and wall time per Q backend.
	Backends []BackendRow
}

// ThreshRow is one Thresh_env setting.
type ThreshRow struct {
	Thresh      int
	TableSize   int
	BenignFlags int
}

// BackendRow is one Q-function backend.
type BackendRow struct {
	Name         string
	GreedyReturn float64
	TrainMillis  int64
}

// Ablation runs the three design-choice studies: the ANN pre-filter of
// Algorithm 1, the Thresh_env whitelisting threshold, and the Q-function
// backend (tabular vs the paper's DNN).
func Ablation(cfg AblationConfig) (*AblationResult, error) {
	if cfg.LearningDays <= 0 {
		cfg.LearningDays = 5
	}
	if cfg.Anomalies <= 0 {
		cfg.Anomalies = 300
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	home := smarthome.NewFullHome()
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	days, err := gen.Days(LearningStart, cfg.LearningDays, rng)
	if err != nil {
		return nil, err
	}
	eps := dataset.Episodes(days)
	res := &AblationResult{}

	// --- Filter ablation -------------------------------------------------
	// Contaminate the learning phase with benign anomalies, then learn
	// with and without the ANN filter and count how many anomalous
	// transitions each whitelists.
	anoms, err := dataset.SynthesizeAnomalies(home, days, cfg.Anomalies, rng)
	if err != nil {
		return nil, err
	}
	res.AnomaliesInjected = len(anoms)

	filter, err := anomaly.NewFilter(home.Env, anomaly.Config{}, rng)
	if err != nil {
		return nil, err
	}
	normals, err := dataset.NormalSamples(days, cfg.Anomalies, rng)
	if err != nil {
		return nil, err
	}
	if _, err := filter.Train(append(anoms, normals...), anomaly.Config{Epochs: 10}, rng); err != nil {
		return nil, err
	}

	countWhitelisted := func(f policy.Filter) int {
		spl := policy.NewLearner(home.Env, policy.Config{AllowIdle: true, Filter: f})
		spl.ObserveAll(eps)
		// Feed the anomalies as observations too (the contaminated phase).
		for _, a := range anoms {
			ep := episodeOf(a)
			spl.Observe(ep)
		}
		table := spl.Table()
		n := 0
		for _, a := range anoms {
			from := home.Env.StateKey(a.Tr.From)
			to := home.Env.StateKey(a.Tr.To)
			if from != to && table.Safe(from, to) {
				n++
			}
		}
		return n
	}
	// The two variants share only read-only inputs (eps, anoms); the ANN
	// filter's scratch is touched by exactly one of them.
	variants := []policy.Filter{nil, filter}
	whitelisted, err := Parallel(Seeds(cfg.Seed, 2), func(i int, _ *rand.Rand) (int, error) {
		return countWhitelisted(variants[i]), nil
	})
	if err != nil {
		return nil, err
	}
	res.FilterOffWhitelisted = whitelisted[0]
	res.FilterOnWhitelisted = whitelisted[1]

	// --- Thresh_env sweep --------------------------------------------------
	benign, err := gen.Days(LearningStart.AddDate(0, 0, 30), 1, rng)
	if err != nil {
		return nil, err
	}
	for _, thresh := range []int{0, 1, 2} {
		spl := policy.NewLearner(home.Env, policy.Config{AllowIdle: true, ThreshEnv: thresh})
		spl.ObserveAll(eps)
		table := spl.Table()
		flags := policy.FlagEpisodes(home.Env, table, dataset.Episodes(benign))
		res.ThreshRows = append(res.ThreshRows, ThreshRow{
			Thresh:      thresh,
			TableSize:   table.Len(),
			BenignFlags: len(flags),
		})
	}

	// --- Q backend ablation --------------------------------------------------
	lab, err := NewLab(LabConfig{Seed: cfg.Seed, LearningDays: cfg.LearningDays})
	if err != nil {
		return nil, err
	}
	ctx := dataset.NewDayContext(LearningStart.AddDate(0, 0, 40), dataset.DefaultContext(), rng)
	backends := []string{"tabular", "dqn"}
	rows, err := Parallel(Seeds(cfg.Seed, len(backends)), func(i int, _ *rand.Rand) (BackendRow, error) {
		start := time.Now()
		ret, err := runBackend(lab, ctx, backends[i], cfg.Episodes, cfg.Seed)
		if err != nil {
			return BackendRow{}, err
		}
		return BackendRow{
			Name:         backends[i],
			GreedyReturn: ret,
			TrainMillis:  time.Since(start).Milliseconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Backends = rows
	return res, nil
}

// episodeOf wraps a single labelled transition as a one-step episode.
func episodeOf(a anomaly.Labeled) env.Episode {
	return env.Episode{
		T:       time.Minute,
		I:       time.Minute,
		Start:   a.Tr.At,
		States:  []env.State{a.Tr.From, a.Tr.To},
		Actions: []env.Action{a.Tr.Act},
	}
}

// runBackend trains one agent with the requested Q backend on the shared
// lab and returns its greedy return.
func runBackend(lab *Lab, ctx *dataset.DayContext, backend string, episodes int, seed int64) (float64, error) {
	agent, sim, _, err := buildJarvisAgentBackend(lab, jarvisRunConfig{
		Ctx:     ctx,
		FEnergy: 0.6, FCost: 0.2, FComfort: 0.2,
		Episodes:    episodes,
		ReplayEvery: 4,
		Buckets:     24,
		DecideEvery: 30,
		Seed:        seed + 17,
		Constrained: true,
	}, backend)
	if err != nil {
		return 0, err
	}
	if _, err := agent.Train(); err != nil {
		return 0, err
	}
	ret, _, err := agent.Evaluate()
	if err != nil {
		return 0, err
	}
	_ = sim
	return ret, nil
}

// buildJarvisAgentBackend is buildJarvisAgent with a selectable Q backend.
func buildJarvisAgentBackend(lab *Lab, rc jarvisRunConfig, backend string) (*rl.Agent, *rl.SimEnv, *dayExo, error) {
	if backend == "tabular" || backend == "" {
		return buildJarvisAgent(lab, rc)
	}
	agent, sim, exo, err := buildJarvisAgent(lab, rc)
	if err != nil {
		return nil, nil, nil, err
	}
	_ = agent
	// Rebuild with a DQN over the same sim.
	dqn, err := rl.NewDQN(lab.Home.Env, smarthome.InstancesPerDay, rl.DQNConfig{Hidden: []int{48, 48}}, newRng(rc.Seed))
	if err != nil {
		return nil, nil, nil, err
	}
	dqnAgent, err := rl.NewAgent(sim, dqn, rl.AgentConfig{
		Episodes:     rc.Episodes,
		Gamma:        0.97,
		BatchSize:    24,
		ReplayEvery:  rc.ReplayEvery,
		DecideEvery:  rc.DecideEvery,
		Epsilon:      1,
		EpsilonMin:   0.05,
		EpsilonDecay: 0.93,
		Actionable:   lab.Actionable(),
		Rng:          newRng(rc.Seed + 1),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return dqnAgent, sim, exo, nil
}

// String renders the ablation tables.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation study (DESIGN.md §4)\n")
	fmt.Fprintf(&b, "[1] ANN pre-filter: of %d benign anomalies contaminating the learning phase,\n",
		r.AnomaliesInjected)
	fmt.Fprintf(&b, "    whitelisted without filter: %d; with filter: %d\n",
		r.FilterOffWhitelisted, r.FilterOnWhitelisted)
	b.WriteString("[2] Thresh_env sweep (table size / benign-day false flags):\n")
	for _, row := range r.ThreshRows {
		fmt.Fprintf(&b, "    thresh=%d  |P_safe|=%-4d benign flags=%d\n", row.Thresh, row.TableSize, row.BenignFlags)
	}
	b.WriteString("[3] Q backend (greedy return / training time):\n")
	for _, row := range r.Backends {
		fmt.Fprintf(&b, "    %-8s return=%8.1f  train=%dms\n", row.Name, row.GreedyReturn, row.TrainMillis)
	}
	return b.String()
}
