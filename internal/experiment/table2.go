package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"jarvis/internal/dataset"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

// Table2Config sizes the Table II experiment.
type Table2Config struct {
	Seed int64
	// LearningDays is the learning-phase length (default 7).
	LearningDays int
	// MaxSafeTriggers caps the listed safe trigger states per app (the
	// paper's table lists up to 3).
	MaxSafeTriggers int
}

// Table2Row compares one app's context-free T/A behavior with the safe
// behavior learned by the SPL.
type Table2Row struct {
	App         int
	Name        string
	Description string
	Trigger     string
	Action      string
	// SafeTriggers/SafeActions list learned (S, A) pairs where S matches
	// the trigger pattern and A performs the app's action (possibly
	// bundled with other naturally co-occurring device actions, as in the
	// paper's safe-action column).
	SafeTriggers []string
	SafeActions  []string
	SafeCount    int
}

// Table2Result is the learned-policy comparison of Table II.
type Table2Result struct {
	Rows      []Table2Row
	TableSize int
}

// Table2 runs the learning phase and derives, for every Table II app, the
// subset of whitelisted trigger states from which the app's action is
// safe. Apps whose triggers never occur naturally (the fire-alarm app 4)
// end up with no learned safe behavior — exactly the paper's observation
// that emergency devices need manual policies.
func Table2(cfg Table2Config) (*Table2Result, error) {
	if cfg.MaxSafeTriggers <= 0 {
		cfg.MaxSafeTriggers = 3
	}
	// The Table II analysis concerns P_safe itself; no filter needed
	// (FilterAnomalies: 0 skips ANN training).
	lab, err := NewLab(LabConfig{
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Profile:      dataset.HomeAConfig(),
	})
	if err != nil {
		return nil, err
	}
	h := lab.Home
	e := h.Env
	res := &Table2Result{TableSize: lab.Table.Len()}

	// Each app's scan over the learned behaviors is independent; fan the
	// rules across cores against one shared behavior snapshot.
	rules := smarthome.TableIIApps(h.Core())
	behs := lab.SPL.Behaviors()
	rows, err := Parallel(Seeds(cfg.Seed, len(rules)), func(i int, _ *rand.Rand) (Table2Row, error) {
		rule := rules[i]
		row := Table2Row{
			App:         rule.Number,
			Name:        rule.Name,
			Description: rule.Description,
			Trigger:     formatPattern(e, rule.Trigger),
			Action:      formatActions(e, rule.Actions),
		}
		for _, beh := range behs {
			s := e.DecodeState(beh.State)
			if !rule.Matches(s) {
				continue
			}
			a := e.DecodeAction(beh.Action)
			if !performsRule(a, rule) {
				continue
			}
			row.SafeCount++
			if len(row.SafeTriggers) < cfg.MaxSafeTriggers {
				row.SafeTriggers = append(row.SafeTriggers, e.FormatState(s))
				row.SafeActions = append(row.SafeActions, e.FormatAction(a))
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// String renders the comparison.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: normal vs safe T/A behavior (P_safe: %d transitions)\n", r.TableSize)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "App %d  %s — %s\n", row.App, row.Name, row.Description)
		fmt.Fprintf(&b, "  trigger: %s\n", row.Trigger)
		fmt.Fprintf(&b, "  action:  %s\n", row.Action)
		if row.SafeCount == 0 {
			b.WriteString("  learned safe triggers: — (never occurs naturally; manual policy required)\n")
			continue
		}
		fmt.Fprintf(&b, "  learned safe T/A pairs (%d total):\n", row.SafeCount)
		for i, s := range row.SafeTriggers {
			fmt.Fprintf(&b, "    T: %s\n    A: %s\n", s, row.SafeActions[i])
		}
	}
	return b.String()
}

// performsRule reports whether composite action a executes the rule's
// action on every device the rule touches (extra co-occurring device
// actions are allowed — the learned safe behavior bundles them).
func performsRule(a env.Action, rule smarthome.TARule) bool {
	for dev, want := range rule.Actions {
		if dev >= len(a) || a[dev] != want {
			return false
		}
	}
	return true
}

func formatPattern(e *env.Environment, pattern map[int]device.StateID) string {
	parts := make([]string, e.K())
	for i := range parts {
		parts[i] = "X"
	}
	for dev, st := range pattern {
		parts[dev] = e.Device(dev).StateName(st)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func formatActions(e *env.Environment, actions map[int]device.ActionID) string {
	parts := make([]string, e.K())
	for i := range parts {
		parts[i] = "O"
	}
	for dev, act := range actions {
		parts[dev] = e.Device(dev).ActionName(act)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
