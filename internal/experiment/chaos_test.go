package experiment

import (
	"strings"
	"testing"

	"jarvis/internal/fault"
)

// TestChaosSweep is the robustness acceptance test: three or more fault
// rates, the constrained agent's ground-truth safety violations stay 0 at
// every rate, and the faulty points actually injected faults.
func TestChaosSweep(t *testing.T) {
	res, err := Chaos(ChaosConfig{
		Seed:         1,
		LearningDays: 2,
		Rates:        []float64{0, 0.2, 0.5},
		Episodes:     3,
	})
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(res.Points))
	}
	if res.MaxViolations() != 0 {
		t.Errorf("constrained agent violated P_safe under faults: %d", res.MaxViolations())
	}
	for i, p := range res.Points {
		if p.TrainViolations != 0 || p.EvalViolations != 0 {
			t.Errorf("rate %.2f: violations train=%d eval=%d, want 0",
				p.Rate, p.TrainViolations, p.EvalViolations)
		}
		if i == 0 {
			if p.Faults != (fault.Stats{}) {
				t.Errorf("rate 0 injected faults: %+v", p.Faults)
			}
			continue
		}
		total := p.Faults.Stuck + p.Faults.Dropouts + p.Faults.Delayed + p.Faults.Unavailable
		if total == 0 {
			t.Errorf("rate %.2f injected no faults", p.Rate)
		}
	}
	out := res.String()
	for _, want := range []string{"Chaos", "degradation", "safety: P_safe held"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
