package experiment

import (
	"fmt"
	"strings"

	"jarvis/internal/attack"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/metrics"
)

// ROCConfig sizes the Figure 5 experiment.
type ROCConfig struct {
	Seed         int64
	LearningDays int
	// TrainAnomalies/TrainNormals size the filter's training set TD (the
	// paper uses 55,156 benign-anomaly samples).
	TrainAnomalies, TrainNormals int
	// EvalEpisodes is the number of benign anomalous episodes evaluated
	// (the paper engineers 18,120).
	EvalEpisodes int
	// FilterEpochs controls ANN training.
	FilterEpochs int
}

// DefaultROCConfig returns the paper-scale configuration.
func DefaultROCConfig(seed int64) ROCConfig {
	return ROCConfig{
		Seed:           seed,
		TrainAnomalies: 55156, // the SIMADL sample count
		TrainNormals:   55156,
		EvalEpisodes:   18120,
		FilterEpochs:   12,
	}
}

// ROCResult reports the SPL filter's classification quality.
type ROCResult struct {
	// Evaluated is the number of benign anomalous episodes played.
	Evaluated int
	// Correct is how many were classified benign by the ANN (the paper
	// reports 99.2%).
	Correct int
	// FalsePositiveRate is 1 − Correct/Evaluated (paper: 0.8%).
	FalsePositiveRate float64
	// Curve is the ROC curve over benign anomalies (positives) vs
	// engineered malicious transitions (negatives); AUC its integral.
	Curve []metrics.ROCPoint
	AUC   float64
	// Confusion at the deployed 0.5 threshold.
	Confusion metrics.Confusion
}

// Accuracy returns Correct/Evaluated.
func (r *ROCResult) Accuracy() float64 {
	if r.Evaluated == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Evaluated)
}

// ROC reproduces Figure 5: the ANN filter is trained on labelled benign
// anomalies plus normal transitions (the training dataset TD of Algorithm
// 1), then evaluated on fresh benign anomalous episodes engineered after
// the learning phase. The ROC curve scores benign anomalies (positives)
// against the corpus's malicious transitions (negatives) across the
// decision threshold.
func ROC(cfg ROCConfig) (*ROCResult, error) {
	if cfg.TrainAnomalies <= 0 {
		cfg.TrainAnomalies = 4000
	}
	if cfg.TrainNormals <= 0 {
		cfg.TrainNormals = cfg.TrainAnomalies
	}
	if cfg.EvalEpisodes <= 0 {
		cfg.EvalEpisodes = 1000
	}
	lab, err := NewLab(LabConfig{
		Seed:            cfg.Seed,
		LearningDays:    cfg.LearningDays,
		Profile:         dataset.HomeAConfig(),
		FilterAnomalies: cfg.TrainAnomalies,
		FilterNormals:   cfg.TrainNormals,
		FilterEpochs:    cfg.FilterEpochs,
	})
	if err != nil {
		return nil, err
	}
	h := lab.Home

	// Fresh evaluation days, disjoint from the learning phase.
	evalDays, err := lab.Gen.Days(LearningStart.AddDate(0, 0, 60), 7, lab.Rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: eval days: %w", err)
	}

	res := &ROCResult{}
	classes := dataset.AllAnomalyClasses()
	var trs []env.Transition
	var labels []bool

	// Positives: benign anomalous episodes — each injected transition is
	// collected here and scored below in one batched ANN pass; classified
	// correctly when it clears the deployed threshold.
	for i := 0; i < cfg.EvalEpisodes; i++ {
		day := evalDays[lab.Rng.Intn(len(evalDays))]
		class := classes[lab.Rng.Intn(len(classes))]
		ep, at, err := dataset.InjectAnomaly(h, day, class, lab.Rng)
		if err != nil {
			continue // class not applicable to this day: redraw
		}
		trs = append(trs, env.Transition{
			From: ep.States[at], Act: ep.Actions[at], To: ep.States[at+1],
			Instance: at, At: ep.At(at),
		})
		labels = append(labels, true)
	}

	// Negatives: the corpus's transition-based violations, injected the
	// same way.
	for _, v := range attack.Corpus(h) {
		if !v.TransitionBased() {
			continue
		}
		day := pickBaseDay(evalDays, v, lab)
		ep, at, ok, err := attack.Inject(h.Env, day.Episode, v, lab.Rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: inject %q: %w", v.Name, err)
		}
		if !ok {
			continue
		}
		trs = append(trs, env.Transition{
			From: ep.States[at], Act: ep.Actions[at], To: ep.States[at+1],
			Instance: at, At: ep.At(at),
		})
		labels = append(labels, false)
	}

	// One batched scoring pass over positives and negatives together —
	// bit-identical to per-transition Score calls, far fewer passes.
	scores, err := lab.Filter.ScoreBatch(make([]float64, 0, len(trs)), trs)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	for i, score := range scores {
		benign := score >= lab.Filter.Threshold()
		if labels[i] {
			res.Evaluated++
			if benign {
				res.Correct++
			}
		}
		res.Confusion.Add(benign, labels[i])
	}
	res.FalsePositiveRate = 1 - res.Accuracy()

	curve, err := metrics.ROC(scores, labels)
	if err != nil {
		return nil, fmt.Errorf("experiment: roc: %w", err)
	}
	res.Curve = curve
	res.AUC = metrics.AUC(curve)
	return res, nil
}

// String renders the filtering-accuracy summary and an ASCII ROC curve.
func (r *ROCResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: SPL filter ROC — %d benign anomalous episodes, %.1f%% correctly classified (FP %.1f%%), AUC %.3f\n",
		r.Evaluated, 100*r.Accuracy(), 100*r.FalsePositiveRate, r.AUC)
	fmt.Fprintf(&b, "  confusion at threshold: %s\n", r.Confusion)
	b.WriteString("  ROC points (fpr, tpr):")
	step := len(r.Curve) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Curve); i += step {
		p := r.Curve[i]
		fmt.Fprintf(&b, " (%.2f,%.2f)", p.FPR, p.TPR)
	}
	last := r.Curve[len(r.Curve)-1]
	fmt.Fprintf(&b, " (%.2f,%.2f)\n", last.FPR, last.TPR)
	return b.String()
}
