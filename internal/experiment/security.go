package experiment

import (
	"fmt"
	"sort"
	"strings"

	"jarvis/internal/attack"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/policy"
)

// SecurityConfig sizes the Section VI-B security analysis.
type SecurityConfig struct {
	Seed         int64
	LearningDays int
	// EpisodesPerViolation is how many random malicious episodes each
	// corpus instance is engineered into. The paper's 214 × 100 = 21,400;
	// quick runs use fewer.
	EpisodesPerViolation int
	// BaseDays is the pool of benign days violations are injected into
	// (default 5).
	BaseDays int
	// HomeB uses the Smart*-calibrated home-B profile.
	HomeB bool
}

// SecurityResult reports detection per violation type.
type SecurityResult struct {
	// Episodes is the number of malicious episodes generated (paper:
	// 21,400).
	Episodes int
	// DetectedEpisodes counts episodes whose injected payload was flagged.
	DetectedEpisodes int
	// PerType maps violation type → (episodes, detected).
	PerType map[attack.Type]TypeDetection
	// Missed lists violation names that escaped detection at least once.
	Missed []string
}

// TypeDetection is the per-type tally.
type TypeDetection struct {
	Episodes, Detected int
}

// Rate returns the overall detection rate.
func (r *SecurityResult) Rate() float64 {
	if r.Episodes == 0 {
		return 0
	}
	return float64(r.DetectedEpisodes) / float64(r.Episodes)
}

// Security reproduces the Section VI-B analysis: the 214-violation corpus
// is engineered into random episodes after the learning phase, and the SPL
// flags unsafe transitions. Transition violations (Types 1, 4, 5) are
// detected through P_safe; request violations (Types 2, 3) through the
// environment's access-control and conflict constraints.
func Security(cfg SecurityConfig) (*SecurityResult, error) {
	if cfg.EpisodesPerViolation <= 0 {
		cfg.EpisodesPerViolation = 100 // paper scale: 214×100 = 21,400
	}
	if cfg.BaseDays <= 0 {
		cfg.BaseDays = 5
	}
	profile := dataset.HomeAConfig()
	if cfg.HomeB {
		profile = dataset.HomeBConfig()
	}
	lab, err := NewLab(LabConfig{
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Profile:      profile,
	})
	if err != nil {
		return nil, err
	}
	h := lab.Home
	e := h.Env

	// Fresh benign days (outside the learning phase) to inject into.
	baseDays, err := lab.Gen.Days(LearningStart.AddDate(0, 0, 30), cfg.BaseDays, lab.Rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: base days: %w", err)
	}

	corpus := attack.Corpus(h)
	res := &SecurityResult{PerType: make(map[attack.Type]TypeDetection, 5)}
	missed := make(map[string]bool)

	for _, v := range corpus {
		for i := 0; i < cfg.EpisodesPerViolation; i++ {
			res.Episodes++
			td := res.PerType[v.Type]
			td.Episodes++

			detected := false
			if v.TransitionBased() {
				day := pickBaseDay(baseDays, v, lab)
				ep, at, ok, err := attack.Inject(e, day.Episode, v, lab.Rng)
				if err != nil {
					return nil, fmt.Errorf("experiment: inject %q: %w", v.Name, err)
				}
				if ok {
					detected = flaggedAt(lab, ep, at, len(v.Steps))
				}
			} else {
				// Request-based: submit in a random benign state; the
				// environment constraints must deny at least one request.
				day := baseDays[lab.Rng.Intn(len(baseDays))]
				t := lab.Rng.Intn(day.Episode.Len())
				_, _, denials := e.Apply(day.Episode.States[t], v.Requests)
				detected = len(denials) > 0
			}
			if detected {
				res.DetectedEpisodes++
				td.Detected++
			} else {
				missed[fmt.Sprintf("%s/%s", v.Type, v.Name)] = true
			}
			res.PerType[v.Type] = td
		}
	}
	for name := range missed {
		res.Missed = append(res.Missed, name)
	}
	sort.Strings(res.Missed)
	return res, nil
}

// pickBaseDay draws a benign day to inject into. Violations staged in
// "away" contexts require a day with an actual away period (a stay-home
// weekend at 14:00 is just "home afternoon" — the violation would not be
// one).
func pickBaseDay(days []*dataset.Day, v attack.Violation, lab *Lab) *dataset.Day {
	needAway := strings.HasPrefix(v.Context.Name, "away")
	for attempt := 0; attempt < 4*len(days); attempt++ {
		d := days[lab.Rng.Intn(len(days))]
		if !needAway || d.Context.LeaveAt >= 0 {
			return d
		}
	}
	return days[lab.Rng.Intn(len(days))]
}

// flaggedAt checks whether the SPL flags any transition in the injected
// window [at, at+steps).
func flaggedAt(lab *Lab, ep env.Episode, at, steps int) bool {
	for _, v := range policy.FlagEpisodes(lab.Home.Env, lab.Table, []env.Episode{ep}) {
		if v.Instance >= at && v.Instance < at+steps {
			return true
		}
	}
	return false
}

// String renders the detection summary.
func (r *SecurityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Security analysis (§VI-B): %d malicious episodes, %d detected (%.1f%%)\n",
		r.Episodes, r.DetectedEpisodes, 100*r.Rate())
	types := []attack.Type{
		attack.Type1TASafety, attack.Type2AccessControl, attack.Type3Conflict,
		attack.Type4MaliciousApp, attack.Type5Insider,
	}
	for _, typ := range types {
		td := r.PerType[typ]
		rate := 0.0
		if td.Episodes > 0 {
			rate = 100 * float64(td.Detected) / float64(td.Episodes)
		}
		fmt.Fprintf(&b, "  %-22s %6d episodes, %6d detected (%.1f%%)\n", typ, td.Episodes, td.Detected, rate)
	}
	if len(r.Missed) > 0 {
		fmt.Fprintf(&b, "  missed at least once: %s\n", strings.Join(r.Missed, ", "))
	}
	return b.String()
}
