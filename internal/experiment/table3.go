package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"jarvis/internal/dataset"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/smarthome"
)

// Table3Config sizes the Table III experiment.
type Table3Config struct {
	Seed         int64
	LearningDays int
}

// Table3Row compares the highest-quality action with the highest-quality
// safe action for one (functionality, trigger) pair.
type Table3Row struct {
	Functionality string
	TriggerDesc   string
	Trigger       string
	// Unconstrained is the action a pure functionality optimizer picks;
	// Safe is Jarvis's constrained pick.
	Unconstrained     string
	UnconstrainedSafe bool
	SafeAction        string
	// BestInstant/SafeInstant report the preferred acting time (minutes
	// from midnight) for the timing-sensitive rows, -1 otherwise.
	BestInstant, SafeInstant int
}

// Table3Result is the action-quality comparison of Table III.
type Table3Result struct {
	Rows []Table3Row
	// UnsafeUnconstrained counts rows whose unconstrained pick violates
	// P_safe.
	UnsafeUnconstrained int
}

// Table3 reproduces the Table III comparison: for each of the paper's
// eight trigger scenarios across the three functionalities, the
// highest-quality action under pure functionality optimization
// (unconstrained exploration) is compared with the highest-quality safe
// action under Jarvis (R_smart + P_safe).
func Table3(cfg Table3Config) (*Table3Result, error) {
	if cfg.LearningDays <= 0 {
		// Two weeks give the state coverage the home/weekend scenarios
		// need (the paper's qualitative table assumes a converged SPL).
		cfg.LearningDays = 14
	}
	lab, err := NewLab(LabConfig{
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Profile:      dataset.HomeAConfig(),
	})
	if err != nil {
		return nil, err
	}
	h := lab.Home
	e := h.Env
	n := smarthome.InstancesPerDay

	// One representative day's prices for the cost functionality.
	ctx := dataset.NewDayContext(LearningStart.AddDate(0, 0, 14), dataset.DefaultContext(), lab.Rng)

	newReward := func(fs []reward.Functionality) (*reward.Smart, error) {
		return reward.New(e, reward.Config{
			Functionalities: fs,
			Preferred:       lab.Pref,
			Instances:       n,
			Routine:         lab.RoutineDevices(),
		})
	}
	energyOnly, err := newReward([]reward.Functionality{{Name: "energy", Weight: 1, F: smarthome.EnergyReward(e)}})
	if err != nil {
		return nil, err
	}
	// The cost scenarios blend in the implicit comfort need: the paper's
	// rows assume heating/cooling must happen and ask *when* — a pure
	// cost optimizer would simply never run the HVAC.
	costOnly, err := newReward([]reward.Functionality{
		{Name: "cost", Weight: 0.7, F: smarthome.CostReward(e, ctx.Prices)},
		{Name: "comfort", Weight: 0.3, F: smarthome.ComfortReward(e, h.TempSensor, h.Thermostat)},
	})
	if err != nil {
		return nil, err
	}
	comfortOnly, err := newReward([]reward.Functionality{{Name: "comfort", Weight: 1, F: smarthome.ComfortReward(e, h.TempSensor, h.Thermostat)}})
	if err != nil {
		return nil, err
	}

	// Trigger scenarios, mirroring the paper's rows. Each trigger state is
	// picked from the states actually reached during learning (matching a
	// partial pattern), so the safe-action column reflects what the SPL
	// can sanction; a hand-built state is the fallback.
	behaviors := lab.SPL.Behaviors()
	decoded := make([]env.State, len(behaviors))
	for i, b := range behaviors {
		decoded[i] = e.DecodeState(b.State)
	}
	pick := func(pattern map[int]device.StateID, wantDev int, wantAct device.ActionID) env.State {
		var fallback env.State
		for bi, b := range behaviors {
			st := decoded[bi]
			match := true
			for dev, want := range pattern {
				if st[dev] != want {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if fallback == nil {
				fallback = st
			}
			if wantDev >= 0 {
				if a := e.DecodeAction(b.Action); a[wantDev] == wantAct {
					return st
				}
			}
		}
		if fallback != nil {
			return fallback
		}
		st := h.InitialState()
		for dev, want := range pattern {
			st[dev] = want
		}
		return st
	}

	departure := pick(map[int]device.StateID{
		h.Lock:        smarthome.LockLockedOutside,
		h.DoorSensor:  smarthome.DoorSensing,
		h.LivingLight: 1,
	}, h.LivingLight, 0 /* power_off */)

	optimalReached := pick(map[int]device.StateID{
		h.TempSensor: smarthome.TempOptimal,
		h.Thermostat: smarthome.ThermostatHeat,
	}, h.Thermostat, smarthome.ThermostatActOff)

	coldHome := pick(map[int]device.StateID{
		h.Lock:       smarthome.LockLockedInside,
		h.TempSensor: smarthome.TempBelow,
	}, h.Thermostat, smarthome.ThermostatActHeat)

	hotHome := pick(map[int]device.StateID{
		h.Lock:       smarthome.LockLockedInside,
		h.TempSensor: smarthome.TempAbove,
	}, h.Thermostat, smarthome.ThermostatActCool)

	coldAny := pick(map[int]device.StateID{h.TempSensor: smarthome.TempBelow},
		h.Thermostat, smarthome.ThermostatActHeat)
	hotAny := pick(map[int]device.StateID{h.TempSensor: smarthome.TempAbove},
		h.Thermostat, smarthome.ThermostatActCool)

	type scenario struct {
		fn       string
		rs       *reward.Smart
		desc     string
		s        env.State
		t        int
		timing   bool // report best acting instant for the thermostat
		thermAct device.ActionID
	}
	scenarios := []scenario{
		{"energy", energyOnly, "User leaves the house and locks the door", departure, 8*60 + 5, false, device.NoAction},
		{"energy", energyOnly, "Optimal temperature is reached", optimalReached, 15 * 60, false, device.NoAction},
		{"cost", costOnly, "Temperature drops below optimum, user at home", coldHome, 17 * 60, true, smarthome.ThermostatActHeat},
		{"cost", costOnly, "Temperature goes above optimum, user at home", hotHome, 13 * 60, true, smarthome.ThermostatActCool},
		{"cost", costOnly, "Optimal temperature is reached", optimalReached, 15 * 60, false, device.NoAction},
		{"comfort", comfortOnly, "Temperature drops below optimum", coldAny, 10 * 60, true, smarthome.ThermostatActHeat},
		{"comfort", comfortOnly, "Temperature goes above optimum", hotAny, 14 * 60, true, smarthome.ThermostatActCool},
		{"comfort", comfortOnly, "Optimal temperature is reached", optimalReached, 15 * 60, false, device.NoAction},
	}

	// The scenarios share only read-only state (the reward functions, the
	// learned table, the behavior index) — fan them across cores.
	res := &Table3Result{}
	rows, err := Parallel(Seeds(cfg.Seed, len(scenarios)), func(i int, _ *rand.Rand) (Table3Row, error) {
		sc := scenarios[i]
		unAct := bestAction(lab, sc.rs, sc.s, sc.t, false)
		safeAct := bestAction(lab, sc.rs, sc.s, sc.t, true)
		row := Table3Row{
			Functionality:     sc.fn,
			TriggerDesc:       sc.desc,
			Trigger:           e.FormatState(sc.s),
			Unconstrained:     e.FormatAction(unAct),
			UnconstrainedSafe: transitionSafe(lab, sc.s, unAct),
			SafeAction:        e.FormatAction(safeAct),
			BestInstant:       -1,
			SafeInstant:       -1,
		}
		if sc.timing {
			row.BestInstant = bestInstant(lab, sc.rs, sc.s, sc.thermAct, false)
			row.SafeInstant = bestInstant(lab, sc.rs, sc.s, sc.thermAct, true)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	for _, row := range rows {
		if !row.UnconstrainedSafe {
			res.UnsafeUnconstrained++
		}
	}
	return res, nil
}

// bestAction returns the action maximizing quality at (s, t). The
// unconstrained optimizer greedily composes device actions by pure
// functionality utility; the constrained optimizer picks among the safe
// choices — the composite behaviors observed naturally from s (plus
// idling) — by R_smart.
func bestAction(lab *Lab, rs *reward.Smart, s env.State, t int, constrained bool) env.Action {
	e := lab.Home.Env
	k := e.K()
	next := make(env.State, k) // transition-validity scratch
	if constrained {
		best := env.NoOp(k)
		bestQ := rs.R(s, best, t)
		for _, a := range lab.BehaviorsFrom(e.StateKey(s)) {
			if e.TransitionInto(next, s, a) != nil {
				continue
			}
			if q := rs.R(s, a, t); q > bestQ {
				best, bestQ = a, q
			}
		}
		return best
	}
	act := env.NoOp(k)
	cand := make(env.Action, k) // candidate scratch, reused per device action
	quality := func(a env.Action) (float64, bool) {
		if e.TransitionInto(next, s, a) != nil {
			return 0, false
		}
		return rs.Utility(s, a, t), true
	}
	cur, _ := quality(act)
	for round := 0; round < k; round++ {
		bestGain := 0.0
		bestDev, bestAct := -1, device.NoAction
		for dev := 0; dev < k; dev++ {
			if act[dev] != device.NoAction {
				continue
			}
			for _, a := range e.Device(dev).ValidActions(s[dev]) {
				copy(cand, act)
				cand[dev] = a
				q, ok := quality(cand)
				if !ok {
					continue
				}
				if gain := q - cur; gain > bestGain+1e-12 {
					bestGain, bestDev, bestAct = gain, dev, a
				}
			}
		}
		if bestDev < 0 {
			break
		}
		act[bestDev] = bestAct
		cur += bestGain
	}
	return act
}

// bestInstant finds the acting time (within the rest of the day) that
// maximizes quality for the single thermostat action.
func bestInstant(lab *Lab, rs *reward.Smart, s env.State, thermAct device.ActionID, constrained bool) int {
	e := lab.Home.Env
	act := env.NoOp(e.K())
	act[lab.Home.Thermostat] = thermAct
	if constrained && !transitionSafe(lab, s, act) {
		return -1
	}
	best, bestT := -1e18, -1
	for t := 0; t < smarthome.InstancesPerDay; t += 15 {
		var q float64
		if constrained {
			q = rs.R(s, act, t)
		} else {
			q = rs.Utility(s, act, t)
		}
		if q > best {
			best, bestT = q, t
		}
	}
	return bestT
}

func transitionSafe(lab *Lab, s env.State, a env.Action) bool {
	e := lab.Home.Env
	next, err := e.Transition(s, a)
	if err != nil {
		return false
	}
	return lab.Table.Safe(e.StateKey(s), e.StateKey(next))
}

// String renders the comparison.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III: action quality, unconstrained vs constrained exploration\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "[%s] %s\n", row.Functionality, row.TriggerDesc)
		fmt.Fprintf(&b, "  trigger:        %s\n", row.Trigger)
		verdict := "SAFE"
		if !row.UnconstrainedSafe {
			verdict = "UNSAFE"
		}
		fmt.Fprintf(&b, "  high quality:   %s  [%s]\n", row.Unconstrained, verdict)
		fmt.Fprintf(&b, "  high qual safe: %s\n", row.SafeAction)
		if row.BestInstant >= 0 || row.SafeInstant >= 0 {
			fmt.Fprintf(&b, "  act at: unconstrained t_p=%s, safe t'=%s\n",
				minuteClock(row.BestInstant), minuteClock(row.SafeInstant))
		}
	}
	fmt.Fprintf(&b, "unconstrained picks violating P_safe: %d/%d\n",
		r.UnsafeUnconstrained, len(r.Rows))
	return b.String()
}

func minuteClock(m int) string {
	if m < 0 {
		return "-"
	}
	return fmt.Sprintf("%02d:%02d", m/60, m%60)
}
