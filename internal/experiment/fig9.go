package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"jarvis/internal/dataset"
	"jarvis/internal/metrics"
)

// BenefitSpaceConfig sizes the Figure 9 experiment.
type BenefitSpaceConfig struct {
	Seed         int64
	LearningDays int
	// Episodes is the training length whose per-episode series the figure
	// plots (default 120).
	Episodes int
	// ReplayEvery, Buckets and DecideEvery mirror FunctionalityConfig.
	ReplayEvery, Buckets, DecideEvery int
}

// BenefitSpaceResult compares the two exploration regimes.
type BenefitSpaceResult struct {
	// ConstrainedRewards/UnconstrainedRewards are the per-episode
	// cumulative rewards (the orange safe and grey unsafe benefit
	// spaces).
	ConstrainedRewards, UnconstrainedRewards []float64
	// UnconstrainedViolations is the per-episode safety-violation count of
	// the unconstrained agent (audited against the learned P_safe); the
	// paper reports an average of 32 per episode.
	UnconstrainedViolations []int
	// ConstrainedViolations should be all zeros.
	ConstrainedViolations []int
	// AvgViolations is the unconstrained mean per episode.
	AvgViolations float64
	// FinalConstrained/FinalUnconstrained are the greedy evaluation
	// returns after training.
	FinalConstrained, FinalUnconstrained float64
}

// BenefitSpace reproduces Figure 9: the same reward (balanced weights) is
// optimized by a P_safe-constrained agent and an unconstrained agent; the
// unconstrained agent promises more reward but commits tens of safety
// violations per episode, while the constrained agent commits none.
func BenefitSpace(cfg BenefitSpaceConfig) (*BenefitSpaceResult, error) {
	if cfg.Episodes <= 0 {
		cfg.Episodes = 120
	}
	if cfg.ReplayEvery <= 0 {
		cfg.ReplayEvery = 2
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 24
	}
	if cfg.DecideEvery <= 0 {
		cfg.DecideEvery = 15
	}
	lab, err := NewLab(LabConfig{
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Profile:      dataset.HomeAConfig(),
	})
	if err != nil {
		return nil, err
	}
	ctx := dataset.NewDayContext(LearningStart.AddDate(0, 0, 30), dataset.DefaultContext(), lab.Rng)

	// The two regimes share only the read-only lab and day context and use
	// identical per-run seeds, so they train concurrently with results
	// identical to the sequential sweep.
	type regime struct {
		rewards    []float64
		violations []int
		final      float64
	}
	regimes, err := Parallel(Seeds(cfg.Seed, 2), func(i int, _ *rand.Rand) (regime, error) {
		agent, _, _, err := buildJarvisAgent(lab, jarvisRunConfig{
			Ctx:     ctx,
			FEnergy: 1.0 / 3, FCost: 1.0 / 3, FComfort: 1.0 / 3,
			Episodes:    cfg.Episodes,
			ReplayEvery: cfg.ReplayEvery,
			Buckets:     cfg.Buckets,
			DecideEvery: cfg.DecideEvery,
			Seed:        cfg.Seed + 977,
			Constrained: i == 0,
		})
		if err != nil {
			return regime{}, err
		}
		stats, err := agent.Train()
		if err != nil {
			return regime{}, err
		}
		final, _, err := agent.Evaluate()
		if err != nil {
			return regime{}, err
		}
		return regime{stats.EpisodeRewards, stats.EpisodeViolations, final}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &BenefitSpaceResult{
		ConstrainedRewards:      regimes[0].rewards,
		ConstrainedViolations:   regimes[0].violations,
		FinalConstrained:        regimes[0].final,
		UnconstrainedRewards:    regimes[1].rewards,
		UnconstrainedViolations: regimes[1].violations,
		FinalUnconstrained:      regimes[1].final,
	}
	total := 0
	for _, v := range res.UnconstrainedViolations {
		total += v
	}
	res.AvgViolations = float64(total) / float64(len(res.UnconstrainedViolations))
	return res, nil
}

// String renders the benefit-space comparison.
func (r *BenefitSpaceResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: unconstrained vs constrained exploration benefit space\n")
	cs := metrics.Summarize(r.ConstrainedRewards)
	us := metrics.Summarize(r.UnconstrainedRewards)
	fmt.Fprintf(&b, "  constrained   reward/episode: mean %.1f (min %.1f max %.1f), final greedy %.1f\n",
		cs.Mean, cs.Min, cs.Max, r.FinalConstrained)
	fmt.Fprintf(&b, "  unconstrained reward/episode: mean %.1f (min %.1f max %.1f), final greedy %.1f\n",
		us.Mean, us.Min, us.Max, r.FinalUnconstrained)
	fmt.Fprintf(&b, "  unconstrained violations/episode: %.1f average (paper: 32)\n", r.AvgViolations)
	constViol := 0
	for _, v := range r.ConstrainedViolations {
		constViol += v
	}
	fmt.Fprintf(&b, "  constrained violations total: %d\n", constViol)
	fmt.Fprintf(&b, "  reward series (constrained):   %s\n", metrics.Sparkline(r.ConstrainedRewards))
	fmt.Fprintf(&b, "  reward series (unconstrained): %s\n", metrics.Sparkline(r.UnconstrainedRewards))
	return b.String()
}
