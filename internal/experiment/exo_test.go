package experiment

import (
	"math/rand"
	"testing"

	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

func testCtx(t *testing.T) (*smarthome.FullHome, *dataset.DayContext) {
	t.Helper()
	home := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(9))
	ctx := dataset.NewDayContext(LearningStart.AddDate(0, 0, 10), dataset.DefaultContext(), rng)
	if ctx.LeaveAt < 0 {
		t.Fatal("test needs a workday context")
	}
	return home, ctx
}

func TestDayExoThermalAndSensor(t *testing.T) {
	home, ctx := testCtx(t)
	exo := newDayExo(home, ctx)
	s := home.InitialState()
	// Walk several hours of idle: the sensor must track the thermal model.
	for m := 1; m <= 6*60; m++ {
		s = exo.Apply(s, m)
	}
	if len(exo.indoor) != 6*60 {
		t.Fatalf("indoor trace %d", len(exo.indoor))
	}
	want := exo.thermal.SensorState()
	if s[home.TempSensor] != want {
		t.Errorf("sensor %d, thermal says %d", s[home.TempSensor], want)
	}
	// A disabled sensor must not be overwritten.
	s[home.TempSensor] = smarthome.TempOff
	s2 := exo.Apply(s, 6*60+1)
	if s2[home.TempSensor] != smarthome.TempOff {
		t.Error("exo must not resurrect a powered-off sensor")
	}
	exo.Reset()
	if len(exo.indoor) != 0 {
		t.Error("Reset must clear the indoor trace")
	}
}

func TestDayExoResidentMovements(t *testing.T) {
	home, ctx := testCtx(t)
	exo := newDayExo(home, ctx)
	s := home.InitialState()
	// At the departure minute the lock goes locked_outside.
	s = exo.Apply(s, ctx.LeaveAt+1)
	if s[home.Lock] != smarthome.LockLockedOutside {
		t.Errorf("lock after departure = %d", s[home.Lock])
	}
	// Return sequence: detect, unlock, re-lock inside.
	s = exo.Apply(s, ctx.ReturnAt+1)
	if s[home.DoorSensor] != smarthome.DoorAuthUser {
		t.Errorf("door sensor at return = %d", s[home.DoorSensor])
	}
	s = exo.Apply(s, ctx.ReturnAt+2)
	if s[home.Lock] != smarthome.LockUnlocked {
		t.Errorf("lock at return+1 = %d", s[home.Lock])
	}
	s = exo.Apply(s, ctx.ReturnAt+3)
	if s[home.Lock] != smarthome.LockLockedInside || s[home.DoorSensor] != smarthome.DoorSensing {
		t.Errorf("end of return sequence: lock=%d sensor=%d", s[home.Lock], s[home.DoorSensor])
	}
}

func TestDayMetricVariants(t *testing.T) {
	home, ctx := testCtx(t)
	idle := home.InitialState()
	hot := idle.Clone()
	hot[home.Oven] = 1
	states := []env.State{idle, hot}
	indoor := []float64{21, 25}

	e := dayMetric(MetricEnergy, home, states, indoor, ctx)
	if e <= 0 {
		t.Errorf("energy = %g", e)
	}
	c := dayMetric(MetricCost, home, states, indoor, ctx)
	if c <= 0 || c >= e {
		t.Errorf("cost = %g (energy %g)", c, e)
	}
	// comfort: minute 0/1 are asleep (occupied), errors |21-21|=0, |25-21|=4
	cf := dayMetric(MetricComfort, home, states, indoor, ctx)
	if cf != 2 {
		t.Errorf("comfort = %g, want 2", cf)
	}
}

func TestWeightsFor(t *testing.T) {
	approx := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	fE, fC, fT := weightsFor(MetricEnergy, 0.8)
	if !approx(fE, 0.8) || !approx(fC, 0.1) || !approx(fT, 0.1) {
		t.Errorf("energy weights = %g %g %g", fE, fC, fT)
	}
	fE, fC, fT = weightsFor(MetricCost, 0.5)
	if fC != 0.5 || fE != 0.25 || fT != 0.25 {
		t.Errorf("cost weights = %g %g %g", fE, fC, fT)
	}
	fE, fC, fT = weightsFor(MetricComfort, 0.9)
	if fT != 0.9 {
		t.Errorf("comfort weights = %g %g %g", fE, fC, fT)
	}
}
