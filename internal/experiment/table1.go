package experiment

import (
	"fmt"
	"strings"

	"jarvis/internal/smarthome"
)

// Table1Result renders Table I: the example smart home's FSM, one row per
// device with its states p_{i_x} and actions a_{i_y}.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one device of Table I.
type Table1Row struct {
	DeviceType string
	Device     string
	States     []string
	Actions    []string
}

// Table1 builds the Table I FSM description from the canonical 5-device
// home.
func Table1() *Table1Result {
	h := smarthome.NewTableIHome()
	res := &Table1Result{}
	for i := 0; i < h.Env.K(); i++ {
		d := h.Env.Device(i)
		res.Rows = append(res.Rows, Table1Row{
			DeviceType: d.Type(),
			Device:     fmt.Sprintf("D_%d (%s)", i, d.Name()),
			States:     d.States(),
			Actions:    d.Actions(),
		})
	}
	return res
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I: Smart Home Environment FSM\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s type=%-12s\n", row.Device, row.DeviceType)
		fmt.Fprintf(&b, "  states:  %s\n", strings.Join(row.States, ", "))
		fmt.Fprintf(&b, "  actions: %s\n", strings.Join(row.Actions, ", "))
	}
	return b.String()
}
