package env

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"jarvis/internal/device"
)

// testEnv builds a 3-device environment: a lock, a light, and a sensor,
// with one user, the manual pseudo-app, and one automation app.
func testEnv(t *testing.T) *Environment {
	t.Helper()
	lock := device.NewBuilder("lock", device.TypeLock).
		States("locked", "unlocked").
		Actions("lock", "unlock").
		Transition("unlocked", "lock", "locked").
		Transition("locked", "unlock", "unlocked").
		MustBuild()
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 60).
		MustBuild()
	sensor := device.NewBuilder("sensor", device.TypeTempSensor).
		States("sensing", "off", "alarm").
		Actions("power_off", "power_on").
		TransitionAll("power_off", "off").
		Transition("off", "power_on", "sensing").
		MustBuild()

	b := NewBuilder()
	b.AddDevice(lock, Placement{Location: "home", Group: "entrance"})
	b.AddDevice(light, Placement{Location: "home", Group: "living"})
	b.AddDevice(sensor, Placement{Location: "home", Group: "living"})
	manual := b.AddApp("manual", 0, 1, 2)
	auto := b.AddApp("auto-light", 1)
	b.AddUser("alice", manual, auto)
	b.AddUser("bob") // not authorized for anything
	return b.MustBuild()
}

func TestBuilderAndAccessors(t *testing.T) {
	e := testEnv(t)
	if e.K() != 3 {
		t.Fatalf("K = %d, want 3", e.K())
	}
	if i, ok := e.DeviceIndex("light"); !ok || i != 1 {
		t.Errorf("DeviceIndex(light) = %d,%v", i, ok)
	}
	if _, ok := e.DeviceIndex("ghost"); ok {
		t.Error("DeviceIndex(ghost) should not exist")
	}
	if got := e.Placement(1).Group; got != "living" {
		t.Errorf("Placement(1).Group = %q", got)
	}
	if got := e.Placement(-1); got != (Placement{}) {
		t.Errorf("Placement(-1) = %+v, want zero", got)
	}
	if n := e.NumStateCombinations(); n != 2*2*3 {
		t.Errorf("NumStateCombinations = %d, want 12", n)
	}
	if u, ok := e.User(0); !ok || u.Name != "alice" {
		t.Errorf("User(0) = %+v,%v", u, ok)
	}
	if _, ok := e.User(99); ok {
		t.Error("User(99) should not exist")
	}
	if a, ok := e.App(1); !ok || a.Name != "auto-light" {
		t.Errorf("App(1) = %+v,%v", a, ok)
	}
}

func TestStateKeyRoundTrip(t *testing.T) {
	e := testEnv(t)
	f := func(a, b, c uint8) bool {
		s := State{
			device.StateID(int(a) % 2),
			device.StateID(int(b) % 2),
			device.StateID(int(c) % 3),
		}
		return e.DecodeState(e.StateKey(s)).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateKeyUnique(t *testing.T) {
	e := testEnv(t)
	seen := make(map[uint64]bool)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 3; c++ {
				k := e.StateKey(State{device.StateID(a), device.StateID(b), device.StateID(c)})
				if seen[k] {
					t.Fatalf("duplicate key %d", k)
				}
				seen[k] = true
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("got %d distinct keys, want 12", len(seen))
	}
}

func TestTransition(t *testing.T) {
	e := testEnv(t)
	s := State{1, 0, 0} // unlocked, light off, sensing
	a := Action{0, 1, device.NoAction}
	next, err := e.Transition(s, a)
	if err != nil {
		t.Fatalf("Transition: %v", err)
	}
	want := State{0, 1, 0}
	if !next.Equal(want) {
		t.Errorf("next = %v, want %v", next, want)
	}
	// invalid action (lock while locked)
	if _, err := e.Transition(State{0, 0, 0}, Action{0, device.NoAction, device.NoAction}); err == nil {
		t.Error("invalid action should error")
	}
	// arity mismatch
	if _, err := e.Transition(State{0}, a); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestApplyConstraints(t *testing.T) {
	e := testEnv(t)
	s := State{1, 0, 0}

	t.Run("authorized manual request succeeds", func(t *testing.T) {
		act, next, den := e.Apply(s, []Request{{User: 0, App: ManualAppID, Device: 0, Action: 0}})
		if len(den) != 0 {
			t.Fatalf("denials: %v", den)
		}
		if act[0] != 0 || !next.Equal(State{0, 0, 0}) {
			t.Errorf("act=%v next=%v", act, next)
		}
	})

	t.Run("unauthorized user denied", func(t *testing.T) {
		_, next, den := e.Apply(s, []Request{{User: 1, App: ManualAppID, Device: 0, Action: 0}})
		if len(den) != 1 || !strings.Contains(den[0].Reason, "not authorized") {
			t.Fatalf("denials = %v", den)
		}
		if !next.Equal(s) {
			t.Errorf("state should be unchanged, got %v", next)
		}
	})

	t.Run("app not subscribed to device denied", func(t *testing.T) {
		_, _, den := e.Apply(s, []Request{{User: 0, App: 1, Device: 0, Action: 0}})
		if len(den) != 1 || !strings.Contains(den[0].Reason, "not subscribed") {
			t.Fatalf("denials = %v", den)
		}
	})

	t.Run("fcfs conflict resolution", func(t *testing.T) {
		act, next, den := e.Apply(s, []Request{
			{User: 0, App: 1, Device: 1, Action: 1},           // auto app turns light on
			{User: 0, App: ManualAppID, Device: 1, Action: 1}, // manual loses FCFS
		})
		if len(den) != 1 || !strings.Contains(den[0].Reason, "claimed") {
			t.Fatalf("denials = %v", den)
		}
		if act[1] != 1 || next[1] != 1 {
			t.Errorf("light should be on: act=%v next=%v", act, next)
		}
	})

	t.Run("unknown identifiers denied", func(t *testing.T) {
		_, _, den := e.Apply(s, []Request{
			{User: 9, App: ManualAppID, Device: 0, Action: 0},
			{User: 0, App: 9, Device: 0, Action: 0},
			{User: 0, App: ManualAppID, Device: 9, Action: 0},
		})
		if len(den) != 3 {
			t.Fatalf("denials = %v, want 3", den)
		}
	})

	t.Run("invalid device action denied", func(t *testing.T) {
		_, _, den := e.Apply(State{0, 0, 0}, []Request{{User: 0, App: ManualAppID, Device: 0, Action: 0}})
		if len(den) != 1 || !strings.Contains(den[0].Reason, "invalid") {
			t.Fatalf("denials = %v", den)
		}
		if den[0].String() == "" {
			t.Error("Denial.String should be non-empty")
		}
	})
}

func TestFormatters(t *testing.T) {
	e := testEnv(t)
	s := State{0, 1, 2}
	if got := e.FormatState(s); got != "(locked, on, alarm)" {
		t.Errorf("FormatState = %q", got)
	}
	a := Action{device.NoAction, 0, device.NoAction}
	if got := e.FormatAction(a); got != "(O, power_off, O)" {
		t.Errorf("FormatAction = %q", got)
	}
}

func TestNoOpAndClones(t *testing.T) {
	a := NoOp(3)
	if !a.IsNoOp() {
		t.Error("NoOp should be a no-op")
	}
	a2 := a.Clone()
	a2[0] = 1
	if a.IsNoOp() == false {
		t.Error("Clone must not alias")
	}
	s := State{1, 2}
	s2 := s.Clone()
	s2[0] = 9
	if s[0] == 9 {
		t.Error("State clone must not alias")
	}
	if s.Equal(State{1}) {
		t.Error("Equal should compare lengths")
	}
}

func TestBuilderErrors(t *testing.T) {
	d := device.NewBuilder("d", "t").States("a").MustBuild()

	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty env should fail")
	}

	b := NewBuilder()
	b.AddDevice(d, Placement{})
	b.AddDevice(d, Placement{}) // duplicate label
	if _, err := b.Build(); err == nil {
		t.Error("duplicate labels should fail")
	}

	b = NewBuilder()
	b.AddDevice(d, Placement{})
	b.AddApp("bad", 7) // unknown device index
	if _, err := b.Build(); err == nil {
		t.Error("bad app subscription should fail")
	}

	b = NewBuilder()
	b.AddDevice(d, Placement{})
	b.AuthorizeUser(4, 0)
	if _, err := b.Build(); err == nil {
		t.Error("authorizing unknown user should fail")
	}
}

func TestAuthorizeUser(t *testing.T) {
	d := device.NewBuilder("d", "t").
		States("a", "b").Actions("go").
		Transition("a", "go", "b").MustBuild()
	b := NewBuilder()
	b.AddDevice(d, Placement{})
	app := b.AddApp("app", 0)
	u := b.AddUser("u")
	b.AuthorizeUser(u, app)
	e := b.MustBuild()
	_, _, den := e.Apply(State{0}, []Request{{User: u, App: app, Device: 0, Action: 0}})
	if len(den) != 0 {
		t.Fatalf("denials = %v", den)
	}
}

func TestNumInstances(t *testing.T) {
	tests := []struct {
		T, I time.Duration
		want int
	}{
		{time.Hour, time.Minute, 60},
		{24 * time.Hour, time.Minute, 1440},
		{90 * time.Second, time.Minute, 2}, // ceil
		{0, time.Minute, 0},
		{time.Minute, 0, 0},
	}
	for _, tt := range tests {
		if got := NumInstances(tt.T, tt.I); got != tt.want {
			t.Errorf("NumInstances(%v,%v) = %d, want %d", tt.T, tt.I, got, tt.want)
		}
	}
}

func TestRecorderAndEpisode(t *testing.T) {
	e := testEnv(t)
	start := time.Date(2020, 1, 6, 0, 0, 0, 0, time.UTC)
	r := NewRecorder(e, State{1, 0, 0}, start, 3*time.Minute, time.Minute)

	if r.Done() {
		t.Fatal("fresh recorder should not be done")
	}
	if err := r.Step(Action{0, device.NoAction, device.NoAction}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	den, err := r.StepRequests([]Request{{User: 0, App: 1, Device: 1, Action: 1}})
	if err != nil || len(den) != 0 {
		t.Fatalf("StepRequests: %v %v", den, err)
	}
	if err := r.Step(NoOp(3)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if !r.Done() {
		t.Error("recorder should be done after n steps")
	}
	if err := r.Step(NoOp(3)); err == nil {
		t.Error("stepping a complete episode should error")
	}
	if _, err := r.StepRequests(nil); err == nil {
		t.Error("StepRequests on a complete episode should error")
	}

	ep := r.Episode()
	if ep.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ep.Len())
	}
	if err := ep.Validate(e); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := ep.At(2); !got.Equal(start.Add(2 * time.Minute)) {
		t.Errorf("At(2) = %v", got)
	}
	trs := ep.Transitions()
	if len(trs) != 3 {
		t.Fatalf("Transitions = %d", len(trs))
	}
	if trs[1].Instance != 1 || !trs[1].To.Equal(State{0, 1, 0}) {
		t.Errorf("transition[1] = %+v", trs[1])
	}

	// invalid step is rejected and does not corrupt the recorder
	r2 := NewRecorder(e, State{0, 0, 0}, start, time.Minute, time.Minute)
	if err := r2.Step(Action{0, device.NoAction, device.NoAction}); err == nil {
		t.Error("invalid step should error")
	}
	if r2.Instance() != 0 {
		t.Error("failed step must not advance the episode")
	}
}

func TestEpisodeValidateErrors(t *testing.T) {
	e := testEnv(t)
	ok := Episode{
		T: 2 * time.Minute, I: time.Minute,
		States:  []State{{1, 0, 0}, {0, 0, 0}},
		Actions: []Action{{0, device.NoAction, device.NoAction}},
	}
	if err := ok.Validate(e); err != nil {
		t.Fatalf("valid episode rejected: %v", err)
	}

	bad := ok
	bad.States = []State{{1, 0, 0}}
	if err := bad.Validate(e); err == nil {
		t.Error("length mismatch should fail")
	}

	bad = ok
	bad.States = []State{{1, 0, 0}, {1, 1, 1}} // disagrees with Δ
	if err := bad.Validate(e); err == nil {
		t.Error("Δ disagreement should fail")
	}

	bad = ok
	bad.States = []State{{9, 0, 0}, {0, 0, 0}}
	if err := bad.Validate(e); err == nil {
		t.Error("invalid state should fail")
	}

	bad = ok
	bad.Actions = []Action{{1, device.NoAction, device.NoAction}} // unlock while unlocked: invalid
	if err := bad.Validate(e); err == nil {
		t.Error("invalid action should fail")
	}
}

// Property: Apply never yields a state that disagrees with Δ on the
// composite action it reports, and never changes a device that was denied.
func TestApplyConsistencyProperty(t *testing.T) {
	e := testEnv(t)
	f := func(u, ap, dev, act uint8) bool {
		s := State{1, 0, 0}
		req := Request{
			User:   int(u % 3),
			App:    int(ap % 3),
			Device: int(dev % 4),
			Action: device.ActionID(int(act%3)) - 1,
		}
		a, next, _ := e.Apply(s, []Request{req})
		want, err := e.Transition(s, a)
		return err == nil && next.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
