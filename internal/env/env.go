// Package env models the overall IoT environment of the Jarvis paper
// (Section III): a finite state machine over k devices, η users, and m apps,
// with container-based authorization (locations and groups), the five
// state-transition constraints of Section III-B, and episodic monitoring
// (Definition 2) with time period T and interval I.
package env

import (
	"errors"
	"fmt"
	"strings"

	"jarvis/internal/device"
)

// ManualAppID is the pseudo app ap_0 that, by the paper's convention,
// denotes manual operations by a user.
const ManualAppID = 0

// State is the overall environment state S_t: one device-state per device,
// indexed by device position in the environment.
type State []device.StateID

// Clone returns an independent copy of the state.
func (s State) Clone() State {
	out := make(State, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two states are identical.
func (s State) Equal(o State) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Action is the overall environment action A_t: at most one device-action
// per device (device.NoAction for devices left untouched this interval).
type Action []device.ActionID

// Clone returns an independent copy of the action.
func (a Action) Clone() Action {
	out := make(Action, len(a))
	copy(out, a)
	return out
}

// IsNoOp reports whether the action touches no device.
func (a Action) IsNoOp() bool {
	for _, x := range a {
		if x != device.NoAction {
			return false
		}
	}
	return true
}

// NoOp returns the all-NoAction action for k devices.
func NoOp(k int) Action {
	a := make(Action, k)
	for i := range a {
		a[i] = device.NoAction
	}
	return a
}

// User is one of the η environment users. Authorization is expressed as the
// set of apps the user may invoke (app subscription policies).
type User struct {
	ID   int
	Name string
	// Apps the user is authorized to use, by app ID.
	Apps map[int]bool
}

// App is one of the m apps (ap_0 is the manual-operation pseudo app).
// Device subscription policies are expressed as the set of devices the app
// may act on.
type App struct {
	ID   int
	Name string
	// Devices the app is subscribed to (may act on), by device index.
	Devices map[int]bool
}

// Placement is the container context of a device: its location and group
// per the paper's hierarchical container model.
type Placement struct {
	Location string
	Group    string
}

// Request asks the environment to execute one device-action on behalf of a
// user through an app. Manual operations use App == ManualAppID.
type Request struct {
	User   int
	App    int
	Device int
	Action device.ActionID
}

// Denial explains why a Request was rejected by the constraint checker.
type Denial struct {
	Request Request
	Reason  string
}

func (d Denial) String() string {
	return fmt.Sprintf("request{user=%d app=%d dev=%d act=%d}: %s",
		d.Request.User, d.Request.App, d.Request.Device, d.Request.Action, d.Reason)
}

// Environment is the IoT environment FSM (Definition 1). Build one with
// NewBuilder. A built Environment is immutable and safe for concurrent use.
type Environment struct {
	devices    []*device.Device
	placements []Placement
	users      []User
	apps       []App

	byName map[string]int

	// radix encoding support for compact state keys.
	radix     []uint64
	numStates uint64
}

// K returns the number of devices.
func (e *Environment) K() int { return len(e.devices) }

// Device returns the i-th device.
func (e *Environment) Device(i int) *device.Device { return e.devices[i] }

// Devices returns the device list (shared, read-only by convention).
func (e *Environment) Devices() []*device.Device {
	out := make([]*device.Device, len(e.devices))
	copy(out, e.devices)
	return out
}

// DeviceIndex looks a device up by label.
func (e *Environment) DeviceIndex(name string) (int, bool) {
	i, ok := e.byName[name]
	return i, ok
}

// Placement returns the container context of device i.
func (e *Environment) Placement(i int) Placement {
	if i < 0 || i >= len(e.placements) {
		return Placement{}
	}
	return e.placements[i]
}

// Users returns the environment's users.
func (e *Environment) Users() []User { return copyUsers(e.users) }

// Apps returns the environment's apps.
func (e *Environment) Apps() []App { return copyApps(e.apps) }

// User returns the user with the given ID.
func (e *Environment) User(id int) (User, bool) {
	for _, u := range e.users {
		if u.ID == id {
			return u, true
		}
	}
	return User{}, false
}

// App returns the app with the given ID.
func (e *Environment) App(id int) (App, bool) {
	for _, a := range e.apps {
		if a.ID == id {
			return a, true
		}
	}
	return App{}, false
}

// NumStateCombinations returns ν = Π i_ss, the size of the composite state
// space, saturating at MaxUint64.
func (e *Environment) NumStateCombinations() uint64 { return e.numStates }

// StateKey encodes a composite state into a compact uint64 using
// mixed-radix positional encoding. It panics only on malformed states that
// violate the Environment's own invariants; callers constructing states by
// hand should use ValidState first.
func (e *Environment) StateKey(s State) uint64 {
	var key uint64
	for i, st := range s {
		key += uint64(st) * e.radix[i]
	}
	return key
}

// DecodeState inverts StateKey.
func (e *Environment) DecodeState(key uint64) State {
	s := make(State, len(e.devices))
	for i := range e.devices {
		n := uint64(e.devices[i].NumStates())
		s[i] = device.StateID((key / e.radix[i]) % n)
	}
	return s
}

// ActionKey encodes a composite action into a compact uint64 using
// mixed-radix encoding over each device's action count plus one (the extra
// slot encodes NoAction).
func (e *Environment) ActionKey(a Action) uint64 {
	var key uint64
	mult := uint64(1)
	for i, ac := range a {
		n := uint64(e.devices[i].NumActions()) + 1
		key += uint64(ac+1) * mult
		mult *= n
	}
	return key
}

// DecodeAction inverts ActionKey.
func (e *Environment) DecodeAction(key uint64) Action {
	a := make(Action, len(e.devices))
	for i := range e.devices {
		n := uint64(e.devices[i].NumActions()) + 1
		a[i] = device.ActionID(key%n) - 1
		key /= n
	}
	return a
}

// ValidState reports whether every device-state index is in range.
func (e *Environment) ValidState(s State) bool {
	if len(s) != len(e.devices) {
		return false
	}
	for i, st := range s {
		if st < 0 || int(st) >= e.devices[i].NumStates() {
			return false
		}
	}
	return true
}

// Transition applies the overall transition function Δ(S_t, A_t): every
// device's δ_i is applied to its action. Invalid device actions are
// rejected with an error (the environment state is never partially
// updated).
func (e *Environment) Transition(s State, a Action) (State, error) {
	next := make(State, len(s))
	if err := e.TransitionInto(next, s, a); err != nil {
		return nil, err
	}
	return next, nil
}

// TransitionInto is Transition writing into a caller-provided destination
// state, so hot loops (episode recording, candidate-action scoring) can
// reuse one buffer instead of allocating per step. dst may alias s. On
// error dst's contents are unspecified.
func (e *Environment) TransitionInto(dst, s State, a Action) error {
	if len(s) != len(e.devices) || len(a) != len(e.devices) || len(dst) != len(e.devices) {
		return fmt.Errorf("env: transition arity mismatch: %d devices, state %d, action %d, dst %d",
			len(e.devices), len(s), len(a), len(dst))
	}
	for i := range e.devices {
		ns, ok := e.devices[i].Next(s[i], a[i])
		if !ok {
			return fmt.Errorf("env: device %s: action %s invalid in state %s",
				e.devices[i].Name(), e.devices[i].ActionName(a[i]), e.devices[i].StateName(s[i]))
		}
		dst[i] = ns
	}
	return nil
}

// Apply resolves a set of requests for one interval into a composite action
// under the paper's five constraints:
//
//  1. one action per device per interval,
//  2. only authorized users may use an app,
//  3. only apps subscribed to a device may act on it,
//  4. only one app acts on a device per interval (first come, first served),
//  5. a device changes state at most once per interval.
//
// It returns the resulting composite action, the next state, and the list
// of denied requests with reasons. Denials never abort the interval: the
// remaining requests still apply, matching the FCFS semantics.
func (e *Environment) Apply(s State, reqs []Request) (Action, State, []Denial) {
	act := NoOp(len(e.devices))
	var denials []Denial
	claimed := make(map[int]int, len(reqs)) // device -> app that claimed it
	for _, r := range reqs {
		if r.Device < 0 || r.Device >= len(e.devices) {
			denials = append(denials, Denial{r, "unknown device"})
			continue
		}
		u, ok := e.User(r.User)
		if !ok {
			denials = append(denials, Denial{r, "unknown user"})
			continue
		}
		ap, ok := e.App(r.App)
		if !ok {
			denials = append(denials, Denial{r, "unknown app"})
			continue
		}
		if !u.Apps[r.App] {
			denials = append(denials, Denial{r, "user not authorized for app"})
			continue
		}
		if !ap.Devices[r.Device] {
			denials = append(denials, Denial{r, "app not subscribed to device"})
			continue
		}
		if prev, taken := claimed[r.Device]; taken {
			denials = append(denials, Denial{r, fmt.Sprintf("device already claimed by app %d this interval", prev)})
			continue
		}
		if _, ok := e.devices[r.Device].Next(s[r.Device], r.Action); !ok {
			denials = append(denials, Denial{r, "action invalid in current device state"})
			continue
		}
		claimed[r.Device] = r.App
		act[r.Device] = r.Action
	}
	next, err := e.Transition(s, act)
	if err != nil {
		// Unreachable given the per-request validity check above, but keep
		// the environment total: fall back to no-op.
		next = s.Clone()
		act = NoOp(len(e.devices))
	}
	return act, next, denials
}

// FormatState renders a composite state as the paper does:
// (p_{0_x}, p_{1_y}, ...).
func (e *Environment) FormatState(s State) string {
	parts := make([]string, len(s))
	for i, st := range s {
		parts[i] = e.devices[i].StateName(st)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// FormatAction renders a composite action, using "O" for untouched devices.
func (e *Environment) FormatAction(a Action) string {
	parts := make([]string, len(a))
	for i, ac := range a {
		if ac == device.NoAction {
			parts[i] = "O"
		} else {
			parts[i] = e.devices[i].ActionName(ac)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func copyUsers(in []User) []User {
	out := make([]User, len(in))
	for i, u := range in {
		apps := make(map[int]bool, len(u.Apps))
		for k, v := range u.Apps {
			apps[k] = v
		}
		u.Apps = apps
		out[i] = u
	}
	return out
}

func copyApps(in []App) []App {
	out := make([]App, len(in))
	for i, a := range in {
		devs := make(map[int]bool, len(a.Devices))
		for k, v := range a.Devices {
			devs[k] = v
		}
		a.Devices = devs
		out[i] = a
	}
	return out
}

// Builder assembles an Environment.
type Builder struct {
	devices    []*device.Device
	placements []Placement
	users      []User
	apps       []App
	errs       []error
}

// NewBuilder starts an empty environment.
func NewBuilder() *Builder { return &Builder{} }

// AddDevice registers a device with its container placement and returns its
// index.
func (b *Builder) AddDevice(d *device.Device, p Placement) int {
	b.devices = append(b.devices, d)
	b.placements = append(b.placements, p)
	return len(b.devices) - 1
}

// AddUser registers a user authorized for the given app IDs.
func (b *Builder) AddUser(name string, appIDs ...int) int {
	id := len(b.users)
	apps := make(map[int]bool, len(appIDs))
	for _, a := range appIDs {
		apps[a] = true
	}
	b.users = append(b.users, User{ID: id, Name: name, Apps: apps})
	return id
}

// AuthorizeUser grants an existing user access to additional apps.
func (b *Builder) AuthorizeUser(userID int, appIDs ...int) *Builder {
	if userID < 0 || userID >= len(b.users) {
		b.errs = append(b.errs, fmt.Errorf("authorize unknown user %d", userID))
		return b
	}
	for _, a := range appIDs {
		b.users[userID].Apps[a] = true
	}
	return b
}

// AddApp registers an app subscribed to the given device indices and
// returns its app ID. The first app added should conventionally be the
// manual-operation pseudo app ap_0.
func (b *Builder) AddApp(name string, deviceIdx ...int) int {
	id := len(b.apps)
	devs := make(map[int]bool, len(deviceIdx))
	for _, d := range deviceIdx {
		devs[d] = true
	}
	b.apps = append(b.apps, App{ID: id, Name: name, Devices: devs})
	return id
}

// Build finalizes the environment.
func (b *Builder) Build() (*Environment, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(b.devices) == 0 {
		return nil, errors.New("env: no devices")
	}
	byName := make(map[string]int, len(b.devices))
	for i, d := range b.devices {
		if _, dup := byName[d.Name()]; dup {
			return nil, fmt.Errorf("env: duplicate device label %q", d.Name())
		}
		byName[d.Name()] = i
	}
	for _, a := range b.apps {
		for di := range a.Devices {
			if di < 0 || di >= len(b.devices) {
				return nil, fmt.Errorf("env: app %q subscribed to unknown device %d", a.Name, di)
			}
		}
	}
	radix := make([]uint64, len(b.devices))
	total := uint64(1)
	for i, d := range b.devices {
		radix[i] = total
		n := uint64(d.NumStates())
		if n == 0 {
			return nil, fmt.Errorf("env: device %q has no states", d.Name())
		}
		if total > (1<<63)/n {
			return nil, fmt.Errorf("env: composite state space exceeds 2^63 combinations")
		}
		total *= n
	}
	e := &Environment{
		devices:    append([]*device.Device(nil), b.devices...),
		placements: append([]Placement(nil), b.placements...),
		users:      copyUsers(b.users),
		apps:       copyApps(b.apps),
		byName:     byName,
		radix:      radix,
		numStates:  total,
	}
	return e, nil
}

// MustBuild is Build for statically known-correct environments.
func (b *Builder) MustBuild() *Environment {
	e, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("env: MustBuild: %v", err))
	}
	return e
}
