package env

import (
	"testing"
	"testing/quick"
	"time"

	"jarvis/internal/device"
)

func TestReplayActions(t *testing.T) {
	e := testEnv(t)
	start := time.Date(2020, 1, 6, 0, 0, 0, 0, time.UTC)
	actions := []Action{
		{0, device.NoAction, device.NoAction}, // lock
		{device.NoAction, 1, device.NoAction}, // light on
		{0, device.NoAction, device.NoAction}, // lock again: invalid, dropped
		{device.NoAction, device.NoAction, 0}, // sensor off
	}
	ep, err := ReplayActions(e, State{1, 0, 0}, start, time.Minute, actions)
	if err != nil {
		t.Fatalf("ReplayActions: %v", err)
	}
	if err := ep.Validate(e); err != nil {
		t.Fatalf("replayed episode invalid: %v", err)
	}
	if ep.Len() != 4 {
		t.Fatalf("Len = %d", ep.Len())
	}
	// The invalid re-lock was dropped, not recorded.
	if ep.Actions[2][0] != device.NoAction {
		t.Errorf("invalid action recorded: %v", ep.Actions[2])
	}
	want := State{0, 1, 1}
	if !ep.States[4].Equal(want) {
		t.Errorf("final state %v, want %v", ep.States[4], want)
	}
}

func TestReplayActionsBadInitial(t *testing.T) {
	e := testEnv(t)
	if _, err := ReplayActions(e, State{9, 9, 9}, time.Time{}, time.Minute, nil); err == nil {
		t.Error("invalid initial state should error")
	}
}

// Property: a replayed episode always validates, regardless of the action
// garbage thrown at it.
func TestReplayActionsAlwaysConsistentProperty(t *testing.T) {
	e := testEnv(t)
	f := func(raw []uint8) bool {
		actions := make([]Action, 0, len(raw)/3+1)
		for i := 0; i+2 < len(raw); i += 3 {
			actions = append(actions, Action{
				device.ActionID(int(raw[i])%4) - 1,
				device.ActionID(int(raw[i+1])%4) - 1,
				device.ActionID(int(raw[i+2])%4) - 1,
			})
		}
		if len(actions) == 0 {
			return true
		}
		ep, err := ReplayActions(e, State{1, 0, 0}, time.Time{}, time.Minute, actions)
		if err != nil {
			return false
		}
		return ep.Validate(e) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ActionKey round-trips for arbitrary (valid-range) actions and
// distinct actions get distinct keys.
func TestActionKeyRoundTripProperty(t *testing.T) {
	e := testEnv(t)
	f := func(a0, a1, a2 uint8) bool {
		a := Action{
			device.ActionID(int(a0)%3) - 1, // lock has 2 actions
			device.ActionID(int(a1)%3) - 1,
			device.ActionID(int(a2)%3) - 1,
		}
		got := e.DecodeAction(e.ActionKey(a))
		for i := range a {
			if got[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StateKey is injective over the full composite state space.
func TestStateKeyInjectiveProperty(t *testing.T) {
	e := testEnv(t)
	seen := make(map[uint64]State)
	var total uint64
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 3; c++ {
				s := State{device.StateID(a), device.StateID(b), device.StateID(c)}
				k := e.StateKey(s)
				if prev, dup := seen[k]; dup {
					t.Fatalf("key collision: %v and %v -> %d", prev, s, k)
				}
				seen[k] = s
				total++
			}
		}
	}
	if total != e.NumStateCombinations() {
		t.Errorf("enumerated %d, combinations %d", total, e.NumStateCombinations())
	}
}
