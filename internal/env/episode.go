package env

import (
	"fmt"
	"time"

	"jarvis/internal/device"
)

// NumInstances returns n = ceil(T/I), the number of time instances in an
// episode with time period T and interval I (Definition 2).
func NumInstances(T, I time.Duration) int {
	if T <= 0 || I <= 0 {
		return 0
	}
	n := T / I
	if T%I != 0 {
		n++
	}
	return int(n)
}

// Episode is an ordered record of the environment's state transitions over
// one time period (Definition 2): States[0] is S_0 and Actions[t] is the
// composite action A_t taken at time instance t, yielding States[t+1].
type Episode struct {
	// T is the episode's time period and I its interval.
	T, I time.Duration
	// Start is the wall-clock time of S_0; instance t occurs at
	// Start + t*I. Time-of-day features derive from it.
	Start time.Time
	// States has length Len()+1; Actions has length Len().
	States  []State
	Actions []Action
}

// Len returns n, the number of time instances (= recorded actions).
func (ep *Episode) Len() int { return len(ep.Actions) }

// At returns the wall-clock time of instance t.
func (ep *Episode) At(t int) time.Time { return ep.Start.Add(time.Duration(t) * ep.I) }

// Transition is one (S_t, A_t, S_{t+1}) step of an episode, the unit the
// Security Policy Learner consumes as trigger→action behavior
// (T: current state → A: next action).
type Transition struct {
	From     State
	Act      Action
	To       State
	Instance int       // time instance t within the episode
	At       time.Time // wall-clock time of the transition
}

// Transitions expands an episode into its individual state transitions.
func (ep *Episode) Transitions() []Transition {
	out := make([]Transition, 0, len(ep.Actions))
	for t := range ep.Actions {
		out = append(out, Transition{
			From:     ep.States[t],
			Act:      ep.Actions[t],
			To:       ep.States[t+1],
			Instance: t,
			At:       ep.At(t),
		})
	}
	return out
}

// Validate checks the episode's internal consistency against an
// environment: state/action arity, length invariants, and that every step
// obeys the overall transition function Δ.
func (ep *Episode) Validate(e *Environment) error {
	if len(ep.States) != len(ep.Actions)+1 {
		return fmt.Errorf("episode: %d states but %d actions", len(ep.States), len(ep.Actions))
	}
	if want := NumInstances(ep.T, ep.I); ep.T > 0 && len(ep.Actions) > want {
		return fmt.Errorf("episode: %d actions exceed n=%d for T=%v I=%v", len(ep.Actions), want, ep.T, ep.I)
	}
	for t, a := range ep.Actions {
		if !e.ValidState(ep.States[t]) {
			return fmt.Errorf("episode: invalid state at instance %d", t)
		}
		next, err := e.Transition(ep.States[t], a)
		if err != nil {
			return fmt.Errorf("episode: instance %d: %w", t, err)
		}
		if !next.Equal(ep.States[t+1]) {
			return fmt.Errorf("episode: instance %d: recorded next state disagrees with Δ", t)
		}
	}
	if len(ep.States) > 0 && !e.ValidState(ep.States[len(ep.States)-1]) {
		return fmt.Errorf("episode: invalid final state")
	}
	return nil
}

// ReplayActions rebuilds an episode from an action sequence, starting at
// s0. Device actions that are invalid in the state actually reached are
// dropped (a real hub discards stale commands), so the result is always a
// consistent episode — the tool dataset injection and attack engineering
// use to splice actions into recorded behavior.
func ReplayActions(e *Environment, s0 State, start time.Time, I time.Duration, actions []Action) (Episode, error) {
	if !e.ValidState(s0) {
		return Episode{}, fmt.Errorf("env: replay: invalid initial state")
	}
	T := time.Duration(len(actions)) * I
	rec := NewRecorder(e, s0, start, T, I)
	cleaned := make(Action, e.K())
	for t, a := range actions {
		if len(a) != len(cleaned) {
			return Episode{}, fmt.Errorf("env: replay instance %d: action arity %d, want %d", t, len(a), len(cleaned))
		}
		copy(cleaned, a)
		s := rec.State()
		for dev, ac := range cleaned {
			if ac == device.NoAction {
				continue
			}
			if _, ok := e.devices[dev].Next(s[dev], ac); !ok {
				cleaned[dev] = device.NoAction
			}
		}
		if err := rec.Step(cleaned); err != nil {
			return Episode{}, fmt.Errorf("env: replay instance %d: %w", t, err)
		}
	}
	return rec.Episode(), nil
}

// Recorder incrementally builds an episode by stepping the environment.
// It enforces the episode length n = ceil(T/I): Step returns false once the
// episode is complete.
//
// The recorded states and actions are views into two flat backing arrays
// allocated up front, so a full episode costs two allocations instead of
// two per time instance — episode recording dominates the allocation
// profile of every learning phase.
type Recorder struct {
	env *Environment
	ep  Episode
	n   int

	sback []device.StateID  // (n+1)*k flat state storage
	aback []device.ActionID // n*k flat action storage
}

// NewRecorder starts an episode at state s0 and wall-clock time start.
func NewRecorder(e *Environment, s0 State, start time.Time, T, I time.Duration) *Recorder {
	n := NumInstances(T, I)
	k := len(s0)
	r := &Recorder{
		env:   e,
		n:     n,
		sback: make([]device.StateID, (n+1)*k),
		aback: make([]device.ActionID, n*k),
	}
	first := State(r.sback[0:k:k])
	copy(first, s0)
	r.ep = Episode{
		T:       T,
		I:       I,
		Start:   start,
		States:  append(make([]State, 0, n+1), first),
		Actions: make([]Action, 0, n),
	}
	return r
}

// State returns the current (latest) state.
func (r *Recorder) State() State { return r.ep.States[len(r.ep.States)-1] }

// Instance returns the next time instance to be recorded.
func (r *Recorder) Instance() int { return len(r.ep.Actions) }

// Done reports whether the episode has reached its full length.
func (r *Recorder) Done() bool { return len(r.ep.Actions) >= r.n }

// Step applies composite action a at the current instance. It returns an
// error when the episode is already complete or the action is invalid.
// The action is copied, so callers may reuse their buffer across steps.
func (r *Recorder) Step(a Action) error {
	if r.Done() {
		return fmt.Errorf("episode: already complete (n=%d)", r.n)
	}
	k := len(r.State())
	t := len(r.ep.Actions)
	next := State(r.sback[(t+1)*k : (t+2)*k : (t+2)*k])
	if err := r.env.TransitionInto(next, r.State(), a); err != nil {
		return err
	}
	av := Action(r.aback[t*k : (t+1)*k : (t+1)*k])
	copy(av, a)
	r.ep.Actions = append(r.ep.Actions, av)
	r.ep.States = append(r.ep.States, next)
	return nil
}

// StepRequests resolves requests under the environment constraints and
// records the resulting composite action. Denials are returned but do not
// fail the step.
func (r *Recorder) StepRequests(reqs []Request) ([]Denial, error) {
	if r.Done() {
		return nil, fmt.Errorf("episode: already complete (n=%d)", r.n)
	}
	act, next, denials := r.env.Apply(r.State(), reqs)
	k := len(next)
	t := len(r.ep.Actions)
	nv := State(r.sback[(t+1)*k : (t+2)*k : (t+2)*k])
	copy(nv, next)
	av := Action(r.aback[t*k : (t+1)*k : (t+1)*k])
	copy(av, act)
	r.ep.Actions = append(r.ep.Actions, av)
	r.ep.States = append(r.ep.States, nv)
	return denials, nil
}

// Episode returns the (possibly still partial) episode recorded so far.
func (r *Recorder) Episode() Episode {
	ep := r.ep
	if !r.Done() {
		// A partial episode may still be appended to by the recorder, so
		// hand back copied headers. A complete episode's slices are at full
		// capacity — any append by the caller reallocates — so the headers
		// can be shared as-is.
		ep.States = append([]State(nil), r.ep.States...)
		ep.Actions = append([]Action(nil), r.ep.Actions...)
	}
	return ep
}
