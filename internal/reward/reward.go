// Package reward implements the estimated "smart" reward function of the
// Jarvis paper (Section IV-B):
//
//	R_smart(S, A, t) = Σ_j f_j·F_j(s, a, t) − (I/kT)·Σ_i ω_i(s_i, a_i)·|t−t′|
//
// The first term is the weighted sum of the user's κ normalized
// functionality rewards F_j; the second is the estimated dis-utility, where
// t′ is the closest preferred time instance for the device's state-action
// pair according to past (learning-phase) behavior and ω_i is the device's
// dis-utility function. The weights balance according to the
// utility/dis-utility ratio χ = kT·Σf_j / (I·Σω_i).
package reward

import (
	"errors"
	"fmt"
	"sort"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// Func is one normalized functionality reward F_j: it scores taking
// composite action a in state s at time instance t, in [0, 1] by
// convention (1 = best for the user's goal).
type Func func(s env.State, a env.Action, t int) float64

// Functionality couples a reward function with its user weight f_j.
type Functionality struct {
	Name   string
	Weight float64
	F      Func
}

// PreferredTimes records, for every (device, action) pair, the time
// instances at which the action occurred during learning episodes. It
// answers "closest preferred instance" queries (t′ in the paper).
// Storage is slice-indexed by device and action so the per-candidate
// lookups in the dis-utility hot path cost an index, not a map hash.
type PreferredTimes struct {
	byDev [][][]int // byDev[dev][act] -> sorted instants
	n     int       // instances per episode
}

// LearnPreferredTimes scans learning episodes and indexes every non-NoOp
// device action by the instants it occurred at.
func LearnPreferredTimes(e *env.Environment, eps []env.Episode) *PreferredTimes {
	p := &PreferredTimes{byDev: make([][][]int, e.K())}
	for i := range p.byDev {
		p.byDev[i] = make([][]int, e.Device(i).NumActions())
	}
	for _, ep := range eps {
		if n := env.NumInstances(ep.T, ep.I); n > p.n {
			p.n = n
		}
		for t, a := range ep.Actions {
			for di, ac := range a {
				if ac == device.NoAction || di >= len(p.byDev) ||
					ac < 0 || int(ac) >= len(p.byDev[di]) {
					continue
				}
				p.byDev[di][ac] = append(p.byDev[di][ac], t)
			}
		}
	}
	for _, acts := range p.byDev {
		for _, times := range acts {
			sort.Ints(times)
		}
	}
	return p
}

// times returns the sorted instants of (dev, act), nil when never observed
// or out of range.
func (p *PreferredTimes) times(dev int, act device.ActionID) []int {
	if dev < 0 || dev >= len(p.byDev) || act < 0 || int(act) >= len(p.byDev[dev]) {
		return nil
	}
	return p.byDev[dev][act]
}

// Instances returns the number of time instances per episode seen during
// learning.
func (p *PreferredTimes) Instances() int { return p.n }

// Closest returns the preferred instance t′ nearest to t for the given
// device action. The second result is false when the action was never
// observed.
func (p *PreferredTimes) Closest(dev int, act device.ActionID, t int) (int, bool) {
	times := p.times(dev, act)
	if len(times) == 0 {
		return 0, false
	}
	i := sort.SearchInts(times, t)
	switch {
	case i == 0:
		return times[0], true
	case i == len(times):
		return times[len(times)-1], true
	default:
		lo, hi := times[i-1], times[i]
		if t-lo <= hi-t {
			return lo, true
		}
		return hi, true
	}
}

// LatestBefore returns the most recent preferred instance t′ ≤ t for the
// given device action, or false when none exists.
func (p *PreferredTimes) LatestBefore(dev int, act device.ActionID, t int) (int, bool) {
	times := p.times(dev, act)
	i := sort.SearchInts(times, t+1)
	if i == 0 {
		return 0, false
	}
	return times[i-1], true
}

// Config assembles a Smart reward function.
type Config struct {
	// Functionalities are the user's κ goals with their weights f_j.
	Functionalities []Functionality
	// Preferred supplies t′ lookups; nil treats every action as maximally
	// off-schedule (conservative: unknown behavior is expensive).
	Preferred *PreferredTimes
	// Instances is n = T/I, the episode length in time instances.
	Instances int
	// Routine lists the devices whose user routine the agent is expected
	// to maintain: when such a device sits in a state where a habitual
	// action (per Preferred) is overdue, dis-utility accrues with the
	// delay t−t′ even though the agent did nothing. This realizes the
	// paper's "dis-utility per time instance if the execution of
	// device-action a is delayed in state p": pure functionality
	// optimization (never operating anything) is not free.
	Routine map[int]bool
	// RoutineWindow bounds, in instances, how long after its preferred
	// time a routine action stays "pending" (default 90). Outside the
	// window the opportunity is considered moot — the device may well be
	// back in this state because the routine already completed.
	RoutineWindow int
}

// Smart is the estimated reward function R_smart. It is immutable and safe
// for concurrent use.
type Smart struct {
	env     *env.Environment
	funcs   []Functionality
	pref    *PreferredTimes
	n       int
	k       int
	routine []bool // indexed by device, true when its routine is maintained
	window  int
}

// New validates cfg and builds the reward function.
func New(e *env.Environment, cfg Config) (*Smart, error) {
	if len(cfg.Functionalities) == 0 {
		return nil, errors.New("reward: at least one functionality required")
	}
	for _, f := range cfg.Functionalities {
		if f.F == nil {
			return nil, fmt.Errorf("reward: functionality %q has nil F", f.Name)
		}
		if f.Weight < 0 {
			return nil, fmt.Errorf("reward: functionality %q has negative weight", f.Name)
		}
	}
	if cfg.Instances <= 0 {
		return nil, fmt.Errorf("reward: invalid instance count %d", cfg.Instances)
	}
	routine := make([]bool, e.K())
	for d, v := range cfg.Routine {
		if v && d >= 0 && d < len(routine) {
			routine[d] = true
		}
	}
	window := cfg.RoutineWindow
	if window <= 0 {
		window = 90
	}
	return &Smart{
		env:     e,
		funcs:   append([]Functionality(nil), cfg.Functionalities...),
		pref:    cfg.Preferred,
		n:       cfg.Instances,
		k:       e.K(),
		routine: routine,
		window:  window,
	}, nil
}

// Utility returns Σ_j f_j·F_j(s, a, t), the functionality part of R_smart.
func (r *Smart) Utility(s env.State, a env.Action, t int) float64 {
	var sum float64
	for _, f := range r.funcs {
		sum += f.Weight * f.F(s, a, t)
	}
	return sum
}

// DisUtility returns the estimated discomfort of taking action a at
// instance t rather than at the preferred instance t′:
//
//	(1/k)·Σ_i ω_i(s_i, a_i)·min(|t−t′|, W)/W
//
// The paper's raw factor I/(kT)·(t−t′) makes dis-utility vanish at
// minute-level intervals, defeating the χ = 1 balance Section VI-D
// configures; normalizing the delay by the routine window W keeps both
// reward parts on the same [0, 1]-ish scale (see DESIGN.md). Actions never
// observed during learning are charged the full window.
func (r *Smart) DisUtility(s env.State, a env.Action, t int) float64 {
	var sum float64
	for di, ac := range a {
		sum += r.pendingDelay(s, di, ac, t)
		if ac == device.NoAction {
			continue
		}
		w := r.env.Device(di).DisUtility(s[di], ac)
		if w == 0 {
			continue
		}
		delay := r.window // unknown behavior: maximal deviation
		if r.pref != nil {
			if tp, ok := r.pref.Closest(di, ac, t); ok {
				delay = t - tp
				if delay < 0 {
					delay = -delay
				}
				if delay > r.window {
					delay = r.window
				}
			}
		}
		sum += w * float64(delay) / float64(r.window)
	}
	return sum / float64(r.k)
}

// pendingDelay charges a routine device for a habitual action that is
// overdue at instance t: the user would have taken it within the routine
// window (t′ ≤ t ≤ t′+W, and the device still sits in a state where it
// applies) but the agent has not. Taking the overdue action itself (taken
// == v) clears the charge; taking an unrelated action does not dodge it.
func (r *Smart) pendingDelay(s env.State, di int, taken device.ActionID, t int) float64 {
	if r.pref == nil || di >= len(r.routine) || !r.routine[di] {
		return 0
	}
	d := r.env.Device(di)
	var worst float64
	for _, v := range d.ValidActions(s[di]) {
		if v == taken {
			continue
		}
		tp, ok := r.pref.LatestBefore(di, v, t)
		if !ok || t-tp > r.window {
			continue
		}
		w := d.DisUtility(s[di], v)
		if charge := w * float64(t-tp) / float64(r.window); charge > worst {
			worst = charge
		}
	}
	return worst
}

// R evaluates R_smart(S, A, t) = Utility − DisUtility.
func (r *Smart) R(s env.State, a env.Action, t int) float64 {
	return r.Utility(s, a, t) - r.DisUtility(s, a, t)
}

// Chi returns the utility/dis-utility ratio χ: the maximum attainable
// per-instance utility Σf_j over the maximum attainable per-instance
// dis-utility (1/k)·Σω_i. The paper balances utility against discomfort by
// configuring χ = 1; the default smart-home ω values give χ ≈ 1.6.
func (r *Smart) Chi() float64 {
	var sumF, sumW float64
	for _, f := range r.funcs {
		sumF += f.Weight
	}
	for i := 0; i < r.k; i++ {
		sumW += r.env.Device(i).MaxDisUtility()
	}
	if sumW == 0 {
		return 0
	}
	return sumF / (sumW / float64(r.k))
}

// Functionalities returns the configured goals (copy).
func (r *Smart) Functionalities() []Functionality {
	return append([]Functionality(nil), r.funcs...)
}

// Instances returns n, the episode length in time instances.
func (r *Smart) Instances() int { return r.n }
