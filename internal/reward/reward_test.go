package reward

import (
	"math"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	heater := device.NewBuilder("heater", device.TypeThermostat).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 2000).
		UniformDisUtility(0.2).
		MustBuild()
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 60).
		UniformDisUtility(0.9).
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(heater, env.Placement{})
	b.AddDevice(light, env.Placement{})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

func constF(v float64) Func {
	return func(env.State, env.Action, int) float64 { return v }
}

func TestNewValidation(t *testing.T) {
	e := testEnv(t)
	cases := []Config{
		{}, // no functionalities
		{Functionalities: []Functionality{{Name: "f", F: nil}}, Instances: 10},                   // nil F
		{Functionalities: []Functionality{{Name: "f", Weight: -1, F: constF(1)}}, Instances: 10}, // negative weight
		{Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(1)}}, Instances: 0},   // bad n
	}
	for i, cfg := range cases {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("case %d: New succeeded, want error", i)
		}
	}
}

func TestUtilityIsWeightedSum(t *testing.T) {
	e := testEnv(t)
	r, err := New(e, Config{
		Functionalities: []Functionality{
			{Name: "a", Weight: 0.3, F: constF(1)},
			{Name: "b", Weight: 0.7, F: constF(0.5)},
		},
		Instances: 100,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got := r.Utility(env.State{0, 0}, env.NoOp(2), 0)
	want := 0.3*1 + 0.7*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %g, want %g", got, want)
	}
}

func TestDisUtilityUsesPreferredTimes(t *testing.T) {
	e := testEnv(t)
	// Learning episode: light (dev 1) turns on at instance 10 every day.
	on := env.Action{device.NoAction, 1}
	rec := env.NewRecorder(e, env.State{0, 0}, time.Time{}, 20*time.Minute, time.Minute)
	for i := 0; i < 20; i++ {
		a := env.NoOp(2)
		if i == 10 {
			a = on
		}
		if err := rec.Step(a); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	pref := LearnPreferredTimes(e, []env.Episode{rec.Episode()})
	if pref.Instances() != 20 {
		t.Errorf("Instances = %d", pref.Instances())
	}

	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(0)}},
		Preferred:       pref,
		Instances:       20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	s := env.State{0, 0}
	atPreferred := r.DisUtility(s, on, 10)
	early := r.DisUtility(s, on, 4)
	earlier := r.DisUtility(s, on, 0)
	if atPreferred != 0 {
		t.Errorf("dis-utility at preferred time = %g, want 0", atPreferred)
	}
	if !(earlier > early && early > atPreferred) {
		t.Errorf("dis-utility should grow with |t-t'|: %g %g %g", atPreferred, early, earlier)
	}
	// exact value: ω=0.9, delay 6, W=90, k=2 -> 0.9*(6/90)/2
	if want := 0.9 * 6 / 90.0 / 2; math.Abs(early-want) > 1e-12 {
		t.Errorf("early = %g, want %g", early, want)
	}
	// NoOp has zero dis-utility.
	if got := r.DisUtility(s, env.NoOp(2), 3); got != 0 {
		t.Errorf("NoOp dis-utility = %g", got)
	}
}

func TestDisUtilityUnknownActionIsMax(t *testing.T) {
	e := testEnv(t)
	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(0)}},
		Preferred:       LearnPreferredTimes(e, nil), // knows nothing
		Instances:       10,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// heater on: ω=0.2, unknown action -> full window, k=2 -> 0.2/2 = 0.1
	got := r.DisUtility(env.State{0, 0}, env.Action{1, device.NoAction}, 5)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("unknown-action dis-utility = %g, want 0.1", got)
	}
}

func TestRIsUtilityMinusDisUtility(t *testing.T) {
	e := testEnv(t)
	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(0.8)}},
		Instances:       10,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := env.State{0, 0}
	a := env.Action{1, device.NoAction}
	want := r.Utility(s, a, 3) - r.DisUtility(s, a, 3)
	if got := r.R(s, a, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("R = %g, want %g", got, want)
	}
}

func TestClosest(t *testing.T) {
	e := testEnv(t)
	var eps []env.Episode
	rec := env.NewRecorder(e, env.State{0, 0}, time.Time{}, 30*time.Minute, time.Minute)
	onAt := map[int]bool{5: true, 20: true}
	light := 1
	for i := 0; i < 30; i++ {
		a := env.NoOp(2)
		if onAt[i] {
			a = env.Action{device.NoAction, 1}
		} else if i == 6 || i == 21 {
			a = env.Action{device.NoAction, 0} // turn back off so on is valid again
		}
		if err := rec.Step(a); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	eps = append(eps, rec.Episode())
	p := LearnPreferredTimes(e, eps)

	tests := []struct {
		t    int
		want int
	}{
		{0, 5}, {5, 5}, {12, 5}, {13, 20}, {29, 20},
	}
	for _, tt := range tests {
		got, ok := p.Closest(light, 1, tt.t)
		if !ok || got != tt.want {
			t.Errorf("Closest(light, on, %d) = %d,%v want %d", tt.t, got, ok, tt.want)
		}
	}
	if _, ok := p.Closest(0, 1, 5); ok {
		t.Error("heater was never used; Closest should report false")
	}
}

func TestChi(t *testing.T) {
	e := testEnv(t)
	r, err := New(e, Config{
		Functionalities: []Functionality{
			{Name: "a", Weight: 0.5, F: constF(1)},
			{Name: "b", Weight: 0.5, F: constF(1)},
		},
		Instances: 10,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Σf=1, Σω/k = 1.1/2 -> χ = 1/0.55
	want := 1 / 0.55
	if got := r.Chi(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Chi = %g, want %g", got, want)
	}
}

func TestChiZeroDisutility(t *testing.T) {
	d := device.NewBuilder("d", "t").States("a", "b").Actions("go").
		Transition("a", "go", "b").MustBuild()
	b := env.NewBuilder()
	b.AddDevice(d, env.Placement{})
	e := b.MustBuild()
	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(1)}},
		Instances:       5,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := r.Chi(); got != 0 {
		t.Errorf("Chi with Σω=0 should be 0, got %g", got)
	}
}

func TestAccessors(t *testing.T) {
	e := testEnv(t)
	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(1)}},
		Instances:       7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if r.Instances() != 7 {
		t.Errorf("Instances = %d", r.Instances())
	}
	fs := r.Functionalities()
	if len(fs) != 1 || fs[0].Name != "f" {
		t.Errorf("Functionalities = %v", fs)
	}
	fs[0].Name = "mutated"
	if r.Functionalities()[0].Name == "mutated" {
		t.Error("Functionalities must return a copy")
	}
}
