package reward

import (
	"math"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// pendingFixture: the light (dev 1, ω=0.9) habitually turns on at
// instance 50 of a 200-instance episode.
func pendingFixture(t *testing.T) (*env.Environment, *Smart) {
	t.Helper()
	e := testEnv(t)
	rec := env.NewRecorder(e, env.State{0, 0}, time.Time{}, 200*time.Minute, time.Minute)
	for i := 0; i < 200; i++ {
		a := env.NoOp(2)
		if i == 50 {
			a = env.Action{device.NoAction, 1} // light on
		}
		if err := rec.Step(a); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	pref := LearnPreferredTimes(e, []env.Episode{rec.Episode()})
	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(0)}},
		Preferred:       pref,
		Instances:       200,
		Routine:         map[int]bool{1: true},
		RoutineWindow:   60,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, r
}

func TestPendingChargeGrowsInsideWindow(t *testing.T) {
	_, r := pendingFixture(t)
	s := env.State{0, 0} // light off: "on" is overdue after instance 50
	idle := env.NoOp(2)

	before := r.DisUtility(s, idle, 40) // not yet due
	at10 := r.DisUtility(s, idle, 60)   // 10 overdue
	at50 := r.DisUtility(s, idle, 100)  // 50 overdue
	if before != 0 {
		t.Errorf("charge before preferred time = %g", before)
	}
	if !(at50 > at10 && at10 > 0) {
		t.Errorf("pending charge should grow: %g then %g", at10, at50)
	}
	// exact: ω=0.9 · (50/60) / k=2
	if want := 0.9 * 50 / 60 / 2; math.Abs(at50-want) > 1e-12 {
		t.Errorf("at50 = %g, want %g", at50, want)
	}
}

func TestPendingChargeExpiresAfterWindow(t *testing.T) {
	_, r := pendingFixture(t)
	s := env.State{0, 0}
	idle := env.NoOp(2)
	if got := r.DisUtility(s, idle, 150); got != 0 {
		t.Errorf("charge outside the window = %g, want 0 (opportunity moot)", got)
	}
}

func TestTakingTheOverdueActionStopsFutureCharges(t *testing.T) {
	_, r := pendingFixture(t)
	off := env.State{0, 0}
	on := env.State{0, 1}
	turnOn := env.Action{device.NoAction, 1}

	// Acting at the overdue instant costs exactly the accrued delay —
	// the same as one more instant of idling (the formulas are symmetric
	// by design)...
	idleCost := r.DisUtility(off, env.NoOp(2), 80)
	actCost := r.DisUtility(off, turnOn, 80)
	if math.Abs(actCost-idleCost) > 1e-12 {
		t.Errorf("act %g vs idle %g, want equal at the same delay", actCost, idleCost)
	}
	// ...but once acted, the device is in its routine state and all
	// future instants are free, while continued idling keeps paying.
	if got := r.DisUtility(on, env.NoOp(2), 81); got != 0 {
		t.Errorf("post-action dis-utility = %g, want 0", got)
	}
	if got := r.DisUtility(off, env.NoOp(2), 81); got <= 0 {
		t.Errorf("continued idling should keep paying, got %g", got)
	}
}

func TestUnrelatedActionDoesNotDodgeTheCharge(t *testing.T) {
	e, _ := pendingFixture(t)
	// Make the heater (dev 0) routine too, with no observations — so it
	// contributes nothing — then verify acting on the heater does not
	// clear the light's pending charge.
	rec := env.NewRecorder(e, env.State{0, 0}, time.Time{}, 200*time.Minute, time.Minute)
	for i := 0; i < 200; i++ {
		a := env.NoOp(2)
		if i == 50 {
			a = env.Action{device.NoAction, 1}
		}
		if i == 60 {
			a = env.Action{1, device.NoAction} // heater on is also habitual
		}
		if err := rec.Step(a); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	pref := LearnPreferredTimes(e, []env.Episode{rec.Episode()})
	r, err := New(e, Config{
		Functionalities: []Functionality{{Name: "f", Weight: 1, F: constF(0)}},
		Preferred:       pref,
		Instances:       200,
		Routine:         map[int]bool{0: true, 1: true},
		RoutineWindow:   60,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := env.State{0, 0}
	heaterOn := env.Action{1, device.NoAction}
	idle := env.NoOp(2)
	// At t=80 both heat-on (t′=60) and light-on (t′=50) are overdue.
	// Acting on the heater clears only the heater's pending part.
	idleCost := r.DisUtility(s, idle, 80)
	heaterCost := r.DisUtility(s, heaterOn, 80)
	// The light's pending charge must survive in both.
	lightCharge := 0.9 * 30 / 60.0 / 2
	if idleCost < lightCharge || heaterCost < lightCharge {
		t.Errorf("light pending dodged: idle=%g heater=%g floor=%g", idleCost, heaterCost, lightCharge)
	}
}

func TestLatestBefore(t *testing.T) {
	e := testEnv(t)
	rec := env.NewRecorder(e, env.State{0, 0}, time.Time{}, 30*time.Minute, time.Minute)
	for i := 0; i < 30; i++ {
		a := env.NoOp(2)
		switch i {
		case 5:
			a = env.Action{device.NoAction, 1}
		case 10:
			a = env.Action{device.NoAction, 0}
		case 20:
			a = env.Action{device.NoAction, 1}
		}
		if err := rec.Step(a); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	p := LearnPreferredTimes(e, []env.Episode{rec.Episode()})
	tests := []struct {
		t, want int
		ok      bool
	}{
		{4, 0, false}, {5, 5, true}, {12, 5, true}, {20, 20, true}, {29, 20, true},
	}
	for _, tt := range tests {
		got, ok := p.LatestBefore(1, 1, tt.t)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("LatestBefore(light,on,%d) = %d,%v want %d,%v", tt.t, got, ok, tt.want, tt.ok)
		}
	}
}
