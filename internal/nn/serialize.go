package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the serialized form of a Network.
type modelJSON struct {
	Inputs int         `json:"inputs"`
	Layers []layerJSON `json:"layers"`
}

type layerJSON struct {
	In         int       `json:"in"`
	Out        int       `json:"out"`
	Activation string    `json:"activation"`
	W          []float64 `json:"w"`
	B          []float64 `json:"b"`
}

// Save writes the network (architecture + weights) as JSON.
func (n *Network) Save(w io.Writer) error {
	m := modelJSON{Inputs: n.inputs}
	for _, l := range n.layers {
		m.Layers = append(m.Layers, layerJSON{
			In: l.in, Out: l.out,
			Activation: l.act.Name(),
			W:          l.w,
			B:          l.b,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var m modelJSON
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if m.Inputs <= 0 || len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: load: malformed model (inputs=%d, layers=%d)", m.Inputs, len(m.Layers))
	}
	n := &Network{inputs: m.Inputs}
	in := m.Inputs
	for i, lj := range m.Layers {
		if lj.In != in {
			return nil, fmt.Errorf("nn: load: layer %d input width %d, want %d", i, lj.In, in)
		}
		if lj.Out <= 0 || len(lj.W) != lj.In*lj.Out || len(lj.B) != lj.Out {
			return nil, fmt.Errorf("nn: load: layer %d has inconsistent shapes", i)
		}
		act, err := ActivationByName(lj.Activation)
		if err != nil {
			return nil, err
		}
		l := &dense{
			in: lj.In, out: lj.Out, act: act,
			w:  append([]float64(nil), lj.W...),
			b:  append([]float64(nil), lj.B...),
			x:  make([]float64, lj.In),
			z:  make([]float64, lj.Out),
			a:  make([]float64, lj.Out),
			gw: make([]float64, lj.In*lj.Out),
			gb: make([]float64, lj.Out),
			dz: make([]float64, lj.Out),
		}
		l.setKeys(i)
		n.layers = append(n.layers, l)
		in = lj.Out
	}
	return n, nil
}
