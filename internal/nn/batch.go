package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// Worker pool for batched kernels, sized by GOMAXPROCS and started lazily
// on first use. Tasks are preallocated kernelCall structs dispatched over a
// channel to persistent goroutines — no closures, so a steady-state
// TrainBatch performs zero allocations even when sharded.
//
// Every kernel shards over write-disjoint ranges (batch rows for
// forward/input gradients, output rows for parameter gradients) and each
// element is summed in a fixed order inside one shard, so results are
// bit-identical regardless of worker count.

const (
	opForward = iota
	opInputGrad
	opParamGrad
)

// kernelCall is one shard of a batched kernel. The slices alias network
// weights and scratch-arena buffers owned by the submitting goroutine; the
// arena's WaitGroup sequences reuse.
type kernelCall struct {
	op                int
	w, bias, x, z, dz []float64
	dx, gw, gb        []float64
	in, out, rows     int
	lo, hi            int
	wg                *sync.WaitGroup
}

func runKernel(c *kernelCall) {
	switch c.op {
	case opForward:
		forwardRows(c.w, c.bias, c.x, c.z, c.in, c.out, c.lo, c.hi)
	case opInputGrad:
		inputGradRows(c.w, c.dz, c.dx, c.in, c.out, c.lo, c.hi)
	case opParamGrad:
		paramGradRows(c.x, c.dz, c.gw, c.gb, c.in, c.out, c.rows, c.lo, c.hi)
	}
}

var (
	poolOnce sync.Once
	poolSize int
	workCh   chan *kernelCall
)

// startPool launches the worker pool with n goroutines. The first caller
// wins; production code reaches it through ensurePool (n = GOMAXPROCS).
// Tests may call it directly to exercise the sharded path on small hosts.
func startPool(n int) {
	poolOnce.Do(func() {
		if n < 1 {
			n = 1
		}
		poolSize = n
		if n == 1 {
			return // single-threaded: every kernel runs inline
		}
		workCh = make(chan *kernelCall, n*2)
		for i := 0; i < n; i++ {
			go func() {
				for c := range workCh {
					runKernel(c)
					c.wg.Done()
				}
			}()
		}
	})
}

func ensurePool() {
	startPool(runtime.GOMAXPROCS(0))
}

// resetPoolForTest tears the pool down and restarts it with n workers so
// tests can exercise the sharded path on single-core hosts. Only safe when
// no batched call is in flight; never used outside tests.
func resetPoolForTest(n int) {
	if workCh != nil {
		close(workCh)
	}
	poolOnce = sync.Once{}
	poolSize = 0
	workCh = nil
	startPool(n)
}

// minParallelOps is the approximate scalar-op count below which sharding a
// kernel is not worth the handoff; package tests lower it to force the
// parallel path on small fixtures.
var minParallelOps = 1 << 15

// batchScratch is a per-network arena for batched passes: flat row-major
// activation/gradient planes per layer, sized once for the largest batch
// seen and reused for the network's lifetime. Buffers are owned by the
// network — like Forward's output, batched results are valid until the next
// batched call.
type batchScratch struct {
	rows int // allocated batch capacity

	x0       []float64   // rows×inputs packed input batch
	z, a     [][]float64 // per layer, rows×out
	dz       [][]float64 // per layer, rows×out
	dx       [][]float64 // per layer, rows×in (layer 0 unused)
	dOut     []float64   // rows×outputs, loss gradient
	outViews [][]float64 // row views into the last layer's a

	calls []kernelCall
	wg    sync.WaitGroup
}

// ensureScratch returns the network's batch arena, (re)grown to hold at
// least rows batch rows. Growth allocates; steady-state reuse does not.
func (n *Network) ensureScratch(rows int) *batchScratch {
	s := n.scratch
	if s == nil {
		s = &batchScratch{}
		n.scratch = s
	}
	if rows <= s.rows {
		return s
	}
	L := len(n.layers)
	s.x0 = make([]float64, rows*n.inputs)
	s.z = make([][]float64, L)
	s.a = make([][]float64, L)
	s.dz = make([][]float64, L)
	s.dx = make([][]float64, L)
	for i, l := range n.layers {
		s.z[i] = make([]float64, rows*l.out)
		s.a[i] = make([]float64, rows*l.out)
		s.dz[i] = make([]float64, rows*l.out)
		if i > 0 {
			s.dx[i] = make([]float64, rows*l.in)
		}
	}
	out := n.Outputs()
	s.dOut = make([]float64, rows*out)
	s.outViews = make([][]float64, rows)
	last := s.a[L-1]
	for b := 0; b < rows; b++ {
		s.outViews[b] = last[b*out : (b+1)*out : (b+1)*out]
	}
	ensurePool()
	if cap(s.calls) < poolSize {
		s.calls = make([]kernelCall, poolSize)
	}
	s.rows = rows
	return s
}

// runSharded fans call out across the worker pool in write-disjoint range
// shards [0, total), or runs it inline when the pool is single-threaded or
// the work is too small to pay the handoff. opsPerUnit approximates the
// scalar ops per range unit.
func (s *batchScratch) runSharded(call kernelCall, total, opsPerUnit int) {
	shards := poolSize
	if shards > total {
		shards = total
	}
	if shards <= 1 || total*opsPerUnit < minParallelOps {
		call.lo, call.hi = 0, total
		runKernel(&call)
		return
	}
	per := (total + shards - 1) / shards
	submitted := 0
	for lo := 0; lo < total; lo += per {
		hi := lo + per
		if hi > total {
			hi = total
		}
		c := &s.calls[submitted]
		*c = call
		c.lo, c.hi = lo, hi
		c.wg = &s.wg
		submitted++
		s.wg.Add(1)
		workCh <- c
	}
	s.wg.Wait()
}

// forwardBatched runs the forward pass over the first rows rows of the
// packed arena input, filling each layer's z/a planes.
func (n *Network) forwardBatched(s *batchScratch, rows int) {
	x := s.x0
	for li, l := range n.layers {
		z, a := s.z[li], s.a[li]
		s.runSharded(kernelCall{
			op: opForward, w: l.w, bias: l.b, x: x, z: z,
			in: l.in, out: l.out,
		}, rows, l.in*l.out)
		for b := 0; b < rows; b++ {
			l.act.Apply(z[b*l.out:(b+1)*l.out], a[b*l.out:(b+1)*l.out])
		}
		x = a
	}
}

// ForwardBatch runs one forward pass over a whole batch of input rows and
// returns one output row per input. Like Forward, the returned rows are
// views into network-owned scratch, overwritten by the next batched call;
// copy them to keep them. The receiver is not safe for concurrent use.
func (n *Network) ForwardBatch(X [][]float64) ([][]float64, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("nn: empty input batch")
	}
	for b, x := range X {
		if len(x) != n.inputs {
			return nil, fmt.Errorf("nn: batch row %d width %d, want %d", b, len(x), n.inputs)
		}
	}
	rows := len(X)
	s := n.ensureScratch(rows)
	for b, x := range X {
		copy(s.x0[b*n.inputs:(b+1)*n.inputs], x)
	}
	n.forwardBatched(s, rows)
	return s.outViews[:rows], nil
}

// trainBatched is the batched engine behind TrainBatch: one packed forward
// pass, per-row loss/gradient, and a layer-by-layer batched backward pass
// through the scratch arena. Gradient accumulation order matches the
// per-sample path element for element, so the two are bit-identical.
func (n *Network) trainBatched(batch []Sample, loss Loss, opt Optimizer) (float64, error) {
	rows := len(batch)
	out := n.Outputs()
	for _, sm := range batch {
		if len(sm.X) != n.inputs || len(sm.Y) != out {
			return 0, fmt.Errorf("nn: sample arity mismatch: x=%d y=%d want %d/%d",
				len(sm.X), len(sm.Y), n.inputs, out)
		}
	}
	s := n.ensureScratch(rows)
	for b, sm := range batch {
		copy(s.x0[b*n.inputs:(b+1)*n.inputs], sm.X)
	}
	for _, l := range n.layers {
		l.zeroGrads()
	}

	n.forwardBatched(s, rows)

	L := len(n.layers)
	var total float64
	last := s.a[L-1]
	for b, sm := range batch {
		pred := last[b*out : (b+1)*out]
		total += loss.Loss(pred, sm.Y)
		loss.Grad(pred, sm.Y, s.dOut[b*out:(b+1)*out])
	}

	dA := s.dOut
	for li := L - 1; li >= 0; li-- {
		l := n.layers[li]
		z, a, dz := s.z[li], s.a[li], s.dz[li]
		for b := 0; b < rows; b++ {
			zr, ar, dzr := z[b*l.out:(b+1)*l.out], a[b*l.out:(b+1)*l.out], dz[b*l.out:(b+1)*l.out]
			l.act.Derivative(zr, ar, dzr)
			dar := dA[b*l.out : (b+1)*l.out]
			for o := range dzr {
				dzr[o] *= dar[o]
			}
		}
		x := s.x0
		if li > 0 {
			x = s.a[li-1]
		}
		s.runSharded(kernelCall{
			op: opParamGrad, x: x, dz: dz, gw: l.gw, gb: l.gb,
			in: l.in, out: l.out, rows: rows,
		}, l.out, rows*l.in)
		if li > 0 {
			s.runSharded(kernelCall{
				op: opInputGrad, w: l.w, dz: dz, dx: s.dx[li],
				in: l.in, out: l.out,
			}, rows, l.in*l.out)
			dA = s.dx[li]
		}
	}

	scale := 1 / float64(rows)
	if mean := total * scale; isNonFinite(mean) {
		return mean, &DivergenceError{Loss: mean}
	}
	for _, l := range n.layers {
		l.scaleGrads(scale)
		opt.Step(l.wKey, l.w, l.gw)
		opt.Step(l.bKey, l.b, l.gb)
	}
	return total * scale, nil
}
