// Package nn is a from-scratch feed-forward neural-network substrate for
// the Jarvis reproduction. It provides exactly what the paper's prototype
// takes from TensorFlow and a generic MLP: dense layers, element-wise
// activations, MSE/BCE/Huber losses, SGD/Momentum/Adam optimizers,
// mini-batch backpropagation training, and JSON model (de)serialization.
//
// The paper distinguishes an "ANN" (single hidden layer, trained by
// back-propagation — the SPL's benign-anomaly filter) from a "DNN" (multiple
// hidden layers, trained inside the RL loop — the Q-function approximator).
// Both are instances of Network.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
)

// LayerSpec describes one dense layer.
type LayerSpec struct {
	// Units is the number of neurons in the layer.
	Units int
	// Act is the layer's activation (defaults to Sigmoid when nil).
	Act Activation
}

// Config describes a feed-forward network: the input width followed by one
// or more dense layers.
type Config struct {
	// Inputs is the width of the input vector.
	Inputs int
	// Layers lists the dense layers, hidden layers first, output layer
	// last.
	Layers []LayerSpec
}

// dense is one fully connected layer: z = W·x + b, a = act(z).
// W is row-major, out×in.
type dense struct {
	in, out int
	w, b    []float64
	act     Activation

	// forward caches (single-sample; training accumulates over a batch)
	x, z, a []float64
	// gradient accumulators
	gw, gb []float64
	// scratch
	dz []float64

	// wKey/bKey are the optimizer state keys for this layer's parameters,
	// precomputed so the training hot path never formats strings.
	wKey, bKey string
}

// setKeys assigns the layer's optimizer state keys from its index. Every
// construction path (New, Clone, Load) must call it.
func (l *dense) setKeys(i int) {
	key := strconv.Itoa(i)
	l.wKey, l.bKey = key+".w", key+".b"
}

func newDense(in, out int, act Activation, rng *rand.Rand) *dense {
	l := &dense{
		in: in, out: out, act: act,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		x:  make([]float64, in),
		z:  make([]float64, out),
		a:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		dz: make([]float64, out),
	}
	// Xavier/Glorot uniform initialization.
	limit := math.Sqrt(6 / float64(in+out))
	for i := range l.w {
		l.w[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

func (l *dense) forward(x []float64) []float64 {
	copy(l.x, x)
	for o := 0; o < l.out; o++ {
		sum := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, xi := range x {
			sum += row[i] * xi
		}
		l.z[o] = sum
	}
	l.act.Apply(l.z, l.a)
	return l.a
}

// backward consumes dL/da and accumulates weight gradients; it returns
// dL/dx for the previous layer.
func (l *dense) backward(dA []float64) []float64 {
	l.act.Derivative(l.z, l.a, l.dz)
	for o := range l.dz {
		l.dz[o] *= dA[o]
	}
	dx := make([]float64, l.in)
	for o := 0; o < l.out; o++ {
		d := l.dz[o]
		row := l.w[o*l.in : (o+1)*l.in]
		grow := l.gw[o*l.in : (o+1)*l.in]
		for i := 0; i < l.in; i++ {
			grow[i] += d * l.x[i]
			dx[i] += row[i] * d
		}
		l.gb[o] += d
	}
	return dx
}

func (l *dense) zeroGrads() {
	for i := range l.gw {
		l.gw[i] = 0
	}
	for i := range l.gb {
		l.gb[i] = 0
	}
}

func (l *dense) scaleGrads(s float64) {
	for i := range l.gw {
		l.gw[i] *= s
	}
	for i := range l.gb {
		l.gb[i] *= s
	}
}

// Network is a feed-forward neural network. It is NOT safe for concurrent
// use: forward/backward passes share internal buffers. Clone the network
// for concurrent readers.
type Network struct {
	inputs int
	layers []*dense

	// scratch is the lazily grown batch arena for ForwardBatch/TrainBatch
	// (see batch.go). Never copied by Clone.
	scratch *batchScratch
}

// New builds a network from cfg with Xavier-initialized weights drawn from
// rng (which must be non-nil for reproducibility).
func New(cfg Config, rng *rand.Rand) (*Network, error) {
	if cfg.Inputs <= 0 {
		return nil, fmt.Errorf("nn: invalid input width %d", cfg.Inputs)
	}
	if len(cfg.Layers) == 0 {
		return nil, errors.New("nn: network needs at least one layer")
	}
	if rng == nil {
		return nil, errors.New("nn: nil rng")
	}
	n := &Network{inputs: cfg.Inputs}
	in := cfg.Inputs
	for i, spec := range cfg.Layers {
		if spec.Units <= 0 {
			return nil, fmt.Errorf("nn: layer %d has %d units", i, spec.Units)
		}
		act := spec.Act
		if act == nil {
			act = Sigmoid
		}
		l := newDense(in, spec.Units, act, rng)
		l.setKeys(i)
		n.layers = append(n.layers, l)
		in = spec.Units
	}
	return n, nil
}

// MustNew is New for statically valid configurations; it panics on error.
func MustNew(cfg Config, rng *rand.Rand) *Network {
	n, err := New(cfg, rng)
	if err != nil {
		panic("nn: MustNew: " + err.Error())
	}
	return n
}

// Inputs returns the input width.
func (n *Network) Inputs() int { return n.inputs }

// Outputs returns the output width.
func (n *Network) Outputs() int { return n.layers[len(n.layers)-1].out }

// Forward runs one forward pass and returns the output activations. The
// returned slice is owned by the network and overwritten by the next call;
// copy it if you need to keep it.
func (n *Network) Forward(x []float64) []float64 {
	a := x
	for _, l := range n.layers {
		a = l.forward(a)
	}
	return a
}

// Predict is Forward returning a fresh copy of the outputs.
func (n *Network) Predict(x []float64) []float64 {
	out := n.Forward(x)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Sample is one training example.
type Sample struct {
	X, Y []float64
}

// DivergenceError reports that training produced a non-finite loss —
// exploding gradients or NaN targets. The update that observed it is NOT
// applied, so the network's weights stay finite; callers should reduce the
// learning rate, clip targets, or restore from a checkpoint.
type DivergenceError struct {
	// Loss is the offending (NaN or ±Inf) batch loss.
	Loss float64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("nn: training diverged: non-finite loss %v", e.Loss)
}

// IsDivergence reports whether err (or anything it wraps) is a
// DivergenceError.
func IsDivergence(err error) bool {
	var de *DivergenceError
	return errors.As(err, &de)
}

// isNonFinite reports whether v is NaN or ±Inf — the divergence-guard
// predicate shared by the training paths.
func isNonFinite(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// TrainBatch runs one mini-batch gradient step: a batched forward pass over
// the whole mini-batch, gradients accumulated per layer through the
// network's scratch arena, averaged, one optimizer step per parameter
// vector. It returns the mean loss over the batch (before the update).
//
// The batched engine sums every gradient element in the same order the
// per-sample path would (see matmul.go), so results are bit-identical to
// sample-at-a-time training. On a non-finite batch loss the optimizer step
// is skipped — gradients are poisoned too — and a typed *DivergenceError
// surfaces so the caller can recover; the weights stay finite.
func (n *Network) TrainBatch(batch []Sample, loss Loss, opt Optimizer) (float64, error) {
	if len(batch) == 0 {
		return 0, errors.New("nn: empty batch")
	}
	return n.trainBatched(batch, loss, opt)
}

// Fit trains for epochs passes over data in mini-batches of size batchSize,
// shuffling with rng each epoch. It returns the mean loss of the final
// epoch.
func (n *Network) Fit(data []Sample, epochs, batchSize int, loss Loss, opt Optimizer, rng *rand.Rand) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("nn: no training data")
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	var epochLoss float64
	batch := make([]Sample, 0, batchSize)
	for e := 0; e < epochs; e++ {
		if rng != nil {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		epochLoss = 0
		batches := 0
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			for _, i := range idx[start:end] {
				batch = append(batch, data[i])
			}
			l, err := n.TrainBatch(batch, loss, opt)
			if err != nil {
				return 0, err
			}
			epochLoss += l
			batches++
		}
		epochLoss /= float64(batches)
	}
	return epochLoss, nil
}

// Clone returns a deep copy of the network (weights only; optimizer state
// lives in the optimizer). Useful for DQN target networks and concurrent
// readers.
func (n *Network) Clone() *Network {
	out := &Network{inputs: n.inputs}
	for i, l := range n.layers {
		nl := &dense{
			in: l.in, out: l.out, act: l.act,
			w:  append([]float64(nil), l.w...),
			b:  append([]float64(nil), l.b...),
			x:  make([]float64, l.in),
			z:  make([]float64, l.out),
			a:  make([]float64, l.out),
			gw: make([]float64, len(l.gw)),
			gb: make([]float64, len(l.gb)),
			dz: make([]float64, l.out),
		}
		nl.setKeys(i)
		out.layers = append(out.layers, nl)
	}
	return out
}

// CopyWeightsFrom copies src's weights into n. The architectures must
// match.
func (n *Network) CopyWeightsFrom(src *Network) error {
	if len(n.layers) != len(src.layers) || n.inputs != src.inputs {
		return errors.New("nn: architecture mismatch")
	}
	for i, l := range n.layers {
		sl := src.layers[i]
		if l.in != sl.in || l.out != sl.out {
			return fmt.Errorf("nn: layer %d shape mismatch", i)
		}
		copy(l.w, sl.w)
		copy(l.b, sl.b)
	}
	return nil
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}
