package nn

import (
	"fmt"
	"math"
)

// Loss measures prediction error and supplies its gradient with respect to
// the prediction.
type Loss interface {
	// Name returns a stable identifier.
	Name() string
	// Loss returns the scalar loss for one sample.
	Loss(pred, target []float64) float64
	// Grad writes dLoss/dPred into out.
	Grad(pred, target, out []float64)
}

// Losses available by name.
var (
	// MSE is mean squared error: (1/n)·Σ(pred−target)².
	MSE Loss = mse{}
	// BCE is binary cross-entropy over sigmoid outputs, clamped for
	// numerical stability.
	BCE Loss = bce{}
	// Huber is the Huber loss with δ=1, the standard DQN choice: quadratic
	// near zero, linear in the tails, which keeps bootstrapped TD errors
	// from exploding gradients.
	Huber Loss = huber{delta: 1}
)

// LossByName resolves a serialized loss name.
func LossByName(name string) (Loss, error) {
	switch name {
	case "mse":
		return MSE, nil
	case "bce":
		return BCE, nil
	case "huber":
		return Huber, nil
	}
	return nil, fmt.Errorf("nn: unknown loss %q", name)
}

type mse struct{}

func (mse) Name() string { return "mse" }

func (mse) Loss(pred, target []float64) float64 {
	var sum float64
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
	}
	return sum / float64(len(pred))
}

func (mse) Grad(pred, target, out []float64) {
	n := float64(len(pred))
	for i := range pred {
		out[i] = 2 * (pred[i] - target[i]) / n
	}
}

type bce struct{}

func (bce) Name() string { return "bce" }

const bceEps = 1e-12

func (bce) Loss(pred, target []float64) float64 {
	var sum float64
	for i := range pred {
		p := math.Min(math.Max(pred[i], bceEps), 1-bceEps)
		sum += -(target[i]*math.Log(p) + (1-target[i])*math.Log(1-p))
	}
	return sum / float64(len(pred))
}

func (bce) Grad(pred, target, out []float64) {
	n := float64(len(pred))
	for i := range pred {
		p := math.Min(math.Max(pred[i], bceEps), 1-bceEps)
		out[i] = (p - target[i]) / (p * (1 - p)) / n
	}
}

type huber struct{ delta float64 }

func (huber) Name() string { return "huber" }

func (h huber) Loss(pred, target []float64) float64 {
	var sum float64
	for i := range pred {
		d := math.Abs(pred[i] - target[i])
		if d <= h.delta {
			sum += 0.5 * d * d
		} else {
			sum += h.delta * (d - 0.5*h.delta)
		}
	}
	return sum / float64(len(pred))
}

func (h huber) Grad(pred, target, out []float64) {
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		switch {
		case d > h.delta:
			out[i] = h.delta / n
		case d < -h.delta:
			out[i] = -h.delta / n
		default:
			out[i] = d / n
		}
	}
}
