package nn

import "math"

// Optimizer applies a gradient step to one parameter vector. Stateful
// optimizers (momentum, Adam) key their state by the caller-supplied
// parameter identifier, so the same optimizer instance can drive a whole
// network.
type Optimizer interface {
	// Step updates params in place given grads. key identifies the
	// parameter vector across calls.
	Step(key string, params, grads []float64)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	// LR is the learning rate.
	LR float64
}

var _ Optimizer = (*SGD)(nil)

// Step implements Optimizer.
func (o *SGD) Step(_ string, params, grads []float64) {
	for i := range params {
		params[i] -= o.LR * grads[i]
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	// LR is the learning rate and Mu the momentum coefficient
	// (typically 0.9).
	LR, Mu float64

	vel map[string][]float64
}

var _ Optimizer = (*Momentum)(nil)

// Step implements Optimizer.
func (o *Momentum) Step(key string, params, grads []float64) {
	if o.vel == nil {
		o.vel = make(map[string][]float64)
	}
	v := o.vel[key]
	if len(v) != len(params) {
		v = make([]float64, len(params))
		o.vel[key] = v
	}
	for i := range params {
		v[i] = o.Mu*v[i] - o.LR*grads[i]
		params[i] += v[i]
	}
}

// Adam is the Adam first-order gradient optimizer (Kingma & Ba, 2015) — the
// "first-order gradient-based optimization" the paper's prototype uses via
// TensorFlow (Section V-A6, learning rate 0.001).
type Adam struct {
	// LR is the learning rate; Beta1/Beta2 the moment decay rates; Eps the
	// numerical-stability constant. Zero values default to the canonical
	// 0.001 / 0.9 / 0.999 / 1e-8.
	LR, Beta1, Beta2, Eps float64

	m, v map[string][]float64
	t    map[string]int
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with the canonical hyper-parameters and
// the given learning rate (0 defaults to 0.001).
func NewAdam(lr float64) *Adam {
	if lr == 0 {
		lr = 0.001
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(key string, params, grads []float64) {
	if o.LR == 0 {
		o.LR = 0.001
	}
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	if o.m == nil {
		o.m = make(map[string][]float64)
		o.v = make(map[string][]float64)
		o.t = make(map[string]int)
	}
	m, v := o.m[key], o.v[key]
	if len(m) != len(params) {
		m = make([]float64, len(params))
		v = make([]float64, len(params))
		o.m[key], o.v[key] = m, v
		o.t[key] = 0
	}
	o.t[key]++
	t := float64(o.t[key])
	c1 := 1 - math.Pow(o.Beta1, t)
	c2 := 1 - math.Pow(o.Beta2, t)
	for i := range params {
		g := grads[i]
		m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
		v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
		mHat := m[i] / c1
		vHat := v[i] / c2
		params[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
	}
}
