package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainPerSampleReference is the original sample-at-a-time TrainBatch,
// preserved verbatim as the golden reference the batched engine must match.
func trainPerSampleReference(n *Network, batch []Sample, loss Loss, opt Optimizer) (float64, error) {
	for _, l := range n.layers {
		l.zeroGrads()
	}
	var total float64
	dOut := make([]float64, n.Outputs())
	for _, s := range batch {
		pred := n.Forward(s.X)
		total += loss.Loss(pred, s.Y)
		loss.Grad(pred, s.Y, dOut)
		d := dOut
		for i := len(n.layers) - 1; i >= 0; i-- {
			d = n.layers[i].backward(d)
		}
	}
	scale := 1 / float64(len(batch))
	if mean := total * scale; isNonFinite(mean) {
		return mean, &DivergenceError{Loss: mean}
	}
	for _, l := range n.layers {
		l.scaleGrads(scale)
		opt.Step(l.wKey, l.w, l.gw)
		opt.Step(l.bKey, l.b, l.gb)
	}
	return total * scale, nil
}

func randomBatch(rng *rand.Rand, n, in, out int) []Sample {
	batch := make([]Sample, n)
	for i := range batch {
		x := make([]float64, in)
		y := make([]float64, out)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		for j := range y {
			y[j] = rng.Float64()
		}
		batch[i] = Sample{X: x, Y: y}
	}
	return batch
}

// TestBatchedTrainingParityGolden trains two identically seeded networks —
// one with the per-sample reference, one with the batched TrainBatch — for
// many steps and demands the weights and outputs stay within 1e-9 (they are
// in fact bit-identical: the batched kernels preserve summation order).
func TestBatchedTrainingParityGolden(t *testing.T) {
	cfg := Config{Inputs: 7, Layers: []LayerSpec{
		{Units: 16, Act: ReLU},
		{Units: 9, Act: Tanh},
		{Units: 4, Act: Linear},
	}}
	for _, tc := range []struct {
		name string
		loss Loss
		opt  func() Optimizer
	}{
		{"mse+sgd", MSE, func() Optimizer { return &SGD{LR: 0.05} }},
		{"huber+adam", Huber, func() Optimizer { return NewAdam(0.01) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := MustNew(cfg, rand.New(rand.NewSource(42)))
			bat := MustNew(cfg, rand.New(rand.NewSource(42)))
			optRef, optBat := tc.opt(), tc.opt()

			dataRng := rand.New(rand.NewSource(99))
			for step := 0; step < 25; step++ {
				batch := randomBatch(dataRng, 1+step%13, 7, 4)
				lRef, errRef := trainPerSampleReference(ref, batch, tc.loss, optRef)
				lBat, errBat := bat.TrainBatch(batch, tc.loss, optBat)
				if errRef != nil || errBat != nil {
					t.Fatalf("step %d: unexpected errors %v / %v", step, errRef, errBat)
				}
				if math.Abs(lRef-lBat) > 1e-9 {
					t.Fatalf("step %d: loss diverged: per-sample %.15g batched %.15g", step, lRef, lBat)
				}
			}
			for li := range ref.layers {
				for wi := range ref.layers[li].w {
					if d := math.Abs(ref.layers[li].w[wi] - bat.layers[li].w[wi]); d > 1e-9 {
						t.Fatalf("layer %d w[%d]: per-sample %.15g batched %.15g (|Δ|=%g)",
							li, wi, ref.layers[li].w[wi], bat.layers[li].w[wi], d)
					}
				}
				for bi := range ref.layers[li].b {
					if d := math.Abs(ref.layers[li].b[bi] - bat.layers[li].b[bi]); d > 1e-9 {
						t.Fatalf("layer %d b[%d] diverged by %g", li, bi, d)
					}
				}
			}
			x := []float64{0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7}
			pr, pb := ref.Predict(x), bat.Predict(x)
			for i := range pr {
				if math.Abs(pr[i]-pb[i]) > 1e-9 {
					t.Fatalf("prediction[%d] diverged: %.15g vs %.15g", i, pr[i], pb[i])
				}
			}
		})
	}
}

// TestForwardBatchMatchesForward checks each batched output row equals the
// per-sample forward pass exactly.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := MustNew(Config{Inputs: 5, Layers: []LayerSpec{
		{Units: 11, Act: Sigmoid},
		{Units: 3, Act: Linear},
	}}, rng)
	X := make([][]float64, 17)
	for i := range X {
		X[i] = make([]float64, 5)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
	}
	got, err := n.ForwardBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	// Copy before the per-sample passes reuse the arena? They don't — but
	// Forward uses separate per-layer buffers, so compare directly.
	for i, x := range X {
		want := n.Predict(x)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("row %d output %d: batched %.17g per-sample %.17g", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestForwardBatchArityError(t *testing.T) {
	n := MustNew(Config{Inputs: 3, Layers: []LayerSpec{{Units: 2}}}, rand.New(rand.NewSource(1)))
	if _, err := n.ForwardBatch(nil); err == nil {
		t.Error("empty batch must error")
	}
	if _, err := n.ForwardBatch([][]float64{{1, 2}}); err == nil {
		t.Error("short row must error")
	}
	if _, err := n.TrainBatch([]Sample{{X: []float64{1}, Y: []float64{1, 2}}}, MSE, &SGD{LR: 0.1}); err == nil {
		t.Error("mismatched sample must error")
	}
}

// TestTrainBatchZeroAllocSteadyState: after the first call grows the arena
// and warms optimizer state, TrainBatch must not allocate.
func TestTrainBatchZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := MustNew(Config{Inputs: 12, Layers: []LayerSpec{
		{Units: 24, Act: ReLU},
		{Units: 6, Act: Linear},
	}}, rng)
	batch := randomBatch(rng, 32, 12, 6)
	opt := NewAdam(0.001)
	if _, err := n.TrainBatch(batch, Huber, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := n.TrainBatch(batch, Huber, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("TrainBatch steady state allocates %.1f objects per call, want 0", allocs)
	}
}

// TestForwardBatchZeroAllocSteadyState: batched inference through the warm
// arena must not allocate.
func TestForwardBatchZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := MustNew(Config{Inputs: 8, Layers: []LayerSpec{
		{Units: 16, Act: Sigmoid},
		{Units: 4, Act: Linear},
	}}, rng)
	X := make([][]float64, 64)
	for i := range X {
		X[i] = make([]float64, 8)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
	}
	if _, err := n.ForwardBatch(X); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := n.ForwardBatch(X); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ForwardBatch steady state allocates %.1f objects per call, want 0", allocs)
	}
}

// TestShardedKernelsMatchInline forces the worker pool on (4 workers, zero
// sharding threshold) and verifies batched training still matches the
// per-sample reference bit for bit — the shard decomposition must not
// change any summation order.
func TestShardedKernelsMatchInline(t *testing.T) {
	resetPoolForTest(4)
	oldMin := minParallelOps
	minParallelOps = 0
	defer func() {
		minParallelOps = oldMin
		resetPoolForTest(1)
	}()

	cfg := Config{Inputs: 10, Layers: []LayerSpec{
		{Units: 32, Act: ReLU},
		{Units: 16, Act: Tanh},
		{Units: 5, Act: Linear},
	}}
	ref := MustNew(cfg, rand.New(rand.NewSource(11)))
	bat := MustNew(cfg, rand.New(rand.NewSource(11)))
	optRef, optBat := NewAdam(0.005), NewAdam(0.005)
	dataRng := rand.New(rand.NewSource(17))
	for step := 0; step < 10; step++ {
		batch := randomBatch(dataRng, 48, 10, 5)
		lRef, err1 := trainPerSampleReference(ref, batch, MSE, optRef)
		lBat, err2 := bat.TrainBatch(batch, MSE, optBat)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: %v / %v", step, err1, err2)
		}
		if lRef != lBat {
			t.Fatalf("step %d: sharded loss %.17g != reference %.17g", step, lBat, lRef)
		}
	}
	for li := range ref.layers {
		for wi := range ref.layers[li].w {
			if ref.layers[li].w[wi] != bat.layers[li].w[wi] {
				t.Fatalf("layer %d w[%d]: sharded %.17g != reference %.17g",
					li, wi, bat.layers[li].w[wi], ref.layers[li].w[wi])
			}
		}
	}
}

// TestTrainBatchDivergenceGuardBatched: NaN targets must surface a
// DivergenceError and leave weights untouched, exactly like the per-sample
// path did.
func TestTrainBatchDivergenceGuardBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 2, Act: Linear}}}, rng)
	before := append([]float64(nil), n.layers[0].w...)
	_, err := n.TrainBatch([]Sample{{X: []float64{1, 1}, Y: []float64{math.NaN(), 0}}}, MSE, &SGD{LR: 0.1})
	if !IsDivergence(err) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	for i, w := range n.layers[0].w {
		if w != before[i] {
			t.Fatal("weights mutated by diverged update")
		}
	}
}
