package nn

import (
	"fmt"
	"math"
)

// Activation is an element-wise activation function together with its
// derivative. Implementations are stateless and safe for concurrent use.
type Activation interface {
	// Name returns a stable identifier used for (de)serialization.
	Name() string
	// Apply writes f(z) into out. len(out) == len(z).
	Apply(z, out []float64)
	// Derivative writes f'(z) into out, given both the pre-activation z
	// and the activation a = f(z) (whichever is cheaper to use).
	Derivative(z, a, out []float64)
}

// Activations available by name.
var (
	Sigmoid Activation = sigmoid{}
	ReLU    Activation = relu{}
	Tanh    Activation = tanh{}
	Linear  Activation = linear{}
)

// ActivationByName resolves a serialized activation name.
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "sigmoid":
		return Sigmoid, nil
	case "relu":
		return ReLU, nil
	case "tanh":
		return Tanh, nil
	case "linear":
		return Linear, nil
	}
	return nil, fmt.Errorf("nn: unknown activation %q", name)
}

type sigmoid struct{}

func (sigmoid) Name() string { return "sigmoid" }

func (sigmoid) Apply(z, out []float64) {
	for i, v := range z {
		out[i] = 1 / (1 + math.Exp(-v))
	}
}

func (sigmoid) Derivative(_, a, out []float64) {
	for i, v := range a {
		out[i] = v * (1 - v)
	}
}

type relu struct{}

func (relu) Name() string { return "relu" }

func (relu) Apply(z, out []float64) {
	for i, v := range z {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

func (relu) Derivative(z, _, out []float64) {
	for i, v := range z {
		if v > 0 {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

type tanh struct{}

func (tanh) Name() string { return "tanh" }

func (tanh) Apply(z, out []float64) {
	for i, v := range z {
		out[i] = math.Tanh(v)
	}
}

func (tanh) Derivative(_, a, out []float64) {
	for i, v := range a {
		out[i] = 1 - v*v
	}
}

type linear struct{}

func (linear) Name() string { return "linear" }

func (linear) Apply(z, out []float64) { copy(out, z) }

func (linear) Derivative(_, _, out []float64) {
	for i := range out {
		out[i] = 1
	}
}
