package nn

// Order-preserving batched kernels.
//
// Every kernel here sums in exactly the order the per-sample path does —
// ascending input index k for forward dots, ascending output index o for
// input gradients, ascending batch row b for parameter gradients — so the
// batched training path is bit-identical to per-sample training, not just
// "close". Optimizations are restricted to traversal order of *independent*
// elements (row/column blocking, multi-output unrolling that shares input
// loads), never to reassociating a single element's sum.

// forwardRows computes z[b] = W·x[b] + bias for batch rows b in [lo, hi).
// x is rows×in flat, z is rows×out flat, w is out×in row-major. Outputs are
// computed four at a time so each load of x[b][k] feeds four dot products;
// each dot still runs k ascending.
func forwardRows(w, bias, x, z []float64, in, out, lo, hi int) {
	for b := lo; b < hi; b++ {
		xrow := x[b*in : (b+1)*in]
		zrow := z[b*out : (b+1)*out]
		o := 0
		for ; o+3 < out; o += 4 {
			r0 := w[(o+0)*in : (o+1)*in]
			r1 := w[(o+1)*in : (o+2)*in]
			r2 := w[(o+2)*in : (o+3)*in]
			r3 := w[(o+3)*in : (o+4)*in]
			s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			for k, xv := range xrow {
				s0 += r0[k] * xv
				s1 += r1[k] * xv
				s2 += r2[k] * xv
				s3 += r3[k] * xv
			}
			zrow[o], zrow[o+1], zrow[o+2], zrow[o+3] = s0, s1, s2, s3
		}
		for ; o < out; o++ {
			row := w[o*in : (o+1)*in]
			sum := bias[o]
			for k, xv := range xrow {
				sum += row[k] * xv
			}
			zrow[o] = sum
		}
	}
}

// inputGradRows computes dx[b] = Wᵀ·dz[b] for batch rows b in [lo, hi):
// dx[b][i] = Σ_o w[o][i]·dz[b][o], o ascending, exactly as the per-sample
// backward accumulates it.
func inputGradRows(w, dz, dx []float64, in, out, lo, hi int) {
	for b := lo; b < hi; b++ {
		dzrow := dz[b*out : (b+1)*out]
		dxrow := dx[b*in : (b+1)*in]
		for i := range dxrow {
			dxrow[i] = 0
		}
		// Four outputs per pass: dxrow is loaded/stored once for four
		// o-terms, each element still accumulated o ascending through one
		// sequential chain.
		o := 0
		for ; o+3 < out; o += 4 {
			d0, d1, d2, d3 := dzrow[o], dzrow[o+1], dzrow[o+2], dzrow[o+3]
			r0 := w[(o+0)*in : (o+1)*in]
			r1 := w[(o+1)*in : (o+2)*in]
			r2 := w[(o+2)*in : (o+3)*in]
			r3 := w[(o+3)*in : (o+4)*in]
			for i := range dxrow {
				v := dxrow[i]
				v += r0[i] * d0
				v += r1[i] * d1
				v += r2[i] * d2
				v += r3[i] * d3
				dxrow[i] = v
			}
		}
		for ; o < out; o++ {
			d := dzrow[o]
			row := w[o*in : (o+1)*in]
			for i, wv := range row {
				dxrow[i] += wv * d
			}
		}
	}
}

// paramGradRows accumulates gw[o] += Σ_b dz[b][o]·x[b] and
// gb[o] += Σ_b dz[b][o] for output rows o in [lo, hi), b ascending over all
// rows rows — the same per-element order as per-sample accumulation.
// Sharding over o keeps shards write-disjoint, so the result is independent
// of how many workers run.
func paramGradRows(x, dz, gw, gb []float64, in, out, rows, lo, hi int) {
	for o := lo; o < hi; o++ {
		grow := gw[o*in : (o+1)*in]
		gbo := gb[o]
		// Four batch rows per pass: grow is loaded/stored once for four
		// b-terms, each element still accumulated b ascending through one
		// sequential chain.
		b := 0
		for ; b+3 < rows; b += 4 {
			d0 := dz[(b+0)*out+o]
			d1 := dz[(b+1)*out+o]
			d2 := dz[(b+2)*out+o]
			d3 := dz[(b+3)*out+o]
			x0 := x[(b+0)*in : (b+1)*in]
			x1 := x[(b+1)*in : (b+2)*in]
			x2 := x[(b+2)*in : (b+3)*in]
			x3 := x[(b+3)*in : (b+4)*in]
			for i := range grow {
				g := grow[i]
				g += d0 * x0[i]
				g += d1 * x1[i]
				g += d2 * x2[i]
				g += d3 * x3[i]
				grow[i] = g
			}
			gbo += d0
			gbo += d1
			gbo += d2
			gbo += d3
		}
		for ; b < rows; b++ {
			d := dz[b*out+o]
			xrow := x[b*in : (b+1)*in]
			for i, xv := range xrow {
				grow[i] += d * xv
			}
			gbo += d
		}
		gb[o] = gbo
	}
}
