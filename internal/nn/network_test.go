package nn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  Config
		rng  *rand.Rand
	}{
		{"zero inputs", Config{Inputs: 0, Layers: []LayerSpec{{Units: 1}}}, rng},
		{"no layers", Config{Inputs: 2}, rng},
		{"zero units", Config{Inputs: 2, Layers: []LayerSpec{{Units: 0}}}, rng},
		{"nil rng", Config{Inputs: 2, Layers: []LayerSpec{{Units: 1}}}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, tt.rng); err == nil {
				t.Error("New succeeded, want error")
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{}, nil)
}

func TestShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustNew(Config{Inputs: 4, Layers: []LayerSpec{
		{Units: 8, Act: ReLU},
		{Units: 3, Act: Linear},
	}}, rng)
	if n.Inputs() != 4 || n.Outputs() != 3 {
		t.Fatalf("Inputs/Outputs = %d/%d", n.Inputs(), n.Outputs())
	}
	if got, want := n.NumParams(), 4*8+8+8*3+3; got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	out := n.Forward([]float64{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Fatalf("Forward output width = %d", len(out))
	}
}

func TestPredictCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 1, Act: Linear}}}, rng)
	p1 := n.Predict([]float64{1, 2})
	p2 := n.Forward([]float64{-5, 7})
	if &p1[0] == &p2[0] {
		t.Error("Predict must return an independent copy")
	}
}

// TestGradientCheck verifies analytic gradients against central finite
// differences for each activation and loss combination.
func TestGradientCheck(t *testing.T) {
	combos := []struct {
		name string
		act  Activation
		loss Loss
	}{
		{"sigmoid+mse", Sigmoid, MSE},
		{"relu+mse", ReLU, MSE},
		{"tanh+mse", Tanh, MSE},
		{"linear+mse", Linear, MSE},
		{"sigmoid+bce", Sigmoid, BCE},
		{"linear+huber", Linear, Huber},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			n := MustNew(Config{Inputs: 3, Layers: []LayerSpec{
				{Units: 5, Act: c.act},
				{Units: 2, Act: c.act},
			}}, rng)
			x := []float64{0.3, -0.8, 0.5}
			y := []float64{0.2, 0.9}

			// analytic gradients
			for _, l := range n.layers {
				l.zeroGrads()
			}
			pred := n.Forward(x)
			dOut := make([]float64, len(pred))
			c.loss.Grad(pred, y, dOut)
			d := dOut
			for i := len(n.layers) - 1; i >= 0; i-- {
				d = n.layers[i].backward(d)
			}

			// numeric check on a sample of weights from each layer
			const eps = 1e-6
			lossAt := func() float64 { return c.loss.Loss(n.Forward(x), y) }
			for li, l := range n.layers {
				for _, wi := range []int{0, len(l.w) / 2, len(l.w) - 1} {
					orig := l.w[wi]
					l.w[wi] = orig + eps
					up := lossAt()
					l.w[wi] = orig - eps
					down := lossAt()
					l.w[wi] = orig
					numeric := (up - down) / (2 * eps)
					if diff := math.Abs(numeric - l.gw[wi]); diff > 1e-5 {
						t.Errorf("layer %d w[%d]: numeric %g analytic %g", li, wi, numeric, l.gw[wi])
					}
				}
				bi := len(l.b) - 1
				orig := l.b[bi]
				l.b[bi] = orig + eps
				up := lossAt()
				l.b[bi] = orig - eps
				down := lossAt()
				l.b[bi] = orig
				numeric := (up - down) / (2 * eps)
				if diff := math.Abs(numeric - l.gb[bi]); diff > 1e-5 {
					t.Errorf("layer %d b[%d]: numeric %g analytic %g", li, bi, numeric, l.gb[bi])
				}
			}
		})
	}
}

// TestLearnXOR: a single hidden layer trained with backprop must solve XOR —
// this is the ANN configuration the SPL filter uses.
func TestLearnXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{
		{Units: 8, Act: Tanh},
		{Units: 1, Act: Sigmoid},
	}}, rng)
	data := []Sample{
		{X: []float64{0, 0}, Y: []float64{0}},
		{X: []float64{0, 1}, Y: []float64{1}},
		{X: []float64{1, 0}, Y: []float64{1}},
		{X: []float64{1, 1}, Y: []float64{0}},
	}
	loss, err := n.Fit(data, 2000, 4, BCE, NewAdam(0.01), rng)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if loss > 0.1 {
		t.Fatalf("final loss %g, want < 0.1", loss)
	}
	for _, s := range data {
		p := n.Forward(s.X)[0]
		if math.Abs(p-s.Y[0]) > 0.3 {
			t.Errorf("xor(%v) = %g, want %g", s.X, p, s.Y[0])
		}
	}
}

// TestLearnRegression: a DNN with two hidden layers (the paper's optimizer
// configuration) fits a smooth function.
func TestLearnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := MustNew(Config{Inputs: 1, Layers: []LayerSpec{
		{Units: 16, Act: ReLU},
		{Units: 16, Act: ReLU},
		{Units: 1, Act: Linear},
	}}, rng)
	var data []Sample
	for i := 0; i < 128; i++ {
		x := rng.Float64()*2 - 1
		data = append(data, Sample{X: []float64{x}, Y: []float64{x * x}})
	}
	loss, err := n.Fit(data, 300, 16, MSE, NewAdam(0.005), rng)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if loss > 0.01 {
		t.Fatalf("final loss %g, want < 0.01", loss)
	}
}

func TestTrainBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 1}}}, rng)
	if _, err := n.TrainBatch(nil, MSE, &SGD{LR: 0.1}); err == nil {
		t.Error("empty batch should error")
	}
	bad := []Sample{{X: []float64{1}, Y: []float64{1}}}
	if _, err := n.TrainBatch(bad, MSE, &SGD{LR: 0.1}); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := n.Fit(nil, 1, 4, MSE, &SGD{LR: 0.1}, rng); err == nil {
		t.Error("Fit with no data should error")
	}
}

func TestOptimizers(t *testing.T) {
	// Each optimizer must reduce a simple quadratic loss.
	opts := map[string]Optimizer{
		"sgd":      &SGD{LR: 0.1},
		"momentum": &Momentum{LR: 0.05, Mu: 0.9},
		"adam":     NewAdam(0.05),
	}
	for name, opt := range opts {
		t.Run(name, func(t *testing.T) {
			params := []float64{5, -3}
			for i := 0; i < 200; i++ {
				grads := []float64{2 * params[0], 2 * params[1]}
				opt.Step("p", params, grads)
			}
			if math.Abs(params[0]) > 0.1 || math.Abs(params[1]) > 0.1 {
				t.Errorf("%s did not converge: %v", name, params)
			}
		})
	}
}

func TestAdamZeroValueDefaults(t *testing.T) {
	// The zero value picks the canonical 0.001/0.9/0.999/1e-8 defaults and
	// still makes monotonic-ish progress on a quadratic.
	opt := &Adam{}
	params := []float64{5}
	start := params[0]
	for i := 0; i < 500; i++ {
		opt.Step("p", params, []float64{2 * params[0]})
	}
	if !(params[0] < start && params[0] > 0) {
		t.Errorf("param = %g, want progress toward 0 from %g", params[0], start)
	}
	if opt.LR != 0.001 || opt.Beta1 != 0.9 || opt.Beta2 != 0.999 || opt.Eps != 1e-8 {
		t.Errorf("defaults not applied: %+v", opt)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := MustNew(Config{Inputs: 3, Layers: []LayerSpec{
		{Units: 4, Act: ReLU},
		{Units: 2, Act: Sigmoid},
	}}, rng)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	x := []float64{0.1, -0.2, 0.7}
	want := n.Predict(x)
	got := loaded.Predict(x)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("output %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"inputs":0,"layers":[]}`,
		`{"inputs":2,"layers":[{"in":3,"out":1,"activation":"relu","w":[1,1,1],"b":[0]}]}`, // in mismatch
		`{"inputs":2,"layers":[{"in":2,"out":1,"activation":"nope","w":[1,1],"b":[0]}]}`,   // bad act
		`{"inputs":2,"layers":[{"in":2,"out":1,"activation":"relu","w":[1],"b":[0]}]}`,     // bad w len
		`{"inputs":2,"layers":[{"in":2,"out":0,"activation":"relu","w":[],"b":[]}]}`,       // zero out
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: Load succeeded, want error", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 2, Act: Linear}}}, rng)
	c := n.Clone()
	x := []float64{1, 1}
	before := c.Predict(x)
	// Train the original; the clone must not move.
	_, err := n.TrainBatch([]Sample{{X: x, Y: []float64{0, 0}}}, MSE, &SGD{LR: 0.5})
	if err != nil {
		t.Fatalf("TrainBatch: %v", err)
	}
	after := c.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training the original changed the clone")
		}
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 2, Act: Linear}}}, rng)
	b := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 2, Act: Linear}}}, rng)
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatalf("CopyWeightsFrom: %v", err)
	}
	x := []float64{0.5, -0.5}
	pa, pb := a.Predict(x), b.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("weights not copied")
		}
	}
	c := MustNew(Config{Inputs: 3, Layers: []LayerSpec{{Units: 2}}}, rng)
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Error("architecture mismatch should error")
	}
	d := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 3}}}, rng)
	if err := d.CopyWeightsFrom(a); err == nil {
		t.Error("layer shape mismatch should error")
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"sigmoid", "relu", "tanh", "linear"} {
		a, err := ActivationByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ActivationByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ActivationByName("swish"); err == nil {
		t.Error("unknown activation should error")
	}
}

func TestLossByName(t *testing.T) {
	for _, name := range []string{"mse", "bce", "huber"} {
		l, err := LossByName(name)
		if err != nil || l.Name() != name {
			t.Errorf("LossByName(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := LossByName("hinge"); err == nil {
		t.Error("unknown loss should error")
	}
}

func TestActivationValues(t *testing.T) {
	z := []float64{-2, 0, 2}
	out := make([]float64, 3)

	Sigmoid.Apply(z, out)
	if math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %g", out[1])
	}
	ReLU.Apply(z, out)
	if out[0] != 0 || out[2] != 2 {
		t.Errorf("relu = %v", out)
	}
	Tanh.Apply(z, out)
	if math.Abs(out[1]) > 1e-12 || math.Abs(out[2]-math.Tanh(2)) > 1e-12 {
		t.Errorf("tanh = %v", out)
	}
	Linear.Apply(z, out)
	if out[0] != -2 || out[2] != 2 {
		t.Errorf("linear = %v", out)
	}
}

func TestHuberLossShape(t *testing.T) {
	pred := []float64{0, 0}
	// small error: quadratic; big error: linear
	small := Huber.Loss(pred, []float64{0.5, 0})
	big := Huber.Loss(pred, []float64{10, 0})
	if math.Abs(small-0.5*0.25/2) > 1e-12 {
		t.Errorf("huber small = %g", small)
	}
	if math.Abs(big-(10-0.5)/2) > 1e-12 {
		t.Errorf("huber big = %g", big)
	}
	grad := make([]float64, 2)
	Huber.Grad(pred, []float64{10, -10}, grad)
	if grad[0] != -0.5 || grad[1] != 0.5 {
		t.Errorf("huber grad = %v (clipped ±δ/n)", grad)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() []float64 {
		rng := rand.New(rand.NewSource(99))
		n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{
			{Units: 4, Act: Tanh}, {Units: 1, Act: Linear},
		}}, rng)
		data := []Sample{
			{X: []float64{0, 1}, Y: []float64{1}},
			{X: []float64{1, 0}, Y: []float64{-1}},
		}
		if _, err := n.Fit(data, 50, 2, MSE, NewAdam(0.01), rng); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		return n.Predict([]float64{0.5, 0.5})
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic under a fixed seed")
		}
	}
}

func TestLoadTruncatedNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := MustNew(Config{Inputs: 3, Layers: []LayerSpec{
		{Units: 4, Act: ReLU},
		{Units: 2, Act: Sigmoid},
	}}, rng)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full)-1; cut += 7 {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load of %d/%d bytes succeeded, want error", cut, len(full))
		}
	}
}

func TestTrainBatchDivergenceGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := MustNew(Config{Inputs: 2, Layers: []LayerSpec{{Units: 2, Act: Linear}}}, rng)
	x := []float64{1, 1}
	before := n.Predict(x)

	_, err := n.TrainBatch([]Sample{{X: x, Y: []float64{math.NaN(), 0}}}, MSE, &SGD{LR: 0.1})
	if err == nil {
		t.Fatal("TrainBatch accepted a NaN target")
	}
	if !IsDivergence(err) {
		t.Fatalf("err = %v, want DivergenceError", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) || !math.IsNaN(de.Loss) {
		t.Errorf("DivergenceError.Loss = %v, want NaN", de)
	}
	// The poisoned update must not have been applied.
	after := n.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("weights changed by a diverged batch")
		}
		if math.IsNaN(after[i]) || math.IsInf(after[i], 0) {
			t.Fatal("non-finite values reached the weights")
		}
	}

	// Inf targets are caught the same way.
	if _, err := n.TrainBatch([]Sample{{X: x, Y: []float64{math.Inf(1), 0}}}, MSE, &SGD{LR: 0.1}); !IsDivergence(err) {
		t.Errorf("Inf target: err = %v, want DivergenceError", err)
	}
}
