package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzLoad: arbitrary bytes must never panic the model loader, and any
// model that loads must produce finite outputs and survive a save/load
// round trip.
func FuzzLoad(f *testing.F) {
	f.Add(`{"inputs":2,"layers":[{"in":2,"out":1,"activation":"relu","w":[1,1],"b":[0]}]}`)
	f.Add(`{"inputs":1,"layers":[]}`)
	f.Add(`garbage`)
	f.Add(`{"inputs":2,"layers":[{"in":2,"out":1,"activation":"nope","w":[1,1],"b":[0]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		net, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		x := make([]float64, net.Inputs())
		for i := range x {
			x[i] = 0.5
		}
		out := net.Forward(x)
		if len(out) != net.Outputs() {
			t.Fatalf("output width %d, want %d", len(out), net.Outputs())
		}
		for _, v := range out {
			// Fuzzed weights may be NaN/Inf via JSON? encoding/json rejects
			// those literals, so finite weights must give finite outputs.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite output %v", v)
			}
		}
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("loaded model failed to save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("saved model failed to reload: %v", err)
		}
	})
}
