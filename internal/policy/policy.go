// Package policy implements the Security Policy Learner (SPL) of the
// Jarvis paper (Algorithm 1 and Section V-A3). During a learning phase the
// SPL observes the environment's naturally occurring trigger→action
// behavior, filters benign anomalies with an ANN-backed filter, counts each
// (state, action) pair, and whitelists the transitions whose instance count
// exceeds the environment threshold Thresh_env. The result is the safe
// state-transition table P_safe that constrains the RL agent's exploration.
package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// Filter decides whether an observed transition is a benign anomaly
// (device malfunction, human error) that must be removed from the training
// data before it is learned as "natural" behavior. The ANN of
// internal/anomaly implements it; a nil Filter keeps everything.
type Filter interface {
	BenignAnomaly(tr env.Transition) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(env.Transition) bool

// BenignAnomaly implements Filter.
func (f FilterFunc) BenignAnomaly(tr env.Transition) bool { return f(tr) }

var _ Filter = FilterFunc(nil)

// Table is the safe state-transition probability table P_safe. As in the
// paper, whitelisted transitions share a uniform distribution and all other
// transitions have probability zero, so the table is represented as a set
// of (S, S') composite-state key pairs. The zero value is an empty table.
type Table struct {
	safe map[uint64]map[uint64]bool
	// allowIdle treats S→S (the all-NoAction transition) as implicitly
	// safe. Idle intervals dominate real logs and are always "natural".
	allowIdle bool
	// manual holds manually specified always-safe device actions — the
	// paper's Section V-B1 adjustment for behavior that cannot be learned
	// from natural progression (fail-safes, emergency responses).
	manual map[manualKey]bool
}

type manualKey struct {
	dev int
	act device.ActionID
}

// NewTable returns an empty P_safe. allowIdle controls whether identity
// transitions are implicitly safe (the paper's learning episodes observe
// idle intervals constantly, so Jarvis enables it).
func NewTable(allowIdle bool) *Table {
	return &Table{safe: make(map[uint64]map[uint64]bool), allowIdle: allowIdle}
}

// Allow whitelists the transition from → to.
func (t *Table) Allow(from, to uint64) {
	m, ok := t.safe[from]
	if !ok {
		m = make(map[uint64]bool)
		t.safe[from] = m
	}
	m[to] = true
}

// Safe reports whether P_safe[from, to] is non-zero.
func (t *Table) Safe(from, to uint64) bool {
	if t.allowIdle && from == to {
		return true
	}
	return t.safe[from][to]
}

// SafeSuccessors returns the whitelisted successor state keys of from, in
// ascending order (deterministic iteration for the RL agent).
func (t *Table) SafeSuccessors(from uint64) []uint64 {
	m := t.safe[from]
	out := make([]uint64, 0, len(m))
	for to := range m {
		out = append(out, to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Each calls fn for every explicitly whitelisted transition, in
// deterministic (ascending from, then to) order.
func (t *Table) Each(fn func(from, to uint64)) {
	froms := make([]uint64, 0, len(t.safe))
	for from := range t.safe {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, from := range froms {
		for _, to := range t.SafeSuccessors(from) {
			fn(from, to)
		}
	}
}

// Len returns the number of explicitly whitelisted transitions.
func (t *Table) Len() int {
	n := 0
	for _, m := range t.safe {
		n += len(m)
	}
	return n
}

// AllowIdle reports the table's idle policy.
func (t *Table) AllowIdle() bool { return t.allowIdle }

// AllowManual marks a device action as manually sanctioned: any composite
// action consisting solely of manually sanctioned device actions is safe
// regardless of the learned whitelist. This is the paper's escape hatch
// for safety policies that cannot be learned from natural behavior
// (Section V-B1) — fail-safes like powering the HVAC off.
func (t *Table) AllowManual(dev int, act device.ActionID) {
	if t.manual == nil {
		t.manual = make(map[manualKey]bool)
	}
	t.manual[manualKey{dev: dev, act: act}] = true
}

// ManualAllowed reports whether composite action a is non-trivial and
// every device action it takes is manually sanctioned.
func (t *Table) ManualAllowed(a env.Action) bool {
	if t.manual == nil {
		return false
	}
	acted := false
	for dev, act := range a {
		if act == device.NoAction {
			continue
		}
		acted = true
		if !t.manual[manualKey{dev: dev, act: act}] {
			return false
		}
	}
	return acted
}

// SafeTransition combines the learned state-level whitelist with the
// manual action-level policies: a transition is safe when its (S, S') pair
// is whitelisted or the action is manually sanctioned.
func (t *Table) SafeTransition(from, to uint64, a env.Action) bool {
	return t.Safe(from, to) || t.ManualAllowed(a)
}

// tableJSON is the serialized form of a Table.
type tableJSON struct {
	AllowIdle bool                `json:"allowIdle"`
	Safe      map[string][]uint64 `json:"safe"`
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error {
	out := tableJSON{AllowIdle: t.allowIdle, Safe: make(map[string][]uint64, len(t.safe))}
	for from := range t.safe {
		out.Safe[fmt.Sprint(from)] = t.SafeSuccessors(from)
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("policy: save table: %w", err)
	}
	return nil
}

// Fingerprint digests the serialized table (SHA-256, hex): a stable
// identity for one learned P_safe, used by replay reports to show which
// safety table produced a decision stream. Deterministic because the JSON
// encoder sorts map keys and successor lists are emitted sorted.
func (t *Table) Fingerprint() (string, error) {
	var b bytes.Buffer
	if err := t.Save(&b); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// LoadTable reads a table saved with Save.
func LoadTable(r io.Reader) (*Table, error) {
	var in tableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("policy: load table: %w", err)
	}
	t := NewTable(in.AllowIdle)
	for fromStr, tos := range in.Safe {
		var from uint64
		if _, err := fmt.Sscan(fromStr, &from); err != nil {
			return nil, fmt.Errorf("policy: load table: bad key %q: %w", fromStr, err)
		}
		for _, to := range tos {
			t.Allow(from, to)
		}
	}
	return t, nil
}

// Config parameterizes the SPL.
type Config struct {
	// ThreshEnv is the instance-count threshold a (state, action) pair
	// must exceed to be whitelisted. The paper recommends 0 for smart
	// homes, where safety is critical: any observed natural transition is
	// whitelisted, nothing else.
	ThreshEnv int
	// Filter removes benign anomalies from the training data (Filter_ANN
	// in Algorithm 1). Nil keeps every observation.
	Filter Filter
	// AllowIdle marks identity transitions implicitly safe.
	AllowIdle bool
}

// Learner is the SPL: it accumulates trigger→action observations from
// learning episodes and produces P_safe.
type Learner struct {
	env      *env.Environment
	cfg      Config
	counts   map[[2]uint64]int // (stateKey, actionKey) -> instance count
	filtered int               // observations removed by the filter
	observed int
}

// NewLearner creates an SPL for the environment.
func NewLearner(e *env.Environment, cfg Config) *Learner {
	return &Learner{env: e, cfg: cfg, counts: make(map[[2]uint64]int)}
}

// Observe feeds one learning episode into the learner (the inner loop of
// Algorithm 1): each transition is filtered, then its (S, A) count is
// incremented.
func (l *Learner) Observe(ep env.Episode) {
	// Iterate the episode in place rather than materializing a
	// []Transition: learning phases feed tens of thousands of transitions
	// through here and the expansion used to dominate the allocation
	// profile. The Transition struct is only built when a filter needs it.
	// Consecutive identical (S, A) keys — idle minutes dominate real logs —
	// are run-length batched so the counts map is touched once per run.
	observedBefore, filteredBefore := l.observed, l.filtered
	var lastKey [2]uint64
	pending := 0
	for t := range ep.Actions {
		l.observed++
		if l.cfg.Filter != nil {
			tr := env.Transition{
				From:     ep.States[t],
				Act:      ep.Actions[t],
				To:       ep.States[t+1],
				Instance: t,
				At:       ep.At(t),
			}
			if l.cfg.Filter.BenignAnomaly(tr) {
				l.filtered++
				continue
			}
		}
		key := [2]uint64{l.env.StateKey(ep.States[t]), l.env.ActionKey(ep.Actions[t])}
		if pending > 0 && key == lastKey {
			pending++
			continue
		}
		if pending > 0 {
			l.counts[lastKey] += pending
		}
		lastKey, pending = key, 1
	}
	if pending > 0 {
		l.counts[lastKey] += pending
	}
	// One batched telemetry write per episode, not per transition.
	mObserved.Add(int64(l.observed - observedBefore))
	mFiltered.Add(int64(l.filtered - filteredBefore))
}

// ObserveAll feeds a batch of learning episodes.
func (l *Learner) ObserveAll(eps []env.Episode) {
	for _, ep := range eps {
		l.Observe(ep)
	}
}

// Observed returns the total number of transitions seen and the number
// removed by the benign-anomaly filter.
func (l *Learner) Observed() (total, filtered int) { return l.observed, l.filtered }

// Behavior is one observed trigger→action pair with its instance count.
type Behavior struct {
	State  uint64
	Action uint64
	Count  int
}

// Behaviors returns every counted (state, action) pair above the
// threshold, in deterministic order — the raw safe T/A behavior the
// Table II analysis reports.
func (l *Learner) Behaviors() []Behavior {
	out := make([]Behavior, 0, len(l.counts))
	for key, count := range l.counts {
		if count <= l.cfg.ThreshEnv {
			continue
		}
		out = append(out, Behavior{State: key[0], Action: key[1], Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// Table finalizes P_safe (the second loop of Algorithm 1): every (S, A)
// whose count exceeds ThreshEnv contributes P_safe[S, Δ(S, A)] = 1.
func (l *Learner) Table() *Table {
	t := NewTable(l.cfg.AllowIdle)
	for key, count := range l.counts {
		if count <= l.cfg.ThreshEnv {
			continue
		}
		s := l.env.DecodeState(key[0])
		a := l.env.DecodeAction(key[1])
		next, err := l.env.Transition(s, a)
		if err != nil {
			continue // stale observation no longer valid under the FSM
		}
		t.Allow(key[0], l.env.StateKey(next))
	}
	return t
}

// Violation is a flagged unsafe transition.
type Violation struct {
	Episode  int
	Instance int
	From     env.State
	Act      env.Action
	To       env.State
}

func (v Violation) String() string {
	return fmt.Sprintf("episode %d instance %d: unsafe transition", v.Episode, v.Instance)
}

// FlagEpisodes checks episodes against P_safe and returns every transition
// whose (S, S') pair is not whitelisted. This is the enforcement path the
// security evaluation of Section VI-B exercises.
func FlagEpisodes(e *env.Environment, t *Table, eps []env.Episode) []Violation {
	var out []Violation
	checks := 0
	for i, ep := range eps {
		checks += len(ep.Actions)
		for ti := range ep.Actions {
			from, to := e.StateKey(ep.States[ti]), e.StateKey(ep.States[ti+1])
			if !t.SafeTransition(from, to, ep.Actions[ti]) {
				out = append(out, Violation{
					Episode:  i,
					Instance: ti,
					From:     ep.States[ti],
					Act:      ep.Actions[ti],
					To:       ep.States[ti+1],
				})
			}
		}
	}
	mAuditChecks.Add(int64(checks))
	mAuditDenials.Add(int64(len(out)))
	return out
}
