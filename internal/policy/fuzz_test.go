package policy

import (
	"strings"
	"testing"
)

// FuzzLoadTable: arbitrary bytes must never panic the loader, and any
// table that loads must round-trip through Save.
func FuzzLoadTable(f *testing.F) {
	f.Add(`{"allowIdle":true,"safe":{"1":[2,3]}}`)
	f.Add(`{"safe":{}}`)
	f.Add(`junk`)
	f.Add(`{"safe":{"notanumber":[1]}}`)
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := LoadTable(strings.NewReader(data))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := tab.Save(&out); err != nil {
			t.Fatalf("loaded table failed to save: %v", err)
		}
		again, err := LoadTable(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("saved table failed to reload: %v", err)
		}
		if again.Len() != tab.Len() || again.AllowIdle() != tab.AllowIdle() {
			t.Fatalf("round trip changed the table: %d/%v vs %d/%v",
				again.Len(), again.AllowIdle(), tab.Len(), tab.AllowIdle())
		}
	})
}
