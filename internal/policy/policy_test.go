package policy

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	lock := device.NewBuilder("lock", device.TypeLock).
		States("locked", "unlocked").
		Actions("lock", "unlock").
		Transition("unlocked", "lock", "locked").
		Transition("locked", "unlock", "unlocked").
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(light, env.Placement{})
	b.AddDevice(lock, env.Placement{})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

// episode builds a short episode from a sequence of composite actions.
func episode(t *testing.T, e *env.Environment, s0 env.State, acts ...env.Action) env.Episode {
	t.Helper()
	rec := env.NewRecorder(e, s0, time.Date(2020, 1, 6, 0, 0, 0, 0, time.UTC),
		time.Duration(len(acts))*time.Minute, time.Minute)
	for _, a := range acts {
		if err := rec.Step(a); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	return rec.Episode()
}

func TestTableBasics(t *testing.T) {
	tab := NewTable(false)
	if tab.Safe(1, 2) {
		t.Error("empty table should deny")
	}
	tab.Allow(1, 2)
	tab.Allow(1, 3)
	if !tab.Safe(1, 2) || !tab.Safe(1, 3) {
		t.Error("whitelisted transitions should be safe")
	}
	if tab.Safe(2, 1) {
		t.Error("reverse transition should be denied")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	succ := tab.SafeSuccessors(1)
	if len(succ) != 2 || succ[0] != 2 || succ[1] != 3 {
		t.Errorf("SafeSuccessors = %v", succ)
	}
	if tab.SafeSuccessors(9) != nil && len(tab.SafeSuccessors(9)) != 0 {
		t.Error("unknown state should have no successors")
	}
}

func TestTableAllowIdle(t *testing.T) {
	strict := NewTable(false)
	lapse := NewTable(true)
	if strict.Safe(5, 5) {
		t.Error("strict table: idle not safe")
	}
	if !lapse.Safe(5, 5) {
		t.Error("idle-allowing table: idle safe")
	}
	if !lapse.AllowIdle() || strict.AllowIdle() {
		t.Error("AllowIdle accessor wrong")
	}
}

func TestTableSaveLoad(t *testing.T) {
	tab := NewTable(true)
	tab.Allow(1, 2)
	tab.Allow(7, 9)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadTable(&buf)
	if err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	if !got.Safe(1, 2) || !got.Safe(7, 9) || got.Safe(2, 1) {
		t.Error("round trip lost transitions")
	}
	if !got.AllowIdle() {
		t.Error("round trip lost allowIdle")
	}
	if _, err := LoadTable(strings.NewReader("junk")); err == nil {
		t.Error("junk should fail to load")
	}
	if _, err := LoadTable(strings.NewReader(`{"safe":{"abc":[1]}}`)); err == nil {
		t.Error("non-numeric key should fail to load")
	}
}

func TestLearnerWhitelistsObservedTransitions(t *testing.T) {
	e := testEnv(t)
	l := NewLearner(e, Config{ThreshEnv: 0, AllowIdle: true})

	on := env.Action{1, device.NoAction}
	off := env.Action{0, device.NoAction}
	idle := env.NoOp(2)
	ep := episode(t, e, env.State{0, 0}, on, idle, off)
	l.Observe(ep)

	total, filtered := l.Observed()
	if total != 3 || filtered != 0 {
		t.Errorf("Observed = %d,%d", total, filtered)
	}

	tab := l.Table()
	s00 := e.StateKey(env.State{0, 0})
	s10 := e.StateKey(env.State{1, 0})
	if !tab.Safe(s00, s10) {
		t.Error("observed on-transition should be safe")
	}
	if !tab.Safe(s10, s00) {
		t.Error("observed off-transition should be safe")
	}
	// never observed: unlocking the lock
	s01 := e.StateKey(env.State{0, 1})
	if tab.Safe(s00, s01) {
		t.Error("unobserved transition must be unsafe")
	}
}

func TestLearnerThreshold(t *testing.T) {
	e := testEnv(t)
	l := NewLearner(e, Config{ThreshEnv: 2})
	on := env.Action{1, device.NoAction}
	off := env.Action{0, device.NoAction}
	// The on-transition from {0,0} occurs 3 times (> 2), off from {1,0}
	// twice (== 2, not >), so only "on" is whitelisted.
	l.Observe(episode(t, e, env.State{0, 0}, on, off, on, off, on))
	tab := l.Table()
	s00 := e.StateKey(env.State{0, 0})
	s10 := e.StateKey(env.State{1, 0})
	if !tab.Safe(s00, s10) {
		t.Error("3x observed transition should pass Thresh=2")
	}
	if tab.Safe(s10, s00) {
		t.Error("2x observed transition must not pass Thresh=2")
	}
}

func TestLearnerFilter(t *testing.T) {
	e := testEnv(t)
	// Filter everything touching the lock as a benign anomaly.
	filter := FilterFunc(func(tr env.Transition) bool {
		return tr.Act[1] != device.NoAction
	})
	l := NewLearner(e, Config{Filter: filter})
	unlock := env.Action{device.NoAction, 1}
	on := env.Action{1, device.NoAction}
	l.Observe(episode(t, e, env.State{0, 0}, unlock, on))
	total, filtered := l.Observed()
	if total != 2 || filtered != 1 {
		t.Errorf("Observed = %d,%d want 2,1", total, filtered)
	}
	tab := l.Table()
	if tab.Safe(e.StateKey(env.State{0, 0}), e.StateKey(env.State{0, 1})) {
		t.Error("filtered transition must not be whitelisted")
	}
	if !tab.Safe(e.StateKey(env.State{0, 1}), e.StateKey(env.State{1, 1})) {
		t.Error("unfiltered transition should be whitelisted")
	}
}

func TestObserveAll(t *testing.T) {
	e := testEnv(t)
	l := NewLearner(e, Config{})
	on := env.Action{1, device.NoAction}
	eps := []env.Episode{
		episode(t, e, env.State{0, 0}, on),
		episode(t, e, env.State{1, 0}, env.Action{0, device.NoAction}),
	}
	l.ObserveAll(eps)
	if total, _ := l.Observed(); total != 2 {
		t.Errorf("total = %d, want 2", total)
	}
}

func TestFlagEpisodes(t *testing.T) {
	e := testEnv(t)
	l := NewLearner(e, Config{AllowIdle: true})
	on := env.Action{1, device.NoAction}
	off := env.Action{0, device.NoAction}
	l.Observe(episode(t, e, env.State{0, 0}, on, off))
	tab := l.Table()

	// A malicious episode: unlock the lock (never seen in learning).
	mal := episode(t, e, env.State{0, 0}, env.Action{device.NoAction, 1}, env.NoOp(2))
	violations := FlagEpisodes(e, tab, []env.Episode{mal})
	if len(violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(violations))
	}
	v := violations[0]
	if v.Episode != 0 || v.Instance != 0 {
		t.Errorf("violation location = %d/%d", v.Episode, v.Instance)
	}
	if !strings.Contains(v.String(), "unsafe") {
		t.Errorf("String = %q", v.String())
	}

	// A benign episode replaying learned behavior: no violations.
	ben := episode(t, e, env.State{0, 0}, on, env.NoOp(2), off)
	if got := FlagEpisodes(e, tab, []env.Episode{ben}); len(got) != 0 {
		t.Errorf("benign episode flagged: %v", got)
	}
}

func TestFlagEpisodesStrictIdle(t *testing.T) {
	e := testEnv(t)
	tab := NewTable(false) // nothing whitelisted, idle not allowed
	ep := episode(t, e, env.State{0, 0}, env.NoOp(2))
	if got := FlagEpisodes(e, tab, []env.Episode{ep}); len(got) != 1 {
		t.Errorf("strict table should flag idle: %v", got)
	}
}

func TestActionKeyRoundTrip(t *testing.T) {
	e := testEnv(t)
	acts := []env.Action{
		env.NoOp(2),
		{0, device.NoAction},
		{device.NoAction, 1},
		{1, 0},
	}
	seen := make(map[uint64]bool)
	for _, a := range acts {
		k := e.ActionKey(a)
		if seen[k] {
			t.Fatalf("duplicate action key %d", k)
		}
		seen[k] = true
		got := e.DecodeAction(k)
		for i := range a {
			if got[i] != a[i] {
				t.Errorf("DecodeAction(%d) = %v, want %v", k, got, a)
			}
		}
	}
}
