package policy

import (
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

func activeTestEnv(t *testing.T) *env.Environment {
	t.Helper()
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	oven := device.NewBuilder("oven", device.TypeOven).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(light, env.Placement{})
	b.AddDevice(oven, env.Placement{})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

func flaggedEpisode(t *testing.T, e *env.Environment, table *Table) []Violation {
	t.Helper()
	rec := env.NewRecorder(e, env.State{0, 0}, time.Time{}, 2*time.Minute, time.Minute)
	if err := rec.Step(env.Action{1, device.NoAction}); err != nil { // light on (unlearned)
		t.Fatal(err)
	}
	if err := rec.Step(env.Action{device.NoAction, 1}); err != nil { // oven on (unlearned)
		t.Fatal(err)
	}
	return FlagEpisodes(e, table, []env.Episode{rec.Episode()})
}

func TestActiveLearningWhitelistsBenignFeedback(t *testing.T) {
	e := activeTestEnv(t)
	table := NewTable(true) // nothing learned
	al := NewActiveLearner(e, table)

	violations := flaggedEpisode(t, e, table)
	if len(violations) != 2 {
		t.Fatalf("violations = %d, want 2", len(violations))
	}

	// User: the light is fine, the oven is not.
	oracle := OracleFunc(func(v Violation) Feedback {
		if v.Act[0] != device.NoAction {
			return FeedbackBenign
		}
		return FeedbackMalicious
	})
	stats := al.Review(violations, oracle)
	if stats.Asked != 2 || stats.Whitelisted != 1 || stats.Confirmed != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// The light transition is no longer flagged; the oven still is.
	again := flaggedEpisode(t, e, table)
	if len(again) != 1 {
		t.Fatalf("after review: %d violations, want 1", len(again))
	}
	if again[0].Act[1] == device.NoAction {
		t.Error("remaining violation should be the oven")
	}
	from := e.StateKey(again[0].From)
	to := e.StateKey(again[0].To)
	if !al.ConfirmedMalicious(from, to) {
		t.Error("oven transition should be pinned malicious")
	}

	// Re-reviewing asks nothing new.
	stats = al.Review(again, oracle)
	if stats.Asked != 0 {
		t.Errorf("re-review asked %d questions", stats.Asked)
	}
	if got := al.Decisions(); len(got) != 2 {
		t.Errorf("decisions = %d", len(got))
	}
}

func TestActiveLearningSkip(t *testing.T) {
	e := activeTestEnv(t)
	table := NewTable(true)
	al := NewActiveLearner(e, table)
	violations := flaggedEpisode(t, e, table)

	skipAll := OracleFunc(func(Violation) Feedback { return FeedbackSkip })
	stats := al.Review(violations, skipAll)
	if stats.Skipped != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Skipped transitions are asked again next round.
	stats = al.Review(violations, skipAll)
	if stats.Asked != 2 {
		t.Errorf("skipped items should be re-asked, asked = %d", stats.Asked)
	}
}
