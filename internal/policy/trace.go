package policy

import (
	"jarvis/internal/env"
	"jarvis/internal/trace"
)

// SafeTransitionTraced is SafeTransition under a "policy.audit" child span
// annotated with the verdict. This is also where the audit counters are
// incremented: it is only called from genuine audit surfaces (the daemon's
// request path), so hot simulation loops calling Table.Safe directly stay
// uninstrumented per the DESIGN §9.2 contract.
func (t *Table) SafeTransitionTraced(sp *trace.Span, from, to uint64, a env.Action) bool {
	child := sp.Child("policy.audit")
	ok := t.SafeTransition(from, to, a)
	mAuditChecks.Inc()
	if !ok {
		mAuditDenials.Inc()
	}
	if child != nil {
		if ok {
			child.Annotate("verdict", "safe")
		} else {
			child.Annotate("verdict", "unsafe")
		}
		child.End()
	}
	return ok
}
