package policy

import "jarvis/internal/telemetry"

// Metric handles, resolved once at init. Denials are counted at the
// enforcement and audit surfaces (FlagEpisodes, the daemon's per-event
// check), NOT inside Table.Safe: the exploration loops of Algorithm 2 probe
// the table millions of times per training run and shared counters there
// would contend across parallel experiment workers — exactly the
// perturbation the telemetry layer promises to avoid.
var (
	mAuditChecks  = telemetry.Default.Counter("policy.audit.checks")
	mAuditDenials = telemetry.Default.Counter("policy.audit.denials")

	mObserved = telemetry.Default.Counter("policy.learner.observed")
	mFiltered = telemetry.Default.Counter("policy.learner.filtered")
)
