package policy

import (
	"sort"

	"jarvis/internal/env"
)

// Feedback is a user's verdict on a flagged transition — the active
// learning loop the paper sketches as future work (Section VI-F): actions
// in the unsafe benefit space are surfaced to the user, whose answers
// either extend the whitelist or confirm the block.
type Feedback int

// Feedback values.
const (
	// FeedbackBenign reclassifies the transition as acceptable; it joins
	// P_safe.
	FeedbackBenign Feedback = iota + 1
	// FeedbackMalicious confirms the block; the transition is pinned to
	// the blacklist and never re-asked.
	FeedbackMalicious
	// FeedbackSkip defers the decision; the transition will be asked
	// about again.
	FeedbackSkip
)

// Oracle answers feedback queries. In production this is a user prompt; in
// experiments it is a labelled ground truth.
type Oracle interface {
	Judge(v Violation) Feedback
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(Violation) Feedback

// Judge implements Oracle.
func (f OracleFunc) Judge(v Violation) Feedback { return f(v) }

var _ Oracle = OracleFunc(nil)

// ActiveLearner incrementally refines P_safe from user feedback on flagged
// violations. Every (S, S') pair is asked about at most once; benign
// verdicts are immediately whitelisted, malicious verdicts pinned.
type ActiveLearner struct {
	env   *env.Environment
	table *Table
	// decided maps (from, to) to the final verdict.
	decided map[[2]uint64]Feedback
}

// NewActiveLearner wraps a learned table.
func NewActiveLearner(e *env.Environment, table *Table) *ActiveLearner {
	return &ActiveLearner{env: e, table: table, decided: make(map[[2]uint64]Feedback)}
}

// ReviewStats summarizes one review round.
type ReviewStats struct {
	Asked, Whitelisted, Confirmed, Skipped int
}

// Review surfaces each distinct flagged transition to the oracle and
// applies the verdicts. Already-decided transitions are not re-asked.
func (al *ActiveLearner) Review(violations []Violation, oracle Oracle) ReviewStats {
	var stats ReviewStats
	seen := make(map[[2]uint64]bool)
	for _, v := range violations {
		key := [2]uint64{al.env.StateKey(v.From), al.env.StateKey(v.To)}
		if seen[key] {
			continue
		}
		seen[key] = true
		if verdict, done := al.decided[key]; done && verdict != FeedbackSkip {
			continue
		}
		stats.Asked++
		switch oracle.Judge(v) {
		case FeedbackBenign:
			al.table.Allow(key[0], key[1])
			al.decided[key] = FeedbackBenign
			stats.Whitelisted++
		case FeedbackMalicious:
			al.decided[key] = FeedbackMalicious
			stats.Confirmed++
		default:
			stats.Skipped++
		}
	}
	return stats
}

// ConfirmedMalicious reports whether the transition has been pinned as
// malicious by user feedback.
func (al *ActiveLearner) ConfirmedMalicious(from, to uint64) bool {
	return al.decided[[2]uint64{from, to}] == FeedbackMalicious
}

// Decisions returns the review history in deterministic order.
func (al *ActiveLearner) Decisions() []ReviewDecision {
	out := make([]ReviewDecision, 0, len(al.decided))
	for key, verdict := range al.decided {
		out = append(out, ReviewDecision{From: key[0], To: key[1], Verdict: verdict})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ReviewDecision is one recorded verdict.
type ReviewDecision struct {
	From, To uint64
	Verdict  Feedback
}
