package policy

import (
	"testing"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

func TestManualPolicies(t *testing.T) {
	tab := NewTable(true)
	if tab.ManualAllowed(env.Action{0, device.NoAction}) {
		t.Error("no manual rules yet")
	}
	tab.AllowManual(1, 2)

	noop := env.NoOp(3)
	if tab.ManualAllowed(noop) {
		t.Error("pure no-op is not a manual action")
	}
	sanctioned := env.Action{device.NoAction, 2, device.NoAction}
	if !tab.ManualAllowed(sanctioned) {
		t.Error("sanctioned single action should pass")
	}
	mixed := env.Action{0, 2, device.NoAction} // device 0 action not sanctioned
	if tab.ManualAllowed(mixed) {
		t.Error("mixed composite with unsanctioned action must fail")
	}

	// SafeTransition: manual path works even with an empty whitelist.
	if !tab.SafeTransition(7, 9, sanctioned) {
		t.Error("manual action should make the transition safe")
	}
	if tab.SafeTransition(7, 9, mixed) {
		t.Error("mixed action on unknown transition must stay unsafe")
	}
	// Whitelist path still works.
	tab.Allow(7, 9)
	if !tab.SafeTransition(7, 9, mixed) {
		t.Error("whitelisted transition is safe regardless of action")
	}
}

func TestFlagEpisodesRespectsManual(t *testing.T) {
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(light, env.Placement{})
	e := b.MustBuild()

	tab := NewTable(true) // nothing learned
	ep := env.Episode{
		States:  []env.State{{0}, {1}},
		Actions: []env.Action{{1}},
	}
	if got := FlagEpisodes(e, tab, []env.Episode{ep}); len(got) != 1 {
		t.Fatalf("unlearned transition should be flagged: %v", got)
	}
	tab.AllowManual(0, 1) // power_on manually sanctioned
	if got := FlagEpisodes(e, tab, []env.Episode{ep}); len(got) != 0 {
		t.Fatalf("manually sanctioned transition flagged: %v", got)
	}
}

func TestBehaviors(t *testing.T) {
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(light, env.Placement{})
	e := b.MustBuild()

	l := NewLearner(e, Config{ThreshEnv: 1})
	ep := env.Episode{
		States:  []env.State{{0}, {1}, {0}, {1}},
		Actions: []env.Action{{1}, {0}, {1}},
	}
	l.Observe(ep)
	behaviors := l.Behaviors()
	// power_on from off occurred twice (> thresh 1); power_off once (==1, excluded)
	if len(behaviors) != 1 {
		t.Fatalf("behaviors = %v, want 1", behaviors)
	}
	if behaviors[0].Count != 2 {
		t.Errorf("count = %d, want 2", behaviors[0].Count)
	}
	if got := e.DecodeAction(behaviors[0].Action); got[0] != 1 {
		t.Errorf("action = %v, want power_on", got)
	}
}

func TestTableEach(t *testing.T) {
	tab := NewTable(false)
	tab.Allow(3, 4)
	tab.Allow(1, 2)
	tab.Allow(1, 9)
	var got [][2]uint64
	tab.Each(func(from, to uint64) { got = append(got, [2]uint64{from, to}) })
	want := [][2]uint64{{1, 2}, {1, 9}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
}
