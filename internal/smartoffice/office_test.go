package smartoffice

import (
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
)

var officeMonday = time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)

func TestOfficeEnvironment(t *testing.T) {
	o := New()
	if o.Env.K() != 10 {
		t.Fatalf("K = %d, want 10", o.Env.K())
	}
	if !o.Env.ValidState(o.InitialState()) {
		t.Fatal("InitialState invalid")
	}
	if o.InitialState()[o.ServerCooler] != 1 {
		t.Error("server cooler must start on")
	}
}

func TestWorkdayEpisode(t *testing.T) {
	o := New()
	rng := rand.New(rand.NewSource(1))
	ep, final, err := o.Workday(officeMonday, o.InitialState(), DefaultWorkday(), rng)
	if err != nil {
		t.Fatalf("Workday: %v", err)
	}
	if err := ep.Validate(o.Env); err != nil {
		t.Fatalf("episode invalid: %v", err)
	}
	if !o.Env.ValidState(final) {
		t.Fatal("final state invalid")
	}
	// The office must actually operate: lights on during the day,
	// projector used, HVAC in a comfort mode mid-day.
	midday := ep.States[13*60]
	if midday[o.LightsOpen] != 1 {
		t.Error("lights should be on at 13:00")
	}
	if midday[o.HVACEast] == HVACSetback {
		t.Error("east HVAC should be in comfort mode at 13:00")
	}
	projectorUsed := false
	for _, s := range ep.States {
		if s[o.Projector] == 1 {
			projectorUsed = true
			break
		}
	}
	if !projectorUsed {
		t.Error("projector never used")
	}
	// Night: back to setback, lights off.
	last := ep.States[len(ep.States)-1]
	if last[o.LightsOpen] != 0 || last[o.HVACEast] != HVACSetback {
		t.Errorf("closing shutdown failed: %v", o.Env.FormatState(last))
	}
}

func TestWeekendIsQuiet(t *testing.T) {
	o := New()
	rng := rand.New(rand.NewSource(2))
	sat := officeMonday.AddDate(0, 0, 5)
	ep, _, err := o.Workday(sat, o.InitialState(), DefaultWorkday(), rng)
	if err != nil {
		t.Fatalf("Workday: %v", err)
	}
	for _, s := range ep.States {
		if s[o.HVACEast] == HVACHeat || s[o.HVACEast] == HVACCool {
			t.Fatal("HVAC must stay in setback on weekends")
		}
	}
}

// TestPipelineContextIndependence runs the identical Jarvis pipeline —
// SPL learning, violation flagging, constrained training — on the office,
// proving the framework is not smart-home-specific.
func TestPipelineContextIndependence(t *testing.T) {
	o := New()
	rng := rand.New(rand.NewSource(3))
	eps, err := o.Workdays(officeMonday, 5, DefaultWorkday(), rng)
	if err != nil {
		t.Fatalf("Workdays: %v", err)
	}

	spl := policy.NewLearner(o.Env, policy.Config{AllowIdle: true})
	spl.ObserveAll(eps)
	table := spl.Table()
	if table.Len() == 0 {
		t.Fatal("SPL learned nothing")
	}

	// A benign replay is clean.
	if v := policy.FlagEpisodes(o.Env, table, eps[:1]); len(v) != 0 {
		t.Fatalf("benign day flagged: %v", v)
	}

	// An attack — powering off the server cooler at 03:00 — is flagged.
	actions := make([]env.Action, eps[0].Len())
	for i, a := range eps[0].Actions {
		actions[i] = a.Clone()
	}
	actions[3*60][o.ServerCooler] = 0
	mal, err := env.ReplayActions(o.Env, eps[0].States[0], eps[0].Start, eps[0].I, actions)
	if err != nil {
		t.Fatalf("ReplayActions: %v", err)
	}
	flagged := policy.FlagEpisodes(o.Env, table, []env.Episode{mal})
	if len(flagged) == 0 {
		t.Fatal("server-cooler kill not flagged")
	}

	// Constrained training on the energy goal commits zero violations.
	rs, err := reward.New(o.Env, reward.Config{
		Functionalities: []reward.Functionality{
			{Name: "energy", Weight: 1, F: o.EnergyReward()},
		},
		Preferred: reward.LearnPreferredTimes(o.Env, eps),
		Instances: 1440,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	sim, err := rl.NewSimEnv(o.Env, rl.SimConfig{
		Initial: o.InitialState(),
		Reward:  rs,
		Safe:    table,
	})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	agent, err := rl.NewAgent(sim, rl.NewTableQ(o.Env, 1440, 24, 0.25), rl.AgentConfig{
		Episodes: 10, DecideEvery: 30, ReplayEvery: 8,
		Actionable: func(dev int) bool {
			return dev != o.Badge && dev != o.Occupancy && dev != o.ServerCooler
		},
		Rng: rng,
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	stats, err := agent.Train()
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if stats.Violations != 0 {
		t.Errorf("constrained office training committed %d violations", stats.Violations)
	}
	// A recommendation exists and is FSM-valid.
	act := agent.Recommend(o.InitialState(), 10*60)
	if _, err := o.Env.Transition(o.InitialState(), act); err != nil {
		t.Errorf("recommendation invalid: %v", err)
	}
	_ = device.NoAction
}

func TestWorkdaysChain(t *testing.T) {
	o := New()
	rng := rand.New(rand.NewSource(4))
	eps, err := o.Workdays(officeMonday, 3, DefaultWorkday(), rng)
	if err != nil {
		t.Fatalf("Workdays: %v", err)
	}
	for i := 1; i < len(eps); i++ {
		if !eps[i].States[0].Equal(eps[i-1].States[len(eps[i-1].States)-1]) {
			t.Errorf("day %d does not chain", i)
		}
	}
}
