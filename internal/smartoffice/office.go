// Package smartoffice instantiates Jarvis for a second, structurally
// different IoT environment — a small office — demonstrating the paper's
// context-independence claim (contribution 1): the same pipeline
// (environment FSM → SPL → constrained optimizer) runs unchanged on a new
// device vocabulary, new apps, and a new behavioral routine.
package smartoffice

import (
	"fmt"
	"math/rand"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/reward"
)

// Canonical action names.
const (
	ActOff     = "power_off"
	ActOn      = "power_on"
	ActGrant   = "grant"
	ActDeny    = "deny"
	ActIdle    = "idle"
	ActDetect  = "detect"
	ActClear   = "clear"
	ActCool    = "cool"
	ActHeat    = "heat"
	ActSetback = "setback"
)

// Badge-reader states.
const (
	BadgeIdle device.StateID = iota
	BadgeGranted
	BadgeDenied
	BadgeOff
)

// Occupancy-sensor states.
const (
	OccEmpty device.StateID = iota
	OccOccupied
	OccOff
)

// Zone HVAC states.
const (
	HVACSetback device.StateID = iota
	HVACHeat
	HVACCool
	HVACOff
)

// Office is the smart-office environment: a badge reader, an occupancy
// sensor, two zone HVACs, two light banks, a projector, a coffee machine,
// a printer, and a server-closet cooler that must never be powered off.
type Office struct {
	Env *env.Environment

	Badge, Occupancy           int
	HVACEast, HVACWest         int
	LightsOpen, LightsMeeting  int
	Projector, Coffee, Printer int
	ServerCooler               int

	ManualApp, ScheduleApp int
	Facilities             int
}

func newBadgeReader() *device.Device {
	return device.NewBuilder("badge-reader", "badge_reader").
		States("idle", "granted", "denied", "off").
		Actions(ActOff, ActOn, ActGrant, ActDeny, ActClear).
		TransitionAll(ActOff, "off").
		Transition("off", ActOn, "idle").
		Transition("idle", ActGrant, "granted").
		Transition("idle", ActDeny, "denied").
		Transition("granted", ActClear, "idle").
		Transition("denied", ActClear, "idle").
		PowerW("idle", 4).PowerW("granted", 4).PowerW("denied", 4).
		UniformDisUtility(0.9).
		MustBuild()
}

func newOccupancySensor() *device.Device {
	return device.NewBuilder("occupancy", "occupancy_sensor").
		States("empty", "occupied", "off").
		Actions(ActOff, ActOn, ActDetect, ActClear).
		TransitionAll(ActOff, "off").
		Transition("off", ActOn, "empty").
		Transition("empty", ActDetect, "occupied").
		Transition("occupied", ActClear, "empty").
		PowerW("empty", 2).PowerW("occupied", 2).
		UniformDisUtility(0.9).
		MustBuild()
}

func newZoneHVAC(name string, watts float64) *device.Device {
	return device.NewBuilder(name, "zone_hvac").
		States("setback", "heat", "cool", "off").
		Actions(ActSetback, ActHeat, ActCool, ActOff, ActOn).
		TransitionAll(ActSetback, "setback").
		TransitionAll(ActHeat, "heat").
		TransitionAll(ActCool, "cool").
		TransitionAll(ActOff, "off").
		Transition("off", ActOn, "setback").
		PowerW("setback", 150).
		PowerW("heat", watts).
		PowerW("cool", watts).
		UniformDisUtility(0.1).
		MustBuild()
}

func newSwitch(name, typ string, watts, omega float64) *device.Device {
	return device.NewBuilder(name, typ).
		States("off", "on").
		Actions(ActOff, ActOn).
		Transition("on", ActOff, "off").
		Transition("off", ActOn, "on").
		PowerW("on", watts).
		UniformDisUtility(omega).
		MustBuild()
}

// New builds the office environment.
func New() *Office {
	b := env.NewBuilder()
	o := &Office{}
	o.Badge = b.AddDevice(newBadgeReader(), env.Placement{Location: "office", Group: "entrance"})
	o.Occupancy = b.AddDevice(newOccupancySensor(), env.Placement{Location: "office", Group: "open-space"})
	o.HVACEast = b.AddDevice(newZoneHVAC("hvac-east", 3000), env.Placement{Location: "office", Group: "east"})
	o.HVACWest = b.AddDevice(newZoneHVAC("hvac-west", 3000), env.Placement{Location: "office", Group: "west"})
	o.LightsOpen = b.AddDevice(newSwitch("lights-open", "light", 400, 0.9), env.Placement{Location: "office", Group: "open-space"})
	o.LightsMeeting = b.AddDevice(newSwitch("lights-meeting", "light", 150, 0.9), env.Placement{Location: "office", Group: "meeting"})
	o.Projector = b.AddDevice(newSwitch("projector", "projector", 350, 0.5), env.Placement{Location: "office", Group: "meeting"})
	o.Coffee = b.AddDevice(newSwitch("coffee", "coffee_maker", 1200, 0.5), env.Placement{Location: "office", Group: "kitchen"})
	o.Printer = b.AddDevice(newSwitch("printer", "printer", 600, 0.5), env.Placement{Location: "office", Group: "open-space"})
	o.ServerCooler = b.AddDevice(newSwitch("server-cooler", "crac", 900, 0.9), env.Placement{Location: "office", Group: "server-closet"})

	all := []int{
		o.Badge, o.Occupancy, o.HVACEast, o.HVACWest, o.LightsOpen,
		o.LightsMeeting, o.Projector, o.Coffee, o.Printer, o.ServerCooler,
	}
	o.ManualApp = b.AddApp("manual", all...)
	o.ScheduleApp = b.AddApp("schedule", o.HVACEast, o.HVACWest, o.LightsOpen, o.LightsMeeting, o.Coffee)
	o.Facilities = b.AddUser("facilities", o.ManualApp, o.ScheduleApp)
	o.Env = b.MustBuild()
	return o
}

// InitialState is the office at midnight: empty, HVAC in setback, server
// cooler running.
func (o *Office) InitialState() env.State {
	s := make(env.State, o.Env.K())
	s[o.Badge] = BadgeIdle
	s[o.Occupancy] = OccEmpty
	s[o.HVACEast] = HVACSetback
	s[o.HVACWest] = HVACSetback
	s[o.ServerCooler] = 1 // on, always
	return s
}

// WorkdayConfig parameterizes the office routine.
type WorkdayConfig struct {
	// Open and Close are minutes from midnight (defaults 08:30 / 18:30).
	Open, Close int
	// Jitter is the schedule noise (minutes).
	Jitter float64
	// Meetings per day in the meeting room (default 3).
	Meetings int
}

// DefaultWorkday returns the standard office routine.
func DefaultWorkday() WorkdayConfig {
	return WorkdayConfig{Open: 8*60 + 30, Close: 18*60 + 30, Jitter: 15, Meetings: 3}
}

// Workday simulates one day of natural office behavior as an episode.
// Weekends are quiet (only the server cooler and an occasional badge-in).
func (o *Office) Workday(date time.Time, s0 env.State, cfg WorkdayConfig, rng *rand.Rand) (env.Episode, env.State, error) {
	const n = 1440
	type planned struct {
		dev int
		act device.ActionID
	}
	plan := make(map[int][]planned, 64)
	add := func(t, dev int, act device.ActionID) {
		if t >= 0 && t < n {
			plan[t] = append(plan[t], planned{dev, act})
		}
	}
	jit := func(base int) int {
		v := base + int(rng.NormFloat64()*cfg.Jitter)
		if v < 0 {
			v = 0
		}
		if v >= n {
			v = n - 1
		}
		return v
	}
	weekend := date.Weekday() == time.Saturday || date.Weekday() == time.Sunday
	if !weekend {
		open, close := jit(cfg.Open), jit(cfg.Close)
		if close <= open {
			close = open + 8*60
		}
		// Opening: badge in, occupancy, lights, coffee, HVAC to comfort.
		add(open, o.Badge, 2)            // grant
		add(open+1, o.Occupancy, 2)      // detect
		add(open+1, o.Badge, 4)          // clear
		add(open+2, o.LightsOpen, 1)     // on
		heatOrCool := device.ActionID(1) // heat
		if date.Month() >= time.June && date.Month() <= time.September {
			heatOrCool = 2 // cool
		}
		add(open+3, o.HVACEast, heatOrCool)
		add(open+3, o.HVACWest, heatOrCool)
		add(open+5, o.Coffee, 1)
		add(open+35, o.Coffee, 0)
		// Meetings: meeting lights + projector for ~50 minutes each.
		for m := 0; m < cfg.Meetings; m++ {
			start := jit(open + 90 + m*150)
			if start+55 >= close {
				break
			}
			add(start, o.LightsMeeting, 1)
			add(start+1, o.Projector, 1)
			add(start+50, o.Projector, 0)
			add(start+52, o.LightsMeeting, 0)
		}
		// Lunch coffee; afternoon printing.
		add(jit(12*60+45), o.Coffee, 1)
		add(jit(12*60+45)+30, o.Coffee, 0)
		printAt := jit(15 * 60)
		add(printAt, o.Printer, 1)
		add(printAt+20, o.Printer, 0)
		// Closing: everything down to setback, badge out.
		add(close-2, o.LightsOpen, 0)
		add(close-1, o.HVACEast, 0) // setback
		add(close-1, o.HVACWest, 0)
		add(close, o.Occupancy, 3) // clear
		add(close+1, o.Badge, 2)   // grant (badge out)
		add(close+2, o.Badge, 4)   // clear
	} else if rng.Float64() < 0.25 {
		// Weekend drop-in: badge in/out, brief lights.
		at := jit(11 * 60)
		add(at, o.Badge, 2)
		add(at+1, o.Badge, 4)
		add(at+1, o.Occupancy, 2)
		add(at+2, o.LightsOpen, 1)
		add(at+90, o.LightsOpen, 0)
		add(at+91, o.Occupancy, 3)
	}

	rec := env.NewRecorder(o.Env, s0, date, time.Duration(n)*time.Minute, time.Minute)
	for t := 0; t < n; t++ {
		act := env.NoOp(o.Env.K())
		for _, p := range plan[t] {
			act[p.dev] = p.act
		}
		s := rec.State()
		for dev, a := range act {
			if a == device.NoAction {
				continue
			}
			if _, ok := o.Env.Device(dev).Next(s[dev], a); !ok {
				act[dev] = device.NoAction
			}
		}
		if err := rec.Step(act); err != nil {
			return env.Episode{}, nil, fmt.Errorf("smartoffice: %s instance %d: %w", date.Format("2006-01-02"), t, err)
		}
	}
	ep := rec.Episode()
	return ep, ep.States[len(ep.States)-1].Clone(), nil
}

// Workdays simulates consecutive days, chaining end states.
func (o *Office) Workdays(start time.Time, days int, cfg WorkdayConfig, rng *rand.Rand) ([]env.Episode, error) {
	s := o.InitialState()
	out := make([]env.Episode, 0, days)
	for i := 0; i < days; i++ {
		ep, next, err := o.Workday(start.AddDate(0, 0, i), s, cfg, rng)
		if err != nil {
			return out, err
		}
		out = append(out, ep)
		s = next
	}
	return out, nil
}

// EnergyReward is the office's normalized energy functionality.
func (o *Office) EnergyReward() reward.Func {
	e := o.Env
	var maxW float64
	for i := 0; i < e.K(); i++ {
		d := e.Device(i)
		var m float64
		for s := 0; s < d.NumStates(); s++ {
			if w := d.PowerW(device.StateID(s)); w > m {
				m = w
			}
		}
		maxW += m
	}
	return func(s env.State, a env.Action, t int) float64 {
		next, err := e.Transition(s, a)
		if err != nil {
			return 0
		}
		var w float64
		for i := range next {
			w += e.Device(i).PowerW(next[i])
		}
		if maxW == 0 {
			return 1
		}
		return 1 - w/maxW
	}
}
