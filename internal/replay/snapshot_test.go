package replay

import (
	"encoding/json"
	"errors"
	"testing"

	"jarvis/internal/checkpoint"
	"jarvis/internal/env"
)

// validSnapshot returns a snapshot that passes Validate for cfg/k.
func validSnapshot(cfg Config, k int) *Snapshot {
	cfg = cfg.withDefaults()
	return &Snapshot{
		Version:      SnapshotVersion,
		Seed:         cfg.Seed,
		LearningDays: cfg.LearningDays,
		Episodes:     cfg.Episodes,
		State:        make(env.State, k),
		Table:        json.RawMessage(`{}`),
		Q:            json.RawMessage(`{}`),
	}
}

func TestSnapshotValidate(t *testing.T) {
	cfg := Config{Seed: 1, LearningDays: 2, Episodes: 2}
	const k = 11
	if err := validSnapshot(cfg, k).Validate(cfg, k); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"stale version", func(ck *Snapshot) { ck.Version = SnapshotVersion - 1 }},
		{"future version", func(ck *Snapshot) { ck.Version = SnapshotVersion + 1 }},
		{"seed mismatch", func(ck *Snapshot) { ck.Seed = 99 }},
		{"learning-days mismatch", func(ck *Snapshot) { ck.LearningDays = 9 }},
		{"episodes mismatch", func(ck *Snapshot) { ck.Episodes = 9 }},
		{"missing table", func(ck *Snapshot) { ck.Table = nil }},
		{"missing q", func(ck *Snapshot) { ck.Q = nil }},
		{"wrong state width", func(ck *Snapshot) { ck.State = make(env.State, k+1) }},
	}
	for _, tc := range cases {
		ck := validSnapshot(cfg, k)
		tc.mutate(ck)
		err := ck.Validate(cfg, k)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		// Every rejection is deterministic, so it must carry ErrCorrupt —
		// that is what makes the store fall back a generation instead of
		// retrying the same bytes.
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap checkpoint.ErrCorrupt", tc.name, err)
		}
	}

	// An empty State is legal: v2-era snapshots saved before any runtime
	// state existed omit it.
	ck := validSnapshot(cfg, k)
	ck.State = nil
	if err := ck.Validate(cfg, k); err != nil {
		t.Errorf("empty state rejected: %v", err)
	}
}

func TestPolicyFileInterpretation(t *testing.T) {
	ck := &Snapshot{
		Version: SnapshotVersion, Seed: 1, LearningDays: 2, Episodes: 2,
		Table: json.RawMessage(`{"t":"table"}`),
		Q:     json.RawMessage(`{"q":"values"}`),
	}
	b, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(QFromPolicyFile(b)); got != `{"q":"values"}` {
		t.Errorf("QFromPolicyFile(snapshot) = %s, want the embedded Q", got)
	}
	if got := string(TableFromPolicyFile(b)); got != `{"t":"table"}` {
		t.Errorf("TableFromPolicyFile(snapshot) = %s, want the embedded table", got)
	}
	// Anything that is not a snapshot passes through as raw policy bytes.
	raw := []byte(`{"weights":[1,2,3]}`)
	if got := string(QFromPolicyFile(raw)); got != string(raw) {
		t.Errorf("QFromPolicyFile(raw) = %s, want the bytes unchanged", got)
	}
	if got := string(TableFromPolicyFile(raw)); got != string(raw) {
		t.Errorf("TableFromPolicyFile(raw) = %s, want the bytes unchanged", got)
	}
}
