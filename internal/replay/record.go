package replay

import (
	"encoding/json"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// The daemon journals three record kinds to its write-ahead log, each as
// one JSON object per WAL frame:
//
//	evt — every applied device event: the audit trail. Replay re-derives
//	      the transition and the P_safe verdict, so a restarted daemon
//	      (or the offline replay engine) reaches the exact pre-crash
//	      environment state and violation count.
//	txn — every event the learning path accepted (i.e. not shed by
//	      admission control). Carries the pre-event state, so replay can
//	      recompute the reward and re-observe the transition into the
//	      replay buffer, then re-run the same every-Nth learn steps with
//	      the same per-step seeds. A crashed-and-replayed daemon ends in
//	      the same training state as one that never crashed.
//	rec — every recommendation served. Pure re-execution marker: the
//	      daemon's recovery only bumps its counter (a recommendation has
//	      no state effect), while the offline engine re-runs the policy
//	      at the replayed state to regenerate — or counterfactually
//	      rewrite — the recorded decision.
//
// Records carry a sequence number per kind. A checkpoint save persists
// all three counters and then resets the log; if the daemon crashes
// between the save and the reset, replay skips every record whose
// sequence the checkpoint already covers, so the overlap window
// double-applies nothing.
const (
	KindEvent      = "evt"
	KindTransition = "txn"
	KindRecommend  = "rec"
)

// Record is one journaled WAL record.
type Record struct {
	K string          `json:"k"`           // KindEvent | KindTransition | KindRecommend
	N int             `json:"n"`           // sequence number within the kind
	M int             `json:"m"`           // minute-of-day at ingest
	D int             `json:"d"`           // device index (evt, txn)
	A device.ActionID `json:"a"`           // action applied to device D (evt, txn)
	U bool            `json:"u,omitempty"` // evt: flagged unsafe by P_safe
	S env.State       `json:"s,omitempty"` // txn: state before the event
}

// Encode serializes the record for a WAL frame.
func (r Record) Encode() ([]byte, error) { return json.Marshal(r) }

// DecodeRecord parses one WAL frame payload. The framing CRC has already
// passed, so a decode failure means a foreign or future-format record the
// caller should skip, not kill recovery over.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	err := json.Unmarshal(b, &r)
	return r, err
}
