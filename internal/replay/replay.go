package replay

import (
	"errors"
	"fmt"
	"io"

	"jarvis/internal/env"
	"jarvis/internal/rl"
	"jarvis/internal/wal"
)

// Decision is one regenerated decision in canonical form: the fields the
// daemon's decision log records minus the wall-clock-dependent ones
// (UnixNs, Trace, Anomaly — see DESIGN.md §12 for why those are excluded
// from the divergence definition).
type Decision struct {
	Kind     string   `json:"kind"` // "event" | "recommend"
	Seq      int      `json:"seq"`  // kind-local WAL sequence number
	Minute   int      `json:"minute"`
	State    []string `json:"state"`
	Action   string   `json:"action"`
	Q        float64  `json:"q,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
	Verdict  string   `json:"verdict"`
}

// StreamStats summarizes one replayed decision stream. Counters over the
// whole replay (Events, Transitions, Recommends, LearnSteps, Violations)
// cover every applied record; the decision-level fields (Decisions,
// Degraded, Unsafe, the reward sums) cover only the post-fork window, so
// a what-if baseline and variant are compared over identical spans.
type StreamStats struct {
	Events      int `json:"events"`      // evt records applied
	Transitions int `json:"transitions"` // txn records applied
	Recommends  int `json:"recommends"`  // rec records seen
	LearnSteps  int `json:"learnSteps"`  // online learn steps that ran
	Violations  int `json:"violations"`  // P_safe violations among events

	Decisions int `json:"decisions"` // decisions emitted post-fork
	Degraded  int `json:"degraded"`  // ... that fell back to the safe NoOp
	Unsafe    int `json:"unsafe"`    // ... with an "unsafe" verdict
	// RecommendReward sums the reward R(state, action, minute) of every
	// post-fork recommended action — the counterfactual value estimate a
	// what-if run compares across policies.
	RecommendReward float64 `json:"recommendReward"`
	// TransitionReward sums the recorded transitions' rewards as fed to
	// the online learner post-fork.
	TransitionReward float64 `json:"transitionReward"`
}

// Replayer re-executes a recorded WAL stream against freshly built (or
// snapshot-restored) assets. It mirrors the daemon's ingest paths exactly
// — same transition application, same re-derived P_safe verdicts, same
// every-Nth learn steps drawn from rl.StepRNG — so a replay of an
// unmodified configuration walks bit-for-bit the trajectory the daemon
// walked. ForkAt installs a mutation (e.g. SwapPolicy) that is applied
// once the stream reaches a given event sequence number; decisions are
// only emitted from the fork point on.
type Replayer struct {
	cfg Config
	a   *Assets

	state      env.State
	violations int
	events     int
	steps      int // accepted learning transitions (txn sequence)
	recs       int // recommendations (rec sequence)
	learnSteps int

	at     int // fork once events reaches this sequence number
	forked bool
	origin bool // no snapshot counters skipped anything
	mutate func(*Assets) error

	decisions []Decision
	stats     StreamStats
}

// NewReplayer builds a replayer over assets produced by Build (and
// optionally trained or snapshot-restored). The zero fork point means the
// whole stream is re-executed and emitted — verify mode.
func NewReplayer(a *Assets, cfg Config) *Replayer {
	return &Replayer{
		cfg:    cfg.withDefaults(),
		a:      a,
		state:  a.Home.InitialState(),
		origin: true,
	}
}

// SeedSnapshot primes the replayer's runtime state from a checkpoint
// generation: environment state, violation count, and the per-kind
// sequence counters that make already-covered WAL records no-ops.
func (r *Replayer) SeedSnapshot(ck *Snapshot) {
	if len(ck.State) == len(r.state) {
		r.state = ck.State
	}
	r.violations = ck.Violations
	r.events = ck.Events
	r.steps = ck.OnlineSteps
	r.recs = ck.Recommends
	r.learnSteps = ck.LearnSteps
	if ck.Events > 0 || ck.OnlineSteps > 0 || ck.Recommends > 0 {
		r.origin = false
	}
}

// ForkAt arranges for mutate (nil for a pure re-execution) to run just
// before the first record at or past event sequence number at. Decisions
// are emitted only from the fork on, so two replays forked at the same
// point yield position-aligned, comparable streams.
func (r *Replayer) ForkAt(at int, mutate func(*Assets) error) {
	r.at = at
	r.mutate = mutate
}

// Decisions returns the regenerated decision stream (post-fork only).
func (r *Replayer) Decisions() []Decision { return r.decisions }

// Stats returns the replay's stream statistics.
func (r *Replayer) Stats() StreamStats {
	st := r.stats
	st.Violations = r.violations
	st.Events = r.events
	st.Transitions = r.steps
	st.Recommends = r.recs
	st.LearnSteps = r.learnSteps
	return st
}

// State returns the replayer's current environment state.
func (r *Replayer) State() env.State { return r.state }

// Origin reports whether this replay covers the stream from the very
// beginning (no checkpoint counters skipped anything) — the case where
// the regenerated stream head-aligns with the recorded decision log.
func (r *Replayer) Origin() bool { return r.origin }

// Run streams every record in the WAL directory through Step. Undecodable
// payloads are skipped (their framing CRC passed, so they are foreign or
// future-format records); a torn tail ends the run cleanly, while sealed
// damage surfaces as wal.ErrCorrupt.
func (r *Replayer) Run(dir string) error {
	c, err := wal.OpenCursor(dir)
	if err != nil {
		return err
	}
	defer c.Close()
	for {
		b, err := c.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		rec, derr := DecodeRecord(b)
		if derr != nil {
			r.cfg.Logf("replay: skipping undecodable record: %v", derr)
			continue
		}
		if err := r.Step(rec); err != nil {
			return err
		}
	}
}

// Step applies one WAL record, mirroring the daemon's live ingest paths.
func (r *Replayer) Step(rec Record) error {
	if !r.forked && r.events >= r.at {
		if err := r.fork(); err != nil {
			return err
		}
	}
	e := r.a.Home.Env
	switch rec.K {
	case KindEvent:
		if rec.N <= r.events {
			return nil // covered by the snapshot this replay restored from
		}
		if rec.D < 0 || rec.D >= e.K() {
			r.cfg.Logf("replay: evt #%d has bad device %d", rec.N, rec.D)
			return nil
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		next, err := e.Transition(r.state, a)
		if err != nil {
			r.cfg.Logf("replay: evt #%d does not apply: %v", rec.N, err)
			return nil
		}
		// Re-derive the safety verdict instead of trusting the journaled
		// flag: the restored P_safe is deterministic, and recomputing keeps
		// the replayed violation count honest even against a stale record.
		unsafe := !r.a.Sys.SafeTable().SafeTransition(e.StateKey(r.state), e.StateKey(next), a)
		if unsafe {
			r.violations++
		}
		r.state = next
		r.events++
		if r.forked {
			verdict := "safe"
			if unsafe {
				verdict = "unsafe"
				r.stats.Unsafe++
			}
			r.emit(Decision{
				Kind: "event", Seq: r.events, Minute: rec.M,
				State:   stateNames(e, r.state),
				Action:  e.FormatAction(a),
				Verdict: verdict,
			})
		}

	case KindTransition:
		if rec.N <= r.steps {
			return nil
		}
		if len(rec.S) != e.K() || rec.D < 0 || rec.D >= e.K() {
			r.cfg.Logf("replay: txn #%d malformed", rec.N)
			return nil
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		r.ingestTransition(rec.S, a, rec.M)

	case KindRecommend:
		if rec.N <= r.recs {
			return nil
		}
		r.recs++
		if !r.forked {
			// A recommendation has no state effect; pre-fork ones need no
			// re-execution, only the counter.
			return nil
		}
		d, err := r.a.Sys.RecommendDecision(r.state, rec.M)
		if err != nil {
			return fmt.Errorf("replay: rec #%d: %w", rec.N, err)
		}
		verdict := "safe"
		if d.Degraded {
			verdict = "degraded"
			r.stats.Degraded++
		}
		if next, terr := e.Transition(r.state, d.Action); terr == nil {
			// The same P_safe cross-check the daemon runs before handing a
			// recommendation out.
			if !r.a.Sys.SafeTable().SafeTransition(e.StateKey(r.state), e.StateKey(next), d.Action) {
				verdict = "unsafe"
				r.stats.Unsafe++
			}
		}
		if rw := r.a.SimCfg.Reward; rw != nil {
			r.stats.RecommendReward += rw.R(r.state, d.Action, rec.M)
		}
		r.emit(Decision{
			Kind: "recommend", Seq: r.recs, Minute: rec.M,
			State:    stateNames(e, r.state),
			Action:   e.FormatAction(d.Action),
			Q:        d.Value,
			Degraded: d.Degraded,
			Verdict:  verdict,
		})

	default:
		r.cfg.Logf("replay: unknown record kind %q", rec.K)
	}
	return nil
}

// ingestTransition feeds one recorded transition into the online learner
// exactly as the daemon's live path does: reward + replay buffer via
// ObserveTransition, then one learn step every OnlineTrainEvery
// transitions, drawn from an RNG seeded only by (seed, transition count).
func (r *Replayer) ingestTransition(prev env.State, a env.Action, minute int) {
	r.steps++
	_, reward, err := r.a.Sys.ObserveTransition(prev, a, minute)
	if err != nil {
		r.cfg.Logf("replay: observe failed: %v", err)
		return
	}
	if r.forked {
		r.stats.TransitionReward += reward
	}
	if r.cfg.OnlineTrainEvery > 0 && r.steps%r.cfg.OnlineTrainEvery == 0 {
		ran, err := r.a.Sys.LearnOnline(rl.StepRNG(r.cfg.Seed, r.steps))
		switch {
		case err != nil:
			r.cfg.Logf("replay: learn step failed: %v", err)
		case ran:
			r.learnSteps++
		}
	}
}

func (r *Replayer) fork() error {
	r.forked = true
	if r.mutate != nil {
		if err := r.mutate(r.a); err != nil {
			return fmt.Errorf("replay: fork mutation: %w", err)
		}
	}
	return nil
}

func (r *Replayer) emit(d Decision) {
	r.decisions = append(r.decisions, d)
	r.stats.Decisions++
}

func stateNames(e *env.Environment, s env.State) []string {
	out := make([]string, len(s))
	for i, st := range s {
		out[i] = e.Device(i).Name() + "=" + e.Device(i).StateName(st)
	}
	return out
}
