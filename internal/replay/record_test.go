package replay

import (
	"reflect"
	"testing"

	"jarvis/internal/env"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{K: KindEvent, N: 7, M: 600, D: 3, A: 1, U: true},
		{K: KindTransition, N: 12, M: 1439, D: 0, A: 2, S: env.State{0, 1, 0, 2}},
		{K: KindRecommend, N: 1, M: 0},
	}
	for _, want := range recs {
		b, err := want.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode %s: %v", b, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{[]byte("not json"), []byte(`[1,2,3]`), {0xff, 0x00}} {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("DecodeRecord(%q) decoded garbage", b)
		}
	}
}
