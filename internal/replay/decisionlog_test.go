package replay

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// logDecisionN builds a decision whose Minute encodes its position, so
// reads can assert ordering and retention windows.
func logDecisionN(n int) LoggedDecision {
	return LoggedDecision{
		UnixNs: int64(n), Kind: "recommend", Minute: n,
		State:   []string{"tv=off", "fridge=closed", "padding-so-lines-have-some-width"},
		Action:  "tv:power_on",
		Q:       float64(n) / 7,
		Verdict: "safe",
	}
}

// writeDecisions appends n decisions and syncs the log.
func writeDecisions(t *testing.T, l *DecisionLog, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Record(logDecisionN(i)); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestDecisionLogRotatesAndReadsAcrossFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenDecisionLog(path, LogOptions{MaxBytes: 512, Keep: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	writeDecisions(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rots, err := rotatedFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rots) == 0 {
		t.Fatal("no rotation happened; MaxBytes cap not enforced")
	}
	for _, r := range rots {
		st, err := os.Stat(r.path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > 512 {
			t.Errorf("sealed %s is %d bytes, over the 512-byte cap", r.path, st.Size())
		}
	}

	recs, err := ReadDecisions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d decisions, wrote %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Minute != i {
			t.Fatalf("decision %d has minute %d; rotation broke ordering", i, rec.Minute)
		}
	}
}

func TestDecisionLogRetentionKeepsNewest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenDecisionLog(path, LogOptions{MaxBytes: 512, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	writeDecisions(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rots, err := rotatedFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rots) > 2 {
		t.Fatalf("%d rotated files survive, Keep is 2", len(rots))
	}
	// The surviving stream is a contiguous suffix of what was written.
	recs, err := ReadDecisions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= n {
		t.Fatalf("read %d decisions, want a strict suffix of %d (oldest pruned)", len(recs), n)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Minute != recs[i-1].Minute+1 {
			t.Fatalf("gap inside the surviving window: %d then %d", recs[i-1].Minute, recs[i].Minute)
		}
	}
	if recs[len(recs)-1].Minute != n-1 {
		t.Errorf("newest surviving decision is %d, want %d", recs[len(recs)-1].Minute, n-1)
	}
}

func TestDecisionLogUnboundedNeverRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenDecisionLog(path, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	writeDecisions(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if rots, _ := rotatedFiles(path); len(rots) != 0 {
		t.Fatalf("%d rotated files with rotation disabled", len(rots))
	}
	recs, err := ReadDecisions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d decisions, wrote %d", len(recs), n)
	}
}

func TestDecisionLogReopenContinuesRotationSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenDecisionLog(path, LogOptions{MaxBytes: 512, Keep: 1000})
	if err != nil {
		t.Fatal(err)
	}
	writeDecisions(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	before, _ := rotatedFiles(path)

	l2, err := OpenDecisionLog(path, LogOptions{MaxBytes: 512, Keep: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		if err := l2.Record(logDecisionN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := rotatedFiles(path)
	if len(after) <= len(before) {
		t.Fatalf("reopened log never rotated (%d files before, %d after)", len(before), len(after))
	}
	for i := 1; i < len(after); i++ {
		if after[i].n != after[i-1].n+1 {
			t.Fatalf("rotation numbering has a gap: %d then %d (a reopen reused or skipped a suffix)",
				after[i-1].n, after[i].n)
		}
	}
	recs, err := ReadDecisions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("read %d decisions across the reopen, wrote 40", len(recs))
	}
}

func TestReadDecisionsToleratesTornActiveTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenDecisionLog(path, LogOptions{MaxBytes: 512, Keep: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	writeDecisions(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: the active file ends in half a JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"unixNs":123,"kind":"recomm`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadDecisions(path)
	if err != nil {
		t.Fatalf("torn active tail must be tolerated: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("read %d decisions, want the %d intact ones", len(recs), n)
	}
}

func TestReadDecisionsRejectsSealedDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	// A damaged *sealed* file cannot be a torn tail — rotation fsyncs
	// before renaming — so the reader must refuse rather than silently
	// skip a chunk of history.
	if err := os.WriteFile(fmt.Sprintf("%s.%06d", path, 1), []byte(`{"kind":"recommend"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDecisions(path); err == nil {
		t.Fatal("sealed damage read back without error")
	}
}

func TestReadDecisionsMissingActiveFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	recs, err := ReadDecisions(path)
	if err != nil {
		t.Fatalf("missing log: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("read %d decisions from nothing", len(recs))
	}
}
