package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/env"
)

// SnapshotVersion guards the checkpoint's on-disk format; bump on layout
// changes. v2 added the runtime state a WAL replay builds on (environment
// state, ingest/learn counters, exploration rate, replay buffer); v3 added
// the recommendation counter so replay can skip "rec" records a checkpoint
// already covers.
const SnapshotVersion = 3

// Snapshot is one checkpoint generation: the training configuration it was
// produced under (so a restarted daemon — or a replay — can detect
// mismatches), the learned P_safe, the trained Q function, and the runtime
// state the WAL replays on top of. The daemon writes one per checkpoint
// save; the replay engine reads them to seed re-execution mid-stream.
type Snapshot struct {
	Version      int             `json:"version"`
	Seed         int64           `json:"seed"`
	LearningDays int             `json:"learningDays"`
	Episodes     int             `json:"episodes"`
	Violations   int             `json:"violations"`
	State        env.State       `json:"state,omitempty"`
	Events       int             `json:"events,omitempty"`
	OnlineSteps  int             `json:"onlineSteps,omitempty"`
	LearnSteps   int             `json:"learnSteps,omitempty"`
	Recommends   int             `json:"recommends,omitempty"`
	Epsilon      float64         `json:"epsilon,omitempty"`
	UseDNN       bool            `json:"useDnn,omitempty"`
	Table        json.RawMessage `json:"table"`
	Q            json.RawMessage `json:"q"`
	Replay       json.RawMessage `json:"replay,omitempty"`
}

// Validate rejects a decoded snapshot the given configuration cannot use.
// Every rejection is deterministic — retrying the same bytes cannot help —
// so each is wrapped in checkpoint.ErrCorrupt, which makes the store fall
// back to the previous generation without burning retries.
func (ck *Snapshot) Validate(cfg Config, k int) error {
	cfg = cfg.withDefaults()
	if ck.Version != SnapshotVersion {
		return fmt.Errorf("version %d, want %d: %w", ck.Version, SnapshotVersion, checkpoint.ErrCorrupt)
	}
	if ck.Seed != cfg.Seed || ck.LearningDays != cfg.LearningDays || ck.Episodes != cfg.Episodes {
		return fmt.Errorf("trained with seed=%d days=%d episodes=%d, caller wants seed=%d days=%d episodes=%d: %w",
			ck.Seed, ck.LearningDays, ck.Episodes, cfg.Seed, cfg.LearningDays, cfg.Episodes, checkpoint.ErrCorrupt)
	}
	if ck.UseDNN != cfg.UseDNN {
		// The Q payloads of the two backends are mutually unreadable;
		// omitempty keeps pre-existing tabular snapshots decoding as false.
		return fmt.Errorf("trained with useDnn=%t, caller wants useDnn=%t: %w",
			ck.UseDNN, cfg.UseDNN, checkpoint.ErrCorrupt)
	}
	if len(ck.Table) == 0 || len(ck.Q) == 0 {
		return fmt.Errorf("missing table or Q payload: %w", checkpoint.ErrCorrupt)
	}
	if len(ck.State) != 0 && len(ck.State) != k {
		return fmt.Errorf("state has %d devices, environment has %d: %w", len(ck.State), k, checkpoint.ErrCorrupt)
	}
	return nil
}

// RestoreSnapshot rebuilds the trained system from a snapshot instead of
// training: P_safe, the optimizer wiring, the Q values, the exploration
// rate, and the replay buffer. The runtime counters (Events, OnlineSteps,
// Recommends, Violations, State) are NOT applied here — the caller owns
// where they live (daemon fields or a Replayer).
func (a *Assets) RestoreSnapshot(ck *Snapshot, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := a.Sys.LoadTable(bytes.NewReader(ck.Table)); err != nil {
		return fmt.Errorf("checkpoint table: %w", err)
	}
	if err := a.Sys.Restore(a.SimCfg, a.TrainCfg, bytes.NewReader(ck.Q)); err != nil {
		return err
	}
	if ck.Epsilon > 0 {
		a.Sys.Agent().SetEpsilon(ck.Epsilon)
	}
	if len(ck.Replay) > 0 {
		if err := a.Sys.Agent().ReplayBuffer().Load(bytes.NewReader(ck.Replay)); err != nil {
			// The replay buffer is an accelerant, not ground truth; losing
			// it degrades online learning but nothing else.
			logf("replay: snapshot replay buffer unloadable (%v); starting empty", err)
		}
	}
	return nil
}

// SwapPolicy substitutes the policy the assets serve with: q replaces the
// trained Q function (raw SaveQ bytes), table replaces the learned P_safe
// (Table JSON). Either may be nil to keep the current one. Swapping the
// table rebuilds the agent (the constrained simulator captures the table
// at wiring time) while carrying the replay buffer and exploration rate
// across, so the only thing that changes is the policy itself — the
// counterfactual what-if substitution.
func (a *Assets) SwapPolicy(q, table []byte) error {
	if len(table) > 0 {
		var buf bytes.Buffer
		if err := a.Sys.Agent().ReplayBuffer().Save(&buf); err != nil {
			return fmt.Errorf("swap policy: %w", err)
		}
		eps := a.Sys.Agent().Epsilon()
		if err := a.Sys.LoadTable(bytes.NewReader(table)); err != nil {
			return fmt.Errorf("swap policy table: %w", err)
		}
		if len(q) == 0 {
			var cur bytes.Buffer
			if err := a.Sys.SaveQ(&cur); err != nil {
				return fmt.Errorf("swap policy: %w", err)
			}
			q = cur.Bytes()
		}
		if err := a.Sys.Restore(a.SimCfg, a.TrainCfg, bytes.NewReader(q)); err != nil {
			return fmt.Errorf("swap policy: %w", err)
		}
		a.Sys.Agent().SetEpsilon(eps)
		if err := a.Sys.Agent().ReplayBuffer().Load(bytes.NewReader(buf.Bytes())); err != nil {
			return fmt.Errorf("swap policy: %w", err)
		}
		return nil
	}
	if len(q) > 0 {
		if err := a.Sys.LoadQ(bytes.NewReader(q)); err != nil {
			return fmt.Errorf("swap policy q: %w", err)
		}
	}
	return nil
}

// loadRetry is the snapshot load policy: a few quick attempts absorb
// briefly flaky storage; deterministic rejections skip straight to the
// previous generation.
var loadRetry = checkpoint.LoadOptions{Tries: 3, Backoff: 25 * time.Millisecond}

// OpenStore opens the generation store rooted next to path (generations
// are path.000001, ... plus a MANIFEST in the same directory) for reading
// snapshots. Unlike the daemon it never quarantines a corrupt manifest —
// replay is a read-only consumer of another process's store.
func OpenStore(path string, retain int) (*checkpoint.Store, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	return checkpoint.OpenStore(dir, base, retain, nil)
}

// LoadSnapshot decodes the newest usable generation — one that passes its
// checksum, decodes, and validates against cfg — falling back generation
// by generation. Returns the snapshot and its generation number.
func LoadSnapshot(store *checkpoint.Store, cfg Config, k int) (*Snapshot, uint64, error) {
	var ck Snapshot
	gen, err := store.Load(loadRetry, func(r io.Reader) error {
		ck = Snapshot{}
		if err := json.NewDecoder(r).Decode(&ck); err != nil {
			return fmt.Errorf("decode: %v: %w", err, checkpoint.ErrCorrupt)
		}
		return ck.Validate(cfg, k)
	})
	if err != nil {
		return nil, 0, err
	}
	return &ck, gen, nil
}

// QFromPolicyFile interprets the bytes of a -policy file: a full snapshot
// (a checkpoint generation file) yields its embedded Q function, anything
// else is taken as raw SaveQ bytes.
func QFromPolicyFile(b []byte) []byte {
	var ck Snapshot
	if err := json.Unmarshal(b, &ck); err == nil && ck.Version > 0 && len(ck.Q) > 0 {
		return ck.Q
	}
	return b
}

// TableFromPolicyFile interprets the bytes of a -table file: a full
// snapshot yields its embedded P_safe, anything else is taken as raw
// Table JSON.
func TableFromPolicyFile(b []byte) []byte {
	var ck Snapshot
	if err := json.Unmarshal(b, &ck); err == nil && ck.Version > 0 && len(ck.Table) > 0 {
		return ck.Table
	}
	return b
}
