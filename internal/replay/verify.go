package replay

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"jarvis/internal/experiment"
)

// Source names the recorded artifacts a replay re-executes from.
type Source struct {
	// WALDir is the recorded run's write-ahead log directory.
	WALDir string
	// CheckpointPath, when non-empty, seeds the replay from the newest
	// usable checkpoint generation (the store rooted next to the path,
	// exactly as the daemon would restore it). Empty means the recorded
	// run trained fresh, and so does the replay.
	CheckpointPath string
	// CheckpointRetain matches the daemon's -checkpoint-retain (default 4).
	CheckpointRetain int
}

// prepare rebuilds the serving state the recorded run started from:
// deterministic learning assets, then either a snapshot restore (newest
// usable generation) or fresh training — mirroring newServer's
// restore-or-train decision. Returns the assets, the snapshot used (nil
// when training fresh), and its generation number.
func prepare(cfg Config, src Source) (*Assets, *Snapshot, uint64, error) {
	cfg = cfg.withDefaults()
	a, err := Build(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if src.CheckpointPath != "" {
		retain := src.CheckpointRetain
		if retain <= 0 {
			retain = 4
		}
		st, err := OpenStore(src.CheckpointPath, retain)
		if err == nil {
			ck, gen, lerr := LoadSnapshot(st, cfg, a.Home.Env.K())
			switch {
			case lerr == nil:
				if err := a.RestoreSnapshot(ck, cfg.Logf); err != nil {
					return nil, nil, 0, err
				}
				return a, ck, gen, nil
			case errors.Is(lerr, os.ErrNotExist):
				// Empty store: the recorded run trained fresh too.
			default:
				// Mirror the daemon: a corrupt or mismatched checkpoint falls
				// back to fresh training (and the verify will honestly report
				// any divergence that causes).
				cfg.Logf("replay: checkpoint unavailable (%v); training fresh", lerr)
			}
		} else {
			cfg.Logf("replay: checkpoint store unavailable (%v); training fresh", err)
		}
	}
	if err := a.Train(); err != nil {
		return nil, nil, 0, err
	}
	return a, nil, 0, nil
}

// Divergence pinpoints the first place a regenerated decision stream
// departs from its reference, with both sides of the disagreement.
type Divergence struct {
	// Index is the position within the compared window; Seq is the
	// kind-local WAL sequence number of the replayed decision.
	Index  int    `json:"index"`
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Minute int    `json:"minute"`
	// Reason names the first differing field: "kind", "minute", "state",
	// "action", "q", "degraded", "verdict", "missing-recorded", or
	// "missing-replayed".
	Reason          string   `json:"reason"`
	State           []string `json:"state,omitempty"`
	RecordedAction  string   `json:"recordedAction,omitempty"`
	ReplayedAction  string   `json:"replayedAction,omitempty"`
	RecordedQ       float64  `json:"recordedQ,omitempty"`
	ReplayedQ       float64  `json:"replayedQ,omitempty"`
	RecordedVerdict string   `json:"recordedVerdict,omitempty"`
	ReplayedVerdict string   `json:"replayedVerdict,omitempty"`
}

// VerifyOptions parameterizes a verify-mode replay: same policy, same
// configuration — the regenerated decision stream must be bit-identical
// to the recorded decision log.
type VerifyOptions struct {
	Config Config
	Source Source
	// DecisionLog is the recorded decision log path (read across its
	// rotated files).
	DecisionLog string
	// AllowTruncatedTail tolerates the recorded log ending early: the
	// decision log is buffered, so a SIGKILL loses its unsynced tail while
	// the fsync-per-record WAL keeps everything. Only meaningful when the
	// replay covers the stream from the origin.
	AllowTruncatedTail bool
}

// VerifyReport is the outcome of a verify-mode replay.
type VerifyReport struct {
	Mode          string      `json:"mode"` // "verify"
	WALDir        string      `json:"walDir"`
	Restored      bool        `json:"restored"` // replay seeded from a checkpoint
	CheckpointGen uint64      `json:"checkpointGen,omitempty"`
	Replayed      StreamStats `json:"replayed"`
	// RecordedDecisions counts the decisions read from the decision log;
	// Compared is the size of the aligned comparison window; TailLoss is
	// how many replayed decisions had no recorded counterpart (tolerated
	// crash tail only when AllowTruncatedTail).
	RecordedDecisions int         `json:"recordedDecisions"`
	Compared          int         `json:"compared"`
	TailLoss          int         `json:"tailLoss,omitempty"`
	Match             bool        `json:"match"`
	Divergence        *Divergence `json:"divergence,omitempty"`
	// QFingerprint digests the replayed system's final Q function — equal
	// fingerprints across runs mean identical end states.
	QFingerprint string `json:"qFingerprint,omitempty"`
}

// Verify re-executes the recorded WAL with the run's own configuration
// and asserts the regenerated decision stream matches the recorded
// decision log bit-for-bit on the canonical fields (kind, minute, state,
// action, Q, degraded, verdict). Wall-clock-dependent fields (UnixNs,
// Trace, Anomaly) are excluded by construction — see DESIGN.md §12.
func Verify(opts VerifyOptions) (*VerifyReport, error) {
	a, ck, gen, err := prepare(opts.Config, opts.Source)
	if err != nil {
		return nil, err
	}
	r := NewReplayer(a, opts.Config)
	if ck != nil {
		r.SeedSnapshot(ck)
	}
	if err := r.Run(opts.Source.WALDir); err != nil {
		return nil, err
	}
	recorded, err := ReadDecisions(opts.DecisionLog)
	if err != nil {
		return nil, fmt.Errorf("replay: decision log: %w", err)
	}
	rep := &VerifyReport{
		Mode:              "verify",
		WALDir:            opts.Source.WALDir,
		Restored:          ck != nil,
		CheckpointGen:     gen,
		Replayed:          r.Stats(),
		RecordedDecisions: len(recorded),
		Match:             true,
	}
	if fp, err := a.Sys.QFingerprint(); err == nil {
		rep.QFingerprint = fp
	}
	replayed := r.Decisions()

	// Alignment: an origin replay regenerates the whole stream, so the
	// recorded log head-aligns with it (and may fall short only by a
	// tolerated crash tail). A snapshot-seeded replay regenerates only the
	// tail after the checkpoint, so it tail-aligns against the log.
	var window []LoggedDecision
	if r.Origin() {
		window = recorded
		if len(recorded) > len(replayed) {
			rep.Compared = len(replayed)
			rep.Match = false
			rep.Divergence = &Divergence{
				Index:  len(replayed),
				Reason: "missing-replayed",
				Kind:   recorded[len(replayed)].Kind,
				Minute: recorded[len(replayed)].Minute,
			}
			return rep, nil
		}
		if len(replayed) > len(recorded) {
			rep.TailLoss = len(replayed) - len(recorded)
			if !opts.AllowTruncatedTail {
				rep.Match = false
				d := replayed[len(recorded)]
				rep.Divergence = &Divergence{
					Index: len(recorded), Seq: d.Seq, Kind: d.Kind, Minute: d.Minute,
					Reason: "missing-recorded", ReplayedAction: d.Action,
				}
			}
		}
	} else {
		if len(recorded) < len(replayed) {
			rep.Match = false
			d := replayed[0]
			rep.Divergence = &Divergence{
				Index: 0, Seq: d.Seq, Kind: d.Kind, Minute: d.Minute,
				Reason: "missing-recorded", ReplayedAction: d.Action,
			}
			return rep, nil
		}
		window = recorded[len(recorded)-len(replayed):]
	}
	n := len(window)
	if len(replayed) < n {
		n = len(replayed)
	}
	rep.Compared = n
	for i := 0; i < n; i++ {
		if d := diffDecision(i, window[i], replayed[i]); d != nil {
			rep.Match = false
			rep.Divergence = d
			break
		}
	}
	return rep, nil
}

// diffDecision compares one recorded decision against its replayed
// counterpart on the canonical fields, reporting nil on an exact match.
func diffDecision(i int, rec LoggedDecision, rep Decision) *Divergence {
	d := &Divergence{
		Index: i, Seq: rep.Seq, Kind: rep.Kind, Minute: rep.Minute,
		State:          rep.State,
		RecordedAction: rec.Action, ReplayedAction: rep.Action,
		RecordedQ: rec.Q, ReplayedQ: rep.Q,
		RecordedVerdict: rec.Verdict, ReplayedVerdict: rep.Verdict,
	}
	switch {
	case rec.Kind != rep.Kind:
		d.Reason = "kind"
	case rec.Minute != rep.Minute:
		d.Reason = "minute"
	case !sameStrings(rec.State, rep.State):
		d.Reason = "state"
	case rec.Action != rep.Action:
		d.Reason = "action"
	case rec.Q != rep.Q:
		d.Reason = "q"
	case rec.Degraded != rep.Degraded:
		d.Reason = "degraded"
	case rec.Verdict != rep.Verdict:
		d.Reason = "verdict"
	default:
		return nil
	}
	return d
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WhatIfOptions parameterizes a counterfactual replay: the recorded
// stream is re-executed twice from the same rebuilt base state — once
// as-recorded (baseline) and once with a substituted policy (variant,
// swapped in at the fork point) — and the two regenerated decision
// streams are diffed.
type WhatIfOptions struct {
	Config Config
	Source Source
	// At is the event sequence number to fork at: records up to event At
	// replay identically on both sides, the substitution applies from
	// there on. 0 substitutes from the very beginning.
	At int
	// PolicyQ, when non-empty, replaces the Q function from the fork on
	// (raw SaveQ bytes; see QFromPolicyFile for reading checkpoint files).
	PolicyQ []byte
	// Table, when non-empty, replaces the P_safe table from the fork on.
	Table []byte
}

// WhatIfReport is the outcome of a counterfactual replay.
type WhatIfReport struct {
	Mode   string `json:"mode"` // "whatif"
	WALDir string `json:"walDir"`
	At     int    `json:"at"`

	Baseline StreamStats `json:"baseline"`
	Variant  StreamStats `json:"variant"`
	// BaselineQ / VariantQ fingerprint each side's final Q function.
	BaselineQ string `json:"baselineQ,omitempty"`
	VariantQ  string `json:"variantQ,omitempty"`

	// Compared counts the position-aligned decision pairs; divergence is
	// a differing action or verdict (Q values differ trivially between
	// policies and are not counted).
	Compared             int     `json:"compared"`
	ActionDivergences    int     `json:"actionDivergences"`
	ActionDivergenceRate float64 `json:"actionDivergenceRate"`
	// FirstDivergenceSeq is the kind-local WAL sequence number of the
	// first divergent decision (-1 when the streams agree everywhere).
	FirstDivergenceSeq int         `json:"firstDivergenceSeq"`
	Divergence         *Divergence `json:"divergence,omitempty"`

	// RewardDelta is variant minus baseline counterfactual recommendation
	// reward; ViolationDelta likewise for safety violations (event
	// violations plus unsafe-verdict recommendations).
	RewardDelta    float64 `json:"rewardDelta"`
	ViolationDelta int     `json:"violationDelta"`
}

// WhatIf replays the recorded stream twice — as-recorded and with the
// substituted policy — and reports how the decision streams differ.
func WhatIf(opts WhatIfOptions) (*WhatIfReport, error) {
	if len(opts.PolicyQ) == 0 && len(opts.Table) == 0 {
		return nil, errors.New("replay: what-if needs a substituted policy (Q and/or table)")
	}
	run := func(mutate func(*Assets) error) (*Replayer, error) {
		a, ck, _, err := prepare(opts.Config, opts.Source)
		if err != nil {
			return nil, err
		}
		r := NewReplayer(a, opts.Config)
		if ck != nil {
			r.SeedSnapshot(ck)
		}
		r.ForkAt(opts.At, mutate)
		if err := r.Run(opts.Source.WALDir); err != nil {
			return nil, err
		}
		return r, nil
	}
	base, err := run(nil)
	if err != nil {
		return nil, err
	}
	vari, err := run(func(a *Assets) error {
		return a.SwapPolicy(opts.PolicyQ, opts.Table)
	})
	if err != nil {
		return nil, err
	}

	rep := &WhatIfReport{
		Mode:               "whatif",
		WALDir:             opts.Source.WALDir,
		At:                 opts.At,
		Baseline:           base.Stats(),
		Variant:            vari.Stats(),
		FirstDivergenceSeq: -1,
	}
	if fp, err := base.a.Sys.QFingerprint(); err == nil {
		rep.BaselineQ = fp
	}
	if fp, err := vari.a.Sys.QFingerprint(); err == nil {
		rep.VariantQ = fp
	}
	bd, vd := base.Decisions(), vari.Decisions()
	n := len(bd)
	if len(vd) < n {
		n = len(vd)
	}
	rep.Compared = n
	for i := 0; i < n; i++ {
		if bd[i].Action != vd[i].Action {
			rep.ActionDivergences++
		}
		if rep.FirstDivergenceSeq < 0 && (bd[i].Action != vd[i].Action || bd[i].Verdict != vd[i].Verdict) {
			rep.FirstDivergenceSeq = vd[i].Seq
			rep.Divergence = &Divergence{
				Index: i, Seq: vd[i].Seq, Kind: vd[i].Kind, Minute: vd[i].Minute,
				Reason:         "action",
				State:          vd[i].State,
				RecordedAction: bd[i].Action, ReplayedAction: vd[i].Action,
				RecordedQ: bd[i].Q, ReplayedQ: vd[i].Q,
				RecordedVerdict: bd[i].Verdict, ReplayedVerdict: vd[i].Verdict,
			}
			if bd[i].Action == vd[i].Action {
				rep.Divergence.Reason = "verdict"
			}
		}
	}
	if n > 0 {
		rep.ActionDivergenceRate = float64(rep.ActionDivergences) / float64(n)
	}
	rep.RewardDelta = rep.Variant.RecommendReward - rep.Baseline.RecommendReward
	rep.ViolationDelta = (rep.Variant.Violations + rep.Variant.Unsafe) -
		(rep.Baseline.Violations + rep.Baseline.Unsafe)
	return rep, nil
}

// VerifySweep fans independent verifications across the experiment
// harness's bounded worker pool — e.g. one recorded run per seed — and
// returns the reports in input order.
func VerifySweep(opts []VerifyOptions) ([]*VerifyReport, error) {
	return experiment.Parallel(experiment.Seeds(0, len(opts)),
		func(i int, _ *rand.Rand) (*VerifyReport, error) { return Verify(opts[i]) })
}

// WhatIfSweep fans independent counterfactual replays across the worker
// pool, one per option set.
func WhatIfSweep(opts []WhatIfOptions) ([]*WhatIfReport, error) {
	return experiment.Parallel(experiment.Seeds(0, len(opts)),
		func(i int, _ *rand.Rand) (*WhatIfReport, error) { return WhatIf(opts[i]) })
}
