package replay

import (
	"path/filepath"
	"reflect"
	"testing"

	"jarvis/internal/env"
	"jarvis/internal/wal"
)

// testConfig keeps the learning phase cheap; every sub-run of these tests
// must use the identical value or divergence is by construction.
var testConfig = Config{Seed: 1, LearningDays: 2, Episodes: 2, OnlineTrainEvery: 4}

// buildTrained builds and trains one fresh asset set under testConfig.
func buildTrained(t *testing.T) *Assets {
	t.Helper()
	a, err := Build(testConfig)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := a.Train(); err != nil {
		t.Fatalf("train: %v", err)
	}
	return a
}

// synthesizeWAL journals a scripted run — n legal device events, each with
// its learning transition, and one recommendation after every 4th — into a
// fresh WAL directory, exactly as the daemon's serving path would.
func synthesizeWAL(t *testing.T, a *Assets, dir string, n int) {
	t.Helper()
	w, err := wal.Open(dir, wal.Options{Policy: wal.SyncOnRotate})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	defer w.Close()
	script := []struct{ device, action string }{
		{"tv", "power_on"}, {"fridge", "open_door"},
		{"tv", "power_off"}, {"fridge", "close_door"},
	}
	e := a.Home.Env
	state := a.Home.InitialState()
	appendRec := func(rec Record) {
		t.Helper()
		b, err := rec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatalf("wal append: %v", err)
		}
	}
	events, recs := 0, 0
	for i := 0; i < n; i++ {
		sc := script[i%len(script)]
		di, ok := e.DeviceIndex(sc.device)
		if !ok {
			t.Fatalf("no device %q", sc.device)
		}
		act, ok := e.Device(di).ActionID(sc.action)
		if !ok {
			t.Fatalf("%s has no action %q", sc.device, sc.action)
		}
		action := env.NoOp(e.K())
		action[di] = act
		next, err := e.Transition(state, action)
		if err != nil {
			t.Fatalf("event %d (%s %s) illegal from %v: %v", i, sc.device, sc.action, state, err)
		}
		events++
		appendRec(Record{K: KindEvent, N: events, M: 600, D: di, A: act})
		appendRec(Record{K: KindTransition, N: events, M: 600, D: di, A: act, S: state})
		state = next
		if i%4 == 3 {
			recs++
			appendRec(Record{K: KindRecommend, N: recs, M: 600})
		}
	}
}

// writeLog persists a replayed decision stream as the daemon's decision
// log would have recorded it (through the rotating writer, so the read
// side crosses file seams), dropping the last omitTail decisions to model
// a crash losing the buffered tail.
func writeLog(t *testing.T, path string, ds []Decision, omitTail int) {
	t.Helper()
	l, err := OpenDecisionLog(path, LogOptions{MaxBytes: 600, Keep: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds[:len(ds)-omitTail] {
		err := l.Record(LoggedDecision{
			UnixNs: int64(i), Kind: d.Kind, Minute: d.Minute, State: d.State,
			Action: d.Action, Q: d.Q, Degraded: d.Degraded, Verdict: d.Verdict,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayerIsSelfConsistent is the engine's determinism contract, with
// no daemon in the loop: replay a synthetic WAL once and record its
// decision stream, then Verify — which rebuilds everything from scratch —
// must reproduce that stream bit for bit, and a crash-truncated log must
// verify only under AllowTruncatedTail.
func TestReplayerIsSelfConsistent(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	a1 := buildTrained(t)
	synthesizeWAL(t, a1, walDir, 32)

	r1 := NewReplayer(a1, testConfig)
	if err := r1.Run(walDir); err != nil {
		t.Fatalf("replay: %v", err)
	}
	d1 := r1.Decisions()
	st := r1.Stats()
	if st.Events != 32 || st.Transitions != 32 || st.Recommends != 8 {
		t.Fatalf("stats = %+v, want 32 events, 32 transitions, 8 recommends", st)
	}
	if len(d1) != 40 {
		t.Fatalf("replay emitted %d decisions, want 40 (32 events + 8 recommends)", len(d1))
	}
	if st.LearnSteps == 0 {
		t.Fatal("no online learn steps ran; the determinism claim would be vacuous")
	}
	fp1, err := a1.Sys.QFingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Verify rebuilds its own assets from the same Config, re-trains, and
	// re-replays: the regenerated stream must match the recorded one.
	logPath := filepath.Join(dir, "decisions.log")
	writeLog(t, logPath, d1, 0)
	rep, err := Verify(VerifyOptions{
		Config:      testConfig,
		Source:      Source{WALDir: walDir},
		DecisionLog: logPath,
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.Match {
		t.Fatalf("independent rebuild diverged: %+v", rep.Divergence)
	}
	if rep.Compared != len(d1) || rep.TailLoss != 0 {
		t.Errorf("compared %d with tail loss %d, want all %d and none lost", rep.Compared, rep.TailLoss, len(d1))
	}
	if rep.QFingerprint != fp1 {
		t.Errorf("final Q fingerprints differ (%s vs %s): replay is not deterministic", rep.QFingerprint, fp1)
	}

	// A log that lost its buffered tail to a crash: rejected by default,
	// tolerated (and quantified) under AllowTruncatedTail.
	shortPath := filepath.Join(dir, "short.log")
	writeLog(t, shortPath, d1, 3)
	rep, err = Verify(VerifyOptions{
		Config:      testConfig,
		Source:      Source{WALDir: walDir},
		DecisionLog: shortPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match || rep.Divergence == nil || rep.Divergence.Reason != "missing-recorded" {
		t.Fatalf("truncated log passed strict verify: %+v", rep)
	}
	rep, err = Verify(VerifyOptions{
		Config:             testConfig,
		Source:             Source{WALDir: walDir},
		DecisionLog:        shortPath,
		AllowTruncatedTail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match || rep.TailLoss != 3 || rep.Compared != len(d1)-3 {
		t.Fatalf("tolerant verify: match=%v tailLoss=%d compared=%d, want match with 3 lost over %d",
			rep.Match, rep.TailLoss, rep.Compared, len(d1)-3)
	}
}

// TestForkEmitsAlignedTail pins the fork contract: a replay forked at
// event k with no mutation emits exactly the tail of the full stream —
// which is what makes a what-if baseline and variant comparable
// position by position.
func TestForkEmitsAlignedTail(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	a1 := buildTrained(t)
	synthesizeWAL(t, a1, walDir, 24)
	r1 := NewReplayer(a1, testConfig)
	if err := r1.Run(walDir); err != nil {
		t.Fatal(err)
	}
	d1 := r1.Decisions()

	a2 := buildTrained(t)
	r2 := NewReplayer(a2, testConfig)
	r2.ForkAt(13, nil)
	if err := r2.Run(walDir); err != nil {
		t.Fatal(err)
	}
	d2 := r2.Decisions()
	if len(d2) == 0 || len(d2) >= len(d1) {
		t.Fatalf("forked replay emitted %d decisions, want a strict tail of %d", len(d2), len(d1))
	}
	if !reflect.DeepEqual(d2, d1[len(d1)-len(d2):]) {
		t.Fatalf("forked tail diverged from the full stream:\n got %+v\nwant %+v", d2, d1[len(d1)-len(d2):])
	}
	if got := r2.Stats().Decisions; got != len(d2) {
		t.Errorf("stats count %d decisions, stream has %d", got, len(d2))
	}
}
