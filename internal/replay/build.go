// Package replay is a deterministic re-execution engine over the daemon's
// write-ahead log. It rebuilds the exact learning assets a jarvisd run
// started from (fresh training or a checkpoint generation), streams the
// recorded event/transition/recommendation records back through the same
// code paths the live daemon ran, and regenerates the decision stream the
// daemon logged — either to *verify* that the system reproduces its own
// history bit-for-bit, or to ask *what if* an alternative policy had been
// serving from some sequence number on. See DESIGN.md §12.
package replay

import (
	"fmt"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/dataset"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

// Config pins everything the deterministic learning phase depends on. It
// must match the configuration of the run that produced the WAL — the
// daemon persists these fields in every checkpoint generation precisely so
// a replay (or a restart) can detect a mismatch.
type Config struct {
	// Seed drives every stochastic component of the pipeline.
	Seed int64
	// LearningDays is the number of simulated ADL days in the learning
	// phase (default 7).
	LearningDays int
	// Episodes is the optimizer training episode count (default 60).
	Episodes int
	// OnlineTrainEvery runs one replay learn step every N accepted
	// transitions (default 4; negative disables online learning). Must
	// match the recorded run or learning trajectories diverge.
	OnlineTrainEvery int
	// AnomalyFilter trains the benign-anomaly ANN, matching the daemon's
	// -anomaly-filter flag. It changes the learning-phase RNG consumption,
	// so it must match the recorded run.
	AnomalyFilter bool
	// UseDNN selects the deep Q network backend instead of the tabular
	// default, matching the daemon's -dnn flag. The backends serialize
	// differently, so it must match any checkpoint being restored.
	UseDNN bool
	// Logf receives operational messages; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LearningDays <= 0 {
		c.LearningDays = 7
	}
	if c.Episodes <= 0 {
		c.Episodes = 60
	}
	if c.OnlineTrainEvery == 0 {
		c.OnlineTrainEvery = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Assets is everything the deterministic learning phase produces — the
// home, the system with its learned P_safe, and the simulator/trainer
// configuration. Both the daemon (for serving) and the replay engine (for
// re-execution) build the same assets from the same Config.
type Assets struct {
	Home     *smarthome.FullHome
	Sys      *jarvis.System
	SimCfg   rl.SimConfig
	TrainCfg jarvis.TrainConfig
}

// Build runs the (cheap, deterministic) learning phase: simulate the ADL
// days, learn P_safe, and assemble the reward and agent configuration.
// The (expensive) optimizer training is NOT run here — call Train, or
// RestoreSnapshot with a checkpoint generation.
func Build(cfg Config) (*Assets, error) {
	cfg = cfg.withDefaults()
	home := smarthome.NewFullHome()
	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: cfg.Seed, Filter: cfg.AnomalyFilter})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	days, err := gen.Days(start, cfg.LearningDays, rng)
	if err != nil {
		return nil, fmt.Errorf("learning phase: %w", err)
	}
	if cfg.AnomalyFilter {
		// The filter must be trained before Learn so the SPL can consult
		// it while observing the learning episodes.
		anoms, err := dataset.SynthesizeAnomalies(home, days, 400, rng)
		if err != nil {
			return nil, fmt.Errorf("anomaly synthesis: %w", err)
		}
		normals, err := dataset.NormalSamples(days, 400, rng)
		if err != nil {
			return nil, fmt.Errorf("normal samples: %w", err)
		}
		if _, err := sys.TrainFilter(append(anoms, normals...)); err != nil {
			return nil, fmt.Errorf("filter training: %w", err)
		}
	}
	eps := dataset.Episodes(days)
	sys.Learn(eps)
	if err := sys.AllowManual(home.Thermostat, smarthome.ThermostatActOff); err != nil {
		return nil, err
	}

	ctx := days[len(days)-1].Context
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, ctx.Prices, 0.4, 0.3, 0.3),
		Preferred: sys.PreferredTimes(eps),
		Instances: smarthome.InstancesPerDay,
		Routine: map[int]bool{
			home.LivingLight: true, home.BedLight: true, home.Thermostat: true,
			home.Oven: true, home.TV: true, home.Washer: true, home.Dishwasher: true,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Assets{
		Home:   home,
		Sys:    sys,
		SimCfg: rl.SimConfig{Initial: home.InitialState(), Reward: rs},
		TrainCfg: jarvis.TrainConfig{
			Agent: rl.AgentConfig{
				Episodes: cfg.Episodes, DecideEvery: 15, ReplayEvery: 4,
			},
			UseDNN: cfg.UseDNN,
		},
	}, nil
}

// Train runs the optimizer (Algorithm 2) on freshly built assets — the
// state a daemon starts serving from when no checkpoint is available.
func (a *Assets) Train() error {
	if _, err := a.Sys.Train(a.SimCfg, a.TrainCfg); err != nil {
		return fmt.Errorf("optimizer training: %w", err)
	}
	return nil
}
