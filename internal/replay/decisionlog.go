package replay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// LoggedDecision is one line of the structured decision log (JSON lines,
// append-only): a recommendation the daemon produced or an applied event
// it checked, with the state it saw, the action, the Q value backing a
// recommendation, and the policy verdict ("safe", "unsafe", or
// "degraded"). The log makes the safety behavior auditable offline: every
// deny and every degraded fallback is on disk, not just in an aggregate
// counter — and the replay engine regenerates exactly this stream from
// the WAL to prove it.
type LoggedDecision struct {
	UnixNs   int64    `json:"unixNs"`
	Kind     string   `json:"kind"` // "recommend" | "event"
	Minute   int      `json:"minute"`
	State    []string `json:"state"`
	Action   string   `json:"action"`
	Q        float64  `json:"q,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
	Verdict  string   `json:"verdict"`
	// Trace is the hex trace ID when this request was sampled by the span
	// tracer — the join key into /debug/traces.
	Trace string `json:"trace,omitempty"`
	// Anomaly is the benign-anomaly ANN's score for a recommendation's
	// transition (only with -anomaly-filter).
	Anomaly float64 `json:"anomaly,omitempty"`
}

// LogOptions tunes the decision log's size-capped rotation. The zero
// value keeps today's behavior: one unbounded file, no rotation.
type LogOptions struct {
	// MaxBytes rotates the active file once appending a record would push
	// it past this size (0 = never rotate).
	MaxBytes int64
	// Keep caps the rotated files retained beside the active one; the
	// oldest are deleted first (default 4 when rotation is enabled).
	Keep int
}

func (o LogOptions) withDefaults() LogOptions {
	if o.MaxBytes > 0 && o.Keep <= 0 {
		o.Keep = 4
	}
	return o
}

// DecisionLog appends decision records to a file as JSON lines, rotating
// the file once it reaches LogOptions.MaxBytes: the active file is
// flushed, fsynced, and renamed to path.NNNNNN (ascending, newest
// highest), and the oldest rotated files beyond Keep are deleted. Writes
// are buffered; Sync flushes the buffer and fsyncs so a crash loses at
// most the entries since the last Sync — rotation itself always fsyncs,
// so a sealed rotated file is never torn. Safe for concurrent use.
type DecisionLog struct {
	path string
	opts LogOptions

	mu      sync.Mutex
	f       *os.File
	buf     []byte // pending encoded lines
	size    int64  // bytes in the active file (including unflushed)
	nextRot uint64 // next rotation suffix
}

// OpenDecisionLog opens (or creates) the decision log at path.
func OpenDecisionLog(path string, opts LogOptions) (*DecisionLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &DecisionLog{path: path, opts: opts.withDefaults(), f: f, size: st.Size(), nextRot: 1}
	if rots, err := rotatedFiles(path); err == nil && len(rots) > 0 {
		l.nextRot = rots[len(rots)-1].n + 1
	}
	return l, nil
}

// Record appends one decision line, rotating first when the active file
// would exceed the size cap.
func (l *DecisionLog) Record(rec LoggedDecision) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.MaxBytes > 0 && l.size > 0 && l.size+int64(len(line)) > l.opts.MaxBytes {
		if err := l.rotateLocked(); err != nil {
			return fmt.Errorf("decision log rotate: %w", err)
		}
	}
	l.buf = append(l.buf, line...)
	l.size += int64(len(line))
	// A bounded buffer: flush (without fsync) once enough lines batched.
	if len(l.buf) >= 32<<10 {
		return l.flushLocked()
	}
	return nil
}

// rotateLocked seals the active file as path.NNNNNN and opens a fresh
// one. The seal is durable (flush + fsync + directory fsync) before the
// rename is reported successful, and retention prunes the oldest rotated
// files beyond Keep.
func (l *DecisionLog) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	rotated := fmt.Sprintf("%s.%06d", l.path, l.nextRot)
	if err := os.Rename(l.path, rotated); err != nil {
		return err
	}
	l.nextRot++
	if err := syncParentDir(l.path); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size = f, 0
	if rots, err := rotatedFiles(l.path); err == nil && l.opts.Keep > 0 {
		for len(rots) > l.opts.Keep {
			os.Remove(rots[0].path) // best-effort retention
			rots = rots[1:]
		}
	}
	return syncParentDir(l.path)
}

func (l *DecisionLog) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// Sync flushes buffered lines to the OS and fsyncs the file.
func (l *DecisionLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes, fsyncs, and closes the log, returning the first error.
func (l *DecisionLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

type rotatedFile struct {
	path string
	n    uint64
}

// rotatedFiles lists path's rotated siblings (path.NNNNNN), oldest first.
func rotatedFiles(path string) ([]rotatedFile, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []rotatedFile
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, base+".") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(name, base+"."), 10, 64)
		if err != nil {
			continue // foreign file (e.g. path.bak); leave it alone
		}
		out = append(out, rotatedFile{path: filepath.Join(dir, name), n: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n < out[j].n })
	return out, nil
}

// ReadDecisions reads the decision stream at path across its rotated
// files, oldest first, ending with the active file. A torn trailing line
// in the active file (a crash mid-append) is tolerated; damage anywhere
// else is an error.
func ReadDecisions(path string) ([]LoggedDecision, error) {
	rots, err := rotatedFiles(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	files := make([]string, 0, len(rots)+1)
	for _, r := range rots {
		files = append(files, r.path)
	}
	files = append(files, path)
	var out []LoggedDecision
	for i, fp := range files {
		last := i == len(files)-1
		b, err := os.ReadFile(fp)
		if err != nil {
			if os.IsNotExist(err) && last {
				break // no active file yet
			}
			return nil, err
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		for dec.More() {
			var rec LoggedDecision
			if err := dec.Decode(&rec); err != nil {
				if last {
					// Torn tail from a crash mid-append: everything decoded
					// so far is intact (rotation fsyncs sealed files).
					return out, nil
				}
				return nil, fmt.Errorf("decision log %s: %w", fp, err)
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// syncParentDir fsyncs path's directory so renames and creates survive
// power loss; filesystems that cannot sync directory handles are treated
// as best-effort.
func syncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isDirSyncUnsupported(err) {
		return err
	}
	return nil
}

// isDirSyncUnsupported reports whether a directory fsync failed because
// the filesystem does not support syncing directory handles.
func isDirSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
