// Package metrics provides the evaluation statistics the experiment
// harness reports: confusion matrices, ROC curves with AUC, and simple
// series summaries.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Confusion is a binary confusion matrix. The positive class is whatever
// the experiment defines (benign anomalies for the SPL filter).
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *Confusion) Add(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		c.TP++
	case predictedPositive && !actuallyPositive:
		c.FP++
	case !predictedPositive && actuallyPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// TPR returns the true-positive rate (recall), or 0 when undefined.
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false-positive rate, or 0 when undefined.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.3f tpr=%.3f fpr=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Accuracy(), c.TPR(), c.FPR())
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC computes the ROC curve of a scored binary classifier: scores[i] is
// the model's positive-class score and labels[i] the ground truth. Points
// are returned in ascending FPR order, spanning (0,0) to (1,1).
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("metrics: %d scores vs %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, errors.New("metrics: empty input")
	}
	type sample struct {
		score float64
		pos   bool
	}
	samples := make([]sample, len(scores))
	var totPos, totNeg int
	for i := range scores {
		samples[i] = sample{scores[i], labels[i]}
		if labels[i] {
			totPos++
		} else {
			totNeg++
		}
	}
	if totPos == 0 || totNeg == 0 {
		return nil, errors.New("metrics: ROC needs both classes")
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].score > samples[j].score })

	points := []ROCPoint{{Threshold: math.Inf(1), TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(samples); {
		// advance over ties
		th := samples[i].score
		for i < len(samples) && samples[i].score == th {
			if samples[i].pos {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, ROCPoint{
			Threshold: th,
			TPR:       float64(tp) / float64(totPos),
			FPR:       float64(fp) / float64(totNeg),
		})
	}
	return points, nil
}

// AUC integrates a ROC curve by the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	var auc float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		auc += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return auc
}

// Summary holds simple descriptive statistics of a series.
type Summary struct {
	N                   int
	Mean, Min, Max, Std float64
}

// Summarize computes a Summary. An empty series yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	return s
}

// Sparkline renders a quick textual plot of a series (for CLI output).
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	s := Summarize(xs)
	span := s.Max - s.Min
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - s.Min) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
