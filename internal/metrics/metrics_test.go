package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-3.0/5) > 1e-12 {
		t.Errorf("Accuracy = %g", got)
	}
	if got := c.TPR(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("TPR = %g", got)
	}
	if got := c.FPR(); math.Abs(got-1.0/2) > 1e-12 {
		t.Errorf("FPR = %g", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision = %g", got)
	}
	if c.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestConfusionEmptyIsSafe(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.TPR() != 0 || c.FPR() != 0 || c.Precision() != 0 {
		t.Error("empty confusion should return zeros, not NaN")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	points, err := ROC(scores, labels)
	if err != nil {
		t.Fatalf("ROC: %v", err)
	}
	if auc := AUC(points); math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %g, want 1", auc)
	}
	// Endpoints.
	first, last := points[0], points[len(points)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Errorf("first point = %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("last point = %+v", last)
	}
}

func TestROCRandomClassifier(t *testing.T) {
	// Interleaved scores: AUC ≈ 0.5.
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}
	labels := []bool{true, false, true, false, true, false, true, false}
	points, err := ROC(scores, labels)
	if err != nil {
		t.Fatalf("ROC: %v", err)
	}
	if auc := AUC(points); math.Abs(auc-0.5) > 0.15 {
		t.Errorf("AUC = %g, want ≈0.5", auc)
	}
}

func TestROCTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	points, err := ROC(scores, labels)
	if err != nil {
		t.Fatalf("ROC: %v", err)
	}
	// One tie block: (0,0) then (1,1).
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if auc := AUC(points); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("AUC = %g, want 0.5 on all-tied scores", auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ROC(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class input should error")
	}
}

// Property: AUC is always within [0, 1] and the curve is monotonically
// non-decreasing in both axes.
func TestROCMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		hasPos, hasNeg := false, false
		for i, r := range raw {
			scores[i] = float64(r%100) / 100
			labels[i] = r%2 == 0
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		points, err := ROC(scores, labels)
		if err != nil {
			return false
		}
		for i := 1; i < len(points); i++ {
			if points[i].TPR < points[i-1].TPR || points[i].FPR < points[i-1].FPR {
				return false
			}
		}
		auc := AUC(points)
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %g", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	got := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(got)) != 4 {
		t.Errorf("sparkline runes = %q", got)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}
