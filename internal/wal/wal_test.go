package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func replayAll(t *testing.T, l *Log) []string {
	t.Helper()
	var got []string
	if err := l.Replay(func(rec []byte) error {
		got = append(got, string(rec)) // copy: the buffer is reused
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	want := []string{"one", "two", "", "three with a longer payload"}
	appendAll(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, dir, Options{})
	if rec := l2.Recovery(); rec.Records != len(want) || rec.TruncatedBytes != 0 {
		t.Errorf("recovery = %+v, want %d records, 0 truncated", rec, len(want))
	}
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	var want []string
	for i := 0; i < 20; i++ {
		want = append(want, fmt.Sprintf("record-%02d-padding-padding", i))
	}
	appendAll(t, l, want...)
	if l.Segments() < 2 {
		t.Fatalf("expected rotation, have %d segment(s)", l.Segments())
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{SegmentBytes: 64})
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q (ordering across segments)", i, got[i], want[i])
		}
	}
}

func TestRetentionDropsOldestSealed(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 32, Retain: 2})
	for i := 0; i < 30; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d-xxxxxxxxxxxx", i))
	}
	if got := l.Segments(); got != 3 { // 2 sealed + active
		t.Errorf("segments = %d, want 3 (Retain=2 + active)", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Errorf("%d files on disk, want 3", len(ents))
	}
	// The survivors are the newest records.
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	got := replayAll(t, l2)
	if len(got) == 0 || got[len(got)-1] != "record-29-xxxxxxxxxxxx" {
		t.Errorf("newest record missing after retention: %v", got)
	}
}

// corrupt helpers write raw bytes straight into segment files.
func segFile(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", seq, segSuffix))
}

func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestTornTailVariantsTruncated(t *testing.T) {
	frame := func(payload string) []byte {
		b := make([]byte, headerSize+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum([]byte(payload), castagnoli))
		copy(b[headerSize:], payload)
		return b
	}
	cases := []struct {
		name string
		tail []byte
	}{
		{"partial header", []byte{0x03, 0x00}},
		{"partial payload", frame("abcdef")[:headerSize+3]},
		{"bad checksum", func() []byte {
			b := frame("abcdef")
			b[headerSize] ^= 0xFF
			return b
		}()},
		{"impossible length", func() []byte {
			b := frame("x")
			binary.LittleEndian.PutUint32(b[0:4], MaxRecordBytes+1)
			return b
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			appendAll(t, l, "good-1", "good-2")
			l.Close()
			appendRaw(t, segFile(dir, 1), c.tail)

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open with torn tail must not fail: %v", err)
			}
			defer l2.Close()
			rec := l2.Recovery()
			if rec.Records != 2 {
				t.Errorf("recovered %d records, want 2", rec.Records)
			}
			if rec.TruncatedBytes != int64(len(c.tail)) {
				t.Errorf("truncated %d bytes, want %d", rec.TruncatedBytes, len(c.tail))
			}
			got := replayAll(t, l2)
			if len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
				t.Errorf("replay after truncation = %v", got)
			}
			// Appending after the repair keeps the log healthy.
			appendAll(t, l2, "good-3")
			l2.Close()
			l3 := mustOpen(t, dir, Options{})
			if got := replayAll(t, l3); len(got) != 3 || got[2] != "good-3" {
				t.Errorf("post-repair append lost: %v", got)
			}
		})
	}
}

func TestCorruptSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 32})
	for i := 0; i < 10; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d-xxxxxxxxxxxx", i))
	}
	if l.Segments() < 2 {
		t.Fatal("need at least one sealed segment")
	}
	l.Close()
	appendRaw(t, segFile(dir, 1), []byte{0xDE, 0xAD}) // damage a *sealed* segment

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on sealed-segment damage = %v, want ErrCorrupt", err)
	}
}

func TestResetDiscardsEverything(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 32})
	for i := 0; i < 10; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d-xxxxxxxxxxxx", i))
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := l.Segments(); got != 1 {
		t.Errorf("segments after Reset = %d, want 1", got)
	}
	appendAll(t, l, "fresh")
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	if got := replayAll(t, l2); len(got) != 1 || got[0] != "fresh" {
		t.Errorf("replay after Reset = %v, want [fresh]", got)
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	appendAll(t, l, "x")
	if err := l.Replay(func([]byte) error { return nil }); err == nil {
		t.Error("Replay after Append should error")
	}
}

func TestReplayPropagatesCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "a", "b", "c")
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	boom := errors.New("boom")
	n := 0
	err := l2.Replay(func([]byte) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Replay error = %v, want boom", err)
	}
	if n != 2 {
		t.Errorf("callback ran %d times, want 2 (abort on error)", n)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	if err := l.Append(make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize append = %v, want ErrTooLarge", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	before := telemetry.Default.Snapshot().Counters["wal.syncs"]
	l := mustOpen(t, t.TempDir(), Options{Policy: SyncEveryRecord})
	appendAll(t, l, "a", "b", "c")
	perRecord := telemetry.Default.Snapshot().Counters["wal.syncs"] - before
	if perRecord < 3 {
		t.Errorf("SyncEveryRecord synced %d times for 3 appends", perRecord)
	}

	before = telemetry.Default.Snapshot().Counters["wal.syncs"]
	l2 := mustOpen(t, t.TempDir(), Options{Policy: SyncOnRotate})
	appendAll(t, l2, "a", "b", "c")
	if onRotate := telemetry.Default.Snapshot().Counters["wal.syncs"] - before; onRotate != 0 {
		t.Errorf("SyncOnRotate synced %d times without a rotation", onRotate)
	}

	// SyncInterval with a zero-elapsed window still syncs once the
	// interval passes.
	before = telemetry.Default.Snapshot().Counters["wal.syncs"]
	l3 := mustOpen(t, t.TempDir(), Options{Policy: SyncInterval, Interval: time.Nanosecond})
	time.Sleep(time.Millisecond)
	appendAll(t, l3, "a")
	if n := telemetry.Default.Snapshot().Counters["wal.syncs"] - before; n == 0 {
		t.Error("SyncInterval with an elapsed window did not sync")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "x")
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	if got := replayAll(t, l2); len(got) != 1 || got[0] != "x" {
		t.Errorf("replay with foreign files in dir = %v, want [x]", got)
	}
	for _, name := range []string{"MANIFEST", "notes.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("foreign file %s disturbed: %v", name, err)
		}
	}
}

func TestAppendSteadyStateAllocationFree(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Policy: SyncOnRotate, SegmentBytes: 1 << 30})
	payload := bytes.Repeat([]byte("x"), 256)
	appendAll(t, l, string(payload)) // warm the scratch buffer
	if allocs := testing.AllocsPerRun(100, func() {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Append allocates %.1f times per record at steady state, want 0", allocs)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Policy: SyncOnRotate, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 256)
	if err := l.Append(payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}
