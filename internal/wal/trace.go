package wal

import "jarvis/internal/trace"

// AppendTraced is Append under a "wal.append" child span annotated with the
// payload size — the durability cost inside a traced event's journey. A nil
// span adds one nil check, keeping the allocation-free Append contract for
// untraced writers.
func (l *Log) AppendTraced(sp *trace.Span, payload []byte) error {
	child := sp.Child("wal.append")
	err := l.Append(payload)
	if child != nil {
		child.AnnotateInt("bytes", int64(len(payload)))
		if err != nil {
			child.Annotate("error", err.Error())
		}
		child.End()
	}
	return err
}
