package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"syscall"
)

// errTornFrame reports tail-shaped damage while decoding a frame: a short
// header, short payload, impossible length prefix, or checksum mismatch.
// In the last segment this is a torn write and recovery truncates it; in a
// sealed segment the caller escalates it to ErrCorrupt.
var errTornFrame = errors.New("wal: torn frame")

// frameReader decodes consecutive length-prefixed CRC32C frames from a
// byte stream. The payload buffer is reused between next calls.
type frameReader struct {
	br      *bufio.Reader
	payload []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReader(r)}
}

// next returns the next complete, checksum-valid payload and the number of
// bytes its frame occupies. It returns io.EOF at a clean end of input,
// errTornFrame for tail-shaped damage, and other errors only for I/O
// failures underneath the stream.
func (r *frameReader) next() ([]byte, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF // clean end
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, errTornFrame // torn header
		}
		return nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecordBytes {
		return nil, 0, errTornFrame // impossible length: tail damage
	}
	if cap(r.payload) < int(length) {
		r.payload = make([]byte, length)
	}
	r.payload = r.payload[:length]
	if _, err := io.ReadFull(r.br, r.payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, errTornFrame // torn payload
		}
		return nil, 0, err
	}
	if crc32.Checksum(r.payload, castagnoli) != sum {
		return nil, 0, errTornFrame // checksum mismatch: tail damage
	}
	return r.payload, headerSize + int(length), nil
}

// scanSegment walks one segment's records, invoking fn (when non-nil) on
// each complete, checksum-valid payload. It returns the record count, the
// offset just past the last good record, and the file size; good < total
// means the tail is damaged (torn write or bit rot) and the caller decides
// whether that is repairable (last segment) or fatal (sealed segment).
// The payload buffer is reused between fn calls.
func scanSegment(path string, fn func([]byte) error) (n int, good, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	total = st.Size()
	fr := newFrameReader(f)
	for {
		payload, size, err := fr.next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, errTornFrame) {
				return n, good, total, nil // clean end or tail damage
			}
			return n, good, total, fmt.Errorf("wal: read %s: %w", path, err)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return n, good, total, err
			}
		}
		n++
		good += int64(size)
	}
}

// isSyncUnsupported reports whether a directory fsync failed because the
// filesystem does not support syncing directory handles.
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
