package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"syscall"
)

// scanSegment walks one segment's records, invoking fn (when non-nil) on
// each complete, checksum-valid payload. It returns the record count, the
// offset just past the last good record, and the file size; good < total
// means the tail is damaged (torn write or bit rot) and the caller decides
// whether that is repairable (last segment) or fatal (sealed segment).
// The payload buffer is reused between fn calls.
func scanSegment(path string, fn func([]byte) error) (n int, good, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	total = st.Size()
	br := bufio.NewReader(f)
	var hdr [headerSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return n, good, total, nil // clean end or torn header
			}
			return n, good, total, fmt.Errorf("wal: read %s: %w", path, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordBytes {
			return n, good, total, nil // impossible length: tail damage
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return n, good, total, nil // torn payload
			}
			return n, good, total, fmt.Errorf("wal: read %s: %w", path, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return n, good, total, nil // checksum mismatch: tail damage
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return n, good, total, err
			}
		}
		n++
		good += int64(headerSize) + int64(length)
	}
}

// isSyncUnsupported reports whether a directory fsync failed because the
// filesystem does not support syncing directory handles.
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
