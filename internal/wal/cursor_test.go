package wal

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func cursorAll(t *testing.T, dir string) []string {
	t.Helper()
	c, err := OpenCursor(dir)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	defer c.Close()
	var got []string
	for {
		rec, err := c.Next()
		if errors.Is(err, io.EOF) {
			return got
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, string(rec)) // copy: the buffer is reused
	}
}

func TestCursorWalksAllSegmentsInOrder(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	var want []string
	for i := 0; i < 20; i++ {
		want = append(want, fmt.Sprintf("record-%02d-padding-padding", i))
	}
	appendAll(t, l, want...)
	if l.Segments() < 2 {
		t.Fatal("need rotation for a multi-segment cursor test")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := cursorAll(t, dir) // log still open for writing: cursor is read-only
	if len(got) != len(want) {
		t.Fatalf("cursor saw %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCursorToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "good-1", "good-2")
	l.Close()
	appendRaw(t, segFile(dir, 1), []byte{0x03, 0x00}) // torn header

	got := cursorAll(t, dir)
	if len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
		t.Errorf("cursor over torn tail = %v, want the 2 good records", got)
	}
}

func TestCursorReportsSealedDamage(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 32})
	for i := 0; i < 10; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d-xxxxxxxxxxxx", i))
	}
	if l.Segments() < 2 {
		t.Fatal("need at least one sealed segment")
	}
	l.Close()
	appendRaw(t, segFile(dir, 1), []byte{0xDE, 0xAD})

	c, err := OpenCursor(dir)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	defer c.Close()
	for {
		_, err := c.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cursor over sealed damage = %v, want ErrCorrupt", err)
		}
		break
	}
	if _, err := c.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next after ErrCorrupt = %v, want io.EOF (poisoned)", err)
	}
}

func TestCursorSkipAndPos(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "a", "b", "c", "d")
	l.Close()

	c, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Skip(2); err != nil {
		t.Fatalf("Skip: %v", err)
	}
	if _, _, idx := c.Pos(); idx != 2 {
		t.Errorf("index after Skip(2) = %d, want 2", idx)
	}
	rec, err := c.Next()
	if err != nil || string(rec) != "c" {
		t.Errorf("Next after Skip(2) = %q, %v; want \"c\"", rec, err)
	}
	seg, off, idx := c.Pos()
	if seg != 1 || idx != 3 || off <= 0 {
		t.Errorf("Pos = (%d, %d, %d), want segment 1, positive offset, index 3", seg, off, idx)
	}
	// Skipping past the end stops cleanly.
	if err := c.Skip(100); err != nil {
		t.Errorf("Skip past end = %v, want nil", err)
	}
	if _, err := c.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next at end = %v, want io.EOF", err)
	}
}

func TestCursorEmptyAndMissingDir(t *testing.T) {
	c, err := OpenCursor(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next on empty dir = %v, want io.EOF", err)
	}
	c.Close()

	c2, err := OpenCursor("/nonexistent/jarvis-wal")
	if err != nil {
		t.Fatalf("OpenCursor on missing dir: %v", err)
	}
	if _, err := c2.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next on missing dir = %v, want io.EOF", err)
	}
	c2.Close()
}

func TestSizeBytesTracksBarrier(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	if got := l.SizeBytes(); got != 0 {
		t.Errorf("SizeBytes on empty log = %d, want 0", got)
	}
	for i := 0; i < 20; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d-padding-padding", i))
	}
	want := int64(20 * (headerSize + len("record-00-padding-padding")))
	if got := l.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d across segments", got, want)
	}
	l.Close()

	// Reopen: accounting must survive recovery.
	l2 := mustOpen(t, dir, Options{SegmentBytes: 64})
	if got := l2.SizeBytes(); got != want {
		t.Errorf("SizeBytes after reopen = %d, want %d", got, want)
	}
	// Reset is the checkpoint barrier: the counter rewinds to zero.
	if err := l2.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := l2.SizeBytes(); got != 0 {
		t.Errorf("SizeBytes after Reset = %d, want 0", got)
	}
	appendAll(t, l2, "fresh")
	if got := l2.SizeBytes(); got != int64(headerSize+len("fresh")) {
		t.Errorf("SizeBytes after post-Reset append = %d", got)
	}
}
