package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Cursor is a read-only, offset-addressable iterator over the records of a
// WAL directory, built for replay tooling that must walk a log without
// opening it for writing (the owning daemon may still hold it). The
// segment list is snapshotted at OpenCursor; records appended to segments
// created afterwards are not seen.
//
// Damage semantics match recovery: a torn tail in the final segment ends
// iteration cleanly (io.EOF), while damage inside a sealed segment is
// reported as ErrCorrupt.
type Cursor struct {
	dir  string
	segs []uint64
	i    int // index into segs of the open segment (len(segs) = exhausted)

	f   *os.File
	fr  *frameReader
	seg uint64 // segment number currently open
	off int64  // byte offset past the last record returned from seg
	idx int    // records returned so far
}

// OpenCursor snapshots dir's segment list and positions a cursor before
// the first record. An empty or missing directory yields a cursor whose
// Next immediately returns io.EOF.
func OpenCursor(dir string) (*Cursor, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &Cursor{dir: dir}, nil
		}
		return nil, err
	}
	return &Cursor{dir: dir, segs: segs}, nil
}

// Next returns the next record payload, oldest first. The buffer is reused
// and only valid until the following Next call. It returns io.EOF when the
// log is exhausted (including after a tolerated torn tail in the last
// segment) and ErrCorrupt for damage in a sealed segment.
func (c *Cursor) Next() ([]byte, error) {
	for {
		if c.f == nil {
			if c.i >= len(c.segs) {
				return nil, io.EOF
			}
			seq := c.segs[c.i]
			f, err := os.Open(segmentPath(c.dir, seq))
			if err != nil {
				return nil, fmt.Errorf("wal: cursor: %w", err)
			}
			c.f, c.fr, c.seg, c.off = f, newFrameReader(f), seq, 0
		}
		payload, size, err := c.fr.next()
		switch {
		case err == nil:
			c.off += int64(size)
			c.idx++
			return payload, nil
		case errors.Is(err, io.EOF):
			c.closeSegment()
		case errors.Is(err, errTornFrame):
			last := c.i == len(c.segs)-1
			if !last {
				seq := c.seg
				c.closeSegment()
				c.i = len(c.segs) // poison: further Next calls hit EOF
				return nil, fmt.Errorf("%w: segment %08d damaged at offset %d", ErrCorrupt, seq, c.off)
			}
			c.closeSegment() // torn tail: tolerated, ends iteration
		default:
			return nil, fmt.Errorf("wal: cursor: %w", err)
		}
	}
}

// Skip advances past n records, stopping early (without error) if the log
// ends first. Damage in a sealed segment still reports ErrCorrupt.
func (c *Cursor) Skip(n int) error {
	for ; n > 0; n-- {
		if _, err := c.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Pos reports the cursor position: the open (or last-open) segment number,
// the byte offset just past the last record returned from it, and how many
// records have been returned in total.
func (c *Cursor) Pos() (segment uint64, offset int64, index int) {
	return c.seg, c.off, c.idx
}

// Close releases the open segment, if any. The cursor is unusable after.
func (c *Cursor) Close() error {
	if c.f != nil {
		err := c.f.Close()
		c.f, c.fr = nil, nil
		c.i = len(c.segs)
		return err
	}
	c.i = len(c.segs)
	return nil
}

func (c *Cursor) closeSegment() {
	c.f.Close()
	c.f, c.fr = nil, nil
	c.i++
}
