package wal

import "jarvis/internal/telemetry"

// Metric handles are resolved once at package init so Append — the
// serving-path hot spot — touches only atomics, keeping the journal write
// allocation-free (asserted by BenchmarkWALAppend).
var (
	mAppends          = telemetry.Default.Counter("wal.appends")
	mSyncs            = telemetry.Default.Counter("wal.syncs")
	mRotations        = telemetry.Default.Counter("wal.rotations")
	mResets           = telemetry.Default.Counter("wal.resets")
	mRetired          = telemetry.Default.Counter("wal.segments.retired")
	mRecoveredRecords = telemetry.Default.Counter("wal.recovered.records")
	mTruncatedBytes   = telemetry.Default.Counter("wal.truncated.bytes")
	mSegments         = telemetry.Default.Gauge("wal.segments")
)
