package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"testing"
	"time"
)

// tailDrain reads until the tail reports ErrNoRecord, copying the records.
func tailDrain(t *testing.T, tl *Tail) []string {
	t.Helper()
	var got []string
	for {
		rec, err := tl.Next()
		if errors.Is(err, ErrNoRecord) {
			return got
		}
		if err != nil {
			t.Fatalf("Tail.Next: %v", err)
		}
		got = append(got, string(rec))
	}
}

func TestTailFollowsLiveAppendsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	tl := OpenTail(dir)
	defer tl.Close()

	if _, err := tl.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("empty log: got %v, want ErrNoRecord", err)
	}
	var want []string
	for i := 0; i < 25; i++ {
		rec := fmt.Sprintf("record-%02d-padding-padding", i)
		want = append(want, rec)
		appendAll(t, l, rec)
	}
	if l.Segments() < 2 {
		t.Fatal("need rotation to exercise segment advance")
	}
	got := tailDrain(t, tl)
	if len(got) != len(want) {
		t.Fatalf("tail saw %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// More appends after catching up surface on the next calls.
	appendAll(t, l, "late-1", "late-2")
	if got := tailDrain(t, tl); len(got) != 2 || got[0] != "late-1" || got[1] != "late-2" {
		t.Fatalf("late records = %v", got)
	}
}

func TestTailTornTipIsNoRecordNotCorruption(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "good-1", "good-2")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	tl := OpenTail(dir)
	defer tl.Close()
	if got := tailDrain(t, tl); len(got) != 2 {
		t.Fatalf("got %v, want the 2 good records", got)
	}

	// Simulate a record mid-write at the active tip: full header, partial
	// payload. The tail must report "nothing yet", not corruption, and
	// then surface the record once the remaining bytes land.
	payload := []byte("tail-record")
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	appendRaw(t, segFile(dir, 1), frame[:headerSize+3])
	for i := 0; i < 3; i++ {
		if _, err := tl.Next(); !errors.Is(err, ErrNoRecord) {
			t.Fatalf("torn tip: got %v, want ErrNoRecord", err)
		}
	}
	appendRaw(t, segFile(dir, 1), frame[headerSize+3:])
	rec, err := tl.Next()
	if err != nil {
		t.Fatalf("completed record: %v", err)
	}
	if string(rec) != string(payload) {
		t.Fatalf("completed record = %q, want %q", rec, payload)
	}
}

func TestTailDetectsReset(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "epoch1-a", "epoch1-b")
	tl := OpenTail(dir)
	defer tl.Close()
	if got := tailDrain(t, tl); len(got) != 2 {
		t.Fatalf("epoch 1: got %v", got)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "epoch2-a")
	if _, err := tl.Next(); !errors.Is(err, ErrLogReset) {
		t.Fatalf("after Reset: got %v, want ErrLogReset", err)
	}
	got := tailDrain(t, tl)
	if len(got) != 1 || got[0] != "epoch2-a" {
		t.Fatalf("epoch 2: got %v, want [epoch2-a]", got)
	}
}

func TestTailSealedDamageIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 32})
	appendAll(t, l, "sealed-record-padding", "forces-a-rotation-now", "active-segment-record")
	if l.Segments() < 2 {
		t.Fatal("need a sealed segment")
	}
	// Flip a payload byte in the middle of the first (sealed) segment.
	flipByte(t, segFile(dir, 1), headerSize+2)
	tl := OpenTail(dir)
	defer tl.Close()
	_, err := tl.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed damage: got %v, want ErrCorrupt", err)
	}
}

// TestCursorConcurrentAppendMidFrame pins the replication-shipping
// contract: a reader walking a segment while Append is mid-frame must see
// the complete prefix and a clean end — never ErrCorrupt. The torn state
// is constructed deterministically: a complete log plus the first bytes
// of a frame whose tail has not landed yet.
func TestCursorConcurrentAppendMidFrame(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, "done-1", "done-2", "done-3")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := cursorAll(t, dir); len(got) != 3 {
		t.Fatalf("baseline: cursor saw %d records, want 3", len(got))
	}
	payload := []byte("mid-write")
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	for cut := 1; cut < len(frame); cut++ {
		sub := t.TempDir()
		ls := mustOpen(t, sub, Options{})
		appendAll(t, ls, "done-1", "done-2", "done-3")
		appendRaw(t, segFile(sub, 1), frame[:cut])
		got := cursorAll(t, sub) // fatals on any non-EOF error, incl. ErrCorrupt
		if len(got) != 3 {
			t.Fatalf("cut %d: cursor saw %d records, want 3 complete ones", cut, len(got))
		}
	}
}

// TestTailLiveWriterHammer races a rotating writer against a polling tail
// and requires every record to arrive exactly once, in order. Run under
// -race this also exercises the pread path against concurrent appends.
func TestTailLiveWriterHammer(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256, Policy: SyncOnRotate})
	const n = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := l.Append([]byte(fmt.Sprintf("hammer-%04d", i))); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	tl := OpenTail(dir)
	defer tl.Close()
	var got []string
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < n && time.Now().Before(deadline) {
		rec, err := tl.Next()
		switch {
		case err == nil:
			got = append(got, string(rec))
		case errors.Is(err, ErrNoRecord):
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("Tail.Next after %d records: %v", len(got), err)
		}
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("tail saw %d records, want %d", len(got), n)
	}
	for i, rec := range got {
		if want := fmt.Sprintf("hammer-%04d", i); rec != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
}

// TestCursorConcurrentWithLiveAppends spins cursors over a log that a
// writer is actively appending to and rotating; no iteration may ever
// surface ErrCorrupt, and each must see a strict prefix of the stream.
func TestCursorConcurrentWithLiveAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256, Policy: SyncOnRotate})
	const n = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := l.Append([]byte(fmt.Sprintf("live-%04d", i))); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	for round := 0; round < 50; round++ {
		c, err := OpenCursor(dir)
		if err != nil {
			t.Fatalf("OpenCursor: %v", err)
		}
		seen := 0
		for {
			rec, err := c.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("round %d: Next after %d records: %v", round, seen, err)
			}
			if want := fmt.Sprintf("live-%04d", seen); string(rec) != want {
				t.Fatalf("round %d: record %d = %q, want %q", round, seen, rec, want)
			}
			seen++
		}
		c.Close()
	}
	wg.Wait()
}

// flipByte inverts one byte of a file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
