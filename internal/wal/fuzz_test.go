package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fuzzFrame builds one well-formed frame around payload.
func fuzzFrame(payload []byte) []byte {
	b := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	copy(b[headerSize:], payload)
	return b
}

// FuzzReadSegment throws arbitrary bytes at the segment frame decoder and
// asserts the recovery contract: it never panics, never reads past the
// file, stops at the first damaged frame, and a rescan of the good prefix
// is a fixed point (same records, nothing further truncated). A full Open
// over the same bytes must likewise settle for either a repaired log or
// ErrCorrupt — never a panic or a surfaced bad record.
func FuzzReadSegment(f *testing.F) {
	valid := append(fuzzFrame([]byte("hello")), fuzzFrame([]byte("world, a longer record"))...)
	f.Add(valid)                                     // intact log
	f.Add(valid[:len(valid)-3])                      // torn payload
	f.Add(valid[:len(fuzzFrame([]byte("hello")))+5]) // torn header
	bitflip := append([]byte(nil), valid...)
	bitflip[headerSize+2] ^= 0x40
	f.Add(bitflip) // bit-flipped payload: checksum mismatch
	truncLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(truncLen[0:4], MaxRecordBytes+1)
	f.Add(truncLen) // impossible length prefix
	f.Add([]byte{}) // empty segment
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "00000001"+segSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs int
		n, good, total, err := scanSegment(path, func(p []byte) error {
			// Every surfaced payload must come from the input bytes.
			if len(p) > len(data) {
				t.Fatalf("payload of %d bytes cannot come from %d input bytes", len(p), len(data))
			}
			recs++
			return nil
		})
		if err != nil {
			t.Fatalf("scanSegment on in-memory-backed file: %v", err)
		}
		if n != recs {
			t.Fatalf("reported %d records, surfaced %d", n, recs)
		}
		if total != int64(len(data)) {
			t.Fatalf("total = %d, want file size %d", total, len(data))
		}
		if good < 0 || good > total {
			t.Fatalf("good = %d out of range [0, %d]", good, total)
		}

		// Rescanning the truncated-to-good prefix is a fixed point: clean
		// truncation means the damage was wholly past the last good record.
		if err := os.Truncate(path, good); err != nil {
			t.Fatal(err)
		}
		n2, good2, total2, err := scanSegment(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n2 != n || good2 != good || total2 != good {
			t.Fatalf("rescan of good prefix: (%d, %d, %d), want (%d, %d, %d)", n2, good2, total2, n, good, good)
		}

		// The full recovery path over the original bytes: repaired or
		// ErrCorrupt, never a panic, and the cursor agrees with the scan.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on single-segment damage must repair, got %v", err)
		}
		if rec := l.Recovery(); rec.Records != n {
			t.Fatalf("Open recovered %d records, scan saw %d", rec.Records, n)
		}
		l.Close()

		c, err := OpenCursor(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		walked := 0
		for {
			_, err := c.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("cursor over repaired log: %v", err)
			}
			walked++
		}
		if walked != n {
			t.Fatalf("cursor walked %d records, want %d", walked, n)
		}
	})
}
