// Package wal is a segmented write-ahead log for the Jarvis daemon: an
// append-only journal the serving path writes every ingested event and
// accepted replay transition into *before* applying it, so a kill -9 loses
// nothing that was acknowledged. On restart the daemon replays the log on
// top of its last checkpoint and arrives at the exact pre-crash state —
// the durability contract real-time defense deployments (IoTWarden,
// RESTRAIN) assume of a hub that must stay consistent across failures.
//
// # Record framing
//
// Every record is length-prefixed and checksummed:
//
//	[ length uint32 LE | crc32c(payload) uint32 LE | payload ... ]
//
// The CRC is Castagnoli (CRC32C), hardware-accelerated on amd64/arm64. A
// record is only ever surfaced by Replay if its full payload is present
// and the checksum matches; anything else is a torn tail (see Recovery).
//
// # Segments
//
// Records append to numbered segment files (00000001.wal, 00000002.wal,
// ...). When the active segment exceeds Options.SegmentBytes it is synced,
// sealed, and a new segment opens. Options.Retain caps how many sealed
// segments survive rotation — 0 keeps everything until Reset, which is the
// right setting when the log is truncated at checkpoint barriers.
//
// # Durability
//
// Options.Policy picks the fsync cadence: SyncEveryRecord (each Append is
// durable before it returns — the default, and what an acknowledging
// server should use), SyncInterval (group commit: at most Interval of
// acknowledged-but-unsynced data is exposed to power loss), or
// SyncOnRotate (durability only at segment seams; cheapest, for derived
// data). Segment creation and deletion fsync the directory, so the file
// *names* survive power loss too.
//
// # Recovery
//
// Open scans existing segments oldest-first. A short header, short
// payload, impossible length, or checksum mismatch in the *last* segment
// is a torn tail from the crash: the segment is truncated back to its last
// complete record and appending resumes there — never fatal. The same
// damage in an earlier (sealed) segment cannot be explained by a torn
// write and is reported as ErrCorrupt so the operator can decide. Replay
// then streams every surviving record, in order, to the caller.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when Append data reaches stable storage.
type SyncPolicy int

const (
	// SyncEveryRecord fsyncs after every Append: an acknowledged record is
	// a durable record. The default.
	SyncEveryRecord SyncPolicy = iota
	// SyncInterval fsyncs when at least Options.Interval has elapsed since
	// the last sync (group commit, amortized over bursts).
	SyncInterval
	// SyncOnRotate fsyncs only when a segment seals (and on Sync/Close).
	SyncOnRotate
)

const (
	headerSize = 8
	// MaxRecordBytes bounds one record's payload. Recovery treats any
	// larger length prefix as tail damage rather than trying to allocate
	// it, so a flipped bit in the length field cannot wedge a restart.
	MaxRecordBytes = 16 << 20

	segSuffix = ".wal"
)

// ErrCorrupt reports structural damage that recovery cannot attribute to a
// torn tail write — a bad record in the middle of the log. Torn tails are
// repaired silently; ErrCorrupt means data in a sealed region is gone.
var ErrCorrupt = errors.New("wal: corrupt record in sealed region")

// ErrTooLarge reports an Append payload over MaxRecordBytes.
var ErrTooLarge = errors.New("wal: record exceeds MaxRecordBytes")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is the writable-segment surface a Log needs from the filesystem.
// *os.File satisfies it; tests substitute fault-injecting wrappers through
// Options.OpenFile to exercise torn and failed writes.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// Options tunes a Log. The zero value is usable: 4 MiB segments, keep all
// sealed segments, fsync every record.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). A single record larger than the limit still fits —
	// rotation happens between records, never inside one.
	SegmentBytes int64
	// Retain caps sealed segments kept after a rotation; the oldest are
	// deleted first. 0 keeps everything (Reset is then the only trim).
	Retain int
	// Policy is the fsync cadence (default SyncEveryRecord).
	Policy SyncPolicy
	// Interval is the SyncInterval group-commit window (default 100ms).
	Interval time.Duration
	// OpenFile overrides how segment files open for writing (fault
	// injection). Nil uses os.OpenFile.
	OpenFile func(name string, flag int, perm os.FileMode) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// RecoveryStats reports what Open found on disk.
type RecoveryStats struct {
	// Segments is the number of segment files present after recovery.
	Segments int
	// Records is the number of complete records across all segments.
	Records int
	// TruncatedBytes is how much torn tail was cut from the last segment.
	TruncatedBytes int64
}

// Log is a segmented write-ahead log rooted at one directory. All methods
// are safe for concurrent use; Append is allocation-free at steady state.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           File     // active segment
	seq         uint64   // active segment number
	size        int64    // bytes in the active segment
	sealed      []uint64 // sealed segment numbers, ascending
	sealedBytes int64    // bytes across the sealed segments still on disk
	lastSync    time.Time
	appended    bool // records appended since Open (Replay is pre-append only)
	closed      bool
	rec         RecoveryStats

	// scratch assembles header+payload into one contiguous write so a
	// record hits the file in a single syscall; grown on demand, reused.
	scratch []byte
}

// Open creates dir if needed, recovers the existing log (truncating a torn
// tail in the last segment), and returns a Log ready for Replay and
// Append.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range segs {
		last := i == len(segs)-1
		n, good, total, err := scanSegment(l.segPath(seq), nil)
		if err != nil {
			return nil, err
		}
		l.rec.Records += n
		if !last {
			l.sealedBytes += total
		}
		if good < total {
			if !last {
				return nil, fmt.Errorf("%w: segment %08d has %d damaged trailing bytes", ErrCorrupt, seq, total-good)
			}
			if err := os.Truncate(l.segPath(seq), good); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.rec.TruncatedBytes = total - good
			mTruncatedBytes.Add(total - good)
		}
	}
	l.rec.Segments = len(segs)
	switch len(segs) {
	case 0:
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		l.rec.Segments = 1
	default:
		l.sealed = segs[:len(segs)-1]
		seq := segs[len(segs)-1]
		f, err := l.openFile(l.segPath(seq), os.O_WRONLY|os.O_APPEND)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.seq, l.size = f, seq, st.Size()
	}
	l.lastSync = time.Now()
	mRecoveredRecords.Add(int64(l.rec.Records))
	mSegments.SetInt(int64(len(l.sealed) + 1))
	return l, nil
}

// Recovery reports what Open found (and repaired) on disk.
func (l *Log) Recovery() RecoveryStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rec
}

// Segments returns the number of segment files (sealed + active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// SizeBytes returns the bytes currently on disk across all segments. With
// Retain 0 (keep everything) this is exactly the bytes journalled since
// the last checkpoint barrier (Reset).
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealedBytes + l.size
}

// Replay streams every complete record, oldest first, to fn. It must run
// before the first Append of this process (recovery-time replay); fn
// receives a buffer reused between calls and must not retain it. A non-nil
// fn error aborts the replay and is returned.
func (l *Log) Replay(fn func(rec []byte) error) error {
	l.mu.Lock()
	if l.appended {
		l.mu.Unlock()
		return errors.New("wal: Replay must run before the first Append")
	}
	segs := append(append([]uint64(nil), l.sealed...), l.seq)
	l.mu.Unlock()
	for _, seq := range segs {
		if _, _, _, err := scanSegment(l.segPath(seq), fn); err != nil {
			return err
		}
	}
	return nil
}

// Append journals one record. The payload is copied before return; with
// SyncEveryRecord it is durable before return.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if l.size > 0 && l.size+int64(headerSize+len(payload)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	need := headerSize + len(payload)
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	buf := l.scratch[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(need)
	l.appended = true
	mAppends.Inc()
	switch l.opts.Policy {
	case SyncEveryRecord:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = time.Now()
	mSyncs.Inc()
	return nil
}

// Rotate seals the active segment and opens the next, applying retention.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.sealed = append(l.sealed, l.seq)
	l.sealedBytes += l.size
	if err := l.openSegment(l.seq + 1); err != nil {
		return err
	}
	mRotations.Inc()
	// Retention: drop the oldest sealed segments beyond the cap.
	if l.opts.Retain > 0 {
		for len(l.sealed) > l.opts.Retain {
			seq := l.sealed[0]
			if st, err := os.Stat(l.segPath(seq)); err == nil {
				l.sealedBytes -= st.Size()
			}
			if err := os.Remove(l.segPath(seq)); err != nil {
				return fmt.Errorf("wal: retention: %w", err)
			}
			l.sealed = l.sealed[1:]
			mRetired.Inc()
		}
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	mSegments.SetInt(int64(len(l.sealed) + 1))
	return nil
}

// Reset discards every record and starts an empty log — the checkpoint
// barrier: once a checkpoint durably captures the state the log rebuilt,
// the log itself is no longer needed.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	for _, seq := range append(append([]uint64(nil), l.sealed...), l.seq) {
		if err := os.Remove(l.segPath(seq)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	next := l.seq + 1
	l.sealed = l.sealed[:0]
	l.sealedBytes = 0
	if err := l.openSegment(next); err != nil {
		return err
	}
	mResets.Inc()
	mSegments.SetInt(1)
	return nil
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.f.Close()
}

func (l *Log) segPath(seq uint64) string {
	return segmentPath(l.dir, seq)
}

// segmentPath names segment seq inside dir.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", seq, segSuffix))
}

// openFile opens a segment file for writing through the configured hook.
func (l *Log) openFile(name string, flag int) (File, error) {
	if l.opts.OpenFile != nil {
		return l.opts.OpenFile(name, flag, 0o644)
	}
	return os.OpenFile(name, flag, 0o644)
}

// openSegment creates segment seq and makes it active, fsyncing the
// directory so the new name survives power loss.
func (l *Log) openSegment(seq uint64) error {
	f, err := l.openFile(l.segPath(seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.size = f, seq, 0
	return nil
}

// listSegments returns the segment numbers in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, seq)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// syncDir fsyncs a directory so recent create/remove operations on its
// entries are durable. Filesystems that cannot sync a directory handle
// (returning EINVAL/ENOTSUP) are treated as best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
