package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
)

// Tail follows a live log that another process (or goroutine) is still
// appending to — the read side of WAL shipping. Unlike Cursor, which
// snapshots the segment list once and treats the log as finished, a Tail
// keeps going: Next returns the next complete record when one exists,
// ErrNoRecord when it has caught up with the writer, and ErrLogReset when
// the writer truncated the log at a checkpoint barrier (Reset), at which
// point the tail re-arms at the start of the new log.
//
// Reads use pread (ReadAt) so a torn frame at the tip is retried from the
// same offset on the next call — no reader state is consumed by an
// incomplete record. The hard question is telling a record mid-write from
// sealed-region damage, and the rotation and reset protocols make it
// decidable:
//
//   - rotation syncs and closes segment N *before* creating N+1, so once
//     N+1 exists, N is immutable and must end in a complete record;
//   - Reset removes every segment and opens a strictly higher one, and the
//     daemon runs Retain 0, so a segment vanishing from the directory
//     means barrier, not retention.
//
// So on a short or checksum-failing read at the current offset, Next lists
// the directory: segment gone → ErrLogReset; a later segment exists → this
// one is sealed, re-read once now that it is immutable (a clean end means
// advance, anything else is real ErrCorrupt); otherwise it is the live
// tip → ErrNoRecord, poll again later.
type Tail struct {
	dir string
	f   *os.File
	seq uint64
	off int64
	buf []byte
}

// ErrNoRecord reports that the tail has caught up with the writer: no
// complete record exists past the current position yet. Poll again later.
var ErrNoRecord = errors.New("wal: no record at tip yet")

// ErrLogReset reports that the log was truncated at a checkpoint barrier
// (Reset) since the last read. The tail has re-armed at the start of the
// new log; the caller must re-seed from a checkpoint before reading on.
var ErrLogReset = errors.New("wal: log was reset")

// OpenTail starts following the log in dir from its oldest record. The
// directory does not need to exist yet; Next reports ErrNoRecord until it
// does.
func OpenTail(dir string) *Tail {
	return &Tail{dir: dir}
}

// Next returns the next complete record, ErrNoRecord at the live tip, or
// ErrLogReset after a checkpoint barrier. The returned slice is reused by
// the following Next call; the caller must not retain it.
func (t *Tail) Next() ([]byte, error) {
	for {
		if t.f == nil {
			if err := t.open(); err != nil {
				return nil, err
			}
		}
		payload, n, err := t.readFrame()
		if err == nil {
			t.off += int64(n)
			return payload, nil
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, errTornFrame) {
			return nil, err
		}
		// Short or invalid frame at the current offset: consult the
		// directory to decide between live tip, sealed segment, and reset.
		segs, lerr := listSegments(t.dir)
		if lerr != nil {
			return nil, lerr
		}
		present := false
		var next uint64
		haveNext := false
		for _, s := range segs {
			if s == t.seq {
				present = true
			}
			if s > t.seq && (!haveNext || s < next) {
				next, haveNext = s, true
			}
		}
		if !present {
			// Our segment is gone: checkpoint barrier. Re-arm at the start
			// of whatever log exists now and report the reset once.
			t.reset()
			return nil, ErrLogReset
		}
		if !haveNext {
			// Last segment: an incomplete frame here is a record still
			// being written (or not yet visible) — never corruption.
			return nil, ErrNoRecord
		}
		// A later segment exists, and it was created only after this one
		// was synced and closed — and crucially that listing happened after
		// our failed read. Re-read now that the segment is immutable.
		payload, n, err = t.readFrame()
		switch {
		case err == nil:
			t.off += int64(n)
			return payload, nil
		case errors.Is(err, io.EOF):
			// Clean end of a sealed segment: advance.
			if cerr := t.openSeq(next); cerr != nil {
				return nil, cerr
			}
		case errors.Is(err, errTornFrame):
			return nil, fmt.Errorf("%w: segment %08d damaged at offset %d", ErrCorrupt, t.seq, t.off)
		default:
			return nil, err
		}
	}
}

// Pos reports the current read position (segment number, byte offset).
func (t *Tail) Pos() (seq uint64, off int64) { return t.seq, t.off }

// Close releases the open segment. The tail may be reused afterwards; the
// next call reopens at the same position.
func (t *Tail) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// reset drops the position back to the start of the (new) log.
func (t *Tail) reset() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
	t.seq, t.off = 0, 0
}

// open attaches to the current position: the recorded segment when one is
// set, else the oldest segment on disk.
func (t *Tail) open() error {
	seq := t.seq
	if seq == 0 {
		segs, err := listSegments(t.dir)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return ErrNoRecord // directory not created yet
			}
			return err
		}
		if len(segs) == 0 {
			return ErrNoRecord
		}
		seq = segs[0]
		t.off = 0
	}
	return t.openSeq(seq)
}

// openSeq switches the tail to segment seq at offset 0 (or the retained
// offset when re-attaching to the same segment).
func (t *Tail) openSeq(seq uint64) error {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
	f, err := os.Open(segmentPath(t.dir, seq))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Raced a Reset between listing and open: re-arm.
			t.seq, t.off = 0, 0
			return ErrLogReset
		}
		return fmt.Errorf("wal: tail: %w", err)
	}
	if seq != t.seq {
		t.off = 0
	}
	t.f, t.seq = f, seq
	return nil
}

// readFrame decodes one frame at the current offset with pread, leaving
// the position untouched: io.EOF means a clean record boundary at end of
// file, errTornFrame means an incomplete or invalid frame (retryable at a
// live tip, damage in a sealed segment).
func (t *Tail) readFrame() ([]byte, int, error) {
	var hdr [headerSize]byte
	if n, err := t.f.ReadAt(hdr[:], t.off); err != nil {
		if errors.Is(err, io.EOF) {
			if n == 0 {
				return nil, 0, io.EOF
			}
			return nil, 0, errTornFrame
		}
		return nil, 0, fmt.Errorf("wal: tail read: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecordBytes {
		return nil, 0, errTornFrame
	}
	need := int(length)
	if cap(t.buf) < need {
		t.buf = make([]byte, need)
	}
	payload := t.buf[:need]
	if _, err := t.f.ReadAt(payload, t.off+headerSize); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, errTornFrame
		}
		return nil, 0, fmt.Errorf("wal: tail read: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, errTornFrame
	}
	return payload, headerSize + need, nil
}
