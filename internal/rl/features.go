package rl

import (
	"math"

	"jarvis/internal/env"
)

// Features encodes (state, time-instance) pairs for the DQN: a one-hot
// encoding of every device state plus three time features (normalized
// instance and its sin/cos phase within the episode).
type Features struct {
	e      *env.Environment
	n      int // instances per episode
	dim    int
	widths []int // per-device state counts, cached so encoding allocates nothing
}

// NewFeatures builds an encoder for episodes of n time instances.
func NewFeatures(e *env.Environment, n int) *Features {
	dim := 3
	widths := make([]int, 0, e.K())
	for _, d := range e.Devices() {
		dim += d.NumStates()
		widths = append(widths, d.NumStates())
	}
	return &Features{e: e, n: n, dim: dim, widths: widths}
}

// Dim returns the feature-vector width.
func (f *Features) Dim() int { return f.dim }

// Encode writes the features of (s, t) into a fresh vector.
func (f *Features) Encode(s env.State, t int) []float64 {
	return f.EncodeInto(make([]float64, f.dim), s, t)
}

// EncodeInto writes the features of (s, t) into x, which must have length
// Dim, and returns it. It allocates nothing.
func (f *Features) EncodeInto(x []float64, s env.State, t int) []float64 {
	for i := range x {
		x[i] = 0
	}
	i := 0
	for di, w := range f.widths {
		if st := int(s[di]); st >= 0 && st < w {
			x[i+st] = 1
		}
		i += w
	}
	phase := float64(t) / float64(f.n)
	x[i] = phase
	x[i+1] = math.Sin(2 * math.Pi * phase)
	x[i+2] = math.Cos(2 * math.Pi * phase)
	return x
}
