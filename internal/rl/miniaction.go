// Package rl implements the Q-learning solution of the Jarvis paper
// (Section IV-C, Algorithm 2, and the practical deep-learning design of
// Section V-A7): a Gym-like simulated environment over the IoT FSM, an
// experience-replay buffer, a mini-action decomposition that keeps the
// network's output head linear in the number of devices, and an ε-greedy
// agent whose exploration and exploitation are constrained by the safe
// state-transition table P_safe.
package rl

import (
	"fmt"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// MiniActions indexes the environment's mini-action space (Section V-A7):
// index 0 is the global no-op; the remaining indices enumerate
// (device, device-action) pairs in device order. The mini-action space
// grows linearly with the number of devices, unlike the exponential
// composite action space.
type MiniActions struct {
	e       *env.Environment
	offsets []int // offsets[i] = first index of device i's actions
	total   int
}

// NewMiniActions builds the index for an environment.
func NewMiniActions(e *env.Environment) *MiniActions {
	m := &MiniActions{e: e, offsets: make([]int, e.K())}
	idx := 1 // 0 = no-op
	for i := 0; i < e.K(); i++ {
		m.offsets[i] = idx
		idx += e.Device(i).NumActions()
	}
	m.total = idx
	return m
}

// Total returns the number of mini-actions (including the no-op).
func (m *MiniActions) Total() int { return m.total }

// NoOpIndex returns the index of the global no-op mini-action.
func (m *MiniActions) NoOpIndex() int { return 0 }

// Decode returns the (device, action) pair of a mini-action index. The
// no-op decodes to (-1, NoAction).
func (m *MiniActions) Decode(idx int) (dev int, act device.ActionID) {
	if idx <= 0 || idx >= m.total {
		return -1, device.NoAction
	}
	for i := m.e.K() - 1; i >= 0; i-- {
		if idx >= m.offsets[i] {
			return i, device.ActionID(idx - m.offsets[i])
		}
	}
	return -1, device.NoAction
}

// Encode returns the mini-action index of a (device, action) pair.
func (m *MiniActions) Encode(dev int, act device.ActionID) (int, error) {
	if dev < 0 || dev >= m.e.K() {
		return 0, fmt.Errorf("rl: unknown device %d", dev)
	}
	if act == device.NoAction {
		return 0, nil
	}
	if int(act) < 0 || int(act) >= m.e.Device(dev).NumActions() {
		return 0, fmt.Errorf("rl: device %d has no action %d", dev, act)
	}
	return m.offsets[dev] + int(act), nil
}

// Of lists the mini-action indices that compose a composite action
// (excluding untouched devices). A pure no-op yields [NoOpIndex].
func (m *MiniActions) Of(a env.Action) []int {
	var out []int
	for dev, act := range a {
		if act == device.NoAction {
			continue
		}
		out = append(out, m.offsets[dev]+int(act))
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}
