package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
)

// testEnv: a lamp (2 states, 2 actions) and a heater (2 states, 2 actions).
func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	lamp := device.NewBuilder("lamp", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 60).
		MustBuild()
	heater := device.NewBuilder("heater", device.TypeThermostat).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		PowerW("on", 2000).
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(lamp, env.Placement{})
	b.AddDevice(heater, env.Placement{})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

// energySaving rewards low power draw of the next state.
func energySaving(e *env.Environment) reward.Func {
	maxW := 2060.0
	return func(s env.State, a env.Action, t int) float64 {
		next, err := e.Transition(s, a)
		if err != nil {
			return 0
		}
		var w float64
		for i := range next {
			w += e.Device(i).PowerW(next[i])
		}
		return 1 - w/maxW
	}
}

func testReward(t *testing.T, e *env.Environment, n int) *reward.Smart {
	t.Helper()
	r, err := reward.New(e, reward.Config{
		Functionalities: []reward.Functionality{
			{Name: "energy", Weight: 1, F: energySaving(e)},
		},
		Instances: n,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	return r
}

func TestMiniActionsRoundTrip(t *testing.T) {
	e := testEnv(t)
	m := NewMiniActions(e)
	if m.Total() != 1+2+2 {
		t.Fatalf("Total = %d, want 5", m.Total())
	}
	if dev, act := m.Decode(m.NoOpIndex()); dev != -1 || act != device.NoAction {
		t.Errorf("Decode(noop) = %d,%d", dev, act)
	}
	for dev := 0; dev < e.K(); dev++ {
		for a := 0; a < e.Device(dev).NumActions(); a++ {
			idx, err := m.Encode(dev, device.ActionID(a))
			if err != nil {
				t.Fatalf("Encode(%d,%d): %v", dev, a, err)
			}
			gd, ga := m.Decode(idx)
			if gd != dev || ga != device.ActionID(a) {
				t.Errorf("round trip (%d,%d) -> %d -> (%d,%d)", dev, a, idx, gd, ga)
			}
		}
	}
	if idx, err := m.Encode(0, device.NoAction); err != nil || idx != 0 {
		t.Errorf("Encode(NoAction) = %d,%v", idx, err)
	}
	if _, err := m.Encode(9, 0); err == nil {
		t.Error("Encode(unknown device) should error")
	}
	if _, err := m.Encode(0, 9); err == nil {
		t.Error("Encode(unknown action) should error")
	}
	if dev, act := m.Decode(99); dev != -1 || act != device.NoAction {
		t.Errorf("Decode(out of range) = %d,%d", dev, act)
	}
}

func TestMiniActionsOf(t *testing.T) {
	e := testEnv(t)
	m := NewMiniActions(e)
	if got := m.Of(env.NoOp(2)); len(got) != 1 || got[0] != 0 {
		t.Errorf("Of(noop) = %v", got)
	}
	got := m.Of(env.Action{1, 0})
	if len(got) != 2 {
		t.Fatalf("Of = %v", got)
	}
	d0, a0 := m.Decode(got[0])
	d1, a1 := m.Decode(got[1])
	if d0 != 0 || a0 != 1 || d1 != 1 || a1 != 0 {
		t.Errorf("Of decoded to (%d,%d),(%d,%d)", d0, a0, d1, a1)
	}
}

func TestFeatures(t *testing.T) {
	e := testEnv(t)
	f := NewFeatures(e, 10)
	if f.Dim() != 2+2+3 {
		t.Fatalf("Dim = %d, want 7", f.Dim())
	}
	x := f.Encode(env.State{1, 0}, 5)
	if x[0] != 0 || x[1] != 1 || x[2] != 1 || x[3] != 0 {
		t.Errorf("one-hot = %v", x[:4])
	}
	if x[4] != 0.5 {
		t.Errorf("phase = %g, want 0.5", x[4])
	}
	if math.Abs(x[5]) > 1e-9 || math.Abs(x[6]+1) > 1e-9 {
		t.Errorf("sin/cos = %g,%g", x[5], x[6])
	}
}

func TestSimEnvBasics(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 3)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	if sim.Instances() != 3 || sim.Instance() != 0 {
		t.Fatalf("Instances/Instance = %d/%d", sim.Instances(), sim.Instance())
	}
	s := sim.State()
	if !s.Equal(env.State{1, 1}) {
		t.Fatalf("State = %v", s)
	}
	next, r, done, err := sim.Step(env.Action{0, device.NoAction}) // lamp off
	if err != nil || done {
		t.Fatalf("Step: %v done=%v", err, done)
	}
	if !next.Equal(env.State{0, 1}) {
		t.Errorf("next = %v", next)
	}
	if want := 1 - 2000.0/2060.0; math.Abs(r-want) > 1e-9 {
		t.Errorf("r = %g, want %g", r, want)
	}
	// step to completion
	if _, _, done, _ := sim.Step(env.NoOp(2)); done {
		t.Fatal("done too early")
	}
	if _, _, done, err := sim.Step(env.NoOp(2)); err != nil || !done {
		t.Fatalf("final step: done=%v err=%v", done, err)
	}
	if _, _, _, err := sim.Step(env.NoOp(2)); err == nil {
		t.Error("stepping past the end should error")
	}
	sim.Reset()
	if sim.Instance() != 0 || !sim.State().Equal(env.State{1, 1}) {
		t.Error("Reset did not restore S_0")
	}
	// invalid action
	if _, _, _, err := sim.Step(env.Action{1, device.NoAction}); err == nil {
		t.Error("invalid action should error")
	}
}

func TestSimEnvValidation(t *testing.T) {
	e := testEnv(t)
	if _, err := NewSimEnv(e, SimConfig{Initial: env.State{0, 0}}); err == nil {
		t.Error("missing reward should error")
	}
	rs := testReward(t, e, 3)
	if _, err := NewSimEnv(e, SimConfig{Initial: env.State{9, 9}, Reward: rs}); err == nil {
		t.Error("invalid initial state should error")
	}
}

func TestSimEnvExo(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 3)
	sim, err := NewSimEnv(e, SimConfig{
		Initial: env.State{0, 0},
		Reward:  rs,
		Exo: func(s env.State, t int) env.State {
			s = s.Clone()
			s[1] = 1 // heater flips on by itself
			return s
		},
	})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	next, _, _, err := sim.Step(env.NoOp(2))
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if next[1] != 1 {
		t.Errorf("exo hook not applied: %v", next)
	}

	bad, err := NewSimEnv(e, SimConfig{
		Initial: env.State{0, 0},
		Reward:  rs,
		Exo:     func(s env.State, t int) env.State { return env.State{9, 9} },
	})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	if _, _, _, err := bad.Step(env.NoOp(2)); err == nil {
		t.Error("invalid exo state should error")
	}
}

func TestSimEnvSafetyAndViolations(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 4)
	tab := policy.NewTable(true)
	s00 := e.StateKey(env.State{0, 0})
	s10 := e.StateKey(env.State{1, 0})
	tab.Allow(s00, s10) // only lamp-on is sanctioned

	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{0, 0}, Reward: rs, Safe: tab})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	if !sim.Safe(env.State{0, 0}, env.Action{1, device.NoAction}) {
		t.Error("sanctioned transition should be safe")
	}
	if sim.Safe(env.State{0, 0}, env.Action{device.NoAction, 1}) {
		t.Error("unsanctioned transition should be unsafe")
	}
	if !sim.Safe(env.State{0, 0}, env.NoOp(2)) {
		t.Error("idle should be safe under allowIdle")
	}
	if sim.Safe(env.State{0, 0}, env.Action{0, device.NoAction}) {
		t.Error("FSM-invalid action should be unsafe")
	}

	// Stepping an unsafe transition is counted.
	if _, _, _, err := sim.Step(env.Action{device.NoAction, 1}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if sim.Violations() != 1 {
		t.Errorf("Violations = %d, want 1", sim.Violations())
	}
	sim.ResetViolations()
	if sim.Violations() != 0 {
		t.Error("ResetViolations failed")
	}
}

func TestSimEnvAudit(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 2)
	tab := policy.NewTable(true) // empty: everything non-idle is a violation
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{0, 0}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	sim.SetAudit(tab)
	if !sim.Safe(env.State{0, 0}, env.Action{1, device.NoAction}) {
		t.Error("audit table must not constrain Safe()")
	}
	if _, _, _, err := sim.Step(env.Action{1, device.NoAction}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if sim.Violations() != 1 {
		t.Errorf("audited violations = %d, want 1", sim.Violations())
	}
}

func TestReplayBuffer(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Experience{T: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	rng := rand.New(rand.NewSource(1))
	batch := r.Sample(10, rng)
	if len(batch) != 3 {
		t.Fatalf("Sample clamps to Len: got %d", len(batch))
	}
	seen := map[int]bool{}
	for _, e := range batch {
		if e.T < 2 { // 0 and 1 were evicted
			t.Errorf("evicted experience %d still present", e.T)
		}
		seen[e.T] = true
	}
	if len(seen) != 3 {
		t.Errorf("sample without replacement should cover all 3: %v", seen)
	}
	if NewReplay(0).buf == nil {
		t.Error("zero capacity should clamp to 1")
	}
}

func TestTableQUpdate(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 2, 0.5)
	s := env.State{0, 0}
	exp := Experience{S: s, T: 1, Minis: []int{1}}
	if _, err := q.Update([]Experience{exp}, []float64{1}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := q.Q(s, 1)[1]; got != 0.5 {
		t.Errorf("Q after one update = %g, want 0.5 (α=0.5)", got)
	}
	// time buckets: instance 1 and 9 fall into different buckets
	if got := q.Q(s, 9)[1]; got != 0 {
		t.Errorf("Q in other bucket = %g, want 0", got)
	}
	// same bucket: instances 1 and 4
	if got := q.Q(s, 4)[1]; got != 0.5 {
		t.Errorf("Q in same bucket = %g, want 0.5", got)
	}
	if q.Size() != 1 {
		t.Errorf("Size = %d", q.Size())
	}
	if _, err := q.Update([]Experience{exp}, []float64{1, 2}); err == nil {
		t.Error("target/batch mismatch should error")
	}
}

func TestDQNUpdateReducesLoss(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(5))
	q, err := NewDQN(e, 10, DQNConfig{Hidden: []int{16}, LR: 0.01}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	if got := len(q.Q(env.State{0, 0}, 0)); got != 5 {
		t.Fatalf("Q width = %d, want 5", got)
	}
	batch := []Experience{
		{S: env.State{0, 0}, T: 0, Minis: []int{1}},
		{S: env.State{1, 1}, T: 5, Minis: []int{3}},
	}
	targets := []float64{1, -1}
	var first, last float64
	for i := 0; i < 200; i++ {
		loss, err := q.Update(batch, targets)
		if err != nil {
			t.Fatalf("Update: %v", err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %g last %g", first, last)
	}
	if got := q.Q(env.State{0, 0}, 0)[1]; math.Abs(got-1) > 0.2 {
		t.Errorf("Q converged to %g, want ≈1", got)
	}
	if _, err := q.Update(batch, []float64{1}); err == nil {
		t.Error("target/batch mismatch should error")
	}
	if q.Net() == nil {
		t.Error("Net accessor should expose the network")
	}
}

func TestAgentValidation(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 5)
	sim, _ := NewSimEnv(e, SimConfig{Initial: env.State{0, 0}, Reward: rs})
	q := NewTableQ(e, 5, 1, 0.5)
	if _, err := NewAgent(nil, q, AgentConfig{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("nil sim should error")
	}
	if _, err := NewAgent(sim, nil, AgentConfig{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("nil q should error")
	}
	if _, err := NewAgent(sim, q, AgentConfig{}); err == nil {
		t.Error("nil rng should error")
	}
}

// TestAgentLearnsToSaveEnergy: unconstrained, the agent should learn to
// turn both devices (initially on) off to maximize the energy reward.
func TestAgentLearnsToSaveEnergy(t *testing.T) {
	e := testEnv(t)
	n := 8
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	// Time-dependent table (buckets = n) makes the finite-horizon MDP exact.
	q := NewTableQ(e, n, n, 0.3)
	ag, err := NewAgent(sim, q, AgentConfig{
		Episodes: 600, Gamma: 0.9, BatchSize: 16,
		Epsilon: 1, EpsilonMin: 0.05, EpsilonDecay: 0.99,
		Rng: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	stats, err := ag.Train()
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(stats.EpisodeRewards) != 600 {
		t.Fatalf("episode rewards = %d", len(stats.EpisodeRewards))
	}
	if stats.FinalEpsilon >= 1 {
		t.Error("epsilon should have decayed")
	}

	total, acts, err := ag.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(acts) != n {
		t.Fatalf("acts = %d", len(acts))
	}
	// Optimal: turn both off at t=0 (reward ~1 each step after).
	if total < float64(n)*0.8 {
		t.Errorf("greedy reward %g too low; agent did not learn to power off", total)
	}
}

// TestConstrainedAgentRespectsPolicy: P_safe forbids touching the heater;
// the greedy agent must never do it even though it pays.
func TestConstrainedAgentRespectsPolicy(t *testing.T) {
	e := testEnv(t)
	n := 6
	rs := testReward(t, e, n)
	tab := policy.NewTable(true)
	// Only lamp transitions are sanctioned (from every lamp/heater combo).
	for _, heater := range []device.StateID{0, 1} {
		for _, lamp := range []device.StateID{0, 1} {
			from := env.State{lamp, heater}
			to := env.State{1 - lamp, heater}
			tab.Allow(e.StateKey(from), e.StateKey(to))
		}
	}
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs, Safe: tab})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	q := NewTableQ(e, n, n, 0.3)
	ag, err := NewAgent(sim, q, AgentConfig{
		Episodes: 200, Gamma: 0.9, BatchSize: 8,
		Rng: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	stats, err := ag.Train()
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if stats.Violations != 0 {
		t.Errorf("constrained training committed %d violations", stats.Violations)
	}
	sim.ResetViolations()
	_, acts, err := ag.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	for _, a := range acts {
		if a[1] != device.NoAction {
			t.Fatalf("agent touched the forbidden heater: %v", acts)
		}
	}
	if sim.Violations() != 0 {
		t.Errorf("greedy evaluation committed %d violations", sim.Violations())
	}
}

// Property: Greedy always returns an action that is FSM-valid and safe.
func TestGreedyAlwaysSafeProperty(t *testing.T) {
	e := testEnv(t)
	n := 10
	rs := testReward(t, e, n)
	tab := policy.NewTable(true)
	tab.Allow(e.StateKey(env.State{1, 0}), e.StateKey(env.State{0, 0})) // lamp off only
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{0, 0}, Reward: rs, Safe: tab})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	q := NewTableQ(e, n, 1, 0.5)
	ag, err := NewAgent(sim, q, AgentConfig{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	// Seed the table with random optimistic values so greedy wants to act.
	rng := rand.New(rand.NewSource(2))
	f := func(lamp, heater bool, tRaw uint8) bool {
		s := env.State{0, 0}
		if lamp {
			s[0] = 1
		}
		if heater {
			s[1] = 1
		}
		// random Q values
		exp := Experience{S: s, T: int(tRaw) % n, Minis: []int{1 + rng.Intn(4)}}
		if _, err := q.Update([]Experience{exp}, []float64{rng.Float64() * 10}); err != nil {
			return false
		}
		act := ag.Greedy(s, int(tRaw)%n)
		return sim.Safe(s, act)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExploreReturnsSafeActions(t *testing.T) {
	e := testEnv(t)
	n := 5
	rs := testReward(t, e, n)
	tab := policy.NewTable(true) // nothing sanctioned: only idle is safe
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{0, 0}, Reward: rs, Safe: tab})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	ag, err := NewAgent(sim, NewTableQ(e, n, 1, 0.5), AgentConfig{Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	for i := 0; i < 50; i++ {
		act := ag.explore(env.State{0, 0})
		if !sim.Safe(env.State{0, 0}, act) {
			t.Fatalf("explore returned unsafe action %v", act)
		}
	}
}

// testEnv3 is a 3-device variant for shape-mismatch tests.
func testEnv3(t *testing.T) *env.Environment {
	t.Helper()
	mk := func(name string) *device.Device {
		return device.NewBuilder(name, device.TypeLight).
			States("off", "on").
			Actions("power_off", "power_on").
			Transition("on", "power_off", "off").
			Transition("off", "power_on", "on").
			MustBuild()
	}
	b := env.NewBuilder()
	b.AddDevice(mk("a"), env.Placement{})
	b.AddDevice(mk("b"), env.Placement{})
	b.AddDevice(mk("c"), env.Placement{})
	b.AddApp("manual", 0, 1, 2)
	b.AddUser("u", 0)
	return b.MustBuild()
}
