package rl

import (
	"errors"
	"fmt"

	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
)

// Environment is the Gym-like interface the paper builds on OpenAI Gym
// (Section V-A5): an episodic environment an agent resets and steps
// through.
type Environment interface {
	// Reset returns the environment to S_0 and returns it.
	Reset() env.State
	// Step applies a composite action at the current time instance and
	// returns the next state, the reward R_smart(S, A, t), and whether the
	// episode is complete.
	Step(a env.Action) (next env.State, r float64, done bool, err error)
	// State returns the current state.
	State() env.State
	// Instance returns the current time instance t.
	Instance() int
	// Instances returns n, the episode length.
	Instances() int
}

// SafeEnv extends Environment with the constrained-exploration surface
// Algorithm 2 needs: the underlying IoT FSM, the safety predicate P_safe,
// and the violation audit. SimEnv is the canonical implementation; wrappers
// (fault injectors, instrumentation) satisfy it by delegation so agents
// train and evaluate through them unchanged.
type SafeEnv interface {
	Environment
	// Env returns the underlying IoT environment FSM.
	Env() *env.Environment
	// Safe reports whether taking composite action a in state st is
	// permitted by P_safe (and the FSM).
	Safe(st env.State, a env.Action) bool
	// Violations returns the number of unsafe transitions stepped so far.
	Violations() int
	// ResetViolations zeroes the violation counter.
	ResetViolations()
}

// ExoFunc models exogenous dynamics: after the agent's action resolves,
// the environment itself may drift (outdoor temperature moves a sensor,
// a resident arrives at the door). It receives the post-action state and
// the *next* time instance and returns the adjusted state, which must stay
// within the FSM.
type ExoFunc func(s env.State, t int) env.State

// SimConfig assembles a simulated RL environment.
type SimConfig struct {
	// Initial is S_0.
	Initial env.State
	// Reward is R_smart.
	Reward *reward.Smart
	// Safe is P_safe; nil leaves the environment unconstrained (the
	// baseline of Section VI-F).
	Safe *policy.Table
	// Exo is the optional exogenous dynamics hook.
	Exo ExoFunc
	// ResetHook, when non-nil, runs on every Reset — stateful exogenous
	// models (house thermal dynamics) re-initialize here.
	ResetHook func()
}

// SimEnv is the simulated RL environment over the IoT FSM. It additionally
// exposes the safety predicate used to constrain exploration and counts
// the safety violations the agent commits (meaningful for unconstrained
// runs).
type SimEnv struct {
	e     *env.Environment
	cfg   SimConfig
	cur   env.State
	t     int
	n     int
	viol  int
	audit *policy.Table
	// safeScratch holds Safe's probe successor state; Safe only needs its
	// key, so the buffer is reused across calls. SimEnv is not safe for
	// concurrent use (cur/t already preclude it).
	safeScratch env.State
}

var _ SafeEnv = (*SimEnv)(nil)

// NewSimEnv validates cfg and builds the simulator.
func NewSimEnv(e *env.Environment, cfg SimConfig) (*SimEnv, error) {
	if cfg.Reward == nil {
		return nil, errors.New("rl: SimConfig.Reward is required")
	}
	if !e.ValidState(cfg.Initial) {
		return nil, errors.New("rl: invalid initial state")
	}
	s := &SimEnv{e: e, cfg: cfg, n: cfg.Reward.Instances(), safeScratch: make(env.State, e.K())}
	s.Reset()
	return s, nil
}

// Reset implements Environment.
func (s *SimEnv) Reset() env.State {
	s.cur = s.cfg.Initial.Clone()
	s.t = 0
	if s.cfg.ResetHook != nil {
		s.cfg.ResetHook()
	}
	return s.cur.Clone()
}

// State implements Environment.
func (s *SimEnv) State() env.State { return s.cur.Clone() }

// Instance implements Environment.
func (s *SimEnv) Instance() int { return s.t }

// Instances implements Environment.
func (s *SimEnv) Instances() int { return s.n }

// Env returns the underlying IoT environment.
func (s *SimEnv) Env() *env.Environment { return s.e }

// Reward returns the configured R_smart.
func (s *SimEnv) Reward() *reward.Smart { return s.cfg.Reward }

// Safe reports whether taking composite action a in state st is permitted
// by P_safe. An unconstrained environment permits everything the FSM
// allows.
func (s *SimEnv) Safe(st env.State, a env.Action) bool {
	if err := s.e.TransitionInto(s.safeScratch, st, a); err != nil {
		return false
	}
	if s.cfg.Safe == nil {
		return true
	}
	return s.cfg.Safe.SafeTransition(s.e.StateKey(st), s.e.StateKey(s.safeScratch), a)
}

// Violations returns the number of unsafe transitions stepped so far (only
// counted when a P_safe table is present or supplied via CountAgainst).
func (s *SimEnv) Violations() int { return s.viol }

// ResetViolations zeroes the violation counter.
func (s *SimEnv) ResetViolations() { s.viol = 0 }

// countTable returns the table violations are counted against.
func (s *SimEnv) countTable() *policy.Table { return s.cfg.Safe }

// SetAudit sets a table used purely for violation counting on an otherwise
// unconstrained environment; it does not constrain Step. Figure 9's
// unconstrained run is audited against the learned P_safe without being
// restricted by it.
func (s *SimEnv) SetAudit(t *policy.Table) { s.audit = t }

// Step implements Environment. The action must be valid under the FSM;
// safety is not enforced here (the agent enforces it during action
// selection) but unsafe transitions are counted against the audit table or
// P_safe.
func (s *SimEnv) Step(a env.Action) (env.State, float64, bool, error) {
	if s.t >= s.n {
		return nil, 0, true, fmt.Errorf("rl: episode complete (n=%d)", s.n)
	}
	next, err := s.e.Transition(s.cur, a)
	if err != nil {
		return nil, 0, false, err
	}
	table := s.audit
	if table == nil {
		table = s.countTable()
	}
	if table != nil && !table.SafeTransition(s.e.StateKey(s.cur), s.e.StateKey(next), a) {
		s.viol++
	}
	r := s.cfg.Reward.R(s.cur, a, s.t)
	s.t++
	if s.cfg.Exo != nil {
		next = s.cfg.Exo(next, s.t)
		if !s.e.ValidState(next) {
			return nil, 0, false, errors.New("rl: exogenous dynamics produced an invalid state")
		}
	}
	s.cur = next
	return next.Clone(), r, s.t >= s.n, nil
}
