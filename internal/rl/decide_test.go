package rl

import (
	"math/rand"
	"testing"

	"jarvis/internal/device"
	"jarvis/internal/env"
)

// TestDecideEverySemantics: with DecideEvery = 3 on a 9-instance episode,
// the agent takes exactly 3 decisions; rewards accumulate over each
// window; idle instances step NoOp.
func TestDecideEverySemantics(t *testing.T) {
	e := testEnv(t)
	n := 9
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	q := NewTableQ(e, n, 3, 0.5)
	ag, err := NewAgent(sim, q, AgentConfig{
		Episodes: 1, DecideEvery: 3, Epsilon: 1, // all exploration
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if ag.DecideEvery() != 3 {
		t.Fatalf("DecideEvery = %d", ag.DecideEvery())
	}
	stats, err := ag.Train()
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(stats.EpisodeRewards) != 1 {
		t.Fatalf("episodes = %d", len(stats.EpisodeRewards))
	}
	// The replay buffer holds one experience per decision.
	if ag.replay.Len() != 3 {
		t.Errorf("replay entries = %d, want 3 decisions", ag.replay.Len())
	}
	for _, exp := range ag.replay.buf {
		if exp.T%3 != 0 {
			t.Errorf("decision at non-multiple instance %d", exp.T)
		}
		if exp.NextT != exp.T+3 {
			t.Errorf("NextT = %d, want %d", exp.NextT, exp.T+3)
		}
	}
	// The last decision window is marked done.
	if !ag.replay.buf[ag.replay.Len()-1].Done {
		t.Error("final decision should be done")
	}
}

// TestDecideEveryEvaluate: Evaluate emits one action per instance with
// NoOps between decisions.
func TestDecideEveryEvaluate(t *testing.T) {
	e := testEnv(t)
	n := 8
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	q := NewTableQ(e, n, n, 0.5)
	// Seed Q so greedy wants to act at every decision point.
	for d := 0; d < n; d++ {
		exp := Experience{S: env.State{1, 1}, T: d, Minis: []int{1}}
		if _, err := q.Update([]Experience{exp}, []float64{5}); err != nil {
			t.Fatal(err)
		}
	}
	ag, err := NewAgent(sim, q, AgentConfig{
		Episodes: 1, DecideEvery: 4,
		Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	_, acts, err := ag.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(acts) != n {
		t.Fatalf("acts = %d, want %d", len(acts), n)
	}
	for i, a := range acts {
		if i%4 != 0 && !a.IsNoOp() {
			t.Errorf("instance %d should be idle, got %v", i, a)
		}
	}
}

// TestActionableMask: the agent never touches excluded devices.
func TestActionableMask(t *testing.T) {
	e := testEnv(t)
	n := 10
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	q := NewTableQ(e, n, n, 0.5)
	ag, err := NewAgent(sim, q, AgentConfig{
		Episodes:   30,
		Actionable: func(dev int) bool { return dev == 0 }, // lamp only
		Rng:        rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if _, err := ag.Train(); err != nil {
		t.Fatalf("Train: %v", err)
	}
	for _, exp := range ag.replay.buf {
		for _, mi := range exp.Minis {
			dev, _ := ag.minis.Decode(mi)
			if dev == 1 {
				t.Fatalf("agent acted on excluded device: %v", exp.Minis)
			}
		}
	}
	// Greedy with inflated Q on the heater must still refuse it.
	for d := 0; d < n; d++ {
		exp := Experience{S: env.State{1, 1}, T: d, Minis: []int{3}}
		if _, err := q.Update([]Experience{exp}, []float64{100}); err != nil {
			t.Fatal(err)
		}
	}
	act := ag.Greedy(env.State{1, 1}, 0)
	if act[1] != device.NoAction {
		t.Errorf("greedy touched excluded device: %v", act)
	}
}

// TestReplayEveryThrottles: with ReplayEvery = n steps per episode, at
// most one replay per episode happens (observable through the Q table
// staying sparse).
func TestReplayEveryThrottles(t *testing.T) {
	e := testEnv(t)
	n := 8
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	dense := NewTableQ(e, n, n, 1) // alpha 1: rows appear on first update
	agDense, err := NewAgent(sim, dense, AgentConfig{
		Episodes: 5, BatchSize: 2, ReplayEvery: 1,
		Rng: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if _, err := agDense.Train(); err != nil {
		t.Fatalf("Train: %v", err)
	}

	sim2, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	sparse := NewTableQ(e, n, n, 1)
	agSparse, err := NewAgent(sim2, sparse, AgentConfig{
		Episodes: 5, BatchSize: 2, ReplayEvery: 1000,
		Rng: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if _, err := agSparse.Train(); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if sparse.Size() >= dense.Size() {
		t.Errorf("throttled replay should touch fewer rows: %d vs %d", sparse.Size(), dense.Size())
	}
}

// TestDQNTargetNetworkLags: QTarget stays at its old values until the sync
// point, then matches Q.
func TestDQNTargetNetworkLags(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(9))
	q, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}, LR: 0.05, TargetSync: 3}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	s := env.State{0, 0}
	before := append([]float64(nil), q.QTarget(s, 0)...)
	batch := []Experience{{S: s, T: 0, Minis: []int{1}}}

	// Two updates: target must not have moved yet.
	for i := 0; i < 2; i++ {
		if _, err := q.Update(batch, []float64{5}); err != nil {
			t.Fatal(err)
		}
	}
	after2 := q.QTarget(s, 0)
	for i := range before {
		if before[i] != after2[i] {
			t.Fatal("target network moved before the sync point")
		}
	}
	// Third update triggers the sync: target now equals the online net.
	if _, err := q.Update(batch, []float64{5}); err != nil {
		t.Fatal(err)
	}
	online := append([]float64(nil), q.Q(s, 0)...)
	target := q.QTarget(s, 0)
	for i := range online {
		if online[i] != target[i] {
			t.Fatal("target network did not sync")
		}
	}
}

// TestTableQTargetIsLive: the tabular backend has no lag.
func TestTableQTargetIsLive(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 1, 0.5)
	s := env.State{0, 0}
	if _, err := q.Update([]Experience{{S: s, T: 0, Minis: []int{1}}}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if q.QTarget(s, 0)[1] != q.Q(s, 0)[1] {
		t.Error("tabular QTarget must equal Q")
	}
}

// TestDoubleDQNBootstrap: with DoubleDQN, the bootstrap picks the online
// argmax but scores it with the target network.
func TestDoubleDQNBootstrap(t *testing.T) {
	e := testEnv(t)
	n := 4
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	q, err := NewDQN(e, n, DQNConfig{Hidden: []int{8}, LR: 0.05, TargetSync: 1000}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	// Train the online net away from the (still-initial) target net.
	batch := []Experience{{S: env.State{1, 1}, T: 0, Minis: []int{1}}}
	for i := 0; i < 50; i++ {
		if _, err := q.Update(batch, []float64{10}); err != nil {
			t.Fatal(err)
		}
	}
	ag, err := NewAgent(sim, q, AgentConfig{DoubleDQN: true, Rng: rng})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	got := ag.maxNextQ(env.State{1, 1}, 0)
	// Online argmax is mini 1 (trained to 10); its target value is the
	// untrained network's output — nowhere near 10.
	online := ag.q.Q(env.State{1, 1}, 0)[1]
	if got >= online-1 {
		t.Errorf("double-DQN bootstrap %g should use target values, online is %g", got, online)
	}
}
