package rl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/nn"
)

// AgentConfig parameterizes Algorithm 2.
type AgentConfig struct {
	// Episodes is EP, the number of training episodes.
	Episodes int
	// Epsilon, EpsilonMin and EpsilonDecay control ε-greedy exploration.
	// Defaults: 1.0 / 0.05 / 0.995.
	Epsilon, EpsilonMin, EpsilonDecay float64
	// Gamma is the discount factor γ (default 0.95).
	Gamma float64
	// BatchSize is BSize, the replay mini-batch (default 32).
	BatchSize int
	// PreferableLoss is L_p: ε decays only while the replay loss is at or
	// below it (default +Inf, i.e. always decay).
	PreferableLoss float64
	// ReplayCapacity bounds the experience buffer (default 10000).
	ReplayCapacity int
	// ReplayEvery runs the replay/learning step once per this many agent
	// steps (default 1). Larger values trade learning speed for wall
	// clock on long episodes.
	ReplayEvery int
	// MaxMiniActions caps the mini-actions composed per interval
	// (default k, one per device).
	MaxMiniActions int
	// Actionable, when non-nil, restricts the agent to devices it may
	// operate (sensors and user-owned devices are environment-driven).
	Actionable func(dev int) bool
	// DecideEvery makes the agent take one decision per this many time
	// instances, idling in between (default 1). Rewards accrued over the
	// whole decision window back the experience — a semi-MDP view that
	// keeps long fine-grained episodes learnable.
	DecideEvery int
	// DoubleDQN selects the bootstrap action with the online Q values and
	// evaluates it with the target values (van Hasselt et al.), reducing
	// maximization bias. Only meaningful with the DQN backend.
	DoubleDQN bool
	// Rng drives exploration and replay sampling; required.
	Rng *rand.Rand
}

func (c AgentConfig) withDefaults(k int) AgentConfig {
	if c.Episodes <= 0 {
		c.Episodes = 50
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1
	}
	if c.EpsilonMin <= 0 {
		c.EpsilonMin = 0.05
	}
	if c.EpsilonDecay <= 0 {
		c.EpsilonDecay = 0.995
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.95
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.PreferableLoss <= 0 {
		c.PreferableLoss = math.Inf(1)
	}
	if c.ReplayCapacity <= 0 {
		c.ReplayCapacity = 10000
	}
	if c.ReplayEvery <= 0 {
		c.ReplayEvery = 1
	}
	if c.DecideEvery <= 0 {
		c.DecideEvery = 1
	}
	if c.MaxMiniActions <= 0 || c.MaxMiniActions > k {
		c.MaxMiniActions = k
	}
	return c
}

// TrainStats summarizes a training run.
type TrainStats struct {
	// EpisodeRewards holds the cumulative reward of each training episode.
	EpisodeRewards []float64
	// FinalEpsilon is ε after the run.
	FinalEpsilon float64
	// FinalLoss is the last replay loss observed.
	FinalLoss float64
	// Violations counts unsafe transitions taken during training (nonzero
	// only for unconstrained/audited environments).
	Violations int
	// EpisodeViolations is the per-episode breakdown of Violations.
	EpisodeViolations []int
}

// Agent is the constrained ε-greedy Q-learning agent of Algorithm 2.
type Agent struct {
	sim      SafeEnv
	q        QFunc
	minis    *MiniActions
	cfg      AgentConfig
	replay   *Replay
	eps      float64
	loss     float64
	degraded int
	// lastValue is the Q value backing the most recent Greedy composition
	// (the top accepted mini-action's value, or the NoOp value when the
	// composite is empty; 0 on a degraded fallback). Decision audit logs
	// read it through LastValue.
	lastValue float64
	// wd, when attached, watches greedy evaluations and replay losses for
	// divergence and rolls the Q function back to a valid checkpoint
	// generation instead of letting the agent degrade permanently.
	wd *Watchdog

	// Reused replay-step buffers: the sampled mini-batch, its bootstrap
	// targets, the non-terminal successors gathered for one batched Q pass,
	// and scratch for candidate actions and double-DQN online scores. A warm
	// replay step allocates nothing beyond what the Q backend itself needs.
	batch      []Experience
	targets    []float64
	nextS      []env.State
	nextT      []int
	actScratch env.Action
	onlineQ    []float64
	order      []int
}

// NewAgent wires an agent to a simulated environment and a Q function.
func NewAgent(sim SafeEnv, q QFunc, cfg AgentConfig) (*Agent, error) {
	if sim == nil || q == nil {
		return nil, errors.New("rl: nil environment or Q function")
	}
	if cfg.Rng == nil {
		return nil, errors.New("rl: AgentConfig.Rng is required")
	}
	cfg = cfg.withDefaults(sim.Env().K())
	return &Agent{
		sim:        sim,
		q:          q,
		minis:      NewMiniActions(sim.Env()),
		cfg:        cfg,
		replay:     NewReplay(cfg.ReplayCapacity),
		eps:        cfg.Epsilon,
		loss:       math.Inf(1),
		batch:      make([]Experience, 0, cfg.BatchSize),
		targets:    make([]float64, cfg.BatchSize),
		nextS:      make([]env.State, 0, cfg.BatchSize),
		nextT:      make([]int, 0, cfg.BatchSize),
		actScratch: make(env.Action, sim.Env().K()),
	}, nil
}

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.eps }

// SetEpsilon overrides the exploration rate, clamped to [EpsilonMin, 1].
// The watchdog uses it to re-seed exploration after a rollback.
func (a *Agent) SetEpsilon(eps float64) {
	if eps < a.cfg.EpsilonMin {
		eps = a.cfg.EpsilonMin
	}
	if eps > 1 {
		eps = 1
	}
	a.eps = eps
	mEpsilon.Set(a.eps)
}

// Loss returns the most recent replay loss (+Inf before the first replay
// step and after a watchdog rollback).
func (a *Agent) Loss() float64 { return a.loss }

// ReplayBuffer exposes the agent's experience buffer for persistence.
func (a *Agent) ReplayBuffer() *Replay { return a.replay }

// Degraded returns how many greedy decisions fell back to the safe NoOp
// because the Q function produced non-finite values.
func (a *Agent) Degraded() int { return a.degraded }

// Q exposes the agent's Q function (for persistence).
func (a *Agent) Q() QFunc { return a.q }

// DecideEvery returns the agent's decision interval in time instances.
func (a *Agent) DecideEvery() int { return a.cfg.DecideEvery }

// Greedy composes the highest-quality safe composite action for (s, t):
// mini-actions are ranked by Q value and accepted greedily while each
// intermediate composite stays FSM-valid and safe, mirroring the
// exploitation loop's Max(Q[S_curr], c) fallback through the c-th best
// action.
func (a *Agent) Greedy(s env.State, t int) env.Action {
	q := a.q.Q(s, t)
	maxAbs, finite := scanQ(q)
	if !finite && a.wd != nil && a.wd.healNonFinite("non-finite Q values in greedy evaluation") {
		// The watchdog rolled the Q function back to a valid generation;
		// retry once against the healed policy before degrading.
		q = a.q.Q(s, t)
		maxAbs, finite = scanQ(q)
	}
	// Degraded mode: a diverged Q function (NaN/Inf values) yields no
	// trustworthy ranking, so recommend the always-available safe NoOp
	// rather than acting on garbage.
	if !finite {
		a.degraded++
		a.lastValue = 0
		mDegraded.Inc()
		return env.NoOp(len(s))
	}
	if a.wd != nil && a.wd.observeQMax(maxAbs) {
		// A runaway-magnitude trip: the values are finite but likely
		// garbage. Rank against the (possibly rolled-back) policy's fresh
		// values instead.
		if fresh := a.q.Q(s, t); finiteQ(fresh) {
			q = fresh
		}
	}
	act, best := a.composeGreedy(s, q)
	a.lastValue = best
	mGreedy.Inc()
	return act
}

// composeGreedy ranks the mini-action values in q and greedily accepts
// safe, actionable minis into a fresh composite — the shared back half of
// Greedy and CompileDecision. It returns the composite and the Q value of
// the highest-ranked accepted mini (the NoOp value when none is accepted).
// The caller must have established that q is finite.
func (a *Agent) composeGreedy(s env.State, q []float64) (env.Action, float64) {
	if cap(a.order) < len(q) {
		a.order = make([]int, len(q))
	}
	order := a.order[:len(q)]
	for i := range order {
		order[i] = i
	}
	// insertion sort by q desc (M is small; avoids allocation-heavy sort.Slice)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && q[order[j]] > q[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	noopQ := q[a.minis.NoOpIndex()]
	act := env.NoOp(len(s))
	added := 0
	best := noopQ
	for _, idx := range order {
		if idx == a.minis.NoOpIndex() || q[idx] <= noopQ {
			break // nothing left better than doing nothing
		}
		dev, da := a.minis.Decode(idx)
		if a.cfg.Actionable != nil && !a.cfg.Actionable(dev) {
			continue
		}
		if act[dev] != device.NoAction {
			continue
		}
		prev := act[dev]
		act[dev] = da
		if !a.sim.Safe(s, act) {
			act[dev] = prev
			continue
		}
		if added == 0 {
			best = q[idx] // highest-ranked accepted mini drives the value
		}
		added++
		if added >= a.cfg.MaxMiniActions {
			break
		}
	}
	return act, best
}

// CompileDecision evaluates the greedy policy for (s, t) with no serving
// side effects: no telemetry, no watchdog healing, no degraded counting,
// and no LastValue mutation. The policy compiler (internal/compiled) calls
// it while enumerating the state×time product. ok is false when the Q row
// is non-finite or beyond the watchdog's runaway threshold — regimes the
// live path handles with rollbacks and degraded fallbacks that a frozen
// table cannot reproduce, so compilation refuses to cover them and the
// caller keeps serving through the agent.
func (a *Agent) CompileDecision(s env.State, t int) (env.Action, float64, bool) {
	q := a.q.Q(s, t)
	maxAbs, finite := scanQ(q)
	if !finite {
		return nil, 0, false
	}
	if a.wd != nil && maxAbs > a.wd.cfg.MaxAbsQ {
		return nil, 0, false
	}
	act, best := a.composeGreedy(s, q)
	return act, best, true
}

// LastValue returns the Q value behind the most recent Greedy composition
// (0 after a degraded fallback). Decision logs pair it with the action.
func (a *Agent) LastValue() float64 { return a.lastValue }

// scanQ returns the largest |v| in q and whether every value is finite.
func scanQ(q []float64) (maxAbs float64, finite bool) {
	for _, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return maxAbs, false
		}
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	return maxAbs, true
}

func finiteQ(q []float64) bool {
	_, ok := scanQ(q)
	return ok
}

// explore draws a random safe composite action (the exploration branch of
// Algorithm 2: resample until P_safe admits the transition).
func (a *Agent) explore(s env.State) env.Action {
	k := len(s)
	for attempt := 0; attempt < 64; attempt++ {
		act := env.NoOp(k)
		// 0..MaxMiniActions mini-actions; zero keeps the idle transition in
		// the experience stream so the agent learns the value of waiting.
		n := a.cfg.Rng.Intn(a.cfg.MaxMiniActions + 1)
		for j := 0; j < n; j++ {
			dev := a.cfg.Rng.Intn(k)
			if a.cfg.Actionable != nil && !a.cfg.Actionable(dev) {
				continue
			}
			valid := a.sim.Env().Device(dev).ValidActions(s[dev])
			if len(valid) == 0 {
				continue
			}
			act[dev] = valid[a.cfg.Rng.Intn(len(valid))]
		}
		if a.sim.Safe(s, act) {
			return act
		}
	}
	// Fall back to any single safe mini-action, then to idling.
	for idx := 1; idx < a.minis.Total(); idx++ {
		dev, da := a.minis.Decode(idx)
		if a.cfg.Actionable != nil && !a.cfg.Actionable(dev) {
			continue
		}
		act := env.NoOp(k)
		act[dev] = da
		if a.sim.Safe(s, act) {
			return act
		}
	}
	return env.NoOp(k)
}

// bestSafeIdx returns the index of the highest-scoring safe single
// mini-action from next, including idling, breaking ties toward the lower
// index. The candidate composite is composed in the agent's reused action
// scratch, so the search allocates nothing.
func (a *Agent) bestSafeIdx(next env.State, score []float64) int {
	k := len(next)
	if cap(a.actScratch) < k {
		a.actScratch = make(env.Action, k)
	}
	act := a.actScratch[:k]
	bestIdx := a.minis.NoOpIndex()
	bestScore := score[bestIdx]
	for idx := 1; idx < a.minis.Total(); idx++ {
		if score[idx] <= bestScore {
			continue
		}
		dev, da := a.minis.Decode(idx)
		if a.cfg.Actionable != nil && !a.cfg.Actionable(dev) {
			continue
		}
		for i := range act {
			act[i] = device.NoAction
		}
		act[dev] = da
		if a.sim.Safe(next, act) {
			bestIdx, bestScore = idx, score[idx]
		}
	}
	return bestIdx
}

// maxNextQ returns the bootstrap value over the safe single mini-actions
// from next, including idling. Classic DQN takes max over the lagged
// target values; with DoubleDQN the online values pick the action and the
// target values score it. This is the per-pair path for backends without
// BatchQ; batchTargets is the batched equivalent.
func (a *Agent) maxNextQ(next env.State, t int) float64 {
	target := a.q.QTarget(next, t)
	score := target
	if a.cfg.DoubleDQN {
		a.onlineQ = append(a.onlineQ[:0], a.q.Q(next, t)...)
		score = a.onlineQ
	}
	bestIdx := a.bestSafeIdx(next, score)
	if a.cfg.DoubleDQN {
		// Re-evaluate the chosen action under the target network (the
		// target slice may have been invalidated by the online Q call).
		return a.q.QTarget(next, t)[bestIdx]
	}
	return target[bestIdx]
}

// batchTargets fills targets with the bootstrapped values R + γ·max Q(S',
// A') using one batched forward pass over the non-terminal successors
// (two with DoubleDQN) instead of per-experience network calls. The safe
// action search and tie-breaking match maxNextQ exactly, so the computed
// targets are bit-identical to the per-pair path.
func (a *Agent) batchTargets(bq BatchQ, batch []Experience, targets []float64) error {
	a.nextS, a.nextT = a.nextS[:0], a.nextT[:0]
	for _, exp := range batch {
		if !exp.Done {
			a.nextS = append(a.nextS, exp.Next)
			a.nextT = append(a.nextT, exp.NextT)
		}
	}
	var scoreRows, targetRows [][]float64
	if len(a.nextS) > 0 {
		var err error
		if a.cfg.DoubleDQN {
			// Online rows first: they live in the online network's arena and
			// survive the target pass, which uses the target network's.
			if scoreRows, err = bq.QBatch(a.nextS, a.nextT); err != nil {
				return err
			}
		}
		if targetRows, err = bq.QTargetBatch(a.nextS, a.nextT); err != nil {
			return err
		}
		if scoreRows == nil {
			scoreRows = targetRows
		}
	}
	j := 0
	for i, exp := range batch {
		target := exp.R
		if !exp.Done {
			bestIdx := a.bestSafeIdx(exp.Next, scoreRows[j])
			target += a.cfg.Gamma * targetRows[j][bestIdx]
			j++
		}
		targets[i] = target
	}
	return nil
}

// replayStep samples a mini-batch, computes bootstrapped targets
// R + γ·max Q(S', A') and updates the Q function (the Replay procedure of
// Algorithm 2). The mini-batch and target buffers are reused across steps,
// and backends implementing BatchQ evaluate all successors in one batched
// forward pass.
func (a *Agent) replayStep() error { return a.replayStepRng(a.cfg.Rng) }

// replayStepRng is replayStep sampling with an explicit RNG. Online
// learning (jarvisd) passes a per-step RNG derived from the accepted
// transition count so the update sequence is reproducible from the WAL
// regardless of how the agent's main Rng was exercised before the crash.
// A divergent update or non-finite loss is routed to the attached
// watchdog, which rolls back instead of surfacing an error.
func (a *Agent) replayStepRng(rng *rand.Rand) error {
	a.batch = a.replay.SampleInto(a.batch, a.cfg.BatchSize, rng)
	batch := a.batch
	if cap(a.targets) < len(batch) {
		a.targets = make([]float64, len(batch))
	}
	targets := a.targets[:len(batch)]
	if bq, ok := a.q.(BatchQ); ok {
		if err := a.batchTargets(bq, batch, targets); err != nil {
			return a.learnFailure(err)
		}
	} else {
		for i, exp := range batch {
			target := exp.R
			if !exp.Done {
				target += a.cfg.Gamma * a.maxNextQ(exp.Next, exp.NextT)
			}
			targets[i] = target
		}
	}
	loss, err := a.q.Update(batch, targets)
	if err != nil {
		return a.learnFailure(err)
	}
	a.loss = loss
	if a.wd != nil {
		a.wd.observeLoss(loss)
	}
	return nil
}

// learnFailure routes a learning-step error through the watchdog: a
// divergence (non-finite activations or loss in the network) trips it —
// rolling back to a valid generation when possible — and is swallowed, so
// one poisoned batch doesn't abort a training run or take down a daemon.
// Other errors surface unchanged.
func (a *Agent) learnFailure(err error) error {
	if a.wd != nil && nn.IsDivergence(err) {
		a.wd.trip(fmt.Sprintf("divergent update: %v", err))
		return nil
	}
	return err
}

// Observe appends a transition to the replay buffer without stepping the
// simulator — the online-learning ingest path, where the environment is
// the real home reporting through jarvisd. State slices are cloned, so the
// caller may reuse its buffers.
func (a *Agent) Observe(e Experience) {
	e.S = append(env.State(nil), e.S...)
	e.Next = append(env.State(nil), e.Next...)
	e.Minis = append([]int(nil), e.Minis...)
	a.replay.Add(e)
	mReplaySize.SetInt(int64(a.replay.Len()))
}

// LearnStep runs one replay update with the supplied RNG, if the buffer
// has a full mini-batch. Returns whether an update ran.
func (a *Agent) LearnStep(rng *rand.Rand) (bool, error) {
	return a.LearnStepTraced(nil, rng)
}

// Minis exposes the agent's mini-action codec so callers journaling
// transitions can encode composite actions compactly.
func (a *Agent) Minis() *MiniActions { return a.minis }

// Train runs Algorithm 2 for the configured number of episodes.
func (a *Agent) Train() (TrainStats, error) {
	stats := TrainStats{EpisodeRewards: make([]float64, 0, a.cfg.Episodes)}
	a.sim.ResetViolations()
	steps := 0
	for ep := 0; ep < a.cfg.Episodes; ep++ {
		violBefore := a.sim.Violations()
		s := a.sim.Reset()
		var total float64
		n := a.sim.Instances()
		for t := 0; t < n; t += a.cfg.DecideEvery {
			var act env.Action
			if a.cfg.Rng.Float64() < a.eps {
				act = a.explore(s)
			} else {
				act = a.Greedy(s, t)
			}
			decided := s
			var rsum float64
			var done bool
			for j := 0; j < a.cfg.DecideEvery && t+j < n; j++ {
				stepAct := act
				if j > 0 {
					stepAct = env.NoOp(len(s))
				}
				next, r, d, err := a.sim.Step(stepAct)
				if err != nil {
					return stats, fmt.Errorf("rl: train episode %d instance %d: %w", ep, t+j, err)
				}
				rsum += r
				s = next
				done = d
			}
			total += rsum
			a.replay.Add(Experience{
				S: decided, T: t, Minis: a.minis.Of(act), R: rsum,
				Next: s, NextT: t + a.cfg.DecideEvery, Done: done,
			})
			steps++
			mTrainSteps.Inc()
			mReplaySize.SetInt(int64(a.replay.Len()))
			if a.replay.Len() >= a.cfg.BatchSize && steps%a.cfg.ReplayEvery == 0 {
				if err := a.replayStep(); err != nil {
					return stats, err
				}
			}
		}
		stats.EpisodeRewards = append(stats.EpisodeRewards, total)
		stats.EpisodeViolations = append(stats.EpisodeViolations, a.sim.Violations()-violBefore)
		if a.eps > a.cfg.EpsilonMin && a.loss <= a.cfg.PreferableLoss {
			a.eps *= a.cfg.EpsilonDecay
			if a.eps < a.cfg.EpsilonMin {
				a.eps = a.cfg.EpsilonMin
			}
		}
		mTrainEpisodes.Inc()
		mEpsilon.Set(a.eps)
	}
	stats.FinalEpsilon = a.eps
	stats.FinalLoss = a.loss
	stats.Violations = a.sim.Violations()
	return stats, nil
}

// Evaluate runs one greedy (ε=0) episode and returns its cumulative reward
// and the actions taken per instance (NoOps fill non-decision instances).
func (a *Agent) Evaluate() (float64, []env.Action, error) {
	s := a.sim.Reset()
	var total float64
	n := a.sim.Instances()
	acts := make([]env.Action, 0, n)
	for t := 0; t < n; t++ {
		var act env.Action
		if t%a.cfg.DecideEvery == 0 {
			act = a.Greedy(s, t)
		} else {
			act = env.NoOp(len(s))
		}
		next, r, _, err := a.sim.Step(act)
		if err != nil {
			return total, acts, fmt.Errorf("rl: evaluate instance %d: %w", t, err)
		}
		total += r
		acts = append(acts, act)
		s = next
	}
	return total, acts, nil
}

// Recommend returns the best safe action for an arbitrary (state,
// instance) — the paper's "the user may take some actions manually and
// depend on Jarvis for others" mode.
func (a *Agent) Recommend(s env.State, t int) env.Action {
	return a.Greedy(s, t)
}
