package rl

import (
	"bytes"
	"math/rand"
	"testing"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/nn"
)

func TestSampleIntoSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewReplay(16)
	for i := 0; i < 16; i++ {
		r.Add(Experience{T: i})
	}
	// Clamped to the buffer length.
	if got := r.SampleInto(nil, 99, rng); len(got) != 16 {
		t.Fatalf("SampleInto clamps to Len: got %d", len(got))
	}
	// Without replacement: every draw of n ≤ Len yields distinct entries.
	for trial := 0; trial < 50; trial++ {
		got := r.SampleInto(nil, 10, rng)
		seen := map[int]bool{}
		for _, e := range got {
			if seen[e.T] {
				t.Fatalf("trial %d: duplicate experience %d in one mini-batch", trial, e.T)
			}
			seen[e.T] = true
		}
	}
	// dst is truncated and reused when capacity suffices.
	dst := make([]Experience, 0, 10)
	got := r.SampleInto(dst, 10, rng)
	if &got[0] != &dst[:1][0] {
		t.Error("SampleInto did not reuse the caller's backing array")
	}
	// Empty buffer yields an empty batch.
	if got := NewReplay(4).SampleInto(dst, 3, rng); len(got) != 0 {
		t.Errorf("empty buffer sampled %d experiences", len(got))
	}
}

func TestSampleIntoZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewReplay(256)
	for i := 0; i < 256; i++ {
		r.Add(Experience{T: i})
	}
	dst := make([]Experience, 0, 32)
	dst = r.SampleInto(dst, 32, rng) // warm the index buffer
	allocs := testing.AllocsPerRun(100, func() {
		dst = r.SampleInto(dst, 32, rng)
	})
	if allocs != 0 {
		t.Errorf("SampleInto steady state allocates %.1f objects per call, want 0", allocs)
	}
}

func TestSampleIntoCoversBuffer(t *testing.T) {
	// Every buffer entry must be reachable: repeated sampling from a small
	// buffer should touch all entries (the reused permutation must not pin
	// any index out of range).
	rng := rand.New(rand.NewSource(9))
	r := NewReplay(8)
	for i := 0; i < 8; i++ {
		r.Add(Experience{T: i})
	}
	seen := map[int]bool{}
	var dst []Experience
	for trial := 0; trial < 200; trial++ {
		dst = r.SampleInto(dst, 2, rng)
		for _, e := range dst {
			seen[e.T] = true
		}
	}
	if len(seen) != 8 {
		t.Errorf("200 draws of 2 touched only %d/8 buffer entries", len(seen))
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	e := testEnv(t)
	f := NewFeatures(e, 10)
	dst := make([]float64, f.Dim())
	for _, v := range dst {
		_ = v
	}
	// Poison dst to prove EncodeInto fully overwrites it.
	for i := range dst {
		dst[i] = 99
	}
	s := env.State{1, 0}
	got := f.EncodeInto(dst, s, 3)
	want := f.Encode(s, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature %d: EncodeInto %.17g, Encode %.17g", i, got[i], want[i])
		}
	}
}

// updatePerSampleReference is the original per-sample DQN.Update, preserved
// as the golden reference: encode each experience, predict the full Q row,
// mask in the targets, train.
func updatePerSampleReference(d *DQN, batch []Experience, targets []float64) (float64, error) {
	samples := make([]nn.Sample, len(batch))
	for i, exp := range batch {
		x := d.feat.Encode(exp.S, exp.T)
		y := d.net.Predict(x)
		for _, mi := range exp.Minis {
			y[mi] = targets[i]
		}
		samples[i] = nn.Sample{X: x, Y: y}
	}
	return d.net.TrainBatch(samples, nn.Huber, d.opt)
}

func TestDQNUpdateMatchesPerSampleReference(t *testing.T) {
	e := testEnv(t)
	mkBatch := func(rng *rand.Rand, n int) ([]Experience, []float64) {
		batch := make([]Experience, n)
		targets := make([]float64, n)
		for i := range batch {
			batch[i] = Experience{
				S:     env.State{device.StateID(rng.Intn(2)), device.StateID(rng.Intn(2))},
				T:     rng.Intn(10),
				Minis: []int{1 + rng.Intn(4)},
			}
			targets[i] = rng.NormFloat64()
		}
		return batch, targets
	}
	ref, err := NewDQN(e, 10, DQNConfig{Hidden: []int{16, 8}, LR: 0.01}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewDQN(e, 10, DQNConfig{Hidden: []int{16, 8}, LR: 0.01}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	dataRng := rand.New(rand.NewSource(22))
	for step := 0; step < 20; step++ {
		batch, targets := mkBatch(dataRng, 1+step%8)
		lRef, err1 := updatePerSampleReference(ref, batch, targets)
		lBat, err2 := bat.Update(batch, targets)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: %v / %v", step, err1, err2)
		}
		if lRef != lBat {
			t.Fatalf("step %d: batched loss %.17g != per-sample %.17g", step, lBat, lRef)
		}
	}
	var bufRef, bufBat bytes.Buffer
	if err := ref.Net().Save(&bufRef); err != nil {
		t.Fatal(err)
	}
	if err := bat.Net().Save(&bufBat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufRef.Bytes(), bufBat.Bytes()) {
		t.Error("batched and per-sample updates produced different weights")
	}
}

func TestDQNUpdateZeroAllocSteadyState(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(23))
	d, err := NewDQN(e, 10, DQNConfig{Hidden: []int{16}, LR: 0.005, TargetSync: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Experience, 16)
	targets := make([]float64, 16)
	for i := range batch {
		batch[i] = Experience{
			S:     env.State{device.StateID(rng.Intn(2)), device.StateID(rng.Intn(2))},
			T:     rng.Intn(10),
			Minis: []int{1 + rng.Intn(4)},
		}
		targets[i] = rng.NormFloat64()
	}
	// Warm: grows the batch scratch, the nn arena, and Adam's state maps,
	// and crosses a target sync.
	for i := 0; i < 8; i++ {
		if _, err := d.Update(batch, targets); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := d.Update(batch, targets); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DQN.Update steady state allocates %.1f objects per call, want 0", allocs)
	}
}

// noBatch hides the BatchQ surface of a QFunc so the agent falls back to
// the per-pair bootstrap path.
type noBatch struct{ QFunc }

// TestAgentBatchedTargetsMatchPerPair trains two identically seeded agents —
// one whose DQN exposes BatchQ, one wrapped so it does not — and demands
// identical training trajectories: the batched successor evaluation must be
// a pure performance change.
func TestAgentBatchedTargetsMatchPerPair(t *testing.T) {
	for _, double := range []bool{false, true} {
		name := "dqn"
		if double {
			name = "double-dqn"
		}
		t.Run(name, func(t *testing.T) {
			e := testEnv(t)
			run := func(wrap bool) TrainStats {
				rs := testReward(t, e, 10)
				sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
				if err != nil {
					t.Fatal(err)
				}
				d, err := NewDQN(e, 10, DQNConfig{Hidden: []int{12}, LR: 0.01, TargetSync: 8}, rand.New(rand.NewSource(31)))
				if err != nil {
					t.Fatal(err)
				}
				var q QFunc = d
				if wrap {
					q = noBatch{d}
				}
				a, err := NewAgent(sim, q, AgentConfig{
					Episodes:  6,
					BatchSize: 8,
					DoubleDQN: double,
					Rng:       rand.New(rand.NewSource(32)),
				})
				if err != nil {
					t.Fatal(err)
				}
				stats, err := a.Train()
				if err != nil {
					t.Fatal(err)
				}
				return stats
			}
			batched, perPair := run(false), run(true)
			if len(batched.EpisodeRewards) != len(perPair.EpisodeRewards) {
				t.Fatalf("episode counts differ: %d vs %d", len(batched.EpisodeRewards), len(perPair.EpisodeRewards))
			}
			for i := range batched.EpisodeRewards {
				if batched.EpisodeRewards[i] != perPair.EpisodeRewards[i] {
					t.Fatalf("episode %d reward: batched %.17g, per-pair %.17g",
						i, batched.EpisodeRewards[i], perPair.EpisodeRewards[i])
				}
			}
			if batched.FinalLoss != perPair.FinalLoss {
				t.Errorf("final loss: batched %.17g, per-pair %.17g", batched.FinalLoss, perPair.FinalLoss)
			}
		})
	}
}
