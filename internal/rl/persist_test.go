package rl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"jarvis/internal/env"
)

func TestTableQSaveLoadRoundTrip(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 5, 0.3)
	s := env.State{0, 1}
	if _, err := q.Update([]Experience{
		{S: s, T: 2, Minis: []int{1}},
		{S: env.State{1, 0}, T: 7, Minis: []int{3}},
	}, []float64{4, -2}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q2 := NewTableQ(e, 10, 5, 0.3)
	if err := q2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got, want := q2.Q(s, 2)[1], q.Q(s, 2)[1]; got != want {
		t.Errorf("loaded Q = %g, want %g", got, want)
	}
	if q2.Size() != q.Size() {
		t.Errorf("Size %d vs %d", q2.Size(), q.Size())
	}
}

func TestTableQLoadErrors(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 5, 0.3)
	cases := []string{
		`junk`,
		`{"alpha":0.3,"buckets":9,"instances":10,"miniActions":5,"rows":{}}`,  // bucket mismatch
		`{"alpha":0.3,"buckets":5,"instances":10,"miniActions":99,"rows":{}}`, // mini mismatch
		`{"alpha":0.3,"buckets":5,"instances":10,"miniActions":5,"rows":{"abc":[1,2,3,4,5]}}`,
		`{"alpha":0.3,"buckets":5,"instances":10,"miniActions":5,"rows":{"1.1":[1]}}`, // row width
	}
	for i, c := range cases {
		if err := q.Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: Load succeeded, want error", i)
		}
	}
}

func TestDQNSaveLoadRoundTrip(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(4))
	d, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	s := env.State{1, 0}
	if _, err := d.Update([]Experience{{S: s, T: 3, Minis: []int{2}}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), d.Q(s, 3)...)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d2, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	if err := d2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := d2.Q(s, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded Q differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
	// Target network follows the loaded weights.
	tq := d2.QTarget(s, 3)
	for i := range want {
		if tq[i] != want[i] {
			t.Fatal("target network not reset on load")
		}
	}
	if err := d2.Load(strings.NewReader("junk")); err == nil {
		t.Error("junk should fail to load")
	}
	// Shape mismatch: network trained for a wider architecture.
	wide, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var other bytes.Buffer
	if err := wide.Save(&other); err != nil {
		t.Fatal(err)
	}
	// Same env means same shape; force a mismatch by corrupting dims via a
	// different env (3 devices).
	e3 := func() *env.Environment { return testEnv3(t) }()
	d3, err := NewDQN(e3, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := d3.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if err := d2.Load(&buf3); err == nil {
		t.Error("shape mismatch should fail to load")
	}
}
