package rl

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/env"
)

func TestTableQSaveLoadRoundTrip(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 5, 0.3)
	s := env.State{0, 1}
	if _, err := q.Update([]Experience{
		{S: s, T: 2, Minis: []int{1}},
		{S: env.State{1, 0}, T: 7, Minis: []int{3}},
	}, []float64{4, -2}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q2 := NewTableQ(e, 10, 5, 0.3)
	if err := q2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got, want := q2.Q(s, 2)[1], q.Q(s, 2)[1]; got != want {
		t.Errorf("loaded Q = %g, want %g", got, want)
	}
	if q2.Size() != q.Size() {
		t.Errorf("Size %d vs %d", q2.Size(), q.Size())
	}
}

func TestTableQLoadErrors(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 5, 0.3)
	cases := []string{
		`junk`,
		`{"alpha":0.3,"buckets":9,"instances":10,"miniActions":5,"rows":{}}`,  // bucket mismatch
		`{"alpha":0.3,"buckets":5,"instances":10,"miniActions":99,"rows":{}}`, // mini mismatch
		`{"alpha":0.3,"buckets":5,"instances":10,"miniActions":5,"rows":{"abc":[1,2,3,4,5]}}`,
		`{"alpha":0.3,"buckets":5,"instances":10,"miniActions":5,"rows":{"1.1":[1]}}`, // row width
	}
	for i, c := range cases {
		if err := q.Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: Load succeeded, want error", i)
		}
	}
}

func TestDQNSaveLoadRoundTrip(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(4))
	d, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	s := env.State{1, 0}
	if _, err := d.Update([]Experience{{S: s, T: 3, Minis: []int{2}}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), d.Q(s, 3)...)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d2, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	if err := d2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := d2.Q(s, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded Q differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
	// Target network follows the loaded weights.
	tq := d2.QTarget(s, 3)
	for i := range want {
		if tq[i] != want[i] {
			t.Fatal("target network not reset on load")
		}
	}
	if err := d2.Load(strings.NewReader("junk")); err == nil {
		t.Error("junk should fail to load")
	}
	// Shape mismatch: network trained for a wider architecture.
	wide, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var other bytes.Buffer
	if err := wide.Save(&other); err != nil {
		t.Fatal(err)
	}
	// Same env means same shape; force a mismatch by corrupting dims via a
	// different env (3 devices).
	e3 := func() *env.Environment { return testEnv3(t) }()
	d3, err := NewDQN(e3, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := d3.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if err := d2.Load(&buf3); err == nil {
		t.Error("shape mismatch should fail to load")
	}
}

func TestPersistLoadTruncatedNeverPanics(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(6))

	q := NewTableQ(e, 10, 5, 0.3)
	if _, err := q.Update([]Experience{{S: env.State{0, 1}, T: 2, Minis: []int{1}}}, []float64{4}); err != nil {
		t.Fatal(err)
	}
	var tbuf bytes.Buffer
	if err := q.Save(&tbuf); err != nil {
		t.Fatal(err)
	}
	full := tbuf.Bytes()
	for cut := 0; cut < len(full)-1; cut += 5 {
		fresh := NewTableQ(e, 10, 5, 0.3)
		if err := fresh.Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("TableQ.Load of %d/%d bytes succeeded, want error", cut, len(full))
		}
	}

	d, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var dbuf bytes.Buffer
	if err := d.Save(&dbuf); err != nil {
		t.Fatal(err)
	}
	full = dbuf.Bytes()
	for cut := 0; cut < len(full)-1; cut += 97 {
		fresh, err := NewDQN(e, 10, DQNConfig{Hidden: []int{8}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("DQN.Load of %d/%d bytes succeeded, want error", cut, len(full))
		}
	}
}

func TestTableQAtomicCheckpointRoundTrip(t *testing.T) {
	e := testEnv(t)
	q := NewTableQ(e, 10, 5, 0.3)
	s := env.State{0, 1}
	if _, err := q.Update([]Experience{{S: s, T: 2, Minis: []int{1}}}, []float64{4}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "q.json")
	if err := checkpoint.WriteAtomic(path, q.Save); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	q2 := NewTableQ(e, 10, 5, 0.3)
	if err := checkpoint.Load(path, checkpoint.LoadOptions{}, q2.Load); err != nil {
		t.Fatalf("checkpoint.Load: %v", err)
	}
	if got, want := q2.Q(s, 2)[1], q.Q(s, 2)[1]; got != want {
		t.Errorf("restored Q = %g, want %g", got, want)
	}

	// A corrupt checkpoint must fail cleanly, leaving the target loadable.
	if err := os.WriteFile(path, []byte(`{"alpha":`), 0o644); err != nil {
		t.Fatal(err)
	}
	q3 := NewTableQ(e, 10, 5, 0.3)
	err := checkpoint.Load(path, checkpoint.LoadOptions{Sleep: func(time.Duration) {}}, q3.Load)
	if err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}

func TestReplaySaveLoadPreservesSampling(t *testing.T) {
	orig := NewReplay(16)
	for i := 0; i < 10; i++ {
		orig.Add(Experience{S: env.State{0, 1}, T: i, Minis: []int{i % 3}, R: float64(i)})
	}
	// Permute the internal sampling index so the snapshot carries real
	// Fisher-Yates state, not the identity permutation.
	orig.Sample(4, rand.New(rand.NewSource(99)))

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored := NewReplay(1)
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored len = %d, want %d", restored.Len(), orig.Len())
	}
	// Identically-seeded RNGs must now draw identical mini-batches: the
	// permutation state survived the round trip.
	rngA, rngB := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		a := orig.Sample(4, rngA)
		b := restored.Sample(4, rngB)
		for i := range a {
			if a[i].T != b[i].T || a[i].R != b[i].R {
				t.Fatalf("round %d sample %d: %+v vs %+v", round, i, a[i], b[i])
			}
		}
	}
	// Eviction schedule survives too: fill both to capacity and beyond.
	for i := 0; i < 20; i++ {
		e := Experience{T: 100 + i}
		orig.Add(e)
		restored.Add(e)
	}
	sa := orig.Sample(16, rand.New(rand.NewSource(3)))
	sb := restored.Sample(16, rand.New(rand.NewSource(3)))
	for i := range sa {
		if sa[i].T != sb[i].T {
			t.Fatalf("post-eviction divergence at %d: %d vs %d", i, sa[i].T, sb[i].T)
		}
	}
}

// A buffer saved between a sample and the next draw carries a stale
// permutation (Add grew the buffer past it). Save must omit it — Load
// rejects the length mismatch — and the restored buffer must still draw
// the same mini-batches as the original, which rebuilds the permutation
// on the next sample anyway.
func TestReplaySaveWithStalePermutationRoundTrips(t *testing.T) {
	orig := NewReplay(16)
	for i := 0; i < 8; i++ {
		orig.Add(Experience{T: i, R: float64(i)})
	}
	orig.Sample(4, rand.New(rand.NewSource(99)))
	orig.Add(Experience{T: 8, R: 8}) // permutation now stale: 8 entries, 9 experiences

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save with stale permutation: %v", err)
	}
	restored := NewReplay(1)
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored len = %d, want %d", restored.Len(), orig.Len())
	}
	rngA, rngB := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		a := orig.Sample(4, rngA)
		b := restored.Sample(4, rngB)
		for i := range a {
			if a[i].T != b[i].T {
				t.Fatalf("round %d sample %d: %d vs %d", round, i, a[i].T, b[i].T)
			}
		}
	}
}

func TestReplayLoadRejectsBadSnapshots(t *testing.T) {
	cases := map[string]string{
		"overflow":        `{"cap":2,"next":0,"full":false,"buf":[{},{},{}]}`,
		"bad ring":        `{"cap":4,"next":9,"full":false,"buf":[{}]}`,
		"idx wrong len":   `{"cap":4,"next":0,"full":false,"buf":[{},{}],"idx":[0]}`,
		"idx not permut":  `{"cap":4,"next":0,"full":false,"buf":[{},{}],"idx":[1,1]}`,
		"idx out of rng":  `{"cap":4,"next":0,"full":false,"buf":[{},{}],"idx":[0,5]}`,
		"not json at all": `nope`,
	}
	for name, raw := range cases {
		r := NewReplay(4)
		if err := r.Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: Load accepted bad snapshot", name)
		}
	}
}
