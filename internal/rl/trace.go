package rl

import (
	"math/rand"

	"jarvis/internal/env"
	"jarvis/internal/trace"
)

// Traced entry points for the serving pipeline: each wraps the plain method
// in a child span when the request was sampled. A nil span (tracing
// disabled, or this request lost the sampling draw) costs one nil check, so
// the training loops and experiments keep calling the plain methods with
// zero added work.

// GreedyTraced is Greedy under an "rl.select" child span annotated with the
// backing Q value and whether the composition degraded to the safe NoOp.
func (a *Agent) GreedyTraced(sp *trace.Span, s env.State, t int) env.Action {
	child := sp.Child("rl.select")
	before := a.degraded
	act := a.Greedy(s, t)
	if child != nil {
		child.AnnotateFloat("q", a.lastValue)
		child.AnnotateInt("minute", int64(t))
		if a.degraded > before {
			child.Annotate("degraded", "true")
		}
		child.End()
	}
	return act
}

// LearnStepTraced is LearnStep under an "rl.update" child span annotated
// with the mini-batch size and resulting loss. The buffer-depth check runs
// before the span starts, so a skipped update produces no span.
func (a *Agent) LearnStepTraced(sp *trace.Span, rng *rand.Rand) (bool, error) {
	if a.replay.Len() < a.cfg.BatchSize {
		return false, nil
	}
	child := sp.Child("rl.update")
	err := a.replayStepRng(rng)
	if child != nil {
		child.AnnotateInt("batch", int64(len(a.batch)))
		child.AnnotateFloat("loss", a.loss)
		child.End()
	}
	if err != nil {
		return false, err
	}
	return true, nil
}
