package rl

import (
	"math/rand"

	"jarvis/internal/env"
)

// Experience is one agent step stored for replay (Section V-A6): the state
// and instance it acted in, the mini-actions composing the executed
// composite action, the observed reward, and the successor.
type Experience struct {
	S     env.State
	T     int
	Minis []int // mini-action indices of the composite action
	R     float64
	Next  env.State
	NextT int
	Done  bool
}

// Replay is a fixed-capacity ring buffer of experiences with uniform
// random sampling — the paper's "agent remembers the actions and
// corresponding cumulative rewards for all previous replays of prior
// episodes".
type Replay struct {
	buf  []Experience
	next int
	full bool
}

// NewReplay creates a buffer holding at most capacity experiences.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{buf: make([]Experience, 0, capacity)}
}

// Add stores an experience, evicting the oldest when full.
func (r *Replay) Add(e Experience) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.full = true
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored experiences.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws a uniform random mini-batch of size n (with replacement
// when n exceeds the buffer length is never needed: n is clamped).
func (r *Replay) Sample(n int, rng *rand.Rand) []Experience {
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]Experience, 0, n)
	perm := rng.Perm(len(r.buf))
	for _, i := range perm[:n] {
		out = append(out, r.buf[i])
	}
	return out
}
