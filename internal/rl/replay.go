package rl

import (
	"math/rand"

	"jarvis/internal/env"
)

// Experience is one agent step stored for replay (Section V-A6): the state
// and instance it acted in, the mini-actions composing the executed
// composite action, the observed reward, and the successor.
type Experience struct {
	S     env.State
	T     int
	Minis []int // mini-action indices of the composite action
	R     float64
	Next  env.State
	NextT int
	Done  bool
}

// Replay is a fixed-capacity ring buffer of experiences with uniform
// random sampling — the paper's "agent remembers the actions and
// corresponding cumulative rewards for all previous replays of prior
// episodes".
type Replay struct {
	buf  []Experience
	next int
	full bool
	// idx is a reused permutation of buffer indices for SampleInto's
	// partial Fisher–Yates; rebuilt only when the buffer grows.
	idx []int
}

// NewReplay creates a buffer holding at most capacity experiences.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{buf: make([]Experience, 0, capacity)}
}

// Add stores an experience, evicting the oldest when full.
func (r *Replay) Add(e Experience) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.full = true
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored experiences.
func (r *Replay) Len() int { return len(r.buf) }

// SampleInto draws a uniform random mini-batch of size n without
// replacement (clamped to the buffer length) into dst, truncating it first,
// and returns the filled slice. It shuffles only the first n positions of a
// reused internal index buffer (a partial Fisher–Yates), so a call with
// sufficient dst capacity performs zero allocations. Because each draw is
// uniform over the remaining indices, leaving the buffer permuted between
// calls does not bias later samples.
func (r *Replay) SampleInto(dst []Experience, n int, rng *rand.Rand) []Experience {
	if n > len(r.buf) {
		n = len(r.buf)
	}
	dst = dst[:0]
	if n <= 0 {
		return dst
	}
	if len(r.idx) != len(r.buf) {
		r.idx = r.idx[:0]
		for i := range r.buf {
			r.idx = append(r.idx, i)
		}
	}
	for j := 0; j < n; j++ {
		k := j + rng.Intn(len(r.idx)-j)
		r.idx[j], r.idx[k] = r.idx[k], r.idx[j]
		dst = append(dst, r.buf[r.idx[j]])
	}
	return dst
}

// Sample draws a uniform random mini-batch of size n into a fresh slice; it
// is SampleInto with a new destination.
func (r *Replay) Sample(n int, rng *rand.Rand) []Experience {
	return r.SampleInto(make([]Experience, 0, n), n, rng)
}
