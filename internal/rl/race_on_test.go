//go:build race

package rl

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive assertions relax or skip under it.
const raceEnabled = true
