package rl

import (
	"encoding/json"
	"fmt"
	"io"

	"jarvis/internal/nn"
)

// tableQJSON is the serialized form of a TableQ.
type tableQJSON struct {
	Alpha   float64              `json:"alpha"`
	Buckets int                  `json:"buckets"`
	N       int                  `json:"instances"`
	Minis   int                  `json:"miniActions"`
	Rows    map[string][]float64 `json:"rows"`
}

// Save persists the Q table as JSON, so a trained policy can be reloaded
// without retraining.
func (t *TableQ) Save(w io.Writer) error {
	out := tableQJSON{
		Alpha:   t.Alpha,
		Buckets: t.buckets,
		N:       t.n,
		Minis:   t.minis.Total(),
		Rows:    make(map[string][]float64, len(t.q)),
	}
	for key, row := range t.q {
		out.Rows[fmt.Sprintf("%d.%d", key.s, key.b)] = row
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("rl: save table: %w", err)
	}
	return nil
}

// Load restores a Q table saved with Save into t. The mini-action space
// and episode shape must match.
func (t *TableQ) Load(r io.Reader) error {
	var in tableQJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("rl: load table: %w", err)
	}
	if in.Minis != t.minis.Total() {
		return fmt.Errorf("rl: load table: %d mini-actions, environment has %d", in.Minis, t.minis.Total())
	}
	if in.Buckets != t.buckets || in.N != t.n {
		return fmt.Errorf("rl: load table: shape %d buckets/%d instances, want %d/%d",
			in.Buckets, in.N, t.buckets, t.n)
	}
	rows := make(map[tableKey][]float64, len(in.Rows))
	for keyStr, row := range in.Rows {
		var key tableKey
		if _, err := fmt.Sscanf(keyStr, "%d.%d", &key.s, &key.b); err != nil {
			return fmt.Errorf("rl: load table: bad row key %q: %w", keyStr, err)
		}
		if len(row) != in.Minis {
			return fmt.Errorf("rl: load table: row %q has %d values, want %d", keyStr, len(row), in.Minis)
		}
		rows[key] = row
	}
	if in.Alpha > 0 {
		t.Alpha = in.Alpha
	}
	t.q = rows
	return nil
}

// Save persists the DQN's online network (the target network is
// reconstructed on load).
func (d *DQN) Save(w io.Writer) error { return d.net.Save(w) }

// Load restores the DQN's weights from a model saved with Save and resets
// the target network to match.
func (d *DQN) Load(r io.Reader) error {
	loaded, err := nn.Load(r)
	if err != nil {
		return err
	}
	if loaded.Inputs() != d.net.Inputs() || loaded.Outputs() != d.net.Outputs() {
		return fmt.Errorf("rl: load dqn: model shape %d->%d, want %d->%d",
			loaded.Inputs(), loaded.Outputs(), d.net.Inputs(), d.net.Outputs())
	}
	d.net = loaded
	d.target = loaded.Clone()
	d.updates = 0
	return nil
}
