package rl

import (
	"encoding/json"
	"fmt"
	"io"

	"jarvis/internal/nn"
)

// tableQJSON is the serialized form of a TableQ.
type tableQJSON struct {
	Alpha   float64              `json:"alpha"`
	Buckets int                  `json:"buckets"`
	N       int                  `json:"instances"`
	Minis   int                  `json:"miniActions"`
	Rows    map[string][]float64 `json:"rows"`
}

// Save persists the Q table as JSON, so a trained policy can be reloaded
// without retraining.
func (t *TableQ) Save(w io.Writer) error {
	out := tableQJSON{
		Alpha:   t.Alpha,
		Buckets: t.buckets,
		N:       t.n,
		Minis:   t.minis.Total(),
		Rows:    make(map[string][]float64, len(t.q)),
	}
	for key, row := range t.q {
		out.Rows[fmt.Sprintf("%d.%d", key.s, key.b)] = row
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("rl: save table: %w", err)
	}
	return nil
}

// Load restores a Q table saved with Save into t. The mini-action space
// and episode shape must match.
func (t *TableQ) Load(r io.Reader) error {
	var in tableQJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("rl: load table: %w", err)
	}
	if in.Minis != t.minis.Total() {
		return fmt.Errorf("rl: load table: %d mini-actions, environment has %d", in.Minis, t.minis.Total())
	}
	if in.Buckets != t.buckets || in.N != t.n {
		return fmt.Errorf("rl: load table: shape %d buckets/%d instances, want %d/%d",
			in.Buckets, in.N, t.buckets, t.n)
	}
	rows := make(map[tableKey][]float64, len(in.Rows))
	for keyStr, row := range in.Rows {
		var key tableKey
		if _, err := fmt.Sscanf(keyStr, "%d.%d", &key.s, &key.b); err != nil {
			return fmt.Errorf("rl: load table: bad row key %q: %w", keyStr, err)
		}
		if len(row) != in.Minis {
			return fmt.Errorf("rl: load table: row %q has %d values, want %d", keyStr, len(row), in.Minis)
		}
		rows[key] = row
	}
	if in.Alpha > 0 {
		t.Alpha = in.Alpha
	}
	t.q = rows
	return nil
}

// replayJSON is the serialized form of a Replay. The sampling permutation
// (idx) is part of the state: SampleInto's partial Fisher–Yates leaves it
// permuted between calls, so a restore that dropped it would draw
// different mini-batches than the uncrashed process and the recovered Q
// function would silently diverge from the pre-crash trajectory.
type replayJSON struct {
	Cap  int          `json:"cap"`
	Next int          `json:"next"`
	Full bool         `json:"full"`
	Buf  []Experience `json:"buf"`
	Idx  []int        `json:"idx,omitempty"`
}

// Save persists the replay buffer — contents, ring position, and sampling
// permutation — as JSON. The permutation is only meaningful while it spans
// the whole buffer: once Add has grown the buffer past it, SampleInto will
// rebuild it from scratch on the next draw, so a stale permutation is
// omitted rather than saved (Load would reject the length mismatch).
func (r *Replay) Save(w io.Writer) error {
	idx := r.idx
	if len(idx) != len(r.buf) {
		idx = nil
	}
	out := replayJSON{Cap: cap(r.buf), Next: r.next, Full: r.full, Buf: r.buf, Idx: idx}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("rl: save replay: %w", err)
	}
	return nil
}

// Load restores a replay buffer saved with Save, replacing r's contents.
// The capacity recorded in the snapshot wins, so a restored buffer evicts
// on the same schedule as the original.
func (r *Replay) Load(rd io.Reader) error {
	var in replayJSON
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return fmt.Errorf("rl: load replay: %w", err)
	}
	if in.Cap <= 0 || len(in.Buf) > in.Cap {
		return fmt.Errorf("rl: load replay: %d experiences exceed capacity %d", len(in.Buf), in.Cap)
	}
	if in.Next < 0 || (len(in.Buf) > 0 && in.Next >= in.Cap) {
		return fmt.Errorf("rl: load replay: ring position %d out of range", in.Next)
	}
	if len(in.Idx) != 0 {
		if len(in.Idx) != len(in.Buf) {
			return fmt.Errorf("rl: load replay: %d permutation entries for %d experiences", len(in.Idx), len(in.Buf))
		}
		seen := make([]bool, len(in.Buf))
		for _, v := range in.Idx {
			if v < 0 || v >= len(in.Buf) || seen[v] {
				return fmt.Errorf("rl: load replay: idx is not a permutation of 0..%d", len(in.Buf)-1)
			}
			seen[v] = true
		}
	}
	buf := make([]Experience, len(in.Buf), in.Cap)
	copy(buf, in.Buf)
	r.buf = buf
	r.next = in.Next
	r.full = in.Full
	r.idx = in.Idx
	return nil
}

// Save persists the DQN's online network (the target network is
// reconstructed on load).
func (d *DQN) Save(w io.Writer) error { return d.net.Save(w) }

// Load restores the DQN's weights from a model saved with Save and resets
// the target network to match.
func (d *DQN) Load(r io.Reader) error {
	loaded, err := nn.Load(r)
	if err != nil {
		return err
	}
	if loaded.Inputs() != d.net.Inputs() || loaded.Outputs() != d.net.Outputs() {
		return fmt.Errorf("rl: load dqn: model shape %d->%d, want %d->%d",
			loaded.Inputs(), loaded.Outputs(), d.net.Inputs(), d.net.Outputs())
	}
	d.net = loaded
	d.target = loaded.Clone()
	d.updates = 0
	return nil
}
