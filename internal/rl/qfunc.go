package rl

import (
	"fmt"
	"math/rand"
	"time"

	"jarvis/internal/env"
	"jarvis/internal/nn"
)

// QFunc estimates mini-action quality values for a (state, instance) pair
// and learns from replayed experience. Implementations: TableQ (exact,
// small environments) and DQN (deep Q network, Section V-A6/7).
type QFunc interface {
	// Q returns one quality value per mini-action. The returned slice is
	// owned by the QFunc and overwritten on the next call.
	Q(s env.State, t int) []float64
	// QTarget returns the bootstrap-target quality values — a lagged copy
	// for the DQN (the standard target-network stabilizer), identical to
	// Q for the tabular backend.
	QTarget(s env.State, t int) []float64
	// Update learns from a mini-batch: every executed mini-action's value
	// moves toward target(exp). It returns the training loss.
	Update(batch []Experience, targets []float64) (float64, error)
}

// BatchQ is the optional batched surface a QFunc may implement: one forward
// pass over many (state, instance) pairs instead of per-pair calls. The
// returned rows alias network-owned scratch — row i is the Q vector of
// (states[i], ts[i]) — and stay valid only until the next batched call on
// the same underlying network. The DQN implements it; the tabular backend
// gains nothing from batching and deliberately does not.
type BatchQ interface {
	// QBatch evaluates the online Q values for every pair.
	QBatch(states []env.State, ts []int) ([][]float64, error)
	// QTargetBatch evaluates the lagged target Q values for every pair.
	QTargetBatch(states []env.State, ts []int) ([][]float64, error)
}

// TimeBucketed is the optional coarse-time surface a QFunc may implement:
// backends whose values depend on the time instance only through a bucket
// index report their resolution here, so the policy compiler
// (internal/compiled) can enumerate one representative instance per bucket
// instead of every minute of the day. Backends without it (the DQN, whose
// features encode the exact minute) compile per instance.
type TimeBucketed interface {
	// TimeBuckets returns the bucket count and the episode length in
	// instances; instance t falls into bucket t*buckets/instances
	// (clamped to the last bucket).
	TimeBuckets() (buckets, instances int)
}

// RowIterator is the optional sparse-enumeration surface a QFunc may
// implement: backends storing explicit rows report every populated
// (state-key, bucket) pair, so the policy compiler evaluates only those
// and defaults the rest to the provable zero-row decision (the safe NoOp).
type RowIterator interface {
	Rows(fn func(stateKey uint64, bucket int))
}

// TableQ is an exact tabular Q function over (state-key, instance bucket,
// mini-action). It is exact for the small Table I environment and serves
// as the no-DNN ablation baseline.
type TableQ struct {
	e     *env.Environment
	minis *MiniActions
	// Alpha is the tabular learning rate α of the temporal-difference
	// update (Section II-B).
	Alpha float64
	// buckets folds time instances together to keep the table small;
	// 1 bucket = time-independent.
	buckets int
	n       int
	q       map[tableKey][]float64
	out     []float64
}

type tableKey struct {
	s uint64
	b int
}

// NewTableQ builds a tabular Q function with the given time-bucket count
// (minimum 1) for episodes of n instances.
func NewTableQ(e *env.Environment, n, buckets int, alpha float64) *TableQ {
	if buckets < 1 {
		buckets = 1
	}
	if alpha <= 0 {
		alpha = 0.1
	}
	m := NewMiniActions(e)
	return &TableQ{
		e: e, minis: m, Alpha: alpha,
		buckets: buckets, n: n,
		q:   make(map[tableKey][]float64),
		out: make([]float64, m.Total()),
	}
}

func (t *TableQ) bucket(inst int) int {
	if t.n <= 0 {
		return 0
	}
	b := inst * t.buckets / t.n
	if b >= t.buckets {
		b = t.buckets - 1
	}
	return b
}

func (t *TableQ) row(s env.State, inst int) []float64 {
	key := tableKey{s: t.e.StateKey(s), b: t.bucket(inst)}
	row, ok := t.q[key]
	if !ok {
		row = make([]float64, t.minis.Total())
		t.q[key] = row
	}
	return row
}

// QTarget implements QFunc; the tabular backend has no lag.
func (t *TableQ) QTarget(s env.State, inst int) []float64 { return t.Q(s, inst) }

// Q implements QFunc. Reading an unseen (state, bucket) returns zeros
// without populating the table.
func (t *TableQ) Q(s env.State, inst int) []float64 {
	key := tableKey{s: t.e.StateKey(s), b: t.bucket(inst)}
	row, ok := t.q[key]
	if !ok {
		for i := range t.out {
			t.out[i] = 0
		}
		return t.out
	}
	copy(t.out, row)
	return t.out
}

// Update implements QFunc using the temporal-difference rule
// Q ← Q + α(target − Q).
func (t *TableQ) Update(batch []Experience, targets []float64) (float64, error) {
	if !mUpdateLatencyTable.Enabled() {
		return t.update(batch, targets)
	}
	t0 := time.Now()
	loss, err := t.update(batch, targets)
	mUpdateLatencyTable.Observe(time.Since(t0))
	return loss, err
}

func (t *TableQ) update(batch []Experience, targets []float64) (float64, error) {
	if len(batch) != len(targets) {
		return 0, fmt.Errorf("rl: %d experiences but %d targets", len(batch), len(targets))
	}
	var loss float64
	for i, exp := range batch {
		row := t.row(exp.S, exp.T)
		for _, mi := range exp.Minis {
			d := targets[i] - row[mi]
			row[mi] += t.Alpha * d
			loss += d * d
		}
	}
	return loss / float64(len(batch)), nil
}

// Size returns the number of populated table rows.
func (t *TableQ) Size() int { return len(t.q) }

// TimeBuckets implements TimeBucketed: tabular values depend on time only
// through the bucket fold, so the policy compiler enumerates buckets.
func (t *TableQ) TimeBuckets() (buckets, instances int) { return t.buckets, t.n }

// Rows implements RowIterator, visiting every populated (state-key, bucket)
// pair in arbitrary order. Unpopulated rows read as all zeros, for which
// the greedy composition provably yields the NoOp with value 0.
func (t *TableQ) Rows(fn func(stateKey uint64, bucket int)) {
	for k := range t.q {
		fn(k.s, k.b)
	}
}

var _ QFunc = (*TableQ)(nil)
var _ TimeBucketed = (*TableQ)(nil)
var _ RowIterator = (*TableQ)(nil)

// DQNConfig parameterizes the deep Q network. The paper's prototype uses
// two hidden layers and learning rate 0.001 (Section V-A6).
type DQNConfig struct {
	// Hidden lists hidden-layer widths (default [64, 64]).
	Hidden []int
	// LR is the Adam learning rate (default 0.001).
	LR float64
	// TargetSync copies the online network into the lagged target network
	// every this many Update calls (default 64; 1 disables lagging).
	TargetSync int
}

// DQN approximates Q with a feed-forward network whose output head has one
// unit per mini-action (the action-space-explosion fix of Section V-A7).
type DQN struct {
	feat    *Features
	minis   *MiniActions
	net     *nn.Network
	target  *nn.Network
	opt     *nn.Adam
	sync    int
	updates int

	// Batched scratch, grown on demand by ensureBatch and reused for the
	// DQN's lifetime: xback/yback are flat rows×dim / rows×minis planes,
	// xrows are row views into xback, samples pair the row views so Update
	// performs zero steady-state allocations.
	xback   []float64
	yback   []float64
	xrows   [][]float64
	samples []nn.Sample
	xone    []float64 // single-pair encode scratch for Q/QTarget
}

var _ QFunc = (*DQN)(nil)
var _ BatchQ = (*DQN)(nil)

// NewDQN builds the network for episodes of n instances.
func NewDQN(e *env.Environment, n int, cfg DQNConfig, rng *rand.Rand) (*DQN, error) {
	hidden := cfg.Hidden
	if len(hidden) == 0 {
		hidden = []int{64, 64}
	}
	lr := cfg.LR
	if lr <= 0 {
		lr = 0.001
	}
	feat := NewFeatures(e, n)
	minis := NewMiniActions(e)
	specs := make([]nn.LayerSpec, 0, len(hidden)+1)
	for _, h := range hidden {
		specs = append(specs, nn.LayerSpec{Units: h, Act: nn.ReLU})
	}
	specs = append(specs, nn.LayerSpec{Units: minis.Total(), Act: nn.Linear})
	net, err := nn.New(nn.Config{Inputs: feat.Dim(), Layers: specs}, rng)
	if err != nil {
		return nil, fmt.Errorf("rl: dqn: %w", err)
	}
	syncEvery := cfg.TargetSync
	if syncEvery <= 0 {
		syncEvery = 64
	}
	return &DQN{
		feat: feat, minis: minis,
		net: net, target: net.Clone(),
		opt: nn.NewAdam(lr), sync: syncEvery,
	}, nil
}

// encodeOne encodes a single pair into a reused scratch row (Forward copies
// the input, so the scratch may be handed straight to either network).
func (d *DQN) encodeOne(s env.State, t int) []float64 {
	if d.xone == nil {
		d.xone = make([]float64, d.feat.Dim())
	}
	return d.feat.EncodeInto(d.xone, s, t)
}

// Q implements QFunc.
func (d *DQN) Q(s env.State, t int) []float64 {
	return d.net.Forward(d.encodeOne(s, t))
}

// QTarget implements QFunc using the lagged target network.
func (d *DQN) QTarget(s env.State, t int) []float64 {
	return d.target.Forward(d.encodeOne(s, t))
}

// ensureBatch sizes the reused batch scratch for n rows. Row views keep
// their three-index caps so a downstream append can never bleed into the
// next row.
func (d *DQN) ensureBatch(n int) {
	if n <= cap(d.samples) {
		d.samples = d.samples[:n]
		d.xrows = d.xrows[:n]
		return
	}
	dim, out := d.feat.Dim(), d.minis.Total()
	d.xback = make([]float64, n*dim)
	d.yback = make([]float64, n*out)
	d.xrows = make([][]float64, n)
	d.samples = make([]nn.Sample, n)
	for i := 0; i < n; i++ {
		d.xrows[i] = d.xback[i*dim : (i+1)*dim : (i+1)*dim]
		d.samples[i] = nn.Sample{
			X: d.xrows[i],
			Y: d.yback[i*out : (i+1)*out : (i+1)*out],
		}
	}
}

// qBatch encodes every pair into the reused feature rows and runs one
// batched forward pass through net.
func (d *DQN) qBatch(net *nn.Network, states []env.State, ts []int) ([][]float64, error) {
	if len(states) != len(ts) {
		return nil, fmt.Errorf("rl: %d states but %d instances", len(states), len(ts))
	}
	if len(states) == 0 {
		return nil, nil
	}
	d.ensureBatch(len(states))
	for i, s := range states {
		d.feat.EncodeInto(d.xrows[i], s, ts[i])
	}
	return net.ForwardBatch(d.xrows)
}

// QBatch implements BatchQ on the online network.
func (d *DQN) QBatch(states []env.State, ts []int) ([][]float64, error) {
	return d.qBatch(d.net, states, ts)
}

// QTargetBatch implements BatchQ on the lagged target network. Because the
// online and target networks own separate scratch arenas, rows from a
// QBatch call over the same pairs stay valid across this call.
func (d *DQN) QTargetBatch(states []env.State, ts []int) ([][]float64, error) {
	return d.qBatch(d.target, states, ts)
}

// Update implements QFunc: for each experience, the target vector equals
// the current prediction except at the executed mini-action indices, which
// move to the supplied target — the standard masked DQN regression. The
// predictions come from one batched forward pass and the regression runs
// through the batched training engine, so a warm Update allocates nothing
// and its results are bit-identical to the per-sample formulation.
//
// The latency observation is deliberately outside the measured body: when
// telemetry is disabled the wrapper reduces to one atomic load, which is
// how TestDQNUpdateInstrumentationOverhead pins the instrumented-vs-bare
// delta to ≤ 3% ns/op and 0 allocs/op.
func (d *DQN) Update(batch []Experience, targets []float64) (float64, error) {
	if !mUpdateLatencyDQN.Enabled() {
		return d.update(batch, targets)
	}
	t0 := time.Now()
	loss, err := d.update(batch, targets)
	mUpdateLatencyDQN.Observe(time.Since(t0))
	return loss, err
}

func (d *DQN) update(batch []Experience, targets []float64) (float64, error) {
	if len(batch) != len(targets) {
		return 0, fmt.Errorf("rl: %d experiences but %d targets", len(batch), len(targets))
	}
	if len(batch) == 0 {
		return 0, fmt.Errorf("rl: empty update batch")
	}
	d.ensureBatch(len(batch))
	for i, exp := range batch {
		d.feat.EncodeInto(d.xrows[i], exp.S, exp.T)
	}
	preds, err := d.net.ForwardBatch(d.xrows)
	if err != nil {
		return 0, fmt.Errorf("rl: dqn update: %w", err)
	}
	for i := range batch {
		y := d.samples[i].Y
		copy(y, preds[i])
		for _, mi := range batch[i].Minis {
			y[mi] = targets[i]
		}
	}
	loss, err := d.net.TrainBatch(d.samples, nn.Huber, d.opt)
	if err != nil {
		return 0, fmt.Errorf("rl: dqn update: %w", err)
	}
	d.updates++
	if d.updates%d.sync == 0 {
		if err := d.target.CopyWeightsFrom(d.net); err != nil {
			return 0, fmt.Errorf("rl: dqn target sync: %w", err)
		}
	}
	return loss, nil
}

// Net exposes the underlying network (for persistence).
func (d *DQN) Net() *nn.Network { return d.net }
