package rl

import (
	"fmt"
	"math"
)

// WatchdogConfig tunes divergence detection and recovery for an agent.
type WatchdogConfig struct {
	// MaxAbsQ is the runaway threshold: a greedy evaluation whose largest
	// |Q| exceeds it counts toward the patience streak (default 1e6).
	MaxAbsQ float64
	// MaxLoss is the runaway threshold for the replay loss (default 1e9).
	MaxLoss float64
	// Patience is how many consecutive runaway observations are tolerated
	// before the watchdog trips (default 3). Non-finite values trip
	// immediately regardless of patience — NaN never heals on its own.
	Patience int
	// ReExploreEpsilon is the exploration rate re-seeded after a rollback
	// (default 0.5): the restored policy predates whatever experience drove
	// it off a cliff, so the agent re-explores instead of re-diverging down
	// the same greedy path.
	ReExploreEpsilon float64
	// Restore rolls the agent's Q function back to the newest valid
	// checkpoint generation. Nil means the watchdog can only count trips,
	// not recover from them.
	Restore func() error
	// Logf receives one line per trip and rollback; nil discards.
	Logf func(format string, args ...any)
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.MaxAbsQ <= 0 {
		c.MaxAbsQ = 1e6
	}
	if c.MaxLoss <= 0 {
		c.MaxLoss = 1e9
	}
	if c.Patience <= 0 {
		c.Patience = 3
	}
	if c.ReExploreEpsilon <= 0 {
		c.ReExploreEpsilon = 0.5
	}
	return c
}

// WatchdogStats is a snapshot of the watchdog's lifetime activity,
// exported by jarvisd's /healthz.
type WatchdogStats struct {
	// Trips counts divergence detections (non-finite or runaway values).
	Trips int `json:"trips"`
	// Rollbacks counts successful restores to an earlier generation.
	Rollbacks int `json:"rollbacks"`
	// RestoreFailures counts trips whose restore attempt itself failed —
	// the agent is left degraded (Greedy serves safe NoOps).
	RestoreFailures int `json:"restore_failures"`
	// LastReason describes the most recent trip.
	LastReason string `json:"last_reason,omitempty"`
}

// Watchdog monitors an agent's Q values and replay loss for divergence and
// rolls the agent back to a known-good checkpoint generation when learning
// goes off the rails. Two trip modes: non-finite values (NaN/Inf in a
// greedy evaluation, a divergent network update, a non-finite loss) trip
// immediately; runaway-but-finite magnitudes trip only after Patience
// consecutive observations, so one outlier batch doesn't discard learned
// progress. A trip attempts Restore, then re-seeds ε to ReExploreEpsilon
// and resets the loss estimate.
//
// The watchdog shares its agent's synchronization discipline: callers that
// serialize agent access (as jarvisd does) get consistent stats for free.
type Watchdog struct {
	cfg    WatchdogConfig
	agent  *Agent
	streak int
	stats  WatchdogStats
}

// AttachWatchdog hooks a watchdog into the agent's greedy and learning
// paths and returns it. Only one watchdog may be attached; attaching again
// replaces the previous one.
func (a *Agent) AttachWatchdog(cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{cfg: cfg.withDefaults(), agent: a}
	a.wd = w
	return w
}

// Stats returns a snapshot of the watchdog's counters.
func (w *Watchdog) Stats() WatchdogStats { return w.stats }

func (w *Watchdog) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// observeQMax feeds the largest |Q| of a greedy evaluation into the
// runaway streak. Returns true if the observation tripped the watchdog.
func (w *Watchdog) observeQMax(maxAbs float64) bool {
	if maxAbs <= w.cfg.MaxAbsQ {
		w.streak = 0
		return false
	}
	w.streak++
	if w.streak < w.cfg.Patience {
		return false
	}
	w.trip(fmt.Sprintf("runaway Q magnitude %.3g > %.3g for %d consecutive evaluations",
		maxAbs, w.cfg.MaxAbsQ, w.streak))
	return true
}

// observeLoss feeds a replay-step loss into the watchdog. Non-finite
// losses trip immediately; finite-but-runaway losses feed the streak.
func (w *Watchdog) observeLoss(loss float64) bool {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		w.trip(fmt.Sprintf("non-finite replay loss %v", loss))
		return true
	}
	if loss <= w.cfg.MaxLoss {
		w.streak = 0
		return false
	}
	w.streak++
	if w.streak < w.cfg.Patience {
		return false
	}
	w.trip(fmt.Sprintf("runaway replay loss %.3g > %.3g for %d consecutive steps",
		loss, w.cfg.MaxLoss, w.streak))
	return true
}

// healNonFinite is the greedy path's recovery hook: trip on non-finite Q
// values and report whether a rollback succeeded, in which case the caller
// retries the evaluation once against the restored Q function.
func (w *Watchdog) healNonFinite(reason string) bool {
	return w.trip(reason)
}

// Trip reports an externally detected divergence — e.g. a policy-drift
// alert from the health engine's shadow evaluation — and runs the same
// rollback path an internal detection would: restore the newest valid
// checkpoint generation, re-seed exploration, reset the loss estimate.
// Returns true when the agent was rolled back. Callers must hold the
// same serialization lock that guards the agent's learn steps.
func (w *Watchdog) Trip(reason string) bool { return w.trip(reason) }

// trip records a divergence detection and attempts a rollback. Returns
// true when the agent was rolled back to a valid generation.
func (w *Watchdog) trip(reason string) bool {
	w.stats.Trips++
	w.stats.LastReason = reason
	w.streak = 0
	mWatchdogTrips.Inc()
	w.logf("watchdog: tripped: %s", reason)
	if w.cfg.Restore == nil {
		return false
	}
	if err := w.cfg.Restore(); err != nil {
		w.stats.RestoreFailures++
		mWatchdogRestoreFailures.Inc()
		w.logf("watchdog: restore failed: %v", err)
		return false
	}
	w.stats.Rollbacks++
	mWatchdogRollbacks.Inc()
	// The restored policy is older than the experiences that diverged it;
	// re-explore rather than march straight back down the same path, and
	// forget the poisoned loss estimate.
	w.agent.SetEpsilon(math.Max(w.agent.eps, w.cfg.ReExploreEpsilon))
	w.agent.loss = math.Inf(1)
	w.logf("watchdog: rolled back, epsilon re-seeded to %.3f", w.agent.eps)
	return true
}
