package rl

import "jarvis/internal/telemetry"

// Metric handles are resolved once at package init so the training and
// recommendation hot paths never touch the registry's map or mutex. Every
// write below is allocation-free (a handful of atomics); the
// instrumented-vs-bare delta on DQN.Update is asserted by
// TestDQNUpdateInstrumentationOverhead.
var (
	// Training progress (Algorithm 2).
	mTrainEpisodes = telemetry.Default.Counter("rl.train.episodes")
	mTrainSteps    = telemetry.Default.Counter("rl.train.steps")
	mEpsilon       = telemetry.Default.Gauge("rl.epsilon")
	mReplaySize    = telemetry.Default.Gauge("rl.replay.size")

	// Q-function learning: one observation per Update call, labeled by
	// backend. Both children are resolved here, so the Update wrappers
	// keep the scalar-handle shape (one atomic enabled check, then an
	// Observe on a held *Histogram) the overhead gate measures.
	mUpdateLatencyVec   = telemetry.Default.HistogramVec("rl.update.latency", "backend")
	mUpdateLatencyTable = mUpdateLatencyVec.With("table")
	mUpdateLatencyDQN   = mUpdateLatencyVec.With("dqn")

	// Recommendation outcomes: greedy compositions served vs NaN-degraded
	// NoOp fallbacks.
	mGreedy   = telemetry.Default.Counter("rl.recommend.greedy")
	mDegraded = telemetry.Default.Counter("rl.recommend.degraded")

	// Divergence watchdog activity: detections, successful rollbacks to an
	// earlier checkpoint generation, and restores that themselves failed.
	mWatchdogTrips           = telemetry.Default.Counter("rl.watchdog.trips")
	mWatchdogRollbacks       = telemetry.Default.Counter("rl.watchdog.rollbacks")
	mWatchdogRestoreFailures = telemetry.Default.Counter("rl.watchdog.restore.failures")
)
