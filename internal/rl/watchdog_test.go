package rl

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/nn"
)

// watchdogFixture builds a TableQ agent with some learned state, snapshots
// the healthy Q table, and returns everything a watchdog test needs.
type watchdogFixture struct {
	ag    *Agent
	q     *TableQ
	good  []byte // healthy table snapshot (Save output)
	state env.State
}

func newWatchdogFixture(t *testing.T) *watchdogFixture {
	t.Helper()
	e := testEnv(t)
	n := 8
	rs := testReward(t, e, n)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	q := NewTableQ(e, n, n, 0.3)
	ag, err := NewAgent(sim, q, AgentConfig{
		Episodes: 20, Gamma: 0.9, BatchSize: 8,
		Rng: rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if _, err := ag.Train(); err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return &watchdogFixture{ag: ag, q: q, good: buf.Bytes(), state: env.State{1, 1}}
}

// poison writes v into every entry of the Q rows for the fixture state
// across all time buckets, so the next greedy evaluation sees it.
func (f *watchdogFixture) poison(v float64) {
	for inst := 0; inst < f.q.n; inst++ {
		row := f.q.row(f.state, inst)
		for i := range row {
			row[i] = v
		}
	}
}

func (f *watchdogFixture) restoreGood() error {
	return f.q.Load(bytes.NewReader(f.good))
}

func TestWatchdogHealsNaNInGreedyPath(t *testing.T) {
	f := newWatchdogFixture(t)
	wd := f.ag.AttachWatchdog(WatchdogConfig{Restore: f.restoreGood})
	f.poison(math.NaN())

	act := f.ag.Greedy(f.state, 0)
	if act == nil {
		t.Fatal("Greedy returned nil action")
	}
	st := wd.Stats()
	if st.Trips != 1 || st.Rollbacks != 1 || st.RestoreFailures != 0 {
		t.Errorf("stats = %+v, want 1 trip, 1 rollback", st)
	}
	if f.ag.Degraded() != 0 {
		t.Errorf("healed evaluation still degraded %d times", f.ag.Degraded())
	}
	if got, _ := scanQ(f.q.Q(f.state, 0)); math.IsNaN(got) {
		t.Error("Q table still poisoned after rollback")
	}
	if f.ag.Epsilon() < 0.5 {
		t.Errorf("epsilon = %v, want re-seeded to >= 0.5", f.ag.Epsilon())
	}
	if !math.IsInf(f.ag.Loss(), 1) {
		t.Errorf("loss = %v, want reset to +Inf", f.ag.Loss())
	}
}

func TestWatchdogRunawayStreakRollsBack(t *testing.T) {
	f := newWatchdogFixture(t)
	wd := f.ag.AttachWatchdog(WatchdogConfig{
		MaxAbsQ: 100, Patience: 3, Restore: f.restoreGood,
	})
	f.poison(1e7) // finite but absurd

	// Two runaway evaluations build the streak without tripping.
	f.ag.Greedy(f.state, 0)
	f.ag.Greedy(f.state, 0)
	if st := wd.Stats(); st.Trips != 0 {
		t.Fatalf("tripped before patience exhausted: %+v", st)
	}
	// Third consecutive runaway trips and rolls back.
	f.ag.Greedy(f.state, 0)
	st := wd.Stats()
	if st.Trips != 1 || st.Rollbacks != 1 {
		t.Fatalf("stats = %+v, want 1 trip, 1 rollback", st)
	}
	if maxAbs, finite := scanQ(f.q.Q(f.state, 0)); !finite || maxAbs > 100 {
		t.Errorf("table not restored: maxAbs %v finite %v", maxAbs, finite)
	}
	// A healthy evaluation resets the streak.
	f.ag.Greedy(f.state, 0)
	if st := wd.Stats(); st.Trips != 1 {
		t.Errorf("healthy evaluation tripped: %+v", st)
	}
}

func TestWatchdogRunawayStreakResetsOnHealthy(t *testing.T) {
	f := newWatchdogFixture(t)
	wd := f.ag.AttachWatchdog(WatchdogConfig{
		MaxAbsQ: 100, Patience: 2, Restore: f.restoreGood,
	})
	f.poison(1e7)
	f.ag.Greedy(f.state, 0) // streak 1
	f.restoreGood()
	f.ag.Greedy(f.state, 0) // healthy: streak back to 0
	f.poison(1e7)
	f.ag.Greedy(f.state, 0) // streak 1 again — no trip
	if st := wd.Stats(); st.Trips != 0 {
		t.Errorf("streak did not reset across healthy evaluation: %+v", st)
	}
}

func TestWatchdogRestoreFailureDegrades(t *testing.T) {
	f := newWatchdogFixture(t)
	boom := errors.New("no valid generation")
	wd := f.ag.AttachWatchdog(WatchdogConfig{Restore: func() error { return boom }})
	f.poison(math.NaN())

	act := f.ag.Greedy(f.state, 0)
	for i, a := range act {
		if a != device.NoAction {
			t.Errorf("degraded recommendation acts on device %d (action %d), want NoOp", i, a)
		}
	}
	st := wd.Stats()
	if st.Trips != 1 || st.Rollbacks != 0 || st.RestoreFailures != 1 {
		t.Errorf("stats = %+v, want 1 trip, 0 rollbacks, 1 restore failure", st)
	}
	if f.ag.Degraded() != 1 {
		t.Errorf("Degraded = %d, want 1 (NoOp fallback after failed restore)", f.ag.Degraded())
	}
}

func TestWatchdogWithoutRestoreOnlyCounts(t *testing.T) {
	f := newWatchdogFixture(t)
	wd := f.ag.AttachWatchdog(WatchdogConfig{})
	f.poison(math.NaN())
	f.ag.Greedy(f.state, 0)
	st := wd.Stats()
	if st.Trips != 1 || st.Rollbacks != 0 || st.RestoreFailures != 0 {
		t.Errorf("stats = %+v, want trip only", st)
	}
	if f.ag.Degraded() != 1 {
		t.Errorf("Degraded = %d, want 1", f.ag.Degraded())
	}
}

func TestWatchdogLossObservations(t *testing.T) {
	f := newWatchdogFixture(t)
	wd := f.ag.AttachWatchdog(WatchdogConfig{MaxLoss: 10, Patience: 2, Restore: f.restoreGood})

	if wd.observeLoss(1.5) {
		t.Error("healthy loss tripped")
	}
	if wd.observeLoss(50) {
		t.Error("first runaway loss tripped before patience")
	}
	if !wd.observeLoss(50) {
		t.Error("second consecutive runaway loss should trip")
	}
	if !wd.observeLoss(math.NaN()) {
		t.Error("non-finite loss should trip immediately")
	}
	st := wd.Stats()
	if st.Trips != 2 || st.Rollbacks != 2 {
		t.Errorf("stats = %+v, want 2 trips, 2 rollbacks", st)
	}
}

func TestLearnFailureRoutesDivergenceToWatchdog(t *testing.T) {
	f := newWatchdogFixture(t)
	wd := f.ag.AttachWatchdog(WatchdogConfig{Restore: f.restoreGood})

	div := &nn.DivergenceError{Loss: math.NaN()}
	if err := f.ag.learnFailure(div); err != nil {
		t.Errorf("divergence not swallowed: %v", err)
	}
	if st := wd.Stats(); st.Trips != 1 || st.Rollbacks != 1 {
		t.Errorf("stats = %+v, want 1 trip, 1 rollback", st)
	}
	other := errors.New("disk on fire")
	if err := f.ag.learnFailure(other); !errors.Is(err, other) {
		t.Errorf("non-divergence error swallowed: %v", err)
	}
}

func TestLearnStepRunsOnlyWithFullBatch(t *testing.T) {
	f := newWatchdogFixture(t)
	// Fresh agent with an empty buffer.
	e := testEnv(t)
	rs := testReward(t, e, 8)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := NewAgent(sim, NewTableQ(e, 8, 8, 0.3), AgentConfig{
		BatchSize: 4, Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if ran, err := ag.LearnStep(rng); err != nil || ran {
		t.Fatalf("LearnStep on empty buffer = (%v, %v), want (false, nil)", ran, err)
	}
	exp := Experience{S: env.State{1, 1}, T: 0, Minis: []int{0}, R: 0.5, Next: env.State{1, 1}, NextT: 1}
	for i := 0; i < 4; i++ {
		ag.Observe(exp)
	}
	if ag.ReplayBuffer().Len() != 4 {
		t.Fatalf("replay len = %d", ag.ReplayBuffer().Len())
	}
	ran, err := ag.LearnStep(rng)
	if err != nil || !ran {
		t.Fatalf("LearnStep with full batch = (%v, %v), want (true, nil)", ran, err)
	}
	if math.IsInf(ag.Loss(), 1) {
		t.Error("loss not updated by LearnStep")
	}
	_ = f
}

func TestObserveClonesState(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 8)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := NewAgent(sim, NewTableQ(e, 8, 8, 0.3), AgentConfig{
		BatchSize: 4, Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := env.State{1, 1}
	next := env.State{0, 1}
	minis := []int{1}
	ag.Observe(Experience{S: s, Next: next, Minis: minis})
	s[0], next[0], minis[0] = 9, 9, 9
	got := ag.ReplayBuffer().buf[0]
	if got.S[0] == 9 || got.Next[0] == 9 || got.Minis[0] == 9 {
		t.Errorf("Observe aliased caller buffers: %+v", got)
	}
}

func TestSetEpsilonClamps(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 8)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := NewAgent(sim, NewTableQ(e, 8, 8, 0.3), AgentConfig{
		EpsilonMin: 0.05, Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ag.SetEpsilon(2)
	if ag.Epsilon() != 1 {
		t.Errorf("SetEpsilon(2) -> %v, want 1", ag.Epsilon())
	}
	ag.SetEpsilon(0.001)
	if ag.Epsilon() != 0.05 {
		t.Errorf("SetEpsilon(0.001) -> %v, want EpsilonMin 0.05", ag.Epsilon())
	}
	ag.SetEpsilon(0.5)
	if ag.Epsilon() != 0.5 {
		t.Errorf("SetEpsilon(0.5) -> %v", ag.Epsilon())
	}
}
