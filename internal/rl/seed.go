package rl

import "math/rand"

// StepSeed mixes a base seed and a step counter into an independent RNG
// seed (splitmix64 finalizer). Deriving per-step seeds this way keeps
// online learning deterministic in the transition count alone — never in
// wall-clock or in how the process reached the step — which is exactly
// the contract WAL replay and the offline replay engine reconstruct.
func StepSeed(seed, step uint64) int64 {
	x := seed + 0x9e3779b97f4a7c15*(step+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// StepRNG is the pure replay stepper's randomness source: the RNG for
// learn step number step of a run seeded with seed. Both the live daemon
// and the replay engine draw their per-step RNGs from here, so a replayed
// learning trajectory is bit-identical to the recorded one.
func StepRNG(seed int64, step int) *rand.Rand {
	return rand.New(rand.NewSource(StepSeed(uint64(seed), uint64(step))))
}
