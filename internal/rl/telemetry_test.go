package rl

import (
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/telemetry"
)

// overheadBatch builds a warm DQN and a 32-experience mini-batch, the
// daemon-scale Update the acceptance criterion measures.
func overheadBatch(t *testing.T) (*DQN, []Experience, []float64) {
	t.Helper()
	e := testEnv(t)
	rng := rand.New(rand.NewSource(41))
	d, err := NewDQN(e, 10, DQNConfig{Hidden: []int{64, 64}, LR: 0.001, TargetSync: 64}, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Experience, 32)
	targets := make([]float64, 32)
	for i := range batch {
		batch[i] = Experience{
			S:     env.State{device.StateID(rng.Intn(2)), device.StateID(rng.Intn(2))},
			T:     rng.Intn(10),
			Minis: []int{1 + rng.Intn(4)},
		}
		targets[i] = rng.NormFloat64()
	}
	for i := 0; i < 8; i++ { // warm scratch, arena, Adam state
		if _, err := d.Update(batch, targets); err != nil {
			t.Fatal(err)
		}
	}
	return d, batch, targets
}

// minUpdateNs measures Update over trials×iters calls and returns the best
// per-op time: the minimum filters scheduler noise, which is what a
// lower-bound overhead comparison needs.
func minUpdateNs(t *testing.T, d *DQN, batch []Experience, targets []float64, trials, iters int) float64 {
	t.Helper()
	best := float64(0)
	for trial := 0; trial < trials; trial++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := d.Update(batch, targets); err != nil {
				t.Fatal(err)
			}
		}
		perOp := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		if best == 0 || perOp < best {
			best = perOp
		}
	}
	return best
}

// TestDQNUpdateInstrumentationOverhead is the acceptance gate for the
// zero-perturbation contract: the instrumented DQN.Update (telemetry
// enabled) must stay within 3% ns/op of the bare path (telemetry disabled,
// where every metric write reduces to one atomic load) and add zero
// allocations.
func TestDQNUpdateInstrumentationOverhead(t *testing.T) {
	d, batch, targets := overheadBatch(t)

	// Allocation contract first: it is deterministic and holds everywhere.
	telemetry.Default.SetEnabled(true)
	defer telemetry.Default.SetEnabled(true)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := d.Update(batch, targets); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("instrumented DQN.Update allocates %.1f objects per call, want 0", allocs)
	}

	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}

	const trials, iters = 7, 200
	telemetry.Default.SetEnabled(false)
	bare := minUpdateNs(t, d, batch, targets, trials, iters)
	telemetry.Default.SetEnabled(true)
	instrumented := minUpdateNs(t, d, batch, targets, trials, iters)

	overhead := instrumented/bare - 1
	t.Logf("DQN.Update bare %.0f ns/op, instrumented %.0f ns/op (%+.2f%%)", bare, instrumented, overhead*100)
	if overhead > 0.03 {
		t.Errorf("instrumentation overhead %.2f%% exceeds 3%% (bare %.0f ns/op, instrumented %.0f ns/op)",
			overhead*100, bare, instrumented)
	}
}

// TestTrainingMovesTelemetry trains a tiny agent and checks that every rl
// metric the daemon exposes actually moves.
func TestTrainingMovesTelemetry(t *testing.T) {
	before := telemetry.Default.Snapshot()

	e := testEnv(t)
	rs := testReward(t, e, 10)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(sim, NewTableQ(e, 10, 4, 0.2), AgentConfig{
		Episodes:  4,
		BatchSize: 4,
		Rng:       rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(); err != nil {
		t.Fatal(err)
	}
	a.Greedy(env.State{1, 1}, 0)

	after := telemetry.Default.Snapshot()
	for _, name := range []string{"rl.train.episodes", "rl.train.steps", "rl.recommend.greedy"} {
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("counter %s did not move: %d -> %d", name, before.Counters[name], after.Counters[name])
		}
	}
	lat := `rl.update.latency{backend="table"}`
	if after.Histograms[lat].Count <= before.Histograms[lat].Count {
		t.Errorf("%s recorded no observations during training", lat)
	}
	if eps := after.Gauges["rl.epsilon"]; eps <= 0 || eps > 1 {
		t.Errorf("rl.epsilon gauge = %v, want (0, 1]", eps)
	}
	if after.Gauges["rl.replay.size"] <= 0 {
		t.Error("rl.replay.size gauge never set")
	}
}

// TestGreedyDegradedCountsTelemetry poisons a tabular Q row with NaN and
// checks the degraded fallback is counted and value-reported.
func TestGreedyDegradedCountsTelemetry(t *testing.T) {
	before := telemetry.Default.Snapshot().Counters["rl.recommend.degraded"]

	e := testEnv(t)
	rs := testReward(t, e, 10)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	q := NewTableQ(e, 10, 1, 0.2)
	a, err := NewAgent(sim, q, AgentConfig{Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	s := env.State{1, 1}
	nan := func() float64 { return 0 }()
	nan = nan / nan // NaN without importing math
	if _, err := q.Update([]Experience{{S: s, T: 0, Minis: []int{1}}}, []float64{nan}); err != nil {
		t.Fatal(err)
	}
	act := a.Greedy(s, 0)
	if !act.IsNoOp() {
		t.Errorf("degraded Greedy returned %v, want NoOp", act)
	}
	if a.Degraded() != 1 {
		t.Errorf("Degraded() = %d, want 1", a.Degraded())
	}
	if v := a.LastValue(); v != 0 {
		t.Errorf("LastValue after degraded fallback = %v, want 0", v)
	}
	after := telemetry.Default.Snapshot().Counters["rl.recommend.degraded"]
	if after != before+1 {
		t.Errorf("rl.recommend.degraded: %d -> %d, want +1", before, after)
	}
}
