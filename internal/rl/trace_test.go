package rl

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/trace"
)

// minUpdateTracedNs mirrors minUpdateNs but drives the update through the
// span-threaded online-learning path with an always-nil span — the exact
// code a daemon runs with -trace-sample 0.
func minUpdateTracedNs(t *testing.T, a *Agent, rng *rand.Rand, trials, iters int) float64 {
	t.Helper()
	best := float64(0)
	for trial := 0; trial < trials; trial++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := a.LearnStepTraced(nil, rng); err != nil {
				t.Fatal(err)
			}
		}
		perOp := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		if best == 0 || perOp < best {
			best = perOp
		}
	}
	return best
}

// tracedOverheadAgent wires the overheadBatch DQN into an agent whose
// replay buffer holds one full mini-batch, so LearnStep and LearnStepTraced
// both exercise DQN.Update. Every random source is seeded, so repeated
// calls build bit-identical agents.
func tracedOverheadAgent(t *testing.T) *Agent {
	t.Helper()
	d, batch, _ := overheadBatch(t)
	e := testEnv(t)
	rs := testReward(t, e, 10)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(sim, d, AgentConfig{BatchSize: 32, Rng: rand.New(rand.NewSource(43))})
	if err != nil {
		t.Fatal(err)
	}
	// overheadBatch leaves Next empty (bare Update never evaluates
	// successors); the agent's target computation does, so give every
	// experience a valid successor.
	rng0 := rand.New(rand.NewSource(45))
	for _, exp := range batch {
		exp.Next = env.State{device.StateID(rng0.Intn(2)), device.StateID(rng0.Intn(2))}
		exp.NextT = exp.T + 1
		a.Observe(exp)
	}
	warm := rand.New(rand.NewSource(44))
	for i := 0; i < 8; i++ { // warm the agent-side batch/target buffers
		if _, err := a.LearnStepTraced(nil, warm); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// minAllocsPerRun repeats testing.AllocsPerRun and keeps the minimum.
// AllocsPerRun reads the process-global malloc counter, so a background
// goroutine that allocates inside one measurement window can only inflate
// that window's result, never deflate it — the minimum over a few windows
// is the true per-call count. Windows run ~10x longer under the race
// detector, which made single-window comparisons flaky on loaded machines.
func minAllocsPerRun(trials, runs int, f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < trials; i++ {
		if n := testing.AllocsPerRun(runs, f); n < best {
			best = n
		}
	}
	return best
}

// TestDQNUpdateTraceOverhead is the tracing half of the zero-perturbation
// contract: with tracing disabled (nil spans end-to-end), the span-threaded
// learning path must add zero allocations over the plain LearnStep path
// (whose own successor-audit allocations predate tracing and are measured
// as the baseline) and stay within 3% ns/op of it. The bare DQN.Update
// itself stays at 0 allocs/op, re-asserted here with the trace layer
// compiled in.
func TestDQNUpdateTraceOverhead(t *testing.T) {
	// Two bit-identical agents, each driven by an identically seeded RNG:
	// the only difference between the two measurement loops is the call
	// spelling, so allocation counts must match exactly. Windows are
	// interleaved and each side keeps its minimum so a burst of background
	// allocation pollutes adjacent windows of BOTH sides instead of just
	// one (see minAllocsPerRun).
	plainAgent := tracedOverheadAgent(t)
	plainRng := rand.New(rand.NewSource(46))
	plainStep := func() {
		if _, err := plainAgent.LearnStep(plainRng); err != nil {
			t.Fatal(err)
		}
	}
	tracedAgent := tracedOverheadAgent(t)
	tracedRng := rand.New(rand.NewSource(46))
	tracedStep := func() {
		if _, err := tracedAgent.LearnStepTraced(nil, tracedRng); err != nil {
			t.Fatal(err)
		}
	}
	plainAllocs, tracedAllocs := math.Inf(1), math.Inf(1)
	for i := 0; i < 5; i++ {
		if n := testing.AllocsPerRun(50, plainStep); n < plainAllocs {
			plainAllocs = n
		}
		if n := testing.AllocsPerRun(50, tracedStep); n < tracedAllocs {
			tracedAllocs = n
		}
	}
	t.Logf("LearnStep plain %.1f allocs/op, nil-span traced %.1f allocs/op", plainAllocs, tracedAllocs)
	// The race runtime injects heap allocations of its own nondeterminism:
	// two windows of the SAME spelling differ by up to ±4 allocs/op under
	// -race, so exact equality is only meaningful without it. CI enforces
	// this branch in the no-race "Instrumentation overhead" leg, matching
	// the timing comparison below which likewise self-skips under -race.
	if tracedAllocs > plainAllocs && !raceEnabled {
		t.Errorf("nil-span LearnStepTraced allocates %.1f objects per call vs %.1f plain: tracing must add 0",
			tracedAllocs, plainAllocs)
	}
	d, batch, targets := overheadBatch(t)
	if n := minAllocsPerRun(5, 50, func() {
		if _, err := d.Update(batch, targets); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DQN.Update allocates %.1f objects per call with tracing compiled in, want 0", n)
	}

	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}

	const trials, iters = 7, 200
	best := float64(0)
	timeRngA := rand.New(rand.NewSource(47))
	for trial := 0; trial < trials; trial++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := plainAgent.LearnStep(timeRngA); err != nil {
				t.Fatal(err)
			}
		}
		perOp := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		if best == 0 || perOp < best {
			best = perOp
		}
	}
	traced := minUpdateTracedNs(t, tracedAgent, rand.New(rand.NewSource(47)), trials, iters)

	overhead := traced/best - 1
	t.Logf("LearnStep plain %.0f ns/op, nil-span traced %.0f ns/op (%+.2f%%)", best, traced, overhead*100)
	if overhead > 0.03 {
		t.Errorf("disabled-tracing overhead %.2f%% exceeds 3%% (plain %.0f ns/op, traced %.0f ns/op)",
			overhead*100, best, traced)
	}
}

// TestGreedyTracedSpans checks the rl.select span carries the Q value and
// parents correctly, and that the traced path returns the same action as
// the plain one.
func TestGreedyTracedSpans(t *testing.T) {
	e := testEnv(t)
	rs := testReward(t, e, 10)
	sim, err := NewSimEnv(e, SimConfig{Initial: env.State{1, 1}, Reward: rs})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(sim, NewTableQ(e, 10, 4, 0.2), AgentConfig{
		Episodes: 2, BatchSize: 4, Rng: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(); err != nil {
		t.Fatal(err)
	}
	tr := trace.New(4)
	tr.SetSampleEvery(1)
	root := tr.Start("test.recommend")
	tracedAct := a.GreedyTraced(root, env.State{1, 1}, 0)
	root.End()
	plainAct := a.Greedy(env.State{1, 1}, 0)
	for i := range tracedAct {
		if tracedAct[i] != plainAct[i] {
			t.Fatalf("traced action %v != plain action %v", tracedAct, plainAct)
		}
	}
	td := tr.Ring().Recent(1)[0]
	if len(td.Spans) != 2 || td.Spans[1].Name != "rl.select" || td.Spans[1].Parent != 0 {
		t.Fatalf("span tree: %+v", td.Spans)
	}
	var hasQ bool
	for _, an := range td.Spans[1].Annotations {
		if an.K == "q" {
			hasQ = true
		}
	}
	if !hasQ {
		t.Errorf("rl.select span missing q annotation: %+v", td.Spans[1].Annotations)
	}
}
