// Package compiled distills a trained agent's greedy policy into a dense
// (state × time-bucket) → decision table, turning steady-state Recommend
// into a bounds-checked array load with P_safe already intersected.
//
// The discrete FSM-product state space is exactly enumerable
// (env.StateKey / env.DecodeState), and the tabular Q backend's values
// depend on time only through its bucket fold, so one representative
// instance per bucket pins every decision of the day. The compiler
// evaluates rl.Agent.CompileDecision — the same ranking, P_safe
// intersection, and FSM fallback the live path runs — so compiled
// decisions are bit-identical to Agent.Recommend by construction, which
// the golden tests assert.
//
// Oversized products (e.g. the full home under the per-minute DQN) refuse
// to compile with ErrTooLarge and the caller keeps serving through the
// agent; non-finite or runaway Q regimes refuse with ErrUncompilable so
// the watchdog/degraded machinery of the live path stays in charge.
package compiled

import (
	"errors"
	"fmt"
	"math"
	"time"

	"jarvis/internal/env"
	"jarvis/internal/rl"
)

// ErrTooLarge reports a state×bucket product beyond Options.MaxEntries.
// It is permanent for a given environment/backend pair: the cache stops
// attempting rebuilds once it sees it.
var ErrTooLarge = errors.New("compiled: state×time product exceeds table cap")

// ErrUncompilable reports Q values the live path would route through the
// watchdog or the degraded fallback (non-finite or runaway magnitudes). It
// is transient: a later rebuild after a rollback may succeed.
var ErrUncompilable = errors.New("compiled: Q values outside the compilable regime")

// Options tunes compilation.
type Options struct {
	// MaxEntries caps the dense index length (default 4M entries ≈ 16 MiB
	// of uint32 slots — admits the full home's 103,680 states × 24 tabular
	// buckets, rejects the per-minute DQN product).
	MaxEntries uint64
}

func (o Options) withDefaults() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = 4 << 20
	}
	return o
}

// Decision is one precompiled serving decision. Action aliases a palette
// entry shared by every lookup that deduplicates to it — callers must
// treat it as read-only. Degraded marks entries whose composed action
// failed the FSM transition check at compile time; they carry the safe
// NoOp with value 0, exactly like the live fallback.
type Decision struct {
	Action   env.Action
	Value    float64
	Degraded bool
}

// Policy is an immutable compiled policy table: a dense
// stateKey×bucket → palette-index array plus the deduplicated decision
// palette. Lookups are lock-free and allocation-free; a new table is
// swapped in atomically by the Cache after each rebuild.
type Policy struct {
	e       *env.Environment
	buckets int
	n       int // instances per day
	states  uint64
	idx     []uint32
	palette []Decision

	populated int           // non-default entries
	buildTime time.Duration // wall time of the compile
}

// Lookup returns the compiled decision for (s, t). ok is false when t lies
// outside the compiled day — callers fall back to the live agent path. The
// state must be valid for the policy's environment (the jarvis facade
// checks ValidState before keying).
func (p *Policy) Lookup(s env.State, t int) (Decision, bool) {
	if p == nil || t < 0 || t >= p.n {
		return Decision{}, false
	}
	key := p.e.StateKey(s)
	if key >= p.states {
		return Decision{}, false
	}
	b := t * p.buckets / p.n
	if b >= p.buckets {
		b = p.buckets - 1
	}
	return p.palette[p.idx[key*uint64(p.buckets)+uint64(b)]], true
}

// Entries returns the dense index length (states × buckets).
func (p *Policy) Entries() int { return len(p.idx) }

// Populated returns how many entries hold a non-default decision.
func (p *Policy) Populated() int { return p.populated }

// PaletteSize returns the number of distinct decisions in the table.
func (p *Policy) PaletteSize() int { return len(p.palette) }

// Buckets returns the compiled time resolution (instances for per-minute
// backends).
func (p *Policy) Buckets() int { return p.buckets }

// BuildTime returns how long the compile took.
func (p *Policy) BuildTime() time.Duration { return p.buildTime }

// paletteKey identifies a decision for deduplication: the mixed-radix
// action key, the exact value bits, and the degraded flag.
type paletteKey struct {
	act       uint64
	valueBits uint64
	degraded  bool
}

// compiler accumulates one table build.
type compiler struct {
	e       *env.Environment
	a       *rl.Agent
	p       *Policy
	dedup   map[paletteKey]uint32
	scratch env.State // FSM-check destination buffer
	err     error
}

// Compile enumerates the state×time product and precomputes the greedy
// decision for every cell. instances is the episode length in time
// instances (minutes per day); backends implementing rl.TimeBucketed
// compile one representative instance per bucket, others compile per
// instance. Backends implementing rl.RowIterator are enumerated sparsely:
// only populated rows are evaluated, everything else defaults to the safe
// NoOp with value 0 — provably what the greedy composition returns for an
// all-zero Q row (the NoOp index wins every tie at the top of the
// ranking).
func Compile(e *env.Environment, a *rl.Agent, instances int, opt Options) (*Policy, error) {
	if e == nil || a == nil {
		return nil, errors.New("compiled: nil environment or agent")
	}
	if instances <= 0 {
		return nil, fmt.Errorf("compiled: invalid instance count %d", instances)
	}
	opt = opt.withDefaults()
	buckets, n := instances, instances
	if tb, ok := a.Q().(rl.TimeBucketed); ok {
		buckets, n = tb.TimeBuckets()
	}
	if buckets <= 0 || n <= 0 || buckets > n {
		// More buckets than instances leaves buckets with no representative
		// instance; no shipped backend does this.
		return nil, fmt.Errorf("%w: %d buckets over %d instances", ErrUncompilable, buckets, n)
	}
	states := e.NumStateCombinations()
	if states == 0 || states > opt.MaxEntries || uint64(buckets) > opt.MaxEntries/states {
		return nil, fmt.Errorf("%w: %d states × %d buckets > %d entries",
			ErrTooLarge, states, buckets, opt.MaxEntries)
	}
	start := time.Now()
	c := &compiler{
		e: e, a: a,
		p: &Policy{
			e: e, buckets: buckets, n: n, states: states,
			idx: make([]uint32, states*uint64(buckets)),
		},
		dedup:   make(map[paletteKey]uint32),
		scratch: make(env.State, e.K()),
	}
	// Palette slot 0 is the default every unevaluated cell points at: the
	// safe NoOp with value 0 (idling is always FSM-valid, so not degraded).
	noop := Decision{Action: env.NoOp(e.K())}
	c.p.palette = append(c.p.palette, noop)
	c.dedup[c.key(noop)] = 0

	if ri, ok := a.Q().(rl.RowIterator); ok {
		ri.Rows(func(stateKey uint64, bucket int) {
			if c.err != nil || stateKey >= states || bucket < 0 || bucket >= buckets {
				return
			}
			c.cell(stateKey, bucket)
		})
	} else {
		for sk := uint64(0); sk < states && c.err == nil; sk++ {
			for b := 0; b < buckets && c.err == nil; b++ {
				c.cell(sk, b)
			}
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	c.p.buildTime = time.Since(start)
	return c.p, nil
}

// cell evaluates one (stateKey, bucket) pair through the agent at the
// bucket's representative instance — the smallest t with t*buckets/n ==
// bucket, so bucketed backends see exactly the row the live path reads for
// every instance of the bucket.
func (c *compiler) cell(stateKey uint64, bucket int) {
	t := (bucket*c.p.n + c.p.buckets - 1) / c.p.buckets
	s := c.e.DecodeState(stateKey)
	act, val, ok := c.a.CompileDecision(s, t)
	if !ok {
		c.err = fmt.Errorf("%w: non-finite or runaway Q at state %d bucket %d",
			ErrUncompilable, stateKey, bucket)
		return
	}
	d := Decision{Action: act, Value: val}
	// Pre-apply the serving path's FSM guard: System.Recommend falls back
	// to the safe NoOp (value 0, degraded) when the composition does not
	// survive a transition check.
	if err := c.e.TransitionInto(c.scratch, s, act); err != nil {
		d = Decision{Action: env.NoOp(c.e.K()), Degraded: true}
	}
	pi, seen := c.dedup[c.key(d)]
	if !seen {
		if len(c.p.palette) > math.MaxUint32 {
			c.err = fmt.Errorf("compiled: palette overflow at %d decisions", len(c.p.palette))
			return
		}
		pi = uint32(len(c.p.palette))
		c.p.palette = append(c.p.palette, d)
		c.dedup[c.key(d)] = pi
	}
	if pi != 0 {
		c.p.populated++
	}
	c.p.idx[stateKey*uint64(c.p.buckets)+uint64(bucket)] = pi
}

func (c *compiler) key(d Decision) paletteKey {
	return paletteKey{
		act:       c.e.ActionKey(d.Action),
		valueBits: math.Float64bits(d.Value),
		degraded:  d.Degraded,
	}
}
