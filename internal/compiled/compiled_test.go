package compiled_test

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"jarvis/internal/compiled"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
)

// testEnv builds a 3-light environment: 8 states, 7 mini-actions — small
// enough to enumerate the full state×time product in the golden tests.
func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	mk := func(name string, watts float64) *device.Device {
		return device.NewBuilder(name, device.TypeLight).
			States("off", "on").
			Actions("power_off", "power_on").
			Transition("on", "power_off", "off").
			Transition("off", "power_on", "on").
			PowerW("on", watts).
			MustBuild()
	}
	b := env.NewBuilder()
	b.AddDevice(mk("a", 60), env.Placement{})
	b.AddDevice(mk("b", 40), env.Placement{})
	b.AddDevice(mk("c", 900), env.Placement{})
	b.AddApp("manual", 0, 1, 2)
	b.AddUser("u", 0)
	return b.MustBuild()
}

func testReward(t *testing.T, e *env.Environment, n int) *reward.Smart {
	t.Helper()
	f := func(s env.State, a env.Action, tt int) float64 {
		next, err := e.Transition(s, a)
		if err != nil {
			return 0
		}
		var w float64
		for i, st := range next {
			w += e.Device(i).PowerW(st)
		}
		return 1 - w/1000
	}
	r, err := reward.New(e, reward.Config{
		Functionalities: []reward.Functionality{{Name: "energy", Weight: 1, F: f}},
		Instances:       n,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	return r
}

func testSim(t *testing.T, e *env.Environment, n int) *rl.SimEnv {
	t.Helper()
	sim, err := rl.NewSimEnv(e, rl.SimConfig{
		Initial: make(env.State, e.K()),
		Reward:  testReward(t, e, n),
	})
	if err != nil {
		t.Fatalf("NewSimEnv: %v", err)
	}
	return sim
}

func trainedAgent(t *testing.T, sim rl.SafeEnv, q rl.QFunc, seed int64) *rl.Agent {
	t.Helper()
	a, err := rl.NewAgent(sim, q, rl.AgentConfig{
		Episodes: 6, BatchSize: 8, ReplayEvery: 2,
		Rng: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if _, err := a.Train(); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return a
}

// assertGolden checks Lookup against Agent.Recommend for every state and
// every instance of the day — action, backing Q value (exact bits), and
// the non-degraded flag must match.
func assertGolden(t *testing.T, e *env.Environment, a *rl.Agent, p *compiled.Policy, n int) {
	t.Helper()
	for sk := uint64(0); sk < e.NumStateCombinations(); sk++ {
		s := e.DecodeState(sk)
		for tt := 0; tt < n; tt++ {
			d, ok := p.Lookup(s, tt)
			if !ok {
				t.Fatalf("state %d t %d: no compiled entry", sk, tt)
			}
			want := a.Recommend(s, tt)
			wantV := a.LastValue()
			if e.ActionKey(d.Action) != e.ActionKey(want) {
				t.Fatalf("state %d t %d: compiled %v, agent %v", sk, tt, d.Action, want)
			}
			if math.Float64bits(d.Value) != math.Float64bits(wantV) {
				t.Fatalf("state %d t %d: compiled value %v, agent %v", sk, tt, d.Value, wantV)
			}
			if d.Degraded {
				t.Fatalf("state %d t %d: unexpectedly degraded", sk, tt)
			}
		}
	}
}

// TestGoldenTabular pins compiled decisions bit-identical to the agent for
// the bucketed tabular backend over the full state×day product, including
// states the training never visited (they default to the provable
// zero-row NoOp).
func TestGoldenTabular(t *testing.T) {
	e := testEnv(t)
	const n, buckets = 48, 8
	sim := testSim(t, e, n)
	a := trainedAgent(t, sim, rl.NewTableQ(e, n, buckets, 0.25), 11)
	p, err := compiled.Compile(e, a, n, compiled.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Buckets() != buckets {
		t.Fatalf("Buckets = %d, want %d", p.Buckets(), buckets)
	}
	if p.Entries() != int(e.NumStateCombinations())*buckets {
		t.Fatalf("Entries = %d", p.Entries())
	}
	assertGolden(t, e, a, p, n)
}

// TestGoldenDQN pins the per-minute compile for the network backend: no
// time bucketing, so every instance gets its own entry and the compiled
// table must reproduce the exact-minute forward passes bit for bit.
func TestGoldenDQN(t *testing.T) {
	e := testEnv(t)
	const n = 24
	sim := testSim(t, e, n)
	rng := rand.New(rand.NewSource(3))
	dqn, err := rl.NewDQN(e, n, rl.DQNConfig{Hidden: []int{16}}, rng)
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	a := trainedAgent(t, sim, dqn, 12)
	p, err := compiled.Compile(e, a, n, compiled.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Buckets() != n {
		t.Fatalf("Buckets = %d, want per-minute %d", p.Buckets(), n)
	}
	assertGolden(t, e, a, p, n)
}

// denyEnv wraps a SimEnv, vetoing one device action on top of its safety
// predicate — a stand-in for a P_safe table that never whitelisted the
// transition.
type denyEnv struct {
	*rl.SimEnv
	dev int
	act device.ActionID
}

func (d *denyEnv) Safe(st env.State, a env.Action) bool {
	if a[d.dev] == d.act {
		return false
	}
	return d.SimEnv.Safe(st, a)
}

// TestGoldenSafetyDenial crafts a Q table whose top-ranked mini-action is
// denied by the safety predicate: the live composition skips to the next
// candidate, and the compiled table must pin exactly that skip.
func TestGoldenSafetyDenial(t *testing.T) {
	e := testEnv(t)
	const n = 8
	sim := testSim(t, e, n)
	q := rl.NewTableQ(e, n, 1, 1) // alpha 1: one update writes the target
	minis := rl.NewMiniActions(e)
	denied, err := minis.Encode(2, 1) // device c: power_on
	if err != nil {
		t.Fatal(err)
	}
	runnerUp, err := minis.Encode(0, 1) // device a: power_on
	if err != nil {
		t.Fatal(err)
	}
	s0 := env.State{0, 0, 0}
	if _, err := q.Update(
		[]rl.Experience{{S: s0, T: 0, Minis: []int{denied}}, {S: s0, T: 0, Minis: []int{runnerUp}}},
		[]float64{9, 5},
	); err != nil {
		t.Fatal(err)
	}
	den := &denyEnv{SimEnv: sim, dev: 2, act: 1}
	a, err := rl.NewAgent(den, q, rl.AgentConfig{Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	live := a.Recommend(s0, 0)
	if live[2] == 1 {
		t.Fatalf("denied action served live: %v", live)
	}
	if live[0] != 1 {
		t.Fatalf("runner-up not composed: %v", live)
	}
	p, err := compiled.Compile(e, a, n, compiled.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	assertGolden(t, e, a, p, n)
}

// allowAll wraps a SimEnv to admit every composition, including
// FSM-invalid ones — the regime where the serving path's transition guard
// (degraded NoOp fallback) is reachable.
type allowAll struct{ *rl.SimEnv }

func (allowAll) Safe(env.State, env.Action) bool { return true }

// TestCompileDegradedEntry forces the compiler through the FSM guard: the
// top-ranked action is invalid in the keyed state, so the compiled entry
// must carry the degraded NoOp with value 0 — exactly the serving
// fallback.
func TestCompileDegradedEntry(t *testing.T) {
	e := testEnv(t)
	const n = 4
	sim := testSim(t, e, n)
	q := rl.NewTableQ(e, n, 1, 1)
	minis := rl.NewMiniActions(e)
	on, err := minis.Encode(2, 1) // device c: power_on — invalid when c is already on
	if err != nil {
		t.Fatal(err)
	}
	s := env.State{0, 0, 1}
	if _, err := q.Update([]rl.Experience{{S: s, T: 0, Minis: []int{on}}}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	a, err := rl.NewAgent(allowAll{sim}, q, rl.AgentConfig{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiled.Compile(e, a, n, compiled.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	d, ok := p.Lookup(s, 0)
	if !ok {
		t.Fatal("no compiled entry")
	}
	if !d.Degraded || d.Value != 0 {
		t.Fatalf("Decision = %+v, want degraded NoOp", d)
	}
	for _, ai := range d.Action {
		if ai != device.NoAction {
			t.Fatalf("degraded entry carries %v, want NoOp", d.Action)
		}
	}
}

// TestCompileTooLarge rejects oversized products and permanently disables
// the cache — the graceful fallback to the live path.
func TestCompileTooLarge(t *testing.T) {
	e := testEnv(t)
	const n = 8
	sim := testSim(t, e, n)
	a := trainedAgent(t, sim, rl.NewTableQ(e, n, 4, 0.25), 6)
	if _, err := compiled.Compile(e, a, n, compiled.Options{MaxEntries: 8}); !errors.Is(err, compiled.ErrTooLarge) {
		t.Fatalf("Compile err = %v, want ErrTooLarge", err)
	}
	var mu sync.Mutex
	c := compiled.NewCache(&mu, func() (*compiled.Policy, error) {
		return compiled.Compile(e, a, n, compiled.Options{MaxEntries: 8})
	})
	if err := c.RebuildNow(); !errors.Is(err, compiled.ErrTooLarge) {
		t.Fatalf("RebuildNow err = %v, want ErrTooLarge", err)
	}
	if !c.Disabled() {
		t.Fatal("cache not disabled after ErrTooLarge")
	}
	mu.Lock()
	c.Invalidate() // must not schedule another build
	mu.Unlock()
	c.Wait()
	if st := c.Stats(); !st.Disabled || st.Ready || st.LastError == "" {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestCompileRefusesNonFinite: a poisoned Q row makes the whole compile
// refuse, leaving the degraded machinery of the live path in charge.
func TestCompileRefusesNonFinite(t *testing.T) {
	e := testEnv(t)
	const n = 4
	sim := testSim(t, e, n)
	q := rl.NewTableQ(e, n, 1, 1)
	if _, err := q.Update(
		[]rl.Experience{{S: env.State{0, 0, 0}, T: 0, Minis: []int{1}}},
		[]float64{math.NaN()},
	); err != nil {
		t.Fatal(err)
	}
	a, err := rl.NewAgent(sim, q, rl.AgentConfig{Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compiled.Compile(e, a, n, compiled.Options{}); !errors.Is(err, compiled.ErrUncompilable) {
		t.Fatalf("Compile err = %v, want ErrUncompilable", err)
	}
}

// TestCacheInvalidateRebuilds exercises the dirty→rebuild→swap lifecycle:
// a mutation invalidates (readers immediately lose the table), the
// asynchronous rebuild swaps a fresh one in, and the new table reflects
// the mutated Q values.
func TestCacheInvalidateRebuilds(t *testing.T) {
	e := testEnv(t)
	const n = 8
	sim := testSim(t, e, n)
	q := rl.NewTableQ(e, n, 1, 1)
	a, err := rl.NewAgent(sim, q, rl.AgentConfig{Rng: rand.New(rand.NewSource(8))})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	c := compiled.NewCache(&mu, func() (*compiled.Policy, error) {
		return compiled.Compile(e, a, n, compiled.Options{})
	})
	if err := c.RebuildNow(); err != nil {
		t.Fatalf("RebuildNow: %v", err)
	}
	s0 := env.State{0, 0, 0}
	if d, ok := c.Policy().Lookup(s0, 0); !ok || d.Value != 0 {
		t.Fatalf("fresh table: %+v ok=%t", d, ok)
	}

	minis := rl.NewMiniActions(e)
	idx, err := minis.Encode(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if _, err := q.Update([]rl.Experience{{S: s0, T: 0, Minis: []int{idx}}}, []float64{3}); err != nil {
		mu.Unlock()
		t.Fatal(err)
	}
	c.Invalidate()
	if c.Policy() != nil {
		mu.Unlock()
		t.Fatal("stale table still visible after Invalidate")
	}
	mu.Unlock()
	c.Wait()

	p := c.Policy()
	if p == nil {
		t.Fatal("no table after rebuild")
	}
	d, ok := p.Lookup(s0, 0)
	if !ok || d.Value != 3 || d.Action[0] != 1 {
		t.Fatalf("rebuilt table: %+v ok=%t, want device a on with value 3", d, ok)
	}
	if st := c.Stats(); st.Rebuilds < 2 || !st.Ready {
		t.Fatalf("Stats = %+v, want ≥2 rebuilds and ready", st)
	}
}

// TestCacheCoalescesAndSurvivesConcurrency hammers lookups from reader
// goroutines while the writer mutates and invalidates under the lock —
// the -race build of this test is the cache's memory-model proof.
func TestCacheCoalescesAndSurvivesConcurrency(t *testing.T) {
	e := testEnv(t)
	const n = 8
	sim := testSim(t, e, n)
	q := rl.NewTableQ(e, n, 1, 1)
	a, err := rl.NewAgent(sim, q, rl.AgentConfig{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	c := compiled.NewCache(&mu, func() (*compiled.Policy, error) {
		return compiled.Compile(e, a, n, compiled.Options{})
	})
	if err := c.RebuildNow(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	s0 := env.State{0, 0, 0}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if p := c.Policy(); p != nil {
					p.Lookup(s0, 3)
				}
			}
		}()
	}
	minis := rl.NewMiniActions(e)
	idx, err := minis.Encode(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mu.Lock()
		if _, err := q.Update([]rl.Experience{{S: s0, T: 0, Minis: []int{idx}}}, []float64{float64(i)}); err != nil {
			mu.Unlock()
			t.Fatal(err)
		}
		c.Invalidate()
		mu.Unlock()
	}
	c.Wait()
	close(stop)
	wg.Wait()
	p := c.Policy()
	if p == nil {
		t.Fatal("no table after invalidation storm")
	}
	if d, ok := p.Lookup(s0, 0); !ok || d.Value != 49 {
		t.Fatalf("final table: %+v ok=%t, want value 49", d, ok)
	}
	st := c.Stats()
	if st.Rebuilds == 0 || st.Rebuilds > 51 {
		t.Fatalf("Rebuilds = %d", st.Rebuilds)
	}
}

// TestLookupAllocationFree pins the steady-state hot path: one state-key
// encode plus a bounds-checked array load, zero allocations.
func TestLookupAllocationFree(t *testing.T) {
	e := testEnv(t)
	const n = 48
	sim := testSim(t, e, n)
	a := trainedAgent(t, sim, rl.NewTableQ(e, n, 8, 0.25), 10)
	p, err := compiled.Compile(e, a, n, compiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := env.State{1, 0, 1}
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		d, ok := p.Lookup(s, 17)
		if !ok {
			t.Fatal("lookup miss")
		}
		sink += d.Value
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}
