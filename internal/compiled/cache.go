package compiled

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Cache owns the live compiled policy and its rebuild lifecycle. Readers
// load the current table through one atomic pointer (nil while dirty — the
// caller then serves through the agent and the miss counter records the
// fallback). Writers call Invalidate after every mutation of the policy
// inputs (learn steps, Q loads, P_safe swaps); the first invalidation
// kicks an asynchronous rebuild goroutine that recompiles under the
// caller-supplied lock and swaps the fresh table in atomically, coalescing
// any invalidations that arrive mid-build into one more pass.
//
// Correctness contract: Invalidate must run under the same lock that
// guards the agent (the daemon holds its state mutex for every mutation),
// so a build never captures a half-applied update and a table swapped in
// under the lock is never stale.
type Cache struct {
	build func() (*Policy, error)
	mu    sync.Locker

	cur      atomic.Pointer[Policy]
	gen      atomic.Uint64 // bumped by every Invalidate
	building atomic.Bool   // a rebuild goroutine is active
	disabled atomic.Bool   // ErrTooLarge is permanent; stop rebuilding

	dirtySince atomic.Int64 // unix ns of the invalidation that cleared cur; 0 = clean
	lastErr    atomic.Pointer[string]

	hits        atomic.Uint64
	misses      atomic.Uint64
	rebuilds    atomic.Uint64
	stalenessMs atomic.Int64 // invalidate→swap gap of the latest rebuild

	wg sync.WaitGroup
}

// NewCache wires a rebuild function to the lock that guards its inputs.
// The cache starts empty; call RebuildNow for a synchronous first build or
// Invalidate to schedule one.
func NewCache(lock sync.Locker, build func() (*Policy, error)) *Cache {
	return &Cache{build: build, mu: lock}
}

// Policy returns the current compiled table, or nil while the cache is
// dirty, disabled, or not yet built.
func (c *Cache) Policy() *Policy { return c.cur.Load() }

// Disabled reports whether compilation was permanently abandoned
// (state×bucket product beyond the cap).
func (c *Cache) Disabled() bool { return c.disabled.Load() }

// Hit records a lookup served from the compiled table.
func (c *Cache) Hit() { c.hits.Add(1); mHits.Inc() }

// Miss records a lookup that fell back to the live agent path.
func (c *Cache) Miss() { c.misses.Add(1); mMisses.Inc() }

// Invalidate marks the compiled table stale, clears it so no reader can
// act on pre-mutation decisions, and schedules an asynchronous rebuild.
// Must be called under the cache's lock (see the type comment).
func (c *Cache) Invalidate() {
	if c.disabled.Load() {
		return
	}
	c.gen.Add(1)
	c.cur.Store(nil)
	c.dirtySince.CompareAndSwap(0, time.Now().UnixNano())
	if c.building.Swap(true) {
		return // active builder re-checks the generation before exiting
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.rebuildLoop()
	}()
}

// rebuildLoop recompiles until the generation it built matches the latest
// invalidation, handing the builder token back only when no invalidation
// slipped past the final check.
func (c *Cache) rebuildLoop() {
	for {
		g := c.gen.Load()
		c.rebuild(g)
		c.building.Store(false)
		if c.gen.Load() == g || c.disabled.Load() {
			return
		}
		if c.building.Swap(true) {
			return // a concurrent Invalidate kicked a fresh builder
		}
	}
}

// rebuild runs one compile under the lock and swaps the table in while
// still holding it, so the swap orders before any later mutation.
func (c *Cache) rebuild(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen.Load() != gen {
		return // superseded before the lock was acquired; loop retries
	}
	p, err := c.build()
	if err != nil {
		msg := err.Error()
		c.lastErr.Store(&msg)
		if errors.Is(err, ErrTooLarge) {
			c.disabled.Store(true)
			c.dirtySince.Store(0)
		}
		return
	}
	c.lastErr.Store(nil)
	c.cur.Store(p)
	c.rebuilds.Add(1)
	mRebuilds.Inc()
	mEntries.SetInt(int64(p.Entries()))
	if since := c.dirtySince.Swap(0); since != 0 {
		ms := (time.Now().UnixNano() - since) / int64(time.Millisecond)
		c.stalenessMs.Store(ms)
		mStaleness.SetInt(ms)
	}
}

// RebuildNow compiles synchronously — the daemon's boot path and tests use
// it to have a table before serving. It returns the compile error, if any
// (ErrTooLarge additionally disables the cache).
func (c *Cache) RebuildNow() error {
	if c.disabled.Load() {
		return ErrTooLarge
	}
	c.gen.Add(1)
	c.cur.Store(nil)
	c.dirtySince.CompareAndSwap(0, time.Now().UnixNano())
	c.rebuild(c.gen.Load())
	if msg := c.lastErr.Load(); msg != nil {
		if c.disabled.Load() {
			return ErrTooLarge
		}
		return errors.New(*msg)
	}
	return nil
}

// Wait blocks until any in-flight background rebuild finishes (tests).
func (c *Cache) Wait() { c.wg.Wait() }

// CacheStats is the health surface exported on /healthz.
type CacheStats struct {
	Ready       bool   `json:"ready"`
	Disabled    bool   `json:"disabled"`
	Entries     int    `json:"entries"`
	Populated   int    `json:"populated"`
	PaletteSize int    `json:"palette"`
	Buckets     int    `json:"buckets"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Rebuilds    uint64 `json:"rebuilds"`
	StalenessMs int64  `json:"stalenessMs"`
	BuildMs     int64  `json:"buildMs"`
	LastError   string `json:"lastError,omitempty"`
}

// Stats snapshots the cache counters and the current table's shape.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Disabled:    c.disabled.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Rebuilds:    c.rebuilds.Load(),
		StalenessMs: c.stalenessMs.Load(),
	}
	if since := c.dirtySince.Load(); since != 0 {
		st.StalenessMs = (time.Now().UnixNano() - since) / int64(time.Millisecond)
	}
	if msg := c.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	if p := c.cur.Load(); p != nil {
		st.Ready = true
		st.Entries = p.Entries()
		st.Populated = p.Populated()
		st.PaletteSize = p.PaletteSize()
		st.Buckets = p.Buckets()
		st.BuildMs = p.BuildTime().Milliseconds()
	}
	return st
}
