package compiled

import "jarvis/internal/telemetry"

// Metric handles resolved at package init, so the lookup hot path touches
// only atomics. hits/misses count fast-path serves vs agent fallbacks,
// rebuilds counts table swaps, staleness_ms is the invalidate→swap gap of
// the latest rebuild (the window during which recommendations fell back to
// the agent), entries is the dense index length of the live table.
var (
	mHits      = telemetry.Default.Counter("policy.compiled.hits")
	mMisses    = telemetry.Default.Counter("policy.compiled.misses")
	mRebuilds  = telemetry.Default.Counter("policy.compiled.rebuilds")
	mStaleness = telemetry.Default.Gauge("policy.compiled.staleness_ms")
	mEntries   = telemetry.Default.Gauge("policy.compiled.entries")
)
