// Package parse implements the log-parsing and normalization stage of the
// Jarvis pipeline (Section V-A2): JSON event logs captured by the logger
// app are quantized into discrete device states and device actions through
// device-specific normalization functions, and re-assembled into learning
// episodes according to the environment's (T, I) configuration.
package parse

import (
	"fmt"
	"sort"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/events"
)

// Normalizer quantizes one device's raw attribute values and capability
// commands into its discrete FSM vocabulary.
type Normalizer interface {
	// State maps an (attribute, value) pair to a device state.
	State(attribute, value string) (device.StateID, bool)
	// Action maps a capability command to a device action.
	Action(command string) (device.ActionID, bool)
}

// identityNormalizer maps values and commands by exact name against the
// device's own state/action vocabulary — the common case for enum-valued
// capabilities (on/off, locked/unlocked, ...).
type identityNormalizer struct{ d *device.Device }

var _ Normalizer = identityNormalizer{}

// ForDevice returns a Normalizer that resolves attribute values as state
// names and commands as action names of d.
func ForDevice(d *device.Device) Normalizer { return identityNormalizer{d: d} }

func (n identityNormalizer) State(_, value string) (device.StateID, bool) {
	return n.d.StateID(value)
}

func (n identityNormalizer) Action(command string) (device.ActionID, bool) {
	return n.d.ActionID(command)
}

// Threshold maps a numeric range to a device state: values below Below
// quantize to State.
type Threshold struct {
	Below float64
	State device.StateID
}

// NumericNormalizer quantizes numeric attribute values (temperatures, power
// readings) into discrete states using ascending thresholds, while
// resolving commands by name. This is the "manually developed,
// device-specific normalization function" of Section V-A2.
type NumericNormalizer struct {
	// Device supplies the action vocabulary.
	Device *device.Device
	// Attribute is the numeric attribute this normalizer understands.
	Attribute string
	// Thresholds must be sorted by Below ascending; a value quantizes to
	// the first threshold it is below.
	Thresholds []Threshold
	// Above is the state for values ≥ every threshold.
	Above device.StateID
}

var _ Normalizer = (*NumericNormalizer)(nil)

// State implements Normalizer.
func (n *NumericNormalizer) State(attribute, value string) (device.StateID, bool) {
	if attribute != n.Attribute {
		// Fall back to name resolution for enum attributes on the same
		// device (e.g. a thermostat's "mode").
		return n.Device.StateID(value)
	}
	var v float64
	if _, err := fmt.Sscanf(value, "%g", &v); err != nil {
		return 0, false
	}
	for _, th := range n.Thresholds {
		if v < th.Below {
			return th.State, true
		}
	}
	return n.Above, true
}

// Action implements Normalizer.
func (n *NumericNormalizer) Action(command string) (device.ActionID, bool) {
	return n.Device.ActionID(command)
}

// Record is one normalized log entry: a device action observed at a point
// in time, with the device's resulting state.
type Record struct {
	Device   int
	Action   device.ActionID
	NewState device.StateID
	At       time.Time
}

// Parser turns raw events into normalized records for one environment.
type Parser struct {
	env         *env.Environment
	normalizers map[string]Normalizer
}

// NewParser builds a parser with identity normalizers for every device.
// Override specific devices with SetNormalizer.
func NewParser(e *env.Environment) *Parser {
	p := &Parser{env: e, normalizers: make(map[string]Normalizer, e.K())}
	for _, d := range e.Devices() {
		p.normalizers[d.Name()] = ForDevice(d)
	}
	return p
}

// SetNormalizer overrides the normalizer for the named device.
func (p *Parser) SetNormalizer(deviceLabel string, n Normalizer) error {
	if _, ok := p.env.DeviceIndex(deviceLabel); !ok {
		return fmt.Errorf("parse: unknown device %q", deviceLabel)
	}
	p.normalizers[deviceLabel] = n
	return nil
}

// Parse normalizes events into records, in chronological order. Events for
// unknown devices or with unresolvable values are skipped and counted in
// the returned skip total — real logs contain noise, and the learning
// pipeline tolerates it.
func (p *Parser) Parse(evs []events.Event) (records []Record, skipped int) {
	records = make([]Record, 0, len(evs))
	for _, ev := range evs {
		di, ok := p.env.DeviceIndex(ev.DeviceLabel)
		if !ok {
			skipped++
			continue
		}
		n := p.normalizers[ev.DeviceLabel]
		act, okA := n.Action(ev.Command)
		st, okS := n.State(ev.Attribute, ev.AttributeValue)
		if !okA || !okS {
			skipped++
			continue
		}
		records = append(records, Record{Device: di, Action: act, NewState: st, At: ev.Date})
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].At.Before(records[j].At) })
	return records, skipped
}

// EpisodeConfig controls how records are re-assembled into episodes.
type EpisodeConfig struct {
	// Start is the wall-clock time of the first episode's S_0.
	Start time.Time
	// T is the episode time period and I the interval (the paper's
	// prototype uses T = 1 day, I = 1 min).
	T, I time.Duration
	// Initial is S_0 of the first episode.
	Initial env.State
}

// BuildEpisodes slices a chronological record stream into consecutive
// episodes of length T with interval I, replaying the recorded actions
// through the environment's transition function Δ. Within one interval, at
// most one action per device applies (first come, first served); actions
// invalid in the current state are dropped, mirroring how a real edge hub
// discards stale commands. Records before Start are ignored. Each episode
// starts from the final state of the previous one (the environment is
// continuous even though monitoring is episodic).
func BuildEpisodes(e *env.Environment, cfg EpisodeConfig, records []Record) ([]env.Episode, error) {
	if !e.ValidState(cfg.Initial) {
		return nil, fmt.Errorf("parse: invalid initial state")
	}
	n := env.NumInstances(cfg.T, cfg.I)
	if n == 0 {
		return nil, fmt.Errorf("parse: invalid episode config T=%v I=%v", cfg.T, cfg.I)
	}
	var eps []env.Episode
	cur := cfg.Initial.Clone()
	start := cfg.Start
	ri := 0
	for ri < len(records) && records[ri].At.Before(start) {
		ri++
	}
	for ri < len(records) {
		rec := env.NewRecorder(e, cur, start, cfg.T, cfg.I)
		for t := 0; t < n; t++ {
			lo := start.Add(time.Duration(t) * cfg.I)
			hi := lo.Add(cfg.I)
			act := env.NoOp(e.K())
			for ri < len(records) && records[ri].At.Before(hi) {
				r := records[ri]
				ri++
				if act[r.Device] != device.NoAction {
					continue // one action per device per interval
				}
				if _, ok := e.Device(r.Device).Next(rec.State()[r.Device], r.Action); !ok {
					continue // stale/invalid command: drop
				}
				act[r.Device] = r.Action
			}
			if err := rec.Step(act); err != nil {
				return nil, fmt.Errorf("parse: episode at %v instance %d: %w", start, t, err)
			}
		}
		ep := rec.Episode()
		eps = append(eps, ep)
		cur = ep.States[len(ep.States)-1].Clone()
		start = start.Add(cfg.T)
	}
	return eps, nil
}
