package parse

import (
	"bytes"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/events"
)

func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	light := device.NewBuilder("light", device.TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	temp := device.NewBuilder("temp", device.TypeTempSensor).
		States("low", "optimal", "high").
		Actions("power_off", "power_on").
		TransitionAll("power_on", "optimal").
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(light, env.Placement{Location: "home"})
	b.AddDevice(temp, env.Placement{Location: "home"})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

func at(min int) time.Time {
	return time.Date(2020, 1, 6, 0, min, 0, 0, time.UTC)
}

func ev(dev, cmd, attr, val string, min int) events.Event {
	return events.Event{
		Date: at(min), DeviceLabel: dev,
		Command: cmd, Attribute: attr, AttributeValue: val,
	}
}

func TestParseIdentity(t *testing.T) {
	e := testEnv(t)
	p := NewParser(e)
	evs := []events.Event{
		ev("light", "power_on", "switch", "on", 2),
		ev("light", "power_off", "switch", "off", 1), // out of order
		ev("ghost", "x", "y", "z", 0),                // unknown device
		ev("light", "explode", "switch", "on", 3),    // unknown command
	}
	recs, skipped := p.Parse(evs)
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if !recs[0].At.Before(recs[1].At) {
		t.Error("records must be chronologically sorted")
	}
	if recs[0].Action != 0 || recs[1].Action != 1 {
		t.Errorf("actions = %d,%d", recs[0].Action, recs[1].Action)
	}
}

func TestNumericNormalizer(t *testing.T) {
	e := testEnv(t)
	tempDev := e.Device(1)
	low, _ := tempDev.StateID("low")
	opt, _ := tempDev.StateID("optimal")
	high, _ := tempDev.StateID("high")
	n := &NumericNormalizer{
		Device:    tempDev,
		Attribute: "temperature",
		Thresholds: []Threshold{
			{Below: 18, State: low},
			{Below: 24, State: opt},
		},
		Above: high,
	}
	tests := []struct {
		val  string
		want device.StateID
		ok   bool
	}{
		{"12.5", low, true},
		{"20", opt, true},
		{"30", high, true},
		{"banana", 0, false},
	}
	for _, tt := range tests {
		got, ok := n.State("temperature", tt.val)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("State(temperature, %q) = %d,%v want %d,%v", tt.val, got, ok, tt.want, tt.ok)
		}
	}
	// Non-numeric attribute falls back to name resolution.
	if got, ok := n.State("mode", "optimal"); !ok || got != opt {
		t.Errorf("enum fallback = %d,%v", got, ok)
	}
	if _, ok := n.Action("power_on"); !ok {
		t.Error("Action should resolve by name")
	}
}

func TestSetNormalizer(t *testing.T) {
	e := testEnv(t)
	p := NewParser(e)
	if err := p.SetNormalizer("ghost", ForDevice(e.Device(0))); err == nil {
		t.Error("unknown device should error")
	}
	if err := p.SetNormalizer("temp", &NumericNormalizer{
		Device: e.Device(1), Attribute: "temperature", Above: 2,
	}); err != nil {
		t.Errorf("SetNormalizer: %v", err)
	}
	recs, skipped := p.Parse([]events.Event{
		ev("temp", "power_on", "temperature", "99", 0),
	})
	if skipped != 0 || len(recs) != 1 || recs[0].NewState != 2 {
		t.Errorf("recs=%v skipped=%d", recs, skipped)
	}
}

func TestBuildEpisodes(t *testing.T) {
	e := testEnv(t)
	p := NewParser(e)
	recs, _ := p.Parse([]events.Event{
		ev("light", "power_on", "switch", "on", 1),
		ev("light", "power_off", "switch", "off", 3),
		ev("light", "power_on", "switch", "on", 7), // second episode
	})
	cfg := EpisodeConfig{
		Start:   at(0),
		T:       5 * time.Minute,
		I:       time.Minute,
		Initial: env.State{0, 1},
	}
	eps, err := BuildEpisodes(e, cfg, recs)
	if err != nil {
		t.Fatalf("BuildEpisodes: %v", err)
	}
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	for i, ep := range eps {
		if err := ep.Validate(e); err != nil {
			t.Fatalf("episode %d invalid: %v", i, err)
		}
		if ep.Len() != 5 {
			t.Errorf("episode %d length %d, want 5", i, ep.Len())
		}
	}
	// light turns on at minute 1, off at minute 3 in episode 0
	if eps[0].States[2][0] != 1 {
		t.Error("light should be on after instance 1")
	}
	if eps[0].States[4][0] != 0 {
		t.Error("light should be off after instance 3")
	}
	// episode 1 starts from episode 0's final state
	if !eps[1].States[0].Equal(eps[0].States[5]) {
		t.Error("episode chaining broken")
	}
	if eps[1].States[3][0] != 1 {
		t.Error("light should be on after minute 7 (instance 2 of episode 1)")
	}
}

func TestBuildEpisodesDropsInvalidAndConflicting(t *testing.T) {
	e := testEnv(t)
	p := NewParser(e)
	recs, _ := p.Parse([]events.Event{
		ev("light", "power_on", "switch", "on", 0),
		ev("light", "power_off", "switch", "off", 0), // same interval: FCFS, dropped
		ev("light", "power_on", "switch", "on", 1),   // invalid (already on): dropped
	})
	eps, err := BuildEpisodes(e, EpisodeConfig{
		Start: at(0), T: 2 * time.Minute, I: time.Minute, Initial: env.State{0, 1},
	}, recs)
	if err != nil {
		t.Fatalf("BuildEpisodes: %v", err)
	}
	if len(eps) != 1 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if eps[0].States[1][0] != 1 || eps[0].States[2][0] != 1 {
		t.Errorf("states = %v", eps[0].States)
	}
	if eps[0].Actions[1][0] != device.NoAction {
		t.Error("invalid action must be dropped, not recorded")
	}
}

func TestBuildEpisodesErrors(t *testing.T) {
	e := testEnv(t)
	if _, err := BuildEpisodes(e, EpisodeConfig{
		Start: at(0), T: time.Minute, I: time.Minute, Initial: env.State{9, 9},
	}, nil); err == nil {
		t.Error("invalid initial state should error")
	}
	if _, err := BuildEpisodes(e, EpisodeConfig{
		Start: at(0), T: 0, I: time.Minute, Initial: env.State{0, 0},
	}, nil); err == nil {
		t.Error("invalid T should error")
	}
}

func TestBuildEpisodesIgnoresRecordsBeforeStart(t *testing.T) {
	e := testEnv(t)
	p := NewParser(e)
	recs, _ := p.Parse([]events.Event{
		ev("light", "power_on", "switch", "on", 0),
		ev("light", "power_off", "switch", "off", 10),
	})
	eps, err := BuildEpisodes(e, EpisodeConfig{
		Start: at(5), T: 10 * time.Minute, I: time.Minute, Initial: env.State{1, 1},
	}, recs)
	if err != nil {
		t.Fatalf("BuildEpisodes: %v", err)
	}
	if len(eps) != 1 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if eps[0].States[6][0] != 0 {
		t.Error("only the minute-10 record should apply (at instance 5)")
	}
}

func TestBuildEpisodesEmptyRecords(t *testing.T) {
	e := testEnv(t)
	eps, err := BuildEpisodes(e, EpisodeConfig{
		Start: at(0), T: time.Minute, I: time.Minute, Initial: env.State{0, 0},
	}, nil)
	if err != nil {
		t.Fatalf("BuildEpisodes: %v", err)
	}
	if len(eps) != 0 {
		t.Errorf("episodes = %d, want 0 for empty record stream", len(eps))
	}
}

// End-to-end: bus -> logger -> ReadLog -> Parse -> BuildEpisodes.
func TestPipelineEndToEnd(t *testing.T) {
	e := testEnv(t)
	bus := events.NewBus()
	var buf bytes.Buffer
	logger := events.NewLogger(bus, &buf)
	defer logger.Close()

	bus.Publish(events.Event{
		Date: at(1), DeviceLabel: "light", Capability: "switch",
		Attribute: "switch", AttributeValue: "on", Command: "power_on",
		User: "alice", App: "manual", Location: "home-a",
	})

	evs, err := events.ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	p := NewParser(e)
	recs, skipped := p.Parse(evs)
	if skipped != 0 || len(recs) != 1 {
		t.Fatalf("parse: recs=%d skipped=%d", len(recs), skipped)
	}
	eps, err := BuildEpisodes(e, EpisodeConfig{
		Start: at(0), T: 2 * time.Minute, I: time.Minute, Initial: env.State{0, 1},
	}, recs)
	if err != nil || len(eps) != 1 {
		t.Fatalf("episodes: %v %v", eps, err)
	}
	if eps[0].States[2][0] != 1 {
		t.Error("light should be on at the end of the episode")
	}
}
