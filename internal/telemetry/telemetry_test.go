package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	r := New(0)
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative ignored: counters are monotone
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("c"); same != c {
		t.Error("second resolve returned a different handle")
	}
	r.SetEnabled(false)
	c.Inc()
	if got := c.Value(); got != 5 {
		t.Errorf("disabled counter moved to %d", got)
	}
	r.SetEnabled(true)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("re-enabled counter = %d, want 6", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := New(0)
	g := r.Gauge("g")
	g.Set(1.5)
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	r.SetEnabled(false)
	g.Set(99)
	if got := g.Value(); got != 7 {
		t.Errorf("disabled gauge moved to %v", got)
	}
}

func TestBucketOfMonotoneAndBounded(t *testing.T) {
	values := []int64{0, 1, 7, 8, 9, 15, 16, 100, 1000, 123456, 1 << 30, 1<<62 + 12345, math.MaxInt64}
	prev := -1
	for _, v := range values {
		b := bucketOf(v)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		low, width := bucketBounds(b)
		if v < low || v >= low+width {
			// The last bucket's upper bound may overflow int64; tolerate it.
			if low+width > low {
				t.Fatalf("value %d outside its bucket [%d, %d)", v, low, low+width)
			}
		}
	}
	// Exhaustive small range: every value lands in a bucket containing it.
	for v := int64(0); v < 4096; v++ {
		low, width := bucketBounds(bucketOf(v))
		if v < low || v >= low+width {
			t.Fatalf("value %d outside bucket [%d, %d)", v, low, low+width)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	if s := h.Stats(); s.Count != 0 {
		t.Fatalf("empty histogram stats = %+v", s)
	}
	// 1..1000 ns: p50 ≈ 500, p99 ≈ 990, exact min/max.
	for i := int64(1); i <= 1000; i++ {
		h.ObserveNs(i)
	}
	s := h.Stats()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinNs != 1 || s.MaxNs != 1000 {
		t.Errorf("min/max = %d/%d, want 1/1000", s.MinNs, s.MaxNs)
	}
	if s.MeanNs != 500 {
		t.Errorf("mean = %d, want 500", s.MeanNs)
	}
	// Bucket width is ≤ 25%, so the quantile estimates are within 25%.
	within := func(got, want int64, name string) {
		lo, hi := want*3/4, want*5/4
		if got < lo || got > hi {
			t.Errorf("%s = %d, want within [%d, %d]", name, got, lo, hi)
		}
	}
	within(s.P50Ns, 500, "p50")
	within(s.P95Ns, 950, "p95")
	within(s.P99Ns, 990, "p99")
	if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
		t.Errorf("quantiles not ordered: %d %d %d", s.P50Ns, s.P95Ns, s.P99Ns)
	}
}

func TestHistogramNegativeClampsAndDisabled(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	h.ObserveNs(-5)
	if s := h.Stats(); s.Count != 1 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Fatalf("negative observation: %+v", s)
	}
	r.SetEnabled(false)
	h.ObserveNs(100)
	if h.Count() != 1 {
		t.Error("disabled histogram recorded")
	}
	if h.Enabled() {
		t.Error("Enabled() true on disabled registry")
	}
	h.Observe(3 * time.Microsecond) // still disabled; no-op
	if h.Count() != 1 {
		t.Error("disabled Observe recorded")
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	if l.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	l.Record("a", "", 1)
	l.Record("b", "", 2)
	if got := l.Events(); len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("partial ring: %+v", got)
	}
	l.Record("c", "", 3)
	l.Record("d", "", 4) // overwrites "a"
	got := l.Events()
	if len(got) != 3 || got[0].Kind != "b" || got[2].Kind != "d" {
		t.Fatalf("wrapped ring: %+v", got)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
}

func TestSnapshotJSONAndSanitize(t *testing.T) {
	r := New(4)
	r.Counter("reqs").Add(3)
	r.Gauge("eps").Set(0.5)
	r.Gauge("bad").Set(math.NaN())
	r.Gauge("inf").Set(math.Inf(1))
	r.Histogram("lat").ObserveNs(1000)
	r.Event("boot", "ok", 1)

	s := r.Snapshot()
	if s.Counters["reqs"] != 3 || s.Gauges["eps"] != 0.5 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Gauges["bad"] != 0 || s.Gauges["inf"] != 0 {
		t.Errorf("non-finite gauges not sanitized: %+v", s.Gauges)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "boot" {
		t.Errorf("events: %+v", s.Events)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.Histograms["lat"].Count != 1 {
		t.Errorf("histogram lost in round-trip: %+v", back.Histograms)
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int64{"b": 1, "a": 2, "c": 3}
	got := SortedNames(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedNames = %v", got)
	}
}

// TestHotPathAllocationFree is the package's core contract: Counter.Inc,
// Gauge.Set and Histogram.ObserveNs allocate nothing, enabled or not.
func TestHotPathAllocationFree(t *testing.T) {
	r := New(0)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	for _, enabled := range []bool{true, false} {
		r.SetEnabled(enabled)
		if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
			t.Errorf("Counter.Inc (enabled=%v): %v allocs/op", enabled, n)
		}
		if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
			t.Errorf("Counter.Add (enabled=%v): %v allocs/op", enabled, n)
		}
		if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
			t.Errorf("Gauge.Set (enabled=%v): %v allocs/op", enabled, n)
		}
		if n := testing.AllocsPerRun(1000, func() { h.ObserveNs(12345) }); n != 0 {
			t.Errorf("Histogram.ObserveNs (enabled=%v): %v allocs/op", enabled, n)
		}
	}
}

// TestConcurrentScrapeAndWrite runs writers against snapshotters; the race
// detector proves the scrape-without-stopping contract.
func TestConcurrentScrapeAndWrite(t *testing.T) {
	r := New(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			g := r.Gauge("g")
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(j))
				h.ObserveNs(int64(j % 100000))
				r.Event("tick", "loop", int64(j))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		s := r.Snapshot()
		if _, err := json.Marshal(s); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	// Counters are monotone: a final snapshot sees at least what any earlier
	// one saw.
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s2.Counters["c"] < s1.Counters["c"] {
		t.Errorf("counter went backwards: %d then %d", s1.Counters["c"], s2.Counters["c"])
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New(0)
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New(0)
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i))
	}
}
