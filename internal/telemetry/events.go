package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured entry in the ring-buffered event log: a
// timestamp, a kind tag (e.g. "checkpoint.save"), an optional detail
// string, and an optional integer value. Kinds and details should be
// static strings so recording stays allocation-free.
type Event struct {
	UnixNs int64  `json:"unixNs"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	Value  int64  `json:"value,omitempty"`
}

// EventLog is a fixed-capacity ring of Events: the most recent capacity
// entries are kept, older ones are overwritten. Every overwrite loses one
// event, and losing events silently is how a post-incident scrape ends up
// missing the interesting entry — so overwrites are counted, exposed via
// Dropped, surfaced as the synthetic telemetry.events.dropped counter in
// snapshots, and reported by the daemon's /healthz detail. Safe for
// concurrent use.
type EventLog struct {
	dropped atomic.Int64

	mu   sync.Mutex
	buf  []Event
	next int // write cursor
	full bool
}

// NewEventLog returns a ring holding up to capacity events (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting (and counting as dropped) the
// oldest entry when full.
func (l *EventLog) Record(kind, detail string, value int64) {
	now := time.Now().UnixNano()
	l.mu.Lock()
	if l.full {
		l.dropped.Add(1)
	}
	l.buf[l.next] = Event{UnixNs: now, Kind: kind, Detail: detail, Value: value}
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Dropped returns how many events have been overwritten before ever being
// read — the ring's cumulative data loss.
func (l *EventLog) Dropped() int64 { return l.dropped.Load() }

// Len returns the number of buffered events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Events returns the buffered events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Event(nil), l.buf[:l.next]...)
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}
