package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// Satellite coverage: HistogramStats.Buckets windowed-delta edge cases
// feeding DeltaQuantile — empty window, counter reset after a daemon
// restart, and a single-bucket spike.

func newTestHist() *Histogram {
	en := &atomic.Bool{}
	en.Store(true)
	return newHistogram(en)
}

func TestDeltaQuantileIdenticalSnapshotsIsEmptyWindow(t *testing.T) {
	h := newTestHist()
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Stats()
	// cur == prev: zero observations in the window, regardless of how much
	// lifetime history the histogram carries.
	if _, ok := DeltaQuantile(s, s, 0.99); ok {
		t.Fatal("identical snapshots reported a non-empty window")
	}
	if n := DeltaCount(s, s); n != 0 {
		t.Fatalf("DeltaCount(s, s) = %d, want 0", n)
	}
}

func TestDeltaQuantileBothEmpty(t *testing.T) {
	var zero HistogramStats
	if _, ok := DeltaQuantile(zero, zero, 0.5); ok {
		t.Fatal("two zero-value snapshots reported a non-empty window")
	}
}

func TestDeltaQuantileCounterResetAfterRestart(t *testing.T) {
	// Before the restart: a long-lived histogram with plenty of slow
	// observations.
	before := newTestHist()
	for i := 0; i < 1000; i++ {
		before.Observe(100 * time.Millisecond)
	}
	prev := before.Stats()

	// The daemon restarts: the histogram starts over and records a few
	// fast observations. Every bucket count is now below prev's.
	after := newTestHist()
	for i := 0; i < 10; i++ {
		after.Observe(time.Microsecond)
	}
	cur := after.Stats()

	// Negative deltas clamp to zero rather than corrupting the window. The
	// fast bucket (absent from prev) survives; the slow bucket's negative
	// delta disappears.
	buckets, total := deltaBuckets(cur, prev)
	if total != 10 {
		t.Fatalf("window total = %d, want 10 (post-restart observations only)", total)
	}
	for _, b := range buckets {
		if b.Count < 0 {
			t.Fatalf("negative bucket delta leaked: %+v", b)
		}
	}
	q, ok := DeltaQuantile(cur, prev, 0.99)
	if !ok {
		t.Fatal("post-restart window reported empty")
	}
	if q > int64(10*time.Microsecond) {
		t.Fatalf("p99 = %dns, want ~1µs (the pre-restart 100ms tail must not survive the reset)", q)
	}
}

func TestDeltaQuantileCounterResetSameBucket(t *testing.T) {
	// Reset where the post-restart traffic lands in the SAME bucket as the
	// pre-restart traffic, but with a smaller count: the clamp makes the
	// window empty (indistinguishable from no traffic — documented
	// behavior, not silently negative).
	before := newTestHist()
	for i := 0; i < 100; i++ {
		before.Observe(time.Millisecond)
	}
	prev := before.Stats()
	after := newTestHist()
	for i := 0; i < 5; i++ {
		after.Observe(time.Millisecond)
	}
	if _, ok := DeltaQuantile(after.Stats(), prev, 0.5); ok {
		t.Fatal("same-bucket reset should clamp to an empty window")
	}
}

func TestDeltaQuantileSingleBucketSpike(t *testing.T) {
	h := newTestHist()
	for i := 0; i < 20; i++ {
		h.Observe(time.Millisecond)
	}
	prev := h.Stats()
	// A burst of identical observations: the whole window lives in one
	// bucket, so every quantile interpolates inside it.
	const spike = 500
	for i := 0; i < spike; i++ {
		h.Observe(10 * time.Millisecond)
	}
	cur := h.Stats()

	if n := DeltaCount(cur, prev); n != spike {
		t.Fatalf("DeltaCount = %d, want %d", n, spike)
	}
	low, width := bucketBounds(bucketOf(int64(10 * time.Millisecond)))
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		ns, ok := DeltaQuantile(cur, prev, q)
		if !ok {
			t.Fatalf("q=%v: empty window", q)
		}
		if ns < low || ns > low+width {
			t.Fatalf("q=%v landed at %dns, outside the spike bucket [%d, %d]", q, ns, low, low+width)
		}
	}
	// Quantiles are monotone across the bucket interpolation.
	p50, _ := DeltaQuantile(cur, prev, 0.5)
	p99, _ := DeltaQuantile(cur, prev, 0.99)
	if p99 < p50 {
		t.Fatalf("p99 (%d) < p50 (%d)", p99, p50)
	}
}

func TestDeltaCountOverSingleBucketSpikeProration(t *testing.T) {
	h := newTestHist()
	const spike = 1000
	for i := 0; i < spike; i++ {
		h.Observe(10 * time.Millisecond)
	}
	cur := h.Stats()
	var prev HistogramStats

	// Threshold far above the spike bucket: nothing over.
	if over, total := DeltaCountOver(cur, prev, int64(time.Second)); over != 0 || total != spike {
		t.Fatalf("high threshold: over=%d total=%d, want 0/%d", over, total, spike)
	}
	// Threshold far below: everything over.
	if over, _ := DeltaCountOver(cur, prev, int64(time.Microsecond)); over != spike {
		t.Fatalf("low threshold: over=%d, want %d", over, spike)
	}
	// Threshold inside the spike bucket: the prorated split stays within
	// the bucket's population.
	low, width := bucketBounds(bucketOf(int64(10 * time.Millisecond)))
	mid := low + width/2
	over, total := DeltaCountOver(cur, prev, mid)
	if total != spike {
		t.Fatalf("total = %d, want %d", total, spike)
	}
	if over <= 0 || over >= spike {
		t.Fatalf("mid-bucket threshold: over=%d, want a strict interior split of %d", over, spike)
	}
}
