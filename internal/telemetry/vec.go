package telemetry

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metric vectors: a CounterVec/GaugeVec/HistogramVec is a family
// of series sharing one metric name and one ordered label-key set, with
// each distinct label-value tuple owning its own child metric. The design
// constraints mirror the scalar metrics:
//
//   - the read path is lock-free: With resolves a label tuple through an
//     atomically-published interned map (one atomic pointer load plus one
//     map lookup on the hit path), so concurrent writers never contend;
//   - a single-label hit is allocation-free once the caller holds the
//     values slice (hot paths should resolve children once, exactly like
//     scalar handles — the child IS a *Counter/*Gauge/*Histogram);
//   - cardinality is bounded: each vec accepts at most its cap of
//     distinct label tuples (DefaultVecCap unless SetCap raised it).
//     Tuples beyond the cap all share one detached overflow child that is
//     never exported, and every write that lands there is counted on the
//     registry's telemetry.labels.dropped counter — so a label blowup
//     degrades visibly instead of eating unbounded memory.
//
// Labeled series surface everywhere scalars do, flattened to
// `name{key="value",...}` (exposition-format escaping) in JSON snapshots
// — so SLO objectives, alert rules, and tsdb queries address a labeled
// series by its flat name — and as properly labeled samples in the
// Prometheus text exposition.

// DefaultVecCap bounds the distinct label tuples a vec accepts before
// overflow. Raise per-vec with SetCap before the first overflow.
const DefaultVecCap = 256

// labelSep joins multi-label tuple values into one interning key. 0x1f
// (ASCII unit separator) cannot appear in sane label values; a value that
// does contain it merely risks colliding two tuples into one series.
const labelSep = "\x1f"

// vecChild pairs one child metric with its rendered identity.
type vecChild[T any] struct {
	// flat is the snapshot key: name{k="v",...} with escaped values.
	flat string
	// promLabels is the Prometheus-rendered label block {k="v",...}.
	promLabels string
	vals       []string
	v          *T
}

// vecCore is the label-interning machinery shared by the three vec kinds.
type vecCore[T any] struct {
	name    string
	keys    []string
	newT    func() *T
	dropped *Counter

	// children is the interned tuple→child map, republished copy-on-write
	// under mu so readers never lock.
	children atomic.Pointer[map[string]*vecChild[T]]
	mu       sync.Mutex
	max      int
	overflow *T // shared sink for tuples beyond max; never exported
}

func newVecCore[T any](name string, keys []string, dropped *Counter, newT func() *T) *vecCore[T] {
	v := &vecCore[T]{
		name:    name,
		keys:    keys,
		newT:    newT,
		dropped: dropped,
		max:     DefaultVecCap,
	}
	m := make(map[string]*vecChild[T])
	v.children.Store(&m)
	return v
}

// setCap raises (or lowers) the tuple cap. Existing children survive a
// lowered cap; only new tuples are turned away.
func (v *vecCore[T]) setCap(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n > 0 {
		v.max = n
	}
}

// key builds the interning key for a tuple. Single-label vecs use the
// value itself (no allocation); multi-label tuples join on labelSep.
func (v *vecCore[T]) key(vals []string) string {
	if len(vals) == 1 {
		return vals[0]
	}
	return strings.Join(vals, labelSep)
}

// with resolves the child for a label tuple, interning it on first use.
// The hit path is one atomic load and one map lookup. A tuple arriving
// with the wrong arity, or beyond the cap, lands on the overflow child
// and bumps telemetry.labels.dropped.
func (v *vecCore[T]) with(vals []string) *T {
	if len(vals) != len(v.keys) {
		v.dropped.Inc()
		return v.overflowChild()
	}
	k := v.key(vals)
	if c, ok := (*v.children.Load())[k]; ok {
		return c.v
	}
	return v.intern(k, vals)
}

// intern publishes a new child under mu, copy-on-write. Double-checked:
// a racing intern of the same tuple returns the winner.
func (v *vecCore[T]) intern(k string, vals []string) *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.children.Load()
	if c, ok := old[k]; ok {
		return c.v
	}
	if len(old) >= v.max {
		v.dropped.Inc()
		return v.overflowLocked()
	}
	cp := make([]string, len(vals))
	copy(cp, vals)
	child := &vecChild[T]{
		flat:       flatName(v.name, v.keys, cp),
		promLabels: promLabelBlock(v.keys, cp),
		vals:       cp,
		v:          v.newT(),
	}
	next := make(map[string]*vecChild[T], len(old)+1)
	for kk, vv := range old {
		next[kk] = vv
	}
	next[k] = child
	v.children.Store(&next)
	return child.v
}

// overflowChild lazily builds the shared beyond-cap sink (callers without
// mu held; intern uses overflowLocked).
func (v *vecCore[T]) overflowChild() *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.overflowLocked()
}

func (v *vecCore[T]) overflowLocked() *T {
	if v.overflow == nil {
		v.overflow = v.newT()
	}
	return v.overflow
}

// snapshot returns the children sorted by flat name.
func (v *vecCore[T]) snapshot() []*vecChild[T] {
	m := *v.children.Load()
	out := make([]*vecChild[T], 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sortChildren(out)
	return out
}

// len reports the interned tuple count.
func (v *vecCore[T]) len() int { return len(*v.children.Load()) }

func sortChildren[T any](cs []*vecChild[T]) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].flat < cs[j-1].flat; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// flatName renders the snapshot key for a labeled series:
// name{k="v",...} with exposition-format value escaping, label keys in
// declaration order. This exact string addresses the series in SLO
// objectives, alert rules, and tsdb queries.
func flatName(name string, keys, vals []string) string {
	var b strings.Builder
	b.Grow(len(name) + 16)
	b.WriteString(name)
	writeLabelBlock(&b, keys, vals, false)
	return b.String()
}

// promLabelBlock renders {k="v",...} with keys mapped onto the Prometheus
// charset — the label block appended to every exposition sample.
func promLabelBlock(keys, vals []string) string {
	var b strings.Builder
	writeLabelBlock(&b, keys, vals, true)
	return b.String()
}

func writeLabelBlock(b *strings.Builder, keys, vals []string, prom bool) {
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		if prom {
			b.WriteString(promName(k))
		} else {
			b.WriteString(k)
		}
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ core *vecCore[Counter] }

// With returns the counter for a label-value tuple, interning it on first
// use. Hot paths resolve children once and hold the *Counter.
func (v *CounterVec) With(vals ...string) *Counter { return v.core.with(vals) }

// SetCap raises the vec's distinct-tuple cap (default DefaultVecCap).
func (v *CounterVec) SetCap(n int) { v.core.setCap(n) }

// Len reports how many label tuples are interned.
func (v *CounterVec) Len() int { return v.core.len() }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ core *vecCore[Gauge] }

// With returns the gauge for a label-value tuple, interning on first use.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.core.with(vals) }

// SetCap raises the vec's distinct-tuple cap (default DefaultVecCap).
func (v *GaugeVec) SetCap(n int) { v.core.setCap(n) }

// Len reports how many label tuples are interned.
func (v *GaugeVec) Len() int { return v.core.len() }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ core *vecCore[Histogram] }

// With returns the histogram for a label-value tuple, interning on first
// use.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.core.with(vals) }

// SetCap raises the vec's distinct-tuple cap (default DefaultVecCap).
func (v *HistogramVec) SetCap(n int) { v.core.setCap(n) }

// Len reports how many label tuples are interned.
func (v *HistogramVec) Len() int { return v.core.len() }

// CounterVec returns the named labeled-counter family, creating it on
// first use with the given label keys. A later call with different keys
// returns the original family unchanged (first registration wins).
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cvecs[name]
	if !ok {
		v = &CounterVec{core: newVecCore(name, keys, r.labelsDroppedLocked(), func() *Counter {
			return &Counter{en: &r.enabled}
		})}
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named labeled-gauge family, creating it on first
// use.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gvecs[name]
	if !ok {
		v = &GaugeVec{core: newVecCore(name, keys, r.labelsDroppedLocked(), func() *Gauge {
			return &Gauge{en: &r.enabled}
		})}
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named labeled-histogram family, creating it on
// first use.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hvecs[name]
	if !ok {
		v = &HistogramVec{core: newVecCore(name, keys, r.labelsDroppedLocked(), func() *Histogram {
			return newHistogram(&r.enabled)
		})}
		r.hvecs[name] = v
	}
	return v
}

// labelsDroppedLocked lazily registers the registry's shared
// cardinality-overflow counter. Caller holds r.mu.
func (r *Registry) labelsDroppedLocked() *Counter {
	c, ok := r.counters["telemetry.labels.dropped"]
	if !ok {
		c = &Counter{en: &r.enabled}
		r.counters["telemetry.labels.dropped"] = c
	}
	return c
}

// LabelsDropped reports writes lost to vec cardinality caps (the
// telemetry.labels.dropped counter).
func (r *Registry) LabelsDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labelsDroppedLocked().Value()
}

// SeriesCount reports every live series the registry would export: scalar
// counters, gauges, gauge funcs, histograms, infos, plus each vec's
// interned children. The /healthz cardinality block reads this.
func (r *Registry) SeriesCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.counters) + len(r.gauges) + len(r.gaugeFns) + len(r.hists) + len(r.infos)
	for _, v := range r.cvecs {
		n += v.Len()
	}
	for _, v := range r.gvecs {
		n += v.Len()
	}
	for _, v := range r.hvecs {
		n += v.Len()
	}
	return n
}
