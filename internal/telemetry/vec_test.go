package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecBasics(t *testing.T) {
	r := New(8)
	v := r.CounterVec("jarvisd.requests", "op")
	v.With("recommend").Add(3)
	v.With("state").Inc()
	v.With("recommend").Inc()

	snap := r.Snapshot()
	if got := snap.Counters[`jarvisd.requests{op="recommend"}`]; got != 4 {
		t.Fatalf("recommend = %d, want 4", got)
	}
	if got := snap.Counters[`jarvisd.requests{op="state"}`]; got != 1 {
		t.Fatalf("state = %d, want 1", got)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
}

func TestVecSameHandleOnRepeatResolve(t *testing.T) {
	r := New(8)
	a := r.CounterVec("x", "k").With("v")
	b := r.CounterVec("x", "k").With("v")
	if a != b {
		t.Fatal("resolving the same tuple twice returned distinct children")
	}
}

func TestVecMultiLabelFlatName(t *testing.T) {
	r := New(8)
	v := r.GaugeVec("replica.lag", "peer", "role")
	v.With("10.0.0.2:7777", "follower").Set(12)
	snap := r.Snapshot()
	want := `replica.lag{peer="10.0.0.2:7777",role="follower"}`
	if _, ok := snap.Gauges[want]; !ok {
		t.Fatalf("snapshot gauges missing %q; have %v", want, SortedNames(snap.Gauges))
	}
}

func TestVecLabelValueEscaping(t *testing.T) {
	r := New(8)
	v := r.CounterVec("weird", "k")
	v.With("a\"b\\c\nd").Inc()
	snap := r.Snapshot()
	want := `weird{k="a\"b\\c\nd"}`
	if _, ok := snap.Counters[want]; !ok {
		t.Fatalf("snapshot counters missing %q; have %v", want, SortedNames(snap.Counters))
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := New(8)
	v := r.CounterVec("burst", "id")
	v.SetCap(4)
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		v.With(id).Inc()
	}
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want cap 4", v.Len())
	}
	if got := r.LabelsDropped(); got != 2 {
		t.Fatalf("LabelsDropped = %d, want 2 (e and f)", got)
	}
	// Overflow writes share one detached sink: repeat writes to a rejected
	// tuple keep counting drops but never appear in snapshots.
	v.With("e").Inc()
	v.With("f").Inc()
	snap := r.Snapshot()
	for _, name := range SortedNames(snap.Counters) {
		if strings.Contains(name, `id="e"`) || strings.Contains(name, `id="f"`) {
			t.Fatalf("overflow tuple leaked into snapshot: %s", name)
		}
	}
	if got := snap.Counters["telemetry.labels.dropped"]; got != 4 {
		t.Fatalf("telemetry.labels.dropped = %d, want 4", got)
	}
}

func TestVecArityMismatchDrops(t *testing.T) {
	r := New(8)
	v := r.CounterVec("pair", "a", "b")
	v.With("only-one").Inc()
	if got := r.LabelsDropped(); got != 1 {
		t.Fatalf("LabelsDropped = %d, want 1", got)
	}
	if v.Len() != 0 {
		t.Fatalf("arity-mismatched tuple was interned")
	}
}

func TestVecFirstRegistrationWins(t *testing.T) {
	r := New(8)
	a := r.CounterVec("dup", "x")
	b := r.CounterVec("dup", "y", "z")
	if a != b {
		t.Fatal("second registration created a new vec")
	}
	// Keys stay from the first registration: a two-value With is an arity
	// mismatch against ["x"].
	b.With("1", "2").Inc()
	if r.LabelsDropped() != 1 {
		t.Fatal("arity check did not use first-registration keys")
	}
}

func TestVecHistogram(t *testing.T) {
	r := New(8)
	v := r.HistogramVec("lat", "op")
	h := v.With("recommend")
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	snap := r.Snapshot()
	hs, ok := snap.Histograms[`lat{op="recommend"}`]
	if !ok {
		t.Fatalf("snapshot histograms missing labeled series; have %v", SortedNames(snap.Histograms))
	}
	if hs.Count != 100 {
		t.Fatalf("Count = %d, want 100", hs.Count)
	}
}

func TestVecCachedChildWriteAllocs(t *testing.T) {
	r := New(8)
	c := r.CounterVec("hot", "op").With("x")
	g := r.GaugeVec("hotg", "op").With("x")
	h := r.HistogramVec("hoth", "op").With("x")
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(1)
		h.Observe(time.Microsecond)
	}); n != 0 {
		t.Fatalf("cached-child writes allocate: %v allocs/op", n)
	}
}

func TestVecSingleLabelHitPathAllocs(t *testing.T) {
	r := New(8)
	v := r.CounterVec("hot", "op")
	v.With("x").Inc() // intern outside the measured loop
	vals := []string{"x"}
	if n := testing.AllocsPerRun(200, func() {
		v.core.with(vals).Inc()
	}); n != 0 {
		t.Fatalf("single-label hit path allocates: %v allocs/op", n)
	}
}

func TestVecConcurrentIntern(t *testing.T) {
	r := New(8)
	v := r.CounterVec("conc", "id")
	v.SetCap(1024)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// All goroutines fight over the same tuples.
				v.With(string(rune('a' + i%26))).Inc()
			}
		}()
	}
	wg.Wait()
	if v.Len() != 26 {
		t.Fatalf("Len = %d, want 26", v.Len())
	}
	var total int64
	snap := r.Snapshot()
	for name, n := range snap.Counters {
		if strings.HasPrefix(name, "conc{") {
			total += n
		}
	}
	if total != goroutines*perG {
		t.Fatalf("total = %d, want %d (lost increments)", total, goroutines*perG)
	}
}

func TestVecDisabledRegistry(t *testing.T) {
	r := New(8)
	c := r.CounterVec("off", "k").With("v")
	r.SetEnabled(false)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("disabled registry counted a vec write")
	}
}

func TestSeriesCount(t *testing.T) {
	r := New(8)
	r.Counter("a")
	r.Gauge("b")
	r.Histogram("c")
	v := r.CounterVec("d", "k")
	v.With("1").Inc()
	v.With("2").Inc()
	// a + b + c + the lazily-registered telemetry.labels.dropped + two vec
	// children = 6.
	if got := r.SeriesCount(); got != 6 {
		t.Fatalf("SeriesCount = %d, want 6", got)
	}
}

func TestValidMetricName(t *testing.T) {
	good := []string{"a", "jarvisd.requests", "rl.update.latency", "x_y.z9"}
	bad := []string{"", "9a", "A.b", "a-b", "a b", "a{k=\"v\"}", ".a", "_a"}
	for _, n := range good {
		if !ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = true, want false", n)
		}
	}
}
