package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets: exact for values 0..7, then four log-linear
// sub-buckets per power of two up to 2^63-1, so every bucket's relative
// width is at most 25% and the whole structure is a fixed 2 KB of atomics.
// Exponents run 3..62 (int64 nanosecond observations), giving
// 8 + 60*4 = 248 buckets.
const numBuckets = 8 + (62-3+1)*4

// bucketOf maps a non-negative value onto its bucket index. Monotone:
// v1 <= v2 implies bucketOf(v1) <= bucketOf(v2).
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	exp := bits.Len64(u) - 1          // 3..62 for int64 inputs
	sub := (u >> (uint(exp) - 2)) & 3 // two bits below the leading bit
	return 8 + (exp-3)*4 + int(sub)
}

// bucketBounds returns the inclusive lower bound and the width of bucket i.
func bucketBounds(i int) (low, width int64) {
	if i < 8 {
		return int64(i), 1
	}
	i -= 8
	exp := uint(i/4 + 3)
	sub := int64(i % 4)
	width = 1 << (exp - 2)
	return 1<<exp + sub*width, width
}

// Histogram is a bounded-bucket latency histogram. Observe is lock- and
// allocation-free; Stats estimates p50/p95/p99 by linear interpolation
// inside the matched bucket (≤ 25% relative bucket width), clamped to the
// exact observed min/max.
type Histogram struct {
	en    *atomic.Bool
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64
	max   atomic.Int64
	b     [numBuckets]atomic.Int64
}

func newHistogram(en *atomic.Bool) *Histogram {
	h := &Histogram{en: en}
	h.min.Store(math.MaxInt64)
	return h
}

// Enabled reports whether observations are currently collected. Call
// sites use it to skip the time.Now() pair when telemetry is off, so a
// disabled run is indistinguishable from uninstrumented code.
func (h *Histogram) Enabled() bool { return h.en.Load() }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one latency in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveNs(ns int64) {
	if !h.en.Load() {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.b[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketCount is one populated bucket of a histogram snapshot: inclusive
// lower bound, bucket width, and the observations that landed inside.
// Exporting the raw (sparse) buckets is what lets a consumer window two
// snapshots — subtract counts bucket by bucket and re-derive quantiles
// over just the interval — which the cumulative p50/p95/p99 summaries
// cannot express. See DeltaQuantile and DeltaCountOver.
type BucketCount struct {
	LowNs   int64 `json:"lowNs"`
	WidthNs int64 `json:"widthNs"`
	Count   int64 `json:"count"`
}

// HistogramStats is the JSON-ready summary of a histogram.
type HistogramStats struct {
	Count  int64 `json:"count"`
	SumNs  int64 `json:"sumNs"`
	MinNs  int64 `json:"minNs"`
	MaxNs  int64 `json:"maxNs"`
	MeanNs int64 `json:"meanNs"`
	P50Ns  int64 `json:"p50Ns"`
	P95Ns  int64 `json:"p95Ns"`
	P99Ns  int64 `json:"p99Ns"`
	// Buckets lists the populated buckets in ascending order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Stats summarizes the histogram. An empty histogram returns the zero
// value.
func (h *Histogram) Stats() HistogramStats {
	var counts [numBuckets]int64
	var total int64
	for i := range h.b {
		counts[i] = h.b[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistogramStats{}
	}
	// count/sum/min/max are read after the buckets; racing writers can make
	// them momentarily ahead of the bucket totals, which quantile walking
	// below tolerates by clamping ranks to the bucket total.
	s := HistogramStats{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MinNs: h.min.Load(),
		MaxNs: h.max.Load(),
	}
	if s.Count > 0 {
		s.MeanNs = s.SumNs / s.Count
	}
	s.P50Ns = quantile(&counts, total, 0.50, s.MinNs, s.MaxNs)
	s.P95Ns = quantile(&counts, total, 0.95, s.MinNs, s.MaxNs)
	s.P99Ns = quantile(&counts, total, 0.99, s.MinNs, s.MaxNs)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		low, width := bucketBounds(i)
		s.Buckets = append(s.Buckets, BucketCount{LowNs: low, WidthNs: width, Count: n})
	}
	return s
}

// quantile estimates the q-quantile from a bucket snapshot by rank walk
// plus intra-bucket linear interpolation, clamped to [min, max].
func quantile(counts *[numBuckets]int64, total int64, q float64, min, max int64) int64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range counts {
		n := counts[i]
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			low, width := bucketBounds(i)
			// Position of the target rank inside this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(n)
			v := low + int64(frac*float64(width))
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
		cum += n
	}
	return max
}
