package telemetry

import (
	"sync"
	"testing"
)

// Quantile edge cases: the rank walk has off-by-one hazards exactly where
// the data is degenerate — no observations, one observation, and all mass
// in a single bucket.

func TestQuantileEmptyHistogram(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	s := h.Stats()
	if s.Count != 0 || s.P50Ns != 0 || s.P99Ns != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram stats = %+v, want zero value", s)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	h.ObserveNs(12345)
	s := h.Stats()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	// With one observation every quantile is that observation, exactly: the
	// interpolated value clamps to min == max.
	for name, got := range map[string]int64{"p50": s.P50Ns, "p95": s.P95Ns, "p99": s.P99Ns} {
		if got != 12345 {
			t.Errorf("%s = %d, want 12345", name, got)
		}
	}
	if s.MinNs != 12345 || s.MaxNs != 12345 || s.MeanNs != 12345 {
		t.Errorf("min/max/mean = %d/%d/%d, want 12345 each", s.MinNs, s.MaxNs, s.MeanNs)
	}
}

func TestQuantileSinglePopulatedBucket(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	// 1000 identical observations: one populated bucket; the p99 rank walk
	// must stop inside it and clamp interpolation to the exact value.
	for i := 0; i < 1000; i++ {
		h.ObserveNs(4096)
	}
	s := h.Stats()
	if s.P50Ns != 4096 || s.P95Ns != 4096 || s.P99Ns != 4096 {
		t.Fatalf("quantiles = %d/%d/%d, want 4096 each", s.P50Ns, s.P95Ns, s.P99Ns)
	}
}

func TestQuantileRankWalkDirect(t *testing.T) {
	// Drive the rank walk directly: one populated bucket far down the
	// layout, with min/max clamps wider than the bucket.
	var counts [numBuckets]int64
	bkt := bucketOf(1 << 20)
	counts[bkt] = 10
	low, width := bucketBounds(bkt)
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		v := quantile(&counts, 10, q, 0, 1<<62)
		if v < low || v > low+width {
			t.Errorf("q=%g: %d outside populated bucket [%d, %d]", q, v, low, low+width)
		}
	}
	// Degenerate rank: q so small the rank clamps up to 1.
	if v := quantile(&counts, 10, 0.0, 0, 1<<62); v < low || v > low+width {
		t.Errorf("q=0: %d outside populated bucket", v)
	}
}

// TestConcurrentSnapshotDuringRecord hammers one histogram from writers
// while snapshotting; under -race this proves Stats' bucket-then-summary
// read order is safe, and every snapshot must be internally sane (ordered
// quantiles within [min, max], count never behind an earlier snapshot).
func TestConcurrentSnapshotDuringRecord(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveNs(int64(worker*1000 + j%5000))
			}
		}(i)
	}
	var prevCount int64
	for i := 0; i < 200; i++ {
		s := h.Stats()
		if s.Count < prevCount {
			t.Fatalf("snapshot %d: count went backwards %d -> %d", i, prevCount, s.Count)
		}
		prevCount = s.Count
		if s.Count == 0 {
			continue
		}
		if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
			t.Fatalf("snapshot %d: quantiles unordered %d/%d/%d", i, s.P50Ns, s.P95Ns, s.P99Ns)
		}
		if s.P50Ns < s.MinNs || s.P99Ns > s.MaxNs {
			t.Fatalf("snapshot %d: quantiles outside [min,max]: %+v", i, s)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEventLogDroppedCounter(t *testing.T) {
	l := NewEventLog(2)
	l.Record("a", "", 0)
	l.Record("b", "", 0)
	if got := l.Dropped(); got != 0 {
		t.Fatalf("dropped = %d before any overwrite", got)
	}
	l.Record("c", "", 0) // overwrites "a"
	l.Record("d", "", 0) // overwrites "b"
	if got := l.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	// The registry surfaces the loss as a synthetic counter.
	r := New(1)
	if _, ok := r.Snapshot().Counters["telemetry.events.dropped"]; ok {
		t.Fatal("synthetic counter present before any drop")
	}
	r.Event("x", "", 0)
	r.Event("y", "", 0)
	if got := r.Snapshot().Counters["telemetry.events.dropped"]; got != 1 {
		t.Fatalf("snapshot dropped counter = %d, want 1", got)
	}
}
