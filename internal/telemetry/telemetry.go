// Package telemetry is a dependency-free runtime metrics layer for the
// Jarvis pipeline: atomic counters and gauges, bounded log-linear latency
// histograms with quantile estimates, and a ring-buffered structured event
// log, all collected behind a named registry that serializes to one JSON
// snapshot.
//
// The package exists so the hot paths — the batched DQN update, the safety
// policy check, the anomaly filter score, the daemon's request loop — can
// be instrumented without perturbing what they measure. The contract:
//
//   - Counter.Inc/Add, Gauge.Set, and Histogram.Observe are allocation-free
//     and lock-free (a handful of atomic operations each), asserted by
//     testing.AllocsPerRun in the package tests.
//   - Metric handles are resolved by name once, at package init, so the hot
//     path never touches the registry's map or mutex.
//   - A registry can be disabled (SetEnabled(false)); every write then
//     reduces to one atomic load and a branch, which is how the
//     instrumented-vs-bare benchmark comparisons establish the overhead.
//
// Snapshots are taken without stopping writers: a snapshot is internally
// consistent per metric but may straddle concurrent updates across metrics,
// which is the usual and acceptable contract for scrape-style monitoring.
package telemetry

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	en *atomic.Bool
	v  atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c.en.Load() {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 && c.en.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (last write wins).
type Gauge struct {
	en   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g.en.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Snapshot is one JSON-ready view of a registry. Non-finite gauge values
// are sanitized to 0 so the snapshot always marshals.
type Snapshot struct {
	UnixNs     int64                        `json:"unixNs"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramStats    `json:"histograms"`
	Infos      map[string]map[string]string `json:"infos,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Registry is a named collection of metrics plus one event log. The zero
// value is not usable; call New.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	infos    map[string]map[string]string
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	hvecs    map[string]*HistogramVec
	helps    map[string]string
	events   *EventLog
}

// DefaultEventCapacity bounds the Default registry's event ring.
const DefaultEventCapacity = 256

// New returns an enabled registry with an event ring of the given
// capacity (<= 0 uses DefaultEventCapacity).
func New(eventCapacity int) *Registry {
	if eventCapacity <= 0 {
		eventCapacity = DefaultEventCapacity
	}
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		infos:    make(map[string]map[string]string),
		cvecs:    make(map[string]*CounterVec),
		gvecs:    make(map[string]*GaugeVec),
		hvecs:    make(map[string]*HistogramVec),
		helps:    make(map[string]string),
		events:   NewEventLog(eventCapacity),
	}
	r.enabled.Store(true)
	return r
}

// Default is the process-wide registry every instrumented package resolves
// its handles from.
var Default = New(DefaultEventCapacity)

// SetEnabled turns collection on or off. Disabled metrics keep their
// accumulated values but ignore writes.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use. Resolve
// handles once at init, not on the hot path.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{en: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{en: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time; its result
// appears among the gauges. Use it for values that already live somewhere
// (uptime, ring sizes) rather than mirroring them into a Gauge on every
// change. The callback runs outside the registry lock, so it may itself
// read registry metrics, but it must be safe to call from any goroutine.
// Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// SetInfo records a labelled constant-1 info metric (build version, go
// version, ...) rendered as `name{k="v",...} 1` in the Prometheus
// exposition and under "infos" in JSON snapshots. The labels map is
// copied; re-setting a name replaces its labels.
func (r *Registry) SetInfo(name string, labels map[string]string) {
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = cp
}

// SetHelp records an exposition-format help string for a metric name,
// rendered as an escaped `# HELP` line before the metric's samples. The
// name is the base (un-labeled) metric name; vec families share one help
// line across their children.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[name] = help
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(&r.enabled)
		r.hists[name] = h
	}
	return h
}

// Event appends a structured event to the registry's ring.
func (r *Registry) Event(kind, detail string, value int64) {
	if r.enabled.Load() {
		r.events.Record(kind, detail, value)
	}
}

// Events exposes the registry's event ring.
func (r *Registry) Events() *EventLog { return r.events }

// sanitize maps non-finite values to 0 so snapshots always marshal to JSON.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot captures every metric's current value plus the buffered events.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		UnixNs:     time.Now().UnixNano(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramStats, len(r.hists)),
		Events:     r.events.Events(),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	// The event ring's loss accounting rides along as a synthetic counter so
	// every consumer of the snapshot (JSON, Prometheus, jarvisctl stats) sees
	// it without a dedicated field.
	if d := r.events.Dropped(); d > 0 {
		s.Counters["telemetry.events.dropped"] = d
	}
	for name, g := range r.gauges {
		s.Gauges[name] = sanitize(g.Value())
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stats()
	}
	// Labeled series flatten into the same maps under name{k="v",...}
	// keys, so every snapshot consumer — jarvisctl stats, SLO objectives,
	// alert rules, the tsdb — addresses a labeled series by one string.
	for _, v := range r.cvecs {
		for _, c := range v.core.snapshot() {
			s.Counters[c.flat] = c.v.Value()
		}
	}
	for _, v := range r.gvecs {
		for _, c := range v.core.snapshot() {
			s.Gauges[c.flat] = sanitize(c.v.Value())
		}
	}
	for _, v := range r.hvecs {
		for _, c := range v.core.snapshot() {
			s.Histograms[c.flat] = c.v.Stats()
		}
	}
	if len(r.infos) > 0 {
		s.Infos = make(map[string]map[string]string, len(r.infos))
		for name, labels := range r.infos {
			s.Infos[name] = labels // never mutated after SetInfo's copy
		}
	}
	var fns map[string]func() float64
	if len(r.gaugeFns) > 0 {
		fns = make(map[string]func() float64, len(r.gaugeFns))
		for name, fn := range r.gaugeFns {
			fns[name] = fn
		}
	}
	r.mu.Unlock()
	// Gauge callbacks run outside the lock so they may touch the registry
	// (or anything that does) without deadlocking.
	for name, fn := range fns {
		s.Gauges[name] = sanitize(fn())
	}
	return s
}

// SortedNames returns the sorted keys of a snapshot section (render
// helper for CLIs).
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ValidMetricName reports whether a base metric name fits the registry's
// naming contract: ^[a-z][a-z0-9._]*$ (lower-case dotted names; the
// Prometheus exporter maps dots onto underscores). The CI metric-name
// lint enforces this over every registration site; labeled series derive
// their flat names from a valid base plus a label block.
func ValidMetricName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '.' && c != '_' {
			return false
		}
	}
	return true
}

var expvarOnce sync.Once

// PublishExpvar registers the Default registry under the expvar name
// "telemetry" so /debug/vars exposes the same snapshot as /metrics. Safe
// to call any number of times.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return Default.Snapshot() }))
	})
}
