package telemetry

import (
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusScalars(t *testing.T) {
	r := New(0)
	r.Counter("jarvisd.requests.recommend").Add(7)
	r.Gauge("rl.train.epsilon").Set(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jarvisd_requests_recommend counter\n",
		"jarvisd_requests_recommend 7\n",
		"# TYPE rl_train_epsilon gauge\n",
		"rl_train_epsilon 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "requests.") {
		t.Error("unsanitized dotted name leaked into exposition")
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := New(0)
	h := r.Histogram("rl.update.latency")
	// Two distinct buckets: 100ns x3 and ~1ms x2.
	for i := 0; i < 3; i++ {
		h.ObserveNs(100)
	}
	for i := 0; i < 2; i++ {
		h.ObserveNs(1_000_000)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE rl_update_latency_seconds histogram\n") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `rl_update_latency_seconds_bucket{le="+Inf"} 5`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "rl_update_latency_seconds_count 5") {
		t.Errorf("missing _count:\n%s", out)
	}
	wantSum := float64(3*100+2*1_000_000) / 1e9
	if !strings.Contains(out, "rl_update_latency_seconds_sum "+strconv.FormatFloat(wantSum, 'g', -1, 64)) {
		t.Errorf("missing _sum %g:\n%s", wantSum, out)
	}
	// Bucket counts must be cumulative and non-decreasing in le order.
	var prevCum int64
	var buckets int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "rl_update_latency_seconds_bucket{") {
			continue
		}
		buckets++
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if val < prevCum {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prevCum)
		}
		prevCum = val
	}
	// Two populated buckets plus +Inf.
	if buckets != 3 {
		t.Errorf("emitted %d bucket lines, want 3 (two populated + +Inf):\n%s", buckets, out)
	}
}

func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := New(0)
	r.Histogram("empty.hist")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`empty_hist_seconds_bucket{le="+Inf"} 0`,
		"empty_hist_seconds_sum 0",
		"empty_hist_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty histogram missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"jarvisd.requests.state": "jarvisd_requests_state",
		"wal-append":             "wal_append",
		"9lives":                 "_9lives",
		"ok_name:x":              "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusDroppedEvents(t *testing.T) {
	r := New(1)
	r.Event("a", "", 0)
	r.Event("b", "", 0) // overwrites: one drop
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "telemetry_events_dropped 1\n") {
		t.Fatalf("missing dropped-events counter:\n%s", b.String())
	}
}
