package telemetry

import "math"

// Windowed histogram arithmetic: the SLO and alerting layers score
// latency objectives over a rolling window, not over the process
// lifetime, so they need the distribution observed *between* two
// snapshots of the same histogram. The exported sparse buckets
// (HistogramStats.Buckets) make that a bucket-by-bucket subtraction;
// negative deltas (a restarted writer) clamp to zero.

// deltaBuckets subtracts prev's buckets from cur's, returning the sparse
// positive deltas in ascending bucket order plus their total count. The
// zero-value prev treats the whole of cur as the window.
func deltaBuckets(cur, prev HistogramStats) ([]BucketCount, int64) {
	old := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		old[b.LowNs] = b.Count
	}
	out := make([]BucketCount, 0, len(cur.Buckets))
	var total int64
	for _, b := range cur.Buckets {
		d := b.Count - old[b.LowNs]
		if d <= 0 {
			continue
		}
		out = append(out, BucketCount{LowNs: b.LowNs, WidthNs: b.WidthNs, Count: d})
		total += d
	}
	return out, total
}

// DeltaCount returns how many observations the window between prev and
// cur contains (both snapshots of the same histogram; the zero-value
// prev counts everything in cur).
func DeltaCount(cur, prev HistogramStats) int64 {
	_, total := deltaBuckets(cur, prev)
	return total
}

// DeltaQuantile estimates the q-quantile of the observations recorded
// between two snapshots of the same histogram, by the same rank walk and
// intra-bucket interpolation Stats uses. ok is false when the window
// holds no observations.
func DeltaQuantile(cur, prev HistogramStats, q float64) (ns int64, ok bool) {
	buckets, total := deltaBuckets(cur, prev)
	if total == 0 {
		return 0, false
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for _, b := range buckets {
		if cum+b.Count >= rank {
			frac := float64(rank-cum) / float64(b.Count)
			return b.LowNs + int64(frac*float64(b.WidthNs)), true
		}
		cum += b.Count
	}
	last := buckets[len(buckets)-1]
	return last.LowNs + last.WidthNs, true
}

// DeltaCountOver returns how many observations in the window exceeded
// thresholdNs, plus the window total — the good/bad split a latency SLO
// scores. The bucket straddling the threshold is prorated linearly, so
// the split degrades gracefully with the ≤25% bucket width instead of
// snapping to a bucket edge.
func DeltaCountOver(cur, prev HistogramStats, thresholdNs int64) (over, total int64) {
	buckets, total := deltaBuckets(cur, prev)
	for _, b := range buckets {
		switch {
		case b.LowNs > thresholdNs:
			over += b.Count
		case b.LowNs+b.WidthNs <= thresholdNs:
			// entirely at or under the threshold
		default:
			inside := float64(thresholdNs-b.LowNs+1) / float64(b.WidthNs)
			over += b.Count - int64(inside*float64(b.Count))
		}
	}
	return over, total
}
