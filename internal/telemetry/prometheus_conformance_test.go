package telemetry

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Conformance test for the Prometheus text exposition format (0.0.4): a
// registry loaded with adversarial names, label values, and help strings
// must render output every line of which parses under the exposition
// grammar. This is the contract a real Prometheus scraper holds us to —
// one unescaped quote or newline poisons the whole scrape.

var (
	promMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromLine splits a sample line into name, label pairs, and value,
// honoring the escape rules inside quoted label values. It fails the test
// on any grammar violation.
func parsePromLine(t *testing.T, line string) (name string, labels map[string]string, value string) {
	t.Helper()
	labels = map[string]string{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("no separator in sample line %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		j := 1
		for rest[j] != '}' {
			// label name
			k := j
			for rest[j] != '=' {
				j++
			}
			lname := rest[k:j]
			if !promLabelNameRe.MatchString(lname) {
				t.Fatalf("bad label name %q in %q", lname, line)
			}
			j++ // '='
			if rest[j] != '"' {
				t.Fatalf("label value not quoted in %q", line)
			}
			j++
			var val strings.Builder
			for rest[j] != '"' {
				if rest[j] == '\\' {
					j++
					switch rest[j] {
					case '\\', '"':
						val.WriteByte(rest[j])
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("illegal escape \\%c in %q", rest[j], line)
					}
				} else if rest[j] == '\n' {
					t.Fatalf("raw newline inside label value in %q", line)
				} else {
					val.WriteByte(rest[j])
				}
				j++
			}
			labels[lname] = val.String()
			j++ // closing '"'
			if rest[j] == ',' {
				j++
			}
		}
		rest = rest[j+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("no space before value in %q", line)
	}
	value = strings.TrimSpace(rest)
	return name, labels, value
}

func TestPrometheusExpositionConformance(t *testing.T) {
	r := New(8)
	r.Counter("plain.counter").Add(7)
	r.SetHelp("plain.counter", "a help string with \\backslash\\ and\nnewline and \"quotes\"")
	r.Gauge("some.gauge").Set(3.5)
	r.Histogram("lat.hist").Observe(time.Millisecond)
	r.SetHelp("lat.hist.seconds", "latency\nof things")
	r.SetInfo("build.info", map[string]string{
		"version": `v1.2.3 "dirty"`,
		"path":    `C:\jarvis\bin`,
	})
	cv := r.CounterVec("ops.total", "op", "status")
	cv.With(`recommend`, `ok`).Add(3)
	cv.With("multi\nline", `back\slash`).Inc()
	cv.With(`quo"te`, "plain").Inc()
	r.GaugeVec("lag.records", "peer").With("10.0.0.2:7777").Set(42)
	r.HistogramVec("op.lat", "op").With(`ev"il`).Observe(2 * time.Millisecond)
	r.GaugeFunc("fn.gauge", func() float64 { return 1 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	typed := map[string]string{} // metric family -> kind
	var lastHelpName string
	sampleSeen := map[string]bool{} // family sample emitted (TYPE-before-sample check)

	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") {
			restParts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if !promMetricNameRe.MatchString(restParts[0]) {
				t.Fatalf("bad metric name in HELP line %q", line)
			}
			if len(restParts) == 2 && strings.ContainsAny(restParts[1], "\n") {
				t.Fatalf("unescaped newline in HELP %q", line)
			}
			lastHelpName = restParts[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			fam, kind := parts[2], parts[3]
			if !promMetricNameRe.MatchString(fam) {
				t.Fatalf("bad metric name in TYPE line %q", line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown kind in %q", line)
			}
			if typed[fam] != "" {
				t.Fatalf("duplicate TYPE line for %s", fam)
			}
			if sampleSeen[fam] {
				t.Fatalf("TYPE line for %s after its samples", fam)
			}
			if lastHelpName != "" && lastHelpName != fam {
				t.Fatalf("HELP for %s not adjacent to its TYPE line", lastHelpName)
			}
			lastHelpName = ""
			typed[fam] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		name, labels, value := parsePromLine(t, line)
		if !promMetricNameRe.MatchString(name) {
			t.Fatalf("bad sample metric name %q", name)
		}
		// Map histogram sample suffixes back to their family.
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		kind, ok := typed[fam]
		if !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		sampleSeen[fam] = true
		if kind == "histogram" && strings.HasSuffix(name, "_bucket") {
			if _, ok := labels["le"]; !ok {
				t.Fatalf("histogram bucket without le label: %q", line)
			}
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("unparseable value %q in %q", value, line)
			}
		}
	}

	// The adversarial label values must round-trip through escaping.
	wantValues := []string{"multi\nline", `back\slash`, `quo"te`, `ev"il`, `v1.2.3 "dirty"`, `C:\jarvis\bin`}
	for _, want := range wantValues {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if !strings.Contains(line, "{") || strings.HasPrefix(line, "#") {
				continue
			}
			_, labels, _ := parsePromLine(t, line)
			for _, v := range labels {
				if v == want {
					found = true
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("label value %q did not round-trip through the exposition", want)
		}
	}

	// Help strings render escaped on one line.
	if !strings.Contains(out, `# HELP plain_counter a help string with \\backslash\\ and\nnewline and "quotes"`) {
		t.Errorf("help string not escaped as expected; output:\n%s", out)
	}
}
