package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `le`-labelled bucket series plus `_sum` and `_count`.
// Metric names are sanitized to the Prometheus charset (dots and dashes
// become underscores), and histogram values are converted from nanoseconds
// to seconds per Prometheus convention. Only populated buckets are emitted
// (plus the mandatory `+Inf`), which keeps the 248-bucket log-linear layout
// from exploding the scrape size.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Copy the handle maps under the registry mutex, then read values from
	// atomics outside it: same straddling contract as Snapshot.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		gaugeFns[name] = fn
	}
	infos := make(map[string]map[string]string, len(r.infos))
	for name, labels := range r.infos {
		infos[name] = labels
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, name := range SortedNames(counters) {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " " + strconv.FormatInt(counters[name].Value(), 10) + "\n")
	}
	if d := r.events.Dropped(); d > 0 {
		bw.WriteString("# TYPE telemetry_events_dropped counter\n")
		bw.WriteString("telemetry_events_dropped " + strconv.FormatInt(d, 10) + "\n")
	}
	for _, name := range SortedNames(gauges) {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " " + formatFloat(sanitize(gauges[name].Value())) + "\n")
	}
	for _, name := range SortedNames(gaugeFns) {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " " + formatFloat(sanitize(gaugeFns[name]())) + "\n")
	}
	for _, name := range SortedNames(infos) {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + promLabels(infos[name]) + " 1\n")
	}
	for _, name := range SortedNames(hists) {
		writePromHistogram(bw, promName(name)+"_seconds", hists[name])
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram as cumulative le-bucket samples.
// Bucket upper bounds come from the log-linear layout's exclusive upper
// edge (low + width), converted to seconds.
func writePromHistogram(bw *bufio.Writer, pn string, h *Histogram) {
	var counts [numBuckets]int64
	var total, sum int64
	for i := range counts {
		counts[i] = h.b[i].Load()
		total += counts[i]
	}
	sum = h.sum.Load()
	bw.WriteString("# TYPE " + pn + " histogram\n")
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		cum += n
		low, width := bucketBounds(i)
		le := float64(low+width) / 1e9
		bw.WriteString(pn + `_bucket{le="` + formatFloat(le) + `"} ` + strconv.FormatInt(cum, 10) + "\n")
	}
	bw.WriteString(pn + `_bucket{le="+Inf"} ` + strconv.FormatInt(total, 10) + "\n")
	bw.WriteString(pn + "_sum " + formatFloat(float64(sum)/1e9) + "\n")
	// Use the bucket total, not h.count, so _count always equals the +Inf
	// bucket even while writers race the scrape.
	bw.WriteString(pn + "_count " + strconv.FormatInt(total, 10) + "\n")
}

// promName maps a dotted registry name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set as `{k="v",...}` with keys sorted and
// values escaped per the exposition format (backslash, quote, newline).
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range SortedNames(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
