package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, labeled
// vec families as one TYPE block with a sample per label tuple, and
// histograms as cumulative `le`-labelled bucket series plus `_sum` and
// `_count`. Metric names are sanitized to the Prometheus charset (dots
// and dashes become underscores), label values and help strings are
// escaped per the exposition grammar (`\\`, `\"` in values, `\n` in
// both), and histogram values are converted from nanoseconds to seconds
// per Prometheus convention. Only populated buckets are emitted (plus the
// mandatory `+Inf`), which keeps the 248-bucket log-linear layout from
// exploding the scrape size.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Copy the handle maps under the registry mutex, then read values from
	// atomics outside it: same straddling contract as Snapshot.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		gaugeFns[name] = fn
	}
	infos := make(map[string]map[string]string, len(r.infos))
	for name, labels := range r.infos {
		infos[name] = labels
	}
	cvecs := make(map[string]*CounterVec, len(r.cvecs))
	for name, v := range r.cvecs {
		cvecs[name] = v
	}
	gvecs := make(map[string]*GaugeVec, len(r.gvecs))
	for name, v := range r.gvecs {
		gvecs[name] = v
	}
	hvecs := make(map[string]*HistogramVec, len(r.hvecs))
	for name, v := range r.hvecs {
		hvecs[name] = v
	}
	helps := make(map[string]string, len(r.helps))
	for name, h := range r.helps {
		helps[name] = h
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	head := func(name, kind string) string {
		pn := promName(name)
		if h, ok := helps[name]; ok {
			bw.WriteString("# HELP " + pn + " " + escapeHelp(h) + "\n")
		}
		bw.WriteString("# TYPE " + pn + " " + kind + "\n")
		return pn
	}
	for _, name := range SortedNames(counters) {
		pn := head(name, "counter")
		bw.WriteString(pn + " " + strconv.FormatInt(counters[name].Value(), 10) + "\n")
	}
	for _, name := range SortedNames(cvecs) {
		pn := head(name, "counter")
		for _, c := range cvecs[name].core.snapshot() {
			bw.WriteString(pn + c.promLabels + " " + strconv.FormatInt(c.v.Value(), 10) + "\n")
		}
	}
	if d := r.events.Dropped(); d > 0 {
		bw.WriteString("# TYPE telemetry_events_dropped counter\n")
		bw.WriteString("telemetry_events_dropped " + strconv.FormatInt(d, 10) + "\n")
	}
	for _, name := range SortedNames(gauges) {
		pn := head(name, "gauge")
		bw.WriteString(pn + " " + formatFloat(sanitize(gauges[name].Value())) + "\n")
	}
	for _, name := range SortedNames(gvecs) {
		pn := head(name, "gauge")
		for _, c := range gvecs[name].core.snapshot() {
			bw.WriteString(pn + c.promLabels + " " + formatFloat(sanitize(c.v.Value())) + "\n")
		}
	}
	for _, name := range SortedNames(gaugeFns) {
		pn := head(name, "gauge")
		bw.WriteString(pn + " " + formatFloat(sanitize(gaugeFns[name]())) + "\n")
	}
	for _, name := range SortedNames(infos) {
		pn := head(name, "gauge")
		bw.WriteString(pn + promLabels(infos[name]) + " 1\n")
	}
	for _, name := range SortedNames(hists) {
		pn := head(name+".seconds", "histogram")
		writePromHistogram(bw, pn, "", hists[name])
	}
	for _, name := range SortedNames(hvecs) {
		pn := head(name+".seconds", "histogram")
		for _, c := range hvecs[name].core.snapshot() {
			writePromHistogram(bw, pn, c.promLabels, c.v)
		}
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram as cumulative le-bucket samples.
// Bucket upper bounds come from the log-linear layout's exclusive upper
// edge (low + width), converted to seconds. labels is an optional
// pre-rendered `{k="v",...}` block merged with the le label (vec
// children).
func writePromHistogram(bw *bufio.Writer, pn, labels string, h *Histogram) {
	var counts [numBuckets]int64
	var total, sum int64
	for i := range counts {
		counts[i] = h.b[i].Load()
		total += counts[i]
	}
	sum = h.sum.Load()
	open := `{`
	var base string
	if labels != "" {
		// `{k="v"}` → `{k="v",le="..."}` for buckets, `{k="v"}` for sum/count.
		open = labels[:len(labels)-1] + ","
		base = labels
	}
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		cum += n
		low, width := bucketBounds(i)
		le := float64(low+width) / 1e9
		bw.WriteString(pn + "_bucket" + open + `le="` + formatFloat(le) + `"} ` + strconv.FormatInt(cum, 10) + "\n")
	}
	bw.WriteString(pn + "_bucket" + open + `le="+Inf"} ` + strconv.FormatInt(total, 10) + "\n")
	bw.WriteString(pn + "_sum" + base + " " + formatFloat(float64(sum)/1e9) + "\n")
	// Use the bucket total, not h.count, so _count always equals the +Inf
	// bucket even while writers race the scrape.
	bw.WriteString(pn + "_count" + base + " " + strconv.FormatInt(total, 10) + "\n")
}

// promName maps a dotted registry name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set as `{k="v",...}` with keys sorted and
// values escaped per the exposition format (backslash, quote, newline).
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range SortedNames(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes a help string per the exposition format: backslash
// and newline (quotes are legal in help text).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
