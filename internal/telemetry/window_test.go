package telemetry

import (
	"strings"
	"testing"
)

// Windowed-quantile math: the SLO layer depends on snapshot deltas being a
// faithful histogram of just the interval, so these tests drive two
// snapshots of one histogram and check the delta sees only the newer
// observations.

func TestDeltaQuantileWindowsOutOldObservations(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	// First epoch: fast observations around 1µs.
	for i := 0; i < 100; i++ {
		h.ObserveNs(1000)
	}
	prev := h.Stats()
	// Second epoch: slow observations around 1ms.
	for i := 0; i < 50; i++ {
		h.ObserveNs(1_000_000)
	}
	cur := h.Stats()

	if n := DeltaCount(cur, prev); n != 50 {
		t.Fatalf("DeltaCount = %d, want 50", n)
	}
	p99, ok := DeltaQuantile(cur, prev, 0.99)
	if !ok {
		t.Fatal("DeltaQuantile not ok")
	}
	// The window contains only ~1ms samples; the cumulative p99 would be
	// dragged toward 1µs by the first epoch's 100 samples.
	if p99 < 900_000 || p99 > 1_300_000 {
		t.Fatalf("windowed p99 = %dns, want ~1ms", p99)
	}
	if full := cur.P50Ns; full > 500_000 {
		t.Fatalf("sanity: cumulative p50 = %dns, expected fast-epoch dominated", full)
	}
}

func TestDeltaQuantileZeroPrevIsFullHistogram(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.ObserveNs(int64(i) * 1000)
	}
	s := h.Stats()
	p50, ok := DeltaQuantile(s, HistogramStats{}, 0.50)
	if !ok {
		t.Fatal("not ok")
	}
	// Same rank walk as Stats but without the min/max clamp; allow a bucket
	// of slack.
	if p50 < 40_000 || p50 > 70_000 {
		t.Fatalf("p50 = %dns, want ≈50µs", p50)
	}
}

func TestDeltaQuantileEmptyWindow(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	h.ObserveNs(5000)
	s := h.Stats()
	if _, ok := DeltaQuantile(s, s, 0.99); ok {
		t.Fatal("empty window should report !ok")
	}
	if _, ok := DeltaQuantile(HistogramStats{}, HistogramStats{}, 0.5); ok {
		t.Fatal("two zero snapshots should report !ok")
	}
}

func TestDeltaCountOverSplitsGoodBad(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	prev := h.Stats()
	for i := 0; i < 90; i++ {
		h.ObserveNs(1000) // well under
	}
	for i := 0; i < 10; i++ {
		h.ObserveNs(50_000_000) // well over
	}
	cur := h.Stats()
	over, total := DeltaCountOver(cur, prev, 10_000_000)
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if over != 10 {
		t.Fatalf("over = %d, want 10", over)
	}
}

func TestDeltaClampsCounterReset(t *testing.T) {
	// prev claiming more observations than cur (e.g. restarted process)
	// must clamp to zero, not go negative.
	prev := HistogramStats{Buckets: []BucketCount{{LowNs: 8, WidthNs: 2, Count: 100}}}
	cur := HistogramStats{Buckets: []BucketCount{{LowNs: 8, WidthNs: 2, Count: 40}}}
	if n := DeltaCount(cur, prev); n != 0 {
		t.Fatalf("DeltaCount after reset = %d, want 0", n)
	}
	if over, total := DeltaCountOver(cur, prev, 5); over != 0 || total != 0 {
		t.Fatalf("DeltaCountOver after reset = %d/%d, want 0/0", over, total)
	}
}

func TestGaugeFuncAppearsInSnapshotAndProm(t *testing.T) {
	r := New(0)
	r.GaugeFunc("test.fn", func() float64 { return 42.5 })
	snap := r.Snapshot()
	if v := snap.Gauges["test.fn"]; v != 42.5 {
		t.Fatalf("gauge func value = %v, want 42.5", v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_fn 42.5") {
		t.Fatalf("prometheus output missing gauge func sample:\n%s", sb.String())
	}
}

func TestGaugeFuncMayTouchRegistry(t *testing.T) {
	// The callback contract allows reading the registry; a deadlock here
	// hangs the test and fails on timeout.
	r := New(0)
	c := r.Counter("base")
	c.Add(7)
	r.GaugeFunc("derived", func() float64 { return float64(r.Counter("base").Value()) * 2 })
	if v := r.Snapshot().Gauges["derived"]; v != 14 {
		t.Fatalf("derived = %v, want 14", v)
	}
}

func TestSetInfoRendersLabels(t *testing.T) {
	r := New(0)
	r.SetInfo("build.info", map[string]string{"version": `v1.0"q\e`, "goversion": "go1.x"})
	snap := r.Snapshot()
	if snap.Infos["build.info"]["goversion"] != "go1.x" {
		t.Fatalf("snapshot infos = %+v", snap.Infos)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `build_info{goversion="go1.x",version="v1.0\"q\\e"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("prometheus output missing %q:\n%s", want, sb.String())
	}
}
