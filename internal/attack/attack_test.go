package attack

import (
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

func TestCorpusBreakdownMatchesPaper(t *testing.T) {
	h := smarthome.NewFullHome()
	corpus := Corpus(h)
	if len(corpus) != 214 {
		t.Fatalf("corpus size = %d, want 214", len(corpus))
	}
	counts := CountByType(corpus)
	want := map[Type]int{
		Type1TASafety:      114,
		Type2AccessControl: 40,
		Type3Conflict:      40,
		Type4MaliciousApp:  10,
		Type5Insider:       10,
	}
	for typ, n := range want {
		if counts[typ] != n {
			t.Errorf("%v = %d, want %d", typ, counts[typ], n)
		}
	}
	// IDs are unique and sequential.
	for i, v := range corpus {
		if v.ID != i+1 {
			t.Fatalf("violation %d has ID %d", i, v.ID)
		}
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{Type1TASafety, Type2AccessControl, Type3Conflict, Type4MaliciousApp, Type5Insider} {
		if typ.String() == "unknown" {
			t.Errorf("type %d has no name", typ)
		}
	}
	if Type(0).String() != "unknown" {
		t.Error("zero type should be unknown")
	}
}

func TestTransitionBased(t *testing.T) {
	if !(Violation{Type: Type1TASafety}).TransitionBased() {
		t.Error("type 1 is transition-based")
	}
	if (Violation{Type: Type2AccessControl}).TransitionBased() {
		t.Error("type 2 is request-based")
	}
	if (Violation{Type: Type3Conflict}).TransitionBased() {
		t.Error("type 3 is request-based")
	}
}

func TestRequestViolationsAreDenied(t *testing.T) {
	h := smarthome.NewFullHome()
	s := h.InitialState()
	for _, v := range Corpus(h) {
		if v.TransitionBased() {
			continue
		}
		_, _, denials := h.Env.Apply(s, v.Requests)
		if len(denials) == 0 {
			t.Errorf("violation %d (%s/%s) produced no denial", v.ID, v.Type, v.Name)
		}
	}
}

func TestInjectTransitionViolations(t *testing.T) {
	h := smarthome.NewFullHome()
	gen := dataset.NewGenerator(h, dataset.HomeAConfig())
	rng := rand.New(rand.NewSource(1))
	days, err := gen.Days(time.Date(2020, 1, 6, 0, 0, 0, 0, time.UTC), 2, rng)
	if err != nil {
		t.Fatalf("Days: %v", err)
	}

	applied, skipped := 0, 0
	for _, v := range Corpus(h) {
		if !v.TransitionBased() {
			continue
		}
		day := days[rng.Intn(len(days))]
		ep, at, ok, err := Inject(h.Env, day.Episode, v, rng)
		if err != nil {
			t.Fatalf("Inject(%d %s): %v", v.ID, v.Name, err)
		}
		if !ok {
			skipped++
			continue
		}
		applied++
		if err := ep.Validate(h.Env); err != nil {
			t.Fatalf("injected episode invalid (%s): %v", v.Name, err)
		}
		if at < 0 || at+len(v.Steps) > ep.Len() {
			t.Fatalf("injection window out of range: %d + %d", at, len(v.Steps))
		}
	}
	if applied == 0 {
		t.Fatal("no violation could be injected")
	}
	// The vast majority of payloads must be injectable.
	if skipped > applied/10 {
		t.Errorf("too many uninjectable payloads: %d skipped vs %d applied", skipped, applied)
	}
}

func TestInjectRejectsRequestViolations(t *testing.T) {
	h := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(2))
	v := Violation{Type: Type2AccessControl}
	if _, _, _, err := Inject(h.Env, env.Episode{}, v, rng); err == nil {
		t.Error("request-based violation should not inject")
	}
}
