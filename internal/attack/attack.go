// Package attack reproduces the malicious dataset of Section VI-B: 214
// manually crafted security-violation instances collected from the prior
// work the paper reviews (SOTERIA, IoTGuard, physical-interaction studies),
// with the paper's exact per-type breakdown:
//
//	Type 1 — T/A safety violations (114)
//	Type 2 — integrity / access-control violations (40)
//	Type 3 — conflicting actions / race-condition violations (40)
//	Type 4 — malicious apps causing safety violations (10)
//	Type 5 — insider attacks (10)
//
// Types 1, 4 and 5 are state-transition payloads injected into otherwise
// benign episodes and detected by the SPL's P_safe table; Types 2 and 3 are
// request-level payloads detected by the environment's access-control and
// conflict constraints.
package attack

import (
	"fmt"
	"math/rand"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

// Type classifies a violation per the paper's taxonomy.
type Type int

// Violation types.
const (
	Type1TASafety Type = iota + 1
	Type2AccessControl
	Type3Conflict
	Type4MaliciousApp
	Type5Insider
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Type1TASafety:
		return "type1-ta-safety"
	case Type2AccessControl:
		return "type2-access-control"
	case Type3Conflict:
		return "type3-conflict"
	case Type4MaliciousApp:
		return "type4-malicious-app"
	case Type5Insider:
		return "type5-insider"
	default:
		return "unknown"
	}
}

// Context is the time-of-day slot a violation is staged in.
type Context struct {
	Name   string
	Minute int
}

// Contexts lists the six default staging slots Type 1 violations are
// multiplied across (19 base rules × 6 contexts = 114 instances).
func Contexts() []Context {
	return []Context{
		{"asleep-night", 2 * 60},
		{"asleep-early", 5 * 60},
		{"away-morning", 10 * 60},
		{"home-noon", 12*60 + 30},
		{"away-afternoon", 14 * 60},
		{"home-evening", 20 * 60},
	}
}

// unattendedContexts stages violations only while the household is away or
// asleep — rules like "TV on" or "washer start" are perfectly natural in
// the evening and only constitute violations when nobody could have issued
// them.
func unattendedContexts() []Context {
	return []Context{
		{"asleep-night", 2 * 60},
		{"asleep-early", 4*60 + 30},
		{"away-morning", 9*60 + 30},
		{"away-latemorning", 11 * 60},
		{"away-afternoon", 14 * 60},
		{"away-late", 16 * 60},
	}
}

// Step is one interval's worth of malicious device actions.
type Step map[int]device.ActionID

// Violation is one instance of the corpus.
type Violation struct {
	ID          int
	Type        Type
	Name        string
	Description string
	// StageIn optionally restricts the contexts a base rule is multiplied
	// across (defaults to Contexts()).
	StageIn []Context
	Context Context
	// Steps, for transition-based violations (Types 1, 4, 5): composite
	// actions injected at consecutive instances starting at
	// Context.Minute.
	Steps []Step
	// Requests, for request-based violations (Types 2, 3): submitted in a
	// single interval and expected to be denied by the environment
	// constraints.
	Requests []env.Request
}

// TransitionBased reports whether the violation is detected through
// P_safe (vs. through request constraints).
func (v Violation) TransitionBased() bool {
	return v.Type == Type1TASafety || v.Type == Type4MaliciousApp || v.Type == Type5Insider
}

// type1Rules returns the 19 base unsafe trigger→action rules.
func type1Rules(h *smarthome.FullHome) []Violation {
	on, off := device.ActionID(1), device.ActionID(0)
	unlock := device.ActionID(1)
	return []Violation{
		{Name: "door-sensor-off", Description: "disable the door touch sensor", Steps: []Step{{h.DoorSensor: off}}},
		{Name: "temp-sensor-off", Description: "disable the temperature sensor", Steps: []Step{{h.TempSensor: off}}},
		{Name: "lock-power-off", Description: "power off the smart lock", Steps: []Step{{h.Lock: 2}}},
		{Name: "unlock-no-arrival", Description: "unlock the door with nobody at it", Steps: []Step{{h.Lock: unlock}}, StageIn: unattendedContexts()},
		{Name: "oven-unattended", Description: "turn the oven on unattended", Steps: []Step{{h.Oven: on}}, StageIn: unattendedContexts()},
		{Name: "washer-unattended", Description: "start the washer unattended", Steps: []Step{{h.Washer: 0}}, StageIn: unattendedContexts()},
		{Name: "dishwasher-unattended", Description: "start the dishwasher unattended", Steps: []Step{{h.Dishwasher: 0}}, StageIn: unattendedContexts()},
		{Name: "overheat", Description: "force heating regardless of temperature", Steps: []Step{{h.TempSensor: 2 /* read_above */}, {h.Thermostat: smarthome.ThermostatActHeat}}},
		{Name: "freeze", Description: "force cooling regardless of temperature", Steps: []Step{{h.TempSensor: 3 /* read_below */}, {h.Thermostat: smarthome.ThermostatActCool}}},
		{Name: "fridge-power-off", Description: "power off the fridge (spoilage)", Steps: []Step{{h.Fridge: 2}}},
		{Name: "fridge-door-open-attack", Description: "open the fridge door and leave it", Steps: []Step{{h.Fridge: 0}}, StageIn: unattendedContexts()},
		{Name: "spoofed-entry", Description: "spoof an unauthorized detection while unlocking", Steps: []Step{{h.DoorSensor: 3 /* detect_unauth */, h.Lock: unlock}}},
		{Name: "false-fire-alarm", Description: "raise a false fire alarm (door unlocks via app 4)", Steps: []Step{{h.TempSensor: 5 /* raise_alarm */}, {h.Lock: unlock, h.LivingLight: on}}},
		{Name: "alarm-clear-spoof", Description: "clear a (spoofed) fire alarm to suppress the response", Steps: []Step{{h.TempSensor: 5 /* raise */}, {h.TempSensor: 6 /* clear */}}},
		{Name: "sensor-spoof-unauth", Description: "spoof an unauthorized-user detection", Steps: []Step{{h.DoorSensor: 3}}},
		{Name: "darkness", Description: "kill all lights", Steps: []Step{{h.LivingLight: off, h.BedLight: off}}},
		{Name: "decoy-tv", Description: "turn the TV on as a decoy", Steps: []Step{{h.TV: on}}, StageIn: unattendedContexts()},
		{Name: "hvac-and-sensor-kill", Description: "kill the HVAC and its sensor together (freeze risk)", Steps: []Step{{h.Thermostat: smarthome.ThermostatActOff, h.TempSensor: off}}},
		{Name: "lockout", Description: "dead-lock the resident out", Steps: []Step{{h.Lock: 4 /* lock_inside */}}, StageIn: unattendedContexts()},
	}
}

// type2Violations returns the 40 access-control violations: guests using
// apps they are not authorized for, apps acting on devices they are not
// subscribed to.
func type2Violations(h *smarthome.FullHome) []Violation {
	var out []Violation
	allDevices := []int{
		h.Lock, h.DoorSensor, h.LivingLight, h.BedLight, h.Thermostat,
		h.TempSensor, h.Fridge, h.Oven, h.TV, h.Washer, h.Dishwasher,
	}
	// Guest drives the manual app (11) and the rogue app (11).
	for _, dev := range allDevices {
		out = append(out, Violation{
			Type: Type2AccessControl, Name: "guest-manual",
			Description: "unauthorized user operates a device through the manual app",
			Requests:    []env.Request{{User: h.Guest, App: h.ManualApp, Device: dev, Action: firstAction(h, dev)}},
		})
	}
	for _, dev := range allDevices {
		out = append(out, Violation{
			Type: Type2AccessControl, Name: "guest-rogue-app",
			Description: "unauthorized user operates a device through an unsubscribed app",
			Requests:    []env.Request{{User: h.Guest, App: h.RogueApp, Device: dev, Action: firstAction(h, dev)}},
		})
	}
	// Resident drives the rogue app (11): the app has no subscriptions.
	for _, dev := range allDevices {
		out = append(out, Violation{
			Type: Type2AccessControl, Name: "rogue-app-subscription",
			Description: "app acts on a device it is not subscribed to",
			Requests:    []env.Request{{User: h.Resident, App: h.RogueApp, Device: dev, Action: firstAction(h, dev)}},
		})
	}
	// App 1 (lock + door sensor only) reaching into 7 other devices.
	for _, dev := range []int{h.LivingLight, h.BedLight, h.Thermostat, h.TempSensor, h.Oven, h.TV, h.Washer} {
		out = append(out, Violation{
			Type: Type2AccessControl, Name: "app1-overreach",
			Description: "app 1 acts outside its device subscription policy",
			Requests:    []env.Request{{User: h.Resident, App: h.AppIDs[1], Device: dev, Action: firstAction(h, dev)}},
		})
	}
	return out
}

// type3Violations returns the 40 conflicting-action / race-condition
// violations: two apps claiming the same device with opposing commands in
// one interval, staged in two contexts and both submission orders.
func type3Violations(h *smarthome.FullHome) []Violation {
	type pair struct {
		name string
		dev  int
		a, b device.ActionID
	}
	pairs := []pair{
		{"lock-race", h.Lock, 0, 1},                // lock vs unlock
		{"living-light-race", h.LivingLight, 1, 0}, // on vs off
		{"bed-light-race", h.BedLight, 1, 0},
		{"thermostat-race", h.Thermostat, smarthome.ThermostatActHeat, smarthome.ThermostatActCool},
		{"oven-race", h.Oven, 1, 0},
		{"tv-race", h.TV, 1, 0},
		{"washer-race", h.Washer, 0, 1},
		{"dishwasher-race", h.Dishwasher, 0, 1},
		{"fridge-race", h.Fridge, 0, 1},
		{"sensor-race", h.TempSensor, 0, 1}, // off vs on
	}
	contexts := []Context{{"home-noon", 12 * 60}, {"home-evening", 20 * 60}}
	var out []Violation
	for _, p := range pairs {
		for _, ctx := range contexts {
			for order := 0; order < 2; order++ {
				a1, a2 := p.a, p.b
				if order == 1 {
					a1, a2 = a2, a1
				}
				out = append(out, Violation{
					Type: Type3Conflict, Name: p.name, Context: ctx,
					Description: "two apps issue conflicting commands on one device in one interval",
					Requests: []env.Request{
						{User: h.Resident, App: h.ManualApp, Device: p.dev, Action: a1},
						{User: h.Resident, App: h.AppIDs[5], Device: p.dev, Action: a2},
					},
				})
			}
		}
	}
	return out
}

// type4Violations returns the 10 malicious-app attack chains.
func type4Violations(h *smarthome.FullHome) []Violation {
	on, off := device.ActionID(1), device.ActionID(0)
	unlock := device.ActionID(1)
	mk := func(name, desc string, minute int, steps ...Step) Violation {
		return Violation{
			Type: Type4MaliciousApp, Name: name, Description: desc,
			Context: Context{Name: "staged", Minute: minute}, Steps: steps,
		}
	}
	return []Violation{
		mk("blind-then-unlock", "disable both sensors, then unlock the door", 3*60,
			Step{h.DoorSensor: off, h.TempSensor: off}, Step{h.Lock: unlock}),
		mk("power-surge", "switch every heavy appliance on at once", 4*60,
			Step{h.Oven: on, h.TV: on, h.Washer: 0, h.Dishwasher: 0}),
		mk("thermostat-flap", "flap the HVAC between heat and cool", 11*60,
			Step{h.Thermostat: smarthome.ThermostatActHeat},
			Step{h.Thermostat: smarthome.ThermostatActCool},
			Step{h.Thermostat: smarthome.ThermostatActHeat}),
		mk("alarm-storm", "raise and clear the fire alarm repeatedly", 13*60,
			Step{h.TempSensor: 5}, Step{h.TempSensor: 6}, Step{h.TempSensor: 5}),
		mk("night-oven", "preheat the oven while the household sleeps", 1*60+30,
			Step{h.Oven: on}),
		mk("fake-arrival", "spoof an authorized arrival to open the door", 2*60+30,
			Step{h.DoorSensor: 2}, Step{h.Lock: unlock, h.LivingLight: on}),
		mk("sensor-blackout", "power off every sensor", 15*60,
			Step{h.DoorSensor: off, h.TempSensor: off}),
		mk("fridge-sabotage", "open the fridge and kill its power", 9*60+30,
			Step{h.Fridge: 0}, Step{h.Fridge: 2}),
		mk("lock-cycle", "rapidly unlock and relock the door", 3*60+30,
			Step{h.Lock: unlock}, Step{h.Lock: 0}, Step{h.Lock: unlock}),
		mk("midnight-party", "lights and TV on at 02:00", 2*60,
			Step{h.LivingLight: on, h.BedLight: on, h.TV: on}),
	}
}

// type5Violations returns the 10 insider attacks: actions through fully
// authorized credentials that deviate from all natural behavior.
func type5Violations(h *smarthome.FullHome) []Violation {
	on, off := device.ActionID(1), device.ActionID(0)
	unlock := device.ActionID(1)
	mk := func(name, desc string, minute int, steps ...Step) Violation {
		return Violation{
			Type: Type5Insider, Name: name, Description: desc,
			Context: Context{Name: "staged", Minute: minute}, Steps: steps,
		}
	}
	return []Violation{
		mk("insider-night-unlock", "authorized unlock at 03:00", 3*60, Step{h.Lock: unlock}),
		mk("insider-disable-door-sensor", "door sensor disabled before leaving", 7*60+30, Step{h.DoorSensor: off}),
		mk("insider-disable-temp-sensor", "temperature sensor disabled at night", 23*60+30, Step{h.TempSensor: off}),
		mk("insider-lock-off", "lock powered down during the day", 11*60, Step{h.Lock: 2}),
		{
			Type: Type5Insider, Name: "insider-unattended-oven",
			Description: "oven switched on while the house is empty",
			Context:     Context{Name: "away-morning", Minute: 10 * 60},
			Steps:       []Step{{h.Oven: on}},
		},
		mk("insider-night-washer", "washer started at 02:30", 2*60+30, Step{h.Washer: 0}),
		mk("insider-heat-blast", "heating forced during a hot afternoon", 14*60+30,
			Step{h.TempSensor: 2}, Step{h.Thermostat: smarthome.ThermostatActHeat}),
		mk("insider-blackout", "all lights killed in the evening", 21*60, Step{h.LivingLight: off, h.BedLight: off}),
		mk("insider-fridge-open", "fridge door opened overnight", 0*60+45, Step{h.Fridge: 0}),
		mk("insider-decoy-alarm", "false fire alarm raised manually", 16*60, Step{h.TempSensor: 5}),
	}
}

func firstAction(h *smarthome.FullHome, dev int) device.ActionID {
	if h.Env.Device(dev).NumActions() == 0 {
		return device.NoAction
	}
	return 0
}

// Corpus generates the full 214-instance violation corpus over the
// 11-device home, with the paper's exact type breakdown.
func Corpus(h *smarthome.FullHome) []Violation {
	var out []Violation
	// Type 1: 19 base rules × 6 contexts = 114.
	for _, base := range type1Rules(h) {
		contexts := base.StageIn
		if len(contexts) == 0 {
			contexts = Contexts()
		}
		for _, ctx := range contexts {
			v := base
			v.Type = Type1TASafety
			v.Context = ctx
			out = append(out, v)
		}
	}
	out = append(out, type2Violations(h)...)
	out = append(out, type3Violations(h)...)
	out = append(out, type4Violations(h)...)
	out = append(out, type5Violations(h)...)
	for i := range out {
		out[i].ID = i + 1
	}
	return out
}

// CountByType tallies a corpus.
func CountByType(vs []Violation) map[Type]int {
	out := make(map[Type]int, 5)
	for _, v := range vs {
		out[v.Type]++
	}
	return out
}

// Inject splices a transition-based violation into a base episode at its
// staged context minute (jittered ±30 by rng). When a payload action is
// FSM-invalid in the state reached, a short "bridge" of preparatory device
// actions (found by BFS over the device's own FSM) is inserted first —
// this mirrors how the paper's violations are manually engineered into
// random episodes. It returns the malicious episode, the first injected
// payload instance, and whether the payload took effect.
func Inject(e *env.Environment, base env.Episode, v Violation, rng *rand.Rand) (env.Episode, int, bool, error) {
	if !v.TransitionBased() {
		return env.Episode{}, 0, false, fmt.Errorf("attack: violation %d (%v) is request-based", v.ID, v.Type)
	}
	n := base.Len()
	for attempt := 0; attempt < 16; attempt++ {
		at := v.Context.Minute + rng.Intn(61) - 30
		if at < 0 {
			at = 0
		}
		if at+len(v.Steps)+4 >= n {
			at = n - len(v.Steps) - 5
		}
		actions := make([]env.Action, n)
		for i, a := range base.Actions {
			actions[i] = a.Clone()
		}
		payloadAt, ok := overlayWithBridges(e, base.States[0], actions, v, at)
		if !ok {
			continue
		}
		ep, err := env.ReplayActions(e, base.States[0], base.Start, base.I, actions)
		if err != nil {
			return env.Episode{}, 0, false, err
		}
		if payloadApplied(ep, v, payloadAt) {
			return ep, payloadAt, true, nil
		}
	}
	return env.Episode{}, 0, false, nil
}

// overlayWithBridges writes the payload (and any required preparatory
// bridges) into actions, returning the instance the payload starts at.
// Device state is tracked locally: composite transitions decompose
// per-device, so each device's trajectory depends only on its own actions.
func overlayWithBridges(e *env.Environment, s0 env.State, actions []env.Action, v Violation, at int) (int, bool) {
	// Devices touched by the payload, with the action of their first step.
	firstAct := make(map[int]device.ActionID)
	for _, step := range v.Steps {
		for dev, act := range step {
			if _, seen := firstAct[dev]; !seen {
				firstAct[dev] = act
			}
		}
	}
	// Per-device bridge paths.
	bridges := make(map[int][]device.ActionID, len(firstAct))
	maxLen := 0
	for dev, act := range firstAct {
		s := localStateAt(e, s0, actions, dev, at)
		path, ok := pathToValid(e.Device(dev), s, act)
		if !ok {
			return 0, false
		}
		bridges[dev] = path
		if len(path) > maxLen {
			maxLen = len(path)
		}
	}
	payloadAt := at + maxLen
	if payloadAt+len(v.Steps) > len(actions) {
		return 0, false
	}
	// Clear the bridge window for payload devices, then lay the bridges so
	// each finishes right before the payload.
	for dev := range firstAct {
		for t := at; t < payloadAt; t++ {
			actions[t][dev] = device.NoAction
		}
		path := bridges[dev]
		for i, act := range path {
			actions[payloadAt-len(path)+i][dev] = act
		}
	}
	for i, step := range v.Steps {
		for dev, act := range step {
			actions[payloadAt+i][dev] = act
		}
	}
	return payloadAt, true
}

// localStateAt replays a single device's action history (with the hub's
// drop-invalid semantics) up to instance at.
func localStateAt(e *env.Environment, s0 env.State, actions []env.Action, dev, at int) device.StateID {
	d := e.Device(dev)
	s := s0[dev]
	for t := 0; t < at && t < len(actions); t++ {
		if next, ok := d.Next(s, actions[t][dev]); ok {
			s = next
		}
	}
	return s
}

// pathToValid finds the shortest action sequence driving the device from s
// to any state where act is valid (empty when it already is).
func pathToValid(d *device.Device, s device.StateID, act device.ActionID) ([]device.ActionID, bool) {
	if _, ok := d.Next(s, act); ok {
		return nil, true
	}
	type node struct {
		s    device.StateID
		path []device.ActionID
	}
	seen := map[device.StateID]bool{s: true}
	queue := []node{{s: s}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range d.ValidActions(cur.s) {
			next, _ := d.Next(cur.s, a)
			if seen[next] {
				continue
			}
			seen[next] = true
			path := append(append([]device.ActionID(nil), cur.path...), a)
			if _, ok := d.Next(next, act); ok {
				return path, true
			}
			queue = append(queue, node{s: next, path: path})
		}
	}
	return nil, false
}

// payloadApplied checks that every injected device action survived replay
// (was FSM-valid in the state reached).
func payloadApplied(ep env.Episode, v Violation, at int) bool {
	for i, step := range v.Steps {
		for dev, act := range step {
			if ep.Actions[at+i][dev] != act {
				return false
			}
		}
	}
	return true
}
