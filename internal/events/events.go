// Package events implements the SmartThings-style event publish/subscribe
// architecture of Section II-A and Figure 2 of the Jarvis paper: devices
// relay normalized, edge-readable events through device handlers; apps
// subscribe to device capabilities; and a logger app captures every
// attribute change as a JSON log record with the tuple
//
//	(Event.date, Event.data, User.info, App.info, Group.info,
//	 Location.info, Device.label, Capability.name, Attribute.name,
//	 Attribute.value, Capability.command)
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one normalized edge event resulting from a device attribute
// change. Field names mirror the paper's log tuple.
type Event struct {
	Date           time.Time `json:"date"`
	Data           string    `json:"data,omitempty"`
	User           string    `json:"user"`
	App            string    `json:"app"`
	Group          string    `json:"group"`
	Location       string    `json:"location"`
	DeviceLabel    string    `json:"deviceLabel"`
	Capability     string    `json:"capabilityName"`
	Attribute      string    `json:"attributeName"`
	AttributeValue string    `json:"attributeValue"`
	Command        string    `json:"capabilityCommand"`
}

// Handler consumes events delivered by the bus.
type Handler interface {
	HandleEvent(Event)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Event)

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(ev Event) { f(ev) }

var _ Handler = HandlerFunc(nil)

// Subscription identifies a registered handler so it can be cancelled.
type Subscription struct {
	id  int
	bus *Bus
}

// Cancel removes the subscription from the bus. Cancelling twice is a
// no-op.
func (s Subscription) Cancel() {
	if s.bus != nil {
		s.bus.cancel(s.id)
	}
}

type subscriber struct {
	id int
	// capability filter; empty means "all capabilities".
	capability string
	// device filter; empty means "all devices".
	device  string
	handler Handler
}

// Bus is a synchronous publish/subscribe event bus. Publications are
// delivered in subscription order on the caller's goroutine, which gives
// apps the deterministic first-come-first-served semantics the environment
// constraint model assumes. Bus is safe for concurrent use.
type Bus struct {
	mu     sync.RWMutex
	nextID int
	subs   []subscriber
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a handler for every event matching the given device
// label and capability name. Empty strings act as wildcards; SubscribeAll
// is Subscribe("", "").
func (b *Bus) Subscribe(deviceLabel, capability string, h Handler) Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs = append(b.subs, subscriber{
		id:         b.nextID,
		capability: capability,
		device:     deviceLabel,
		handler:    h,
	})
	return Subscription{id: b.nextID, bus: b}
}

// SubscribeAll registers a handler for every event on the bus.
func (b *Bus) SubscribeAll(h Handler) Subscription { return b.Subscribe("", "", h) }

// Publish delivers an event to all matching subscribers, synchronously and
// in subscription order.
func (b *Bus) Publish(ev Event) {
	b.mu.RLock()
	subs := make([]subscriber, len(b.subs))
	copy(subs, b.subs)
	b.mu.RUnlock()
	for _, s := range subs {
		if s.device != "" && s.device != ev.DeviceLabel {
			continue
		}
		if s.capability != "" && s.capability != ev.Capability {
			continue
		}
		s.handler.HandleEvent(ev)
	}
}

// NumSubscribers returns the current number of registered handlers.
func (b *Bus) NumSubscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

func (b *Bus) cancel(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range b.subs {
		if s.id == id {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Logger is the logger app of Figure 2: it subscribes to all device
// capabilities and writes each event as one JSON line.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	n   int
	sub Subscription
	err error
}

// NewLogger creates a logger app writing JSON lines to w and subscribes it
// to the bus.
func NewLogger(b *Bus, w io.Writer) *Logger {
	l := &Logger{w: w}
	l.sub = b.SubscribeAll(HandlerFunc(l.log))
	return l
}

func (l *Logger) log(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		l.err = fmt.Errorf("logger: marshal: %w", err)
		return
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		l.err = fmt.Errorf("logger: write: %w", err)
		return
	}
	l.n++
}

// Count returns the number of events successfully logged.
func (l *Logger) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Err returns the first write/marshal error encountered, if any. After an
// error the logger stops logging.
func (l *Logger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close cancels the logger's subscription.
func (l *Logger) Close() { l.sub.Cancel() }

// ReadLog parses a JSON-lines log stream back into events, in order.
func ReadLog(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("events: read log record %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}
