package events

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleEvent(dev, cap string) Event {
	return Event{
		Date:           time.Date(2020, 1, 6, 8, 0, 0, 0, time.UTC),
		User:           "alice",
		App:            "manual",
		Group:          "entrance",
		Location:       "home-a",
		DeviceLabel:    dev,
		Capability:     cap,
		Attribute:      "lock",
		AttributeValue: "locked",
		Command:        "lock",
	}
}

func TestSubscribeAndPublish(t *testing.T) {
	b := NewBus()
	var got []string
	b.Subscribe("lock", "", HandlerFunc(func(ev Event) { got = append(got, "dev:"+ev.DeviceLabel) }))
	b.Subscribe("", "lock", HandlerFunc(func(ev Event) { got = append(got, "cap:"+ev.Capability) }))
	b.SubscribeAll(HandlerFunc(func(ev Event) { got = append(got, "all") }))

	b.Publish(sampleEvent("lock", "lock"))
	b.Publish(sampleEvent("light", "switch"))

	want := []string{"dev:lock", "cap:lock", "all", "all"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("delivery order = %v, want %v", got, want)
	}
	if b.NumSubscribers() != 3 {
		t.Errorf("NumSubscribers = %d, want 3", b.NumSubscribers())
	}
}

func TestCancel(t *testing.T) {
	b := NewBus()
	var n int
	sub := b.SubscribeAll(HandlerFunc(func(Event) { n++ }))
	b.Publish(sampleEvent("x", "y"))
	sub.Cancel()
	sub.Cancel() // idempotent
	b.Publish(sampleEvent("x", "y"))
	if n != 1 {
		t.Errorf("handler ran %d times, want 1", n)
	}
	if b.NumSubscribers() != 0 {
		t.Errorf("NumSubscribers = %d, want 0", b.NumSubscribers())
	}
	var zero Subscription
	zero.Cancel() // must not panic
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	n := 0
	b.SubscribeAll(HandlerFunc(func(Event) {
		mu.Lock()
		n++
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(sampleEvent("d", "c"))
			}
		}()
	}
	wg.Wait()
	if n != 800 {
		t.Errorf("delivered %d, want 800", n)
	}
}

func TestLoggerRoundTrip(t *testing.T) {
	b := NewBus()
	var buf bytes.Buffer
	l := NewLogger(b, &buf)
	defer l.Close()

	events := []Event{sampleEvent("lock", "lock"), sampleEvent("light", "switch")}
	for _, ev := range events {
		b.Publish(ev)
	}
	if l.Count() != 2 {
		t.Fatalf("Count = %d, want 2", l.Count())
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}

	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d events, want 2", len(got))
	}
	if got[0].DeviceLabel != "lock" || !got[0].Date.Equal(events[0].Date) {
		t.Errorf("round trip mismatch: %+v", got[0])
	}
}

func TestLoggerJSONFields(t *testing.T) {
	b := NewBus()
	var buf bytes.Buffer
	l := NewLogger(b, &buf)
	defer l.Close()
	b.Publish(sampleEvent("lock", "lock"))
	line := buf.String()
	for _, field := range []string{
		"date", "user", "app", "group", "location",
		"deviceLabel", "capabilityName", "attributeName",
		"attributeValue", "capabilityCommand",
	} {
		if !strings.Contains(line, `"`+field+`"`) {
			t.Errorf("log line missing field %q: %s", field, line)
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestLoggerWriteError(t *testing.T) {
	b := NewBus()
	l := NewLogger(b, failWriter{})
	defer l.Close()
	b.Publish(sampleEvent("d", "c"))
	if l.Err() == nil {
		t.Fatal("expected write error")
	}
	b.Publish(sampleEvent("d", "c")) // logger must not panic after error
	if l.Count() != 0 {
		t.Errorf("Count = %d, want 0", l.Count())
	}
}

func TestReadLogMalformed(t *testing.T) {
	_, err := ReadLog(strings.NewReader(`{"date":"2020-01-06T00:00:00Z"}` + "\nnot-json\n"))
	if err == nil {
		t.Fatal("malformed log should error")
	}
}

func TestHandlerUnsubscribeDuringPublish(t *testing.T) {
	// A handler cancelling its own subscription while handling an event
	// must not deadlock (Publish iterates over a snapshot).
	b := NewBus()
	var sub Subscription
	n := 0
	sub = b.SubscribeAll(HandlerFunc(func(Event) {
		n++
		sub.Cancel()
	}))
	b.Publish(sampleEvent("d", "c"))
	b.Publish(sampleEvent("d", "c"))
	if n != 1 {
		t.Errorf("handler ran %d times, want 1", n)
	}
}
