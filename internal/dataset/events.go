package dataset

import (
	"jarvis/internal/device"
	"jarvis/internal/events"
	"jarvis/internal/smarthome"
)

// EventsFromDay renders a simulated day as the SmartThings-style event
// stream the logger app of Figure 2 would capture: one event per device
// action, carrying the capability command and the resulting attribute
// value. Feeding these through events.ReadLog → parse.Parser →
// parse.BuildEpisodes reconstructs the day's episode exactly, which is how
// the end-to-end logging pipeline is validated.
func EventsFromDay(h *smarthome.FullHome, day *Day) []events.Event {
	e := h.Env
	var out []events.Event
	for t, a := range day.Episode.Actions {
		for di, act := range a {
			if act == device.NoAction {
				continue
			}
			d := e.Device(di)
			newState := day.Episode.States[t+1][di]
			out = append(out, events.Event{
				Date:           day.Episode.At(t),
				User:           "resident",
				App:            "manual",
				Location:       "home",
				Group:          e.Placement(di).Group,
				DeviceLabel:    d.Name(),
				Capability:     d.Type(),
				Attribute:      "state",
				AttributeValue: d.StateName(newState),
				Command:        d.ActionName(act),
			})
		}
	}
	return out
}

// PublishDay pushes a day's events through a live bus (and therefore any
// subscribed logger app), in chronological order.
func PublishDay(bus *events.Bus, h *smarthome.FullHome, day *Day) int {
	evs := EventsFromDay(h, day)
	for _, ev := range evs {
		bus.Publish(ev)
	}
	return len(evs)
}
