// Package dataset synthesizes the data sources the paper's evaluation
// consumes but which cannot be redistributed: OpenSHS-style simulated
// activities of daily living for home A, Smart*-calibrated traces for
// home B, SIMADL-style user-labelled benign anomalies, ERCOT-shaped
// day-ahead-market electricity prices, and outdoor weather with a
// day-ahead forecast. Every generator takes an explicit seed and is
// bit-for-bit reproducible.
package dataset

import (
	"math"
	"math/rand"
	"time"
)

// Occupancy describes where the resident is during one time instance.
type Occupancy int

// Occupancy values.
const (
	Away Occupancy = iota + 1
	Home
	Asleep
)

// String implements fmt.Stringer.
func (o Occupancy) String() string {
	switch o {
	case Away:
		return "away"
	case Home:
		return "home"
	case Asleep:
		return "asleep"
	default:
		return "unknown"
	}
}

// DayContext bundles the exogenous signals for one simulated day at
// one-minute resolution: resident occupancy, outdoor temperature, its
// day-ahead forecast, and DAM electricity prices.
type DayContext struct {
	// Date is the local midnight the day starts at.
	Date time.Time
	// Occupancy, Outdoor, Forecast and Prices all have length n (minutes
	// per day).
	Occupancy []Occupancy
	Outdoor   []float64
	Forecast  []float64
	Prices    []float64
	// WakeAt, LeaveAt, ReturnAt and SleepAt are the day's schedule in
	// minutes from midnight; LeaveAt/ReturnAt are -1 on stay-home days.
	WakeAt, LeaveAt, ReturnAt, SleepAt int
}

// N returns the number of time instances in the day.
func (c *DayContext) MinutesHome() int {
	n := 0
	for _, o := range c.Occupancy {
		if o == Home {
			n++
		}
	}
	return n
}

// ScheduleConfig parameterizes the resident's daily routine. All times are
// minutes from midnight; Jitter is the standard deviation applied to each.
type ScheduleConfig struct {
	Wake, Leave, Return, Sleep int
	Jitter                     float64
	// WeekendStayHome is the probability a weekend day has no work
	// departure.
	WeekendStayHome float64
}

// DefaultSchedule mirrors the working-resident profile of the OpenSHS
// activity scripts: wake 06:30, leave 08:00, return 18:00, sleep 23:00.
func DefaultSchedule() ScheduleConfig {
	return ScheduleConfig{
		Wake: 6*60 + 30, Leave: 8 * 60, Return: 18 * 60, Sleep: 23 * 60,
		Jitter:          20,
		WeekendStayHome: 0.75,
	}
}

// WeatherConfig parameterizes the outdoor temperature model.
type WeatherConfig struct {
	// AnnualMean and AnnualSwing set the seasonal sinusoid (°C).
	AnnualMean, AnnualSwing float64
	// DiurnalSwing is the day/night amplitude (°C).
	DiurnalSwing float64
	// Noise is the per-minute Gaussian noise (°C).
	Noise float64
	// ForecastError is the day-ahead forecast's noise (°C).
	ForecastError float64
}

// DefaultWeather approximates a temperate continental climate.
func DefaultWeather() WeatherConfig {
	return WeatherConfig{
		AnnualMean: 12, AnnualSwing: 14,
		DiurnalSwing:  5,
		Noise:         0.3,
		ForecastError: 1.0,
	}
}

// PriceConfig parameterizes the day-ahead-market price curve.
type PriceConfig struct {
	// Base is the off-peak price ($/kWh); MorningPeak and EveningPeak the
	// added peak premiums.
	Base, MorningPeak, EveningPeak float64
	// Noise is multiplicative lognormal-ish noise.
	Noise float64
}

// DefaultPrices approximates the ERCOT DAM diurnal double peak.
func DefaultPrices() PriceConfig {
	return PriceConfig{Base: 0.04, MorningPeak: 0.06, EveningPeak: 0.12, Noise: 0.15}
}

// ContextConfig bundles the generators for NewDayContext.
type ContextConfig struct {
	Schedule ScheduleConfig
	Weather  WeatherConfig
	Prices   PriceConfig
	// Minutes per day; 0 defaults to 1440.
	N int
}

// DefaultContext returns the configuration used by the experiments.
func DefaultContext() ContextConfig {
	return ContextConfig{
		Schedule: DefaultSchedule(),
		Weather:  DefaultWeather(),
		Prices:   DefaultPrices(),
		N:        1440,
	}
}

// NewDayContext synthesizes one day of exogenous signals.
func NewDayContext(date time.Time, cfg ContextConfig, rng *rand.Rand) *DayContext {
	n := cfg.N
	if n <= 0 {
		n = 1440
	}
	c := &DayContext{
		Date:      date,
		Occupancy: make([]Occupancy, n),
		Outdoor:   outdoorTemps(date, n, cfg.Weather, rng),
		Prices:    damPrices(date, n, cfg.Prices, rng),
	}
	c.Forecast = forecastFrom(c.Outdoor, cfg.Weather, rng)
	fillSchedule(c, cfg.Schedule, rng)
	return c
}

func jitter(base int, sd float64, n int, rng *rand.Rand) int {
	v := base + int(rng.NormFloat64()*sd)
	if v < 0 {
		v = 0
	}
	if v >= n {
		v = n - 1
	}
	return v
}

func fillSchedule(c *DayContext, s ScheduleConfig, rng *rand.Rand) {
	n := len(c.Occupancy)
	c.WakeAt = jitter(s.Wake, s.Jitter, n, rng)
	c.SleepAt = jitter(s.Sleep, s.Jitter*1.5, n, rng)
	if c.SleepAt <= c.WakeAt {
		c.SleepAt = min(n-1, c.WakeAt+16*60)
	}
	weekend := c.Date.Weekday() == time.Saturday || c.Date.Weekday() == time.Sunday
	stayHome := weekend && rng.Float64() < s.WeekendStayHome
	if stayHome {
		c.LeaveAt, c.ReturnAt = -1, -1
	} else {
		c.LeaveAt = jitter(s.Leave, s.Jitter, n, rng)
		c.ReturnAt = jitter(s.Return, s.Jitter*2, n, rng)
		if c.LeaveAt <= c.WakeAt {
			c.LeaveAt = c.WakeAt + 30
		}
		if c.ReturnAt <= c.LeaveAt {
			c.ReturnAt = min(n-1, c.LeaveAt+8*60)
		}
		if c.ReturnAt >= c.SleepAt {
			c.SleepAt = min(n-1, c.ReturnAt+3*60)
		}
	}
	for t := 0; t < n; t++ {
		switch {
		case t < c.WakeAt || t >= c.SleepAt:
			c.Occupancy[t] = Asleep
		case c.LeaveAt >= 0 && t >= c.LeaveAt && t < c.ReturnAt:
			c.Occupancy[t] = Away
		default:
			c.Occupancy[t] = Home
		}
	}
}

func outdoorTemps(date time.Time, n int, w WeatherConfig, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	yearDay := float64(date.YearDay())
	seasonal := w.AnnualMean - w.AnnualSwing*math.Cos(2*math.Pi*(yearDay-15)/365)
	for t := 0; t < n; t++ {
		// Diurnal maximum near 15:00, minimum near 03:00.
		frac := float64(t) / float64(n)
		diurnal := w.DiurnalSwing * math.Cos(2*math.Pi*(frac-15.0/24))
		out[t] = seasonal + diurnal + rng.NormFloat64()*w.Noise
	}
	return out
}

func forecastFrom(actual []float64, w WeatherConfig, rng *rand.Rand) []float64 {
	out := make([]float64, len(actual))
	bias := rng.NormFloat64() * w.ForecastError
	for t, v := range actual {
		out[t] = v + bias + rng.NormFloat64()*w.ForecastError*0.2
	}
	return out
}

func damPrices(date time.Time, n int, p PriceConfig, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	weekend := date.Weekday() == time.Saturday || date.Weekday() == time.Sunday
	peakScale := 1.0
	if weekend {
		peakScale = 0.5
	}
	// Hourly blocks as in a real DAM, smooth within the hour.
	hourly := make([]float64, 25)
	for h := 0; h <= 24; h++ {
		hf := float64(h)
		morning := p.MorningPeak * math.Exp(-((hf-8)*(hf-8))/4)
		evening := p.EveningPeak * math.Exp(-((hf-19)*(hf-19))/6)
		price := p.Base + peakScale*(morning+evening)
		price *= 1 + rng.NormFloat64()*p.Noise
		if price < 0.01 {
			price = 0.01
		}
		hourly[h] = price
	}
	for t := 0; t < n; t++ {
		h := t * 24 / n
		if h > 23 {
			h = 23
		}
		out[t] = hourly[h]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
