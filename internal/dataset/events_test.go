package dataset

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/events"
	"jarvis/internal/parse"
	"jarvis/internal/smarthome"
)

// TestLogPipelineRoundTrip: simulate a day, render it as logger-app JSON
// events, then run the full paper pipeline (log → parse → normalize →
// episode building) and verify the reconstructed episode matches the
// original exactly.
func TestLogPipelineRoundTrip(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeAConfig())
	rng := rand.New(rand.NewSource(13))
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	day, _, err := g.Day(start, home.InitialState(), rng)
	if err != nil {
		t.Fatalf("Day: %v", err)
	}

	// Publish through a live bus with the logger app attached.
	bus := events.NewBus()
	var logBuf bytes.Buffer
	logger := events.NewLogger(bus, &logBuf)
	defer logger.Close()
	n := PublishDay(bus, home, day)
	if n == 0 || logger.Count() != n {
		t.Fatalf("published %d, logged %d", n, logger.Count())
	}

	// Read the log back and rebuild the episode.
	evs, err := events.ReadLog(&logBuf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	p := parse.NewParser(home.Env)
	// Identity normalization resolves the logged attribute value by state
	// name and the command by action name — which is exactly what
	// EventsFromDay emits.
	recs, skipped := p.Parse(evs)
	if skipped != 0 {
		t.Fatalf("skipped %d records", skipped)
	}
	eps, err := parse.BuildEpisodes(home.Env, parse.EpisodeConfig{
		Start:   start,
		T:       24 * time.Hour,
		I:       time.Minute,
		Initial: day.Episode.States[0],
	}, recs)
	if err != nil {
		t.Fatalf("BuildEpisodes: %v", err)
	}
	if len(eps) != 1 {
		t.Fatalf("episodes = %d", len(eps))
	}
	got := eps[0]
	if got.Len() != day.Episode.Len() {
		t.Fatalf("length %d vs %d", got.Len(), day.Episode.Len())
	}
	for i := range day.Episode.States {
		if !got.States[i].Equal(day.Episode.States[i]) {
			t.Fatalf("state %d diverged:\n got %v\nwant %v", i,
				home.Env.FormatState(got.States[i]), home.Env.FormatState(day.Episode.States[i]))
		}
	}
}
