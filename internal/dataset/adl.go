package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

// GeneratorConfig parameterizes the resident-behavior simulator.
type GeneratorConfig struct {
	// Context drives occupancy, weather and prices.
	Context ContextConfig
	// Thermal is the house model configuration.
	Thermal smarthome.ThermalConfig
	// Appliance usage probabilities per day.
	BreakfastOven, DinnerOven, Washer, Dishwasher, EveningTV float64
	// HVACWhileAway keeps the thermostat maintaining temperature during
	// away periods — the paper's "normal device behavior" baseline lets
	// apps run context-free, which is exactly the waste Jarvis recovers.
	HVACWhileAway bool
}

// HomeAConfig is the OpenSHS-style simulated-activity profile (home A).
func HomeAConfig() GeneratorConfig {
	return GeneratorConfig{
		Context:       DefaultContext(),
		Thermal:       smarthome.DefaultThermalConfig(),
		BreakfastOven: 0.5,
		DinnerOven:    0.85,
		Washer:        0.3,
		Dishwasher:    0.6,
		EveningTV:     0.9,
		HVACWhileAway: true,
	}
}

// HomeBConfig is the Smart*-calibrated profile (home B): noisier schedule,
// heavier appliance usage, the load shapes of the published UMass traces.
func HomeBConfig() GeneratorConfig {
	cfg := HomeAConfig()
	cfg.Context.Schedule = ScheduleConfig{
		Wake: 7 * 60, Leave: 8*60 + 30, Return: 17*60 + 30, Sleep: 23*60 + 30,
		Jitter:          45,
		WeekendStayHome: 0.6,
	}
	cfg.BreakfastOven = 0.35
	cfg.DinnerOven = 0.7
	cfg.Washer = 0.45
	cfg.Dishwasher = 0.75
	cfg.EveningTV = 0.95
	return cfg
}

// Day is one simulated day of normal resident behavior: the recorded
// episode, the exogenous context, and the continuous indoor-temperature
// trace.
type Day struct {
	Episode env.Episode
	Context *DayContext
	// Indoor[t] is the indoor temperature after instance t.
	Indoor []float64
}

// EnergyKWh returns the day's metered energy use.
func (d *Day) EnergyKWh(e *env.Environment) float64 {
	var kwh float64
	for _, s := range d.Episode.States[1:] {
		kwh += smarthome.PowerDraw(e, s) / 1000 / 60 // one minute per state
	}
	return kwh
}

// CostUSD returns the day's electricity cost under the context's DAM
// prices.
func (d *Day) CostUSD(e *env.Environment) float64 {
	var usd float64
	for t, s := range d.Episode.States[1:] {
		price := d.Context.Prices[t%len(d.Context.Prices)]
		usd += smarthome.PowerDraw(e, s) / 1000 / 60 * price
	}
	return usd
}

// AvgComfortError returns the mean |T_in − forecast target| over occupied
// instances, the paper's temperature-difference metric.
func (d *Day) AvgComfortError(target float64) float64 {
	var sum float64
	var n int
	for t, temp := range d.Indoor {
		if d.Context.Occupancy[t] == Away {
			continue
		}
		diff := temp - target
		if diff < 0 {
			diff = -diff
		}
		sum += diff
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Generator simulates normal resident behavior in the 11-device home. It
// is the source of learning episodes (the paper's 1-week learning phase)
// and of the "normal user behavior" baseline in Figures 6–8.
type Generator struct {
	home *smarthome.FullHome
	cfg  GeneratorConfig
}

// NewGenerator builds a generator over the given home.
func NewGenerator(home *smarthome.FullHome, cfg GeneratorConfig) *Generator {
	return &Generator{home: home, cfg: cfg}
}

// plannedAct is one scripted device action at time instance t.
type plannedAct struct {
	t   int
	dev int
	act device.ActionID
}

// Day simulates one day starting from s0 and returns the day plus the
// final state (the next day's S_0).
func (g *Generator) Day(date time.Time, s0 env.State, rng *rand.Rand) (*Day, env.State, error) {
	return g.SimulateDay(NewDayContext(date, g.cfg.Context, rng), s0, rng)
}

// SimulateDay simulates normal resident behavior against a pre-built
// context — the experiments reuse one context for both the normal-behavior
// baseline and the Jarvis run so the comparison is apples-to-apples.
func (g *Generator) SimulateDay(ctx *DayContext, s0 env.State, rng *rand.Rand) (*Day, env.State, error) {
	date := ctx.Date
	n := len(ctx.Occupancy)
	h := g.home
	e := h.Env

	// The day's script as a time-sorted list walked alongside the minute
	// loop — a per-instance map lookup 1,440 times a day is pure overhead.
	// The stable sort preserves the script's insertion order within one
	// instance, matching the former map[t]-slice append semantics.
	plan := make([]plannedAct, 0, 64)
	add := func(t int, dev int, act device.ActionID) {
		if t >= 0 && t < n {
			plan = append(plan, plannedAct{t: t, dev: dev, act: act})
		}
	}
	g.scriptDay(ctx, add, rng)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].t < plan[j].t })
	planIdx := 0

	thermal := smarthome.NewThermal(g.cfg.Thermal)
	rec := env.NewRecorder(e, s0, date, time.Duration(n)*time.Minute, time.Minute)
	indoor := make([]float64, 0, n)

	// One action buffer for the whole day: Recorder.Step copies it, so
	// resetting to no-op each minute is safe and avoids a per-minute alloc.
	act := env.NoOp(e.K())
	for t := 0; t < n; t++ {
		s := rec.State()
		for i := range act {
			act[i] = device.NoAction
		}

		// House physics first: the sensor publishes a new reading when the
		// discretized temperature moves (and the sensor is powered).
		thermal.Step(ctx.Outdoor[t], s[h.Thermostat])
		indoor = append(indoor, thermal.Inside())
		if want := thermal.SensorState(); s[h.TempSensor] != smarthome.TempOff &&
			s[h.TempSensor] != smarthome.TempFireAlarm && want != s[h.TempSensor] {
			act[h.TempSensor] = readAction(want)
		}

		// App 2: maintain optimal temperature (context-free normal
		// behavior), unless configured to respect occupancy.
		hvacActive := g.cfg.HVACWhileAway || ctx.Occupancy[t] != Away
		if hvacActive {
			switch s[h.TempSensor] {
			case smarthome.TempBelow:
				if s[h.Thermostat] != smarthome.ThermostatHeat {
					act[h.Thermostat] = smarthome.ThermostatActHeat
				}
			case smarthome.TempAbove:
				if s[h.Thermostat] != smarthome.ThermostatCool {
					act[h.Thermostat] = smarthome.ThermostatActCool
				}
			case smarthome.TempOptimal:
				if s[h.Thermostat] != smarthome.ThermostatOff {
					act[h.Thermostat] = smarthome.ThermostatActOff
				}
			}
		} else if s[h.Thermostat] != smarthome.ThermostatOff {
			act[h.Thermostat] = smarthome.ThermostatActOff
		}

		// Scripted resident actions override the automations.
		for ; planIdx < len(plan) && plan[planIdx].t == t; planIdx++ {
			act[plan[planIdx].dev] = plan[planIdx].act
		}

		// Drop whatever is invalid in the current state (stale commands).
		for dev, a := range act {
			if a == device.NoAction {
				continue
			}
			if _, ok := e.Device(dev).Next(s[dev], a); !ok {
				act[dev] = device.NoAction
			}
		}
		if err := rec.Step(act); err != nil {
			return nil, nil, fmt.Errorf("dataset: day %s instance %d: %w", date.Format("2006-01-02"), t, err)
		}
	}
	ep := rec.Episode()
	final := ep.States[len(ep.States)-1].Clone()
	return &Day{Episode: ep, Context: ctx, Indoor: indoor}, final, nil
}

// Days simulates a run of consecutive days, chaining end states.
func (g *Generator) Days(start time.Time, days int, rng *rand.Rand) ([]*Day, error) {
	s := g.home.InitialState()
	out := make([]*Day, 0, days)
	for i := 0; i < days; i++ {
		d, next, err := g.Day(start.AddDate(0, 0, i), s, rng)
		if err != nil {
			return out, err
		}
		out = append(out, d)
		s = next
	}
	return out, nil
}

// Episodes extracts the episodes of a day run.
func Episodes(days []*Day) []env.Episode {
	out := make([]env.Episode, len(days))
	for i, d := range days {
		out[i] = d.Episode
	}
	return out
}

func readAction(want device.StateID) device.ActionID {
	switch want {
	case smarthome.TempAbove:
		return 2 // read_above
	case smarthome.TempBelow:
		return 3 // read_below
	default:
		return 4 // read_optimal
	}
}

// scriptDay lays out the resident's planned actions for the day.
func (g *Generator) scriptDay(ctx *DayContext, add func(int, int, device.ActionID), rng *rand.Rand) {
	h := g.home
	lightOn, lightOff := device.ActionID(1), device.ActionID(0)
	wake, sleep := ctx.WakeAt, ctx.SleepAt

	// Morning: bedroom and living lights, fridge, optional breakfast oven.
	add(wake, h.BedLight, lightOn)
	add(wake+25, h.BedLight, lightOff)
	add(wake+20, h.LivingLight, lightOn)
	add(wake+5, h.Fridge, 0) // open_door
	add(wake+8, h.Fridge, 1) // close_door
	if rng.Float64() < g.cfg.BreakfastOven {
		add(wake+10, h.Oven, 1)
		add(wake+30, h.Oven, 0)
	}

	if ctx.LeaveAt >= 0 {
		leave, ret := ctx.LeaveAt, ctx.ReturnAt
		// Departure: unlock to exit, lock from outside; then app 5 fires
		// on the (locked_outside, sensing) trigger and shuts the lights
		// and thermostat down in one composite action.
		add(leave-1, h.Lock, 1) // unlock (was locked_inside overnight)
		add(leave, h.Lock, 0)   // lock -> locked_outside
		add(leave+1, h.LivingLight, lightOff)
		add(leave+1, h.BedLight, lightOff)
		add(leave+1, h.Thermostat, 2) // power_off (app 5)
		// Return: sensor detects the resident, app 1 unlocks, app 3 turns
		// the lights on, the resident enters and locks from inside.
		add(ret, h.DoorSensor, 2) // detect_auth
		add(ret+1, h.Lock, 1)     // unlock
		add(ret+1, h.LivingLight, lightOn)
		add(ret+2, h.DoorSensor, 4) // clear
		add(ret+3, h.Lock, 4)       // lock_inside
		// Dinner after returning.
		dinner := ret + 45
		if rng.Float64() < g.cfg.DinnerOven {
			add(dinner, h.Oven, 1)
			add(dinner+35, h.Oven, 0)
		}
		add(dinner-5, h.Fridge, 0)
		add(dinner-2, h.Fridge, 1)
		if rng.Float64() < g.cfg.Dishwasher {
			add(dinner+40, h.Dishwasher, 0) // start
			add(dinner+40+90, h.Dishwasher, 1)
		}
		if rng.Float64() < g.cfg.EveningTV {
			add(ret+90, h.TV, 1)
			add(min(sleep-5, ret+90+150), h.TV, 0)
		}
	} else {
		// Stay-home day: lights with daylight, lunch, TV in the afternoon.
		add(wake+30, h.LivingLight, lightOn)
		lunch := 12*60 + 30
		add(lunch-5, h.Fridge, 0)
		add(lunch-2, h.Fridge, 1)
		if rng.Float64() < g.cfg.DinnerOven {
			add(lunch, h.Oven, 1)
			add(lunch+25, h.Oven, 0)
		}
		if rng.Float64() < g.cfg.EveningTV {
			add(14*60, h.TV, 1)
			add(16*60+30, h.TV, 0)
		}
		dinner := 18*60 + 30
		if rng.Float64() < g.cfg.DinnerOven {
			add(dinner, h.Oven, 1)
			add(dinner+35, h.Oven, 0)
		}
		if rng.Float64() < g.cfg.Dishwasher {
			add(dinner+40, h.Dishwasher, 0)
			add(dinner+40+90, h.Dishwasher, 1)
		}
	}
	if rng.Float64() < g.cfg.Washer {
		// Laundry starts once the resident is home for the evening.
		earliest := 17 * 60
		if ctx.ReturnAt >= 0 && ctx.ReturnAt+20 > earliest {
			earliest = ctx.ReturnAt + 20
		}
		start := earliest + rng.Intn(90)
		add(start, h.Washer, 0)
		add(start+60, h.Washer, 1)
	}
	// Bedtime: everything off, bedroom light briefly, lock from inside.
	add(sleep-15, h.BedLight, lightOn)
	add(sleep-10, h.LivingLight, lightOff)
	add(sleep-10, h.TV, lightOff)
	add(sleep, h.BedLight, lightOff)
}
