package dataset

import (
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/smarthome"
)

var monday = time.Date(2020, 1, 6, 0, 0, 0, 0, time.UTC)

func TestDayContextSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewDayContext(monday, DefaultContext(), rng)
	if len(c.Occupancy) != 1440 || len(c.Outdoor) != 1440 || len(c.Prices) != 1440 || len(c.Forecast) != 1440 {
		t.Fatalf("series lengths wrong")
	}
	if c.WakeAt <= 0 || c.SleepAt <= c.WakeAt {
		t.Errorf("schedule: wake %d sleep %d", c.WakeAt, c.SleepAt)
	}
	// Monday is a work day: there must be an away period.
	if c.LeaveAt < 0 || c.ReturnAt <= c.LeaveAt {
		t.Fatalf("weekday should have leave/return: %d/%d", c.LeaveAt, c.ReturnAt)
	}
	if c.Occupancy[0] != Asleep {
		t.Error("midnight should be asleep")
	}
	if c.Occupancy[(c.LeaveAt+c.ReturnAt)/2] != Away {
		t.Error("midday should be away")
	}
	if c.Occupancy[c.ReturnAt+1] != Home {
		t.Error("after return should be home")
	}
	if c.MinutesHome() <= 0 {
		t.Error("some time should be spent home")
	}
}

func TestDayContextWeekendsCanStayHome(t *testing.T) {
	stayed := 0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewDayContext(monday.AddDate(0, 0, 5), DefaultContext(), rng) // Saturday
		if c.LeaveAt < 0 {
			stayed++
		}
	}
	if stayed == 0 {
		t.Error("no weekend stay-home days in 20 draws (p=0.75 each)")
	}
}

func TestOccupancyString(t *testing.T) {
	for o, want := range map[Occupancy]string{Away: "away", Home: "home", Asleep: "asleep", 0: "unknown"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestWeatherSeasonality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	winter := NewDayContext(time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC), DefaultContext(), rng)
	summer := NewDayContext(time.Date(2020, 7, 15, 0, 0, 0, 0, time.UTC), DefaultContext(), rng)
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(winter.Outdoor) >= avg(summer.Outdoor) {
		t.Errorf("winter %g should be colder than summer %g", avg(winter.Outdoor), avg(summer.Outdoor))
	}
	// Diurnal shape: 15:00 warmer than 04:00.
	if winter.Outdoor[15*60] <= winter.Outdoor[4*60] {
		t.Error("afternoon should be warmer than night")
	}
	// Forecast tracks actual within a few degrees.
	var maxErr float64
	for i := range winter.Outdoor {
		d := winter.Forecast[i] - winter.Outdoor[i]
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 8 {
		t.Errorf("forecast error %g too large", maxErr)
	}
}

func TestDAMPriceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewDayContext(monday, DefaultContext(), rng)
	night := c.Prices[3*60]
	evening := c.Prices[19*60]
	if evening <= night {
		t.Errorf("evening peak %g should exceed night price %g", evening, night)
	}
	for t2, p := range c.Prices {
		if p <= 0 {
			t.Fatalf("price at %d is %g", t2, p)
		}
	}
}

func TestGeneratorDay(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeAConfig())
	rng := rand.New(rand.NewSource(7))
	day, final, err := g.Day(monday, home.InitialState(), rng)
	if err != nil {
		t.Fatalf("Day: %v", err)
	}
	if day.Episode.Len() != 1440 {
		t.Fatalf("episode length %d", day.Episode.Len())
	}
	if err := day.Episode.Validate(home.Env); err != nil {
		t.Fatalf("episode invalid: %v", err)
	}
	if len(day.Indoor) != 1440 {
		t.Fatalf("indoor trace %d", len(day.Indoor))
	}
	if !home.Env.ValidState(final) {
		t.Error("final state invalid")
	}
	// The day must contain real activity.
	active := 0
	for _, a := range day.Episode.Actions {
		if !a.IsNoOp() {
			active++
		}
	}
	if active < 10 {
		t.Errorf("only %d active instances; simulation looks dead", active)
	}
	// Energy and cost are positive and plausible for a day.
	kwh := day.EnergyKWh(home.Env)
	if kwh <= 0 || kwh > 100 {
		t.Errorf("EnergyKWh = %g", kwh)
	}
	usd := day.CostUSD(home.Env)
	if usd <= 0 || usd > 50 {
		t.Errorf("CostUSD = %g", usd)
	}
	if day.AvgComfortError(21) < 0 {
		t.Error("comfort error negative")
	}
}

func TestGeneratorDays(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeBConfig())
	rng := rand.New(rand.NewSource(11))
	days, err := g.Days(monday, 3, rng)
	if err != nil {
		t.Fatalf("Days: %v", err)
	}
	if len(days) != 3 {
		t.Fatalf("days = %d", len(days))
	}
	eps := Episodes(days)
	// Consecutive days chain.
	for i := 1; i < len(eps); i++ {
		if !eps[i].States[0].Equal(eps[i-1].States[len(eps[i-1].States)-1]) {
			t.Errorf("day %d does not chain from day %d", i, i-1)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeAConfig())
	run := func() float64 {
		rng := rand.New(rand.NewSource(42))
		day, _, err := g.Day(monday, home.InitialState(), rng)
		if err != nil {
			t.Fatalf("Day: %v", err)
		}
		return day.EnergyKWh(home.Env)
	}
	if run() != run() {
		t.Error("generator is not deterministic under a fixed seed")
	}
}

func TestSynthesizeAnomalies(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeAConfig())
	rng := rand.New(rand.NewSource(5))
	days, err := g.Days(monday, 2, rng)
	if err != nil {
		t.Fatalf("Days: %v", err)
	}
	labeled, err := SynthesizeAnomalies(home, days, 200, rng)
	if err != nil {
		t.Fatalf("SynthesizeAnomalies: %v", err)
	}
	if len(labeled) != 200 {
		t.Fatalf("samples = %d", len(labeled))
	}
	for i, l := range labeled {
		if !l.Benign {
			t.Fatalf("sample %d not labelled benign", i)
		}
		if l.Tr.Act.IsNoOp() {
			t.Fatalf("sample %d has no action", i)
		}
		// transition must be FSM-consistent
		to, err := home.Env.Transition(l.Tr.From, l.Tr.Act)
		if err != nil || !to.Equal(l.Tr.To) {
			t.Fatalf("sample %d inconsistent: %v", i, err)
		}
	}

	if _, err := SynthesizeAnomalies(home, nil, 10, rng); err == nil {
		t.Error("no base days should error")
	}
}

func TestNormalSamples(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeAConfig())
	rng := rand.New(rand.NewSource(6))
	days, err := g.Days(monday, 2, rng)
	if err != nil {
		t.Fatalf("Days: %v", err)
	}
	normals, err := NormalSamples(days, 100, rng)
	if err != nil {
		t.Fatalf("NormalSamples: %v", err)
	}
	if len(normals) != 100 {
		t.Fatalf("samples = %d", len(normals))
	}
	for i, l := range normals {
		if l.Benign {
			t.Fatalf("sample %d wrongly labelled benign", i)
		}
		if l.Tr.Act.IsNoOp() {
			t.Fatalf("sample %d is idle", i)
		}
	}
	if _, err := NormalSamples(nil, 10, rng); err == nil {
		t.Error("no base days should error")
	}
}

func TestInjectAnomaly(t *testing.T) {
	home := smarthome.NewFullHome()
	g := NewGenerator(home, HomeAConfig())
	rng := rand.New(rand.NewSource(9))
	days, err := g.Days(monday, 1, rng)
	if err != nil {
		t.Fatalf("Days: %v", err)
	}
	for _, class := range AllAnomalyClasses() {
		ep, at, err := InjectAnomaly(home, days[0], class, rng)
		if err != nil {
			// LightsOnWhileAway requires an away window; others must work.
			if class == LightsOnWhileAway {
				continue
			}
			t.Fatalf("InjectAnomaly(%v): %v", class, err)
		}
		if err := ep.Validate(home.Env); err != nil {
			t.Fatalf("injected episode invalid (%v): %v", class, err)
		}
		if at < 0 || at >= ep.Len() {
			t.Fatalf("injection point %d out of range", at)
		}
	}
}

func TestAnomalyClassString(t *testing.T) {
	for _, c := range AllAnomalyClasses() {
		if c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if AnomalyClass(99).String() != "unknown" {
		t.Error("unknown class should stringify to unknown")
	}
}
