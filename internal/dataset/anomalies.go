package dataset

import (
	"fmt"
	"math/rand"

	"jarvis/internal/anomaly"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

// AnomalyClass enumerates the benign-anomaly families the SIMADL study's
// participants defined (Section V-A3 examples: leaving the fridge/oven
// door open, TV/oven on for short periods, plus off-schedule usage).
type AnomalyClass int

// Benign anomaly classes.
const (
	FridgeDoorLeftOpen AnomalyClass = iota + 1
	OvenAtOddHours
	TVOnAtNight
	LightsOnWhileAway
	OffScheduleAppliance
	DoorCycleAtNight
)

// String implements fmt.Stringer.
func (c AnomalyClass) String() string {
	switch c {
	case FridgeDoorLeftOpen:
		return "fridge-door-left-open"
	case OvenAtOddHours:
		return "oven-at-odd-hours"
	case TVOnAtNight:
		return "tv-on-at-night"
	case LightsOnWhileAway:
		return "lights-on-while-away"
	case OffScheduleAppliance:
		return "off-schedule-appliance"
	case DoorCycleAtNight:
		return "door-cycle-at-night"
	default:
		return "unknown"
	}
}

// AllAnomalyClasses lists every class.
func AllAnomalyClasses() []AnomalyClass {
	return []AnomalyClass{
		FridgeDoorLeftOpen, OvenAtOddHours, TVOnAtNight,
		LightsOnWhileAway, OffScheduleAppliance, DoorCycleAtNight,
	}
}

// BenignAnomaly is one synthesized benign anomalous device action.
type BenignAnomaly struct {
	Class    AnomalyClass
	Device   int
	Action   device.ActionID
	Instance int // minute of day
}

// anomalyAction picks the (device, action, instance) of one anomaly of the
// given class. The second return is false when the class needs an away
// period and the day has none.
func anomalyAction(h *smarthome.FullHome, class AnomalyClass, ctx *DayContext, rng *rand.Rand) (BenignAnomaly, bool) {
	nightAt := func() int { return 1*60 + rng.Intn(4*60) } // 01:00–05:00
	switch class {
	case FridgeDoorLeftOpen:
		// Door opened off-meal (and simply not closed) — the marker event
		// the SIMADL participants labelled. Meal-time opens are normal.
		slots := []int{10*60 + 30, 15 * 60, 22*60 + 30}
		at := slots[rng.Intn(len(slots))] + rng.Intn(45)
		return BenignAnomaly{class, h.Fridge, 0 /* open_door */, at}, true
	case OvenAtOddHours:
		return BenignAnomaly{class, h.Oven, 1 /* power_on */, nightAt()}, true
	case TVOnAtNight:
		return BenignAnomaly{class, h.TV, 1, nightAt()}, true
	case LightsOnWhileAway:
		if ctx.LeaveAt < 0 || ctx.ReturnAt <= ctx.LeaveAt+10 {
			return BenignAnomaly{}, false
		}
		at := ctx.LeaveAt + 5 + rng.Intn(ctx.ReturnAt-ctx.LeaveAt-5)
		dev := h.LivingLight
		if rng.Intn(2) == 0 {
			dev = h.BedLight
		}
		return BenignAnomaly{class, dev, 1, at}, true
	case OffScheduleAppliance:
		dev := h.Washer
		if rng.Intn(2) == 0 {
			dev = h.Dishwasher
		}
		return BenignAnomaly{class, dev, 0 /* start */, nightAt()}, true
	case DoorCycleAtNight:
		return BenignAnomaly{class, h.Lock, 1 /* unlock */, nightAt()}, true
	default:
		return BenignAnomaly{}, false
	}
}

// SynthesizeAnomalies produces count labelled benign-anomaly transitions
// drawn over the given simulated days — the stand-in for the 55,156
// user-generated SIMADL samples. Each sample is a transition the ANN must
// learn to recognize as benign.
func SynthesizeAnomalies(h *smarthome.FullHome, days []*Day, count int, rng *rand.Rand) ([]anomaly.Labeled, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("dataset: no base days")
	}
	classes := AllAnomalyClasses()
	out := make([]anomaly.Labeled, 0, count)
	e := h.Env
	for len(out) < count {
		day := days[rng.Intn(len(days))]
		ba, ok := anomalyAction(h, classes[rng.Intn(len(classes))], day.Context, rng)
		if !ok {
			continue
		}
		from := day.Episode.States[ba.Instance]
		// Overlay the anomaly onto whatever the day was already doing at
		// that instant, exactly as injection does — the classifier must
		// see the same distribution it will filter.
		act := day.Episode.Actions[ba.Instance].Clone()
		act[ba.Device] = ba.Action
		to, err := e.Transition(from, act)
		if err != nil {
			continue // action not applicable in that day's state: redraw
		}
		out = append(out, anomaly.Labeled{
			Tr: env.Transition{
				From: from, Act: act, To: to,
				Instance: ba.Instance, At: day.Episode.At(ba.Instance),
			},
			Benign: true,
		})
	}
	return out, nil
}

// NormalSamples draws count non-anomalous transitions from the simulated
// days, labelled as normal. Idle transitions are skipped so the classifier
// trains on actual device activity.
func NormalSamples(days []*Day, count int, rng *rand.Rand) ([]anomaly.Labeled, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("dataset: no base days")
	}
	out := make([]anomaly.Labeled, 0, count)
	for attempts := 0; len(out) < count && attempts < count*100; attempts++ {
		day := days[rng.Intn(len(days))]
		t := rng.Intn(day.Episode.Len())
		if day.Episode.Actions[t].IsNoOp() {
			continue
		}
		out = append(out, anomaly.Labeled{
			Tr: env.Transition{
				From:     day.Episode.States[t],
				Act:      day.Episode.Actions[t],
				To:       day.Episode.States[t+1],
				Instance: t,
				At:       day.Episode.At(t),
			},
			Benign: false,
		})
	}
	if len(out) < count {
		return out, fmt.Errorf("dataset: only %d/%d active transitions available", len(out), count)
	}
	return out, nil
}

// InjectAnomaly splices one benign anomaly of the given class into a
// simulated day and returns the resulting episode together with the
// injection point. The remainder of the day is replayed through Δ so the
// episode stays consistent.
func InjectAnomaly(h *smarthome.FullHome, day *Day, class AnomalyClass, rng *rand.Rand) (env.Episode, int, error) {
	ba, ok := anomalyAction(h, class, day.Context, rng)
	if !ok {
		return env.Episode{}, 0, fmt.Errorf("dataset: class %v not applicable to this day", class)
	}
	actions := make([]env.Action, day.Episode.Len())
	for i, a := range day.Episode.Actions {
		actions[i] = a.Clone()
	}
	actions[ba.Instance][ba.Device] = ba.Action
	ep, err := env.ReplayActions(h.Env, day.Episode.States[0], day.Episode.Start, day.Episode.I, actions)
	if err != nil {
		return env.Episode{}, 0, err
	}
	return ep, ba.Instance, nil
}
