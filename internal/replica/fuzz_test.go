package replica

import (
	"bytes"
	"testing"
)

// FuzzParseMessage hammers the replication frame decoder with arbitrary
// payloads: it must never panic, and every payload it accepts must
// re-encode to an equivalent message (the handshake/frame codec is the
// untrusted surface a hostile or corrupted peer reaches first).
func FuzzParseMessage(f *testing.F) {
	f.Add(AppendHello(nil, Counters{Events: 1, Steps: 2, Recs: 3})[4:])
	f.Add(AppendSnapshot(nil, 9, []byte(`{"snapshot":true}`))[4:])
	f.Add(AppendRecord(nil, []byte("wal-record"))[4:])
	f.Add(AppendHeartbeat(nil, Counters{Events: 10})[4:])
	f.Add([]byte{})
	f.Add([]byte{MsgHello})
	f.Add([]byte{0xFF, 0x00})

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := ParseMessage(payload)
		if err != nil {
			return
		}
		var frame []byte
		switch m.Kind {
		case MsgHello:
			if m.Ver != Version {
				return // parseable but not re-encodable at another revision
			}
			frame = AppendHello(nil, m.Have)
		case MsgSnapshot:
			frame = AppendSnapshot(nil, m.Gen, m.Data)
		case MsgRecord:
			frame = AppendRecord(nil, m.Data)
		case MsgHeartbeat:
			frame = AppendHeartbeat(nil, m.Have)
		default:
			t.Fatalf("accepted unknown kind 0x%02x", m.Kind)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("round trip diverged:\n in  % x\n out % x", payload, frame[4:])
		}
	})
}
