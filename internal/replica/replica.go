// Package replica is jarvisd's hot-standby layer: a primary-side shipper
// that streams the live WAL (plus checkpoint snapshots at every barrier)
// over the wire framing, and a follower-side client that applies the
// stream and decides when the primary is dead.
//
// # Protocol
//
// A follower opens a plain TCP connection and sends {Magic, Version} —
// Magic (0xB8) is distinct from both the binary-request magic (0xB7) and
// '{' (0x7B), so the daemon's existing one-byte codec peek gains a third
// branch without disturbing either serving protocol. Everything after the
// two raw hello bytes is a u32-little-endian length-prefixed frame (the
// internal/wire framing, with a larger cap because snapshot frames carry
// whole checkpoints). The first payload byte is the message kind:
//
//	follower → primary:  hello      'H' ver u8, events/steps/recs u64 ×3
//	primary  → follower: snapshot   'S' gen u64, snapshot JSON bytes
//	                     record     'R' raw WAL record bytes, verbatim
//	                     heartbeat  'B' events/steps/recs u64 ×3
//
// After the hello the stream is one-directional. The primary always opens
// with a snapshot — the follower's per-kind stale-record dedup (the same
// skip rule boot-time WAL replay uses) makes the snapshot/stream overlap
// idempotent, so no offset negotiation is needed. When the primary's WAL
// resets at a checkpoint barrier, the shipper sends a fresh snapshot and
// keeps tailing the new log; the follower mirrors the barrier locally.
// Heartbeats carry the primary's journalled counters so the follower can
// compute replication lag; any frame at all proves liveness.
package replica

import (
	"encoding/binary"
	"fmt"
)

const (
	// Magic is the first byte a follower sends on a replication
	// connection; distinct from wire.Magic (0xB7) and '{' (0x7B).
	Magic = 0xB8
	// Version is the replication protocol revision.
	Version = 1
	// MaxFrame caps one replication frame. Snapshot frames carry a whole
	// serialized checkpoint (Q table + replay buffer), so the cap is far
	// above the request protocol's.
	MaxFrame = 64 << 20
)

// Message kinds, the first byte of every frame payload.
const (
	MsgHello     = 'H'
	MsgSnapshot  = 'S'
	MsgRecord    = 'R'
	MsgHeartbeat = 'B'
)

// Counters is the per-kind record position both ends exchange: how many
// events, online transitions, and recommendations have been applied (or
// journalled, on the primary). The WAL's per-kind sequence numbers make
// these directly comparable across processes.
type Counters struct {
	Events int
	Steps  int
	Recs   int
}

// Total collapses the position into one monotone number, the basis of the
// replication-lag gauge.
func (c Counters) Total() int { return c.Events + c.Steps + c.Recs }

// Behind reports how many records this position trails p by (0 when equal
// or ahead).
func (c Counters) Behind(p Counters) int {
	d := p.Total() - c.Total()
	if d < 0 {
		return 0
	}
	return d
}

// countersLen is the wire size of a Counters block.
const countersLen = 24

// Message is one parsed frame.
type Message struct {
	Kind byte
	// Ver is the follower's protocol version (hello only).
	Ver uint8
	// Have is the sender's position: the follower's applied position in a
	// hello, the primary's journalled position in a heartbeat.
	Have Counters
	// Gen is the primary's snapshot generation number (snapshot only).
	Gen uint64
	// Data aliases into the frame buffer: the snapshot JSON or the raw WAL
	// record. Valid only until the next read on the same Reader.
	Data []byte
}

func appendCounters(dst []byte, c Counters) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Events))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Steps))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Recs))
	return dst
}

func parseCounters(b []byte) Counters {
	return Counters{
		Events: int(binary.LittleEndian.Uint64(b[0:8])),
		Steps:  int(binary.LittleEndian.Uint64(b[8:16])),
		Recs:   int(binary.LittleEndian.Uint64(b[16:24])),
	}
}

// frame appends a length prefix and payload to dst.
func frame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// AppendHello appends the follower's framed hello (sent after the two raw
// magic bytes): protocol version plus its applied position.
func AppendHello(dst []byte, have Counters) []byte {
	payload := make([]byte, 0, 2+countersLen)
	payload = append(payload, MsgHello, Version)
	payload = appendCounters(payload, have)
	return frame(dst, payload)
}

// AppendSnapshot appends a framed checkpoint transfer.
func AppendSnapshot(dst []byte, gen uint64, data []byte) []byte {
	n := 1 + 8 + len(data)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, MsgSnapshot)
	dst = binary.LittleEndian.AppendUint64(dst, gen)
	return append(dst, data...)
}

// AppendRecord appends a framed verbatim WAL record.
func AppendRecord(dst []byte, rec []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(rec)))
	dst = append(dst, MsgRecord)
	return append(dst, rec...)
}

// AppendHeartbeat appends a framed liveness beacon carrying the primary's
// journalled position.
func AppendHeartbeat(dst []byte, at Counters) []byte {
	payload := make([]byte, 0, 1+countersLen)
	payload = append(payload, MsgHeartbeat)
	payload = appendCounters(payload, at)
	return frame(dst, payload)
}

// ParseMessage decodes one frame payload. Message.Data aliases payload.
func ParseMessage(payload []byte) (Message, error) {
	if len(payload) == 0 {
		return Message{}, fmt.Errorf("replica: empty frame")
	}
	m := Message{Kind: payload[0]}
	body := payload[1:]
	switch m.Kind {
	case MsgHello:
		if len(body) != 1+countersLen {
			return Message{}, fmt.Errorf("replica: hello length %d", len(body))
		}
		m.Ver = body[0]
		m.Have = parseCounters(body[1:])
	case MsgSnapshot:
		if len(body) < 8 {
			return Message{}, fmt.Errorf("replica: snapshot length %d", len(body))
		}
		m.Gen = binary.LittleEndian.Uint64(body[:8])
		m.Data = body[8:]
	case MsgRecord:
		m.Data = body
	case MsgHeartbeat:
		if len(body) != countersLen {
			return Message{}, fmt.Errorf("replica: heartbeat length %d", len(body))
		}
		m.Have = parseCounters(body)
	default:
		return Message{}, fmt.Errorf("replica: unknown message kind 0x%02x", m.Kind)
	}
	return m, nil
}
