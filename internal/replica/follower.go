package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ErrStalled reports that the primary went silent for longer than the
// configured heartbeat timeout (across reconnect attempts): the signal a
// follower configured for automatic failover promotes on.
var ErrStalled = errors.New("replica: primary heartbeat timeout")

// errStopped is the internal clean-shutdown sentinel.
var errStopped = errors.New("replica: stopped")

// FollowerConfig wires a Follower to the standby daemon.
type FollowerConfig struct {
	// Addr is the primary's serving address.
	Addr string
	// Timeout is the silence budget: no frame from the primary for this
	// long (including time spent failing to reconnect) and Run returns
	// ErrStalled. Default 5s.
	Timeout time.Duration
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// Have reports the follower's applied position, sent in the hello.
	Have func() Counters
	// OnSnapshot applies a shipped checkpoint. The data slice is only
	// valid for the duration of the call. An error is fatal to Run.
	OnSnapshot func(gen uint64, data []byte) error
	// OnRecord applies one verbatim WAL record. The slice is only valid
	// for the duration of the call. An error is fatal to Run.
	OnRecord func(rec []byte) error
	// OnHeartbeat observes the primary's journalled position (optional;
	// the follower records it for Primary regardless).
	OnHeartbeat func(at Counters)
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Follower maintains the replication connection from the standby side:
// dial, hello, apply the stream, reconnect with backoff on connection
// loss, and give up with ErrStalled once the primary has been silent past
// the heartbeat timeout. On a stop signal it drains whatever frames are
// already buffered — the shipped tail — before returning, so an explicit
// promotion never discards records the primary already handed over.
type Follower struct {
	cfg FollowerConfig

	mu        sync.Mutex
	primary   Counters
	primaryAt time.Time
	connected bool
}

// NewFollower builds a follower over cfg.
func NewFollower(cfg FollowerConfig) *Follower {
	return &Follower{cfg: cfg.withDefaults()}
}

// Primary reports the primary's last-announced position and when it was
// heard. ok is false before the first heartbeat or snapshot.
func (f *Follower) Primary() (at Counters, heard time.Time, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary, f.primaryAt, !f.primaryAt.IsZero()
}

// Connected reports whether a replication connection is currently up.
func (f *Follower) Connected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connected
}

// Run follows the primary until stop closes (returns nil), the primary
// goes silent past the timeout (returns ErrStalled), or an apply callback
// fails (returns that error).
func (f *Follower) Run(stop <-chan struct{}) error {
	cfg := f.cfg
	silence := time.Now().Add(cfg.Timeout)
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err != nil {
			if time.Now().After(silence) {
				return ErrStalled
			}
			cfg.Logf("replica: dial %s: %v (retrying)", cfg.Addr, err)
			if !sleepOrStop(backoff, stop) {
				return nil
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 100 * time.Millisecond
		err = f.stream(conn, stop, &silence)
		conn.Close()
		f.mu.Lock()
		f.connected = false
		f.mu.Unlock()
		switch {
		case errors.Is(err, errStopped):
			return nil
		case errors.Is(err, ErrStalled):
			return ErrStalled
		case err != nil && isFatalApply(err):
			return err
		}
		if time.Now().After(silence) {
			return ErrStalled
		}
		cfg.Logf("replica: connection to %s lost: %v (reconnecting)", cfg.Addr, err)
		if !sleepOrStop(backoff, stop) {
			return nil
		}
	}
}

// applyError marks a callback failure: retrying on a fresh connection
// cannot help, the follower's state is in question.
type applyError struct{ err error }

func (e applyError) Error() string { return e.err.Error() }
func (e applyError) Unwrap() error { return e.err }

func isFatalApply(err error) bool {
	var ae applyError
	return errors.As(err, &ae)
}

// stream runs one connection: raw magic bytes, framed hello, then apply
// frames until the connection breaks, stop closes, or the silence budget
// runs out. Every received frame pushes the budget forward.
func (f *Follower) stream(conn net.Conn, stop <-chan struct{}, silence *time.Time) error {
	cfg := f.cfg
	var have Counters
	if cfg.Have != nil {
		have = cfg.Have()
	}
	hello := AppendHello([]byte{Magic, Version}, have)
	if err := conn.SetWriteDeadline(time.Now().Add(cfg.DialTimeout)); err != nil {
		return err
	}
	if _, err := conn.Write(hello); err != nil {
		return err
	}
	f.mu.Lock()
	f.connected = true
	f.mu.Unlock()

	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, 0, 4<<10)
	for {
		payload, err := f.readFrame(conn, br, &buf, stop, silence)
		if err != nil {
			if errors.Is(err, errStopped) {
				// Drain the shipped tail already sitting in the buffer
				// before acknowledging the stop.
				if derr := f.drainBuffered(br, &buf); derr != nil {
					return derr
				}
			}
			return err
		}
		*silence = time.Now().Add(cfg.Timeout)
		if err := f.dispatch(payload); err != nil {
			return err
		}
	}
}

// readFrame blocks for one frame while watching stop and the silence
// budget. The header wait uses short restartable peeks (Peek never
// consumes, so a deadline there is safe to retry); once a header is seen
// the payload is read with the remaining silence budget as its deadline —
// a primary that dies mid-frame is a stalled primary.
func (f *Follower) readFrame(conn net.Conn, br *bufio.Reader, buf *[]byte, stop <-chan struct{}, silence *time.Time) ([]byte, error) {
	var hdr []byte
	for {
		select {
		case <-stop:
			return nil, errStopped
		default:
		}
		if time.Now().After(*silence) {
			return nil, ErrStalled
		}
		if err := conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond)); err != nil {
			return nil, err
		}
		h, err := br.Peek(4)
		if err == nil {
			hdr = h
			break
		}
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			continue
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("replica: frame length %d exceeds cap %d", n, MaxFrame)
	}
	if err := conn.SetReadDeadline(*silence); err != nil {
		return nil, err
	}
	if _, err := br.Discard(4); err != nil {
		return nil, err
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, ErrStalled
		}
		return nil, err
	}
	return payload, nil
}

// drainBuffered applies every frame already complete in the buffer — the
// records the primary handed over before the stop. No further reads touch
// the connection.
func (f *Follower) drainBuffered(br *bufio.Reader, buf *[]byte) error {
	for {
		if br.Buffered() < 4 {
			return nil
		}
		hdr, err := br.Peek(4)
		if err != nil {
			return nil
		}
		n := int(binary.LittleEndian.Uint32(hdr))
		if n > MaxFrame || br.Buffered() < 4+n {
			return nil
		}
		if _, err := br.Discard(4); err != nil {
			return nil
		}
		if cap(*buf) < n {
			*buf = make([]byte, n)
		}
		payload := (*buf)[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil
		}
		mTailDrained.Inc()
		if err := f.dispatch(payload); err != nil {
			return err
		}
	}
}

// dispatch applies one frame.
func (f *Follower) dispatch(payload []byte) error {
	m, err := ParseMessage(payload)
	if err != nil {
		return err
	}
	switch m.Kind {
	case MsgSnapshot:
		mAppliedSnapshots.Inc()
		if f.cfg.OnSnapshot != nil {
			if err := f.cfg.OnSnapshot(m.Gen, m.Data); err != nil {
				return applyError{fmt.Errorf("replica: apply snapshot gen %d: %w", m.Gen, err)}
			}
		}
	case MsgRecord:
		mAppliedRecords.Inc()
		if f.cfg.OnRecord != nil {
			if err := f.cfg.OnRecord(m.Data); err != nil {
				return applyError{fmt.Errorf("replica: apply record: %w", err)}
			}
		}
	case MsgHeartbeat:
		mHeartbeatsSeen.Inc()
		f.mu.Lock()
		f.primary, f.primaryAt = m.Have, time.Now()
		f.mu.Unlock()
		if f.cfg.OnHeartbeat != nil {
			f.cfg.OnHeartbeat(m.Have)
		}
	default:
		return fmt.Errorf("replica: unexpected message kind 0x%02x from primary", m.Kind)
	}
	return nil
}

// sleepOrStop waits d, returning false if stop closed first.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
