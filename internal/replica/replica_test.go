package replica

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"jarvis/internal/wal"
)

func TestMessageRoundTrips(t *testing.T) {
	have := Counters{Events: 7, Steps: 5, Recs: 3}

	checkFrame := func(name string, frame []byte, want Message) {
		t.Helper()
		if len(frame) < 4 {
			t.Fatalf("%s: frame too short", name)
		}
		m, err := ParseMessage(frame[4:])
		if err != nil {
			t.Fatalf("%s: ParseMessage: %v", name, err)
		}
		if m.Kind != want.Kind || m.Ver != want.Ver || m.Have != want.Have || m.Gen != want.Gen {
			t.Fatalf("%s: got %+v, want %+v", name, m, want)
		}
		if !bytes.Equal(m.Data, want.Data) {
			t.Fatalf("%s: data %q, want %q", name, m.Data, want.Data)
		}
	}

	checkFrame("hello", AppendHello(nil, have),
		Message{Kind: MsgHello, Ver: Version, Have: have})
	checkFrame("snapshot", AppendSnapshot(nil, 42, []byte(`{"q":1}`)),
		Message{Kind: MsgSnapshot, Gen: 42, Data: []byte(`{"q":1}`)})
	checkFrame("record", AppendRecord(nil, []byte("raw-wal-bytes")),
		Message{Kind: MsgRecord, Data: []byte("raw-wal-bytes")})
	checkFrame("heartbeat", AppendHeartbeat(nil, have),
		Message{Kind: MsgHeartbeat, Have: have})
}

func TestParseMessageRejectsDamage(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{0xFF},
		{MsgHello},
		{MsgHello, Version, 1, 2, 3}, // short counters
		{MsgSnapshot, 1, 2, 3},       // short gen
		{MsgHeartbeat, 1},
	}
	for i, b := range bad {
		if _, err := ParseMessage(b); err == nil {
			t.Errorf("case %d (% x): no error", i, b)
		}
	}
}

func TestCountersBehind(t *testing.T) {
	a := Counters{Events: 10, Steps: 8, Recs: 2}
	b := Counters{Events: 12, Steps: 9, Recs: 2}
	if got := a.Behind(b); got != 3 {
		t.Fatalf("Behind = %d, want 3", got)
	}
	if got := b.Behind(a); got != 0 {
		t.Fatalf("ahead position Behind = %d, want 0", got)
	}
}

// shipperFixture runs a Shipper on a listener over a real WAL directory.
type shipperFixture struct {
	t    *testing.T
	dir  string
	log  *wal.Log
	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	snapGen  uint64
	snapData []byte
	counters Counters
}

func newShipperFixture(t *testing.T) *shipperFixture {
	t.Helper()
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fx := &shipperFixture{
		t: t, dir: dir, log: l, ln: ln,
		stop:     make(chan struct{}),
		snapData: []byte("snapshot-v1"),
	}
	sh := NewShipper(ShipperConfig{
		WALDir: dir,
		Snapshot: func() (uint64, []byte, error) {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			fx.snapGen++
			return fx.snapGen, append([]byte(nil), fx.snapData...), nil
		},
		Counters: func() Counters {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			return fx.counters
		},
		HeartbeatEvery: 50 * time.Millisecond,
		Poll:           time.Millisecond,
	})
	fx.wg.Add(1)
	go func() {
		defer fx.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fx.wg.Add(1)
			go func() {
				defer fx.wg.Done()
				defer conn.Close()
				sh.ServeConn(conn, bufio.NewReader(conn), fx.stop)
			}()
		}
	}()
	t.Cleanup(fx.close)
	return fx
}

func (fx *shipperFixture) close() {
	select {
	case <-fx.stop:
	default:
		close(fx.stop)
	}
	fx.ln.Close()
	fx.wg.Wait()
	fx.log.Close()
}

func (fx *shipperFixture) append(t *testing.T, recs ...string) {
	t.Helper()
	fx.mu.Lock()
	fx.counters.Events += len(recs)
	fx.mu.Unlock()
	for _, r := range recs {
		if err := fx.log.Append([]byte(r)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

// followerSink collects what a Follower applies.
type followerSink struct {
	mu        sync.Mutex
	snapshots []string
	records   []string
	beats     int
}

func (s *followerSink) config(addr string, timeout time.Duration) FollowerConfig {
	return FollowerConfig{
		Addr:    addr,
		Timeout: timeout,
		Have:    func() Counters { return Counters{} },
		OnSnapshot: func(gen uint64, data []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.snapshots = append(s.snapshots, string(data))
			return nil
		},
		OnRecord: func(rec []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.records = append(s.records, string(rec))
			return nil
		},
		OnHeartbeat: func(Counters) {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.beats++
		},
	}
}

func (s *followerSink) counts() (snaps, recs, beats int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snapshots), len(s.records), s.beats
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestShipperStreamsSnapshotThenRecords(t *testing.T) {
	fx := newShipperFixture(t)
	fx.append(t, "rec-0", "rec-1", "rec-2")

	var sink followerSink
	f := NewFollower(sink.config(fx.ln.Addr().String(), 5*time.Second))
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- f.Run(stop) }()

	waitFor(t, "initial snapshot + 3 records", func() bool {
		snaps, recs, _ := sink.counts()
		return snaps >= 1 && recs >= 3
	})
	fx.append(t, "rec-3")
	waitFor(t, "live record", func() bool { _, recs, _ := sink.counts(); return recs >= 4 })
	waitFor(t, "heartbeat", func() bool { _, _, beats := sink.counts(); return beats >= 1 })
	waitFor(t, "primary position", func() bool {
		at, _, ok := f.Primary()
		return ok && at.Events == 4
	})

	sink.mu.Lock()
	got := append([]string(nil), sink.records...)
	sink.mu.Unlock()
	for i, want := range []string{"rec-0", "rec-1", "rec-2", "rec-3"} {
		if got[i] != want {
			t.Fatalf("record %d = %q, want %q", i, got[i], want)
		}
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("Run after stop: %v", err)
	}
}

func TestShipperResendsSnapshotAfterReset(t *testing.T) {
	fx := newShipperFixture(t)
	fx.append(t, "epoch1-a", "epoch1-b")

	var sink followerSink
	f := NewFollower(sink.config(fx.ln.Addr().String(), 5*time.Second))
	stop := make(chan struct{})
	defer close(stop)
	go f.Run(stop)

	waitFor(t, "first epoch", func() bool { _, recs, _ := sink.counts(); return recs >= 2 })

	// Checkpoint barrier on the primary: snapshot contents change, WAL
	// resets. The follower must see a second snapshot, then the new epoch.
	fx.mu.Lock()
	fx.snapData = []byte("snapshot-v2")
	fx.mu.Unlock()
	if err := fx.log.Reset(); err != nil {
		t.Fatal(err)
	}
	fx.append(t, "epoch2-a")

	waitFor(t, "post-barrier snapshot and record", func() bool {
		snaps, recs, _ := sink.counts()
		return snaps >= 2 && recs >= 3
	})
	sink.mu.Lock()
	lastSnap := sink.snapshots[len(sink.snapshots)-1]
	lastRec := sink.records[len(sink.records)-1]
	sink.mu.Unlock()
	if lastSnap != "snapshot-v2" {
		t.Fatalf("post-barrier snapshot = %q, want snapshot-v2", lastSnap)
	}
	if lastRec != "epoch2-a" {
		t.Fatalf("post-barrier record = %q, want epoch2-a", lastRec)
	}
}

func TestFollowerStallsWhenPrimaryDies(t *testing.T) {
	fx := newShipperFixture(t)
	fx.append(t, "rec-0")

	var sink followerSink
	f := NewFollower(sink.config(fx.ln.Addr().String(), 600*time.Millisecond))
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan error, 1)
	go func() { done <- f.Run(stop) }()
	waitFor(t, "record applied", func() bool { _, recs, _ := sink.counts(); return recs >= 1 })

	// Kill the primary: stop shipping and refuse reconnects.
	fx.close()

	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("Run = %v, want ErrStalled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("follower never detected the dead primary")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stall detection took %v", elapsed)
	}
}

func TestFollowerReconnectsAfterConnectionLoss(t *testing.T) {
	fx := newShipperFixture(t)
	fx.append(t, "rec-0")

	var sink followerSink
	f := NewFollower(sink.config(fx.ln.Addr().String(), 10*time.Second))
	stop := make(chan struct{})
	defer close(stop)
	go f.Run(stop)
	waitFor(t, "first connection", func() bool { _, recs, _ := sink.counts(); return recs >= 1 })

	// Tear the connection only: the listener stays up, so the follower
	// reconnects, gets a fresh snapshot, and re-applies the stream
	// (idempotence is the applier's concern; here we just count).
	fx.mu.Lock()
	fx.counters = Counters{Events: 1}
	fx.mu.Unlock()

	// Closing every accepted conn is awkward from the fixture; instead
	// append and verify continuity through whatever connection exists.
	fx.append(t, "rec-1")
	waitFor(t, "second record", func() bool { _, recs, _ := sink.counts(); return recs >= 2 })
	if !f.Connected() {
		t.Fatal("follower not connected")
	}
}

func BenchmarkAppendRecordFrame(b *testing.B) {
	rec := bytes.Repeat([]byte("x"), 64)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], rec)
	}
	_ = fmt.Sprint(len(buf))
}
