package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"jarvis/internal/wal"
	"jarvis/internal/wire"
)

// activeFollowers backs the replica.followers.active gauge across every
// shipper in the process.
var activeFollowers atomic.Int64

// peerHost labels a follower by its host, not host:port — reconnects (new
// ephemeral port) keep writing the same series instead of minting one per
// connection.
func peerHost(addr net.Addr) string {
	s := addr.String()
	if host, _, err := net.SplitHostPort(s); err == nil {
		return host
	}
	return s
}

// ShipperConfig wires a Shipper to the primary daemon.
type ShipperConfig struct {
	// WALDir is the primary's live journal directory, tailed with
	// wal.OpenTail.
	WALDir string
	// Snapshot serializes the primary's current state under its own lock:
	// generation number plus the same snapshot bytes a checkpoint save
	// would persist. Called once per connection and again after every WAL
	// reset (checkpoint barrier).
	Snapshot func() (gen uint64, data []byte, err error)
	// Counters reports the primary's journalled position, stamped into
	// heartbeats.
	Counters func() Counters
	// HeartbeatEvery is the idle beacon cadence (default 500ms).
	HeartbeatEvery time.Duration
	// Poll is the tail's catch-up sleep at the live tip (default 5ms).
	Poll time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 5 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Shipper streams the primary's WAL to one follower per connection: an
// initial snapshot, then every journalled record in order, with heartbeats
// whenever the stream goes idle and a fresh snapshot after every
// checkpoint barrier. Stateless across connections — each ServeConn
// re-seeds the follower from a snapshot, and the follower's stale-record
// dedup absorbs the overlap.
type Shipper struct {
	cfg ShipperConfig
}

// NewShipper builds a shipper over cfg.
func NewShipper(cfg ShipperConfig) *Shipper {
	return &Shipper{cfg: cfg.withDefaults()}
}

// ServeConn drives one replication connection: consume the two raw magic
// bytes (the caller only peeked the first to pick this codec), read the
// framed hello, send a snapshot, then tail the WAL until the connection
// breaks or stop closes. br is the buffered reader the caller peeked the
// magic from.
func (sh *Shipper) ServeConn(conn net.Conn, br *bufio.Reader, stop <-chan struct{}) error {
	cfg := sh.cfg
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	var raw [2]byte
	if _, err := io.ReadFull(br, raw[:]); err != nil {
		return fmt.Errorf("replica: read magic: %w", err)
	}
	if raw[0] != Magic || raw[1] != Version {
		return fmt.Errorf("replica: bad magic/version % x", raw)
	}
	rd := wire.NewReaderSize(br, MaxFrame)
	payload, err := rd.ReadFrame()
	if err != nil {
		return fmt.Errorf("replica: read hello: %w", err)
	}
	hello, err := ParseMessage(payload)
	if err != nil {
		return err
	}
	if hello.Kind != MsgHello {
		return fmt.Errorf("replica: expected hello, got kind 0x%02x", hello.Kind)
	}
	if hello.Ver != Version {
		return fmt.Errorf("replica: protocol version %d, want %d", hello.Ver, Version)
	}
	// Nothing further is expected from the follower; the stream is ours.
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	mFollowerConns.Inc()
	mFollowersActive.SetInt(activeFollowers.Add(1))
	defer func() { mFollowersActive.SetInt(activeFollowers.Add(-1)) }()
	// Per-peer children resolve once here; the stream loop below only
	// touches the returned handles. Lag is the primary's view of this
	// stream: its own journalled position minus what the snapshot plus the
	// shipped records already cover, refreshed on the heartbeat cadence
	// and zeroed when the stream ends.
	peer := peerHost(conn.RemoteAddr())
	pRecords := mPeerRecords.With(peer)
	pLag := mPeerLag.With(peer)
	defer pLag.Set(0)
	var covered, shipped int
	cfg.Logf("replica: follower %s connected at position %+v", conn.RemoteAddr(), hello.Have)

	buf := make([]byte, 0, 4<<10)
	write := func(b []byte) error {
		if err := conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout)); err != nil {
			return err
		}
		_, err := conn.Write(b)
		return err
	}
	sendSnapshot := func() error {
		gen, data, err := cfg.Snapshot()
		if err != nil {
			return fmt.Errorf("replica: snapshot: %w", err)
		}
		covered, shipped = cfg.Counters().Total(), 0
		mShippedSnapshots.Inc()
		return write(AppendSnapshot(buf[:0], gen, data))
	}

	if err := sendSnapshot(); err != nil {
		return err
	}
	tail := wal.OpenTail(cfg.WALDir)
	defer tail.Close()
	lastBeat := time.Now()
	timer := time.NewTimer(cfg.Poll)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		// Heartbeats flow on cadence even while records stream: they carry
		// the primary's position, which is what the follower's lag gauge
		// measures against.
		if time.Since(lastBeat) >= cfg.HeartbeatEvery {
			at := cfg.Counters()
			if err := write(AppendHeartbeat(buf[:0], at)); err != nil {
				return err
			}
			mHeartbeatsSent.Inc()
			if lag := at.Total() - covered - shipped; lag > 0 {
				pLag.SetInt(int64(lag))
			} else {
				pLag.Set(0)
			}
			lastBeat = time.Now()
		}
		rec, err := tail.Next()
		switch {
		case err == nil:
			if err := write(AppendRecord(buf[:0], rec)); err != nil {
				return err
			}
			mShippedRecords.Inc()
			pRecords.Inc()
			shipped++
		case errors.Is(err, wal.ErrLogReset):
			// Checkpoint barrier on the primary: re-seed the follower so it
			// can mirror the barrier, then keep tailing the fresh log.
			if err := sendSnapshot(); err != nil {
				return err
			}
		case errors.Is(err, wal.ErrNoRecord):
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(cfg.Poll)
			select {
			case <-stop:
				return nil
			case <-timer.C:
			}
		default:
			return err
		}
	}
}
