package replica

import "jarvis/internal/telemetry"

// Metric handles, resolved once at init. The shipper side counts what the
// primary sent; the applied/seen counters are the follower's view. Both
// report into the Default registry so one /metrics scrape covers either
// role.
var (
	mFollowerConns    = telemetry.Default.Counter("replica.follower.conns")
	mFollowersActive  = telemetry.Default.Gauge("replica.followers.active")
	mShippedSnapshots = telemetry.Default.Counter("replica.shipped.snapshots")
	mShippedRecords   = telemetry.Default.Counter("replica.shipped.records")
	mHeartbeatsSent   = telemetry.Default.Counter("replica.heartbeats.sent")

	// Per-follower families, labeled by the peer's host. Children are
	// resolved once per connection in ServeConn, so the stream loop's
	// per-record cost is one extra atomic add. Two followers on the same
	// host share a series; reconnects reuse it (the label deliberately
	// omits the ephemeral port so a flapping follower cannot burn the
	// vec's cardinality cap).
	mPeerRecords = telemetry.Default.CounterVec("replica.peer.records", "peer")
	mPeerLag     = telemetry.Default.GaugeVec("replica.peer.lag.records", "peer")

	mAppliedSnapshots = telemetry.Default.Counter("replica.applied.snapshots")
	mAppliedRecords   = telemetry.Default.Counter("replica.applied.records")
	mHeartbeatsSeen   = telemetry.Default.Counter("replica.heartbeats.seen")
	mTailDrained      = telemetry.Default.Counter("replica.tail.drained")
)
