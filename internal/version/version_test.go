package version

import (
	"strings"
	"testing"
)

// Test binaries carry no VCS stamp, so both helpers exercise their
// fallback paths: Revision is empty and String degrades to "devel".
func TestFallbacks(t *testing.T) {
	if rev := Revision(); rev != "" && strings.ContainsAny(rev, " \t\n") {
		t.Errorf("Revision() = %q, want a bare hash or empty", rev)
	}
	s := String()
	if s == "" {
		t.Error("String() must never be empty")
	}
	if Revision() == "" && s != "devel" {
		t.Errorf("String() without a VCS stamp = %q, want devel", s)
	}
}
