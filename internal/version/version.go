// Package version exposes the build's VCS identity from the embedded Go
// build info. Bench artifacts stamp it so a trajectory of BENCH_*.json
// files is orderable by the exact source revision that produced each one,
// and jarvisd reports it in jarvisd.build.info.
package version

import "runtime/debug"

// Revision returns the full VCS revision the binary was built from, with
// a "-dirty" suffix when the working tree had local modifications. Empty
// when the build carries no VCS stamp (e.g. `go test` binaries or builds
// outside a repository).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + dirty
}

// String derives a git-describe-style version: the module version when
// released, else the short revision with a devel prefix, else "devel".
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	rev := Revision()
	if rev == "" {
		return "devel"
	}
	// Trim to the short hash but keep any -dirty suffix.
	var dirty string
	if n := len(rev); n > len("-dirty") && rev[n-len("-dirty"):] == "-dirty" {
		rev, dirty = rev[:n-len("-dirty")], "-dirty"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return "devel+" + rev + dirty
}
