package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpState},
		{Op: OpEvent, Device: 7, Action: 2},
		{Op: OpEvent, Device: 65535, Action: -1},
		{Op: OpRecommend},
		{Op: OpLearnState},
	}
	var buf []byte
	for _, want := range reqs {
		buf = AppendRequest(buf[:0], want)
		if n := binary.LittleEndian.Uint32(buf); int(n) != len(buf)-4 {
			t.Fatalf("frame length %d, payload %d", n, len(buf)-4)
		}
		got, err := ParseRequest(buf[4:])
		if err != nil {
			t.Fatalf("ParseRequest(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v → %+v", want, got)
		}
	}
	if _, err := ParseRequest(buf[4:6]); err == nil {
		t.Fatal("short request payload accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Flags: FlagOK, Minute: 1439, Violations: 3, Degraded: 2, Q: 1.25},
		{Flags: FlagOK | FlagUnsafe, State: []uint8{0, 1, 2, 3}, Minute: 7},
		{Flags: FlagOK, Action: []int16{-1, 2, -1, 0}, Q: math.Inf(1)},
		{Flags: FlagBusy, RetryAfterMs: 250, Err: []byte("overloaded")},
		{Flags: FlagOK | FlagHasLearn, ReplaySize: 9, Events: 8, OnlineSteps: 7,
			LearnSteps: 6, Recommends: 5, QSum: []byte("abc123")},
		{Err: []byte("unknown op")},
	}
	var buf []byte
	var got Response
	for _, want := range cases {
		buf = AppendResponse(buf[:0], &want)
		if err := got.Decode(buf[4:]); err != nil {
			t.Fatalf("Decode(%+v): %v", want, err)
		}
		if got.OK() != (want.Flags&FlagOK != 0) || got.Unsafe() != (want.Flags&FlagUnsafe != 0) ||
			got.Busy() != (want.Flags&FlagBusy != 0) {
			t.Fatalf("flag round trip %+v → %+v", want, got)
		}
		if got.Minute != want.Minute || got.Violations != want.Violations ||
			got.Degraded != want.Degraded || got.RetryAfterMs != want.RetryAfterMs {
			t.Fatalf("counter round trip %+v → %+v", want, got)
		}
		if math.Float64bits(got.Q) != math.Float64bits(want.Q) {
			t.Fatalf("q round trip %v → %v", want.Q, got.Q)
		}
		if !bytes.Equal(got.State, want.State) && len(want.State) > 0 {
			t.Fatalf("state round trip %v → %v", want.State, got.State)
		}
		if len(want.Action) > 0 {
			if len(got.Action) != len(want.Action) {
				t.Fatalf("action round trip %v → %v", want.Action, got.Action)
			}
			for i := range want.Action {
				if got.Action[i] != want.Action[i] {
					t.Fatalf("action round trip %v → %v", want.Action, got.Action)
				}
			}
		}
		if got.ReplaySize != want.ReplaySize || got.Events != want.Events ||
			got.OnlineSteps != want.OnlineSteps || got.LearnSteps != want.LearnSteps ||
			got.Recommends != want.Recommends || !bytes.Equal(got.QSum, want.QSum) {
			t.Fatalf("learnstate round trip %+v → %+v", want, got)
		}
		if !bytes.Equal(got.Err, want.Err) {
			t.Fatalf("err round trip %q → %q", want.Err, got.Err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := AppendResponse(nil, &Response{
		Flags: FlagOK | FlagHasLearn, State: []uint8{1, 2}, Action: []int16{-1, 3},
		QSum: []byte("xyz"), Err: []byte("e"),
	})
	payload := full[4:]
	var r Response
	if err := r.Decode(payload); err != nil {
		t.Fatalf("full payload rejected: %v", err)
	}
	for n := 0; n < len(payload); n++ {
		if err := r.Decode(payload[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(payload))
		}
	}
	if err := r.Decode(append(append([]byte{}, payload...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestEncodeDecodeAllocationFree pins the steady-state exchange at zero
// allocations on both sides once buffers are warm.
func TestEncodeDecodeAllocationFree(t *testing.T) {
	req := Request{Op: OpEvent, Device: 3, Action: 1}
	resp := Response{
		Flags: FlagOK, Minute: 612, Violations: 2, Q: 3.5,
		State: []uint8{0, 1, 0, 2}, Action: []int16{-1, 1, -1, -1},
	}
	buf := make([]byte, 0, 256)
	out := make([]byte, 0, 256)
	var decoded Response
	out = AppendResponse(out[:0], &resp)
	if err := decoded.Decode(out[4:]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendRequest(buf[:0], req)
		if _, err := ParseRequest(buf[4:]); err != nil {
			t.Fatal(err)
		}
		out = AppendResponse(out[:0], &resp)
		if err := decoded.Decode(out[4:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode/decode allocates %.1f objects per exchange, want 0", allocs)
	}
}

func TestReaderFrames(t *testing.T) {
	var stream []byte
	stream = AppendRequest(stream, Request{Op: OpState})
	stream = AppendRequest(stream, Request{Op: OpRecommend})
	r := NewReader(bytes.NewReader(stream))
	for _, wantOp := range []uint8{OpState, OpRecommend} {
		p, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		req, err := ParseRequest(p)
		if err != nil || req.Op != wantOp {
			t.Fatalf("frame = %+v, %v; want op %d", req, err, wantOp)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("EOF not surfaced: %v", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr, MaxFrame+1)
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReaderPartialFrame(t *testing.T) {
	full := AppendRequest(nil, Request{Op: OpState})
	r := NewReader(bytes.NewReader(full[:len(full)-1]))
	if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial frame: %v, want ErrUnexpectedEOF", err)
	}
}

// TestTryReadFrame pins the coalescing contract: only frames fully
// buffered are returned, and a partial tail never blocks.
func TestTryReadFrame(t *testing.T) {
	var stream []byte
	for i := 0; i < 3; i++ {
		stream = AppendRequest(stream, Request{Op: OpRecommend, Device: uint16(i)})
	}
	partial := AppendRequest(nil, Request{Op: OpState})
	stream = append(stream, partial[:5]...) // header + 1 byte of a 4th frame

	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		srv.Write(stream)
	}()
	r := NewReader(cli)
	// Block for the first frame, then drain the rest without blocking.
	p, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if req, _ := ParseRequest(p); req.Device != 0 {
		t.Fatalf("first frame device = %d", req.Device)
	}
	// net.Pipe is synchronous: the writer's single Write has landed in the
	// buffer along with frame 1 (one Read drains the whole chunk).
	got := 1
	for {
		p, ok, err := r.TryReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		req, err := ParseRequest(p)
		if err != nil || int(req.Device) != got {
			t.Fatalf("frame %d = %+v, %v", got, req, err)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d frames, want 3 (partial 4th must not be returned)", got)
	}
}

// TestClientHandshake exercises both ends of negotiation: a conforming
// server acks and serves, a JSON-only server (which just closes on binary
// bytes) surfaces as a handshake error the caller can fall back on.
func TestClientHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hs := make([]byte, 2)
		if _, err := io.ReadFull(conn, hs); err != nil || hs[0] != Magic || hs[1] != Version {
			return
		}
		conn.Write(AppendAck(nil))
		r := NewReader(conn)
		p, err := r.ReadFrame()
		if err != nil {
			return
		}
		req, err := ParseRequest(p)
		if err != nil || req.Op != OpViolations {
			return
		}
		conn.Write(AppendResponse(nil, &Response{Flags: FlagOK, Violations: 42}))
	}()
	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	resp, err := c.Do(Request{Op: OpViolations})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !resp.OK() || resp.Violations != 42 {
		t.Fatalf("response = %+v", resp)
	}
}

func TestClientHandshakeDowngrade(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// An old JSON daemon: the decoder chokes on 0xB7 and the handler
		// closes the connection without writing anything.
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		io.ReadAll(io.LimitReader(conn, 2))
		conn.Close()
	}()
	if _, err := Dial(ln.Addr().String(), 2*time.Second); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("handshake against a JSON-only daemon = %v, want ErrNotBinary", err)
	}
}

// TestClientDoBatch pipelines a burst through one write and drains every
// response, the way the load generator exercises batch scoring.
func TestClientDoBatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hs := make([]byte, 2)
		if _, err := io.ReadFull(conn, hs); err != nil {
			return
		}
		conn.Write(AppendAck(nil))
		r := NewReader(conn)
		var n int
		var out []byte
		for {
			p, err := r.ReadFrame()
			if err != nil {
				return
			}
			if _, err := ParseRequest(p); err != nil {
				return
			}
			n++
			out = AppendResponse(out[:0], &Response{Flags: FlagOK, Violations: n})
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()
	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	resp, err := c.DoBatch(Request{Op: OpViolations}, 8)
	if err != nil {
		t.Fatalf("DoBatch: %v", err)
	}
	// The returned response is the last of the burst.
	if !resp.OK() || resp.Violations != 8 {
		t.Fatalf("response = %+v", resp)
	}
}
