// Package wire is jarvisd's binary serving protocol: length-prefixed
// little-endian frames negotiated by a two-byte handshake, designed so the
// steady-state recommend exchange allocates nothing on either side.
//
// Negotiation: a binary client opens with {Magic, Version} — Magic (0xB7)
// can never begin a JSON-lines request ('{' is 0x7B), so the daemon peeks
// one byte to pick the codec and old JSON clients are untouched. The
// daemon acknowledges with a frame carrying the same two bytes; a client
// that does not receive the ack (an old daemon kills the connection when
// JSON decoding hits 0xB7) redials and speaks JSON instead.
//
// Framing: every subsequent message is a u32 little-endian payload length
// followed by the payload, capped at MaxFrame. Requests are a fixed
// 5-byte payload; responses are a fixed header plus optional sections
// gated by flag bits. Device states and actions travel as numeric IDs —
// both ends own the same FSM product, so the client renders names locally
// and the daemon's hot path never formats a string.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	// Magic is the first byte a binary client sends; distinct from '{' so
	// the daemon can tell the codecs apart with a one-byte peek.
	Magic = 0xB7
	// Version is the protocol revision; bumped on layout changes. The
	// handshake pins it, so both ends of a connection always agree.
	Version = 1
	// MaxFrame caps one frame's payload, bounding what a malformed or
	// hostile length prefix can make either side allocate.
	MaxFrame = 1 << 16
)

// Request ops, mirroring the JSON protocol's op strings.
const (
	OpState      = 1
	OpEvent      = 2
	OpRecommend  = 3
	OpViolations = 4
	OpCheckpoint = 5
	OpLearnState = 6
)

// Response flag bits. Section flags gate the optional payload blocks that
// follow the fixed header, in flag-bit order.
const (
	FlagOK        = 1 << 0
	FlagUnsafe    = 1 << 1
	FlagBusy      = 1 << 2
	FlagHasState  = 1 << 3
	FlagHasAction = 1 << 4
	FlagHasLearn  = 1 << 5
	FlagHasErr    = 1 << 6
)

// reqPayloadLen is the fixed request payload: op u8, device u16, action
// i16.
const reqPayloadLen = 5

// respHeaderLen is the fixed response header: flags u8, minute u16,
// violations u32, degraded u32, retryAfterMs u32, q f64.
const respHeaderLen = 1 + 2 + 4 + 4 + 4 + 8

// Request is one client message. Device and Action are numeric: the
// environment's device index and the device-local action ID (event op
// only; zero otherwise).
type Request struct {
	Op     uint8
	Device uint16
	Action int16
}

// Response is one daemon message, mirroring the JSON response field for
// field but with states and actions as IDs. State, Action, QSum, and Err
// alias or reuse decode buffers — valid until the next decode on the same
// Response / Reader.
type Response struct {
	Flags        uint8
	Minute       int
	Violations   int
	Degraded     int
	RetryAfterMs int
	Q            float64
	State        []uint8 // per-device StateID, when FlagHasState
	Action       []int16 // per-device ActionID (-1 = no action), when FlagHasAction
	// learnstate block, when FlagHasLearn.
	ReplaySize  int
	Events      int
	OnlineSteps int
	LearnSteps  int
	Recommends  int
	QSum        []byte
	Err         []byte // when FlagHasErr
}

// OK reports whether the daemon accepted the request.
func (r *Response) OK() bool { return r.Flags&FlagOK != 0 }

// Unsafe reports whether an applied event was flagged by P_safe.
func (r *Response) Unsafe() bool { return r.Flags&FlagUnsafe != 0 }

// Busy reports an admission-control rejection; retry after RetryAfterMs.
func (r *Response) Busy() bool { return r.Flags&FlagBusy != 0 }

// AppendHandshake appends the two-byte client hello.
func AppendHandshake(dst []byte) []byte {
	return append(dst, Magic, Version)
}

// AppendAck appends the daemon's handshake acknowledgment — a regular
// frame whose payload repeats {Magic, Version}.
func AppendAck(dst []byte) []byte {
	return append(dst, 2, 0, 0, 0, Magic, Version)
}

// IsAck reports whether an ack frame payload confirms this protocol
// version.
func IsAck(payload []byte) bool {
	return len(payload) == 2 && payload[0] == Magic && payload[1] == Version
}

// AppendRequest appends one framed request to dst and returns the
// extended slice. Append-style so callers reuse one buffer across
// requests — zero allocations at steady state.
func AppendRequest(dst []byte, req Request) []byte {
	dst = le32(dst, reqPayloadLen)
	dst = append(dst, req.Op)
	dst = le16(dst, req.Device)
	dst = le16(dst, uint16(req.Action))
	return dst
}

// ParseRequest decodes one request payload (the frame body, length prefix
// already stripped).
func ParseRequest(payload []byte) (Request, error) {
	if len(payload) != reqPayloadLen {
		return Request{}, fmt.Errorf("wire: request payload is %d bytes, want %d", len(payload), reqPayloadLen)
	}
	return Request{
		Op:     payload[0],
		Device: binary.LittleEndian.Uint16(payload[1:]),
		Action: int16(binary.LittleEndian.Uint16(payload[3:])),
	}, nil
}

// AppendResponse appends one framed response to dst and returns the
// extended slice. Optional sections are emitted in flag-bit order; the
// section flags are derived from the populated slices and counters, so
// callers only fill fields.
func AppendResponse(dst []byte, r *Response) []byte {
	flags := r.Flags &^ (FlagHasState | FlagHasAction | FlagHasErr)
	if r.State != nil {
		flags |= FlagHasState
	}
	if r.Action != nil {
		flags |= FlagHasAction
	}
	if r.Err != nil {
		flags |= FlagHasErr
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	dst = append(dst, flags)
	dst = le16(dst, uint16(r.Minute))
	dst = le32(dst, uint32(r.Violations))
	dst = le32(dst, uint32(r.Degraded))
	dst = le32(dst, uint32(r.RetryAfterMs))
	dst = le64(dst, math.Float64bits(r.Q))
	if flags&FlagHasState != 0 {
		dst = append(dst, uint8(len(r.State)))
		dst = append(dst, r.State...)
	}
	if flags&FlagHasAction != 0 {
		dst = append(dst, uint8(len(r.Action)))
		for _, a := range r.Action {
			dst = le16(dst, uint16(a))
		}
	}
	if flags&FlagHasLearn != 0 {
		dst = le32(dst, uint32(r.ReplaySize))
		dst = le32(dst, uint32(r.Events))
		dst = le32(dst, uint32(r.OnlineSteps))
		dst = le32(dst, uint32(r.LearnSteps))
		dst = le32(dst, uint32(r.Recommends))
		dst = le16(dst, uint16(len(r.QSum)))
		dst = append(dst, r.QSum...)
	}
	if flags&FlagHasErr != 0 {
		dst = le16(dst, uint16(len(r.Err)))
		dst = append(dst, r.Err...)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// Decode parses one response payload into r. State, QSum, and Err alias
// payload; Action reuses r's slice capacity — no allocations once the
// Response has served a same-shape decode.
func (r *Response) Decode(payload []byte) error {
	if len(payload) < respHeaderLen {
		return fmt.Errorf("wire: response payload is %d bytes, want at least %d", len(payload), respHeaderLen)
	}
	r.Flags = payload[0]
	r.Minute = int(binary.LittleEndian.Uint16(payload[1:]))
	r.Violations = int(binary.LittleEndian.Uint32(payload[3:]))
	r.Degraded = int(binary.LittleEndian.Uint32(payload[7:]))
	r.RetryAfterMs = int(binary.LittleEndian.Uint32(payload[11:]))
	r.Q = math.Float64frombits(binary.LittleEndian.Uint64(payload[15:]))
	r.State, r.Err, r.QSum = nil, nil, nil
	r.Action = r.Action[:0]
	r.ReplaySize, r.Events, r.OnlineSteps, r.LearnSteps, r.Recommends = 0, 0, 0, 0, 0
	p := payload[respHeaderLen:]
	var err error
	if r.Flags&FlagHasState != 0 {
		if r.State, p, err = section8(p); err != nil {
			return err
		}
	}
	if r.Flags&FlagHasAction != 0 {
		if len(p) < 1 {
			return errTruncated
		}
		n := int(p[0])
		p = p[1:]
		if len(p) < 2*n {
			return errTruncated
		}
		for i := 0; i < n; i++ {
			r.Action = append(r.Action, int16(binary.LittleEndian.Uint16(p[2*i:])))
		}
		p = p[2*n:]
	}
	if r.Flags&FlagHasLearn != 0 {
		if len(p) < 22 {
			return errTruncated
		}
		r.ReplaySize = int(binary.LittleEndian.Uint32(p[0:]))
		r.Events = int(binary.LittleEndian.Uint32(p[4:]))
		r.OnlineSteps = int(binary.LittleEndian.Uint32(p[8:]))
		r.LearnSteps = int(binary.LittleEndian.Uint32(p[12:]))
		r.Recommends = int(binary.LittleEndian.Uint32(p[16:]))
		n := int(binary.LittleEndian.Uint16(p[20:]))
		p = p[22:]
		if len(p) < n {
			return errTruncated
		}
		r.QSum, p = p[:n], p[n:]
	}
	if r.Flags&FlagHasErr != 0 {
		if len(p) < 2 {
			return errTruncated
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return errTruncated
		}
		r.Err, p = p[:n], p[n:]
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after response", len(p))
	}
	return nil
}

var errTruncated = fmt.Errorf("wire: truncated response section")

// section8 parses a u8-counted byte section, returning it and the rest.
func section8(p []byte) (sec, rest []byte, err error) {
	if len(p) < 1 {
		return nil, nil, errTruncated
	}
	n := int(p[0])
	p = p[1:]
	if len(p) < n {
		return nil, nil, errTruncated
	}
	return p[:n], p[n:], nil
}

func le16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Reader reads frames off a buffered stream. ReadFrame blocks for a whole
// frame; TryReadFrame drains only frames already sitting in the buffer —
// the coalescing primitive the daemon batches with. Both return a payload
// slice owned by the Reader, valid until the next call.
type Reader struct {
	br  *bufio.Reader
	buf []byte
	max int
}

// NewReader wraps r. If r is already a *bufio.Reader it is used directly
// (the daemon hands over the reader it peeked the codec byte from).
func NewReader(r io.Reader) *Reader {
	return NewReaderSize(r, MaxFrame)
}

// NewReaderSize is NewReader with a custom frame cap for protocols layered
// on the same framing whose payloads outgrow MaxFrame (the replication
// stream ships whole checkpoint snapshots in one frame).
func NewReaderSize(r io.Reader, max int) *Reader {
	if max <= 0 {
		max = MaxFrame
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 32<<10)
	}
	return &Reader{br: br, max: max}
}

// Buffered returns how many bytes are already readable without I/O.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadFrame blocks until one whole frame arrives and returns its payload.
func (r *Reader) ReadFrame() ([]byte, error) {
	hdr, err := r.br.Peek(4)
	if err != nil {
		return nil, err
	}
	n, err := r.frameLen(hdr)
	if err != nil {
		return nil, err
	}
	if _, err := r.br.Discard(4); err != nil {
		return nil, err
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// TryReadFrame returns the next frame only if it is already complete in
// the buffer — it never blocks on the connection. ok is false when no
// complete frame is buffered.
func (r *Reader) TryReadFrame() (payload []byte, ok bool, err error) {
	if r.br.Buffered() < 4 {
		return nil, false, nil
	}
	hdr, err := r.br.Peek(4)
	if err != nil {
		return nil, false, err
	}
	n, err := r.frameLen(hdr)
	if err != nil {
		return nil, false, err
	}
	if r.br.Buffered() < 4+n {
		return nil, false, nil
	}
	if _, err := r.br.Discard(4); err != nil {
		return nil, false, err
	}
	full, err := r.br.Peek(n)
	if err != nil {
		return nil, false, err
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	copy(buf, full)
	if _, err := r.br.Discard(n); err != nil {
		return nil, false, err
	}
	return buf, true, nil
}

func (r *Reader) frameLen(hdr []byte) (int, error) {
	n := binary.LittleEndian.Uint32(hdr)
	max := r.max
	if max == 0 {
		max = MaxFrame
	}
	if n > uint32(max) {
		return 0, fmt.Errorf("wire: frame length %d exceeds cap %d", n, max)
	}
	return int(n), nil
}

// AppendFrame appends one length-prefixed frame carrying payload — the
// write-side primitive shared by every protocol on this framing.
func AppendFrame(dst, payload []byte) []byte {
	dst = le32(dst, uint32(len(payload)))
	return append(dst, payload...)
}
