package wire

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrNotBinary reports that the daemon on the other end never acked the
// binary handshake — almost always an older JSON-only daemon that killed
// the connection when its decoder met the magic byte. It is a protocol
// answer, not a transient fault: callers should fall back to JSON rather
// than retry.
var ErrNotBinary = errors.New("daemon does not speak the binary wire protocol")

// Client is a binary-protocol connection to jarvisd. It owns one encode
// buffer and one Response, reused across calls, so a steady-state
// request/response exchange performs zero allocations.
type Client struct {
	conn    net.Conn
	r       *Reader
	timeout time.Duration
	buf     []byte
	resp    Response
}

// Dial connects to addr, performs the binary handshake, and returns a
// Client. A daemon that does not speak the binary protocol (an old JSON
// daemon kills the connection when its JSON decoder meets the magic byte)
// surfaces as an error here — callers fall back to dialing JSON.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, timeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the binary handshake over an existing connection.
func NewClient(conn net.Conn, timeout time.Duration) (*Client, error) {
	c := &Client{conn: conn, r: NewReader(conn), timeout: timeout}
	if err := c.deadline(); err != nil {
		return nil, err
	}
	if _, err := conn.Write(AppendHandshake(c.buf[:0])); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	ack, err := c.r.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("wire: %w (no ack: %v)", ErrNotBinary, err)
	}
	if !IsAck(ack) {
		return nil, fmt.Errorf("wire: %w (bad ack, %d bytes)", ErrNotBinary, len(ack))
	}
	return c, nil
}

// Do sends one request and decodes the daemon's response. The returned
// Response is owned by the Client and valid until the next Do.
func (c *Client) Do(req Request) (*Response, error) {
	if err := c.deadline(); err != nil {
		return nil, err
	}
	c.buf = AppendRequest(c.buf[:0], req)
	if _, err := c.conn.Write(c.buf); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	payload, err := c.r.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	if err := c.resp.Decode(payload); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// DoBatch pipelines n copies of req in one write and drains the n
// responses, returning the last. The daemon's serve loop coalesces the
// burst into shared batch evaluations, so this is the high-throughput
// scoring call: one syscall pair and one policy evaluation amortized
// over n answers. Like Do, the returned Response is owned by the Client.
func (c *Client) DoBatch(req Request, n int) (*Response, error) {
	if n < 1 {
		n = 1
	}
	if err := c.deadline(); err != nil {
		return nil, err
	}
	c.buf = c.buf[:0]
	for i := 0; i < n; i++ {
		c.buf = AppendRequest(c.buf, req)
	}
	if _, err := c.conn.Write(c.buf); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	for i := 0; i < n; i++ {
		payload, err := c.r.ReadFrame()
		if err != nil {
			return nil, fmt.Errorf("wire: receive %d/%d: %w", i+1, n, err)
		}
		if err := c.resp.Decode(payload); err != nil {
			return nil, err
		}
	}
	return &c.resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) deadline() error {
	if c.timeout <= 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}
