package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader and the
// two payload decoders. The invariants: no panic, no frame beyond
// MaxFrame, and every payload either parses or errors — and everything
// that parses re-encodes to bytes the decoder accepts again.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpRecommend}))
	f.Add(AppendRequest(nil, Request{Op: OpEvent, Device: 3, Action: -1}))
	f.Add(AppendResponse(nil, &Response{Flags: FlagOK, Minute: 600, Q: 1.5,
		State: []uint8{0, 1}, Action: []int16{-1, 2}}))
	f.Add(AppendResponse(nil, &Response{Flags: FlagBusy | FlagHasLearn,
		RetryAfterMs: 250, QSum: []byte("ff"), Err: []byte("overloaded")}))
	f.Add(AppendAck(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{4, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			payload, err := r.ReadFrame()
			if err != nil {
				break
			}
			if len(payload) > MaxFrame {
				t.Fatalf("frame of %d bytes escaped the cap", len(payload))
			}
			if req, err := ParseRequest(payload); err == nil {
				again, err := ParseRequest(AppendRequest(nil, req)[4:])
				if err != nil || again != req {
					t.Fatalf("request %+v does not round-trip: %+v, %v", req, again, err)
				}
			}
			var resp Response
			if err := resp.Decode(payload); err == nil {
				var again Response
				if err := again.Decode(AppendResponse(nil, &resp)[4:]); err != nil {
					t.Fatalf("decoded response %+v does not re-decode: %v", resp, err)
				}
			}
		}
	})
}
