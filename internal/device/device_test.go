package device

import (
	"strings"
	"testing"
	"testing/quick"
)

func testLock(t *testing.T) *Device {
	t.Helper()
	d, err := NewBuilder("front-lock", TypeLock).
		States("locked_outside", "unlocked", "off", "locked_inside").
		Actions("lock", "unlock", "power_off", "power_on").
		Transition("unlocked", "lock", "locked_outside").
		Transition("locked_outside", "unlock", "unlocked").
		Transition("locked_inside", "unlock", "unlocked").
		Transition("unlocked", "power_off", "off").
		Transition("off", "power_on", "unlocked").
		DisUtility("locked_outside", "unlock", 0.9).
		PowerW("unlocked", 1.5).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := testLock(t)
	if got, want := d.NumStates(), 4; got != want {
		t.Errorf("NumStates = %d, want %d", got, want)
	}
	if got, want := d.NumActions(), 4; got != want {
		t.Errorf("NumActions = %d, want %d", got, want)
	}
	if d.Name() != "front-lock" || d.Type() != TypeLock {
		t.Errorf("Name/Type = %q/%q", d.Name(), d.Type())
	}
	if !strings.Contains(d.String(), "front-lock") {
		t.Errorf("String() = %q, want it to mention the device name", d.String())
	}
}

func TestStateAndActionLookup(t *testing.T) {
	d := testLock(t)
	s, ok := d.StateID("unlocked")
	if !ok || s != 1 {
		t.Fatalf("StateID(unlocked) = %d,%v want 1,true", s, ok)
	}
	if _, ok := d.StateID("nope"); ok {
		t.Error("StateID(nope) should not exist")
	}
	a, ok := d.ActionID("power_on")
	if !ok || a != 3 {
		t.Fatalf("ActionID(power_on) = %d,%v want 3,true", a, ok)
	}
	if _, ok := d.ActionID("nope"); ok {
		t.Error("ActionID(nope) should not exist")
	}
	if got := d.StateName(s); got != "unlocked" {
		t.Errorf("StateName = %q", got)
	}
	if got := d.ActionName(a); got != "power_on" {
		t.Errorf("ActionName = %q", got)
	}
	if got := d.StateName(99); got != "?" {
		t.Errorf("StateName(99) = %q, want ?", got)
	}
	if got := d.ActionName(NoAction); got != "-" {
		t.Errorf("ActionName(NoAction) = %q, want -", got)
	}
}

func TestTransitions(t *testing.T) {
	d := testLock(t)
	unlocked, _ := d.StateID("unlocked")
	lockedOut, _ := d.StateID("locked_outside")
	lock, _ := d.ActionID("lock")
	unlock, _ := d.ActionID("unlock")

	next, ok := d.Next(unlocked, lock)
	if !ok || next != lockedOut {
		t.Errorf("Next(unlocked, lock) = %d,%v want %d,true", next, ok, lockedOut)
	}
	// Invalid action in state: locking while already locked has no entry.
	if _, ok := d.Next(lockedOut, lock); ok {
		t.Error("Next(locked_outside, lock) should be invalid")
	}
	// NoAction is the identity.
	next, ok = d.Next(lockedOut, NoAction)
	if !ok || next != lockedOut {
		t.Errorf("Next(_, NoAction) = %d,%v want identity", next, ok)
	}
	// Out of range is invalid and state-preserving.
	if _, ok := d.Next(StateID(42), unlock); ok {
		t.Error("Next(out-of-range) should be invalid")
	}
	if _, ok := d.Next(unlocked, ActionID(42)); ok {
		t.Error("Next(_, out-of-range action) should be invalid")
	}
}

func TestValidActions(t *testing.T) {
	d := testLock(t)
	unlocked, _ := d.StateID("unlocked")
	acts := d.ValidActions(unlocked)
	if len(acts) != 2 { // lock, power_off
		t.Fatalf("ValidActions(unlocked) = %v, want 2 actions", acts)
	}
	if d.ValidActions(StateID(-1)) != nil {
		t.Error("ValidActions(-1) should be nil")
	}
}

func TestDisUtilityAndPower(t *testing.T) {
	d := testLock(t)
	lockedOut, _ := d.StateID("locked_outside")
	unlocked, _ := d.StateID("unlocked")
	unlock, _ := d.ActionID("unlock")

	if got := d.DisUtility(lockedOut, unlock); got != 0.9 {
		t.Errorf("DisUtility = %v, want 0.9", got)
	}
	if got := d.DisUtility(lockedOut, NoAction); got != 0 {
		t.Errorf("DisUtility(NoAction) = %v, want 0", got)
	}
	if got := d.MaxDisUtility(); got != 0.9 {
		t.Errorf("MaxDisUtility = %v, want 0.9", got)
	}
	if got := d.PowerW(unlocked); got != 1.5 {
		t.Errorf("PowerW(unlocked) = %v, want 1.5", got)
	}
	if got := d.PowerW(StateID(77)); got != 0 {
		t.Errorf("PowerW(out-of-range) = %v, want 0", got)
	}
}

func TestUniformDisUtility(t *testing.T) {
	d, err := NewBuilder("light", TypeLight).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("off", "power_on", "on").
		Transition("on", "power_off", "off").
		UniformDisUtility(0.7).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	on, _ := d.StateID("on")
	off, _ := d.ActionID("power_off")
	if got := d.DisUtility(on, off); got != 0.7 {
		t.Errorf("uniform DisUtility = %v, want 0.7", got)
	}
}

func TestTransitionAll(t *testing.T) {
	d, err := NewBuilder("sensor", TypeTempSensor).
		States("sensing", "off").
		Actions("power_off", "power_on").
		TransitionAll("power_off", "off").
		Transition("off", "power_on", "sensing").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sensing, _ := d.StateID("sensing")
	off, _ := d.StateID("off")
	pOff, _ := d.ActionID("power_off")
	for _, s := range []StateID{sensing, off} {
		next, ok := d.Next(s, pOff)
		if !ok || next != off {
			t.Errorf("Next(%d, power_off) = %d,%v want %d,true", s, next, ok, off)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Device, error)
	}{
		{"no states", func() (*Device, error) {
			return NewBuilder("x", "x").Build()
		}},
		{"duplicate state", func() (*Device, error) {
			return NewBuilder("x", "x").States("a", "a").Build()
		}},
		{"duplicate action", func() (*Device, error) {
			return NewBuilder("x", "x").States("a").Actions("go", "go").Build()
		}},
		{"unknown transition names", func() (*Device, error) {
			return NewBuilder("x", "x").States("a").Actions("go").
				Transition("a", "go", "nope").Build()
		}},
		{"unknown disutility names", func() (*Device, error) {
			return NewBuilder("x", "x").States("a").Actions("go").
				DisUtility("a", "nope", 1).Build()
		}},
		{"unknown power state", func() (*Device, error) {
			return NewBuilder("x", "x").States("a").PowerW("nope", 1).Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Error("Build succeeded, want error")
			}
		})
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on bad builder should panic")
		}
	}()
	NewBuilder("x", "x").MustBuild() // no states
}

func TestCopiesAreIndependent(t *testing.T) {
	d := testLock(t)
	states := d.States()
	states[0] = "mutated"
	if d.StateName(0) == "mutated" {
		t.Error("States() must return a copy")
	}
	actions := d.Actions()
	actions[0] = "mutated"
	if d.ActionName(0) == "mutated" {
		t.Error("Actions() must return a copy")
	}
}

// Property: for every declared transition, Next is total on NoAction and
// never returns an out-of-range state.
func TestNextStaysInRangeProperty(t *testing.T) {
	d := testLock(t)
	f := func(s, a uint8) bool {
		st := StateID(int(s)%(d.NumStates()+2)) - 1   // include out-of-range
		ac := ActionID(int(a)%(d.NumActions()+2)) - 1 // include NoAction and out-of-range
		next, ok := d.Next(st, ac)
		if !ok {
			return true
		}
		if ac == NoAction {
			return next == st // identity, even on out-of-range states
		}
		return next >= 0 && int(next) < d.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
