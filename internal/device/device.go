// Package device models a single IoT device as a finite state machine:
// a set of discrete device-states, a set of device-actions, a transition
// function δ_i linking them, a dis-utility function ω_i, and a per-state
// power draw used by functionality reward functions.
//
// The model follows Section III-A of the Jarvis paper: device capabilities
// map to device-actions and device attributes map to device-states.
package device

import (
	"errors"
	"fmt"
)

// StateID identifies one discrete state of a device (an index into the
// device's state list). The zero value is the device's first state.
type StateID int

// ActionID identifies one discrete action of a device (an index into the
// device's action list).
type ActionID int

// NoAction is the distinguished "no action this interval" value (the 'O'
// entries in the paper's tables). Applying NoAction leaves the device state
// unchanged and incurs no dis-utility.
const NoAction ActionID = -1

// Common device type names used by the smart-home instantiation.
const (
	TypeLock        = "lock"
	TypeDoorSensor  = "door_sensor"
	TypeLight       = "light"
	TypeThermostat  = "thermostat"
	TypeTempSensor  = "temp_sensor"
	TypeFridge      = "fridge"
	TypeOven        = "oven"
	TypeTV          = "tv"
	TypeWasher      = "washer"
	TypeDishwasher  = "dishwasher"
	TypeMotion      = "motion_sensor"
	TypeSmokeAlarm  = "smoke_alarm"
	TypeDoorbell    = "doorbell"
	TypeCoffeeMaker = "coffee_maker"
)

// Device is an immutable description of one IoT device's FSM. Build one
// with a Builder; a built Device is safe for concurrent use.
type Device struct {
	name    string
	typ     string
	states  []string
	actions []string

	// transitions[s][a] is the state reached by taking action a in state
	// s, or -1 when the action is invalid in that state.
	transitions [][]StateID

	// valid[s] lists the actions applicable in state s, in ascending
	// ActionID order. Precomputed once in Build so ValidActions can hand
	// out a shared read-only slice instead of allocating per call.
	valid [][]ActionID

	// disutility[s][a] is ω_i(p_s, a_a): the per-time-instance dis-utility
	// of delaying action a while in state s.
	disutility [][]float64

	// powerW[s] is the power draw, in watts, while the device is in state s.
	powerW []float64

	stateIndex  map[string]StateID
	actionIndex map[string]ActionID
}

// Name returns the device's unique label within its environment.
func (d *Device) Name() string { return d.name }

// Type returns the device's type name (for example "lock" or "light").
func (d *Device) Type() string { return d.typ }

// NumStates returns the number of discrete states (i_ss in the paper).
func (d *Device) NumStates() int { return len(d.states) }

// NumActions returns the number of discrete actions (i_as in the paper).
func (d *Device) NumActions() int { return len(d.actions) }

// StateName returns the name of state s, or "?" when s is out of range.
func (d *Device) StateName(s StateID) string {
	if s < 0 || int(s) >= len(d.states) {
		return "?"
	}
	return d.states[s]
}

// ActionName returns the name of action a. NoAction is rendered as "-".
func (d *Device) ActionName(a ActionID) string {
	if a == NoAction {
		return "-"
	}
	if a < 0 || int(a) >= len(d.actions) {
		return "?"
	}
	return d.actions[a]
}

// StateID looks up a state by name.
func (d *Device) StateID(name string) (StateID, bool) {
	s, ok := d.stateIndex[name]
	return s, ok
}

// ActionID looks up an action by name.
func (d *Device) ActionID(name string) (ActionID, bool) {
	a, ok := d.actionIndex[name]
	return a, ok
}

// Next applies the transition function δ_i: it returns the state reached by
// taking action a in state s. NoAction always returns s. The second result
// is false when the action is invalid in s.
func (d *Device) Next(s StateID, a ActionID) (StateID, bool) {
	if a == NoAction {
		return s, true
	}
	if s < 0 || int(s) >= len(d.states) || a < 0 || int(a) >= len(d.actions) {
		return s, false
	}
	next := d.transitions[s][a]
	if next < 0 {
		return s, false
	}
	return next, true
}

// ValidActions returns the actions applicable in state s (excluding
// NoAction, which is always applicable). The returned slice is shared,
// precomputed at Build time, and must be treated as read-only — reward
// shaping and action-composition hot loops call this once per candidate,
// so handing out a fresh slice per call would dominate the allocation
// profile.
func (d *Device) ValidActions(s StateID) []ActionID {
	if s < 0 || int(s) >= len(d.states) {
		return nil
	}
	return d.valid[s]
}

// DisUtility returns ω_i(p_s, a_a), the per-time-instance dis-utility of
// delaying action a in state s. NoAction has zero dis-utility.
func (d *Device) DisUtility(s StateID, a ActionID) float64 {
	if a == NoAction || s < 0 || int(s) >= len(d.states) || a < 0 || int(a) >= len(d.actions) {
		return 0
	}
	return d.disutility[s][a]
}

// MaxDisUtility returns the largest ω_i value defined for the device. It is
// used when balancing the utility/dis-utility ratio χ.
func (d *Device) MaxDisUtility() float64 {
	var maxW float64
	for _, row := range d.disutility {
		for _, w := range row {
			if w > maxW {
				maxW = w
			}
		}
	}
	return maxW
}

// PowerW returns the power draw, in watts, of state s.
func (d *Device) PowerW(s StateID) float64 {
	if s < 0 || int(s) >= len(d.powerW) {
		return 0
	}
	return d.powerW[s]
}

// States returns a copy of the device's state names in StateID order.
func (d *Device) States() []string {
	out := make([]string, len(d.states))
	copy(out, d.states)
	return out
}

// Actions returns a copy of the device's action names in ActionID order.
func (d *Device) Actions() []string {
	out := make([]string, len(d.actions))
	copy(out, d.actions)
	return out
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s: %d states, %d actions)", d.name, d.typ, len(d.states), len(d.actions))
}

// Builder constructs a Device incrementally. The zero value is not usable;
// create one with NewBuilder.
type Builder struct {
	d    Device
	errs []error
}

// NewBuilder starts building a device with the given label and type.
func NewBuilder(name, typ string) *Builder {
	return &Builder{d: Device{
		name:        name,
		typ:         typ,
		stateIndex:  make(map[string]StateID),
		actionIndex: make(map[string]ActionID),
	}}
}

// States declares the device's states, in StateID order.
func (b *Builder) States(names ...string) *Builder {
	for _, n := range names {
		if _, dup := b.d.stateIndex[n]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate state %q", n))
			continue
		}
		b.d.stateIndex[n] = StateID(len(b.d.states))
		b.d.states = append(b.d.states, n)
	}
	return b
}

// Actions declares the device's actions, in ActionID order.
func (b *Builder) Actions(names ...string) *Builder {
	for _, n := range names {
		if _, dup := b.d.actionIndex[n]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate action %q", n))
			continue
		}
		b.d.actionIndex[n] = ActionID(len(b.d.actions))
		b.d.actions = append(b.d.actions, n)
	}
	return b
}

// Transition records δ_i(from, action) = to. States and Actions must have
// been declared first.
func (b *Builder) Transition(from, action, to string) *Builder {
	s, okS := b.d.stateIndex[from]
	a, okA := b.d.actionIndex[action]
	t, okT := b.d.stateIndex[to]
	if !okS || !okA || !okT {
		b.errs = append(b.errs, fmt.Errorf("transition %q --%q--> %q references unknown name", from, action, to))
		return b
	}
	b.ensureTables()
	b.d.transitions[s][a] = t
	return b
}

// TransitionAll records δ_i(s, action) = to for every state s. It is a
// convenience for "global" actions such as power_off.
func (b *Builder) TransitionAll(action, to string) *Builder {
	for _, from := range b.d.states {
		b.Transition(from, action, to)
	}
	return b
}

// DisUtility sets ω_i(state, action) = w.
func (b *Builder) DisUtility(state, action string, w float64) *Builder {
	s, okS := b.d.stateIndex[state]
	a, okA := b.d.actionIndex[action]
	if !okS || !okA {
		b.errs = append(b.errs, fmt.Errorf("disutility (%q,%q) references unknown name", state, action))
		return b
	}
	b.ensureTables()
	b.d.disutility[s][a] = w
	return b
}

// UniformDisUtility sets ω_i(s, a) = w for every valid (state, action) pair.
// The smart-home instantiation uses one ω value per device (Section VI-D).
func (b *Builder) UniformDisUtility(w float64) *Builder {
	b.ensureTables()
	for s := range b.d.disutility {
		for a := range b.d.disutility[s] {
			b.d.disutility[s][a] = w
		}
	}
	return b
}

// PowerW sets the power draw, in watts, of the named state.
func (b *Builder) PowerW(state string, watts float64) *Builder {
	s, ok := b.d.stateIndex[state]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("power for unknown state %q", state))
		return b
	}
	b.ensurePower()
	b.d.powerW[s] = watts
	return b
}

func (b *Builder) ensureTables() {
	if b.d.transitions == nil {
		b.d.transitions = make([][]StateID, len(b.d.states))
		b.d.disutility = make([][]float64, len(b.d.states))
		for s := range b.d.transitions {
			row := make([]StateID, len(b.d.actions))
			for a := range row {
				row[a] = -1
			}
			b.d.transitions[s] = row
			b.d.disutility[s] = make([]float64, len(b.d.actions))
		}
	}
	b.ensurePower()
}

func (b *Builder) ensurePower() {
	if b.d.powerW == nil {
		b.d.powerW = make([]float64, len(b.d.states))
	}
}

// Build finalizes the device. It returns an error when the builder recorded
// any inconsistency or the device has no states.
func (b *Builder) Build() (*Device, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(b.d.states) == 0 {
		return nil, fmt.Errorf("device %q has no states", b.d.name)
	}
	b.ensureTables()
	d := b.d
	d.valid = make([][]ActionID, len(d.states))
	for s := range d.valid {
		var acts []ActionID
		for a, next := range d.transitions[s] {
			if next >= 0 {
				acts = append(acts, ActionID(a))
			}
		}
		d.valid[s] = acts
	}
	return &d, nil
}

// MustBuild is Build for statically known-correct device definitions; it
// panics on error and is intended for package-level catalogs and tests.
func (b *Builder) MustBuild() *Device {
	d, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("device: MustBuild: %v", err))
	}
	return d
}
