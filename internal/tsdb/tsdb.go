// Package tsdb is an embedded, per-daemon time-series store for telemetry
// snapshots: an append-only log of delta-encoded metric samples with
// WAL-style segment rotation, retention, and crash recovery, plus an
// in-memory mirror the query side (range, rate, delta,
// quantile-over-time) serves from.
//
// The daemon appends one Point — every counter, gauge, and histogram in
// the registry, labeled series included — every -ts-interval. That turns
// the point-in-time /metrics scrape into durable history: SLO burn rates
// re-read their windows from the store instead of bespoke in-memory
// rings, `jarvisctl top` sparklines p99s from it, and a restart loses at
// most the tail the crash tore.
//
// # On-disk format
//
// Records use the WAL's framing: [length u32 LE | crc32c(payload) u32 LE
// | payload], Castagnoli CRC, appended to numbered segments
// (00000001.tsw, ...). The payload is one sample:
//
//	kind   u8      1 = full, 2 = delta
//	ts     uvarint unix nanoseconds
//	count  uvarint series entries that follow
//	entry: id uvarint; a first-seen id is followed by its declaration
//	       (type u8, name len uvarint, name bytes); then the value,
//	       encoded as a zigzag-varint delta against the decoder's last
//	       value for that id (counters, histogram scalars and bucket
//	       counts) or as 8 raw float64 bits (gauges).
//
// A full record resets the decoder — dictionary and last-values — and
// then lists every live series, so its deltas are absolute values. Every
// segment opens with a full record, which makes each segment
// independently decodable: retention can delete old segments without
// orphaning the deltas in newer ones, and recovery after a crash
// re-seeds from whatever segments survive. A delta record lists only the
// series that changed since the previous record, so a quiet interval
// costs a few dozen bytes, not a full snapshot.
//
// # Recovery
//
// Open scans segments oldest-first, rebuilding the in-memory point
// mirror. Damage at the tail of the last segment (short header, short
// payload, bad CRC) is a torn write from a crash: the segment is
// truncated back to its last whole record and appending resumes. The
// same damage in a sealed segment is ErrCorrupt. The first append after
// Open always writes a full record, so a reopened log never extends a
// baseline it did not verify.
package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"jarvis/internal/telemetry"
)

const (
	headerSize = 8
	segSuffix  = ".tsw"

	// MaxRecordBytes bounds one sample's payload; recovery treats a larger
	// length prefix as tail damage rather than allocating it.
	MaxRecordBytes = 16 << 20
)

// ErrCorrupt reports structural damage in a sealed segment — damage a
// torn tail write cannot explain.
var ErrCorrupt = errors.New("tsdb: corrupt record in sealed region")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Point is one decoded sample: every series' value at one instant.
type Point struct {
	TsNs       int64
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]telemetry.HistogramStats
}

// FromSnapshot projects a registry snapshot onto a Point (events and
// infos are not time series and are dropped).
func FromSnapshot(s telemetry.Snapshot) Point {
	return Point{
		TsNs:       s.UnixNs,
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
	}
}

// Options tunes a DB. The zero value is usable: 1 MiB segments, retain 8
// sealed segments, mirror 4096 points in memory.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// Retain caps sealed segments kept after rotation (default 8; <0
	// keeps everything).
	Retain int
	// MemoryPoints caps the in-memory mirror the query side reads
	// (default 4096; oldest evicted first). Disk retention and the memory
	// ring are independent bounds.
	MemoryPoints int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.Retain == 0 {
		o.Retain = 8
	}
	if o.MemoryPoints <= 0 {
		o.MemoryPoints = 4096
	}
	return o
}

// RecoveryStats reports what Open found on disk.
type RecoveryStats struct {
	Segments       int
	Points         int
	TruncatedBytes int64
}

// Stats is the live footprint /healthz reports.
type Stats struct {
	Segments    int   `json:"segments"`
	SizeBytes   int64 `json:"sizeBytes"`
	Points      int   `json:"points"`
	SeriesCount int   `json:"seriesCount"`
	OldestNs    int64 `json:"oldestNs,omitempty"`
	NewestNs    int64 `json:"newestNs,omitempty"`
}

// DB is one daemon's metric history. All methods are safe for concurrent
// use.
type DB struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	seq         uint64
	size        int64
	sealed      []uint64
	sealedBytes int64
	closed      bool
	rec         RecoveryStats

	// points is the in-memory mirror, ascending by TsNs.
	points []Point

	// enc is the delta baseline for the active segment; nil forces the
	// next append to write a full record.
	enc     *encoder
	scratch []byte
}

// Open creates dir if needed, recovers any existing history into the
// in-memory mirror, and returns a DB ready to append.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	db := &DB{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range segs {
		last := i == len(segs)-1
		good, total, err := db.scanSegment(seq)
		if err != nil {
			return nil, err
		}
		if !last {
			db.sealedBytes += total
		}
		if good < total {
			if !last {
				return nil, fmt.Errorf("%w: segment %08d has %d damaged trailing bytes", ErrCorrupt, seq, total-good)
			}
			if err := os.Truncate(db.segPath(seq), good); err != nil {
				return nil, fmt.Errorf("tsdb: truncate torn tail: %w", err)
			}
			db.rec.TruncatedBytes = total - good
		}
	}
	db.rec.Segments = len(segs)
	db.rec.Points = len(db.points)
	switch len(segs) {
	case 0:
		if err := db.openSegment(1); err != nil {
			return nil, err
		}
		db.rec.Segments = 1
	default:
		db.sealed = segs[:len(segs)-1]
		seq := segs[len(segs)-1]
		f, err := os.OpenFile(db.segPath(seq), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("tsdb: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("tsdb: %w", err)
		}
		db.f, db.seq, db.size = f, seq, st.Size()
	}
	// enc stays nil: the first post-recovery append is a full record, so
	// we never extend a baseline we did not verify.
	return db, nil
}

// Recovery reports what Open found (and repaired) on disk.
func (db *DB) Recovery() RecoveryStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.rec
}

// Append stores one snapshot. Points must arrive in non-decreasing
// timestamp order; an out-of-order point is dropped (clock steps during
// failover are not worth corrupting the history for).
func (db *DB) Append(p Point) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("tsdb: closed")
	}
	if n := len(db.points); n > 0 && p.TsNs < db.points[n-1].TsNs {
		return nil
	}
	full := db.enc == nil
	if full {
		db.enc = newEncoder()
	}
	payload := encodePoint(db.scratch[:0], p, db.enc, full)
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("tsdb: sample of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	if db.size > 0 && db.size+int64(headerSize+len(payload)) > db.opts.SegmentBytes {
		if err := db.rotateLocked(); err != nil {
			return err
		}
		// A new segment must open with a full record (fresh dictionary).
		db.enc = newEncoder()
		payload = encodePoint(payload[:0], p, db.enc, true)
	}
	db.scratch = payload[:0]
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := db.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("tsdb: append: %w", err)
	}
	if _, err := db.f.Write(payload); err != nil {
		return fmt.Errorf("tsdb: append: %w", err)
	}
	db.size += int64(headerSize + len(payload))
	db.enc.observe(p)
	db.appendPointLocked(p)
	return nil
}

// Sync flushes the active segment to stable storage. The append path does
// not fsync per sample — metric history is derived data; losing the last
// interval to power loss is acceptable — so callers with stricter needs
// (tests, clean shutdown) sync explicitly.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	return db.f.Sync()
}

// Close syncs and closes the active segment.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.f.Sync(); err != nil {
		db.f.Close()
		return fmt.Errorf("tsdb: close: %w", err)
	}
	return db.f.Close()
}

// Stats reports the store's live footprint.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := Stats{
		Segments:  len(db.sealed) + 1,
		SizeBytes: db.sealedBytes + db.size,
		Points:    len(db.points),
	}
	if n := len(db.points); n > 0 {
		s.OldestNs = db.points[0].TsNs
		s.NewestNs = db.points[n-1].TsNs
		last := db.points[n-1]
		s.SeriesCount = len(last.Counters) + len(last.Gauges) + len(last.Histograms)
	}
	return s
}

func (db *DB) appendPointLocked(p Point) {
	db.points = append(db.points, p)
	if over := len(db.points) - db.opts.MemoryPoints; over > 0 {
		db.points = append(db.points[:0], db.points[over:]...)
	}
}

func (db *DB) rotateLocked() error {
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("tsdb: sync: %w", err)
	}
	if err := db.f.Close(); err != nil {
		return fmt.Errorf("tsdb: seal segment: %w", err)
	}
	db.sealed = append(db.sealed, db.seq)
	db.sealedBytes += db.size
	if err := db.openSegment(db.seq + 1); err != nil {
		return err
	}
	db.enc = nil // next record is full
	if db.opts.Retain > 0 {
		for len(db.sealed) > db.opts.Retain {
			seq := db.sealed[0]
			if st, err := os.Stat(db.segPath(seq)); err == nil {
				db.sealedBytes -= st.Size()
			}
			if err := os.Remove(db.segPath(seq)); err != nil {
				return fmt.Errorf("tsdb: retention: %w", err)
			}
			db.sealed = db.sealed[1:]
		}
		if err := syncDir(db.dir); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) openSegment(seq uint64) error {
	f, err := os.OpenFile(db.segPath(seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: create segment: %w", err)
	}
	if err := syncDir(db.dir); err != nil {
		f.Close()
		return err
	}
	db.f, db.seq, db.size = f, seq, 0
	return nil
}

// scanSegment decodes one segment into the mirror, returning the offset
// of the last whole record and the file size.
func (db *DB) scanSegment(seq uint64) (good, total int64, err error) {
	data, err := os.ReadFile(db.segPath(seq))
	if err != nil {
		return 0, 0, fmt.Errorf("tsdb: %w", err)
	}
	total = int64(len(data))
	dec := newDecoder()
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, total, nil
		}
		if len(rest) < headerSize {
			return off, total, nil // torn header
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecordBytes || int64(len(rest)) < headerSize+n {
			return off, total, nil // impossible length or torn payload
		}
		payload := rest[headerSize : headerSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, total, nil // torn/corrupt record
		}
		p, derr := dec.decode(payload)
		if derr != nil {
			// Framing was intact but the payload grammar is not: treat like
			// CRC damage at this offset.
			return off, total, nil
		}
		db.appendPointLocked(p)
		db.rec.Points++
		off += headerSize + n
	}
}

func (db *DB) segPath(seq uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("%08d%s", seq, segSuffix))
}

func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	var segs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, seq)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("tsdb: open dir: %w", err)
	}
	defer d.Close()
	// Filesystems that cannot sync a directory handle are best-effort.
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("tsdb: sync dir: %w", err)
	}
	return nil
}
