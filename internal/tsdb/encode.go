package tsdb

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"jarvis/internal/telemetry"
)

// Sample payload grammar — see the package comment. The encoder and
// decoder share one invariant: series ids are assigned in first-seen
// order within a record stream, and a full record (kind 1) resets both
// the dictionary and every baseline to zero, so a full record's deltas
// are absolute values and every segment (which always opens with a full
// record) decodes independently.

const (
	kindFull  = 1
	kindDelta = 2

	typeCounter = 0
	typeGauge   = 1
	typeHist    = 2
)

var errMalformed = errors.New("tsdb: malformed sample payload")

// zigzag encoding maps signed deltas onto uvarints.
func zig(n int64) uint64   { return uint64(n<<1) ^ uint64(n>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// histBase is the decoder/encoder baseline for one histogram series.
type histBase struct {
	stats   telemetry.HistogramStats // Buckets unused; scalar fields only
	buckets map[int64]telemetry.BucketCount
}

// encoder carries the active segment's dictionary and per-series
// baselines between appends.
type encoder struct {
	ids      map[string]uint64
	counters map[string]int64
	gauges   map[string]uint64 // float bits
	hists    map[string]*histBase
}

func newEncoder() *encoder {
	return &encoder{
		ids:      make(map[string]uint64),
		counters: make(map[string]int64),
		gauges:   make(map[string]uint64),
		hists:    make(map[string]*histBase),
	}
}

// observe advances the baselines to p after p's record is written.
func (e *encoder) observe(p Point) {
	for name, v := range p.Counters {
		e.counters[name] = v
	}
	for name, v := range p.Gauges {
		e.gauges[name] = math.Float64bits(v)
	}
	for name, h := range p.Histograms {
		hb := e.hists[name]
		if hb == nil {
			hb = &histBase{buckets: make(map[int64]telemetry.BucketCount)}
			e.hists[name] = hb
		}
		hb.stats = telemetry.HistogramStats{
			Count: h.Count, SumNs: h.SumNs, MinNs: h.MinNs, MaxNs: h.MaxNs,
			MeanNs: h.MeanNs, P50Ns: h.P50Ns, P95Ns: h.P95Ns, P99Ns: h.P99Ns,
		}
		for _, b := range h.Buckets {
			hb.buckets[b.LowNs] = b
		}
	}
}

// encodePoint appends p's sample payload to buf. With full set, every
// series is written against zero baselines (enc must be freshly made, so
// its dictionary starts empty); otherwise only the series that changed
// since enc's baselines are written. Either way enc's dictionary absorbs
// the ids assigned here — the caller must keep using the same encoder
// (and call observe after a successful write) so encoder and decoder
// dictionaries stay aligned.
func encodePoint(buf []byte, p Point, enc *encoder, full bool) []byte {
	if full {
		buf = append(buf, kindFull)
	} else {
		buf = append(buf, kindDelta)
	}
	buf = binary.AppendUvarint(buf, uint64(p.TsNs))

	type entry struct {
		name string
		typ  byte
	}
	entries := make([]entry, 0, len(p.Counters)+len(p.Gauges)+len(p.Histograms))
	for name, v := range p.Counters {
		if full || v != enc.counters[name] {
			entries = append(entries, entry{name, typeCounter})
		}
	}
	for name, v := range p.Gauges {
		if _, seen := enc.ids[name]; full || !seen || math.Float64bits(v) != enc.gauges[name] {
			entries = append(entries, entry{name, typeGauge})
		}
	}
	for name, h := range p.Histograms {
		hb := enc.hists[name]
		if full || hb == nil || h.Count != hb.stats.Count || h.SumNs != hb.stats.SumNs {
			entries = append(entries, entry{name, typeHist})
		}
	}
	// Deterministic order keeps encode output reproducible for tests and
	// makes first-seen id assignment stable.
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, en := range entries {
		id, seen := enc.ids[en.name]
		if !seen {
			id = uint64(len(enc.ids))
			enc.ids[en.name] = id
			buf = binary.AppendUvarint(buf, id)
			buf = append(buf, en.typ)
			buf = binary.AppendUvarint(buf, uint64(len(en.name)))
			buf = append(buf, en.name...)
		} else {
			buf = binary.AppendUvarint(buf, id)
		}
		switch en.typ {
		case typeCounter:
			buf = binary.AppendUvarint(buf, zig(p.Counters[en.name]-enc.counters[en.name]))
		case typeGauge:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Gauges[en.name]))
		case typeHist:
			buf = appendHistDelta(buf, p.Histograms[en.name], enc.hists[en.name])
		}
	}
	return buf
}

func appendHistDelta(buf []byte, h telemetry.HistogramStats, base *histBase) []byte {
	var bs telemetry.HistogramStats
	var prevBuckets map[int64]telemetry.BucketCount
	if base != nil {
		bs = base.stats
		prevBuckets = base.buckets
	}
	buf = binary.AppendUvarint(buf, zig(h.Count-bs.Count))
	buf = binary.AppendUvarint(buf, zig(h.SumNs-bs.SumNs))
	buf = binary.AppendUvarint(buf, zig(h.MinNs-bs.MinNs))
	buf = binary.AppendUvarint(buf, zig(h.MaxNs-bs.MaxNs))
	buf = binary.AppendUvarint(buf, zig(h.MeanNs-bs.MeanNs))
	buf = binary.AppendUvarint(buf, zig(h.P50Ns-bs.P50Ns))
	buf = binary.AppendUvarint(buf, zig(h.P95Ns-bs.P95Ns))
	buf = binary.AppendUvarint(buf, zig(h.P99Ns-bs.P99Ns))
	changed := make([]telemetry.BucketCount, 0, len(h.Buckets))
	for _, b := range h.Buckets {
		if prev, ok := prevBuckets[b.LowNs]; !ok || prev.Count != b.Count {
			changed = append(changed, b)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(changed)))
	for _, b := range changed {
		prev := prevBuckets[b.LowNs] // zero value if new
		buf = binary.AppendUvarint(buf, uint64(b.LowNs))
		buf = binary.AppendUvarint(buf, uint64(b.WidthNs))
		buf = binary.AppendUvarint(buf, zig(b.Count-prev.Count))
	}
	return buf
}

// decoder replays a record stream, materializing one Point per record.
type decoder struct {
	names    []string
	types    []byte
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histBase
}

func newDecoder() *decoder {
	d := &decoder{}
	d.reset()
	return d
}

func (d *decoder) reset() {
	d.names = d.names[:0]
	d.types = d.types[:0]
	d.counters = make(map[string]int64)
	d.gauges = make(map[string]float64)
	d.hists = make(map[string]*histBase)
}

type byteReader struct {
	data []byte
	off  int
	err  bool
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) byte() byte {
	if r.off >= len(r.data) {
		r.err = true
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *byteReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.data) {
		r.err = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u64() uint64 {
	b := r.bytes(8)
	if r.err {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// decode applies one payload and returns the materialized point.
func (d *decoder) decode(payload []byte) (Point, error) {
	r := &byteReader{data: payload}
	kind := r.byte()
	if kind == kindFull {
		d.reset()
	} else if kind != kindDelta {
		return Point{}, errMalformed
	}
	ts := int64(r.uvarint())
	n := r.uvarint()
	if r.err || n > uint64(len(payload)) {
		return Point{}, errMalformed
	}
	for i := uint64(0); i < n; i++ {
		id := r.uvarint()
		var name string
		var typ byte
		switch {
		case id < uint64(len(d.names)):
			name, typ = d.names[id], d.types[id]
		case id == uint64(len(d.names)):
			typ = r.byte()
			nameLen := r.uvarint()
			if r.err || nameLen > uint64(len(payload)) {
				return Point{}, errMalformed
			}
			name = string(r.bytes(int(nameLen)))
			if r.err || (typ != typeCounter && typ != typeGauge && typ != typeHist) {
				return Point{}, errMalformed
			}
			d.names = append(d.names, name)
			d.types = append(d.types, typ)
		default:
			return Point{}, errMalformed
		}
		switch typ {
		case typeCounter:
			d.counters[name] += unzig(r.uvarint())
		case typeGauge:
			d.gauges[name] = math.Float64frombits(r.u64())
		case typeHist:
			hb := d.hists[name]
			if hb == nil {
				hb = &histBase{buckets: make(map[int64]telemetry.BucketCount)}
				d.hists[name] = hb
			}
			hb.stats.Count += unzig(r.uvarint())
			hb.stats.SumNs += unzig(r.uvarint())
			hb.stats.MinNs += unzig(r.uvarint())
			hb.stats.MaxNs += unzig(r.uvarint())
			hb.stats.MeanNs += unzig(r.uvarint())
			hb.stats.P50Ns += unzig(r.uvarint())
			hb.stats.P95Ns += unzig(r.uvarint())
			hb.stats.P99Ns += unzig(r.uvarint())
			nb := r.uvarint()
			if r.err || nb > uint64(len(payload)) {
				return Point{}, errMalformed
			}
			for j := uint64(0); j < nb; j++ {
				low := int64(r.uvarint())
				width := int64(r.uvarint())
				delta := unzig(r.uvarint())
				b := hb.buckets[low]
				b.LowNs, b.WidthNs = low, width
				b.Count += delta
				hb.buckets[low] = b
			}
		}
		if r.err {
			return Point{}, errMalformed
		}
	}
	if r.err || r.off != len(payload) {
		return Point{}, errMalformed
	}
	return d.materialize(ts), nil
}

// materialize deep-copies the running state into an immutable Point.
func (d *decoder) materialize(ts int64) Point {
	p := Point{
		TsNs:       ts,
		Counters:   make(map[string]int64, len(d.counters)),
		Gauges:     make(map[string]float64, len(d.gauges)),
		Histograms: make(map[string]telemetry.HistogramStats, len(d.hists)),
	}
	for k, v := range d.counters {
		p.Counters[k] = v
	}
	for k, v := range d.gauges {
		p.Gauges[k] = v
	}
	for k, hb := range d.hists {
		hs := hb.stats
		hs.Buckets = make([]telemetry.BucketCount, 0, len(hb.buckets))
		for _, b := range hb.buckets {
			if b.Count != 0 {
				hs.Buckets = append(hs.Buckets, b)
			}
		}
		sort.Slice(hs.Buckets, func(i, j int) bool { return hs.Buckets[i].LowNs < hs.Buckets[j].LowNs })
		p.Histograms[k] = hs
	}
	return p
}
