package tsdb

import (
	"sort"

	"jarvis/internal/telemetry"
)

// Query semantics. Every window function takes [fromNs, toNs] and works
// on two edge points:
//
//   - cur  = the newest point at or before toNs,
//   - prev = the newest point at or before fromNs, falling back to the
//     oldest retained point when none precedes fromNs.
//
// That prev fallback is deliberate: it is exactly the "oldest retained
// sample" edge the SLO tracker's in-memory ring used, so burn rates
// recomputed from the store agree with the tracker during warm-up, when
// history is shorter than the window. Counter deltas clamp at zero so a
// daemon restart (counter reset) reads as a quiet window, not a negative
// rate.

// Sample is one scalar observation of a series.
type Sample struct {
	TsNs  int64   `json:"tsNs"`
	Value float64 `json:"value"`
}

// EdgeBefore returns the newest point at or before cutoffNs, falling
// back to the oldest retained point. ok is false when the store is
// empty.
func (db *DB) EdgeBefore(cutoffNs int64) (Point, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.edgeBeforeLocked(cutoffNs)
}

func (db *DB) edgeBeforeLocked(cutoffNs int64) (Point, bool) {
	if len(db.points) == 0 {
		return Point{}, false
	}
	// First index with TsNs > cutoff; the point before it is the edge.
	i := sort.Search(len(db.points), func(i int) bool { return db.points[i].TsNs > cutoffNs })
	if i == 0 {
		return db.points[0], true
	}
	return db.points[i-1], true
}

// Latest returns the newest point.
func (db *DB) Latest() (Point, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.points) == 0 {
		return Point{}, false
	}
	return db.points[len(db.points)-1], true
}

// edges resolves the window's (prev, cur) pair.
func (db *DB) edges(fromNs, toNs int64) (prev, cur Point, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cur, ok = db.edgeBeforeLocked(toNs)
	if !ok {
		return Point{}, Point{}, false
	}
	prev, _ = db.edgeBeforeLocked(fromNs)
	return prev, cur, true
}

// lookupScalar finds a series by name in a point: counters first, then
// gauges, then histogram counts (so rate() over a histogram series is
// its observation rate).
func lookupScalar(p Point, name string) (v float64, isCounter, ok bool) {
	if c, ok := p.Counters[name]; ok {
		return float64(c), true, true
	}
	if g, ok := p.Gauges[name]; ok {
		return g, false, true
	}
	if h, ok := p.Histograms[name]; ok {
		return float64(h.Count), true, true
	}
	return 0, false, false
}

// Delta returns the change in a series across the window: cur − prev,
// clamped at zero for counters (a reset reads as zero, matching the SLO
// tracker), signed for gauges. ok is false when the series is absent
// from the window's cur edge or the store is empty.
func (db *DB) Delta(name string, fromNs, toNs int64) (float64, bool) {
	prev, cur, ok := db.edges(fromNs, toNs)
	if !ok {
		return 0, false
	}
	cv, counter, ok := lookupScalar(cur, name)
	if !ok {
		return 0, false
	}
	pv, _, _ := lookupScalar(prev, name) // absent from prev → 0 baseline
	d := cv - pv
	if counter && d < 0 {
		d = 0
	}
	return d, true
}

// Rate returns a counter series' per-second increase across the window.
// Gauge series have no rate; ok is false for them, for unknown series,
// and for windows narrower than one sample interval.
func (db *DB) Rate(name string, fromNs, toNs int64) (float64, bool) {
	prev, cur, ok := db.edges(fromNs, toNs)
	if !ok || cur.TsNs == prev.TsNs {
		return 0, false
	}
	cv, counter, ok := lookupScalar(cur, name)
	if !ok || !counter {
		return 0, false
	}
	pv, _, _ := lookupScalar(prev, name)
	d := cv - pv
	if d < 0 {
		d = 0
	}
	return d / (float64(cur.TsNs-prev.TsNs) / 1e9), true
}

// QuantileOverTime estimates the q-quantile of a histogram series'
// observations recorded inside the window, by windowed bucket
// subtraction (telemetry.DeltaQuantile). ok is false for unknown series
// and empty windows.
func (db *DB) QuantileOverTime(name string, q float64, fromNs, toNs int64) (ns int64, ok bool) {
	prev, cur, ok := db.edges(fromNs, toNs)
	if !ok {
		return 0, false
	}
	ch, ok := cur.Histograms[name]
	if !ok {
		return 0, false
	}
	return telemetry.DeltaQuantile(ch, prev.Histograms[name], q)
}

// Series returns one sample per retained point inside [fromNs, toNs] for
// a series: counter and gauge values directly; histogram series yield
// the per-point P99 in nanoseconds, which is what the fleet view
// sparklines.
func (db *DB) Series(name string, fromNs, toNs int64) []Sample {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Sample
	for _, p := range db.points {
		if p.TsNs < fromNs || p.TsNs > toNs {
			continue
		}
		if h, ok := p.Histograms[name]; ok {
			out = append(out, Sample{TsNs: p.TsNs, Value: float64(h.P99Ns)})
			continue
		}
		if v, _, ok := lookupScalar(p, name); ok {
			out = append(out, Sample{TsNs: p.TsNs, Value: v})
		}
	}
	return out
}

// SeriesNames lists every series name in the newest point, sorted —
// the /debug/tsdb index response.
func (db *DB) SeriesNames() []string {
	p, ok := db.Latest()
	if !ok {
		return nil
	}
	names := make([]string, 0, len(p.Counters)+len(p.Gauges)+len(p.Histograms))
	for n := range p.Counters {
		names = append(names, n)
	}
	for n := range p.Gauges {
		names = append(names, n)
	}
	for n := range p.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
