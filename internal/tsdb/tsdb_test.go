package tsdb

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

func mkPoint(ts int64, counters map[string]int64, gauges map[string]float64) Point {
	p := Point{TsNs: ts, Counters: map[string]int64{}, Gauges: map[string]float64{}, Histograms: map[string]telemetry.HistogramStats{}}
	for k, v := range counters {
		p.Counters[k] = v
	}
	for k, v := range gauges {
		p.Gauges[k] = v
	}
	return p
}

func histStats(obs ...time.Duration) telemetry.HistogramStats {
	en := &atomic.Bool{}
	en.Store(true)
	h := newTestHistogram(en)
	for _, d := range obs {
		h.Observe(d)
	}
	return h.Stats()
}

// newTestHistogram adapts telemetry's constructor (unexported there) via
// a registry.
func newTestHistogram(_ *atomic.Bool) *telemetry.Histogram {
	return telemetry.New(1).Histogram("h")
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p1 := mkPoint(1000, map[string]int64{"a": 5, `req{op="x"}`: 2}, map[string]float64{"g": 1.5})
	p1.Histograms["lat"] = histStats(time.Millisecond, 2*time.Millisecond)
	p2 := mkPoint(2000, map[string]int64{"a": 9, `req{op="x"}`: 2, "new": 1}, map[string]float64{"g": -3.25})
	p2.Histograms["lat"] = histStats(time.Millisecond, 2*time.Millisecond, 50*time.Millisecond)

	enc := newEncoder()
	rec1 := encodePoint(nil, p1, enc, true)
	enc.observe(p1)
	rec2 := encodePoint(nil, p2, enc, false)
	enc.observe(p2)

	dec := newDecoder()
	got1, err := dec.decode(rec1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := dec.decode(rec2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ got, want Point }{{got1, p1}, {got2, p2}} {
		if tc.got.TsNs != tc.want.TsNs {
			t.Fatalf("ts = %d, want %d", tc.got.TsNs, tc.want.TsNs)
		}
		if !reflect.DeepEqual(tc.got.Counters, tc.want.Counters) {
			t.Fatalf("counters = %v, want %v", tc.got.Counters, tc.want.Counters)
		}
		if !reflect.DeepEqual(tc.got.Gauges, tc.want.Gauges) {
			t.Fatalf("gauges = %v, want %v", tc.got.Gauges, tc.want.Gauges)
		}
		if !reflect.DeepEqual(tc.got.Histograms, tc.want.Histograms) {
			t.Fatalf("histograms = %v, want %v", tc.got.Histograms, tc.want.Histograms)
		}
	}
}

func TestDeltaRecordOmitsUnchangedSeries(t *testing.T) {
	p1 := mkPoint(1000, map[string]int64{"hot": 10, "cold": 3}, map[string]float64{"steady": 7})
	enc := newEncoder()
	full := encodePoint(nil, p1, enc, true)
	enc.observe(p1)

	p2 := mkPoint(2000, map[string]int64{"hot": 11, "cold": 3}, map[string]float64{"steady": 7})
	delta := encodePoint(nil, p2, enc, false)

	if len(delta) >= len(full) {
		t.Fatalf("delta record (%dB) not smaller than full record (%dB)", len(delta), len(full))
	}
	dec := newDecoder()
	if _, err := dec.decode(full); err != nil {
		t.Fatal(err)
	}
	got, err := dec.decode(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["cold"] != 3 || got.Counters["hot"] != 11 || got.Gauges["steady"] != 7 {
		t.Fatalf("unchanged series lost across delta: %v %v", got.Counters, got.Gauges)
	}
}

func TestAppendReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := db.Append(mkPoint(i*1000, map[string]int64{"c": i * 10}, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rec := db2.Recovery(); rec.Points != 5 {
		t.Fatalf("recovered %d points, want 5", rec.Points)
	}
	p, ok := db2.Latest()
	if !ok || p.TsNs != 5000 || p.Counters["c"] != 50 {
		t.Fatalf("latest = %+v ok=%v, want ts 5000 c=50", p, ok)
	}
	// Appends keep working after reopen (the first one is a full record).
	if err := db2.Append(mkPoint(6000, map[string]int64{"c": 60}, nil)); err != nil {
		t.Fatal(err)
	}
	// prev falls back to the oldest retained point (c=10 at ts 1000), so
	// the whole-history delta is 60-10.
	if v, ok := db2.Delta("c", 0, 7000); !ok || v != 50 {
		t.Fatalf("Delta after reopen = %v ok=%v, want 50", v, ok)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := db.Append(mkPoint(i*1000, map[string]int64{"c": i}, nil)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Tear the tail: append garbage half-record to the active segment.
	seg := filepath.Join(dir, "00000001"+segSuffix)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	defer db2.Close()
	rec := db2.Recovery()
	if rec.Points != 3 {
		t.Fatalf("recovered %d points, want 3", rec.Points)
	}
	if rec.TruncatedBytes != 6 {
		t.Fatalf("TruncatedBytes = %d, want 6", rec.TruncatedBytes)
	}
}

func TestCorruptSealedSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SegmentBytes: 64, Retain: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		if err := db.Append(mkPoint(i*1000, map[string]int64{"counter.series.name": i}, nil)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	// Flip a byte mid-way through the FIRST (sealed) segment.
	seg := filepath.Join(dir, "00000001"+segSuffix)
	data, _ := os.ReadFile(seg)
	data[len(data)/2] ^= 0xff
	os.WriteFile(seg, data, 0o644)

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt sealed segment must fail Open")
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SegmentBytes: 128, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := int64(1); i <= 60; i++ {
		if err := db.Append(mkPoint(i*1000, map[string]int64{"some.counter.with.a.long.name": i * 7}, nil)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) > 3 { // 2 sealed + active
		t.Fatalf("retention kept %d segments, want <= 3", len(segs))
	}
	st := db.Stats()
	if st.Segments != len(segs) {
		t.Fatalf("Stats.Segments = %d, disk has %d", st.Segments, len(segs))
	}
	if st.Points != 60 {
		t.Fatalf("Stats.Points = %d, want 60 (memory ring independent of disk retention)", st.Points)
	}
	// Each surviving segment opens with a full record: reopen decodes
	// without the deleted segments.
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	p, ok := db2.Latest()
	if !ok || p.Counters["some.counter.with.a.long.name"] != 60*7 {
		t.Fatalf("latest after retention reopen = %+v", p)
	}
}

func TestMemoryRingEviction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemoryPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := int64(1); i <= 25; i++ {
		db.Append(mkPoint(i*1000, map[string]int64{"c": i}, nil))
	}
	st := db.Stats()
	if st.Points != 10 {
		t.Fatalf("Points = %d, want 10", st.Points)
	}
	if st.OldestNs != 16000 {
		t.Fatalf("OldestNs = %d, want 16000", st.OldestNs)
	}
}

func TestOutOfOrderPointDropped(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Append(mkPoint(5000, map[string]int64{"c": 1}, nil))
	db.Append(mkPoint(4000, map[string]int64{"c": 99}, nil))
	p, _ := db.Latest()
	if p.TsNs != 5000 || p.Counters["c"] != 1 {
		t.Fatalf("out-of-order point was not dropped: %+v", p)
	}
}

func TestEdgeBeforeSemantics(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, ok := db.EdgeBefore(100); ok {
		t.Fatal("empty store reported an edge")
	}
	for _, ts := range []int64{1000, 2000, 3000} {
		db.Append(mkPoint(ts, map[string]int64{"c": ts}, nil))
	}
	// Exact hit, between points, after the last, before the first (oldest
	// fallback — the tracker's warm-up semantics).
	for _, tc := range []struct{ cutoff, want int64 }{
		{2000, 2000}, {2500, 2000}, {9999, 3000}, {500, 1000},
	} {
		p, ok := db.EdgeBefore(tc.cutoff)
		if !ok || p.TsNs != tc.want {
			t.Fatalf("EdgeBefore(%d) = %d ok=%v, want %d", tc.cutoff, p.TsNs, ok, tc.want)
		}
	}
}

func TestRateDeltaQueries(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sec := int64(time.Second)
	for i := int64(0); i <= 10; i++ {
		db.Append(mkPoint(i*sec, map[string]int64{"reqs": i * 100}, map[string]float64{"temp": float64(20 + i)}))
	}
	if v, ok := db.Delta("reqs", 0, 10*sec); !ok || v != 1000 {
		t.Fatalf("Delta(reqs) = %v ok=%v, want 1000", v, ok)
	}
	if v, ok := db.Rate("reqs", 0, 10*sec); !ok || v != 100 {
		t.Fatalf("Rate(reqs) = %v ok=%v, want 100/s", v, ok)
	}
	if v, ok := db.Delta("temp", 0, 10*sec); !ok || v != 10 {
		t.Fatalf("Delta(temp) = %v ok=%v, want 10 (gauges are signed)", v, ok)
	}
	if _, ok := db.Rate("temp", 0, 10*sec); ok {
		t.Fatal("gauges must not report a rate")
	}
	if _, ok := db.Rate("nope", 0, 10*sec); ok {
		t.Fatal("unknown series must not report a rate")
	}
}

func TestCounterResetClampsQueries(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sec := int64(time.Second)
	db.Append(mkPoint(1*sec, map[string]int64{"c": 500}, nil))
	db.Append(mkPoint(2*sec, map[string]int64{"c": 3}, nil)) // daemon restarted
	if v, ok := db.Delta("c", 0, 3*sec); !ok || v != 0 {
		t.Fatalf("Delta across reset = %v ok=%v, want 0", v, ok)
	}
	if v, ok := db.Rate("c", 0, 3*sec); !ok || v != 0 {
		t.Fatalf("Rate across reset = %v ok=%v, want 0", v, ok)
	}
}

func TestQuantileOverTime(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sec := int64(time.Second)

	reg := telemetry.New(1)
	h := reg.Histogram("lat")
	add := func(ts int64) {
		p := mkPoint(ts, nil, nil)
		p.Histograms["lat"] = h.Stats()
		db.Append(p)
	}
	// Baseline point before any traffic, then one point per interval.
	add(1 * sec)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // fast interval
	}
	add(2 * sec)
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Millisecond) // slow interval
	}
	add(3 * sec)

	// A window covering only the slow interval sees only the slow burst.
	p99, ok := db.QuantileOverTime("lat", 0.99, 2*sec, 3*sec)
	if !ok {
		t.Fatal("window reported empty")
	}
	if p99 < int64(50*time.Millisecond) {
		t.Fatalf("p99 = %v, want ~100ms (fast interval must be windowed out)", time.Duration(p99))
	}
	// The full window mixes both: rank-100 of 200 falls in the fast bucket.
	p50, ok := db.QuantileOverTime("lat", 0.5, 1*sec, 3*sec)
	if !ok {
		t.Fatal("full window reported empty")
	}
	if p50 > int64(10*time.Millisecond) {
		t.Fatalf("p50 = %v, want ~1ms bucket", time.Duration(p50))
	}
	if _, ok := db.QuantileOverTime("nope", 0.99, 0, 3*sec); ok {
		t.Fatal("unknown histogram must not report a quantile")
	}
}

func TestSeriesSamplesAndNames(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sec := int64(time.Second)
	reg := telemetry.New(1)
	h := reg.Histogram("lat")
	for i := int64(1); i <= 5; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
		p := mkPoint(i*sec, map[string]int64{"c": i}, map[string]float64{"g": float64(i) / 2})
		p.Histograms["lat"] = h.Stats()
		db.Append(p)
	}
	s := db.Series("c", 2*sec, 4*sec)
	if len(s) != 3 || s[0].Value != 2 || s[2].Value != 4 {
		t.Fatalf("Series(c) = %+v, want values 2..4", s)
	}
	hs := db.Series("lat", 0, 10*sec)
	if len(hs) != 5 {
		t.Fatalf("histogram series has %d samples, want 5", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].Value < hs[i-1].Value {
			t.Fatalf("p99 sparkline not monotone for growing max: %+v", hs)
		}
	}
	names := db.SeriesNames()
	want := []string{"c", "g", "lat"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("SeriesNames = %v, want %v", names, want)
	}
}

func TestFromSnapshotCarriesLabeledSeries(t *testing.T) {
	reg := telemetry.New(1)
	reg.CounterVec("req", "op").With("recommend").Add(5)
	p := FromSnapshot(reg.Snapshot())
	if p.Counters[`req{op="recommend"}`] != 5 {
		t.Fatalf("labeled series lost in FromSnapshot: %v", p.Counters)
	}
}
