package health

import (
	"strings"
	"testing"
)

func TestParseRulesBareArrayAndWrapped(t *testing.T) {
	bare := `[{"name":"a","metric":"m","op":">","value":1}]`
	wrapped := `{"rules":[{"name":"a","metric":"m","op":">","value":1}]}`
	for _, doc := range []string{bare, wrapped} {
		rules, err := ParseRules([]byte(doc))
		if err != nil {
			t.Fatalf("ParseRules(%s): %v", doc, err)
		}
		if len(rules) != 1 || rules[0].Name != "a" {
			t.Fatalf("rules = %+v", rules)
		}
		// Defaults applied.
		if rules[0].For != 1 || rules[0].ClearFor != 2 || rules[0].Severity != SeverityWarn {
			t.Fatalf("defaults not applied: %+v", rules[0])
		}
	}
}

func TestParseRulesRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad op":    `[{"name":"a","metric":"m","op":"~","value":1}]`,
		"no name":   `[{"metric":"m","op":">","value":1}]`,
		"no metric": `[{"name":"a","op":">","value":1}]`,
		"dup names": `[{"name":"a","metric":"m","op":">","value":1},{"name":"a","metric":"m2","op":">","value":1}]`,
		"bad quant": `[{"name":"a","metric":"m","op":">","value":1,"quantile":1.5}]`,
		"not json":  `nope`,
	}
	for label, doc := range cases {
		if _, err := ParseRules([]byte(doc)); err == nil {
			t.Errorf("%s: ParseRules accepted %s", label, doc)
		}
	}
}

func TestDefaultRulesValid(t *testing.T) {
	rules := DefaultRules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	seen := map[string]bool{}
	var hasRollback bool
	for _, r := range rules {
		if err := r.validate(); err != nil {
			t.Errorf("default rule invalid: %v", err)
		}
		if seen[r.Name] {
			t.Errorf("duplicate default rule %q", r.Name)
		}
		seen[r.Name] = true
		if r.Rollback {
			hasRollback = true
		}
	}
	if !hasRollback {
		t.Error("no default rule arms the watchdog rollback")
	}
	if !seen["policy-drift"] {
		t.Error("missing the policy-drift rule")
	}
}

func TestCompareOps(t *testing.T) {
	for op, want := range map[string][2]bool{
		// value 5 vs threshold 5, then 6 vs 5
		">":  {false, true},
		">=": {true, true},
		"<":  {false, false},
		"<=": {true, false},
		"==": {true, false},
		"!=": {false, true},
	} {
		r := Rule{Op: op, Value: 5}
		if got := r.compare(5); got != want[0] {
			t.Errorf("compare(5 %s 5) = %v", op, got)
		}
		if got := r.compare(6); got != want[1] {
			t.Errorf("compare(6 %s 5) = %v", op, got)
		}
	}
}

func TestLoadRulesMissingFile(t *testing.T) {
	if _, err := LoadRules("/nonexistent/rules.json"); err == nil {
		t.Fatal("LoadRules on a missing file succeeded")
	} else if strings.Contains(err.Error(), "parse") {
		t.Fatalf("want a read error, got %v", err)
	}
}
