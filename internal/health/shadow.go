package health

import (
	"sync/atomic"
	"time"

	"jarvis/internal/replay"
	"jarvis/internal/telemetry"
)

// Gauge names the shadow evaluator publishes; DefaultRules fires on them.
const (
	GaugeDivergenceRate = "health.shadow.divergence_rate"
	GaugeRewardDelta    = "health.shadow.reward_delta"
	GaugeViolationDelta = "health.shadow.violation_delta"
)

// ShadowConfig configures a shadow evaluator.
type ShadowConfig struct {
	// Config must match the daemon's learning configuration (same contract
	// as replay.Verify).
	Config replay.Config
	// Source names the WAL directory and checkpoint store to replay from.
	Source replay.Source
	// Devices is the home's device count, needed to pre-check that a
	// checkpoint generation is restorable before paying for a replay.
	Devices int
	// Registry receives the drift gauges (default telemetry.Default).
	Registry *telemetry.Registry
	Logf     func(format string, args ...any)
	Now      func() time.Time
}

// ShadowReport is the outcome of one shadow evaluation, published at
// /debug/alerts and in /healthz.
type ShadowReport struct {
	UnixNs     int64 `json:"unixNs"`
	DurationMs int64 `json:"durationMs"`
	// Compared counts position-aligned decision pairs (events + recs);
	// Recommends counts just the replayed recommendations, the denominator
	// of DivergenceRate.
	Compared          int `json:"compared"`
	Recommends        int `json:"recommends"`
	ActionDivergences int `json:"actionDivergences"`
	// DivergenceRate is ActionDivergences / Recommends: events replay
	// recorded actions verbatim on both sides, so only recommendations can
	// diverge, and dividing by all compared decisions would dilute the
	// signal by the traffic mix.
	DivergenceRate float64 `json:"divergenceRate"`
	// RewardDelta is live-policy minus checkpoint-trajectory counterfactual
	// recommendation reward; ViolationDelta likewise for safety violations.
	RewardDelta    float64 `json:"rewardDelta"`
	ViolationDelta int     `json:"violationDelta"`
	Err            string  `json:"err,omitempty"`
}

// Shadow replays the recorded WAL window through replay.WhatIf, comparing
// the live Q function (variant) against the newest checkpoint generation
// plus the recorded learning stream (baseline — which PR 6's determinism
// guarantees is the live trajectory itself). A healthy daemon therefore
// measures ≈ 0 divergence; a poisoned or runaway live policy shows up as
// recommendation flips the very next evaluation.
//
// Concurrency: the daemon calls TryBegin under its state lock to claim
// the single evaluation slot and serialize Q capture, then runs Run on
// its own goroutine, off the request lock — a replay costs tens of
// milliseconds and must never extend a request's critical section.
type Shadow struct {
	cfg     ShadowConfig
	running atomic.Bool
	last    atomic.Pointer[ShadowReport]

	gDivergence *telemetry.Gauge
	gReward     *telemetry.Gauge
	gViolations *telemetry.Gauge
	cRuns       *telemetry.Counter
	cFailures   *telemetry.Counter
	cSkips      *telemetry.Counter
}

// NewShadow builds a shadow evaluator and resolves its metric handles.
func NewShadow(cfg ShadowConfig) *Shadow {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Shadow{
		cfg:         cfg,
		gDivergence: cfg.Registry.Gauge(GaugeDivergenceRate),
		gReward:     cfg.Registry.Gauge(GaugeRewardDelta),
		gViolations: cfg.Registry.Gauge(GaugeViolationDelta),
		cRuns:       cfg.Registry.Counter("health.shadow.runs"),
		cFailures:   cfg.Registry.Counter("health.shadow.failures"),
		cSkips:      cfg.Registry.Counter("health.shadow.skips"),
	}
}

// TryBegin claims the single evaluation slot. The caller must follow up
// with exactly one Run or FailCapture, which releases it.
func (s *Shadow) TryBegin() bool {
	return s.running.CompareAndSwap(false, true)
}

// FailCapture releases the slot claimed by TryBegin when the live Q could
// not even be serialized. An unserializable policy (non-finite values) is
// drift by definition, so the divergence gauge pegs to 1 and the default
// policy-drift rule fires on the next evaluation.
func (s *Shadow) FailCapture(err error) {
	defer s.running.Store(false)
	s.cFailures.Inc()
	s.gDivergence.Set(1)
	r := &ShadowReport{UnixNs: s.cfg.Now().UnixNano(), DivergenceRate: 1, Err: err.Error()}
	s.last.Store(r)
	s.cfg.Logf("health: shadow capture failed: %v", err)
}

// Run executes one shadow evaluation with the captured live Q bytes and
// publishes the drift gauges. Call only after TryBegin returned true.
func (s *Shadow) Run(liveQ []byte) *ShadowReport {
	defer s.running.Store(false)
	start := s.cfg.Now()

	// A what-if replay with no restorable checkpoint would silently fall
	// back to fresh optimizer training — two orders of magnitude slower and
	// a meaningless baseline. Pre-check and skip until a generation exists.
	st, err := replay.OpenStore(s.cfg.Source.CheckpointPath, s.cfg.Source.CheckpointRetain)
	if err == nil {
		_, _, err = replay.LoadSnapshot(st, s.cfg.Config, s.cfg.Devices)
	}
	if err != nil {
		s.cSkips.Inc()
		s.cfg.Logf("health: shadow skipped (no usable checkpoint: %v)", err)
		return nil
	}

	rep, err := replay.WhatIf(replay.WhatIfOptions{
		Config:  s.cfg.Config,
		Source:  s.cfg.Source,
		At:      0,
		PolicyQ: liveQ,
	})
	out := &ShadowReport{UnixNs: start.UnixNano()}
	if err != nil {
		s.cFailures.Inc()
		out.Err = err.Error()
		out.DivergenceRate = 1 // a policy that can't replay is divergent
		s.gDivergence.Set(1)
		s.last.Store(out)
		s.cfg.Logf("health: shadow replay failed: %v", err)
		return out
	}
	s.cRuns.Inc()
	out.DurationMs = s.cfg.Now().Sub(start).Milliseconds()
	out.Compared = rep.Compared
	out.Recommends = rep.Variant.Recommends
	out.ActionDivergences = rep.ActionDivergences
	if out.Recommends > 0 {
		out.DivergenceRate = float64(rep.ActionDivergences) / float64(out.Recommends)
	}
	out.RewardDelta = rep.RewardDelta
	out.ViolationDelta = rep.ViolationDelta

	s.gDivergence.Set(out.DivergenceRate)
	s.gReward.Set(out.RewardDelta)
	s.gViolations.Set(float64(out.ViolationDelta))
	s.last.Store(out)
	return out
}

// Last returns the most recent report (nil before the first evaluation).
func (s *Shadow) Last() *ShadowReport { return s.last.Load() }

// Running reports whether an evaluation is in flight.
func (s *Shadow) Running() bool { return s.running.Load() }
