package health

import (
	"sync"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

// The burn-rate math is what the alerting and dashboards consume; these
// tests drive synthetic snapshots through a tracker and check the SRE
// identities: burn = badFraction / (1 − target), burn 1.0 = exactly at
// budget, and eviction keeps the window rolling.

func sloClock(start time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

func statusByName(t *testing.T, r Report, name string) ObjectiveStatus {
	t.Helper()
	for _, st := range r.Objectives {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("objective %q not in report %+v", name, r)
	return ObjectiveStatus{}
}

func TestRatioObjectiveBurnRate(t *testing.T) {
	reg := telemetry.New(8)
	obj := Objective{Name: "degraded", Bad: "bad", Total: "total", Target: 0.99}
	tr, err := NewTracker(time.Minute, []Objective{obj}, reg)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNow(sloClock(time.Unix(1700000000, 0), time.Second))

	bad, total := reg.Counter("bad"), reg.Counter("total")
	total.Add(1000)
	tr.Observe(reg.Snapshot())
	// Window: +2 bad / +1000 total → badFraction 0.002, budget 0.01 → burn 0.2.
	bad.Add(2)
	total.Add(1000)
	tr.Observe(reg.Snapshot())

	st := statusByName(t, tr.Report(), "degraded")
	if st.Bad != 2 || st.Total != 1000 {
		t.Fatalf("windowed bad/total = %d/%d, want 2/1000", st.Bad, st.Total)
	}
	if st.BurnRate < 0.19 || st.BurnRate > 0.21 {
		t.Fatalf("burn = %v, want 0.2", st.BurnRate)
	}
	if !st.Met {
		t.Fatal("burn 0.2 should meet the SLO")
	}
	if g := reg.Snapshot().Gauges["health.slo.burn.degraded"]; g < 0.19 || g > 0.21 {
		t.Fatalf("burn gauge = %v, want 0.2", g)
	}

	// Exactly at budget: +10 bad / +1000 total → burn 1.0, still met.
	bad.Add(10)
	total.Add(1000)
	tr.Observe(reg.Snapshot())
	// The window now spans both deltas: 12/2000 → 0.006/0.01 = 0.6... use a
	// fresh tracker assertion instead: burn is monotone in badFraction.
	st = statusByName(t, tr.Report(), "degraded")
	if !st.Met {
		t.Fatalf("burn %v ≤ 1 should be met", st.BurnRate)
	}

	// Blow the budget: +100 bad / +100 total.
	bad.Add(100)
	total.Add(100)
	tr.Observe(reg.Snapshot())
	st = statusByName(t, tr.Report(), "degraded")
	if st.Met || st.BurnRate <= 1 {
		t.Fatalf("burn = %v met=%v, want out of SLO", st.BurnRate, st.Met)
	}
}

func TestLatencyObjective(t *testing.T) {
	reg := telemetry.New(8)
	obj := Objective{Name: "p99", Histogram: "lat", ThresholdNs: 10_000_000, Target: 0.99}
	tr, err := NewTracker(time.Minute, []Objective{obj}, reg)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNow(sloClock(time.Unix(1700000000, 0), time.Second))

	h := reg.Histogram("lat")
	for i := 0; i < 1000; i++ {
		h.ObserveNs(1000)
	}
	tr.Observe(reg.Snapshot())
	st := statusByName(t, tr.Report(), "p99")
	if !st.Met || st.Bad != 0 {
		t.Fatalf("all-fast window: %+v", st)
	}

	// 5% of the new window exceeds the threshold → badFraction 0.05 ≫
	// budget 0.01 → out of SLO.
	for i := 0; i < 950; i++ {
		h.ObserveNs(1000)
	}
	for i := 0; i < 50; i++ {
		h.ObserveNs(100_000_000)
	}
	tr.Observe(reg.Snapshot())
	st = statusByName(t, tr.Report(), "p99")
	if st.Total != 1000 {
		t.Fatalf("windowed total = %d, want 1000 (old epoch leaked in)", st.Total)
	}
	if st.Met || st.Bad != 50 {
		t.Fatalf("slow window: %+v, want 50 bad, not met", st)
	}
	if st.P99Ns < 50_000_000 {
		t.Fatalf("windowed p99 = %d, want ≥ 50ms", st.P99Ns)
	}
}

func TestBudgetObjective(t *testing.T) {
	reg := telemetry.New(8)
	obj := Objective{Name: "violations", Counter: "unsafe", Budget: 5}
	tr, err := NewTracker(time.Minute, []Objective{obj}, reg)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNow(sloClock(time.Unix(1700000000, 0), time.Second))

	c := reg.Counter("unsafe")
	tr.Observe(reg.Snapshot())
	c.Add(2)
	tr.Observe(reg.Snapshot())
	st := statusByName(t, tr.Report(), "violations")
	if st.BurnRate != 0.4 || !st.Met {
		t.Fatalf("2/5 budget: %+v", st)
	}
	c.Add(10)
	tr.Observe(reg.Snapshot())
	st = statusByName(t, tr.Report(), "violations")
	if st.Met || st.BurnRate <= 1 {
		t.Fatalf("12/5 budget: %+v", st)
	}
}

func TestWindowEviction(t *testing.T) {
	reg := telemetry.New(8)
	obj := Objective{Name: "violations", Counter: "unsafe", Budget: 5}
	tr, err := NewTracker(10*time.Second, []Objective{obj}, reg)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNow(sloClock(time.Unix(1700000000, 0), 4*time.Second))

	c := reg.Counter("unsafe")
	c.Add(100) // old sin, before the first sample
	tr.Observe(reg.Snapshot())
	// 4s apart; the 10s window holds ~3 samples.
	for i := 0; i < 5; i++ {
		tr.Observe(reg.Snapshot())
	}
	st := statusByName(t, tr.Report(), "violations")
	if st.Bad != 0 {
		t.Fatalf("old increments leaked into the window: %+v", st)
	}
	r := tr.Report()
	if r.Samples > 4 {
		t.Fatalf("retained %d samples over a 10s window at 4s cadence", r.Samples)
	}
	if r.SpanMs > 12_000 {
		t.Fatalf("window span %dms exceeds the configured window by more than one step", r.SpanMs)
	}
}

func TestObjectiveValidation(t *testing.T) {
	bad := []Objective{
		{Name: "x", Histogram: "h"},                            // latency without threshold/target
		{Name: "x", Counter: "c"},                              // budget without budget
		{Name: "x", Bad: "b", Total: "t"},                      // ratio without target
		{Name: "", Bad: "b", Total: "t", Target: 0.9},          // no name
		{Name: "x", Histogram: "h", ThresholdNs: 1, Target: 1}, // target 1 divides by zero
	}
	for i, o := range bad {
		if _, err := NewTracker(time.Minute, []Objective{o}, telemetry.New(8)); err == nil {
			t.Errorf("case %d: NewTracker accepted %+v", i, o)
		}
	}
}

func TestShadowFailCaptureAndSkip(t *testing.T) {
	reg := telemetry.New(8)
	sh := NewShadow(ShadowConfig{
		Source:   replaySourceForTest(t),
		Devices:  11,
		Registry: reg,
	})
	if !sh.TryBegin() {
		t.Fatal("TryBegin on idle shadow")
	}
	if sh.TryBegin() {
		t.Fatal("TryBegin double-claimed the slot")
	}
	sh.FailCapture(errTest)
	if sh.Running() {
		t.Fatal("FailCapture did not release the slot")
	}
	if g := reg.Snapshot().Gauges[GaugeDivergenceRate]; g != 1 {
		t.Fatalf("divergence gauge after capture failure = %v, want 1", g)
	}
	last := sh.Last()
	if last == nil || last.Err == "" {
		t.Fatalf("last report = %+v", last)
	}

	// With no checkpoint generation on disk the run must skip, not train a
	// fresh optimizer.
	if !sh.TryBegin() {
		t.Fatal("slot not reusable")
	}
	if rep := sh.Run([]byte(`{}`)); rep != nil {
		t.Fatalf("Run without a checkpoint returned %+v, want skip", rep)
	}
	if c := reg.Snapshot().Counters["health.shadow.skips"]; c != 1 {
		t.Fatalf("skip counter = %v, want 1", c)
	}
}
